package pamg2d

// One benchmark per figure of the paper's evaluation (it has no numbered
// tables), plus the in-text measurements and the ablation studies listed
// in DESIGN.md section 5. Benchmarks that reproduce a *result* rather than
// a *speed* report the result through b.ReportMetric so `go test -bench`
// output carries the reproduced numbers next to the timings.

import (
	"context"
	"io"
	"strconv"
	"sync"
	"testing"

	"pamg2d/internal/adapt"
	"pamg2d/internal/adt"
	"pamg2d/internal/airfoil"
	"pamg2d/internal/benchcfg"
	"pamg2d/internal/blayer"
	"pamg2d/internal/core"
	"pamg2d/internal/decouple"
	"pamg2d/internal/delaunay"
	"pamg2d/internal/geom"
	"pamg2d/internal/growth"
	"pamg2d/internal/metric"
	"pamg2d/internal/mpi"
	"pamg2d/internal/perfmodel"
	"pamg2d/internal/project"
	"pamg2d/internal/pslg"
	"pamg2d/internal/sizing"
	"pamg2d/internal/solver"
)

// benchConfig is the shared scaled-down configuration: NACA 0012,
// moderately fine boundary layer, rank-2 pipeline. It lives in
// internal/benchcfg so cmd/benchreport measures the identical workload.
func benchConfig() core.Config {
	return benchcfg.PushButton()
}

// BenchmarkFig02SurfaceNormals measures the surface-normal computation of
// Figure 2 at the paper's stated input size (1,500 surface vertices).
func BenchmarkFig02SurfaceNormals(b *testing.B) {
	cfg := airfoil.Single(airfoil.NACA0012, 750, 30)
	g, err := cfg.Graph()
	if err != nil {
		b.Fatal(err)
	}
	pts := g.Surfaces[0].Points
	b.ReportMetric(float64(len(pts)), "surface-verts")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blayer.VertexNormals(pts)
	}
}

// BenchmarkFig04CuspFans measures boundary-layer generation with the fan
// of curved rays at the sharp trailing edge (Figures 3 and 4) and reports
// how many fan rays the cusps emitted.
func BenchmarkFig04CuspFans(b *testing.B) {
	cfg := airfoil.ThreeElement(96)
	g, err := cfg.Graph()
	if err != nil {
		b.Fatal(err)
	}
	p := blayer.DefaultParams()
	var fans int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layers := blayer.Generate(g, p)
		fans = 0
		for _, l := range layers {
			fans += l.Stats.FanRays
		}
	}
	b.ReportMetric(float64(fans), "fan-rays")
}

// BenchmarkFig05IsotropyCutoff measures point insertion with the smooth
// transition to isotropy (Figure 5) and reports the spread in layer counts
// that produces the variable boundary-layer height.
func BenchmarkFig05IsotropyCutoff(b *testing.B) {
	cfg := airfoil.Single(airfoil.NACA0012, 256, 30)
	g, err := cfg.Graph()
	if err != nil {
		b.Fatal(err)
	}
	p := blayer.DefaultParams()
	p.MaxLayers = 100
	var minL, maxL int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layers := blayer.Generate(g, p)
		minL, maxL = 1<<30, 0
		for _, pts := range layers[0].Points {
			if len(pts) < minL {
				minL = len(pts)
			}
			if len(pts) > maxL {
				maxL = len(pts)
			}
		}
	}
	b.ReportMetric(float64(minL), "min-layers")
	b.ReportMetric(float64(maxL), "max-layers")
}

// BenchmarkFig08Decompose128 measures the projection-based decomposition
// of a boundary-layer point set into 128 independent Delaunay subdomains
// (Figure 8).
func BenchmarkFig08Decompose128(b *testing.B) {
	pts, err := benchcfg.Fig08Points()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(pts)), "bl-points")
	var leaves int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		root := project.New(pts)
		b.StartTimer()
		ls, _ := project.Decompose(root, benchcfg.Fig08Options())
		leaves = len(ls)
	}
	b.ReportMetric(float64(leaves), "subdomains")
}

// BenchmarkFig10Decouple measures the graded Delaunay decoupling of the
// inviscid region into balanced subdomains (Figures 9 and 10) and reports
// the cost imbalance (max/mean).
func BenchmarkFig10Decouple(b *testing.B) {
	nb := geom.BBox{Min: geom.Pt(-1, -1), Max: geom.Pt(2, 1)}
	ff := geom.BBox{Min: geom.Pt(-30, -30), Max: geom.Pt(32, 30)}
	size := sizing.NewGraded([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}, 0.05, 0.2, 3).Area
	var imbalance float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quads, err := decouple.InitialQuadrants(nb, ff, size)
		if err != nil {
			b.Fatal(err)
		}
		regions := decouple.Decouple(quads[:], size, 64)
		var sum, max float64
		for _, r := range regions {
			c := r.Cost(size)
			sum += c
			if c > max {
				max = c
			}
		}
		imbalance = max / (sum / float64(len(regions)))
	}
	b.ReportMetric(imbalance, "max/mean-cost")
}

// BenchmarkFig11StrongScaling runs the calibrated schedule simulation and
// reports the Figure 11 speedups at 128 and 256 ranks (paper: ~102 and
// ~180).
func BenchmarkFig11StrongScaling(b *testing.B) {
	pts := scalingPoints(b)
	var s128, s256 float64
	for _, p := range pts {
		switch p.Ranks {
		case 128:
			s128 = p.Speedup
		case 256:
			s256 = p.Speedup
		}
	}
	b.ReportMetric(s128, "speedup-128")
	b.ReportMetric(s256, "speedup-256")
}

// BenchmarkFig12Efficiency reports the Figure 12 efficiencies at 128 and
// 256 ranks (paper: ~80% and ~70%).
func BenchmarkFig12Efficiency(b *testing.B) {
	pts := scalingPoints(b)
	var e128, e256 float64
	for _, p := range pts {
		switch p.Ranks {
		case 128:
			e128 = p.Efficiency
		case 256:
			e256 = p.Efficiency
		}
	}
	b.ReportMetric(100*e128, "efficiency-128-pct")
	b.ReportMetric(100*e256, "efficiency-256-pct")
}

var (
	scalingOnce   sync.Once
	scalingCached []perfmodel.ScalePoint
	scalingErr    error
)

// scalingPoints calibrates the performance model with one real pipeline
// run (shared between the Figure 11 and 12 benchmarks so both report the
// same schedule) and simulates the strong-scaling study.
func scalingPoints(b *testing.B) []perfmodel.ScalePoint {
	b.Helper()
	scalingOnce.Do(func() { scalingCached, scalingErr = computeScaling() })
	if scalingErr != nil {
		b.Fatal(scalingErr)
	}
	return scalingCached
}

func computeScaling() ([]perfmodel.ScalePoint, error) {
	cfg := benchConfig()
	cfg.Geometry = airfoil.Single(airfoil.NACA0012, 64, 20)
	cfg.BL.Growth = growth.Geometric{H0: 5e-4, Ratio: 1.25}
	cfg.BL.MaxLayers = 25
	cfg.Ranks = 1
	cfg.SubdomainsPerRank = 4096
	cfg.SurfaceH0 = 0.008
	cfg.HMax = 0.16
	cfg.NearBodyMargin = 0.04
	cfg.TransitionSectors = 32
	res, err := core.Generate(cfg)
	if err != nil {
		return nil, err
	}
	var tasks []perfmodel.Task
	for _, tm := range res.Stats.Tasks {
		tasks = append(tasks, perfmodel.Task{Cost: tm.Seconds, Bytes: tm.Bytes, BoundaryLayer: tm.BoundaryLayer})
	}
	seq := res.Stats.Times.Validate.Seconds() +
		perfmodel.DecompositionOverhead(res.Stats.BoundaryLayerPts, 256, 2e-8, perfmodel.FDRInfiniband())
	return perfmodel.StrongScaling(tasks, seq, perfmodel.FDRInfiniband(),
		[]int{1, 2, 4, 8, 16, 32, 64, 128, 256}), nil
}

// BenchmarkFig13IntersectionResolution measures the hierarchical self- and
// multi-element intersection resolution on the three-element configuration
// and reports the resolved counts (Figure 13).
func BenchmarkFig13IntersectionResolution(b *testing.B) {
	cfg := airfoil.ThreeElement(96)
	g, err := cfg.Graph()
	if err != nil {
		b.Fatal(err)
	}
	p := blayer.DefaultParams()
	p.Growth = growth.Geometric{H0: 5e-4, Ratio: 1.3}
	p.MaxLayers = 30
	var self, multi int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layers := blayer.Generate(g, p)
		self, multi = 0, 0
		for _, l := range layers {
			self += l.Stats.SelfIntersections
			multi += l.Stats.MultiIntersections
		}
	}
	b.ReportMetric(float64(self), "self-intersections")
	b.ReportMetric(float64(multi), "multi-intersections")
}

// BenchmarkFig16Convergence reproduces the convergence comparison: the
// anisotropic mesh needs fewer elements and fewer solver iterations than
// the isotropic mesh built from the same geometry and sizing (paper: 14.7x
// fewer elements, ~2x fewer iterations).
func BenchmarkFig16Convergence(b *testing.B) {
	cfg := benchConfig()
	aniso, err := core.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	iso, err := core.IsotropicBaseline(cfg, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	g, err := cfg.Geometry.Graph()
	if err != nil {
		b.Fatal(err)
	}
	surf := sizing.NewGraded(g.Surfaces[0].Points, 1, 0, 0)
	bc := solver.AirfoilBC(func(p geom.Point) bool { return surf.Distance(p) < 0.08 })
	opt := solver.Options{Tol: 1e-10, MaxIters: 300000, Method: solver.GaussSeidel}

	var itAniso, itIso int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sa, err := solver.Solve(solver.Problem{Mesh: aniso.Mesh, Diffusivity: 0.01, Velocity: geom.V(1, 0.1), Boundary: bc}, opt)
		if err != nil {
			b.Fatal(err)
		}
		si, err := solver.Solve(solver.Problem{Mesh: iso, Diffusivity: 0.01, Velocity: geom.V(1, 0.1), Boundary: bc}, opt)
		if err != nil {
			b.Fatal(err)
		}
		itAniso = sa.History.Iterations
		itIso = si.History.Iterations
	}
	b.ReportMetric(float64(itAniso), "aniso-iters")
	b.ReportMetric(float64(itIso), "iso-iters")
	b.ReportMetric(float64(iso.NumTriangles())/float64(aniso.Mesh.NumTriangles()), "element-ratio")
}

// BenchmarkSeqEfficiency compares the pipeline at one rank against the
// direct sequential baseline (the paper's 196 s vs Triangle's 192 s, a 98%
// sequential efficiency).
func BenchmarkSeqEfficiency(b *testing.B) {
	cfg := benchConfig()
	cfg.Ranks = 1
	b.Run("pipeline-1rank", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Generate(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("triangle-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SequentialBaseline(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkElementRatio reports the anisotropic/isotropic element-count
// comparison at matched near-wall resolution (the paper's 360,241 vs
// 5,314,372 triangles, a 14.7x reduction).
func BenchmarkElementRatio(b *testing.B) {
	cfg := benchConfig()
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aniso, err := core.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		iso, err := core.IsotropicBaseline(cfg, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(iso.NumTriangles()) / float64(aniso.Mesh.NumTriangles())
	}
	b.ReportMetric(ratio, "iso/aniso-elements")
}

// BenchmarkMeshWriters compares ASCII and binary mesh output (the paper's
// 9-minute ASCII write versus faster binary output).
func BenchmarkMeshWriters(b *testing.B) {
	cfg := benchConfig()
	res, err := core.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("ascii", func(b *testing.B) {
		b.SetBytes(int64(res.Mesh.NumTriangles()))
		for i := 0; i < b.N; i++ {
			if err := res.Mesh.WriteASCII(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		b.SetBytes(int64(res.Mesh.NumTriangles()))
		for i := 0; i < b.N; i++ {
			if err := res.Mesh.WriteBinary(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation benchmarks (DESIGN.md section 5) ---

// BenchmarkAblationPresorted isolates the paper's removed-sort
// optimization: the kernel consuming already-x-sorted subdomain vertices
// versus sorting on entry.
func BenchmarkAblationPresorted(b *testing.B) {
	cfg := airfoil.Single(airfoil.NACA0012, 256, 30)
	g, err := cfg.Graph()
	if err != nil {
		b.Fatal(err)
	}
	layers := blayer.Generate(g, blayer.DefaultParams())
	root := project.New(layers[0].AllPoints())
	leaves, _ := project.Decompose(root, project.Options{MinVerts: 400})
	var inputs [][]geom.Point
	for _, l := range leaves {
		inputs = append(inputs, l.Points())
	}
	b.Run("presorted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, pts := range inputs {
				if _, err := delaunay.Triangulate(delaunay.Input{Points: pts, Sorted: true}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("sort-on-entry", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, pts := range inputs {
				if _, err := delaunay.Triangulate(delaunay.Input{Points: pts}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationADT compares the alternating-digital-tree extent-box
// pruning against brute-force all-pairs intersection checks over the same
// ray set (the paper's n log n versus n^2 claim). Both variants end with
// identical exact segment tests; only the pruning differs.
func BenchmarkAblationADT(b *testing.B) {
	// An L-shaped body producing many converging rays.
	var pts []geom.Point
	corners := []geom.Point{
		geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 2), geom.Pt(2, 2), geom.Pt(2, 4), geom.Pt(0, 4),
	}
	for i := 0; i < len(corners); i++ {
		a, c := corners[i], corners[(i+1)%len(corners)]
		for k := 0; k < 256; k++ {
			pts = append(pts, a.Lerp(c, float64(k)/256))
		}
	}
	g := &pslg.Graph{Surfaces: []pslg.Loop{{Name: "L", Points: pts}}}
	p := blayer.DefaultParams()
	p.Growth = growth.Geometric{H0: 0.02, Ratio: 1.3}
	p.MaxLayers = 12
	layers := blayer.Generate(g, p)
	rays := layers[0].Rays
	segs := make([]geom.Segment, len(rays))
	full := p.Growth.Offset(p.MaxLayers - 1)
	for i := range rays {
		segs[i] = geom.Segment{A: rays[i].Origin, B: rays[i].Origin.Add(rays[i].Dir.Scale(full))}
	}
	b.Run("adt", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			world := geom.EmptyBBox()
			for _, s := range segs {
				world = world.Union(s.BBox())
			}
			tree := adt.NewForBox(world)
			for j := range segs {
				tree.InsertBox(segs[j].BBox(), j)
			}
			count := 0
			for x := range segs {
				tree.VisitOverlapping(segs[x].BBox(), func(y int) bool {
					if y > x && geom.SegmentsIntersect(segs[x], segs[y]) == geom.SegCross {
						count++
					}
					return true
				})
			}
			_ = count
		}
	})
	b.Run("brute-force", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			count := 0
			for x := 0; x < len(segs); x++ {
				for y := x + 1; y < len(segs); y++ {
					if geom.SegmentsIntersect(segs[x], segs[y]) == geom.SegCross {
						count++
					}
				}
			}
			_ = count
		}
	})
}

// BenchmarkAblationSchedule compares the paper's largest-first priority
// scheduling against FIFO under the same work-stealing protocol, reporting
// the simulated makespans.
func BenchmarkAblationSchedule(b *testing.B) {
	cfg := benchConfig()
	cfg.Ranks = 1
	cfg.SubdomainsPerRank = 256
	res, err := core.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var tasks []perfmodel.Task
	for _, tm := range res.Stats.Tasks {
		tasks = append(tasks, perfmodel.Task{Cost: tm.Seconds, Bytes: tm.Bytes, BoundaryLayer: tm.BoundaryLayer})
	}
	net := perfmodel.FDRInfiniband()
	var priority, fifo float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		priority = perfmodel.SimulateOrder(tasks, 32, net, 0, true).Makespan
		fifo = perfmodel.SimulateOrder(tasks, 32, net, 0, false).Makespan
	}
	b.ReportMetric(priority*1000, "priority-ms")
	b.ReportMetric(fifo*1000, "fifo-ms")
}

// BenchmarkAblationCutAxis compares the shortest-bbox-edge cut rule
// against always-vertical cuts; skinny subdomains from always-vertical
// cuts are slower to triangulate.
func BenchmarkAblationCutAxis(b *testing.B) {
	cfg := airfoil.Single(airfoil.NACA0012, 512, 30)
	g, err := cfg.Graph()
	if err != nil {
		b.Fatal(err)
	}
	p := blayer.DefaultParams()
	pts := blayer.Generate(g, p)[0].AllPoints()
	run := func(b *testing.B, force bool) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			root := project.New(pts)
			b.StartTimer()
			leaves, _ := project.Decompose(root, project.Options{MinVerts: 2, MaxDepth: 9, ForceVertical: force})
			for _, l := range leaves {
				if l.Len() < 3 {
					continue
				}
				if _, err := delaunay.Triangulate(delaunay.Input{Points: l.Points(), Sorted: true}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("shortest-edge-rule", func(b *testing.B) { run(b, false) })
	b.Run("always-vertical", func(b *testing.B) { run(b, true) })
}

// BenchmarkPushButton measures the complete push-button pipeline at
// several rank counts (functional concurrency on this machine, not
// speedup — see BenchmarkFig11StrongScaling for the scaling study). The
// -kwN variants turn on the intra-rank parallel Delaunay kernel; their
// speedup is only meaningful at GOMAXPROCS > 1, so cmd/benchreport keys
// its comparisons on (name, GOMAXPROCS, kernel workers).
func BenchmarkPushButton(b *testing.B) {
	for _, c := range []struct{ ranks, kw int }{{1, 1}, {2, 1}, {4, 1}, {1, 2}, {1, 4}} {
		name := rankName(c.ranks)
		if c.kw > 1 {
			name += "-kw" + strconv.Itoa(c.kw)
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.Ranks = c.ranks
			cfg.KernelWorkers = c.kw
			var tris int
			for i := 0; i < b.N; i++ {
				res, err := core.Generate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				tris = res.Stats.TotalTriangles
			}
			b.ReportMetric(float64(tris), "triangles")
		})
	}
}

func rankName(r int) string {
	return string(rune('0'+r)) + "-ranks"
}

// BenchmarkPushButtonTCP is the PushButton pipeline over a loopback TCP
// fabric: four SPMD processes (simulated as goroutines around real TCP
// connections) each run the full pipeline, with the distributed phases
// splitting work across the wire. Against BenchmarkPushButton/4-ranks
// this is the transport's full price — framing, typed codecs, and the
// root's result re-broadcast (cmd/benchreport records the same workload
// as PushButton/4-ranks-tcp).
func BenchmarkPushButtonTCP(b *testing.B) {
	const ranks = 4
	ctx := context.Background()
	clusters, err := mpi.LoopbackClusters(ctx, ranks)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		for _, cl := range clusters {
			cl.Close()
		}
	}()
	cfg := benchConfig()
	cfg.Ranks = ranks
	var tris int
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make([]error, ranks)
		results := make([]*core.Result, ranks)
		for p, cl := range clusters {
			wg.Add(1)
			go func(p int, cl *mpi.Cluster) {
				defer wg.Done()
				c := cfg
				c.Fabric = cl
				results[p], errs[p] = core.GenerateContext(ctx, c)
			}(p, cl)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
		tris = results[0].Stats.TotalTriangles
	}
	b.ReportMetric(float64(tris), "triangles")
}

// BenchmarkPushButtonAdapt measures one metric-adaptation cycle of the
// cavity-operator engine on the PushButton mesh against the shared
// analytic boundary-layer metric (cmd/benchreport records the same
// workload as PushButton/1-ranks-adapt). Generation happens once outside
// the timer; Adapt does not mutate its input, so every iteration adapts
// the identical mesh.
func BenchmarkPushButtonAdapt(b *testing.B) {
	cfg := benchConfig()
	cfg.Ranks = 1
	res, err := core.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	fn, err := metric.ParseSpec(benchcfg.AdaptMetric)
	if err != nil {
		b.Fatal(err)
	}
	f := metric.Analytic(res.Mesh, fn)
	var r *adapt.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, r, err = adapt.Adapt(res.Mesh, f, adapt.Options{Resample: fn})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*r.InBand, "in-band-pct")
	b.ReportMetric(float64(r.Sweeps), "sweeps")
}

// BenchmarkPushButtonAudited is the PushButton pipeline with the
// invariant-audit stage enabled, so the trajectory tracks verification
// overhead alongside the unaudited runs (cmd/benchreport records the same
// workload as PushButton/1-ranks-audit).
func BenchmarkPushButtonAudited(b *testing.B) {
	cfg := benchConfig()
	cfg.Ranks = 1
	cfg.Audit = true
	var tris int
	for i := 0; i < b.N; i++ {
		res, err := core.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tris = res.Stats.TotalTriangles
	}
	b.ReportMetric(float64(tris), "triangles")
}

// TestAuditedWorkloads is the audit acceptance gate: the PushButton and
// Figure 8 workloads must generate with zero audit violations at 1 and 4
// ranks, and on PushButton/1-rank the audit stage must cost less than 30%
// of total generation wall time.
func TestAuditedWorkloads(t *testing.T) {
	fig08 := core.DefaultConfig()
	fig08.Geometry = airfoil.Single(airfoil.NACA0012, 256, 30)
	fig08.BL = blayer.DefaultParams() // the Fig08Points boundary layer
	workloads := []struct {
		name string
		cfg  core.Config
	}{
		{"PushButton", benchConfig()},
		{"Fig08", fig08},
	}
	for _, w := range workloads {
		for _, c := range []struct{ ranks, kw int }{{1, 1}, {4, 1}, {1, 4}, {4, 4}} {
			ranks := c.ranks
			if w.name == "Fig08" && c.kw > 1 {
				continue // the kernel-parallel audit gate runs on PushButton
			}
			if testing.Short() && (w.name == "Fig08" || ranks > 1 || c.kw > 1) {
				continue
			}
			cfg := w.cfg
			cfg.Ranks = ranks
			cfg.KernelWorkers = c.kw
			cfg.Audit = true
			res, err := core.Generate(cfg)
			if err != nil {
				t.Fatalf("%s/%d ranks/kw%d: audited run failed: %v", w.name, ranks, c.kw, err)
			}
			if !res.Stats.Audit.Ok() {
				t.Fatalf("%s/%d ranks/kw%d: violations: %v", w.name, ranks, c.kw, res.Stats.Audit.Violations)
			}
			if c.kw > 1 && res.Stats.Kernel.Workers != c.kw {
				t.Fatalf("%s/%d ranks/kw%d: kernel stats report %d workers", w.name, ranks, c.kw, res.Stats.Kernel.Workers)
			}
			if c.kw > 1 && res.Stats.Kernel.Inserted == 0 {
				t.Fatalf("%s/%d ranks/kw%d: parallel kernel committed nothing: %+v", w.name, ranks, c.kw, res.Stats.Kernel)
			}
			if w.name == "PushButton" && ranks == 1 && c.kw == 1 {
				frac := float64(res.Stats.Times.Audit) / float64(res.Stats.Times.Total)
				if frac >= 0.30 {
					t.Errorf("audit overhead %.1f%% of total wall time, want < 30%%", 100*frac)
				}
				t.Logf("PushButton/1-rank audit overhead: %.1f%% (%v of %v)",
					100*frac, res.Stats.Times.Audit, res.Stats.Times.Total)
			}
		}
	}
}

// BenchmarkAblationPrefetch isolates the paper's two-thread design: the
// communicator requesting work before the mesher runs dry versus a
// single-threaded mesher that blocks for every transfer.
func BenchmarkAblationPrefetch(b *testing.B) {
	cfg := benchConfig()
	cfg.Ranks = 1
	cfg.SubdomainsPerRank = 256
	res, err := core.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var tasks []perfmodel.Task
	for _, tm := range res.Stats.Tasks {
		tasks = append(tasks, perfmodel.Task{Cost: tm.Seconds, Bytes: tm.Bytes, BoundaryLayer: tm.BoundaryLayer})
	}
	// A slower interconnect makes the overlap visible at this scale.
	net := perfmodel.Network{Latency: 1e-4, Bandwidth: 1e8}
	var with, without float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		with = perfmodel.SimulatePolicy(tasks, 32, net, 0, perfmodel.Policy{LargestFirst: true, Prefetch: true}).Makespan
		without = perfmodel.SimulatePolicy(tasks, 32, net, 0, perfmodel.Policy{LargestFirst: true, Prefetch: false}).Makespan
	}
	b.ReportMetric(with*1000, "prefetch-ms")
	b.ReportMetric(without*1000, "blocking-ms")
}

// BenchmarkKernelComparison runs the pipeline with the Delaunay-refinement
// kernel (the paper's choice) and with the advancing-front baseline from
// its related work, reporting both meshing times and element counts.
func BenchmarkKernelComparison(b *testing.B) {
	for _, k := range []struct {
		name   string
		kernel core.Kernel
	}{
		{"ruppert", core.KernelRuppert},
		{"advancing-front", core.KernelAdvancingFront},
	} {
		b.Run(k.name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.InviscidKernel = k.kernel
			var tris int
			for i := 0; i < b.N; i++ {
				res, err := core.Generate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				tris = res.Stats.InviscidTris
			}
			b.ReportMetric(float64(tris), "inviscid-triangles")
		})
	}
}

// BenchmarkWeakScaling reports the complementary weak-scaling study the
// paper leaves to future work: the workload grows with the rank count, so
// flat time (efficiency near 1) is ideal.
func BenchmarkWeakScaling(b *testing.B) {
	cfg := benchConfig()
	cfg.Ranks = 1
	cfg.SubdomainsPerRank = 64
	res, err := core.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var base []perfmodel.Task
	for _, tm := range res.Stats.Tasks {
		base = append(base, perfmodel.Task{Cost: tm.Seconds, Bytes: tm.Bytes, BoundaryLayer: tm.BoundaryLayer})
	}
	var e64 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := perfmodel.WeakScaling(base, 0.001, perfmodel.FDRInfiniband(), []int{1, 4, 16, 64})
		e64 = pts[len(pts)-1].Efficiency
	}
	b.ReportMetric(100*e64, "weak-efficiency-64-pct")
}
