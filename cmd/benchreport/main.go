// Command benchreport runs the two headline benchmarks — the full
// push-button pipeline at 1/2/4 ranks and the Figure 8 projection-based
// decomposition — through testing.Benchmark and appends a labeled entry to
// a BENCH_<date>.json trajectory file. Committing the file after a
// performance change records the before/after pair next to the code that
// caused it.
//
// With -guard the command additionally compares the fresh
// PushButton/1-ranks measurement against the file's most recent entry and
// fails if allocations grew beyond noise, so a refactor that is supposed
// to be allocation-neutral proves it in CI. -timeout bounds the whole
// report run, and Ctrl-C aborts the in-flight benchmark cleanly.
//
// Usage:
//
//	go run ./cmd/benchreport -label after-arena [-o BENCH_2026-08-05.json]
//	go run ./cmd/benchreport -label refactor -guard -o BENCH_2026-08-05.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"testing"
	"time"

	"pamg2d/internal/adapt"
	"pamg2d/internal/benchcfg"
	"pamg2d/internal/core"
	"pamg2d/internal/metric"
	"pamg2d/internal/mpi"
	"pamg2d/internal/project"
	"pamg2d/internal/trace"
)

// benchResult is one benchmark's measured cost, the same triple `go test
// -bench -benchmem` prints, plus the Delaunay kernel worker count the run
// used. Recording the worker count per result keeps comparisons honest:
// the guard only ever compares measurements taken with the same kernel
// parallelism (entries written before the field existed are sequential,
// so a missing/zero value normalizes to 1).
type benchResult struct {
	Iterations    int   `json:"iterations"`
	NsPerOp       int64 `json:"ns_per_op"`
	BytesPerOp    int64 `json:"bytes_per_op"`
	AllocsPerOp   int64 `json:"allocs_per_op"`
	KernelWorkers int   `json:"kernel_workers,omitempty"`
	// Service-load columns, present only on Meshd/load entries ingested
	// from a meshload summary (-load): requests per second through a live
	// meshd plus the client-observed latency percentiles.
	ThroughputRPS float64 `json:"throughput_rps,omitempty"`
	P50Ms         float64 `json:"p50_ms,omitempty"`
	P99Ms         float64 `json:"p99_ms,omitempty"`
}

// kwOf returns a result's kernel worker count with the pre-field entries
// (which all measured the sequential kernel) normalized to 1.
func kwOf(r benchResult) int {
	if r.KernelWorkers < 1 {
		return 1
	}
	return r.KernelWorkers
}

// entry is one labeled measurement of the whole suite.
type entry struct {
	Label      string                 `json:"label"`
	Timestamp  string                 `json:"timestamp"`
	GoVersion  string                 `json:"go_version"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

// report is the trajectory file: entries appended in measurement order.
type report struct {
	Entries []entry `json:"entries"`
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	label := fs.String("label", "", "label for this entry (required; e.g. seed, after-arena)")
	out := fs.String("o", "", "trajectory file (default BENCH_<today>.json)")
	benchtime := fs.Duration("benchtime", time.Second, "minimum run time per benchmark")
	guard := fs.Bool("guard", false, "fail if PushButton/1-ranks allocations regress vs the file's last entry")
	loadPath := fs.String("load", "", "ingest a meshload summary JSON as the Meshd/load throughput/latency column")
	loadOnly := fs.Bool("load-only", false, "with -load: skip the benchmark suite and record only the Meshd/load column")
	loadGuard := fs.Bool("load-guard", false, "fail if Meshd/load throughput or p99 regress vs the file's last comparable entry")
	timeout := fs.Duration("timeout", 0, "abort the whole report after this duration (0 = no limit)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *label == "" {
		return errors.New("-label is required")
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	path := *out
	if path == "" {
		path = "BENCH_" + time.Now().Format("2006-01-02") + ".json"
	}

	e := entry{
		Label:      *label,
		Timestamp:  time.Now().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]benchResult{},
	}

	if *loadOnly && *loadPath == "" {
		return errors.New("-load-only requires -load")
	}
	if *loadPath != "" {
		lr, err := ingestLoad(*loadPath)
		if err != nil {
			return err
		}
		e.Benchmarks["Meshd/load"] = lr
	}
	if *loadOnly {
		return finish(path, e, *guard, *loadGuard)
	}

	for _, ranks := range []int{1, 2, 4} {
		name := fmt.Sprintf("PushButton/%d-ranks", ranks)
		fmt.Fprintf(os.Stderr, "running %s...\n", name)
		r, err := runPushButton(ctx, ranks, 1, false, false, *benchtime)
		if err != nil {
			return err
		}
		e.Benchmarks[name] = r
	}
	// The -kwN runs turn on the intra-rank parallel Delaunay kernel inside
	// the single-rank pipeline. Their speedup is only meaningful when
	// GOMAXPROCS > 1 (the entry records it), and the per-result worker
	// count keeps them out of the sequential entries' comparisons.
	for _, kw := range []int{2, 4} {
		name := fmt.Sprintf("PushButton/1-ranks-kw%d", kw)
		fmt.Fprintf(os.Stderr, "running %s...\n", name)
		r, err := runPushButton(ctx, 1, kw, false, false, *benchtime)
		if err != nil {
			return err
		}
		e.Benchmarks[name] = r
	}
	// The audited run tracks verification overhead: same workload as
	// PushButton/1-ranks plus the invariant-audit stage. The allocation
	// guard stays on the unaudited single-rank entry.
	fmt.Fprintln(os.Stderr, "running PushButton/1-ranks-audit...")
	ra, err := runPushButton(ctx, 1, 1, true, false, *benchtime)
	if err != nil {
		return err
	}
	e.Benchmarks["PushButton/1-ranks-audit"] = ra
	// The traced run tracks the span tracer's overhead: same workload as
	// PushButton/1-ranks with a fresh tracer recording every span. Against
	// the guarded untraced entry this column is the tracer's price; the
	// guard itself stays on the untraced entry, which is what proves the
	// disabled tracer allocation-neutral.
	fmt.Fprintln(os.Stderr, "running PushButton/1-ranks-traced...")
	rt, err := runPushButton(ctx, 1, 1, false, true, *benchtime)
	if err != nil {
		return err
	}
	e.Benchmarks["PushButton/1-ranks-traced"] = rt
	// The TCP run tracks the real-wire transport's price: the identical
	// 4-rank workload over a loopback TCP fabric (one SPMD pipeline per
	// cluster member, framing + typed codecs + result re-broadcast on the
	// wire). Against PushButton/4-ranks this column is the transport
	// overhead; the allocation guard stays on the in-process entry.
	fmt.Fprintln(os.Stderr, "running PushButton/4-ranks-tcp...")
	rw, err := runPushButtonTCP(ctx, 4, *benchtime)
	if err != nil {
		return err
	}
	e.Benchmarks["PushButton/4-ranks-tcp"] = rw
	// The adapt run tracks the cavity-operator engine: one metric-
	// adaptation cycle of the PushButton mesh against the shared analytic
	// boundary-layer metric (identical to BenchmarkPushButtonAdapt).
	// Generation happens once outside the timer; the allocation guard
	// stays on the unadapted single-rank entry.
	fmt.Fprintln(os.Stderr, "running PushButton/1-ranks-adapt...")
	rad, err := runPushButtonAdapt(*benchtime)
	if err != nil {
		return err
	}
	e.Benchmarks["PushButton/1-ranks-adapt"] = rad
	fmt.Fprintln(os.Stderr, "running Fig08Decompose128...")
	r, err := runFig08(*benchtime)
	if err != nil {
		return err
	}
	e.Benchmarks["Fig08Decompose128"] = r

	return finish(path, e, *guard, *loadGuard)
}

// finish loads the trajectory file, runs the requested guards against its
// prior entries, appends the fresh entry, rewrites the file, and prints
// the measurement table. Guard failures surface after the entry is
// persisted, so the regressing measurement is on record either way.
func finish(path string, e entry, guard, loadGuard bool) error {
	rep := report{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &rep); err != nil {
			return fmt.Errorf("parse existing %s: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	guardErr := error(nil)
	if guard {
		guardErr = checkGuard(&rep, e)
	}
	if loadGuard && guardErr == nil {
		guardErr = checkLoadGuard(&rep, e)
	}
	rep.Entries = append(rep.Entries, e)
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "appended entry %q to %s\n", e.Label, path)
	for name, br := range e.Benchmarks {
		if br.ThroughputRPS > 0 {
			fmt.Printf("%-24s %10.2f req/s %8.1f p50 ms %8.1f p99 ms\n",
				name, br.ThroughputRPS, br.P50Ms, br.P99Ms)
			continue
		}
		fmt.Printf("%-24s %12d ns/op %12d B/op %8d allocs/op\n",
			name, br.NsPerOp, br.BytesPerOp, br.AllocsPerOp)
	}
	return guardErr
}

// loadBench is the service-load column's benchmark name and the target of
// the -load-guard regression gate.
const loadBench = "Meshd/load"

// ingestLoad reads a meshload summary JSON (cmd/meshload -save) and
// converts it into the Meshd/load column: p50 doubles as the ns/op figure
// so trajectory tooling that only understands ns/op still sorts it
// sensibly.
func ingestLoad(path string) (benchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return benchResult{}, err
	}
	var s struct {
		Requests      int     `json:"requests"`
		Errors        int     `json:"errors"`
		ThroughputRPS float64 `json:"throughput_rps"`
		P50Ms         float64 `json:"p50_ms"`
		P99Ms         float64 `json:"p99_ms"`
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return benchResult{}, fmt.Errorf("parse meshload summary %s: %w", path, err)
	}
	if s.Requests == 0 || s.ThroughputRPS <= 0 {
		return benchResult{}, fmt.Errorf("meshload summary %s records no completed requests", path)
	}
	if s.Errors > 0 {
		return benchResult{}, fmt.Errorf("meshload summary %s has %d failed requests", path, s.Errors)
	}
	return benchResult{
		Iterations:    s.Requests,
		NsPerOp:       int64(s.P50Ms * 1e6),
		ThroughputRPS: s.ThroughputRPS,
		P50Ms:         s.P50Ms,
		P99Ms:         s.P99Ms,
	}, nil
}

// checkLoadGuard gates the Meshd/load column against the most recent
// prior entry that recorded it at the same GOMAXPROCS. Service latency in
// shared CI is far noisier than allocation counts, so the slacks are
// generous: throughput may drop up to 25%, p99 may grow up to 50% plus
// 20ms, before the guard fails. No prior entry is a warn-pass, so the
// first recorded load run seeds the trajectory without failing.
func checkLoadGuard(rep *report, e entry) error {
	cur, ok := e.Benchmarks[loadBench]
	if !ok {
		return fmt.Errorf("load-guard: entry has no %s measurement (run with -load)", loadBench)
	}
	for i := len(rep.Entries) - 1; i >= 0; i-- {
		if rep.Entries[i].GOMAXPROCS != e.GOMAXPROCS {
			continue
		}
		prev, ok := rep.Entries[i].Benchmarks[loadBench]
		if !ok || prev.ThroughputRPS <= 0 {
			continue
		}
		label := rep.Entries[i].Label
		if floor := prev.ThroughputRPS * 0.75; cur.ThroughputRPS < floor {
			return fmt.Errorf("load-guard: throughput regressed vs %q: %.2f -> %.2f req/s (floor %.2f)",
				label, prev.ThroughputRPS, cur.ThroughputRPS, floor)
		}
		if limit := prev.P99Ms*1.5 + 20; cur.P99Ms > limit {
			return fmt.Errorf("load-guard: p99 regressed vs %q: %.1f -> %.1f ms (limit %.1f)",
				label, prev.P99Ms, cur.P99Ms, limit)
		}
		fmt.Fprintf(os.Stderr, "load-guard: %s within bounds vs %q (%.2f req/s, p99 %.1f ms)\n",
			loadBench, label, cur.ThroughputRPS, cur.P99Ms)
		return nil
	}
	fmt.Fprintf(os.Stderr, "load-guard: no prior %s entry at GOMAXPROCS=%d — recording baseline\n",
		loadBench, e.GOMAXPROCS)
	return nil
}

// guardBench is the benchmark the allocation-neutrality guard watches: the
// single-rank pipeline, where every allocation is the pipeline's own.
const guardBench = "PushButton/1-ranks"

// checkGuard compares the fresh measurement of guardBench against the most
// recent prior entry that recorded it under comparable conditions: same
// GOMAXPROCS and the same kernel worker count (a kw4 run must never gate
// against a kw1 baseline, nor a multi-core run against a single-core one).
// Wall time is too noisy to gate on, but allocation counts are
// near-deterministic, so the guard fails when bytes/op or allocs/op grow
// by more than 10% plus a small absolute slack.
func checkGuard(rep *report, e entry) error {
	cur, ok := e.Benchmarks[guardBench]
	if !ok {
		return fmt.Errorf("guard: entry has no %s measurement", guardBench)
	}
	for i := len(rep.Entries) - 1; i >= 0; i-- {
		if rep.Entries[i].GOMAXPROCS != e.GOMAXPROCS {
			continue
		}
		prev, ok := rep.Entries[i].Benchmarks[guardBench]
		if !ok || kwOf(prev) != kwOf(cur) {
			continue
		}
		label := rep.Entries[i].Label
		if err := neutral(label, "allocs/op", prev.AllocsPerOp, cur.AllocsPerOp); err != nil {
			return err
		}
		if err := neutral(label, "B/op", prev.BytesPerOp, cur.BytesPerOp); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "guard: %s allocation-neutral vs %q (%d B/op, %d allocs/op)\n",
			guardBench, label, cur.BytesPerOp, cur.AllocsPerOp)
		return nil
	}
	return fmt.Errorf("guard: no prior %s entry at GOMAXPROCS=%d kw%d to compare against",
		guardBench, e.GOMAXPROCS, kwOf(cur))
}

func neutral(label, what string, prev, cur int64) error {
	limit := prev + prev/10 + 16
	if cur > limit {
		return fmt.Errorf("guard: %s %s regressed vs %q: %d -> %d (limit %d)",
			guardBench, what, label, prev, cur, limit)
	}
	return nil
}

// runPushButton measures the full pipeline at the given rank count on the
// shared scaled-down configuration (identical to BenchmarkPushButton; with
// audit set, to BenchmarkPushButtonAudited). kw is the Delaunay kernel
// worker count, recorded in the result so the guard compares like with
// like. With traced set, every iteration runs under a fresh span tracer so
// the measurement includes the recorder's full cost (buffer growth
// included). A canceled ctx aborts between (and, via the stage engine,
// inside) iterations.
func runPushButton(ctx context.Context, ranks, kw int, audit, traced bool, benchtime time.Duration) (benchResult, error) {
	cfg := benchcfg.PushButton()
	cfg.Ranks = ranks
	cfg.KernelWorkers = kw
	cfg.Audit = audit
	var genErr error
	r := bench(benchtime, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if traced {
				cfg.Tracer = trace.New(cfg.Ranks)
			}
			if _, err := core.GenerateContext(ctx, cfg); err != nil {
				genErr = err
				b.FailNow()
			}
		}
	})
	res := toResult(r)
	res.KernelWorkers = kw
	return res, genErr
}

// runPushButtonTCP measures the full pipeline over a loopback TCP fabric
// (identical to BenchmarkPushButtonTCP): the clusters bootstrap once
// outside the timed region, then every iteration runs one SPMD pipeline
// per cluster member concurrently, splitting the distributed phases over
// real TCP connections.
func runPushButtonTCP(ctx context.Context, ranks int, benchtime time.Duration) (benchResult, error) {
	clusters, err := mpi.LoopbackClusters(ctx, ranks)
	if err != nil {
		return benchResult{}, err
	}
	defer func() {
		for _, cl := range clusters {
			cl.Close()
		}
	}()
	cfg := benchcfg.PushButton()
	cfg.Ranks = ranks
	var genErr error
	r := bench(benchtime, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			errs := make([]error, ranks)
			for p, cl := range clusters {
				wg.Add(1)
				go func(p int, cl *mpi.Cluster) {
					defer wg.Done()
					c := cfg
					c.Fabric = cl
					_, errs[p] = core.GenerateContext(ctx, c)
				}(p, cl)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					genErr = err
					b.FailNow()
				}
			}
		}
	})
	return toResult(r), genErr
}

// runFig08 measures the projection-based decomposition of the Figure 8
// boundary-layer point set (identical to BenchmarkFig08Decompose128; the
// tree build is excluded from the timing there too).
func runFig08(benchtime time.Duration) (benchResult, error) {
	pts, err := benchcfg.Fig08Points()
	if err != nil {
		return benchResult{}, err
	}
	opt := benchcfg.Fig08Options()
	r := bench(benchtime, func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			root := project.New(pts)
			b.StartTimer()
			project.Decompose(root, opt)
		}
	})
	return toResult(r), nil
}

// runPushButtonAdapt measures one metric-adaptation cycle of the cavity-
// operator engine on the PushButton mesh against the shared analytic
// boundary-layer metric (identical to BenchmarkPushButtonAdapt). The mesh
// is generated once outside the timer; Adapt does not mutate its input,
// so every iteration adapts the identical mesh.
func runPushButtonAdapt(benchtime time.Duration) (benchResult, error) {
	cfg := benchcfg.PushButton()
	cfg.Ranks = 1
	res, err := core.Generate(cfg)
	if err != nil {
		return benchResult{}, err
	}
	fn, err := metric.ParseSpec(benchcfg.AdaptMetric)
	if err != nil {
		return benchResult{}, err
	}
	f := metric.Analytic(res.Mesh, fn)
	var adaptErr error
	r := bench(benchtime, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := adapt.Adapt(res.Mesh, f, adapt.Options{Resample: fn}); err != nil {
				adaptErr = err
				b.FailNow()
			}
		}
	})
	return toResult(r), adaptErr
}

// bench runs fn under testing.Benchmark with the requested minimum run
// time (testing.Benchmark itself honors the -test.benchtime flag, which a
// plain binary does not define, so the duration is applied by registering
// it explicitly).
func bench(benchtime time.Duration, fn func(b *testing.B)) testing.BenchmarkResult {
	if f := flag.Lookup("test.benchtime"); f == nil {
		testing.Init()
	}
	flag.Set("test.benchtime", benchtime.String())
	return testing.Benchmark(fn)
}

func toResult(r testing.BenchmarkResult) benchResult {
	return benchResult{
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}
