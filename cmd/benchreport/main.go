// Command benchreport runs the two headline benchmarks — the full
// push-button pipeline at 1/2/4 ranks and the Figure 8 projection-based
// decomposition — through testing.Benchmark and appends a labeled entry to
// a BENCH_<date>.json trajectory file. Committing the file after a
// performance change records the before/after pair next to the code that
// caused it.
//
// Usage:
//
//	go run ./cmd/benchreport -label after-arena [-o BENCH_2026-08-05.json]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"pamg2d/internal/benchcfg"
	"pamg2d/internal/core"
	"pamg2d/internal/project"
)

// benchResult is one benchmark's measured cost, the same triple `go test
// -bench -benchmem` prints.
type benchResult struct {
	Iterations  int   `json:"iterations"`
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// entry is one labeled measurement of the whole suite.
type entry struct {
	Label      string                 `json:"label"`
	Timestamp  string                 `json:"timestamp"`
	GoVersion  string                 `json:"go_version"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

// report is the trajectory file: entries appended in measurement order.
type report struct {
	Entries []entry `json:"entries"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	label := fs.String("label", "", "label for this entry (required; e.g. seed, after-arena)")
	out := fs.String("o", "", "trajectory file (default BENCH_<today>.json)")
	benchtime := fs.Duration("benchtime", time.Second, "minimum run time per benchmark")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *label == "" {
		return errors.New("-label is required")
	}
	path := *out
	if path == "" {
		path = "BENCH_" + time.Now().Format("2006-01-02") + ".json"
	}

	e := entry{
		Label:      *label,
		Timestamp:  time.Now().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]benchResult{},
	}

	for _, ranks := range []int{1, 2, 4} {
		name := fmt.Sprintf("PushButton/%d-ranks", ranks)
		fmt.Fprintf(os.Stderr, "running %s...\n", name)
		r, err := runPushButton(ranks, *benchtime)
		if err != nil {
			return err
		}
		e.Benchmarks[name] = r
	}
	fmt.Fprintln(os.Stderr, "running Fig08Decompose128...")
	r, err := runFig08(*benchtime)
	if err != nil {
		return err
	}
	e.Benchmarks["Fig08Decompose128"] = r

	rep := report{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &rep); err != nil {
			return fmt.Errorf("parse existing %s: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	rep.Entries = append(rep.Entries, e)
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "appended entry %q to %s\n", *label, path)
	for name, br := range e.Benchmarks {
		fmt.Printf("%-24s %12d ns/op %12d B/op %8d allocs/op\n",
			name, br.NsPerOp, br.BytesPerOp, br.AllocsPerOp)
	}
	return nil
}

// runPushButton measures the full pipeline at the given rank count on the
// shared scaled-down configuration (identical to BenchmarkPushButton).
func runPushButton(ranks int, benchtime time.Duration) (benchResult, error) {
	cfg := benchcfg.PushButton()
	cfg.Ranks = ranks
	var genErr error
	r := bench(benchtime, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Generate(cfg); err != nil {
				genErr = err
				b.FailNow()
			}
		}
	})
	return toResult(r), genErr
}

// runFig08 measures the projection-based decomposition of the Figure 8
// boundary-layer point set (identical to BenchmarkFig08Decompose128; the
// tree build is excluded from the timing there too).
func runFig08(benchtime time.Duration) (benchResult, error) {
	pts, err := benchcfg.Fig08Points()
	if err != nil {
		return benchResult{}, err
	}
	opt := benchcfg.Fig08Options()
	r := bench(benchtime, func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			root := project.New(pts)
			b.StartTimer()
			project.Decompose(root, opt)
		}
	})
	return toResult(r), nil
}

// bench runs fn under testing.Benchmark with the requested minimum run
// time (testing.Benchmark itself honors the -test.benchtime flag, which a
// plain binary does not define, so the duration is applied by registering
// it explicitly).
func bench(benchtime time.Duration, fn func(b *testing.B)) testing.BenchmarkResult {
	if f := flag.Lookup("test.benchtime"); f == nil {
		testing.Init()
	}
	flag.Set("test.benchtime", benchtime.String())
	return testing.Benchmark(fn)
}

func toResult(r testing.BenchmarkResult) benchResult {
	return benchResult{
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}
