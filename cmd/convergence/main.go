// Command convergence reproduces Figure 16: the iterative solution of the
// same model problem on the anisotropic mesh and on the isotropic
// comparison mesh. The paper's anisotropic mesh (360,241 triangles)
// converges around 5,000 FUN3D iterations while the isotropic mesh
// (5,314,372 triangles — 14.7x more) takes around 10,000; here the solver
// substitute prints both residual histories and the iteration and element
// ratios, whose shape (anisotropic wins on both axes) is the reproduced
// result.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"pamg2d/internal/airfoil"
	"pamg2d/internal/blayer"
	"pamg2d/internal/core"
	"pamg2d/internal/geom"
	"pamg2d/internal/growth"
	"pamg2d/internal/mesh"
	"pamg2d/internal/sizing"
	"pamg2d/internal/solver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("convergence: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the Figure 16 study with explicit streams for testability.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("convergence", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		nHalf  = fs.Int("n", 48, "surface resolution")
		blH0   = fs.Float64("bl-h0", 1e-3, "first boundary-layer height")
		layers = fs.Int("bl-layers", 18, "maximum boundary layers")
		isoRes = fs.Float64("iso-factor", 1, "isotropic near-wall resolution factor (1 = first BL layer height)")
		tol    = fs.Float64("tol", 1e-10, "solver stopping tolerance")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := core.DefaultConfig()
	cfg.Geometry = airfoil.Single(airfoil.NACA0012, *nHalf, 10)
	cfg.BL = blayer.DefaultParams()
	cfg.BL.Growth = growth.Geometric{H0: *blH0, Ratio: 1.3}
	cfg.BL.MaxLayers = *layers
	cfg.SurfaceH0 = 0.04
	cfg.Gradation = 0.25
	cfg.HMax = 2
	cfg.Ranks = 2

	fmt.Fprintln(stdout, "generating anisotropic mesh...")
	aniso, err := core.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "generating isotropic mesh (same geometry and sizing, no boundary layer)...")
	iso, err := core.IsotropicBaseline(cfg, *isoRes)
	if err != nil {
		return err
	}

	g, err := cfg.Geometry.Graph()
	if err != nil {
		return err
	}
	surf := sizing.NewGraded(g.Surfaces[0].Points, 1, 0, 0)
	nearBody := func(p geom.Point) bool { return surf.Distance(p) < 0.05 }
	bc := solver.AirfoilBC(nearBody)

	solve := func(name string, m *mesh.Mesh) (*solver.Solution, error) {
		sol, err := solver.Solve(
			solver.Problem{Mesh: m, Diffusivity: 0.01, Velocity: geom.V(1, 0.1), Boundary: bc},
			solver.Options{Tol: *tol, MaxIters: 500000, Method: solver.GaussSeidel})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(stdout, "%-12s %9d triangles   %7d iterations  converged=%v\n",
			name, m.NumTriangles(), sol.History.Iterations, sol.History.Converged)
		return sol, nil
	}

	fmt.Fprintln(stdout, "\nFigure 16: convergence of the model problem")
	sa, err := solve("anisotropic", aniso.Mesh)
	if err != nil {
		return err
	}
	si, err := solve("isotropic", iso)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "\nelement ratio  iso/aniso = %.1fx (paper: 14.7x)\n",
		float64(iso.NumTriangles())/float64(aniso.Mesh.NumTriangles()))
	fmt.Fprintf(stdout, "iteration ratio iso/aniso = %.2fx (paper: ~2x)\n",
		float64(si.History.Iterations)/float64(sa.History.Iterations))

	// Residual history samples (the curve of Figure 16).
	fmt.Fprintln(stdout, "\nresidual history (sampled):")
	sample := func(name string, h solver.History) {
		fmt.Fprintf(stdout, "%-12s", name)
		n := len(h.Residuals)
		for i := 0; i < 8; i++ {
			idx := i * (n - 1) / 7
			fmt.Fprintf(stdout, " %9.1e", h.Residuals[idx])
		}
		fmt.Fprintln(stdout)
	}
	sample("anisotropic", sa.History)
	sample("isotropic", si.History)
	return nil
}
