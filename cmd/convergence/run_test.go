package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestConvergenceRunSmall(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "20", "-bl-h0", "4e-3", "-bl-layers", "8", "-iso-factor", "3", "-tol", "1e-6"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"anisotropic", "isotropic", "element ratio", "iteration ratio", "residual history"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}
