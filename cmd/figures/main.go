// Command figures regenerates the paper's illustrative figures as SVG
// files from this reproduction's own data structures:
//
//	fig02_normals.svg        NACA 0012 surface with outward normals
//	fig04_fans.svg           trailing-edge region with the fan of curved rays
//	fig05_isotropy.svg       variable-height boundary layer (isotropy cutoff)
//	fig08_subdomains.svg     boundary layer decomposed into Delaunay subdomains
//	fig09_quadrants.svg      the four initial decoupling quadrants
//	fig10_decoupled.svg      the recursively decoupled inviscid subdomains
//	fig13_intersections.svg  three-element layers with resolved intersections
//	mesh.svg                 a complete pipeline mesh, regions color-coded
//
// Usage: figures -o <directory>
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"pamg2d/internal/airfoil"
	"pamg2d/internal/blayer"
	"pamg2d/internal/core"
	"pamg2d/internal/decouple"
	"pamg2d/internal/delaunay"
	"pamg2d/internal/geom"
	"pamg2d/internal/growth"
	"pamg2d/internal/mesh"
	"pamg2d/internal/project"
	"pamg2d/internal/sizing"
	"pamg2d/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	outDir := flag.String("o", "figures", "output directory")
	flag.Parse()
	if err := run(*outDir, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run renders every figure into dir; exposed for tests.
func run(dir string, stdout io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var firstErr error
	save := func(name string, c *viz.Canvas) {
		if firstErr != nil {
			return
		}
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			firstErr = err
			return
		}
		if err := c.WriteSVG(f, 1400); err != nil {
			f.Close()
			firstErr = err
			return
		}
		if err := f.Close(); err != nil {
			firstErr = err
			return
		}
		fmt.Fprintln(stdout, "wrote", path)
	}

	fig02(save)
	fig04(save)
	fig05(save)
	fig08(save)
	fig09and10(save)
	fig13(save)
	finalMesh(save)
	return firstErr
}

func fig02(save func(string, *viz.Canvas)) {
	g, err := airfoil.Single(airfoil.NACA0012, 64, 30).Graph()
	if err != nil {
		log.Fatal(err)
	}
	pts := g.Surfaces[0].Points
	normals := blayer.VertexNormals(pts)
	c := viz.New()
	c.Polygon(pts, viz.Style{Stroke: "#000"})
	for i, p := range pts {
		tip := p.Add(normals[i].Scale(0.04))
		c.Segment(geom.Segment{A: p, B: tip}, viz.Style{Stroke: viz.Palette(0)})
	}
	save("fig02_normals.svg", c)
}

func blParams() blayer.Params {
	p := blayer.DefaultParams()
	p.Growth = growth.Geometric{H0: 1.5e-3, Ratio: 1.3}
	p.MaxLayers = 14
	return p
}

func fig04(save func(string, *viz.Canvas)) {
	g, err := airfoil.Single(airfoil.NACA0012, 64, 30).Graph()
	if err != nil {
		log.Fatal(err)
	}
	layers := blayer.Generate(g, blParams())
	l := layers[0]
	c := viz.New()
	// Zoom on the trailing edge: draw only rays with origins near x=1.
	c.Polygon(l.Surface.Points, viz.Style{Stroke: "#000"})
	for i, r := range l.Rays {
		if r.Origin.X < 0.9 {
			continue
		}
		color := viz.Palette(0)
		if r.Fan {
			color = viz.Palette(3) // the fan of curved rays
		}
		c.Polyline(append([]geom.Point{r.Origin}, l.Points[i]...), viz.Style{Stroke: color})
	}
	save("fig04_fans.svg", c)
}

func fig05(save func(string, *viz.Canvas)) {
	g, err := airfoil.Single(airfoil.NACA0012, 96, 30).Graph()
	if err != nil {
		log.Fatal(err)
	}
	layers := blayer.Generate(g, blParams())
	l := layers[0]
	c := viz.New()
	c.Polygon(l.Surface.Points, viz.Style{Stroke: "#000"})
	for i := range l.Rays {
		c.Polyline(append([]geom.Point{l.Rays[i].Origin}, l.Points[i]...),
			viz.Style{Stroke: viz.Palette(0), Opacity: 0.7})
	}
	c.Polyline(l.OuterBorder(blParams()), viz.Style{Stroke: viz.Palette(3)})
	save("fig05_isotropy.svg", c)
}

func fig08(save func(string, *viz.Canvas)) {
	g, err := airfoil.Single(airfoil.NACA0012, 128, 30).Graph()
	if err != nil {
		log.Fatal(err)
	}
	layers := blayer.Generate(g, blParams())
	pts := layers[0].AllPoints()
	frame := geom.BBoxOf(pts)
	leaves, _ := project.Decompose(project.New(pts), project.Options{MinVerts: 16, MaxDepth: 7})
	c := viz.New()
	for li, leaf := range leaves {
		res, err := delaunay.Triangulate(delaunay.Input{Points: leaf.Points(), Sorted: true, Frame: frame})
		if err != nil {
			log.Fatal(err)
		}
		b := mesh.NewBuilder()
		for _, tri := range res.Triangles {
			a, q, r := res.Points[tri[0]], res.Points[tri[1]], res.Points[tri[2]]
			if leaf.Region.Contains(geom.Circumcenter(a, q, r)) {
				b.AddTriangle(a, q, r)
			}
		}
		c.Mesh(b.Mesh(), viz.Style{Stroke: viz.Palette(li), Opacity: 0.9})
	}
	save("fig08_subdomains.svg", c)
}

func fig09and10(save func(string, *viz.Canvas)) {
	nb := geom.BBox{Min: geom.Pt(-0.5, -0.5), Max: geom.Pt(1.5, 0.5)}
	ff := geom.BBox{Min: geom.Pt(-15, -15), Max: geom.Pt(16, 15)}
	grad := sizing.NewGraded([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}, 0.08, 0.25, 3)
	quads, err := decouple.InitialQuadrants(nb, ff, grad.Area)
	if err != nil {
		log.Fatal(err)
	}
	c := viz.New()
	for i, q := range quads {
		c.Polygon(q.Border, viz.Style{Stroke: viz.Palette(i)})
		c.Points(q.Border, 0.08, viz.Style{Fill: viz.Palette(i), Stroke: viz.Palette(i)})
	}
	save("fig09_quadrants.svg", c)

	regions := decouple.Decouple(quads[:], grad.Area, 64)
	c2 := viz.New()
	for i, r := range regions {
		c2.Polygon(r.Border, viz.Style{Stroke: viz.Palette(i)})
	}
	save("fig10_decoupled.svg", c2)
}

func fig13(save func(string, *viz.Canvas)) {
	g, err := airfoil.ThreeElement(96).Graph()
	if err != nil {
		log.Fatal(err)
	}
	p := blayer.DefaultParams()
	p.Growth = growth.Geometric{H0: 8e-4, Ratio: 1.3}
	p.MaxLayers = 20
	layers := blayer.Generate(g, p)
	c := viz.New()
	for li, l := range layers {
		c.Polygon(l.Surface.Points, viz.Style{Stroke: "#000"})
		for i := range l.Rays {
			color := viz.Palette(li)
			if l.Rays[i].MaxLen < p.Growth.Offset(p.MaxLayers-1) {
				color = viz.Palette(3) // trimmed by an intersection
			}
			c.Polyline(append([]geom.Point{l.Rays[i].Origin}, l.Points[i]...),
				viz.Style{Stroke: color, Opacity: 0.8})
		}
	}
	save("fig13_intersections.svg", c)
}

func finalMesh(save func(string, *viz.Canvas)) {
	cfg := core.DefaultConfig()
	cfg.Geometry = airfoil.Single(airfoil.NACA0012, 48, 8)
	cfg.BL.Growth = growth.Geometric{H0: 2e-3, Ratio: 1.3}
	cfg.BL.MaxLayers = 12
	cfg.SurfaceH0 = 0.05
	cfg.HMax = 1.5
	cfg.Ranks = 2
	res, err := core.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	c := viz.New()
	c.Mesh(res.Mesh, viz.Style{Stroke: "#555"})
	save("mesh.svg", c)
}
