package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGeneratesAllFigures(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(dir, &out); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"fig02_normals.svg", "fig04_fans.svg", "fig05_isotropy.svg",
		"fig08_subdomains.svg", "fig09_quadrants.svg", "fig10_decoupled.svg",
		"fig13_intersections.svg", "mesh.svg",
	}
	for _, name := range want {
		path := filepath.Join(dir, name)
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Size() < 500 {
			t.Errorf("%s is suspiciously small (%d bytes)", name, st.Size())
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "<svg") {
			t.Errorf("%s is not an SVG", name)
		}
	}
	if got := strings.Count(out.String(), "wrote "); got != len(want) {
		t.Errorf("log lines = %d, want %d", got, len(want))
	}
}
