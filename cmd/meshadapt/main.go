// Command meshadapt adapts a saved mesh toward unit metric edge length:
// read a mesh, build a metric field (an analytic spec or the Hessian of
// a freshly solved default problem), run the cavity-operator engine for
// the requested cycles, audit, and write the adapted mesh.
//
//	meshgen -o flat.mesh
//	meshadapt -metric "bl:x0=0,y0=0,x1=1,y1=0,hn=0.005,ht=0.1,grow=0.5" -o adapted.mesh flat.mesh
package main

import (
	"fmt"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "meshadapt: %v\n", err)
		os.Exit(1)
	}
}
