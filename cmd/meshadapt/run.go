package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pamg2d/internal/adapt"
	"pamg2d/internal/core"
	"pamg2d/internal/mesh"
	"pamg2d/internal/solver"
	"pamg2d/internal/trace"
)

// run executes the meshadapt CLI against explicit streams so it is
// testable end to end.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("meshadapt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		metricSrc  = fs.String("metric", "hessian", "metric source: hessian | a metric spec (uniform:h=… | bl:…)")
		cycles     = fs.Int("cycles", 1, "metric-adaptation cycles (metric rebuilt each cycle)")
		sweeps     = fs.Int("sweeps", 0, "operator sweeps per cycle (0 = default cap)")
		band       = fs.Float64("band", 0, "edge-length acceptance band upper bound (0 = sqrt 2)")
		workers    = fs.Int("workers", 1, "evaluation/commit goroutines (0 = NumCPU via pool default)")
		ranks      = fs.Int("ranks", 1, "distribute plan evaluation over this many in-process ranks")
		format     = fs.String("format", "ascii", "output format: ascii | binary | vtk")
		out        = fs.String("o", "", "output file (default stdout)")
		quiet      = fs.Bool("q", false, "suppress per-cycle reports")
		traceOut   = fs.String("trace", "", "write a Chrome trace-event file of the adaptation")
		metricsOut = fs.String("metrics", "", "write the run-metrics registry as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: meshadapt [flags] mesh-file")
	}

	m, err := readMesh(fs.Arg(0))
	if err != nil {
		return err
	}

	p := core.AdaptParams{Cycles: *cycles, Metric: *metricSrc, SweepCap: *sweeps, Band: *band}
	solve := adapt.DefaultSolve(solver.Options{Tol: 1e-8, MaxIters: 20000, Method: solver.GaussSeidel})
	build, resample, err := adapt.MetricSource(p, solve)
	if err != nil {
		return err
	}

	var tracer *trace.Tracer
	if *traceOut != "" || *metricsOut != "" {
		tracer = trace.New(max(*ranks, 1))
	}
	opt := adapt.Options{Workers: *workers, Ranks: *ranks, Tracer: tracer, Resample: resample}

	adapted, reps, aerr := adapt.Cycles(m, p, opt, build)
	if !*quiet {
		for _, r := range reps {
			fmt.Fprintf(stderr, "cycle %d   %d splits, %d collapses, %d swaps, %d smooths; %.1f%% of %d edges in band (%d sweeps)\n",
				r.Cycle, r.Result.Splits, r.Result.Collapses, r.Result.Swaps, r.Result.Smooths,
				100*r.Result.InBand, r.Result.Edges, r.Result.Sweeps)
		}
	}
	if tracer != nil {
		if err := writeObservability(tracer, *traceOut, *metricsOut); err != nil {
			if aerr == nil {
				aerr = err
			} else {
				fmt.Fprintf(stderr, "meshadapt: %v\n", err)
			}
		}
	}
	if aerr != nil {
		return aerr
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "ascii":
		return adapted.WriteASCII(w)
	case "binary":
		return adapted.WriteBinary(w)
	case "vtk":
		return adapted.WriteVTK(w, nil)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

// readMesh opens path and sniffs the format: the binary magic is stored
// little-endian so the file opens with the bytes "D2MP"; ASCII opens
// with a digit.
func readMesh(path string) (*mesh.Mesh, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var head [4]byte
	if _, err := f.Read(head[:]); err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	if head == [4]byte{0x44, 0x32, 0x4d, 0x50} {
		return mesh.ReadBinary(f)
	}
	return mesh.ReadASCII(f)
}

// writeObservability exports the tracer's Chrome trace-event file and/or
// run-metrics registry to the requested paths (either may be empty).
func writeObservability(tr *trace.Tracer, tracePath, metricsPath string) error {
	write := func(path string, emit func(w io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if tracePath != "" {
		if err := write(tracePath, tr.WriteTrace); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
	}
	if metricsPath != "" {
		if err := write(metricsPath, tr.Metrics().WriteMetrics); err != nil {
			return fmt.Errorf("write metrics: %w", err)
		}
	}
	return nil
}
