package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pamg2d/internal/audit"
	"pamg2d/internal/geom"
	"pamg2d/internal/mesh"
)

// grid writes an n×n structured unit-square mesh to a temp file.
func grid(t *testing.T, n int, binary bool) string {
	t.Helper()
	b := mesh.NewBuilder()
	h := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p00 := geom.Pt(float64(i)*h, float64(j)*h)
			p10 := geom.Pt(float64(i+1)*h, float64(j)*h)
			p01 := geom.Pt(float64(i)*h, float64(j+1)*h)
			p11 := geom.Pt(float64(i+1)*h, float64(j+1)*h)
			b.AddTriangle(p00, p10, p11)
			b.AddTriangle(p00, p11, p01)
		}
	}
	m := b.Mesh()
	path := filepath.Join(t.TempDir(), "grid.mesh")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if binary {
		err = m.WriteBinary(f)
	} else {
		err = m.WriteASCII(f)
	}
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAdaptAnalyticSpec(t *testing.T) {
	in := grid(t, 4, false)
	out := filepath.Join(t.TempDir(), "out.mesh")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-metric", "uniform:h=0.125", "-o", out, in}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "cycle 0") {
		t.Errorf("missing cycle report:\n%s", stderr.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := mesh.ReadASCII(f)
	if err != nil {
		t.Fatal(err)
	}
	// h=0.125 on a 4x4 grid quadruples the resolution.
	if m.NumTriangles() <= 32 {
		t.Errorf("refinement produced only %d triangles", m.NumTriangles())
	}
	if rep := audit.Run(&audit.Snapshot{Mesh: m}, audit.Adapted()); !rep.Ok() {
		t.Errorf("adapted output fails audit: %+v", rep.Violations)
	}
}

func TestAdaptBinaryInOut(t *testing.T) {
	in := grid(t, 4, true)
	out := filepath.Join(t.TempDir(), "out.bin")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-metric", "uniform:h=0.25", "-format", "binary", "-q", "-o", out, in}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\n%s", err, stderr.String())
	}
	if stderr.Len() != 0 {
		t.Errorf("-q must silence the reports: %s", stderr.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := mesh.ReadBinary(f); err != nil {
		t.Fatalf("binary output unreadable: %v", err)
	}
}

func TestAdaptHessianSource(t *testing.T) {
	in := grid(t, 8, false)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-metric", "hessian", "-cycles", "1", "-q", "-o", filepath.Join(t.TempDir(), "h.mesh"), in}, &stdout, &stderr); err != nil {
		t.Fatalf("hessian run: %v\n%s", err, stderr.String())
	}
}

func TestAdaptObservability(t *testing.T) {
	in := grid(t, 4, false)
	dir := t.TempDir()
	tr, mts := filepath.Join(dir, "t.json"), filepath.Join(dir, "m.json")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-metric", "uniform:h=0.25", "-q", "-trace", tr, "-metrics", mts, "-o", filepath.Join(dir, "o.mesh"), in}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\n%s", err, stderr.String())
	}
	b, err := os.ReadFile(mts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "adapt.split") {
		t.Errorf("metrics file missing adapt counters:\n%s", b)
	}
	if _, err := os.Stat(tr); err != nil {
		t.Errorf("trace file missing: %v", err)
	}
}

func TestAdaptErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{}, &stdout, &stderr); err == nil {
		t.Error("missing file argument must fail")
	}
	if err := run([]string{"/nonexistent"}, &stdout, &stderr); err == nil {
		t.Error("missing file must fail")
	}
	in := grid(t, 2, false)
	if err := run([]string{"-metric", "bogus", in}, &stdout, &stderr); err == nil {
		t.Error("bogus metric spec must fail")
	}
	if err := run([]string{"-metric", "uniform:h=0.5", "-format", "bogus", in}, &stdout, &stderr); err == nil {
		t.Error("bogus output format must fail")
	}
}
