// Command meshcheck audits a mesh file against the internal/audit
// invariant checks: exact-predicate orientation, conformity
// (duplicate/overlapping elements, non-manifold edges, duplicate and
// orphan points), and boundary structure by default; -delaunay adds the
// empty-circumcircle test (only sound for meshes without constrained
// edges — a CDT from meshgen legitimately fails it at its constraints,
// which the file format does not record). It reads the Triangle-style
// ASCII format and the compact binary format written by meshgen
// (sniffing the "PM2D" magic by default) and prints a machine-readable
// JSON report to stdout.
//
// Exit status: 0 when the mesh passes, 1 when violations are found (the
// report still prints), 2 on usage or read errors.
//
// Usage:
//
//	meshcheck mesh.txt
//	meshcheck -format binary mesh.bin
//	meshcheck -delaunay triangulation.txt
//	meshcheck -checks orientation,conformity -strict mesh.txt
package main

import (
	"errors"
	"log"
	"os"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("meshcheck: ")
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if errors.Is(err, errViolations) {
		os.Exit(1)
	}
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
}
