package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"pamg2d/internal/audit"
	"pamg2d/internal/mesh"
)

// errViolations distinguishes "the mesh failed its audit" (exit 1, report
// printed) from operational errors (exit 2).
var errViolations = errors.New("meshcheck: violations found")

// report is the JSON document meshcheck prints: the audited file, its
// sizes, the per-check statistics and every recorded violation.
type report struct {
	File       string            `json:"file"`
	Points     int               `json:"points"`
	Triangles  int               `json:"triangles"`
	Checks     []audit.CheckStat `json:"checks"`
	Violations []audit.Violation `json:"violations"`
	Ok         bool              `json:"ok"`
}

// binaryMagic mirrors mesh.WriteBinary's "PM2D" header for format
// sniffing.
var binaryMagic = []byte{0x44, 0x32, 0x4d, 0x50} // little-endian 0x504d3244

// readMesh loads the mesh in the requested format; "auto" sniffs the
// binary magic and falls back to ASCII.
func readMesh(r io.Reader, format string) (*mesh.Mesh, error) {
	switch format {
	case "ascii":
		return mesh.ReadASCII(r)
	case "binary":
		return mesh.ReadBinary(r)
	case "auto":
		br := bufio.NewReaderSize(r, 1<<20)
		head, err := br.Peek(4)
		if err == nil && bytes.Equal(head, binaryMagic) {
			return mesh.ReadBinary(br)
		}
		return mesh.ReadASCII(br)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}

// run executes the meshcheck CLI with explicit streams so the command is
// testable end to end. The JSON report goes to stdout; a mesh that fails
// its audit returns errViolations after the report is written.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("meshcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		format   = fs.String("format", "auto", "input format: auto | ascii | binary")
		checks   = fs.String("checks", "", "comma-separated check names (overrides -delaunay)")
		delaunay = fs.Bool("delaunay", false, "also run the empty-circumcircle check (a mesh with constrained edges, e.g. meshgen output, legitimately fails it)")
		strict   = fs.Bool("strict", false, "strict mode: require a single watertight boundary loop with no pinched vertices")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: meshcheck [flags] <mesh-file>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected one mesh file, got %d arguments", fs.NArg())
	}
	file := fs.Arg(0)

	// A standalone mesh file carries no record of which edges were
	// constrained, so the Delaunay check would flag every constrained edge
	// of a CDT; the default is therefore the structural checks, which hold
	// for any conforming mesh.
	sel := audit.Structural()
	if *delaunay {
		sel = audit.All()
	}
	if *checks != "" {
		var err error
		sel, err = audit.ByName(*checks)
		if err != nil {
			return err
		}
	}

	f, err := os.Open(file)
	if err != nil {
		return err
	}
	m, err := readMesh(f, *format)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", file, err)
	}

	// A standalone mesh file carries no boundary-layer or decoupling
	// structure, so those checks mark themselves skipped via Applicable.
	// StrictDelaunay doubles as the strict-boundary switch.
	s := &audit.Snapshot{Mesh: m, StrictDelaunay: *strict}
	rep := audit.Run(s, sel)

	out := report{
		File:       file,
		Points:     m.NumPoints(),
		Triangles:  m.NumTriangles(),
		Checks:     rep.Checks,
		Violations: rep.Violations,
		Ok:         rep.Ok(),
	}
	if out.Violations == nil {
		out.Violations = []audit.Violation{}
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	if !out.Ok {
		return errViolations
	}
	return nil
}
