package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pamg2d/internal/delaunay"
	"pamg2d/internal/geom"
	"pamg2d/internal/mesh"
)

// gridMesh triangulates a deterministic jittered n x n grid.
func gridMesh(t *testing.T, n int) *mesh.Mesh {
	t.Helper()
	pts := make([]geom.Point, 0, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dx := float64((i*7+j*13)%11) / 37
			dy := float64((i*5+j*17)%13) / 41
			pts = append(pts, geom.Pt(float64(i)+dx, float64(j)+dy))
		}
	}
	res, err := delaunay.Triangulate(delaunay.Input{Points: pts})
	if err != nil {
		t.Fatal(err)
	}
	return &mesh.Mesh{Points: res.Points, Triangles: res.Triangles}
}

// writeMesh writes m in the given format to a temp file and returns the
// path.
func writeMesh(t *testing.T, m *mesh.Mesh, format string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "mesh."+format)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if format == "binary" {
		err = m.WriteBinary(f)
	} else {
		err = m.WriteASCII(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	return path
}

// check runs meshcheck and decodes the JSON report.
func check(t *testing.T, args ...string) (report, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	var rep report
	if out.Len() > 0 {
		if jerr := json.Unmarshal(out.Bytes(), &rep); jerr != nil {
			t.Fatalf("report is not valid JSON: %v\n%s", jerr, out.String())
		}
	}
	return rep, err
}

func TestCleanMeshPasses(t *testing.T) {
	m := gridMesh(t, 8)
	for _, format := range []string{"ascii", "binary"} {
		path := writeMesh(t, m, format)
		// Auto-detection must handle both formats; -delaunay is sound here
		// because the grid triangulation has no constrained edges.
		rep, err := check(t, "-delaunay", path)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if !rep.Ok {
			t.Fatalf("%s: clean mesh flagged: %+v", format, rep.Violations)
		}
		if rep.Points != m.NumPoints() || rep.Triangles != m.NumTriangles() {
			t.Errorf("%s: report sizes %d/%d, want %d/%d", format, rep.Points, rep.Triangles, m.NumPoints(), m.NumTriangles())
		}
		for _, c := range rep.Checks {
			switch c.Name {
			case "orientation", "conformity", "boundary", "delaunay":
				if c.Skipped {
					t.Errorf("%s: check %s skipped", format, c.Name)
				}
			case "boundary-layer", "decoupling":
				if !c.Skipped {
					t.Errorf("%s: check %s ran without its inputs", format, c.Name)
				}
			}
		}
	}
}

// TestDefaultChecksAreStructural: without -delaunay the circumcircle
// check must not run — a mesh file does not record which edges were
// constrained, so CDT output from meshgen would otherwise be flagged.
func TestDefaultChecksAreStructural(t *testing.T) {
	m := &mesh.Mesh{
		Points: []geom.Point{
			geom.Pt(0, 0), geom.Pt(1, -0.2), geom.Pt(2, 0), geom.Pt(1, 2),
		},
		// Non-Delaunay diagonal, as a CDT with a constrained a-c edge
		// would legally produce.
		Triangles: [][3]int32{{0, 1, 2}, {0, 2, 3}},
	}
	rep, err := check(t, writeMesh(t, m, "ascii"))
	if err != nil {
		t.Fatalf("structural audit of a CDT-shaped mesh failed: %v", err)
	}
	for _, c := range rep.Checks {
		if c.Name == "delaunay" {
			t.Error("delaunay check ran without -delaunay")
		}
	}
	if !rep.Ok {
		t.Errorf("structurally sound mesh flagged: %+v", rep.Violations)
	}
}

// TestFlippedTriangleFlagged: re-orienting one element must fail the check
// run with the element attributed in the report, while the report itself
// still prints.
func TestFlippedTriangleFlagged(t *testing.T) {
	m := gridMesh(t, 6)
	victim := m.NumTriangles() / 2
	m.Triangles[victim][1], m.Triangles[victim][2] = m.Triangles[victim][2], m.Triangles[victim][1]
	rep, err := check(t, writeMesh(t, m, "ascii"))
	if !errors.Is(err, errViolations) {
		t.Fatalf("err = %v, want errViolations", err)
	}
	if rep.Ok {
		t.Fatal("report claims ok with a flipped triangle")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Check == "orientation" && v.Element == victim {
			found = true
		}
	}
	if !found {
		t.Errorf("no orientation violation attributes element %d: %+v", victim, rep.Violations)
	}
}

// TestDeletedTriangleFlaggedStrict: removing an interior element tears a
// hole in the mesh; strict mode requires a single watertight boundary
// loop, so the audit must flag it.
func TestDeletedTriangleFlaggedStrict(t *testing.T) {
	m := gridMesh(t, 6)
	adj := m.Adjacency()
	victim := -1
	for i, a := range adj {
		if a[0] >= 0 && a[1] >= 0 && a[2] >= 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no interior triangle in the grid mesh")
	}
	m.Triangles = append(m.Triangles[:victim], m.Triangles[victim+1:]...)
	path := writeMesh(t, m, "ascii")
	rep, err := check(t, "-strict", path)
	if !errors.Is(err, errViolations) {
		t.Fatalf("err = %v, want errViolations", err)
	}
	found := false
	for _, v := range rep.Violations {
		if v.Check == "boundary" {
			found = true
		}
	}
	if !found {
		t.Errorf("torn mesh produced no boundary violation: %+v", rep.Violations)
	}
	// Without -strict, the hole is a legal inner boundary.
	if _, err := check(t, path); err != nil {
		t.Errorf("non-strict audit of the torn mesh failed: %v", err)
	}
}

// TestRediagonalizedQuadFlagged: flipping a convex quad onto its
// non-Delaunay diagonal must trip the empty-circumcircle check.
func TestRediagonalizedQuadFlagged(t *testing.T) {
	m := &mesh.Mesh{
		Points: []geom.Point{
			geom.Pt(0, 0), geom.Pt(1, -0.2), geom.Pt(2, 0), geom.Pt(1, 2),
		},
		// The a-c diagonal: the flat triangle (a,b,c)'s circumcircle
		// contains d.
		Triangles: [][3]int32{{0, 1, 2}, {0, 2, 3}},
	}
	rep, err := check(t, "-delaunay", writeMesh(t, m, "ascii"))
	if !errors.Is(err, errViolations) {
		t.Fatalf("err = %v, want errViolations", err)
	}
	found := false
	for _, v := range rep.Violations {
		if v.Check == "delaunay" {
			found = true
		}
	}
	if !found {
		t.Errorf("non-Delaunay diagonal not flagged: %+v", rep.Violations)
	}
}

// TestChecksSelection: -checks restricts the run to the named checks.
func TestChecksSelection(t *testing.T) {
	m := gridMesh(t, 5)
	victim := m.NumTriangles() / 2
	m.Triangles[victim][1], m.Triangles[victim][2] = m.Triangles[victim][2], m.Triangles[victim][1]
	path := writeMesh(t, m, "ascii")
	// Conformity alone does not look at orientation, but the flipped
	// triangle's reversed directed edges collide with its neighbors'.
	rep, err := check(t, "-checks", "conformity", path)
	if !errors.Is(err, errViolations) {
		t.Fatalf("err = %v, want errViolations", err)
	}
	if len(rep.Checks) != 1 || rep.Checks[0].Name != "conformity" {
		t.Errorf("checks = %+v, want conformity alone", rep.Checks)
	}
}

// TestCorruptedFileIsReadError: an element referencing a missing vertex
// must fail the read (exit-2 class), not the audit.
func TestCorruptedFileIsReadError(t *testing.T) {
	m := gridMesh(t, 4)
	path := writeMesh(t, m, "binary")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	idxOff := 12 + 16*m.NumPoints()
	binary.LittleEndian.PutUint32(data[idxOff:], uint32(int32(m.NumPoints()+100)))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = check(t, path)
	if err == nil || errors.Is(err, errViolations) {
		t.Fatalf("corrupted file: err = %v, want a read error", err)
	}
	var re *mesh.ElemRefError
	if !errors.As(err, &re) {
		t.Errorf("read error is %T (%v), want *mesh.ElemRefError", err, err)
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, &out, &errb); err == nil {
		t.Error("no arguments must fail")
	}
	if err := run([]string{"/nonexistent/mesh.txt"}, &out, &errb); err == nil {
		t.Error("missing file must fail")
	}
	if err := run([]string{"-checks", "bogus", "x"}, &out, &errb); err == nil {
		t.Error("unknown check name must fail")
	}
	m := &mesh.Mesh{Points: []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)}, Triangles: [][3]int32{{0, 1, 2}}}
	path := writeMesh(t, m, "ascii")
	if err := run([]string{"-format", "bogus", path}, &out, &errb); err == nil {
		t.Error("unknown format must fail")
	}
}
