// Command meshd is the long-running mesh-generation service: an HTTP/JSON
// front end over one shared core.Engine, serving concurrent pipeline runs
// from a persistent rank fabric with admission control, per-request
// deadlines, geometry-keyed result caching, and /metrics + /trace/{id}
// observability.
//
// Quickstart:
//
//	meshd -listen 127.0.0.1:8080 -ranks 4 -concurrency 4 &
//	curl -s -X POST http://127.0.0.1:8080/mesh \
//	     -d '{"geometry":"naca0012","n":48,"params":{"audit":true}}' > out.mesh
//	curl -s http://127.0.0.1:8080/metrics | head
//
// Endpoints:
//
//	POST /mesh          geometry (named airfoil or inline .poly) + params → mesh
//	GET  /metrics       engine-lifetime run/latency/cache counters
//	                    (Prometheus text by default; JSON via Accept or ?format=json)
//	GET  /healthz       liveness + active-run count
//	GET  /readyz        readiness (503 while draining on shutdown)
//	GET  /trace/{id}    Chrome trace export of a request sent with "trace":true
//	GET  /debug/pprof/  runtime profiles (only with -pprof)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pamg2d/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "meshd: %v\n", err)
		os.Exit(1)
	}
}

// newLogger builds the service's structured logger, or nil (all logging
// disabled) for level "off".
func newLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	if level == "" || level == "off" {
		return nil, nil
	}
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q", format)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("meshd", flag.ContinueOnError)
	var (
		listen      = fs.String("listen", "127.0.0.1:8080", "HTTP listen address")
		ranks       = fs.Int("ranks", 4, "engine rank count (in-process goroutine ranks)")
		kernelW     = fs.Int("kernel-workers", 1, "default Delaunay insertion goroutines per task (1 = sequential, 0 = NumCPU)")
		concurrency = fs.Int("concurrency", 4, "maximum runs executing at once (0 = unlimited)")
		queue       = fs.Int("queue", 8, "runs allowed to wait when saturated before 503 (-1 = none, 0 = unbounded)")
		cacheSize   = fs.Int("cache", 64, "result-cache capacity in rendered meshes (-1 disables)")
		maxTimeout  = fs.Duration("max-timeout", 2*time.Minute, "cap on any request's generation deadline")
		logFormat   = fs.String("log-format", "text", "structured log format: text | json")
		logLevel    = fs.String("log-level", "info", "log level: off | debug | info | warn | error")
		enablePprof = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (exposes runtime internals; opt-in)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := newLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}

	eng, err := core.NewEngine(core.EngineConfig{
		Ranks:         *ranks,
		MaxConcurrent: *concurrency,
		MaxQueue:      *queue,
		Logger:        logger,
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	srv := newServer(eng, serverOptions{
		MaxTimeout:    *maxTimeout,
		CacheSize:     *cacheSize,
		KernelWorkers: *kernelW,
		Logger:        logger,
		EnablePprof:   *enablePprof,
	})
	hs := &http.Server{Addr: *listen, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	if logger != nil {
		logger.Info("serving", "listen", *listen, "ranks", eng.Ranks(),
			"concurrency", *concurrency, "pprof", *enablePprof)
	} else {
		fmt.Fprintf(os.Stderr, "meshd: serving on %s (%d ranks, concurrency %d)\n", *listen, eng.Ranks(), *concurrency)
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Flip readiness before closing the listener so orchestrators stop
	// routing new work while in-flight requests drain.
	srv.setReady(false)
	if logger != nil {
		logger.Info("shutting down", "active", eng.Active())
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
