package main

// The meshd server: HTTP/JSON mesh generation over one shared core.Engine.
// Every request is a core run borrowing the engine's fabric and kernel
// pool; admission control (the engine's MaxConcurrent/MaxQueue) turns
// overload into fast 503s instead of pile-ups, per-request deadlines ride
// the existing context plumbing, and a geometry-keyed cache (SHA-256 of
// the canonical PSLG plus the meshing parameters) serves repeated
// geometries without re-meshing. Observability: GET /metrics exports the
// engine-lifetime registry (run totals and latencies plus the server's
// request/cache counters), and a request that asks for "trace": true
// deposits its Chrome trace-event export in a bounded ring readable at
// GET /trace/{id}.

import (
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pamg2d/internal/airfoil"
	"pamg2d/internal/core"
	"pamg2d/internal/growth"
	"pamg2d/internal/mpi"
	"pamg2d/internal/pslg"
	"pamg2d/internal/trace"
)

// meshParams is the tunable half of a request; zero values resolve to the
// same defaults the meshgen CLI uses, so an empty params object and a
// bare `meshgen` invocation describe the identical run.
type meshParams struct {
	BLH0          float64 `json:"bl_h0,omitempty"`
	BLRatio       float64 `json:"bl_ratio,omitempty"`
	BLLayers      int     `json:"bl_layers,omitempty"`
	SurfaceH0     float64 `json:"h0,omitempty"`
	Gradation     float64 `json:"gradation,omitempty"`
	HMax          float64 `json:"hmax,omitempty"`
	Kernel        string  `json:"kernel,omitempty"`         // ruppert | front
	KernelWorkers int     `json:"kernel_workers,omitempty"` // 0 = server default
	KernelShuffle bool    `json:"kernel_shuffle,omitempty"`
	Audit         bool    `json:"audit,omitempty"`
	Format        string  `json:"format,omitempty"`     // ascii | binary | vtk
	TimeoutMS     int     `json:"timeout_ms,omitempty"` // capped by the server limit
	Trace         bool    `json:"trace,omitempty"`      // keep a trace export for GET /trace/{id}
}

// meshRequest is the POST /mesh body: one geometry (named airfoil or
// inline .poly text) plus the meshing parameters.
type meshRequest struct {
	// Geometry names a built-in airfoil configuration: "naca0012" or
	// "30p30n". Ignored when Poly is set.
	Geometry string  `json:"geometry,omitempty"`
	N        int     `json:"n,omitempty"`        // surface half-points (default 64)
	Farfield float64 `json:"farfield,omitempty"` // far-field half-width in chords (default 30)
	// Poly is the PSLG as Triangle .poly text, the same format
	// `meshgen -input`/`-write-poly` read and write.
	Poly   string     `json:"poly,omitempty"`
	Params meshParams `json:"params"`
}

// cacheEntry is one rendered result: the exact response bytes plus the
// headers that describe them. Entries are immutable once stored.
type cacheEntry struct {
	key         string
	body        []byte
	contentType string
	triangles   int
	points      int
}

// resultCache is a mutex-guarded LRU over rendered meshes, keyed by the
// geometry+params hash. The boundary-layer extrusion and decoupled
// refinement are deterministic, so a hit is byte-identical to a re-run.
type resultCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recent; values are *cacheEntry
	byKey map[string]*list.Element
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, order: list.New(), byKey: make(map[string]*list.Element)}
}

func (rc *resultCache) get(key string) *cacheEntry {
	if rc == nil {
		return nil
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	el, ok := rc.byKey[key]
	if !ok {
		return nil
	}
	rc.order.MoveToFront(el)
	return el.Value.(*cacheEntry)
}

func (rc *resultCache) put(e *cacheEntry) {
	if rc == nil {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if el, ok := rc.byKey[e.key]; ok {
		rc.order.MoveToFront(el)
		el.Value = e
		return
	}
	rc.byKey[e.key] = rc.order.PushFront(e)
	for rc.order.Len() > rc.max {
		el := rc.order.Back()
		rc.order.Remove(el)
		delete(rc.byKey, el.Value.(*cacheEntry).key)
	}
}

// traceRing keeps the most recent per-request trace exports for
// GET /trace/{id}; a bounded ring so a long-lived server cannot
// accumulate traces without limit.
type traceRing struct {
	mu    sync.Mutex
	max   int
	order []string
	byID  map[string][]byte
}

func newTraceRing(max int) *traceRing {
	return &traceRing{max: max, byID: make(map[string][]byte)}
}

func (tr *traceRing) put(id string, data []byte) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if _, ok := tr.byID[id]; !ok {
		tr.order = append(tr.order, id)
		for len(tr.order) > tr.max {
			delete(tr.byID, tr.order[0])
			tr.order = tr.order[1:]
		}
	}
	tr.byID[id] = data
}

func (tr *traceRing) get(id string) ([]byte, bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	d, ok := tr.byID[id]
	return d, ok
}

// serverOptions sizes a meshd server.
type serverOptions struct {
	// MaxTimeout caps every request's generation deadline; a request's
	// own timeout_ms can only shorten it. 0 means 2 minutes.
	MaxTimeout time.Duration
	// CacheSize is the LRU capacity in rendered meshes; 0 means 64,
	// negative disables caching.
	CacheSize int
	// KernelWorkers is the per-run default when a request leaves
	// kernel_workers at 0; the server's engine sizes its shared pool
	// independently.
	KernelWorkers int
	// Logger, when non-nil, receives a structured record per handler
	// panic (request ID, path, stack). Request lifecycle records come
	// from the engine's own logger; nil disables server-side logging.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints expose heap contents and must be
	// opted into.
	EnablePprof bool
}

// server is the HTTP layer over one shared engine.
type server struct {
	eng    *core.Engine
	opts   serverOptions
	cache  *resultCache
	traces *traceRing
	mux    *http.ServeMux
	nextID atomic.Int64
	ready  atomic.Bool
}

func newServer(eng *core.Engine, opts serverOptions) *server {
	if opts.MaxTimeout <= 0 {
		opts.MaxTimeout = 2 * time.Minute
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = 64
	}
	s := &server{eng: eng, opts: opts, traces: newTraceRing(16)}
	s.ready.Store(true)
	if opts.CacheSize > 0 {
		s.cache = newResultCache(opts.CacheSize)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/mesh", s.handleMesh)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/trace/", s.handleTrace)
	if opts.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// setReady flips the /readyz answer; main turns it off when shutdown
// begins so load balancers drain the instance before connections close.
func (s *server) setReady(ready bool) { s.ready.Store(ready) }

// ServeHTTP stamps every request with an ID and converts handler panics
// into a 500 with a structured log record instead of a dropped
// connection: one bad request must not look like a server crash to every
// other client on the process.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	reqID := fmt.Sprintf("r%06d", s.nextID.Add(1))
	w.Header().Set("X-Request-Id", reqID)
	defer func() {
		if p := recover(); p != nil {
			s.eng.Metrics().Count("server.panics", 1)
			if s.opts.Logger != nil {
				s.opts.Logger.Error("handler panic",
					"request_id", reqID, "method", r.Method, "path", r.URL.Path,
					"panic", fmt.Sprint(p), "stack", string(debug.Stack()))
			}
			// Best-effort: if the handler already wrote a header this is a
			// no-op on the status line, but the client still gets a body.
			s.httpError(w, http.StatusInternalServerError,
				fmt.Errorf("internal error (request %s)", reqID))
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// httpError writes a JSON error body with the given status and counts it.
func (s *server) httpError(w http.ResponseWriter, status int, err error) {
	s.eng.Metrics().Count(fmt.Sprintf("server.status.%d", status), 1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// buildConfig resolves a request into the core Config plus the canonical
// cache key: SHA-256 over the validated PSLG's .poly serialization and
// the normalized parameters, so equivalent requests (named geometry vs
// the identical inline poly, explicit defaults vs omitted fields) share
// one cache slot.
func (s *server) buildConfig(req *meshRequest) (core.Config, string, error) {
	cfg := core.DefaultConfig()
	p := req.Params

	// Normalize the parameter defaults to the meshgen CLI's.
	if p.BLH0 <= 0 {
		p.BLH0 = 4e-4
	}
	if p.BLRatio <= 0 {
		p.BLRatio = 1.25
	}
	if p.BLLayers <= 0 {
		p.BLLayers = 40
	}
	if p.SurfaceH0 <= 0 {
		p.SurfaceH0 = 0.02
	}
	if p.Gradation <= 0 {
		p.Gradation = 0.15
	}
	if p.HMax <= 0 {
		p.HMax = 4.0
	}
	if p.Kernel == "" {
		p.Kernel = "ruppert"
	}
	if p.Format == "" {
		p.Format = "ascii"
	}
	if p.KernelWorkers == 0 {
		p.KernelWorkers = s.opts.KernelWorkers
	}

	var g *pslg.Graph
	var err error
	if req.Poly != "" {
		g, err = pslg.ReadPoly(strings.NewReader(req.Poly))
		if err != nil {
			return cfg, "", fmt.Errorf("poly: %w", err)
		}
	} else {
		n := req.N
		if n <= 0 {
			n = 64
		}
		ff := req.Farfield
		if ff <= 0 {
			ff = 30
		}
		var ac airfoil.Config
		switch req.Geometry {
		case "", "naca0012":
			ac = airfoil.Single(airfoil.NACA0012, n, ff)
		case "30p30n":
			ac = airfoil.ThreeElement(n)
			ac.FarfieldChords = ff
		default:
			return cfg, "", fmt.Errorf("unknown geometry %q", req.Geometry)
		}
		g, err = ac.Graph()
		if err != nil {
			return cfg, "", err
		}
	}
	cfg.CustomGraph = g
	cfg.BL.Growth = growth.Geometric{H0: p.BLH0, Ratio: p.BLRatio}
	cfg.BL.MaxLayers = p.BLLayers
	cfg.SurfaceH0 = p.SurfaceH0
	cfg.Gradation = p.Gradation
	cfg.HMax = p.HMax
	cfg.Ranks = 0 // adopt the engine's
	cfg.KernelWorkers = p.KernelWorkers
	cfg.KernelShuffle = p.KernelShuffle
	cfg.Audit = p.Audit
	switch p.Kernel {
	case "ruppert":
		cfg.InviscidKernel = core.KernelRuppert
	case "front":
		cfg.InviscidKernel = core.KernelAdvancingFront
	default:
		return cfg, "", fmt.Errorf("unknown kernel %q", p.Kernel)
	}
	switch p.Format {
	case "ascii", "binary", "vtk":
	default:
		return cfg, "", fmt.Errorf("unknown format %q", p.Format)
	}

	// The cache key: canonical geometry bytes + the result-determining
	// parameters (deadline and trace flags excluded — they do not change
	// the mesh). Params are hashed from the normalized copy, so omitted
	// and explicit defaults collide as they should.
	h := sha256.New()
	if err := g.WritePoly(h); err != nil {
		return cfg, "", err
	}
	keyed := p
	keyed.TimeoutMS = 0
	keyed.Trace = false
	if err := json.NewEncoder(h).Encode(&keyed); err != nil {
		return cfg, "", err
	}
	fmt.Fprintf(h, "ranks=%d", s.eng.Ranks())
	return cfg, hex.EncodeToString(h.Sum(nil)), nil
}

func contentTypeFor(format string) string {
	switch format {
	case "binary":
		return "application/octet-stream"
	case "vtk":
		return "text/plain; charset=utf-8"
	}
	return "text/plain; charset=utf-8"
}

func (s *server) handleMesh(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	m := s.eng.Metrics()
	m.Count("server.requests", 1)
	t0 := time.Now()

	var req meshRequest
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	cfg, key, err := s.buildConfig(&req)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}

	// The request ID was assigned by ServeHTTP; reuse it as the run's
	// correlation ID so engine log records and trace-ring entries share it.
	reqID := w.Header().Get("X-Request-Id")
	cfg.RunID = reqID

	if e := s.cache.get(key); e != nil {
		m.Count("server.cache.hits", 1)
		m.Observe("server.request.seconds", time.Since(t0).Seconds())
		s.writeEntry(w, e, "hit")
		return
	}
	m.Count("server.cache.misses", 1)

	// Per-request deadline: the request's own budget, capped by the
	// server-wide limit, layered on the connection context so a client
	// hangup cancels the run too.
	deadline := s.opts.MaxTimeout
	if req.Params.TimeoutMS > 0 {
		if d := time.Duration(req.Params.TimeoutMS) * time.Millisecond; d < deadline {
			deadline = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	var tracer *trace.Tracer
	if req.Params.Trace {
		tracer = trace.New(s.eng.Ranks())
		cfg.Tracer = tracer
	}

	res, err := s.eng.Run(ctx, cfg)
	if tracer != nil {
		var buf bytes.Buffer
		if werr := tracer.WriteTrace(&buf); werr == nil {
			s.traces.put(reqID, buf.Bytes())
			w.Header().Set("X-Trace-Id", reqID)
		}
	}
	if err != nil {
		status, quorum := runStatus(w.Header(), err, cfg.Audit)
		if quorum {
			m.Count("server.quorum_losses", 1)
		}
		s.httpError(w, status, err)
		return
	}
	// A degraded run completed on the surviving ranks: still a success —
	// the mesh is whole (the re-queue path re-ran the dead ranks' tasks)
	// — but flagged so clients can tell, and kept out of the cache so a
	// degraded render is never served as the canonical entry for this key.
	degraded := res.Stats.Degraded()
	if degraded {
		w.Header().Set("X-Degraded", fmt.Sprint(res.Stats.Resilience.RanksLost))
		m.Count("server.degraded", 1)
	}

	var buf bytes.Buffer
	switch req.Params.Format {
	case "binary":
		err = res.Mesh.WriteBinary(&buf)
	case "vtk":
		err = res.Mesh.WriteVTK(&buf, nil)
	default:
		err = res.Mesh.WriteASCII(&buf)
	}
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, err)
		return
	}
	e := &cacheEntry{
		key:         key,
		body:        buf.Bytes(),
		contentType: contentTypeFor(req.Params.Format),
		triangles:   res.Stats.TotalTriangles,
		points:      res.Mesh.NumPoints(),
	}
	if !degraded {
		s.cache.put(e)
	}
	m.Observe("server.request.seconds", time.Since(t0).Seconds())
	s.writeEntry(w, e, "miss")
}

// runStatus maps an engine-run failure to its HTTP status, setting any
// retry hint on hdr. quorum reports a quorum loss — a rank death the run
// could not survive (the root rank died, or the fabric collapsed under
// this process). That condition is transient from the client's view —
// an operator restarting the worker pool restores service — so it maps
// to 503 with a retry hint, not a 500. A worker-rank death never reaches
// this path: the run completes degraded on the survivors and responds
// 200 with an X-Degraded header.
func runStatus(hdr http.Header, err error, audit bool) (status int, quorum bool) {
	status = http.StatusInternalServerError
	var rde *mpi.RankDeadError
	switch {
	case errors.Is(err, core.ErrEngineBusy):
		status = http.StatusServiceUnavailable
		hdr.Set("Retry-After", "1")
	case errors.Is(err, core.ErrEngineClosed):
		status = http.StatusServiceUnavailable
	case errors.As(err, &rde):
		status = http.StatusServiceUnavailable
		hdr.Set("Retry-After", "5")
		quorum = true
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = 499 // client closed request
	case audit && strings.Contains(err.Error(), "audit"):
		status = http.StatusUnprocessableEntity
	}
	return status, quorum
}

func (s *server) writeEntry(w http.ResponseWriter, e *cacheEntry, cache string) {
	s.eng.Metrics().Count("server.status.200", 1)
	h := w.Header()
	h.Set("Content-Type", e.contentType)
	h.Set("X-Cache", cache)
	h.Set("X-Mesh-Points", fmt.Sprint(e.points))
	h.Set("X-Mesh-Triangles", fmt.Sprint(e.triangles))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(e.body)
}

// handleMetrics exports the engine registry. The default is Prometheus
// text exposition (0.0.4) for scrapers; the original JSON document stays
// reachable via `Accept: application/json` or ?format=json.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.eng.Metrics()
	m.Gauge("server.engine.active", float64(s.eng.Active()))
	wantJSON := r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json")
	var err error
	if wantJSON {
		w.Header().Set("Content-Type", "application/json")
		err = m.WriteMetrics(w)
	} else {
		w.Header().Set("Content-Type", trace.PromContentType)
		err = m.WritePrometheus(w)
	}
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, err)
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status": "ok",
		"ranks":  s.eng.Ranks(),
		"active": s.eng.Active(),
	})
}

// handleReadyz distinguishes "alive" from "accepting work": it flips to
// 503 when shutdown starts (setReady(false)) so orchestrators stop
// routing to a draining instance, while /healthz keeps answering 200
// until the process exits.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]any{"status": "draining"})
		return
	}
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status": "ready",
		"active": s.eng.Active(),
	})
}

func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/trace/")
	data, ok := s.traces.get(id)
	if !ok {
		s.httpError(w, http.StatusNotFound, fmt.Errorf("no trace for request %q (ring keeps the last %d traced requests)", id, s.traces.max))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}
