package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pamg2d/internal/airfoil"
	"pamg2d/internal/core"
	"pamg2d/internal/mpi"
	"pamg2d/internal/trace"
)

// soloMesh renders the meshgen-equivalent single-run output for the named
// airfoil at resolution n: the byte-identity reference for served meshes.
func soloMesh(t *testing.T, n, ranks int, audit bool) []byte {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Geometry = airfoil.Single(airfoil.NACA0012, n, 30)
	cfg.Ranks = ranks
	cfg.Audit = audit
	res, err := core.Generate(cfg)
	if err != nil {
		t.Fatalf("solo generate n=%d: %v", n, err)
	}
	var buf bytes.Buffer
	if err := res.Mesh.WriteASCII(&buf); err != nil {
		t.Fatalf("write solo mesh: %v", err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, ec core.EngineConfig, opts serverOptions) (*httptest.Server, *core.Engine) {
	t.Helper()
	eng, err := core.NewEngine(ec)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ts := httptest.NewServer(newServer(eng, opts))
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})
	return ts, eng
}

func postMesh(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/mesh", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST /mesh: %v", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

// TestServeConcurrentAuditedCached is the PR's acceptance test: two
// concurrent audited requests against one meshd process complete with
// meshes byte-identical to single-run output, and a repeated identical
// request is served from the geometry-keyed cache, visible both in the
// X-Cache header and the /metrics cache-hit counter.
func TestServeConcurrentAuditedCached(t *testing.T) {
	ts, _ := newTestServer(t,
		core.EngineConfig{Ranks: 2, MaxConcurrent: 4},
		serverOptions{KernelWorkers: 1})

	ns := []int{20, 24}
	want := make(map[int][]byte)
	for _, n := range ns {
		want[n] = soloMesh(t, n, 2, true)
	}

	// Two different geometries meshed concurrently on the shared engine.
	var wg sync.WaitGroup
	got := make(map[int][]byte)
	status := make(map[int]int)
	var mu sync.Mutex
	for _, n := range ns {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			resp, body := postMesh(t, ts.URL,
				fmt.Sprintf(`{"geometry":"naca0012","n":%d,"params":{"audit":true}}`, n))
			mu.Lock()
			got[n] = body
			status[n] = resp.StatusCode
			mu.Unlock()
		}(n)
	}
	wg.Wait()
	for _, n := range ns {
		if status[n] != http.StatusOK {
			t.Fatalf("n=%d: status %d: %s", n, status[n], got[n])
		}
		if !bytes.Equal(got[n], want[n]) {
			t.Errorf("n=%d: served mesh differs from single-run output (%d vs %d bytes)",
				n, len(got[n]), len(want[n]))
		}
	}

	// The repeat must come from the cache, byte-identical again.
	resp, body := postMesh(t, ts.URL, `{"geometry":"naca0012","n":20,"params":{"audit":true}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat: status %d: %s", resp.StatusCode, body)
	}
	if hdr := resp.Header.Get("X-Cache"); hdr != "hit" {
		t.Errorf("repeat request X-Cache = %q, want \"hit\"", hdr)
	}
	if !bytes.Equal(body, want[20]) {
		t.Errorf("cached mesh differs from single-run output")
	}

	// And the hit shows up in the /metrics counters (JSON view).
	mj := metricsJSON(t, ts.URL)
	if mj.Counters["server.cache.hits"] < 1 {
		t.Errorf("server.cache.hits = %d, want >= 1", mj.Counters["server.cache.hits"])
	}
	if mj.Counters["server.cache.misses"] != 2 {
		t.Errorf("server.cache.misses = %d, want 2", mj.Counters["server.cache.misses"])
	}
	if mj.Counters["engine.runs"] != 2 {
		t.Errorf("engine.runs = %d, want 2 (cache hit must not re-run)", mj.Counters["engine.runs"])
	}
}

// metricsJSON fetches the JSON view of /metrics via content negotiation.
func metricsJSON(t *testing.T, baseURL string) trace.MetricsJSON {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/metrics with Accept: application/json returned Content-Type %q", ct)
	}
	var mj trace.MetricsJSON
	if err := json.NewDecoder(resp.Body).Decode(&mj); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	return mj
}

// TestServeMetricsPrometheus: the default /metrics view is Prometheus
// text exposition that passes the structural linter, with the registry's
// counters present under the pamg2d_ namespace; ?format=json still
// selects the JSON document.
func TestServeMetricsPrometheus(t *testing.T) {
	ts, _ := newTestServer(t, core.EngineConfig{Ranks: 1}, serverOptions{})
	if resp, _ := postMesh(t, ts.URL, `{"geometry":"naca0012","n":16}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("mesh request: status %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != trace.PromContentType {
		t.Errorf("/metrics Content-Type = %q, want %q", ct, trace.PromContentType)
	}
	samples, err := trace.ValidatePrometheus(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("prometheus lint: %v\n%s", err, body)
	}
	if samples == 0 {
		t.Fatal("prometheus export has no samples")
	}
	for _, want := range []string{"pamg2d_server_requests_total", "pamg2d_engine_runs_total", "pamg2d_server_request_seconds_bucket"} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("prometheus export lacks %s:\n%s", want, body)
		}
	}

	jresp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var mj trace.MetricsJSON
	if err := json.NewDecoder(jresp.Body).Decode(&mj); err != nil {
		t.Fatalf("?format=json not a JSON registry: %v", err)
	}
	if mj.Counters["server.requests"] < 1 {
		t.Errorf("JSON view server.requests = %d, want >= 1", mj.Counters["server.requests"])
	}
}

// TestServeReadyz: /readyz answers ready while serving and flips to 503
// draining after setReady(false), while /healthz stays 200 throughout.
func TestServeReadyz(t *testing.T) {
	eng, err := core.NewEngine(core.EngineConfig{Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(eng, serverOptions{})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})

	check := func(wantStatus int, wantState string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatalf("GET /readyz: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("/readyz status = %d, want %d", resp.StatusCode, wantStatus)
		}
		var body struct {
			Status string `json:"status"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("decode readyz: %v", err)
		}
		if body.Status != wantState {
			t.Errorf("/readyz state = %q, want %q", body.Status, wantState)
		}
	}
	check(http.StatusOK, "ready")
	srv.setReady(false)
	check(http.StatusServiceUnavailable, "draining")

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("/healthz during drain: status %d, want 200", hresp.StatusCode)
	}
}

// TestServePprofGating: the profiling endpoints exist only with
// EnablePprof — a default server must not expose runtime internals.
func TestServePprofGating(t *testing.T) {
	off, _ := newTestServer(t, core.EngineConfig{Ranks: 1}, serverOptions{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without -pprof: status %d, want 404", resp.StatusCode)
	}

	on, _ := newTestServer(t, core.EngineConfig{Ranks: 1}, serverOptions{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with -pprof: status %d, want 200", resp.StatusCode)
	}
}

// TestServePanicRecovery: a panicking handler becomes a 500 with a JSON
// error body naming the request ID, a structured log record carrying the
// same ID, and a bump of the server.panics counter — never a dropped
// connection.
func TestServePanicRecovery(t *testing.T) {
	eng, err := core.NewEngine(core.EngineConfig{Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	var logbuf bytes.Buffer
	var logmu sync.Mutex
	logw := writerFunc(func(p []byte) (int, error) {
		logmu.Lock()
		defer logmu.Unlock()
		return logbuf.Write(p)
	})
	srv := newServer(eng, serverOptions{Logger: slog.New(slog.NewJSONHandler(logw, nil))})
	srv.mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) {
		panic("injected handler panic")
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatalf("GET /boom: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("panicking handler: status %d, want 500", resp.StatusCode)
	}
	reqID := resp.Header.Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("no X-Request-Id on panicking request")
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e["error"], reqID) {
		t.Errorf("error body %q does not name request %s", body, reqID)
	}

	logmu.Lock()
	logged := logbuf.String()
	logmu.Unlock()
	if !strings.Contains(logged, "handler panic") || !strings.Contains(logged, reqID) ||
		!strings.Contains(logged, "injected handler panic") {
		t.Errorf("panic log record missing fields: %s", logged)
	}

	if mj := metricsJSON(t, ts.URL); mj.Counters["server.panics"] != 1 {
		t.Errorf("server.panics = %d, want 1", mj.Counters["server.panics"])
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestServeTraceExport: a request with "trace": true deposits a Chrome
// trace export retrievable at /trace/{id}.
func TestServeTraceExport(t *testing.T) {
	ts, _ := newTestServer(t, core.EngineConfig{Ranks: 1}, serverOptions{})
	resp, body := postMesh(t, ts.URL, `{"geometry":"naca0012","n":16,"params":{"trace":true}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-Trace-Id")
	if id == "" {
		t.Fatalf("no X-Trace-Id header on traced request")
	}
	tresp, err := http.Get(ts.URL + "/trace/" + id)
	if err != nil {
		t.Fatalf("GET /trace/%s: %v", id, err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace/%s: status %d", id, tresp.StatusCode)
	}
	var tf struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&tf); err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Errorf("trace export has no events")
	}
}

// TestServeBadRequests: malformed inputs come back as 400s with JSON
// error bodies, not 500s or hangs.
func TestServeBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, core.EngineConfig{Ranks: 1}, serverOptions{})
	cases := []struct {
		name, body string
	}{
		{"bad json", `{`},
		{"unknown geometry", `{"geometry":"b747"}`},
		{"unknown kernel", `{"geometry":"naca0012","params":{"kernel":"voronoi"}}`},
		{"unknown format", `{"geometry":"naca0012","params":{"format":"stl"}}`},
		{"bad poly", `{"poly":"not a poly file"}`},
	}
	for _, c := range cases {
		resp, body := postMesh(t, ts.URL, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, resp.StatusCode, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body %q is not {\"error\": ...}", c.name, body)
		}
	}
	if resp, _ := postMesh(t, ts.URL, ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty body: status %d, want 400", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/mesh")
	if err != nil {
		t.Fatalf("GET /mesh: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /mesh: status %d, want 405", resp.StatusCode)
	}
}

// TestServeHealthz sanity-checks the liveness endpoint.
func TestServeHealthz(t *testing.T) {
	ts, eng := newTestServer(t, core.EngineConfig{Ranks: 3}, serverOptions{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var h struct {
		Status string `json:"status"`
		Ranks  int    `json:"ranks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if h.Status != "ok" || h.Ranks != eng.Ranks() {
		t.Errorf("healthz = %+v, want ok with %d ranks", h, eng.Ranks())
	}
}

// TestCacheKeyEquivalence: omitted parameters and their explicit defaults
// must share one cache slot, and a parameter that changes the mesh must
// not.
func TestCacheKeyEquivalence(t *testing.T) {
	ts, _ := newTestServer(t, core.EngineConfig{Ranks: 1}, serverOptions{})
	resp1, _ := postMesh(t, ts.URL, `{"geometry":"naca0012","n":16}`)
	if resp1.StatusCode != http.StatusOK || resp1.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first: status %d cache %q", resp1.StatusCode, resp1.Header.Get("X-Cache"))
	}
	// Explicit defaults == omitted defaults.
	resp2, _ := postMesh(t, ts.URL,
		`{"geometry":"naca0012","n":16,"params":{"h0":0.02,"gradation":0.15,"hmax":4.0,"kernel":"ruppert","format":"ascii"}}`)
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Errorf("explicit defaults: X-Cache %q, want hit", resp2.Header.Get("X-Cache"))
	}
	// A different sizing is a different mesh.
	resp3, _ := postMesh(t, ts.URL, `{"geometry":"naca0012","n":16,"params":{"h0":0.05}}`)
	if resp3.Header.Get("X-Cache") != "miss" {
		t.Errorf("changed h0: X-Cache %q, want miss", resp3.Header.Get("X-Cache"))
	}
}

// TestRunStatusMapping pins the engine-error → HTTP-status contract,
// including the resilience cases: a quorum loss (rank-death error
// anywhere in the chain, as core wraps it in a PhaseError) is a 503 with
// a retry hint, never a 500.
func TestRunStatusMapping(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		audit      bool
		status     int
		quorum     bool
		retryAfter string
	}{
		{name: "busy", err: core.ErrEngineBusy, status: http.StatusServiceUnavailable, retryAfter: "1"},
		{name: "closed", err: core.ErrEngineClosed, status: http.StatusServiceUnavailable},
		{
			name: "quorum loss",
			err: &core.PhaseError{Stage: "inviscid", Rank: -1,
				Err: fmt.Errorf("world closed: %w", &mpi.RankDeadError{Rank: 0, Err: errors.New("connection reset")})},
			status: http.StatusServiceUnavailable, quorum: true, retryAfter: "5",
		},
		{name: "deadline", err: fmt.Errorf("run: %w", context.DeadlineExceeded), status: http.StatusGatewayTimeout},
		{name: "canceled", err: context.Canceled, status: 499},
		{name: "audit", err: errors.New("audit: 2 finding(s)"), audit: true, status: http.StatusUnprocessableEntity},
		{name: "audit without flag", err: errors.New("audit: 2 finding(s)"), status: http.StatusInternalServerError},
		{name: "other", err: errors.New("boom"), status: http.StatusInternalServerError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hdr := make(http.Header)
			status, quorum := runStatus(hdr, tc.err, tc.audit)
			if status != tc.status {
				t.Errorf("status = %d, want %d", status, tc.status)
			}
			if quorum != tc.quorum {
				t.Errorf("quorum = %v, want %v", quorum, tc.quorum)
			}
			if got := hdr.Get("Retry-After"); got != tc.retryAfter {
				t.Errorf("Retry-After = %q, want %q", got, tc.retryAfter)
			}
		})
	}
}
