package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"pamg2d/internal/airfoil"
	"pamg2d/internal/core"
	"pamg2d/internal/trace"
)

// soloMesh renders the meshgen-equivalent single-run output for the named
// airfoil at resolution n: the byte-identity reference for served meshes.
func soloMesh(t *testing.T, n, ranks int, audit bool) []byte {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Geometry = airfoil.Single(airfoil.NACA0012, n, 30)
	cfg.Ranks = ranks
	cfg.Audit = audit
	res, err := core.Generate(cfg)
	if err != nil {
		t.Fatalf("solo generate n=%d: %v", n, err)
	}
	var buf bytes.Buffer
	if err := res.Mesh.WriteASCII(&buf); err != nil {
		t.Fatalf("write solo mesh: %v", err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, ec core.EngineConfig, opts serverOptions) (*httptest.Server, *core.Engine) {
	t.Helper()
	eng, err := core.NewEngine(ec)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ts := httptest.NewServer(newServer(eng, opts))
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})
	return ts, eng
}

func postMesh(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/mesh", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST /mesh: %v", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

// TestServeConcurrentAuditedCached is the PR's acceptance test: two
// concurrent audited requests against one meshd process complete with
// meshes byte-identical to single-run output, and a repeated identical
// request is served from the geometry-keyed cache, visible both in the
// X-Cache header and the /metrics cache-hit counter.
func TestServeConcurrentAuditedCached(t *testing.T) {
	ts, _ := newTestServer(t,
		core.EngineConfig{Ranks: 2, MaxConcurrent: 4},
		serverOptions{KernelWorkers: 1})

	ns := []int{20, 24}
	want := make(map[int][]byte)
	for _, n := range ns {
		want[n] = soloMesh(t, n, 2, true)
	}

	// Two different geometries meshed concurrently on the shared engine.
	var wg sync.WaitGroup
	got := make(map[int][]byte)
	status := make(map[int]int)
	var mu sync.Mutex
	for _, n := range ns {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			resp, body := postMesh(t, ts.URL,
				fmt.Sprintf(`{"geometry":"naca0012","n":%d,"params":{"audit":true}}`, n))
			mu.Lock()
			got[n] = body
			status[n] = resp.StatusCode
			mu.Unlock()
		}(n)
	}
	wg.Wait()
	for _, n := range ns {
		if status[n] != http.StatusOK {
			t.Fatalf("n=%d: status %d: %s", n, status[n], got[n])
		}
		if !bytes.Equal(got[n], want[n]) {
			t.Errorf("n=%d: served mesh differs from single-run output (%d vs %d bytes)",
				n, len(got[n]), len(want[n]))
		}
	}

	// The repeat must come from the cache, byte-identical again.
	resp, body := postMesh(t, ts.URL, `{"geometry":"naca0012","n":20,"params":{"audit":true}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat: status %d: %s", resp.StatusCode, body)
	}
	if hdr := resp.Header.Get("X-Cache"); hdr != "hit" {
		t.Errorf("repeat request X-Cache = %q, want \"hit\"", hdr)
	}
	if !bytes.Equal(body, want[20]) {
		t.Errorf("cached mesh differs from single-run output")
	}

	// And the hit shows up in the /metrics counters.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer mresp.Body.Close()
	var mj trace.MetricsJSON
	if err := json.NewDecoder(mresp.Body).Decode(&mj); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	if mj.Counters["server.cache.hits"] < 1 {
		t.Errorf("server.cache.hits = %d, want >= 1", mj.Counters["server.cache.hits"])
	}
	if mj.Counters["server.cache.misses"] != 2 {
		t.Errorf("server.cache.misses = %d, want 2", mj.Counters["server.cache.misses"])
	}
	if mj.Counters["engine.runs"] != 2 {
		t.Errorf("engine.runs = %d, want 2 (cache hit must not re-run)", mj.Counters["engine.runs"])
	}
}

// TestServeTraceExport: a request with "trace": true deposits a Chrome
// trace export retrievable at /trace/{id}.
func TestServeTraceExport(t *testing.T) {
	ts, _ := newTestServer(t, core.EngineConfig{Ranks: 1}, serverOptions{})
	resp, body := postMesh(t, ts.URL, `{"geometry":"naca0012","n":16,"params":{"trace":true}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-Trace-Id")
	if id == "" {
		t.Fatalf("no X-Trace-Id header on traced request")
	}
	tresp, err := http.Get(ts.URL + "/trace/" + id)
	if err != nil {
		t.Fatalf("GET /trace/%s: %v", id, err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace/%s: status %d", id, tresp.StatusCode)
	}
	var tf struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&tf); err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Errorf("trace export has no events")
	}
}

// TestServeBadRequests: malformed inputs come back as 400s with JSON
// error bodies, not 500s or hangs.
func TestServeBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, core.EngineConfig{Ranks: 1}, serverOptions{})
	cases := []struct {
		name, body string
	}{
		{"bad json", `{`},
		{"unknown geometry", `{"geometry":"b747"}`},
		{"unknown kernel", `{"geometry":"naca0012","params":{"kernel":"voronoi"}}`},
		{"unknown format", `{"geometry":"naca0012","params":{"format":"stl"}}`},
		{"bad poly", `{"poly":"not a poly file"}`},
	}
	for _, c := range cases {
		resp, body := postMesh(t, ts.URL, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, resp.StatusCode, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body %q is not {\"error\": ...}", c.name, body)
		}
	}
	if resp, _ := postMesh(t, ts.URL, ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty body: status %d, want 400", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/mesh")
	if err != nil {
		t.Fatalf("GET /mesh: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /mesh: status %d, want 405", resp.StatusCode)
	}
}

// TestServeHealthz sanity-checks the liveness endpoint.
func TestServeHealthz(t *testing.T) {
	ts, eng := newTestServer(t, core.EngineConfig{Ranks: 3}, serverOptions{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var h struct {
		Status string `json:"status"`
		Ranks  int    `json:"ranks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if h.Status != "ok" || h.Ranks != eng.Ranks() {
		t.Errorf("healthz = %+v, want ok with %d ranks", h, eng.Ranks())
	}
}

// TestCacheKeyEquivalence: omitted parameters and their explicit defaults
// must share one cache slot, and a parameter that changes the mesh must
// not.
func TestCacheKeyEquivalence(t *testing.T) {
	ts, _ := newTestServer(t, core.EngineConfig{Ranks: 1}, serverOptions{})
	resp1, _ := postMesh(t, ts.URL, `{"geometry":"naca0012","n":16}`)
	if resp1.StatusCode != http.StatusOK || resp1.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first: status %d cache %q", resp1.StatusCode, resp1.Header.Get("X-Cache"))
	}
	// Explicit defaults == omitted defaults.
	resp2, _ := postMesh(t, ts.URL,
		`{"geometry":"naca0012","n":16,"params":{"h0":0.02,"gradation":0.15,"hmax":4.0,"kernel":"ruppert","format":"ascii"}}`)
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Errorf("explicit defaults: X-Cache %q, want hit", resp2.Header.Get("X-Cache"))
	}
	// A different sizing is a different mesh.
	resp3, _ := postMesh(t, ts.URL, `{"geometry":"naca0012","n":16,"params":{"h0":0.05}}`)
	if resp3.Header.Get("X-Cache") != "miss" {
		t.Errorf("changed h0: X-Cache %q, want miss", resp3.Header.Get("X-Cache"))
	}
}
