package main

import (
	"fmt"
	"io"

	"pamg2d/internal/adapt"
	"pamg2d/internal/audit"
	"pamg2d/internal/core"
	"pamg2d/internal/mesh"
	"pamg2d/internal/solver"
	"pamg2d/internal/trace"
)

// adaptSolver is the shared solve for the hessian metric source and the
// isotropic loop.
var adaptSolver = solver.Options{Tol: 1e-8, MaxIters: 20000, Method: solver.GaussSeidel}

// runAdapt executes the post-generation adaptation cycles requested via
// -adapt-cycles and returns the final mesh. Every cycle's mesh is
// audited with the adapted profile; a violation fails the run.
func runAdapt(cfg core.Config, m *mesh.Mesh, iso bool, tracer *trace.Tracer, stderr io.Writer, quiet bool) (*mesh.Mesh, error) {
	if iso {
		// One extra step: Loop's first trip reproduces the mesh already
		// generated; adaptation happens between trips.
		steps, err := adapt.Loop(cfg, adapt.DefaultProblem, adapt.LoopOptions{Steps: cfg.Adapt.Cycles + 1, Solver: adaptSolver})
		if err != nil {
			return nil, err
		}
		for i, st := range steps {
			if aerr := audit.Run(&audit.Snapshot{Mesh: st.Mesh}, audit.Adapted()).Error(); aerr != nil {
				return nil, fmt.Errorf("adapt-iso cycle %d audit: %w", i, aerr)
			}
			if !quiet {
				fmt.Fprintf(stderr, "adapt-iso %d          %d triangles, error est. %.4f, %d solver iters\n",
					i, st.Triangles, st.TotalError, st.Iterations)
			}
		}
		return steps[len(steps)-1].Mesh, nil
	}

	build, resample, err := adapt.MetricSource(cfg.Adapt, adapt.DefaultSolve(adaptSolver))
	if err != nil {
		return nil, err
	}
	opt := adapt.Options{
		Workers:  cfg.KernelWorkers,
		Ranks:    cfg.Ranks,
		Tracer:   tracer,
		Resample: resample,
	}
	adapted, reps, err := adapt.Cycles(m, cfg.Adapt, opt, build)
	if !quiet {
		for _, r := range reps {
			fmt.Fprintf(stderr, "adapt %d              %d splits, %d collapses, %d swaps, %d smooths; %.1f%% of %d edges in band (%d sweeps)\n",
				r.Cycle, r.Result.Splits, r.Result.Collapses, r.Result.Swaps, r.Result.Smooths,
				100*r.Result.InBand, r.Result.Edges, r.Result.Sweeps)
		}
	}
	if err != nil {
		return nil, err
	}
	return adapted, nil
}
