package main

// Multi-process launcher: with -transport tcp the command becomes rank 0
// of a real multi-process run. It listens on -listen, spawns ranks-1
// copies of itself with the identical meshing flags plus `-worker -join
// <addr>`, and accepts them into an mpi TCP cluster. Every process then
// runs the same SPMD pipeline over the fabric; only the launcher writes
// the mesh and statistics. Workers can also be started by hand on other
// machines — `-spawn 0` makes the launcher listen without forking and
// wait for all ranks-1 workers to join on their own (spawning is the
// single-machine convenience; the protocol does not care who forks whom).

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sync"

	"pamg2d/internal/mpi"
)

// lockedWriter serializes writes to a shared non-File stderr and, by
// exposing only Write, keeps io.Copy from delegating to the underlying
// writer's ReadFrom (bytes.Buffer.ReadFrom truncates concurrent writes
// away — see the wrap site in run). Worker pipe copiers and the
// launcher's own reports interleave safely through it.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// workerEnv marks a spawned process as a meshgen worker re-exec. The
// production binary ignores it; the test binary's TestMain uses it to
// dispatch into run() instead of the test driver.
const workerEnv = "MESHGEN_WORKER_EXEC"

// launchTCP brings up the TCP fabric as rank 0: listen, spawn the
// workers, accept them. spawn is the number of local worker processes to
// fork (ranks-1 when negative; fewer means the remainder must join by
// hand). runID, when non-empty, is forwarded to the workers so every
// process of the run logs under one correlation ID (a trailing flag
// wins over any earlier -run-id in args). The returned cleanup reaps
// the worker processes and must run after the cluster is closed.
func launchTCP(ctx context.Context, args []string, listen string, ranks, spawn int, runID string, stderr io.Writer) (*mpi.Cluster, func(), error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, nil, err
	}
	exe, err := os.Executable()
	if err != nil {
		ln.Close()
		return nil, nil, err
	}
	if spawn < 0 || spawn > ranks-1 {
		spawn = ranks - 1
	}
	workerArgs := append(append([]string{}, args...), "-worker", "-join", ln.Addr().String())
	if runID != "" {
		workerArgs = append(workerArgs, "-run-id", runID)
	}
	cmds := make([]*exec.Cmd, 0, spawn)
	reap := func() {
		for _, cmd := range cmds {
			if werr := cmd.Wait(); werr != nil {
				fmt.Fprintf(stderr, "meshgen: worker %d: %v\n", cmd.Process.Pid, werr)
			}
		}
	}
	for i := 0; i < spawn; i++ {
		cmd := exec.CommandContext(ctx, exe, workerArgs...)
		cmd.Stderr = stderr
		cmd.Env = append(os.Environ(), workerEnv+"=1")
		if err := cmd.Start(); err != nil {
			ln.Close()
			reap()
			return nil, nil, fmt.Errorf("spawn worker %d: %w", i+1, err)
		}
		cmds = append(cmds, cmd)
	}
	cluster, err := mpi.AcceptTCP(ctx, ln, ranks)
	if err != nil {
		reap()
		return nil, nil, fmt.Errorf("accept workers: %w", err)
	}
	return cluster, reap, nil
}
