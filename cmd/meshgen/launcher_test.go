package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"pamg2d/internal/trace"
)

// TestMain doubles as the worker re-exec entry point: the launcher spawns
// os.Executable(), which under `go test` is the test binary, with
// workerEnv set. Dispatch those invocations into run() so the end-to-end
// launcher tests exercise real separate processes.
func TestMain(m *testing.M) {
	if os.Getenv(workerEnv) == "1" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
			os.Stderr.WriteString("meshgen worker: " + err.Error() + "\n")
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestRunTCPMatchesInProcess is the CLI acceptance gate for the TCP
// transport: `meshgen -transport tcp -ranks 2` (launcher + one spawned
// worker process) must write exactly the bytes of the in-process run with
// the same flags, with the audit stage on in both.
func TestRunTCPMatchesInProcess(t *testing.T) {
	dir := t.TempDir()
	inproc := filepath.Join(dir, "inproc.bin")
	overTCP := filepath.Join(dir, "tcp.bin")

	base := []string{
		"-n", "24", "-farfield", "6", "-ranks", "2",
		"-h0", "0.08", "-hmax", "2", "-bl-h0", "3e-3", "-bl-layers", "8",
		"-format", "binary", "-audit", "-q",
	}
	var errb bytes.Buffer
	if err := run(context.Background(), append(base, "-o", inproc), &bytes.Buffer{}, &errb); err != nil {
		t.Fatalf("in-process run: %v\n%s", err, errb.String())
	}
	errb.Reset()
	if err := run(context.Background(), append(base, "-transport", "tcp", "-o", overTCP), &bytes.Buffer{}, &errb); err != nil {
		t.Fatalf("tcp run: %v\n%s", err, errb.String())
	}

	a, err := os.ReadFile(inproc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(overTCP)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("in-process run wrote an empty mesh")
	}
	if !bytes.Equal(a, b) {
		t.Errorf("tcp mesh (%d bytes) differs from in-process mesh (%d bytes)", len(b), len(a))
	}
}

// TestRunTCPHandJoinedWorkers: with -spawn 0 the launcher forks nothing
// and waits for the workers to join by themselves, which is how remote or
// debugger-wrapped workers attach. Both roles run in this process (the
// TCP fabric does not care), and the launcher's mesh must match the
// in-process run byte for byte.
func TestRunTCPHandJoinedWorkers(t *testing.T) {
	dir := t.TempDir()
	inproc := filepath.Join(dir, "inproc.bin")
	overTCP := filepath.Join(dir, "tcp.bin")

	// Reserve a port for the launcher: listen, read the address, close.
	// The window between Close and the launcher's Listen is racy in
	// principle, but nothing else in the test binary is binding ports.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	base := []string{
		"-n", "24", "-farfield", "6", "-ranks", "2",
		"-h0", "0.08", "-hmax", "2", "-bl-h0", "3e-3", "-bl-layers", "8",
		"-format", "binary", "-audit", "-q",
	}
	var errb bytes.Buffer
	if err := run(context.Background(), append(base, "-o", inproc), &bytes.Buffer{}, &errb); err != nil {
		t.Fatalf("in-process run: %v\n%s", err, errb.String())
	}

	launcherErr := make(chan error, 1)
	go func() {
		var b bytes.Buffer
		err := run(context.Background(),
			append(base, "-transport", "tcp", "-spawn", "0", "-listen", addr, "-o", overTCP),
			&bytes.Buffer{}, &b)
		if err != nil {
			err = fmt.Errorf("%w\n%s", err, b.String())
		}
		launcherErr <- err
	}()

	// The worker dials once, so retry until the launcher is listening.
	var werr error
	for i := 0; i < 100; i++ {
		werr = run(context.Background(), append(base, "-worker", "-join", addr),
			&bytes.Buffer{}, &bytes.Buffer{})
		if werr == nil || !strings.Contains(werr.Error(), "connection refused") {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if werr != nil {
		t.Fatalf("hand-joined worker: %v", werr)
	}
	if err := <-launcherErr; err != nil {
		t.Fatalf("launcher: %v", err)
	}

	a, err := os.ReadFile(inproc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(overTCP)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("hand-joined tcp mesh (%d bytes) differs from in-process mesh (%d bytes)", len(b), len(a))
	}
}

// TestRunTCPMergedTrace is the distributed-telemetry acceptance gate: a
// 2-rank TCP run with -trace and -metrics must produce ONE Chrome trace
// spanning both processes — stage/task spans from each rank on its own
// pid track, clock-offset metadata for every rank — that passes the
// structural validator, plus a metrics document carrying the worker's
// registry under a rank prefix.
func TestRunTCPMergedTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.trace.json")
	metricsPath := filepath.Join(dir, "run.metrics.json")

	args := []string{
		"-n", "24", "-farfield", "6", "-ranks", "2",
		"-h0", "0.08", "-hmax", "2", "-bl-h0", "3e-3", "-bl-layers", "8",
		"-format", "binary", "-transport", "tcp", "-q",
		"-o", filepath.Join(dir, "mesh.bin"),
		"-trace", tracePath, "-metrics", metricsPath,
	}
	var errb bytes.Buffer
	if err := run(context.Background(), args, &bytes.Buffer{}, &errb); err != nil {
		t.Fatalf("tcp traced run: %v\n%s", err, errb.String())
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := trace.ValidateTrace(bytes.NewReader(raw)); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	} else if n == 0 {
		t.Fatal("merged trace has no events")
	}

	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		Metadata map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("merged trace not JSON: %v", err)
	}
	// Stage/task spans from both ranks, on distinct pid tracks. Rank r's
	// worker track is pid r+1; the launcher's root pipeline track is pid 0.
	spansByPid := map[int]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			spansByPid[ev.Pid]++
		}
	}
	for _, pid := range []int{1, 2} {
		if spansByPid[pid] == 0 {
			t.Errorf("no spans on pid %d (rank %d): per-pid span counts %v", pid, pid-1, spansByPid)
		}
	}
	if doc.Metadata["transport"] != "tcp" {
		t.Errorf("trace metadata transport = %v, want tcp", doc.Metadata["transport"])
	}
	offsets, ok := doc.Metadata["clock_offsets_ns"].(map[string]any)
	if !ok {
		t.Fatalf("trace metadata lacks clock_offsets_ns: %v", doc.Metadata)
	}
	for _, rank := range []string{"0", "1"} {
		if _, ok := offsets[rank]; !ok {
			t.Errorf("no clock offset for rank %s: %v", rank, offsets)
		}
	}

	// The metrics document must fold the worker's registry in under its
	// rank prefix next to the launcher's own entries.
	mf, err := os.Open(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	if err := trace.ValidateMetrics(mf); err != nil {
		t.Fatalf("metrics document invalid: %v", err)
	}
	mraw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(mraw, &metrics); err != nil {
		t.Fatal(err)
	}
	var local, remote bool
	for name := range metrics.Counters {
		if strings.HasPrefix(name, "rank1.") {
			remote = true
		} else if !strings.HasPrefix(name, "rank") {
			local = true
		}
	}
	if !remote {
		t.Errorf("no rank1.-prefixed counters in merged metrics: %v", metrics.Counters)
	}
	if !local {
		t.Errorf("no launcher-local counters in merged metrics: %v", metrics.Counters)
	}
}

// TestRunWorkerFlagValidation: a worker without a launcher address must
// fail fast instead of dialing nothing.
func TestRunWorkerFlagValidation(t *testing.T) {
	err := run(context.Background(), []string{"-worker"}, &bytes.Buffer{}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("worker without -join succeeded")
	}
}

// TestRunUnknownTransport rejects transports the build does not provide.
func TestRunUnknownTransport(t *testing.T) {
	err := run(context.Background(), fastArgs("-transport", "infiniband"), &bytes.Buffer{}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("unknown transport accepted")
	}
}

// TestRunTCPSurvivesWorkerKill is the fault-tolerance acceptance gate: a
// 4-process TCP run loses a worker to SIGKILL mid-run (the
// -fault-kill-rank hook raises SIGKILL on the worker at the start of its
// first task — delivery identical to an external kill -9) and must still
// complete on the survivors with the audit stage clean, exit
// successfully, report the death and the re-queued tasks, and export a
// merged trace carrying the recovery events. The same run under
// -strict-ranks must fail instead.
func TestRunTCPSurvivesWorkerKill(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "degraded.bin")
	tracePath := filepath.Join(dir, "degraded.trace.json")

	base := []string{
		"-n", "24", "-farfield", "6", "-ranks", "4",
		"-h0", "0.08", "-hmax", "2", "-bl-h0", "3e-3", "-bl-layers", "8",
		"-format", "binary", "-audit", "-transport", "tcp",
		"-fault-kill-rank", "2",
	}
	var errb bytes.Buffer
	err := run(context.Background(), append(base, "-o", out, "-trace", tracePath),
		&bytes.Buffer{}, &errb)
	if err != nil {
		t.Fatalf("degraded run failed: %v\n%s", err, errb.String())
	}
	msg := errb.String()
	if !strings.Contains(msg, "rank 2 died") {
		t.Errorf("no death report for rank 2 on stderr:\n%s", msg)
	}
	if !strings.Contains(msg, "re-queued") {
		t.Errorf("no re-queue report on stderr:\n%s", msg)
	}
	if !strings.Contains(msg, "resilience") {
		t.Errorf("no resilience section in the stats report:\n%s", msg)
	}
	if b, rerr := os.ReadFile(out); rerr != nil || len(b) == 0 {
		t.Fatalf("degraded mesh not written: %v (%d bytes)", rerr, len(b))
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if n, verr := trace.ValidateTrace(bytes.NewReader(raw)); verr != nil {
		t.Fatalf("degraded merged trace invalid: %v", verr)
	} else if n == 0 {
		t.Fatal("degraded merged trace has no events")
	}
	var doc struct {
		TraceEvents []struct {
			Cat string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	recover := 0
	for _, ev := range doc.TraceEvents {
		if ev.Cat == "recover" {
			recover++
		}
	}
	if recover == 0 {
		t.Error("merged trace has no recovery-category events for the rank death")
	}

	errb.Reset()
	err = run(context.Background(),
		append(base, "-strict-ranks", "-q", "-o", filepath.Join(dir, "strict.bin")),
		&bytes.Buffer{}, &errb)
	if err == nil {
		t.Fatal("-strict-ranks accepted a degraded run")
	}
	if !strings.Contains(err.Error(), "rank(s) died") {
		t.Errorf("-strict-ranks failed with the wrong error: %v", err)
	}
}
