// Command meshgen is the push-button parallel anisotropic mesh generator:
// given a geometry choice (or a Triangle .poly file) and boundary-layer
// parameters on the command line, it generates the mesh with no further
// interaction and writes Triangle-format ASCII, compact binary, or VTK
// output.
//
// A run is bounded and interruptible: -timeout caps the wall time, and
// Ctrl-C (SIGINT/SIGTERM) tears the pipeline down cleanly — the simulated
// MPI worlds close, the worker goroutines drain, and the command exits
// with an error naming the interrupted stage instead of leaving a partial
// mesh.
//
// Usage:
//
//	meshgen -geometry naca0012 -n 128 -ranks 8 -o mesh.txt
//	meshgen -geometry 30p30n -n 96 -ranks 16 -format binary -o mesh.bin
//	meshgen -input wing.poly -format vtk -o wing.vtk
//	meshgen -n 256 -timeout 2m -o mesh.txt
package main

import (
	"context"
	"log"
	"os"
	"os/signal"
	"syscall"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("meshgen: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}
