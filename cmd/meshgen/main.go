// Command meshgen is the push-button parallel anisotropic mesh generator:
// given a geometry choice (or a Triangle .poly file) and boundary-layer
// parameters on the command line, it generates the mesh with no further
// interaction and writes Triangle-format ASCII, compact binary, or VTK
// output.
//
// Usage:
//
//	meshgen -geometry naca0012 -n 128 -ranks 8 -o mesh.txt
//	meshgen -geometry 30p30n -n 96 -ranks 16 -format binary -o mesh.bin
//	meshgen -input wing.poly -format vtk -o wing.vtk
package main

import (
	"log"
	"os"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("meshgen: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}
