package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"syscall"

	"pamg2d/internal/airfoil"
	"pamg2d/internal/core"
	"pamg2d/internal/growth"
	"pamg2d/internal/mpi"
	"pamg2d/internal/pslg"
	"pamg2d/internal/trace"
)

// run executes the meshgen CLI with explicit argument and output streams
// so the command is testable end to end. ctx bounds the whole run: main
// cancels it on SIGINT/SIGTERM, and -timeout adds a deadline on top.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	// A non-File stderr (test harnesses pass a bytes.Buffer) must be
	// serialized before it is shared with spawned worker processes:
	// os/exec copies a child's stderr pipe into a non-File writer with
	// io.Copy, which delegates to bytes.Buffer.ReadFrom — and ReadFrom
	// snapshots the buffer length, blocks for the child's lifetime, then
	// truncates the buffer back to the snapshot on EOF, erasing whatever
	// the launcher printed in between. The wrapper hides ReadFrom and
	// locks each write. A real *os.File (os.Stderr in production) is
	// passed to children as a plain fd, needs neither, and stays unwrapped.
	if _, isFile := stderr.(*os.File); !isFile {
		stderr = &lockedWriter{w: stderr}
	}
	fs := flag.NewFlagSet("meshgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		geometry    = fs.String("geometry", "naca0012", "geometry: naca0012 | 30p30n (ignored with -input)")
		input       = fs.String("input", "", "read the PSLG from a Triangle .poly file instead of -geometry")
		writePoly   = fs.String("write-poly", "", "also write the generated PSLG to this .poly file")
		nHalf       = fs.Int("n", 64, "surface resolution (half-points per element)")
		ranks       = fs.Int("ranks", 4, "MPI ranks (goroutines with -transport inproc, processes with tcp)")
		kernelW     = fs.Int("kernel-workers", 1, "Delaunay insertion goroutines per task (1 = sequential, 0 = NumCPU)")
		kernelSh    = fs.Bool("kernel-shuffle", false, "BRIO round-shuffled insertion batches in the parallel kernel (cuts conflict retries on clustered points)")
		transport   = fs.String("transport", "inproc", "rank transport: inproc | tcp (spawns ranks-1 worker processes)")
		listen      = fs.String("listen", "127.0.0.1:0", "launcher listen address for -transport tcp")
		spawn       = fs.Int("spawn", -1, "worker processes the launcher forks locally (-1 = ranks-1; 0 = all workers join by hand)")
		worker      = fs.Bool("worker", false, "run as a spawned worker process (internal; requires -join)")
		join        = fs.String("join", "", "address of the launcher to join as a worker")
		farfield    = fs.Float64("farfield", 30, "far-field half-width in chords")
		h0          = fs.Float64("bl-h0", 4e-4, "first boundary-layer height")
		ratio       = fs.Float64("bl-ratio", 1.25, "boundary-layer growth ratio")
		layersMax   = fs.Int("bl-layers", 40, "maximum boundary layers")
		surfaceH    = fs.Float64("h0", 0.02, "isotropic surface edge length")
		gradation   = fs.Float64("gradation", 0.15, "sizing growth with distance")
		hmax        = fs.Float64("hmax", 4.0, "far-field edge length cap")
		kernel      = fs.String("kernel", "ruppert", "inviscid kernel: ruppert | front")
		auditRun    = fs.Bool("audit", false, "verify mesh invariants after the merge (fails the run on violations)")
		strictRanks = fs.Bool("strict-ranks", false, "fail the run if any rank died (default: a degraded run that completes on the survivors exits 0)")
		faultRank   = fs.Int("fault-kill-rank", -1, "fault injection: this worker rank SIGKILLs itself mid-run (tcp transport; rehearses rank-death recovery)")
		faultTask   = fs.Int("fault-kill-task", 0, "fault injection: the task index at which -fault-kill-rank dies (0 = its first task)")
		format      = fs.String("format", "ascii", "output format: ascii | binary | vtk")
		out         = fs.String("o", "", "output file (default stdout)")
		quiet       = fs.Bool("q", false, "suppress statistics")
		cpuProf     = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf     = fs.String("memprofile", "", "write a pprof heap profile to this file")
		traceOut    = fs.String("trace", "", "write a Chrome trace-event file of the run (load in Perfetto / chrome://tracing)")
		metricsOut  = fs.String("metrics", "", "write the run-metrics registry (counters/gauges/histograms) as JSON")
		timeout     = fs.Duration("timeout", 0, "abort generation after this duration (0 = no limit)")
		logFormat   = fs.String("log-format", "text", "structured log format: text | json")
		logLevel    = fs.String("log-level", "off", "engine log level: off | debug | info | warn | error")
		runID       = fs.String("run-id", "", "run correlation ID stamped on logs and stats (default: engine-assigned when observability is on)")
		adaptN      = fs.Int("adapt-cycles", 0, "metric-adaptation cycles after generation (0 = off)")
		adaptMet    = fs.String("adapt-metric", "hessian", "metric source: hessian | a metric spec (uniform:h=… | bl:…)")
		adaptIso    = fs.Bool("adapt-iso", false, "adapt with the isotropic indicator loop (full regeneration per cycle) instead of the cavity-operator engine")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// A worker whose launcher asked for a trace or metrics file records
	// its own rank locally and ships the snapshot to rank 0 at the end of
	// the run; the flag values themselves are cleared below so workers
	// never write launcher-owned artifacts.
	wantTelemetry := *worker && (*traceOut != "" || *metricsOut != "")
	if *worker {
		// Workers run the identical SPMD pipeline but produce no artifacts
		// of their own: the launcher owns the mesh, the stats, and every
		// observability output.
		if *join == "" {
			return fmt.Errorf("-worker requires -join <launcher address>")
		}
		*cpuProf, *memProf, *traceOut, *metricsOut, *writePoly = "", "", "", "", ""
	}
	logger, err := newLogger(stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(stderr, "meshgen: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "meshgen: %v\n", err)
			}
		}()
	}

	cfg := core.DefaultConfig()
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		g, err := pslg.ReadPoly(f)
		f.Close()
		if err != nil {
			return err
		}
		cfg.CustomGraph = g
	} else {
		switch *geometry {
		case "naca0012":
			cfg.Geometry = airfoil.Single(airfoil.NACA0012, *nHalf, *farfield)
		case "30p30n":
			cfg.Geometry = airfoil.ThreeElement(*nHalf)
			cfg.Geometry.FarfieldChords = *farfield
		default:
			return fmt.Errorf("unknown geometry %q", *geometry)
		}
	}
	if *writePoly != "" {
		g := cfg.CustomGraph
		if g == nil {
			var err error
			g, err = cfg.Geometry.Graph()
			if err != nil {
				return err
			}
		}
		f, err := os.Create(*writePoly)
		if err != nil {
			return err
		}
		if err := g.WritePoly(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	cfg.BL.Growth = growth.Geometric{H0: *h0, Ratio: *ratio}
	cfg.BL.MaxLayers = *layersMax
	cfg.SurfaceH0 = *surfaceH
	cfg.Gradation = *gradation
	cfg.HMax = *hmax
	cfg.Ranks = *ranks
	cfg.KernelWorkers = *kernelW
	cfg.KernelShuffle = *kernelSh
	cfg.Audit = *auditRun
	switch *kernel {
	case "ruppert":
		cfg.InviscidKernel = core.KernelRuppert
	case "front":
		cfg.InviscidKernel = core.KernelAdvancingFront
	default:
		return fmt.Errorf("unknown kernel %q", *kernel)
	}

	cfg.RunID = *runID
	var fabric *mpi.Cluster
	switch {
	case *worker:
		cluster, err := mpi.JoinTCP(ctx, *join)
		if err != nil {
			return fmt.Errorf("join %s: %w", *join, err)
		}
		defer cluster.Close()
		cfg.Fabric = cluster
		cfg.Ranks = cluster.Size()
		if logger != nil {
			cfg.Logger = logger.With("rank", cluster.Rank())
		}
		armFaultKill(&cfg, cluster.Rank(), *faultRank, *faultTask)
		var workerTracer *trace.Tracer
		if wantTelemetry {
			workerTracer = trace.New(cfg.Ranks)
			cfg.Tracer = workerTracer
			// Pings from the launcher read this clock, so the measured
			// offsets convert worker trace timestamps directly.
			cluster.SetNowFunc(workerTracer.Now)
		}
		poolGets0, poolPuts0 := mpi.PoolCounters()
		res, err := core.GenerateContext(ctx, cfg)
		if err != nil {
			return err
		}
		// Ship the per-process run summary, then any tracer snapshot,
		// before the finalize barrier: FIFO frame delivery means the
		// launcher holds both once the barrier releases.
		if err := cluster.SendTelemetry(encodeRankStats(cluster.Rank(), &res.Stats)); err != nil {
			return err
		}
		if workerTracer != nil {
			foldPoolGauges(workerTracer.Metrics(), poolGets0, poolPuts0)
			if err := cluster.SendTelemetry(workerTracer.Export(cluster.Rank())); err != nil {
				return err
			}
		}
		return finalizeTCP(ctx, cluster)
	case *transport == "tcp":
		// One correlation ID for the whole process tree: assign before the
		// workers fork so they inherit it on their command line.
		if *runID == "" && (logger != nil || *traceOut != "" || *metricsOut != "") {
			*runID = fmt.Sprintf("meshgen-%d", os.Getpid())
			cfg.RunID = *runID
		}
		cluster, reap, err := launchTCP(ctx, args, *listen, *ranks, *spawn, *runID, stderr)
		if err != nil {
			return err
		}
		defer reap()
		defer cluster.Close()
		cfg.Fabric = cluster
		fabric = cluster
		if logger != nil {
			cfg.Logger = logger.With("rank", 0)
		}
	case *transport != "inproc":
		return fmt.Errorf("unknown transport %q", *transport)
	default:
		if logger != nil {
			cfg.Logger = logger
		}
	}

	var tracer *trace.Tracer
	if *traceOut != "" || *metricsOut != "" {
		tracer = trace.New(cfg.Ranks)
		cfg.Tracer = tracer
		if fabric != nil {
			fabric.SetNowFunc(tracer.Now)
		}
	}
	poolGets0, poolPuts0 := mpi.PoolCounters()

	res, err := core.GenerateContext(ctx, cfg)
	var clocks []mpi.ClockSync
	if err == nil && fabric != nil {
		if tracer != nil {
			// Measure before the finalize barrier: workers answer pings on
			// their reader goroutines even while blocked in the barrier, and
			// their tracer clocks are still the installed now-funcs.
			if clocks, err = fabric.MeasureOffsets(ctx, 5); err != nil {
				err = fmt.Errorf("clock sync: %w", err)
			}
		}
		if err == nil {
			err = finalizeTCP(ctx, fabric)
		}
	}
	// Drain the telemetry channel once the barrier released: worker
	// processes shipped their run summaries (and tracer snapshots, when
	// tracing is on) ahead of entering it. Ranks that died have no
	// summary — the degradation report below covers them.
	var workerStats []rankSummary
	var workerTelems []*trace.Telemetry
	if fabric != nil {
		for _, item := range fabric.Telemetry() {
			switch p := item.Payload.(type) {
			case *trace.Telemetry:
				workerTelems = append(workerTelems, p)
			case []float64:
				if rs, ok := decodeRankStats(p); ok {
					workerStats = append(workerStats, rs)
				}
			}
		}
	}
	if err == nil && fabric != nil && res.Stats.Degraded() {
		reportDeaths(stderr, &res.Stats)
		if *strictRanks {
			// The trace still exports below: the degraded run's record is
			// exactly what the strict failure will be debugged with.
			err = fmt.Errorf("%d rank(s) died during the run (-strict-ranks)", res.Stats.Resilience.RanksLost)
		}
	}

	// Export the trace and metrics even when generation failed: the
	// partial record of an aborted run is usually the record being
	// debugged. The generation error still wins the exit status.
	var telems []*trace.Telemetry
	if tracer != nil {
		foldPoolGauges(tracer.Metrics(), poolGets0, poolPuts0)
		var rankClocks []trace.RankClock
		transport := ""
		if fabric != nil {
			transport = fabric.TransportName()
			for _, tel := range workerTelems {
				telems = append(telems, tel)
				// Worker registries land under a rank prefix so per-rank
				// totals stay distinguishable in the merged document.
				tracer.Metrics().MergeSnapshot(fmt.Sprintf("rank%d.", tel.Rank), tel.Metrics)
			}
			for _, cs := range clocks {
				rankClocks = append(rankClocks, trace.RankClock{
					Rank: cs.Rank, OffsetNS: cs.OffsetNS, RTTNS: cs.RTTNS,
				})
			}
		}
		// The local snapshot is exported after the metric folds above so
		// the metrics file carries every rank; it sorts to the front of the
		// merged trace by host rank.
		telems = append(telems, tracer.Export(0))
		if werr := writeObservability(tracer, *traceOut, *metricsOut, telems, rankClocks, transport); werr != nil {
			if err == nil {
				err = werr
			} else {
				fmt.Fprintf(stderr, "meshgen: %v\n", werr)
			}
		}
	}
	if err != nil {
		return err
	}

	if *adaptN > 0 {
		if fabric != nil {
			return fmt.Errorf("-adapt-cycles requires -transport inproc")
		}
		cfg.Adapt = core.AdaptParams{Cycles: *adaptN, Metric: *adaptMet}
		adapted, err := runAdapt(cfg, res.Mesh, *adaptIso, tracer, stderr, *quiet)
		if err != nil {
			return err
		}
		res.Mesh = adapted
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "ascii":
		err = res.Mesh.WriteASCII(w)
	case "binary":
		err = res.Mesh.WriteBinary(w)
	case "vtk":
		err = res.Mesh.WriteVTK(w, nil)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}

	if !*quiet {
		st := res.Stats
		q := res.Mesh.Quality()
		fmt.Fprintf(stderr, "points               %d\n", res.Mesh.NumPoints())
		fmt.Fprintf(stderr, "triangles            %d (BL %d, transition %d, inviscid %d)\n",
			res.Mesh.NumTriangles(), st.BLTriangles, st.TransitionTris, st.InviscidTris)
		fmt.Fprintf(stderr, "boundary-layer pts   %d from %d surface points\n",
			st.BoundaryLayerPts, st.SurfacePoints)
		fmt.Fprintf(stderr, "max aspect ratio     %.1f\n", q.MaxAspectRatio)
		fmt.Fprintf(stderr, "tasks                %d across %d ranks (%d msgs, %d bytes)\n",
			len(st.Tasks), cfg.Ranks, st.Messages, st.BytesOnWire)
		fmt.Fprintf(stderr, "time                 total %v (BL %v, parallel %v)\n",
			st.Times.Total.Round(1e6), st.Times.Boundary.Round(1e6), st.Times.Parallel.Round(1e6))
		if st.Kernel.Workers > 1 {
			fmt.Fprintf(stderr, "kernel               %d workers: %d inserted in %d rounds, %d conflict retries, %d sequential\n",
				st.Kernel.Workers, st.Kernel.Inserted, st.Kernel.Rounds, st.Kernel.Conflicts, st.Kernel.Sequential)
		}
		if st.Steals.Requests > 0 || st.Steals.Gotten > 0 {
			fmt.Fprintf(stderr, "steals               %d of %d requests granted, %v total idle\n",
				st.Steals.Granted, st.Steals.Requests, st.Steals.Idle.Round(1e6))
		}
		if fabric != nil {
			printRankStats(stderr, summarizeRankStats(0, &st), workerStats)
		}
		if st.Degraded() {
			printResilience(stderr, &st)
		}
		if tracer != nil && fabric != nil {
			var maxOff int64
			for _, cs := range clocks {
				if off := cs.OffsetNS; off < 0 {
					off = -off
					if off > maxOff {
						maxOff = off
					}
				} else if off > maxOff {
					maxOff = off
				}
			}
			fmt.Fprintf(stderr, "telemetry            %d rank snapshots merged, max |clock offset| %dns\n",
				len(telems), maxOff)
		}
		if st.Audit != nil {
			checked := 0
			for _, c := range st.Audit.Checks {
				if !c.Skipped {
					checked++
				}
			}
			fmt.Fprintf(stderr, "audit                %d checks passed in %v\n",
				checked, st.Times.Audit.Round(1e6))
		}
	}
	return nil
}

// armFaultKill installs the fault-injection hook on the worker whose
// rank matches -fault-kill-rank: at the start of its killTask-th task it
// raises SIGKILL on itself — uncatchable and instant, exactly the death
// an OOM kill or a node loss delivers — so resilience tests and the CI
// fault smoke get a rank death at a deterministic point in the task
// stream instead of a racy external kill. Workers only: the launcher is
// rank 0, and killing it is quorum loss by definition.
func armFaultKill(cfg *core.Config, rank, killRank, killTask int) {
	if killRank < 0 || rank != killRank {
		return
	}
	var tasks atomic.Int64
	cfg.TaskHook = func(stage string, kind int) error {
		if int(tasks.Add(1)) > killTask {
			_ = syscall.Kill(syscall.Getpid(), syscall.SIGKILL)
		}
		return nil
	}
}

// finalizeTCP synchronizes pipeline completion across the fabric's
// processes before any of them tears its connections down: without the
// barrier the launcher could close the cluster while a worker is still
// draining the last result broadcast, failing the worker with a link EOF.
// A process that errored out of generation skips the barrier and closes
// its cluster instead, which releases the others with ErrWorldClosed
// rather than hanging them. Only the barrier's own result matters: once
// it releases, every process has finished, and a world teardown caused by
// a peer closing immediately afterwards is the expected shutdown, not an
// error (RunCtx would otherwise report that race as the run's failure).
func finalizeTCP(ctx context.Context, cluster *mpi.Cluster) error {
	w := cluster.NewWorld()
	var berr error
	_ = w.RunCtx(ctx, func(c *mpi.Comm) error { berr = c.Barrier(); return nil })
	return berr
}

// newLogger builds the CLI's slog logger from the -log-format and
// -log-level flags. Level "off" (the default) returns nil — the fully
// disabled path, with no handler allocated and no slog calls made.
func newLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	if level == "" || level == "off" {
		return nil, nil
	}
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q", format)
	}
}

// foldPoolGauges records the process's mpi buffer-pool traffic since the
// recorded baseline into the registry, on the launcher and every worker
// alike.
func foldPoolGauges(m *trace.Metrics, gets0, puts0 int64) {
	g, p := mpi.PoolCounters()
	m.Gauge("mpi.pool.gets", float64(g-gets0))
	m.Gauge("mpi.pool.puts", float64(p-puts0))
	if g > gets0 {
		m.Gauge("mpi.pool.recycle_rate", float64(p-puts0)/float64(g-gets0))
	}
}

// writeObservability exports the merged Chrome trace-event file and/or
// run-metrics registry to the requested paths (either may be empty).
// telems carries one snapshot per process — just the local export for
// single-process runs — and clocks/transport feed the trace metadata.
// The merged trace is validated before it touches disk, so a defect in
// the merge surfaces as a run error instead of a file Perfetto rejects.
func writeObservability(tr *trace.Tracer, tracePath, metricsPath string,
	telems []*trace.Telemetry, clocks []trace.RankClock, transport string) error {
	if tracePath != "" {
		var buf bytes.Buffer
		if err := trace.WriteMergedTrace(&buf, telems, clocks, transport); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		if _, err := trace.ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil {
			return fmt.Errorf("merged trace failed validation: %w", err)
		}
		if err := os.WriteFile(tracePath, buf.Bytes(), 0o644); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return fmt.Errorf("write metrics: %w", err)
		}
		if err := tr.Metrics().WriteMetrics(f); err != nil {
			f.Close()
			return fmt.Errorf("write metrics: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("write metrics: %w", err)
		}
	}
	return nil
}
