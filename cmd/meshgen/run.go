package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"pamg2d/internal/airfoil"
	"pamg2d/internal/core"
	"pamg2d/internal/growth"
	"pamg2d/internal/mpi"
	"pamg2d/internal/pslg"
	"pamg2d/internal/trace"
)

// run executes the meshgen CLI with explicit argument and output streams
// so the command is testable end to end. ctx bounds the whole run: main
// cancels it on SIGINT/SIGTERM, and -timeout adds a deadline on top.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("meshgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		geometry   = fs.String("geometry", "naca0012", "geometry: naca0012 | 30p30n (ignored with -input)")
		input      = fs.String("input", "", "read the PSLG from a Triangle .poly file instead of -geometry")
		writePoly  = fs.String("write-poly", "", "also write the generated PSLG to this .poly file")
		nHalf      = fs.Int("n", 64, "surface resolution (half-points per element)")
		ranks      = fs.Int("ranks", 4, "MPI ranks (goroutines with -transport inproc, processes with tcp)")
		kernelW    = fs.Int("kernel-workers", 1, "Delaunay insertion goroutines per task (1 = sequential, 0 = NumCPU)")
		kernelSh   = fs.Bool("kernel-shuffle", false, "BRIO round-shuffled insertion batches in the parallel kernel (cuts conflict retries on clustered points)")
		transport  = fs.String("transport", "inproc", "rank transport: inproc | tcp (spawns ranks-1 worker processes)")
		listen     = fs.String("listen", "127.0.0.1:0", "launcher listen address for -transport tcp")
		spawn      = fs.Int("spawn", -1, "worker processes the launcher forks locally (-1 = ranks-1; 0 = all workers join by hand)")
		worker     = fs.Bool("worker", false, "run as a spawned worker process (internal; requires -join)")
		join       = fs.String("join", "", "address of the launcher to join as a worker")
		farfield   = fs.Float64("farfield", 30, "far-field half-width in chords")
		h0         = fs.Float64("bl-h0", 4e-4, "first boundary-layer height")
		ratio      = fs.Float64("bl-ratio", 1.25, "boundary-layer growth ratio")
		layersMax  = fs.Int("bl-layers", 40, "maximum boundary layers")
		surfaceH   = fs.Float64("h0", 0.02, "isotropic surface edge length")
		gradation  = fs.Float64("gradation", 0.15, "sizing growth with distance")
		hmax       = fs.Float64("hmax", 4.0, "far-field edge length cap")
		kernel     = fs.String("kernel", "ruppert", "inviscid kernel: ruppert | front")
		auditRun   = fs.Bool("audit", false, "verify mesh invariants after the merge (fails the run on violations)")
		format     = fs.String("format", "ascii", "output format: ascii | binary | vtk")
		out        = fs.String("o", "", "output file (default stdout)")
		quiet      = fs.Bool("q", false, "suppress statistics")
		cpuProf    = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf    = fs.String("memprofile", "", "write a pprof heap profile to this file")
		traceOut   = fs.String("trace", "", "write a Chrome trace-event file of the run (load in Perfetto / chrome://tracing)")
		metricsOut = fs.String("metrics", "", "write the run-metrics registry (counters/gauges/histograms) as JSON")
		timeout    = fs.Duration("timeout", 0, "abort generation after this duration (0 = no limit)")
		adaptN     = fs.Int("adapt-cycles", 0, "metric-adaptation cycles after generation (0 = off)")
		adaptMet   = fs.String("adapt-metric", "hessian", "metric source: hessian | a metric spec (uniform:h=… | bl:…)")
		adaptIso   = fs.Bool("adapt-iso", false, "adapt with the isotropic indicator loop (full regeneration per cycle) instead of the cavity-operator engine")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *worker {
		// Workers run the identical SPMD pipeline but produce no artifacts
		// of their own: the launcher owns the mesh, the stats, and every
		// observability output.
		if *join == "" {
			return fmt.Errorf("-worker requires -join <launcher address>")
		}
		*cpuProf, *memProf, *traceOut, *metricsOut, *writePoly = "", "", "", "", ""
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(stderr, "meshgen: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "meshgen: %v\n", err)
			}
		}()
	}

	cfg := core.DefaultConfig()
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		g, err := pslg.ReadPoly(f)
		f.Close()
		if err != nil {
			return err
		}
		cfg.CustomGraph = g
	} else {
		switch *geometry {
		case "naca0012":
			cfg.Geometry = airfoil.Single(airfoil.NACA0012, *nHalf, *farfield)
		case "30p30n":
			cfg.Geometry = airfoil.ThreeElement(*nHalf)
			cfg.Geometry.FarfieldChords = *farfield
		default:
			return fmt.Errorf("unknown geometry %q", *geometry)
		}
	}
	if *writePoly != "" {
		g := cfg.CustomGraph
		if g == nil {
			var err error
			g, err = cfg.Geometry.Graph()
			if err != nil {
				return err
			}
		}
		f, err := os.Create(*writePoly)
		if err != nil {
			return err
		}
		if err := g.WritePoly(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	cfg.BL.Growth = growth.Geometric{H0: *h0, Ratio: *ratio}
	cfg.BL.MaxLayers = *layersMax
	cfg.SurfaceH0 = *surfaceH
	cfg.Gradation = *gradation
	cfg.HMax = *hmax
	cfg.Ranks = *ranks
	cfg.KernelWorkers = *kernelW
	cfg.KernelShuffle = *kernelSh
	cfg.Audit = *auditRun
	switch *kernel {
	case "ruppert":
		cfg.InviscidKernel = core.KernelRuppert
	case "front":
		cfg.InviscidKernel = core.KernelAdvancingFront
	default:
		return fmt.Errorf("unknown kernel %q", *kernel)
	}

	var fabric *mpi.Cluster
	switch {
	case *worker:
		cluster, err := mpi.JoinTCP(ctx, *join)
		if err != nil {
			return fmt.Errorf("join %s: %w", *join, err)
		}
		defer cluster.Close()
		cfg.Fabric = cluster
		cfg.Ranks = cluster.Size()
		if _, err := core.GenerateContext(ctx, cfg); err != nil {
			return err
		}
		return finalizeTCP(ctx, cluster)
	case *transport == "tcp":
		cluster, reap, err := launchTCP(ctx, args, *listen, *ranks, *spawn, stderr)
		if err != nil {
			return err
		}
		defer reap()
		defer cluster.Close()
		cfg.Fabric = cluster
		fabric = cluster
	case *transport != "inproc":
		return fmt.Errorf("unknown transport %q", *transport)
	}

	var tracer *trace.Tracer
	if *traceOut != "" || *metricsOut != "" {
		tracer = trace.New(cfg.Ranks)
		cfg.Tracer = tracer
	}
	poolGets0, poolPuts0 := mpi.PoolCounters()

	res, err := core.GenerateContext(ctx, cfg)
	if err == nil && fabric != nil {
		err = finalizeTCP(ctx, fabric)
	}

	// Export the trace and metrics even when generation failed: the
	// partial record of an aborted run is usually the record being
	// debugged. The generation error still wins the exit status.
	if tracer != nil {
		g, p := mpi.PoolCounters()
		m := tracer.Metrics()
		m.Gauge("mpi.pool.gets", float64(g-poolGets0))
		m.Gauge("mpi.pool.puts", float64(p-poolPuts0))
		if g > poolGets0 {
			m.Gauge("mpi.pool.recycle_rate", float64(p-poolPuts0)/float64(g-poolGets0))
		}
		if werr := writeObservability(tracer, *traceOut, *metricsOut); werr != nil {
			if err == nil {
				err = werr
			} else {
				fmt.Fprintf(stderr, "meshgen: %v\n", werr)
			}
		}
	}
	if err != nil {
		return err
	}

	if *adaptN > 0 {
		if fabric != nil {
			return fmt.Errorf("-adapt-cycles requires -transport inproc")
		}
		cfg.Adapt = core.AdaptParams{Cycles: *adaptN, Metric: *adaptMet}
		adapted, err := runAdapt(cfg, res.Mesh, *adaptIso, tracer, stderr, *quiet)
		if err != nil {
			return err
		}
		res.Mesh = adapted
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "ascii":
		err = res.Mesh.WriteASCII(w)
	case "binary":
		err = res.Mesh.WriteBinary(w)
	case "vtk":
		err = res.Mesh.WriteVTK(w, nil)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}

	if !*quiet {
		st := res.Stats
		q := res.Mesh.Quality()
		fmt.Fprintf(stderr, "points               %d\n", res.Mesh.NumPoints())
		fmt.Fprintf(stderr, "triangles            %d (BL %d, transition %d, inviscid %d)\n",
			res.Mesh.NumTriangles(), st.BLTriangles, st.TransitionTris, st.InviscidTris)
		fmt.Fprintf(stderr, "boundary-layer pts   %d from %d surface points\n",
			st.BoundaryLayerPts, st.SurfacePoints)
		fmt.Fprintf(stderr, "max aspect ratio     %.1f\n", q.MaxAspectRatio)
		fmt.Fprintf(stderr, "tasks                %d across %d ranks (%d msgs, %d bytes)\n",
			len(st.Tasks), cfg.Ranks, st.Messages, st.BytesOnWire)
		fmt.Fprintf(stderr, "time                 total %v (BL %v, parallel %v)\n",
			st.Times.Total.Round(1e6), st.Times.Boundary.Round(1e6), st.Times.Parallel.Round(1e6))
		if st.Kernel.Workers > 1 {
			fmt.Fprintf(stderr, "kernel               %d workers: %d inserted in %d rounds, %d conflict retries, %d sequential\n",
				st.Kernel.Workers, st.Kernel.Inserted, st.Kernel.Rounds, st.Kernel.Conflicts, st.Kernel.Sequential)
		}
		if st.Steals.Requests > 0 || st.Steals.Gotten > 0 {
			fmt.Fprintf(stderr, "steals               %d of %d requests granted, %v total idle\n",
				st.Steals.Granted, st.Steals.Requests, st.Steals.Idle.Round(1e6))
		}
		if st.Audit != nil {
			checked := 0
			for _, c := range st.Audit.Checks {
				if !c.Skipped {
					checked++
				}
			}
			fmt.Fprintf(stderr, "audit                %d checks passed in %v\n",
				checked, st.Times.Audit.Round(1e6))
		}
	}
	return nil
}

// finalizeTCP synchronizes pipeline completion across the fabric's
// processes before any of them tears its connections down: without the
// barrier the launcher could close the cluster while a worker is still
// draining the last result broadcast, failing the worker with a link EOF.
// A process that errored out of generation skips the barrier and closes
// its cluster instead, which releases the others with ErrWorldClosed
// rather than hanging them. Only the barrier's own result matters: once
// it releases, every process has finished, and a world teardown caused by
// a peer closing immediately afterwards is the expected shutdown, not an
// error (RunCtx would otherwise report that race as the run's failure).
func finalizeTCP(ctx context.Context, cluster *mpi.Cluster) error {
	w := cluster.NewWorld()
	var berr error
	_ = w.RunCtx(ctx, func(c *mpi.Comm) error { berr = c.Barrier(); return nil })
	return berr
}

// writeObservability exports the tracer's Chrome trace-event file and/or
// run-metrics registry to the requested paths (either may be empty).
func writeObservability(tr *trace.Tracer, tracePath, metricsPath string) error {
	write := func(path string, emit func(w io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if tracePath != "" {
		if err := write(tracePath, tr.WriteTrace); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
	}
	if metricsPath != "" {
		if err := write(metricsPath, tr.Metrics().WriteMetrics); err != nil {
			return fmt.Errorf("write metrics: %w", err)
		}
	}
	return nil
}
