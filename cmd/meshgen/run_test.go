package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pamg2d/internal/audit"
	"pamg2d/internal/core"
	"pamg2d/internal/mesh"
	"pamg2d/internal/trace"
)

func fastArgs(extra ...string) []string {
	base := []string{
		"-n", "24", "-farfield", "6", "-ranks", "1",
		"-h0", "0.08", "-hmax", "2", "-bl-h0", "3e-3", "-bl-layers", "8",
	}
	return append(base, extra...)
}

func TestRunASCII(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), fastArgs(), &out, &errb); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("no mesh written")
	}
	if !strings.Contains(errb.String(), "triangles") {
		t.Errorf("stats missing: %q", errb.String())
	}
}

func TestRunQuietSuppressesStats(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), fastArgs("-q"), &out, &errb); err != nil {
		t.Fatal(err)
	}
	if errb.Len() != 0 {
		t.Errorf("quiet mode still wrote stats: %q", errb.String())
	}
}

func TestRunVTKAndBinary(t *testing.T) {
	for _, format := range []string{"vtk", "binary"} {
		var out, errb bytes.Buffer
		if err := run(context.Background(), fastArgs("-q", "-format", format), &out, &errb); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if out.Len() == 0 {
			t.Fatalf("%s: empty output", format)
		}
	}
}

func TestRunPolyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	poly := filepath.Join(dir, "g.poly")
	mesh1 := filepath.Join(dir, "m1.txt")
	var out, errb bytes.Buffer
	if err := run(context.Background(), fastArgs("-q", "-write-poly", poly, "-o", mesh1), &out, &errb); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(poly); err != nil {
		t.Fatal(err)
	}
	// Regenerate from the exported geometry.
	mesh2 := filepath.Join(dir, "m2.txt")
	if err := run(context.Background(), fastArgs("-q", "-input", poly, "-o", mesh2), &out, &errb); err != nil {
		t.Fatal(err)
	}
	s1, err := os.Stat(mesh1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := os.Stat(mesh2)
	if err != nil {
		t.Fatal(err)
	}
	// The same geometry should produce meshes of very similar size.
	ratio := float64(s2.Size()) / float64(s1.Size())
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("poly round trip produced divergent meshes: %d vs %d bytes", s1.Size(), s2.Size())
	}
}

// TestRunAudit: an audited generation passes on real output and reports
// the audit in the stats footer.
func TestRunAudit(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), fastArgs("-audit"), &out, &errb); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("no mesh written")
	}
	if !strings.Contains(errb.String(), "audit") {
		t.Errorf("stats missing the audit line: %q", errb.String())
	}
}

func TestRunFrontKernel(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), fastArgs("-q", "-kernel", "front"), &out, &errb); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("no mesh written")
	}
}

// TestRunTraceAndMetrics: -trace and -metrics write validating files, and
// the trace has one process track per rank plus the root pipeline track.
func TestRunTraceAndMetrics(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.json")
	var out, errb bytes.Buffer
	args := fastArgs("-q", "-ranks", "2", "-audit",
		"-trace", tracePath, "-metrics", metricsPath)
	if err := run(context.Background(), args, &out, &errb); err != nil {
		t.Fatal(err)
	}
	tf, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	events, err := trace.ValidateTrace(tf)
	if err != nil {
		t.Fatalf("trace file invalid: %v", err)
	}
	if events == 0 {
		t.Fatal("trace file has no events")
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tj struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			PID float64 `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tj); err != nil {
		t.Fatal(err)
	}
	pids := map[float64]bool{}
	for _, e := range tj.TraceEvents {
		if e.Ph == "X" || e.Ph == "i" {
			pids[e.PID] = true
		}
	}
	for pid := 0; pid <= 2; pid++ { // root track + one per rank at -ranks 2
		if !pids[float64(pid)] {
			t.Errorf("no events on process track %d", pid)
		}
	}

	mf, err := os.Open(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	if err := trace.ValidateMetrics(mf); err != nil {
		t.Fatalf("metrics file invalid: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-geometry", "bogus"}, &out, &errb); err == nil {
		t.Error("bogus geometry must fail")
	}
	if err := run(context.Background(), fastArgs("-format", "bogus"), &out, &errb); err == nil {
		t.Error("bogus format must fail")
	}
	if err := run(context.Background(), fastArgs("-kernel", "bogus"), &out, &errb); err == nil {
		t.Error("bogus kernel must fail")
	}
	if err := run(context.Background(), []string{"-input", "/nonexistent/file.poly"}, &out, &errb); err == nil {
		t.Error("missing input file must fail")
	}
	if err := run(context.Background(), []string{"-bad-flag"}, &out, &errb); err == nil {
		t.Error("unknown flag must fail")
	}
}

// A -timeout too short for any real work must abort the pipeline cleanly:
// no mesh output, and the error names the interrupted stage.
func TestRunTimeout(t *testing.T) {
	var out, errb bytes.Buffer
	err := run(context.Background(), fastArgs("-q", "-timeout", "1ns"), &out, &errb)
	if err == nil {
		t.Fatal("a 1ns timeout must abort the run")
	}
	var pe *core.PhaseError
	if !errors.As(err, &pe) {
		t.Fatalf("timeout error is %T (%v), want *core.PhaseError", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("timeout error does not wrap context.DeadlineExceeded: %v", err)
	}
	if out.Len() != 0 {
		t.Errorf("aborted run still wrote %d bytes of mesh", out.Len())
	}
}

// An already-canceled parent context (the Ctrl-C path) aborts the same way.
func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb bytes.Buffer
	err := run(ctx, fastArgs("-q"), &out, &errb)
	if err == nil {
		t.Fatal("a canceled context must abort the run")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not wrap context.Canceled: %v", err)
	}
}

func TestRunAdaptCycles(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "adapted.txt")
	var stdout, errb bytes.Buffer
	err := run(context.Background(),
		fastArgs("-adapt-cycles", "1", "-adapt-metric", "uniform:h=0.3", "-o", out),
		&stdout, &errb)
	if err != nil {
		t.Fatalf("adapt run: %v\n%s", err, errb.String())
	}
	if !strings.Contains(errb.String(), "adapt 0") {
		t.Errorf("stats missing adapt cycle line:\n%s", errb.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := mesh.ReadASCII(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep := audit.Run(&audit.Snapshot{Mesh: m}, audit.Adapted()); !rep.Ok() {
		t.Errorf("adapted mesh fails audit: %+v", rep.Violations)
	}
}

func TestRunAdaptIso(t *testing.T) {
	var stdout, errb bytes.Buffer
	err := run(context.Background(),
		fastArgs("-adapt-cycles", "1", "-adapt-iso"),
		&stdout, &errb)
	if err != nil {
		t.Fatalf("adapt-iso run: %v\n%s", err, errb.String())
	}
	if !strings.Contains(errb.String(), "adapt-iso 0") || !strings.Contains(errb.String(), "adapt-iso 1") {
		t.Errorf("stats missing adapt-iso cycle lines:\n%s", errb.String())
	}
	if stdout.Len() == 0 {
		t.Fatal("no mesh written")
	}
}
