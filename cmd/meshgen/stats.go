package main

// Per-process run-summary aggregation for multi-process runs. Each worker
// ships a compact numeric summary of its own Stats to the launcher over
// the telemetry channel (a []float64 payload, wire codec CodecFloats)
// just before the finalize barrier; FIFO frame delivery guarantees the
// launcher holds every survivor's summary once the barrier releases. The
// launcher merges them with its own rank-0 summary into the final report,
// so the per-rank tasks/wire/steal/kernel numbers cover the whole process
// tree instead of just rank 0.

import (
	"fmt"
	"io"
	"sort"
	"time"

	"pamg2d/internal/core"
)

// statsWireVersion stamps the summary vector so a launcher never
// misparses a foreign []float64 telemetry payload (or a future layout).
const statsWireVersion = 1

// rankSummary is one process's run summary, as shipped on the wire.
type rankSummary struct {
	rank         int
	tasks        int
	busySeconds  float64
	msgs         int64
	bytes        int64
	stealReq     int
	stealGranted int
	stealGotten  int
	idleSeconds  float64
	kernInserted int
	kernRounds   int
	kernConflict int
}

// summarizeRankStats reduces one process's Stats to its local summary.
// Task measures are recorded only on the executing process, so counting
// the non-zero entries yields the tasks this rank ran.
func summarizeRankStats(rank int, st *core.Stats) rankSummary {
	rs := rankSummary{
		rank:         rank,
		msgs:         st.Messages,
		bytes:        st.BytesOnWire,
		stealReq:     st.Steals.Requests,
		stealGranted: st.Steals.Granted,
		stealGotten:  st.Steals.Gotten,
		idleSeconds:  st.Steals.Idle.Seconds(),
		kernInserted: st.Kernel.Inserted,
		kernRounds:   st.Kernel.Rounds,
		kernConflict: st.Kernel.Conflicts,
	}
	for _, m := range st.Tasks {
		if m.Seconds > 0 || m.Triangles > 0 {
			rs.tasks++
			rs.busySeconds += m.Seconds
		}
	}
	return rs
}

// encodeRankStats lays the summary out as the telemetry payload vector.
func encodeRankStats(rank int, st *core.Stats) []float64 {
	rs := summarizeRankStats(rank, st)
	return []float64{
		statsWireVersion,
		float64(rs.rank),
		float64(rs.tasks),
		rs.busySeconds,
		float64(rs.msgs),
		float64(rs.bytes),
		float64(rs.stealReq),
		float64(rs.stealGranted),
		float64(rs.stealGotten),
		rs.idleSeconds,
		float64(rs.kernInserted),
		float64(rs.kernRounds),
		float64(rs.kernConflict),
	}
}

// decodeRankStats parses a telemetry vector back into a summary; ok is
// false for payloads that are not a version-1 summary.
func decodeRankStats(v []float64) (rankSummary, bool) {
	if len(v) != 13 || v[0] != statsWireVersion {
		return rankSummary{}, false
	}
	return rankSummary{
		rank:         int(v[1]),
		tasks:        int(v[2]),
		busySeconds:  v[3],
		msgs:         int64(v[4]),
		bytes:        int64(v[5]),
		stealReq:     int(v[6]),
		stealGranted: int(v[7]),
		stealGotten:  int(v[8]),
		idleSeconds:  v[9],
		kernInserted: int(v[10]),
		kernRounds:   int(v[11]),
		kernConflict: int(v[12]),
	}, true
}

// printRankStats writes the per-rank section of the final report: the
// launcher's own summary merged with every worker summary that arrived,
// in rank order. Ranks that died mid-run simply have no line — their
// summary never shipped.
func printRankStats(w io.Writer, own rankSummary, workers []rankSummary) {
	all := append([]rankSummary{own}, workers...)
	sort.Slice(all, func(i, j int) bool { return all[i].rank < all[j].rank })
	for _, rs := range all {
		line := fmt.Sprintf("rank %-2d              %d tasks, %.2fs busy, %d msgs, %d B wire, steals %d got / %d granted",
			rs.rank, rs.tasks, rs.busySeconds, rs.msgs, rs.bytes, rs.stealGotten, rs.stealGranted)
		if rs.kernRounds > 0 {
			line += fmt.Sprintf(", kernel %d inserted", rs.kernInserted)
		}
		fmt.Fprintln(w, line)
	}
}

// printResilience writes the degradation section: which ranks died, when
// and why, and what the recovery cost.
func printResilience(w io.Writer, st *core.Stats) {
	r := st.Resilience
	fmt.Fprintf(w, "resilience           %d rank(s) lost, %d task(s) re-queued, recovery %v\n",
		r.RanksLost, r.TasksRequeued, r.RecoveryWall.Round(time.Millisecond))
	for _, d := range r.Deaths {
		fmt.Fprintf(w, "  rank %-2d died       %s: %s\n",
			d.Rank, d.At.Format("15:04:05.000"), d.Cause)
	}
}

// reportDeaths prints the operational warning for a degraded run; it goes
// to stderr even in quiet mode — a silently shrunken fabric is the one
// thing an operator always wants to know about. It reads the deaths the
// run itself recorded, not the fabric's current view: after the finalize
// barrier the surviving workers exit and their link EOFs are declared as
// deaths too, which would misreport a clean shutdown.
func reportDeaths(w io.Writer, st *core.Stats) {
	for _, d := range st.Resilience.Deaths {
		fmt.Fprintf(w, "meshgen: rank %d died at %s (%s); completed on the survivors (%d task(s) re-queued)\n",
			d.Rank, d.At.Format("15:04:05.000"), d.Cause, st.Resilience.TasksRequeued)
	}
}
