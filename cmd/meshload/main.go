// Command meshload drives a running meshd with concurrent mesh requests
// and reports throughput and latency percentiles, making "heavy traffic"
// a measurable quantity alongside the BENCH_*.json wall/alloc trajectory
// (cmd/benchreport ingests the summary with -load).
//
//	meshd -listen 127.0.0.1:8080 &
//	meshload -url http://127.0.0.1:8080 -n 32 -concurrency 4 -requests 40
//
// With -once it sends a single request and streams the mesh body to
// stdout (exit 1 on any non-200), which is how the CI smoke pipes a
// served mesh through `meshcheck -strict`. With -metrics it also writes
// the client-side view — request-latency histogram, per-status,
// cache-hit, and degraded-completion counters — as a standard
// pamg2d-metrics/1 registry, the same schema meshd's /metrics exports.
// Responses carrying an X-Degraded header (the serving run lost ranks
// mid-generation and completed on the survivors) count as successes but
// are tallied separately in the summary; -report-degraded additionally
// warns about them on stderr.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pamg2d/internal/trace"
)

// summary is the machine-readable result; field names are the contract
// with benchreport's -load ingestion.
type summary struct {
	URL           string  `json:"url"`
	Concurrency   int     `json:"concurrency"`
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	CacheHits     int     `json:"cache_hits"`
	Degraded      int     `json:"degraded"`
	Seconds       float64 `json:"seconds"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P90Ms         float64 `json:"p90_ms"`
	P99Ms         float64 `json:"p99_ms"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "meshload: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("meshload", flag.ContinueOnError)
	var (
		url         = fs.String("url", "http://127.0.0.1:8080", "meshd base URL")
		geometry    = fs.String("geometry", "naca0012", "request geometry: naca0012 | 30p30n")
		n           = fs.Int("n", 32, "surface resolution (half-points per element)")
		polyPath    = fs.String("poly", "", "send this .poly file as the geometry instead of -geometry")
		audit       = fs.Bool("audit", false, "request server-side invariant audit")
		distinct    = fs.Int("distinct", 1, "cycle this many distinct geometries (n, n+4, ...) to control the cache-hit mix")
		concurrency = fs.Int("concurrency", 4, "concurrent client connections")
		requests    = fs.Int("requests", 20, "total requests to send (ignored with -duration)")
		duration    = fs.Duration("duration", 0, "send for this long instead of a fixed count")
		timeout     = fs.Duration("timeout", 2*time.Minute, "per-request client timeout")
		once        = fs.Bool("once", false, "send one request, stream the mesh body to stdout")
		reportDeg   = fs.Bool("report-degraded", false, "warn on stderr when completions were served degraded (X-Degraded: the run lost ranks and finished on the survivors)")
		save        = fs.String("save", "", "also write the JSON summary to this file")
		metricsOut  = fs.String("metrics", "", "write a client-side metrics registry (latency histogram, status counters) to this JSON file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var poly string
	if *polyPath != "" {
		b, err := os.ReadFile(*polyPath)
		if err != nil {
			return err
		}
		poly = string(b)
	}
	body := func(i int) ([]byte, error) {
		req := map[string]any{
			"params": map[string]any{"audit": *audit},
		}
		if poly != "" {
			req["poly"] = poly
		} else {
			req["geometry"] = *geometry
			req["n"] = *n + 4*(i%max(1, *distinct))
		}
		return json.Marshal(req)
	}
	client := &http.Client{Timeout: *timeout}

	if *once {
		b, err := body(0)
		if err != nil {
			return err
		}
		resp, err := client.Post(*url+"/mesh", "application/json", bytes.NewReader(b))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
		}
		if d := resp.Header.Get("X-Degraded"); d != "" && *reportDeg {
			fmt.Fprintf(os.Stderr, "meshload: mesh served degraded (%s rank(s) lost mid-run)\n", d)
		}
		_, err = io.Copy(os.Stdout, resp.Body)
		return err
	}

	// The client-side registry mirrors what the server's /metrics sees from
	// its end: the same schema the engine exports, so benchreport and the
	// validators consume both without special cases. Always populated; only
	// written with -metrics.
	reg := trace.NewMetrics()

	var (
		mu        sync.Mutex
		latencies []time.Duration
		errs      atomic.Int64
		hits      atomic.Int64
		degraded  atomic.Int64
		next      atomic.Int64
	)
	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	shouldStop := func(i int64) bool {
		if !deadline.IsZero() {
			return time.Now().After(deadline)
		}
		return i >= int64(*requests)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if shouldStop(i) {
					return
				}
				b, err := body(int(i))
				if err != nil {
					errs.Add(1)
					reg.Count("load.errors", 1)
					continue
				}
				reg.Count("load.requests", 1)
				t0 := time.Now()
				resp, err := client.Post(*url+"/mesh", "application/json", bytes.NewReader(b))
				if err != nil {
					errs.Add(1)
					reg.Count("load.errors", 1)
					reg.Count("load.transport_errors", 1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				dt := time.Since(t0)
				reg.Count(fmt.Sprintf("load.status.%d", resp.StatusCode), 1)
				reg.Observe("load.request.seconds", dt.Seconds())
				if resp.StatusCode != http.StatusOK {
					errs.Add(1)
					reg.Count("load.errors", 1)
					continue
				}
				if resp.Header.Get("X-Cache") == "hit" {
					hits.Add(1)
					reg.Count("load.cache_hits", 1)
				}
				// A 200 carrying X-Degraded completed on a shrunken fabric:
				// a success for throughput purposes, but tallied apart so a
				// load run can tell how many of its meshes came from
				// degraded runs.
				if resp.Header.Get("X-Degraded") != "" {
					degraded.Add(1)
					reg.Count("load.degraded", 1)
				}
				mu.Lock()
				latencies = append(latencies, dt)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return float64(latencies[i]) / float64(time.Millisecond)
	}
	s := summary{
		URL:         *url,
		Concurrency: *concurrency,
		Requests:    len(latencies) + int(errs.Load()),
		Errors:      int(errs.Load()),
		CacheHits:   int(hits.Load()),
		Degraded:    int(degraded.Load()),
		Seconds:     elapsed.Seconds(),
		P50Ms:       pct(0.50),
		P90Ms:       pct(0.90),
		P99Ms:       pct(0.99),
	}
	if s.Seconds > 0 {
		s.ThroughputRPS = float64(len(latencies)) / s.Seconds
	}
	out, err := json.MarshalIndent(&s, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if _, err := os.Stdout.Write(out); err != nil {
		return err
	}
	if *save != "" {
		if err := os.WriteFile(*save, out, 0o644); err != nil {
			return err
		}
	}
	if *metricsOut != "" {
		reg.Gauge("load.concurrency", float64(*concurrency))
		f, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		if err := reg.WriteMetrics(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *reportDeg && s.Degraded > 0 {
		fmt.Fprintf(os.Stderr, "meshload: %d of %d completions served degraded (the run lost ranks and finished on the survivors)\n",
			s.Degraded, s.Requests)
	}
	if s.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed", s.Errors, s.Requests)
	}
	return nil
}
