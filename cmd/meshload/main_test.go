package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"pamg2d/internal/trace"
)

// fakeMeshd answers /mesh like the real service: 200 with an X-Cache
// header (hit on every repeat of a body it has seen), or a canned error
// status when the request's n exceeds breakAbove.
func fakeMeshd(breakAbove int) http.Handler {
	var seen atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			N int `json:"n"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if breakAbove > 0 && req.N > breakAbove {
			http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
			return
		}
		if seen.Add(1) > 1 {
			w.Header().Set("X-Cache", "hit")
		} else {
			w.Header().Set("X-Cache", "miss")
		}
		w.Write([]byte("mesh bytes\n"))
	})
}

// TestRunWritesMetricsRegistry: a load run with -metrics leaves a valid
// registry document holding the request-latency histogram, the
// per-status counters, and the cache-hit count.
func TestRunWritesMetricsRegistry(t *testing.T) {
	ts := httptest.NewServer(fakeMeshd(0))
	defer ts.Close()
	out := filepath.Join(t.TempDir(), "load.metrics.json")

	err := run([]string{
		"-url", ts.URL, "-n", "16", "-requests", "6", "-concurrency", "2",
		"-metrics", out,
	})
	if err != nil {
		t.Fatalf("load run: %v", err)
	}

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.ValidateMetrics(f); err != nil {
		t.Fatalf("metrics document invalid: %v", err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc trace.MetricsJSON
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Counters["load.requests"] != 6 {
		t.Errorf("load.requests = %d, want 6", doc.Counters["load.requests"])
	}
	if doc.Counters["load.status.200"] != 6 {
		t.Errorf("load.status.200 = %d, want 6", doc.Counters["load.status.200"])
	}
	if doc.Counters["load.cache_hits"] != 5 {
		t.Errorf("load.cache_hits = %d, want 5", doc.Counters["load.cache_hits"])
	}
	if h, ok := doc.Histograms["load.request.seconds"]; !ok || h.Count != 6 {
		t.Errorf("load.request.seconds histogram = %+v, want 6 observations", h)
	}
}

// TestRunCountsErrorStatuses: non-200 responses land in load.errors and
// the per-status counter, the run reports failure, and the metrics file
// is still written before the error return.
func TestRunCountsErrorStatuses(t *testing.T) {
	ts := httptest.NewServer(fakeMeshd(1)) // every request's n exceeds 1
	defer ts.Close()
	out := filepath.Join(t.TempDir(), "load.metrics.json")

	err := run([]string{
		"-url", ts.URL, "-n", "16", "-requests", "3", "-concurrency", "1",
		"-metrics", out,
	})
	if err == nil {
		t.Fatal("run with failing requests reported success")
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("metrics not written on failed run: %v", err)
	}
	var doc trace.MetricsJSON
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Counters["load.errors"] != 3 {
		t.Errorf("load.errors = %d, want 3", doc.Counters["load.errors"])
	}
	if doc.Counters["load.status.500"] != 3 {
		t.Errorf("load.status.500 = %d, want 3", doc.Counters["load.status.500"])
	}
}

// TestRunCountsDegradedResponses: 200s carrying an X-Degraded header (the
// serving run lost ranks and completed on the survivors) stay successes
// but are tallied in the summary's degraded field and the load.degraded
// counter.
func TestRunCountsDegradedResponses(t *testing.T) {
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Every other response pretends its run lost a rank.
		if served.Add(1)%2 == 0 {
			w.Header().Set("X-Degraded", "1")
		}
		w.Header().Set("X-Cache", "miss")
		w.Write([]byte("mesh bytes\n"))
	}))
	defer ts.Close()
	dir := t.TempDir()
	save := filepath.Join(dir, "load.json")
	out := filepath.Join(dir, "load.metrics.json")

	err := run([]string{
		"-url", ts.URL, "-n", "16", "-requests", "6", "-concurrency", "1",
		"-report-degraded", "-save", save, "-metrics", out,
	})
	if err != nil {
		t.Fatalf("load run: %v", err)
	}

	raw, err := os.ReadFile(save)
	if err != nil {
		t.Fatal(err)
	}
	var s summary
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatal(err)
	}
	if s.Errors != 0 {
		t.Errorf("degraded responses counted as errors: %d", s.Errors)
	}
	if s.Degraded != 3 {
		t.Errorf("summary degraded = %d, want 3", s.Degraded)
	}
	mraw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc trace.MetricsJSON
	if err := json.Unmarshal(mraw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Counters["load.degraded"] != 3 {
		t.Errorf("load.degraded = %d, want 3", doc.Counters["load.degraded"])
	}
}
