// Command meshstats reads a mesh produced by meshgen (Triangle-format
// ASCII or pamg2d binary) and prints a structural and quality report:
// audits, element counts, area, the angle histogram, anisotropy, and the
// boundary-edge count. Use it to inspect meshes before handing them to a
// flow solver.
package main

import (
	"log"
	"os"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("meshstats: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}
