package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pamg2d/internal/mesh"
	"pamg2d/internal/metric"
)

// run executes the meshstats CLI against explicit streams so it is
// testable.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("meshstats", flag.ContinueOnError)
	fs.SetOutput(stdout)
	format := fs.String("format", "auto", "input format: ascii | binary | auto")
	metricSpec := fs.String("metric", "", "also report metric-space quality under this metric spec (uniform:h=… | bl:…)")
	band := fs.Float64("band", 0, "metric-length acceptance band upper bound (0 = sqrt 2)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: meshstats [-format ascii|binary] mesh-file")
	}
	path := fs.Arg(0)

	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var m *mesh.Mesh
	switch *format {
	case "ascii":
		m, err = mesh.ReadASCII(f)
	case "binary":
		m, err = mesh.ReadBinary(f)
	case "auto":
		// The binary magic 0x504d3244 is stored little-endian, so the file
		// opens with the bytes "D2MP"; ASCII opens with a digit.
		var head [4]byte
		if _, err := f.Read(head[:]); err != nil {
			return err
		}
		if _, err := f.Seek(0, 0); err != nil {
			return err
		}
		if head == [4]byte{0x44, 0x32, 0x4d, 0x50} {
			m, err = mesh.ReadBinary(f)
		} else {
			m, err = mesh.ReadASCII(f)
		}
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "file          %s\n", path)
	fmt.Fprintf(stdout, "points        %d\n", m.NumPoints())
	fmt.Fprintf(stdout, "triangles     %d\n", m.NumTriangles())
	fmt.Fprintf(stdout, "area          %.6g\n", m.Area())
	fmt.Fprintf(stdout, "boundary      %d edges\n", len(m.BoundaryEdges()))
	if err := m.Audit(); err != nil {
		fmt.Fprintf(stdout, "audit         FAILED: %v\n", err)
		return fmt.Errorf("mesh failed audit: %w", err)
	}
	fmt.Fprintf(stdout, "audit         ok (CCW, conforming, no overlaps)\n")

	q := m.Quality()
	fmt.Fprintf(stdout, "min angle     %.2f deg\n", q.MinAngleDeg)
	fmt.Fprintf(stdout, "max angle     %.2f deg\n", q.MaxAngleDeg)
	fmt.Fprintf(stdout, "worst ratio   %.2f (circumradius / shortest edge)\n", q.MaxRadiusEdge)
	fmt.Fprintf(stdout, "max aspect    %.1f : 1\n", q.MaxAspectRatio)
	fmt.Fprintf(stdout, "areas         min %.3g  mean %.3g  max %.3g\n", q.MinArea, q.MeanArea, q.MaxArea)
	fmt.Fprintln(stdout, "\nminimum-angle histogram (10-degree buckets):")
	maxCount := 0
	for _, c := range q.AngleHistogram {
		if c > maxCount {
			maxCount = c
		}
	}
	for b, c := range q.AngleHistogram {
		if c == 0 {
			continue
		}
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", 1+c*40/maxCount)
		}
		fmt.Fprintf(stdout, "  %3d-%3d deg %8d %s\n", b*10, b*10+10, c, bar)
	}

	if *metricSpec != "" {
		fn, err := metric.ParseSpec(*metricSpec)
		if err != nil {
			return err
		}
		st, err := metric.FieldStats(m, metric.Analytic(m, fn), *band)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nmetric        %s\n", *metricSpec)
		fmt.Fprintf(stdout, "metric edges  %d\n", st.Edges)
		fmt.Fprintf(stdout, "metric len    min %.3g  mean %.3g  max %.3g\n", st.MinLen, st.MeanLen, st.MaxLen)
		fmt.Fprintf(stdout, "in band       %.1f%% of edges\n", 100*st.InBand)
		fmt.Fprintf(stdout, "anisotropy    min %.2f  mean %.2f  max %.2f\n", st.MinAspect, st.MeanAspect, st.MaxAspect)
		fmt.Fprintln(stdout, "\nanisotropy-ratio histogram (power-of-two buckets):")
		maxCount = 0
		for _, c := range st.AspectHist {
			if c > maxCount {
				maxCount = c
			}
		}
		for b, c := range st.AspectHist {
			if c == 0 {
				continue
			}
			bar := ""
			if maxCount > 0 {
				bar = strings.Repeat("#", 1+c*40/maxCount)
			}
			lo := 1 << b
			if b == len(st.AspectHist)-1 {
				fmt.Fprintf(stdout, "  %4d+      %8d %s\n", lo, c, bar)
			} else {
				fmt.Fprintf(stdout, "  %4d-%-4d  %8d %s\n", lo, lo*2, c, bar)
			}
		}
	}
	return nil
}
