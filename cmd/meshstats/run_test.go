package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pamg2d/internal/geom"
	"pamg2d/internal/mesh"
)

func sampleMesh() *mesh.Mesh {
	b := mesh.NewBuilder()
	b.AddTriangle(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1))
	b.AddTriangle(geom.Pt(0, 0), geom.Pt(1, 1), geom.Pt(0, 1))
	return b.Mesh()
}

func writeSample(t *testing.T, binary bool) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.dat")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m := sampleMesh()
	if binary {
		err = m.WriteBinary(f)
	} else {
		err = m.WriteASCII(f)
	}
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStatsASCIIAuto(t *testing.T) {
	path := writeSample(t, false)
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"triangles     2", "audit         ok", "min angle     45.00", "40- 50 deg"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestStatsBinaryAuto(t *testing.T) {
	path := writeSample(t, true)
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "triangles     2") {
		t.Errorf("binary auto-detect failed:\n%s", out.String())
	}
}

func TestStatsExplicitFormats(t *testing.T) {
	ascii := writeSample(t, false)
	bin := writeSample(t, true)
	var out bytes.Buffer
	if err := run([]string{"-format", "ascii", ascii}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-format", "binary", bin}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-format", "binary", ascii}, &out); err == nil {
		t.Error("reading ASCII as binary must fail")
	}
}

func TestStatsErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing file argument must fail")
	}
	if err := run([]string{"/nonexistent"}, &out); err == nil {
		t.Error("missing file must fail")
	}
	if err := run([]string{"-format", "bogus", writeSample(t, false)}, &out); err == nil {
		t.Error("bogus format must fail")
	}
}

func TestStatsFailedAudit(t *testing.T) {
	// Write a mesh with a CW triangle directly.
	m := &mesh.Mesh{
		Points:    []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)},
		Triangles: [][3]int32{{0, 2, 1}},
	}
	path := filepath.Join(t.TempDir(), "bad.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteASCII(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out bytes.Buffer
	if err := run([]string{path}, &out); err == nil {
		t.Error("failed audit must surface as an error")
	}
	if !strings.Contains(out.String(), "FAILED") {
		t.Error("report must mark the failed audit")
	}
}

func TestStatsMetricSection(t *testing.T) {
	path := writeSample(t, false)
	var out bytes.Buffer
	if err := run([]string{"-metric", "uniform:h=0.5", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"metric        uniform:h=0.5", "metric edges  5", "in band", "anisotropy"} {
		if !strings.Contains(s, want) {
			t.Errorf("metric section missing %q:\n%s", want, s)
		}
	}
	// The unit square under h=0.5 has edges of metric length 2 and 2*sqrt2:
	// none in the quasi-unit band.
	if !strings.Contains(s, "in band       0.0%") {
		t.Errorf("expected no edges in band:\n%s", s)
	}
	if err := run([]string{"-metric", "bogus:spec", path}, &out); err == nil {
		t.Error("bogus metric spec must fail")
	}
}
