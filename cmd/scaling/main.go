// Command scaling reproduces Figures 11 and 12: the strong-scaling
// speedup and efficiency of the parallel mesh generator for a fixed mesh
// size. It first runs the real pipeline once to measure every subdomain
// task's cost on this machine (the calibration), then replays the
// schedule through the discrete-event performance model at each rank
// count, printing the speedup (Figure 11) and efficiency (Figure 12)
// series.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"pamg2d/internal/airfoil"
	"pamg2d/internal/core"
	"pamg2d/internal/growth"
	"pamg2d/internal/perfmodel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scaling: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the scaling study with explicit streams for testability.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("scaling", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		nHalf    = fs.Int("n", 64, "surface resolution")
		subPer   = fs.Int("sub", 1024, "decoupled subdomains at calibration")
		maxRanks = fs.Int("max-ranks", 256, "largest simulated rank count")
		h0       = fs.Float64("h0", 0.008, "surface edge length (smaller = bigger mesh)")
		hmax     = fs.Float64("hmax", 0.16, "far-field edge length cap")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := core.DefaultConfig()
	cfg.Geometry = airfoil.Single(airfoil.NACA0012, *nHalf, 20)
	cfg.BL.Growth = growth.Geometric{H0: 5e-4, Ratio: 1.25}
	cfg.BL.MaxLayers = 25
	cfg.SurfaceH0 = *h0
	cfg.HMax = *hmax
	cfg.NearBodyMargin = 0.08
	cfg.Ranks = 1 // calibration on one rank: clean per-task times
	cfg.SubdomainsPerRank = *subPer
	cfg.TransitionSectors = 32

	fmt.Fprintln(stdout, "calibration run (measuring per-subdomain costs)...")
	res, err := core.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "fixed mesh size: %d triangles across %d tasks\n\n",
		res.Stats.TotalTriangles, len(res.Stats.Tasks))

	var tasks []perfmodel.Task
	for _, tm := range res.Stats.Tasks {
		tasks = append(tasks, perfmodel.Task{
			Cost:          tm.Seconds,
			Bytes:         tm.Bytes,
			BoundaryLayer: tm.BoundaryLayer,
		})
	}
	// The sequential fraction: PSLG validation, the decomposition tree,
	// and a slice of the final merge.
	seq := res.Stats.Times.Validate.Seconds() +
		perfmodel.DecompositionOverhead(res.Stats.BoundaryLayerPts, *maxRanks, 2e-8, perfmodel.FDRInfiniband()) +
		0.05*res.Stats.Times.Merge.Seconds()

	var counts []int
	for p := 1; p <= *maxRanks; p *= 2 {
		counts = append(counts, p)
	}
	points := perfmodel.StrongScaling(tasks, seq, perfmodel.FDRInfiniband(), counts)

	fmt.Fprintln(stdout, "Figure 11/12: strong scalability (fixed mesh size)")
	fmt.Fprint(stdout, perfmodel.FormatTable(points))

	for _, p := range points {
		if p.Ranks == 128 || p.Ranks == 256 {
			fmt.Fprintf(stdout, "paper reference at %3d ranks: speedup ~%d, efficiency ~%d%%\n",
				p.Ranks, map[int]int{128: 102, 256: 180}[p.Ranks],
				map[int]int{128: 80, 256: 70}[p.Ranks])
		}
	}
	return nil
}
