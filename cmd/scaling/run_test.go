package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestScalingRunSmall(t *testing.T) {
	var out bytes.Buffer
	// A tiny calibration so the test stays fast; the study still prints
	// the full rank series.
	err := run([]string{"-n", "24", "-sub", "16", "-max-ranks", "16", "-h0", "0.08", "-hmax", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"calibration run", "speedup", "efficiency", "     16 "} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestScalingBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag must fail")
	}
}
