// Package pamg2d is a parallel two-dimensional unstructured anisotropic
// Delaunay mesh generator for aerospace applications, reproducing Pardue &
// Chernikov (ICPP 2016) from first principles in pure Go.
//
// The library lives under internal/: the push-button pipeline is
// internal/core, the sequential meshing kernel internal/delaunay, the
// anisotropic boundary-layer generator internal/blayer, the
// projection-based parallel Delaunay decomposition internal/project, the
// graded Delaunay decoupling internal/decouple, and the simulated
// message-passing runtime internal/mpi with the work-stealing balancer
// internal/loadbal. The benchmarks in bench_test.go regenerate every
// figure of the paper's evaluation; see DESIGN.md for the experiment
// index and EXPERIMENTS.md for measured results.
package pamg2d
