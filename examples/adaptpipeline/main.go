// Adaptpipeline: the development pipeline of the paper's Figure 1 —
// generate a mesh, solve the PDE, analyze the error, refine, repeat. The
// paper's introduction argues a well-suited initial mesh makes this loop
// converge in fewer trips; this example runs the loop twice, once starting
// from the anisotropic pipeline mesh and once from a deliberately crude
// initial sizing, and prints how the error estimate evolves in each case.
package main

import (
	"fmt"
	"log"

	"pamg2d/internal/adapt"
	"pamg2d/internal/airfoil"
	"pamg2d/internal/blayer"
	"pamg2d/internal/core"
	"pamg2d/internal/geom"
	"pamg2d/internal/growth"
	"pamg2d/internal/mesh"
	"pamg2d/internal/sizing"
	"pamg2d/internal/solver"
)

func main() {
	log.SetFlags(0)

	base := core.DefaultConfig()
	base.Geometry = airfoil.Single(airfoil.NACA0012, 32, 6)
	base.BL = blayer.Params{
		Growth:         growth.Geometric{H0: 2e-3, Ratio: 1.3},
		MaxLayers:      10,
		MaxAngleDeg:    25,
		CuspAngleDeg:   60,
		FanSpacingDeg:  20,
		FanCurving:     0.5,
		IsotropyFactor: 1.0,
		TrimFactor:     1.0,
	}
	base.Gradation = 0.35
	base.HMax = 2
	base.Ranks = 2
	base.SubdomainsPerRank = 2

	g, err := base.Geometry.Graph()
	if err != nil {
		log.Fatal(err)
	}
	surf := sizing.NewGraded(g.Surfaces[0].Points, 1, 0, 0)
	bc := solver.AirfoilBC(func(p geom.Point) bool { return surf.Distance(p) < 0.1 })
	problem := func(m *mesh.Mesh) solver.Problem {
		return solver.Problem{Mesh: m, Diffusivity: 0.05, Velocity: geom.V(1, 0), Boundary: bc}
	}
	opt := adapt.LoopOptions{
		Steps:  3,
		Solver: solver.Options{Tol: 1e-8, MaxIters: 200000, Method: solver.GaussSeidel},
	}

	run := func(name string, cfg core.Config) {
		steps, err := adapt.Loop(cfg, problem, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s:\n", name)
		fmt.Printf("  %5s %10s %12s %10s\n", "trip", "triangles", "error est.", "solver its")
		for i, st := range steps {
			fmt.Printf("  %5d %10d %12.4f %10d\n", i, st.Triangles, st.TotalError, st.Iterations)
		}
	}

	// Well-suited initial mesh: fine near the body (the paper's premise).
	good := base
	good.SurfaceH0 = 0.06
	run("well-suited initial mesh (fine near the body)", good)

	// Ill-suited initial mesh: coarse everywhere, so the loop has to
	// discover the near-body resolution through refinement trips.
	bad := base
	bad.SurfaceH0 = 0.3
	run("ill-suited initial mesh (uniformly coarse)", bad)

	fmt.Println("\nthe well-suited start reaches a lower error estimate in the same")
	fmt.Println("number of trips — Figure 1's argument for investing in the initial mesh.")
}
