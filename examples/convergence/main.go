// Convergence: the Figure 16 experiment as a library example. The same
// model problem is solved on the anisotropic pipeline mesh and on an
// isotropic mesh built from the same geometry and sizing; the anisotropic
// mesh carries far fewer elements and converges in fewer iterations.
package main

import (
	"fmt"
	"log"

	"pamg2d/internal/airfoil"
	"pamg2d/internal/blayer"
	"pamg2d/internal/core"
	"pamg2d/internal/geom"
	"pamg2d/internal/growth"
	"pamg2d/internal/sizing"
	"pamg2d/internal/solver"
)

func main() {
	log.SetFlags(0)

	cfg := core.DefaultConfig()
	cfg.Geometry = airfoil.Single(airfoil.NACA0012, 40, 8)
	cfg.BL = blayer.DefaultParams()
	cfg.BL.Growth = growth.Geometric{H0: 1.5e-3, Ratio: 1.3}
	cfg.BL.MaxLayers = 15
	cfg.SurfaceH0 = 0.05
	cfg.Gradation = 0.3
	cfg.HMax = 1.5
	cfg.Ranks = 2

	aniso, err := core.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	iso, err := core.IsotropicBaseline(cfg, 1.0)
	if err != nil {
		log.Fatal(err)
	}

	g, err := cfg.Geometry.Graph()
	if err != nil {
		log.Fatal(err)
	}
	surf := sizing.NewGraded(g.Surfaces[0].Points, 1, 0, 0)
	bc := solver.AirfoilBC(func(p geom.Point) bool { return surf.Distance(p) < 0.08 })

	opt := solver.Options{Tol: 1e-10, MaxIters: 300000, Method: solver.GaussSeidel}
	sa, err := solver.Solve(solver.Problem{Mesh: aniso.Mesh, Diffusivity: 0.01, Velocity: geom.V(1, 0.1), Boundary: bc}, opt)
	if err != nil {
		log.Fatal(err)
	}
	si, err := solver.Solve(solver.Problem{Mesh: iso, Diffusivity: 0.01, Velocity: geom.V(1, 0.1), Boundary: bc}, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 16: iterations to convergence")
	fmt.Printf("  anisotropic: %7d triangles, %6d iterations (converged=%v)\n",
		aniso.Mesh.NumTriangles(), sa.History.Iterations, sa.History.Converged)
	fmt.Printf("  isotropic:   %7d triangles, %6d iterations (converged=%v)\n",
		iso.NumTriangles(), si.History.Iterations, si.History.Converged)
	fmt.Printf("  element ratio  %.1fx (paper: 14.7x at full resolution)\n",
		float64(iso.NumTriangles())/float64(aniso.Mesh.NumTriangles()))
	fmt.Printf("  iteration ratio %.2fx (paper: ~2x)\n",
		float64(si.History.Iterations)/float64(sa.History.Iterations))
	fmt.Printf("  field proxies (Figures 14-15): aniso [%.3f, %.3f], iso [%.3f, %.3f]\n",
		sa.Min, sa.Max, si.Min, si.Max)

	// Figure 14/15 proxies: derived speed/pressure fields and the
	// stagnation points the paper describes on the airfoil.
	px, err := solver.Proxies(aniso.Mesh, sa.U)
	if err != nil {
		log.Fatal(err)
	}
	isBody := func(p geom.Point) bool { return surf.Distance(p) < 0.02 }
	stag, err := solver.Stagnation(aniso.Mesh, px.Speed, isBody, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  stagnation-point proxies on the body (lowest speed):")
	for _, p := range stag {
		fmt.Printf("    (%.3f, %.3f)\n", p.X, p.Y)
	}
}
