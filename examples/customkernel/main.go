// Customkernel: use the sequential meshing kernel directly — the layer a
// downstream user reaches for when they have their own geometry rather
// than an airfoil. Builds a gear-shaped PSLG with a hole, triangulates it
// with constrained Delaunay, refines to quality and sizing bounds, and
// prints the quality statistics before and after refinement.
package main

import (
	"fmt"
	"log"
	"math"

	"pamg2d/internal/delaunay"
	"pamg2d/internal/geom"
	"pamg2d/internal/mesh"
)

func main() {
	log.SetFlags(0)

	// A 12-tooth gear outline around the origin with a circular hole.
	var pts []geom.Point
	teeth := 12
	for i := 0; i < teeth*2; i++ {
		th := 2 * math.Pi * float64(i) / float64(teeth*2)
		r := 1.0
		if i%2 == 0 {
			r = 1.35
		}
		pts = append(pts, geom.Pt(r*math.Cos(th), r*math.Sin(th)))
	}
	nOuter := len(pts)
	holeN := 24
	for i := 0; i < holeN; i++ {
		th := 2 * math.Pi * float64(i) / float64(holeN)
		pts = append(pts, geom.Pt(0.4*math.Cos(th), 0.4*math.Sin(th)))
	}
	var segs [][2]int32
	for i := 0; i < nOuter; i++ {
		segs = append(segs, [2]int32{int32(i), int32((i + 1) % nOuter)})
	}
	for i := 0; i < holeN; i++ {
		segs = append(segs, [2]int32{int32(nOuter + i), int32(nOuter + (i+1)%holeN)})
	}
	in := delaunay.Input{Points: pts, Segments: segs, Holes: []geom.Point{geom.Pt(0, 0)}}

	coarse, err := delaunay.Triangulate(in)
	if err != nil {
		log.Fatal(err)
	}
	// Refine: quality bound sqrt(2) (min angle 20.7 degrees) plus a sizing
	// function that demands small triangles near the teeth.
	size := func(p geom.Point) float64 {
		d := 1.35 - math.Hypot(p.X, p.Y) // distance inward from the tooth tips
		h := 0.02 + 0.15*math.Abs(d)
		return math.Sqrt(3) / 4 * h * h
	}
	fine, err := delaunay.TriangulateRefined(in, delaunay.Quality{
		MaxRadiusEdgeRatio: math.Sqrt2,
		SizeAt:             size,
	})
	if err != nil {
		log.Fatal(err)
	}

	report := func(name string, r *delaunay.Result) {
		b := mesh.NewBuilder()
		for _, t := range r.Triangles {
			b.AddTriangle(r.Points[t[0]], r.Points[t[1]], r.Points[t[2]])
		}
		m := b.Mesh()
		if err := m.Audit(); err != nil {
			log.Fatalf("%s failed audit: %v", name, err)
		}
		q := m.Quality()
		fmt.Printf("%-8s %6d triangles  min angle %5.1f deg  worst ratio %.2f  area %.4f\n",
			name, m.NumTriangles(), q.MinAngleDeg, q.MaxRadiusEdge, m.Area())
	}
	fmt.Println("gear with hole: constrained Delaunay + Ruppert refinement")
	report("coarse", coarse)
	report("refined", fine)
	fmt.Println("\nthe refined mesh respects the 20.7-degree Ruppert bound away from")
	fmt.Println("the gear's own sharp input angles and grades from fine teeth to a")
	fmt.Println("coarse interior, all with the same kernel the pipeline uses.")
}
