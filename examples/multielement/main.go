// Multielement: mesh the synthetic three-element high-lift configuration
// (the 30p30n stand-in) and report every intersection-resolution feature
// of the paper's Figure 13: large-angle surface refinement, cusp fans,
// resolved self-intersections at the cove's concave corners, and resolved
// multi-element intersections in the slat/main and main/flap gaps.
package main

import (
	"fmt"
	"log"

	"pamg2d/internal/airfoil"
	"pamg2d/internal/blayer"
	"pamg2d/internal/core"
	"pamg2d/internal/growth"
)

func main() {
	log.SetFlags(0)

	cfg := core.DefaultConfig()
	cfg.Geometry = airfoil.ThreeElement(72)
	cfg.Geometry.FarfieldChords = 20
	cfg.BL = blayer.Params{
		Growth:         growth.Geometric{H0: 3e-4, Ratio: 1.25},
		MaxLayers:      30,
		MaxAngleDeg:    20,
		CuspAngleDeg:   60,
		FanSpacingDeg:  15,
		FanCurving:     0.5,
		IsotropyFactor: 1.0,
		TrimFactor:     1.0,
	}
	cfg.SurfaceH0 = 0.025
	cfg.Gradation = 0.2
	cfg.HMax = 3
	cfg.Ranks = 8

	res, err := core.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("three-element high-lift configuration (30p30n stand-in)")
	fmt.Printf("  triangles %d (BL %d, transition %d, inviscid %d)\n",
		res.Stats.TotalTriangles, res.Stats.BLTriangles,
		res.Stats.TransitionTris, res.Stats.InviscidTris)

	names := []string{"slat", "main", "flap"}
	fmt.Println("\n  Figure 13 feature inventory per element:")
	fmt.Printf("  %-6s %9s %9s %6s %6s %6s %8s\n",
		"elem", "origVerts", "inserted", "fans", "self", "multi", "trimmed")
	for i, st := range res.Stats.BLLayerStats {
		fmt.Printf("  %-6s %9d %9d %6d %6d %6d %8d\n",
			names[i], st.OriginalVertices, st.InsertedVertices,
			st.FanRays, st.SelfIntersections, st.MultiIntersections, st.TrimmedRays)
	}

	q := res.Mesh.Quality()
	fmt.Printf("\n  anisotropy (max aspect ratio): %.0f:1\n", q.MaxAspectRatio)
	fmt.Printf("  load balance: ")
	for r, lb := range res.Stats.LoadBalance {
		if r%8 == 0 && r > 0 {
			fmt.Printf("\n                ")
		}
		fmt.Printf("r%d:%d ", r%cfg.Ranks, lb.Processed)
	}
	fmt.Println()
}
