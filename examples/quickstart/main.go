// Quickstart: generate an anisotropic mesh for a NACA 0012 airfoil with
// the default push-button configuration and print what came out. This is
// the smallest complete use of the public pipeline: configure, generate,
// inspect.
package main

import (
	"fmt"
	"log"

	"pamg2d/internal/airfoil"
	"pamg2d/internal/blayer"
	"pamg2d/internal/core"
	"pamg2d/internal/growth"
)

func main() {
	log.SetFlags(0)

	cfg := core.DefaultConfig()
	cfg.Geometry = airfoil.Single(airfoil.NACA0012, 64, 20)
	cfg.BL = blayer.Params{
		Growth:         growth.Geometric{H0: 5e-4, Ratio: 1.25},
		MaxLayers:      25,
		MaxAngleDeg:    20,
		CuspAngleDeg:   60,
		FanSpacingDeg:  15,
		FanCurving:     0.5,
		IsotropyFactor: 1.0,
		TrimFactor:     1.0,
	}
	cfg.SurfaceH0 = 0.03
	cfg.Ranks = 4

	res, err := core.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	st := res.Stats
	q := res.Mesh.Quality()
	fmt.Println("NACA 0012 quickstart")
	fmt.Printf("  surface points        %d\n", st.SurfacePoints)
	fmt.Printf("  boundary-layer points %d\n", st.BoundaryLayerPts)
	fmt.Printf("  triangles             %d\n", st.TotalTriangles)
	fmt.Printf("    boundary layer      %d\n", st.BLTriangles)
	fmt.Printf("    transition          %d\n", st.TransitionTris)
	fmt.Printf("    inviscid            %d\n", st.InviscidTris)
	fmt.Printf("  max aspect ratio      %.1f (anisotropy)\n", q.MaxAspectRatio)
	fmt.Printf("  min angle             %.1f deg\n", q.MinAngleDeg)
	fmt.Printf("  mesh area             %.1f\n", res.Mesh.Area())
	fmt.Printf("  ranks                 %d, %d tasks, %d messages\n",
		cfg.Ranks, len(st.Tasks), st.Messages)
	fmt.Printf("  wall time             %v\n", st.Times.Total.Round(1e6))

	// Surface normals of Figure 2: print a few of them.
	g, err := cfg.Geometry.Graph()
	if err != nil {
		log.Fatal(err)
	}
	normals := blayer.VertexNormals(g.Surfaces[0].Points)
	fmt.Println("\n  sample surface normals (Figure 2):")
	for i := 0; i < len(normals); i += len(normals) / 6 {
		p := g.Surfaces[0].Points[i]
		fmt.Printf("    (%7.4f, %7.4f) -> (%6.3f, %6.3f)\n", p.X, p.Y, normals[i].X, normals[i].Y)
	}
}
