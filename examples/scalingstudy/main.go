// Scalingstudy: the Figure 11/12 experiment as a library example. A
// calibration run of the real pipeline measures per-subdomain costs; the
// discrete-event performance model then replays the schedule at rank
// counts up to 256 and prints the speedup and efficiency curves next to
// the paper's reference points.
package main

import (
	"fmt"
	"log"

	"pamg2d/internal/airfoil"
	"pamg2d/internal/core"
	"pamg2d/internal/growth"
	"pamg2d/internal/perfmodel"
)

func main() {
	log.SetFlags(0)

	cfg := core.DefaultConfig()
	cfg.Geometry = airfoil.Single(airfoil.NACA0012, 64, 20)
	cfg.BL.Growth = growth.Geometric{H0: 5e-4, Ratio: 1.25}
	cfg.BL.MaxLayers = 25
	cfg.SurfaceH0 = 0.008
	cfg.HMax = 0.16
	cfg.NearBodyMargin = 0.04
	cfg.Ranks = 1                // calibration on one rank: clean per-task times on one core
	cfg.SubdomainsPerRank = 2048 // over-decompose so 256 ranks have work

	fmt.Println("calibration: running the pipeline once to time every subdomain task")
	res, err := core.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fixed mesh: %d triangles in %d tasks\n\n", res.Stats.TotalTriangles, len(res.Stats.Tasks))

	var tasks []perfmodel.Task
	for _, tm := range res.Stats.Tasks {
		tasks = append(tasks, perfmodel.Task{Cost: tm.Seconds, Bytes: tm.Bytes, BoundaryLayer: tm.BoundaryLayer})
	}
	seq := res.Stats.Times.Validate.Seconds() +
		perfmodel.DecompositionOverhead(res.Stats.BoundaryLayerPts, 256, 2e-8, perfmodel.FDRInfiniband())

	pts := perfmodel.StrongScaling(tasks, seq, perfmodel.FDRInfiniband(),
		[]int{1, 2, 4, 8, 16, 32, 64, 128, 256})
	fmt.Println("strong scaling (Figures 11 and 12):")
	fmt.Print(perfmodel.FormatTable(pts))
	fmt.Println("\npaper reference: speedup ~102 at 128 ranks (80% efficiency),")
	fmt.Println("                 speedup ~180 at 256 ranks (70% efficiency)")
}
