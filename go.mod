module pamg2d

go 1.22
