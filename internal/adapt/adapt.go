// Package adapt implements the development pipeline of the paper's
// Figure 1: mesh generation, PDE solution, error analysis, and refinement,
// iterated. The paper's introduction argues that a well-suited initial
// mesh reduces the number of trips around this loop; this package provides
// the loop itself so that claim can be measured (see
// examples/adaptpipeline).
//
// The a posteriori error indicator is the standard cell-centered gradient
// jump: for each interior face the solution difference across it, weighted
// by face length, accumulated per cell. The next iteration's sizing
// function equidistributes the indicator: cells above the mean indicator
// get proportionally smaller target areas, cells below it larger ones,
// clamped to a gradation band.
package adapt

import (
	"fmt"
	"math"

	"pamg2d/internal/core"
	"pamg2d/internal/geom"
	"pamg2d/internal/mesh"
	"pamg2d/internal/sizing"
	"pamg2d/internal/solver"
)

// Indicator returns the per-cell error indicator for the cell-centered
// field u on m: eta_i = sqrt(sum over faces of (jump * len)^2)
// plus the cell's own area weighting, so large smooth cells and small
// steep cells both register.
func Indicator(m *mesh.Mesh, u []float64) ([]float64, error) {
	n := len(m.Triangles)
	if len(u) != n {
		return nil, fmt.Errorf("adapt: %d field values for %d cells", len(u), n)
	}
	adj := m.Adjacency()
	eta := make([]float64, n)
	for i, t := range m.Triangles {
		for e := 0; e < 3; e++ {
			nb := adj[i][e]
			if nb < 0 {
				continue
			}
			elen := m.Points[t[e]].Dist(m.Points[t[(e+1)%3]])
			jump := (u[i] - u[nb]) * elen
			eta[i] += jump * jump
		}
		eta[i] = math.Sqrt(eta[i])
	}
	return eta, nil
}

// Params tunes the sizing built from an indicator.
type Params struct {
	// Aggressiveness scales how strongly the indicator shrinks cells;
	// target area ~ oldArea * (meanEta/eta)^Aggressiveness. Default 1.
	Aggressiveness float64
	// MaxShrink and MaxGrow clamp the per-iteration area change factor;
	// defaults 1/4 and 2 (refine quickly, coarsen cautiously, the paper's
	// "gradually and incrementally add more resolution").
	MaxShrink, MaxGrow float64
	// FloorArea is the smallest target area ever requested; guards against
	// runaway refinement at singularities. Default: 1e-6 of the mesh area.
	FloorArea float64
}

func (p *Params) defaults(m *mesh.Mesh) {
	if p.Aggressiveness <= 0 {
		p.Aggressiveness = 1
	}
	if p.MaxShrink <= 0 {
		p.MaxShrink = 0.25
	}
	if p.MaxGrow <= 0 {
		p.MaxGrow = 2
	}
	if p.FloorArea <= 0 {
		p.FloorArea = 1e-6 * m.Area()
	}
}

// SizingFromIndicator builds the next iteration's sizing function: a
// background-mesh lookup (bucket grid over the old cell centroids) whose
// target at a point is the containing-region cell's area scaled by the
// equidistribution factor.
func SizingFromIndicator(m *mesh.Mesh, eta []float64, p Params) (sizing.Func, error) {
	n := len(m.Triangles)
	if len(eta) != n {
		return nil, fmt.Errorf("adapt: %d indicator values for %d cells", len(eta), n)
	}
	p.defaults(m)
	mean := 0.0
	for _, e := range eta {
		mean += e
	}
	mean /= float64(n)
	if mean == 0 {
		mean = 1
	}

	centroids := make([]geom.Point, n)
	target := make([]float64, n)
	for i, t := range m.Triangles {
		a, b, c := m.Points[t[0]], m.Points[t[1]], m.Points[t[2]]
		centroids[i] = geom.Pt((a.X+b.X+c.X)/3, (a.Y+b.Y+c.Y)/3)
		area := math.Abs(geom.TriangleArea(a, b, c))
		factor := math.Pow(mean/math.Max(eta[i], 1e-30), p.Aggressiveness)
		if factor < p.MaxShrink {
			factor = p.MaxShrink
		}
		if factor > p.MaxGrow {
			factor = p.MaxGrow
		}
		target[i] = math.Max(area*factor, p.FloorArea)
	}

	// Bucket grid over centroids for nearest-cell queries.
	bb := geom.BBoxOf(m.Points)
	cell := math.Max(bb.Width(), bb.Height()) / 128
	if cell <= 0 {
		cell = 1
	}
	grid := map[[2]int][]int32{}
	key := func(q geom.Point) [2]int {
		return [2]int{int(math.Floor(q.X / cell)), int(math.Floor(q.Y / cell))}
	}
	for i, c := range centroids {
		grid[key(c)] = append(grid[key(c)], int32(i))
	}

	return func(q geom.Point) float64 {
		kc := key(q)
		best := int32(-1)
		bestD := math.Inf(1)
		for ring := 0; ring < 1<<16; ring++ {
			found := false
			for dx := -ring; dx <= ring; dx++ {
				for dy := -ring; dy <= ring; dy++ {
					if dx > -ring && dx < ring && dy > -ring && dy < ring {
						continue
					}
					for _, ci := range grid[[2]int{kc[0] + dx, kc[1] + dy}] {
						found = true
						if d := q.Dist(centroids[ci]); d < bestD {
							bestD = d
							best = ci
						}
					}
				}
			}
			if best >= 0 && (bestD <= float64(ring)*cell || found && ring > 2) {
				break
			}
		}
		if best < 0 {
			return math.Inf(1) // no background cell anywhere near: unconstrained
		}
		return target[best]
	}, nil
}

// Step records one trip around the pipeline loop.
type Step struct {
	Mesh       *mesh.Mesh
	Solution   *solver.Solution
	Indicator  []float64
	TotalError float64
	Triangles  int
	Iterations int // solver iterations this step
}

// LoopOptions controls the solve–adapt–remesh loop.
type LoopOptions struct {
	// Steps is the number of generate-solve-adapt trips.
	Steps int
	// Sizing tunes the indicator-to-sizing conversion.
	Sizing Params
	// Solver options for each solve.
	Solver solver.Options
}

// Loop runs the Figure 1 pipeline: generate a mesh from cfg, solve the
// problem, estimate the error, build an adapted sizing, and regenerate,
// Steps times. The problem callback builds the solver setup for a given
// mesh (boundary conditions usually depend on the geometry, not the mesh,
// so the callback typically just fills in the Mesh field).
func Loop(cfg core.Config, problem func(*mesh.Mesh) solver.Problem, opt LoopOptions) ([]Step, error) {
	if opt.Steps < 1 {
		opt.Steps = 1
	}
	if opt.Solver.MaxIters == 0 {
		opt.Solver = solver.DefaultOptions()
	}
	var steps []Step
	for it := 0; it < opt.Steps; it++ {
		res, err := core.Generate(cfg)
		if err != nil {
			return steps, fmt.Errorf("adapt: step %d generate: %w", it, err)
		}
		sol, err := solver.Solve(problem(res.Mesh), opt.Solver)
		if err != nil {
			return steps, fmt.Errorf("adapt: step %d solve: %w", it, err)
		}
		eta, err := Indicator(res.Mesh, sol.U)
		if err != nil {
			return steps, err
		}
		total := 0.0
		for _, e := range eta {
			total += e * e
		}
		steps = append(steps, Step{
			Mesh:       res.Mesh,
			Solution:   sol,
			Indicator:  eta,
			TotalError: math.Sqrt(total),
			Triangles:  res.Mesh.NumTriangles(),
			Iterations: sol.History.Iterations,
		})
		if it == opt.Steps-1 {
			break
		}
		next, err := SizingFromIndicator(res.Mesh, eta, opt.Sizing)
		if err != nil {
			return steps, err
		}
		cfg.CustomSizing = next
	}
	return steps, nil
}
