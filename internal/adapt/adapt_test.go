package adapt

import (
	"math"
	"testing"

	"pamg2d/internal/airfoil"
	"pamg2d/internal/blayer"
	"pamg2d/internal/core"
	"pamg2d/internal/delaunay"
	"pamg2d/internal/geom"
	"pamg2d/internal/growth"
	"pamg2d/internal/mesh"
	"pamg2d/internal/sizing"
	"pamg2d/internal/solver"
)

// squareMesh refines the unit square to the given area.
func squareMesh(t testing.TB, maxArea float64) *mesh.Mesh {
	t.Helper()
	in := delaunay.Input{
		Points:   []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)},
		Segments: [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
	res, err := delaunay.TriangulateRefined(in, delaunay.Quality{MaxRadiusEdgeRatio: math.Sqrt2, MaxArea: maxArea})
	if err != nil {
		t.Fatal(err)
	}
	b := mesh.NewBuilder()
	for _, tri := range res.Triangles {
		b.AddTriangle(res.Points[tri[0]], res.Points[tri[1]], res.Points[tri[2]])
	}
	return b.Mesh()
}

func TestIndicatorFlagsSteepRegion(t *testing.T) {
	m := squareMesh(t, 0.005)
	// A synthetic field with a sharp front at x = 0.5.
	u := make([]float64, m.NumTriangles())
	for i, tri := range m.Triangles {
		a, b, c := m.Points[tri[0]], m.Points[tri[1]], m.Points[tri[2]]
		x := (a.X + b.X + c.X) / 3
		u[i] = math.Tanh(50 * (x - 0.5))
	}
	eta, err := Indicator(m, u)
	if err != nil {
		t.Fatal(err)
	}
	var nearSum, nearN, farSum, farN float64
	for i, tri := range m.Triangles {
		a, b, c := m.Points[tri[0]], m.Points[tri[1]], m.Points[tri[2]]
		x := (a.X + b.X + c.X) / 3
		if math.Abs(x-0.5) < 0.05 {
			nearSum += eta[i]
			nearN++
		} else if math.Abs(x-0.5) > 0.3 {
			farSum += eta[i]
			farN++
		}
	}
	if nearN == 0 || farN == 0 {
		t.Fatal("sampling failed")
	}
	if nearSum/nearN < 10*(farSum/farN+1e-30) {
		t.Errorf("front indicator %v not much larger than smooth-region %v",
			nearSum/nearN, farSum/farN)
	}
}

func TestIndicatorSizeMismatch(t *testing.T) {
	m := squareMesh(t, 0.05)
	if _, err := Indicator(m, make([]float64, 1)); err == nil {
		t.Error("size mismatch must fail")
	}
}

func TestSizingFromIndicatorShrinksHotCells(t *testing.T) {
	m := squareMesh(t, 0.01)
	eta := make([]float64, m.NumTriangles())
	// Hot spot near (0.2, 0.2).
	for i, tri := range m.Triangles {
		a, b, c := m.Points[tri[0]], m.Points[tri[1]], m.Points[tri[2]]
		x, y := (a.X+b.X+c.X)/3, (a.Y+b.Y+c.Y)/3
		if math.Hypot(x-0.2, y-0.2) < 0.15 {
			eta[i] = 100
		} else {
			eta[i] = 1
		}
	}
	size, err := SizingFromIndicator(m, eta, Params{})
	if err != nil {
		t.Fatal(err)
	}
	hot := size(geom.Pt(0.2, 0.2))
	cold := size(geom.Pt(0.8, 0.8))
	if hot >= cold {
		t.Errorf("hot target %v must be smaller than cold target %v", hot, cold)
	}
	// Hot cells must shrink versus their current area but respect the
	// clamp.
	meanArea := m.Area() / float64(m.NumTriangles())
	if hot < meanArea*0.2 || hot > meanArea {
		t.Errorf("hot target %v outside the clamped band around mean area %v", hot, meanArea)
	}
}

func TestLoopReducesErrorAndConcentratesCells(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Geometry = airfoil.Single(airfoil.NACA0012, 24, 6)
	cfg.BL = blayer.Params{
		Growth:         growth.Geometric{H0: 3e-3, Ratio: 1.35},
		MaxLayers:      8,
		MaxAngleDeg:    25,
		CuspAngleDeg:   60,
		FanSpacingDeg:  20,
		FanCurving:     0.5,
		IsotropyFactor: 1.0,
		TrimFactor:     1.0,
	}
	cfg.SurfaceH0 = 0.1
	cfg.Gradation = 0.4
	cfg.HMax = 2.5
	cfg.Ranks = 1
	cfg.SubdomainsPerRank = 2

	g, err := cfg.Geometry.Graph()
	if err != nil {
		t.Fatal(err)
	}
	surf := sizing.NewGraded(g.Surfaces[0].Points, 1, 0, 0)
	bc := solver.AirfoilBC(func(p geom.Point) bool { return surf.Distance(p) < 0.1 })
	problem := func(m *mesh.Mesh) solver.Problem {
		return solver.Problem{Mesh: m, Diffusivity: 0.05, Velocity: geom.V(1, 0), Boundary: bc}
	}
	steps, err := Loop(cfg, problem, LoopOptions{
		Steps:  3,
		Solver: solver.Options{Tol: 1e-8, MaxIters: 100000, Method: solver.GaussSeidel},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("steps = %d", len(steps))
	}
	// The pipeline claim: refinement concentrates resolution where the
	// error indicator is high, so the area-normalized total error drops
	// across iterations even as triangle counts grow moderately.
	first := steps[0]
	last := steps[len(steps)-1]
	if last.Triangles <= first.Triangles {
		t.Errorf("adaptation did not add resolution: %d -> %d triangles", first.Triangles, last.Triangles)
	}
	if last.TotalError >= first.TotalError {
		t.Errorf("total error did not drop: %v -> %v", first.TotalError, last.TotalError)
	}
	for i, st := range steps {
		if !st.Solution.History.Converged {
			t.Errorf("step %d solve did not converge", i)
		}
	}
}
