package adapt

// Cycle driver shared by the meshgen and meshadapt CLIs: resolve a
// core.AdaptParams metric source (analytic spec or Hessian-of-solution),
// then alternate build-metric / run-operators / audit for the requested
// number of cycles. Re-building the metric between cycles is what makes
// "hessian" adaptive in the Figure 1 sense — the solution is recomputed
// on each adapted mesh, so the metric chases the features the previous
// cycle resolved.

import (
	"fmt"
	"math"

	"pamg2d/internal/audit"
	"pamg2d/internal/core"
	"pamg2d/internal/geom"
	"pamg2d/internal/mesh"
	"pamg2d/internal/metric"
	"pamg2d/internal/solver"
)

// BoxBC classifies boundary edges by position: edges on the mesh
// bounding-box perimeter are the far field (value 0), everything else is
// a body surface (value 1). This matches how every supported geometry is
// laid out — the far-field loop is the bounding rectangle — and needs no
// knowledge of the original PSLG, so it also works for meshes read back
// from files.
func BoxBC(m *mesh.Mesh) solver.BC {
	bb := geom.BBoxOf(m.Points)
	tol := 1e-6 * math.Max(bb.Width(), bb.Height())
	return solver.AirfoilBC(func(p geom.Point) bool {
		return p.X > bb.Min.X+tol && p.X < bb.Max.X-tol &&
			p.Y > bb.Min.Y+tol && p.Y < bb.Max.Y-tol
	})
}

// DefaultProblem is the standard convection-diffusion problem the CLIs
// solve when the metric source is "hessian": unit body temperature
// convected downstream, far field held at zero, under BoxBC
// classification.
func DefaultProblem(m *mesh.Mesh) solver.Problem {
	return solver.Problem{Mesh: m, Diffusivity: 0.05, Velocity: geom.V(1, 0), Boundary: BoxBC(m)}
}

// DefaultSolve adapts DefaultProblem into the solve callback
// MetricSource expects.
func DefaultSolve(opt solver.Options) func(*mesh.Mesh) ([]float64, error) {
	return func(m *mesh.Mesh) ([]float64, error) {
		sol, err := solver.Solve(DefaultProblem(m), opt)
		if err != nil {
			return nil, err
		}
		return sol.U, nil
	}
}

// CycleReport records one metric-adaptation cycle.
type CycleReport struct {
	Cycle  int
	Result *Result
	// Audit is the adapted-profile report for the cycle's output mesh
	// (audit.Adapted: everything except the empty-circumcircle check).
	Audit *audit.Report
}

// MetricSource resolves p.Metric into a field builder evaluated against
// each cycle's current mesh, plus an analytic resample function when the
// source is a closed-form spec (nil for "hessian", where new vertices
// interpolate instead). solve supplies the cell-centered solution field
// for the Hessian source and may be nil for analytic specs.
func MetricSource(p core.AdaptParams, solve func(*mesh.Mesh) ([]float64, error)) (func(*mesh.Mesh) (metric.Field, error), func(geom.Point) metric.M, error) {
	if p.Metric == "" || p.Metric == "hessian" {
		if solve == nil {
			return nil, nil, fmt.Errorf("adapt: the hessian metric source needs a solver")
		}
		build := func(m *mesh.Mesh) (metric.Field, error) {
			u, err := solve(m)
			if err != nil {
				return nil, fmt.Errorf("adapt: hessian metric solve: %w", err)
			}
			f, err := metric.FromHessian(m, u, metric.HessianOpts{})
			if err != nil {
				return nil, err
			}
			if _, err := metric.LimitGradation(m, f, 1.5, 20); err != nil {
				return nil, err
			}
			return f, nil
		}
		return build, nil, nil
	}
	fn, err := metric.ParseSpec(p.Metric)
	if err != nil {
		return nil, nil, err
	}
	build := func(m *mesh.Mesh) (metric.Field, error) {
		return metric.Analytic(m, fn), nil
	}
	return build, fn, nil
}

// Cycles runs p.Cycles adaptation cycles on m, auditing every cycle's
// output mesh with the adapted profile. The input mesh is not modified.
// On an audit failure the offending mesh's report is the last entry of
// the returned slice and the error wraps an *audit.Error.
func Cycles(m *mesh.Mesh, p core.AdaptParams, opt Options, build func(*mesh.Mesh) (metric.Field, error)) (*mesh.Mesh, []CycleReport, error) {
	n := p.Cycles
	if n < 1 {
		n = 1
	}
	if p.SweepCap > 0 {
		opt.MaxSweeps = p.SweepCap
	}
	if p.Band > 1 {
		opt.Band = p.Band
	}
	var reps []CycleReport
	for c := 0; c < n; c++ {
		f, err := build(m)
		if err != nil {
			return m, reps, fmt.Errorf("adapt: cycle %d metric: %w", c, err)
		}
		next, res, err := Adapt(m, f, opt)
		if err != nil {
			return m, reps, fmt.Errorf("adapt: cycle %d: %w", c, err)
		}
		rep := audit.Run(&audit.Snapshot{Mesh: next}, audit.Adapted())
		reps = append(reps, CycleReport{Cycle: c, Result: res, Audit: rep})
		if aerr := rep.Error(); aerr != nil {
			return next, reps, fmt.Errorf("adapt: cycle %d audit: %w", c, aerr)
		}
		m = next
	}
	return m, reps, nil
}
