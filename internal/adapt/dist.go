package adapt

// Distributed plan evaluation. Evaluation is the expensive phase of a
// pass (ring walks, metric lengths, quality integrals) and is
// embarrassingly parallel over frozen topology, so with Options.Ranks > 1
// each pass fans the evaluation chunks out as loadbal tasks over an
// in-process MPI world: ranks steal chunks off each other, evaluate them
// against the shared read-only topo, and ship the resulting plan batches
// to the root with a typed reference payload (CodecPlanBatch, so the
// batches also survive a wire transport byte-for-byte). The root
// reassembles batches by chunk id, which restores the exact order local
// evaluation would have produced — selection and commit then proceed
// exactly as in the local path, so Ranks is a throughput knob, never a
// result knob.

import (
	"context"
	"fmt"
	"math"

	"pamg2d/internal/geom"
	"pamg2d/internal/loadbal"
	"pamg2d/internal/metric"
	"pamg2d/internal/mpi"
)

// CodecPlanBatch is the wire codec id for *planBatch payloads. The adapt
// package takes the block 48–63, after core's 32–47.
const CodecPlanBatch mpi.CodecID = 48

// tagPlans carries evaluated plan batches to rank 0; loadbal's stealing
// protocol owns the 100+ tag range.
const tagPlans = 200

// planBatch is one evaluation chunk's result in flight to the root.
type planBatch struct {
	Chunk int32
	Plans []*opPlan
}

func init() {
	mpi.RegisterCodec(CodecPlanBatch, (*planBatch)(nil), encodePlanBatch, decodePlanBatch)
}

// evaluateDist is evaluate with the chunk loop distributed over an
// in-process world via the work-stealing balancer.
func (e *engine) evaluateDist(kind opKind) ([]*opPlan, error) {
	n := e.items(kind)
	chunks := (n + evalChunk - 1) / evalChunk
	ranks := e.opt.Ranks
	world := mpi.NewWorld(ranks)
	defer world.Close(nil)
	world.SetTracer(e.opt.Tracer)
	win := world.NewWindow(ranks)

	tasks := make([]loadbal.Task, chunks)
	total := 0.0
	for c := 0; c < chunks; c++ {
		from, to := c*evalChunk, min((c+1)*evalChunk, n)
		tasks[c] = loadbal.Task{
			ID:   int32(c),
			Cost: float64(to - from),
			Vals: []float64{float64(c), float64(kind), float64(from), float64(to)},
		}
		total += tasks[c].Cost
	}
	initial := make([][]loadbal.Task, ranks)
	for i, t := range tasks {
		initial[i%ranks] = append(initial[i%ranks], t)
	}

	results := make([][]*opPlan, chunks)
	collected := 0
	lb := loadbal.DefaultOptions(total, ranks)
	lb.Tracer = e.opt.Tracer
	ctx := context.Background()
	err := world.RunCtx(ctx, func(c *mpi.Comm) error {
		_, err := loadbal.Run(ctx, c, win, initial[c.Rank()], chunks, lb, func(task loadbal.Task) {
			s1 := make([]int32, 0, maxRing)
			s2 := make([]int32, 0, maxRing)
			chunk := int32(task.Vals[0])
			k := opKind(task.Vals[1])
			from, to := int(task.Vals[2]), int(task.Vals[3])
			batch := &planBatch{Chunk: chunk, Plans: e.evalRange(k, from, to, s1, s2)}
			_ = c.SendRef(0, tagPlans, batch, batch.wireBytes())
		})
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			return nil
		}
		// The balancer's termination protocol means every task has sent
		// its batch to us (per-pair FIFO: a rank's batch precedes its
		// completion notice), so the mailbox drains without blocking.
		for collected < chunks {
			ref, _, _, ok := c.TryRecvRef(mpi.AnySource, tagPlans)
			if !ok {
				return fmt.Errorf("adapt: collected %d of %d plan batches", collected, chunks)
			}
			b, ok := ref.(*planBatch)
			if !ok {
				return fmt.Errorf("adapt: unexpected plan payload %T", ref)
			}
			results[b.Chunk] = b.Plans
			collected++
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("adapt: distributed evaluation: %w", err)
	}
	var out []*opPlan
	for _, r := range results {
		out = append(out, r...)
	}
	return out, nil
}

// --- wire codec ----------------------------------------------------------

func putU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func putI32(dst []byte, v int32) []byte { return putU32(dst, uint32(v)) }

func putF64(dst []byte, v float64) []byte {
	b := math.Float64bits(v)
	return append(dst, byte(b), byte(b>>8), byte(b>>16), byte(b>>24),
		byte(b>>32), byte(b>>40), byte(b>>48), byte(b>>56))
}

// encodePlanBatch serializes a batch. Selection-time fields (newV,
// slots) never travel: they are assigned on the root.
func encodePlanBatch(ref any, dst []byte) []byte {
	b := ref.(*planBatch)
	dst = putI32(dst, b.Chunk)
	dst = putU32(dst, uint32(len(b.Plans)))
	for _, p := range b.Plans {
		flags := byte(0)
		if p.Bnd {
			flags |= 1
		}
		if p.Mid {
			flags |= 2
		}
		dst = append(dst, byte(p.Kind), flags, byte(p.E), byte(p.NDy))
		dst = putF64(dst, p.Prio)
		dst = putI32(dst, p.T)
		dst = putI32(dst, p.V)
		dst = putI32(dst, p.Keep)
		dst = putF64(dst, p.Pos.X)
		dst = putF64(dst, p.Pos.Y)
		dst = putF64(dst, p.Met.XX)
		dst = putF64(dst, p.Met.XY)
		dst = putF64(dst, p.Met.YY)
		dst = putU32(dst, uint32(len(p.Cav)))
		for _, t := range p.Cav {
			dst = putI32(dst, t)
		}
		for _, pr := range p.Pat {
			dst = putI32(dst, pr.T)
			dst = append(dst, byte(pr.E))
		}
		for _, d := range p.Dy {
			dst = putI32(dst, d.D)
			dst = putI32(dst, d.K)
			dst = putI32(dst, d.R)
			dst = putI32(dst, d.W)
			dst = append(dst, byte(d.KE))
		}
	}
	return dst
}

type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := uint32(r.b[r.off]) | uint32(r.b[r.off+1])<<8 |
		uint32(r.b[r.off+2])<<16 | uint32(r.b[r.off+3])<<24
	r.off += 4
	return v
}

func (r *wireReader) i32() int32 { return int32(r.u32()) }

func (r *wireReader) f64() float64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(r.b[r.off+i]) << (8 * i)
	}
	r.off += 8
	return math.Float64frombits(v)
}

func (r *wireReader) u8() byte {
	if r.err != nil || r.off >= len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *wireReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("adapt: truncated plan batch at byte %d of %d", r.off, len(r.b))
	}
}

func decodePlanBatch(b []byte) (any, error) {
	r := &wireReader{b: b}
	out := &planBatch{Chunk: r.i32()}
	n := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	// Each plan occupies at least planWireFixed bytes; reject absurd
	// counts before allocating.
	if int(n) > len(b)/planWireFixed+1 {
		return nil, fmt.Errorf("adapt: plan batch claims %d plans in %d bytes", n, len(b))
	}
	out.Plans = make([]*opPlan, 0, n)
	for i := uint32(0); i < n; i++ {
		p := &opPlan{}
		p.Kind = opKind(r.u8())
		flags := r.u8()
		p.Bnd = flags&1 != 0
		p.Mid = flags&2 != 0
		p.E = int8(r.u8())
		p.NDy = int8(r.u8())
		p.Prio = r.f64()
		p.T = r.i32()
		p.V = r.i32()
		p.Keep = r.i32()
		p.Pos = geom.Pt(r.f64(), r.f64())
		p.Met = metric.M{XX: r.f64(), XY: r.f64(), YY: r.f64()}
		nc := r.u32()
		if r.err != nil {
			return nil, r.err
		}
		if int(nc) > (len(b)-r.off)/4+1 {
			return nil, fmt.Errorf("adapt: plan cavity claims %d triangles in %d bytes", nc, len(b)-r.off)
		}
		p.Cav = make([]int32, nc)
		for j := range p.Cav {
			p.Cav[j] = r.i32()
		}
		for j := range p.Pat {
			p.Pat[j].T = r.i32()
			p.Pat[j].E = int8(r.u8())
		}
		for j := range p.Dy {
			p.Dy[j].D = r.i32()
			p.Dy[j].K = r.i32()
			p.Dy[j].R = r.i32()
			p.Dy[j].W = r.i32()
			p.Dy[j].KE = int8(r.u8())
		}
		if r.err != nil {
			return nil, r.err
		}
		out.Plans = append(out.Plans, p)
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("adapt: %d trailing bytes after plan batch", len(b)-r.off)
	}
	return out, nil
}

// planWireFixed is the encoded size of a plan minus its cavity list:
// 4 (kind, flags, e, ndy) + 8 (prio) + 12 (t, v, keep) + 16 (pos) +
// 24 (met) + 4 (cavity count) + 10 (patches) + 34 (dying refs).
const planWireFixed = 112

// wireBytes is the serialized size of the batch, charged to the
// communication-volume statistics by SendRef.
func (b *planBatch) wireBytes() int {
	n := 8
	for _, p := range b.Plans {
		n += planWireFixed + 4*len(p.Cav)
	}
	return n
}
