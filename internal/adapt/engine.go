package adapt

// Metric-driven cavity-operator adaptation. Each pass evaluates one
// operator kind (split, collapse, swap, smooth) over the whole mesh
// against a frozen topology, selects a conflict-free subset sequentially,
// and commits the selected operations from multiple workers — the same
// evaluate/select/commit discipline as delaunay.BuildParallel, with one
// difference in the conflict currency: adaptation operators move and
// delete vertices, so selection claims cavity *vertices* rather than
// triangles. Vertex-disjoint cavities read and write disjoint
// coordinates, create distinct edges (every edge an operation creates
// joins two of its cavity vertices), and rewrite disjoint
// neighbor-pointer words: a pointer word outside a cavity that a commit
// must patch holds the index of one of the commit's own cavity
// triangles, and a triangle belongs to at most one selected cavity, so
// two commits can never race on the same word. Those outside words are
// located during evaluation (patchRef/dyingRef) and written by index,
// never by scanning, because the *other* words of a patched triangle may
// belong to a different commit.
//
// Determinism: evaluation runs over fixed-size chunks whose results are
// merged in chunk order, the merged plans are sorted by priority with a
// stable sort, selection walks them in that order, and ring walks use a
// canonical starting triangle — so the adapted mesh is a function of the
// input mesh and field alone, independent of worker count and commit
// scheduling.

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"pamg2d/internal/delaunay"
	"pamg2d/internal/geom"
	"pamg2d/internal/mesh"
	"pamg2d/internal/metric"
	"pamg2d/internal/trace"
)

// DefaultBand is the metric edge-length acceptance band: adaptation
// drives every edge into [1/DefaultBand, DefaultBand], the classical
// quasi-unit interval.
var DefaultBand = math.Sqrt2

// Options configures one Adapt call.
type Options struct {
	// Band is the edge-length acceptance half-width b: edges longer than
	// b split, edges shorter than 1/b collapse. Values <= 1 select
	// DefaultBand (√2).
	Band float64
	// MaxSweeps caps the operator sweeps; 0 resolves to 20.
	MaxSweeps int
	// Workers is the number of evaluation/commit goroutines; 0 resolves
	// to the pool size (or 1 without a pool). The result is identical
	// for every worker count.
	Workers int
	// Pool, when non-nil, runs phase jobs on a shared persistent worker
	// team instead of spawning goroutines per pass.
	Pool *delaunay.WorkerPool
	// Ranks > 1 distributes plan evaluation over an in-process MPI world
	// via the loadbal work-stealing scheduler; selection and commit stay
	// on the root. 0 and 1 evaluate locally.
	Ranks int
	// Tracer, when non-nil, records one CatKernel span per pass and
	// adapt.* metrics; Rank is the track spans land on.
	Tracer *trace.Tracer
	Rank   int
	// NoSwap and NoSmooth disable the quality passes, leaving pure
	// split/collapse sizing.
	NoSwap, NoSmooth bool
	// Resample, when non-nil, evaluates the metric field at new and moved
	// vertex positions (analytic fields); otherwise new vertices
	// interpolate the endpoint tensors log-Euclidean.
	Resample func(geom.Point) metric.M
	// CheckEach, when non-nil, is called after every sweep with the sweep
	// index and a freshly extracted mesh; a non-nil error aborts the
	// adaptation. Tests hook structural audits here.
	CheckEach func(sweep int, m *mesh.Mesh) error
}

// Result reports what an Adapt call did.
type Result struct {
	Sweeps    int
	Splits    int
	Collapses int
	Swaps     int
	Smooths   int
	// Conflicts counts evaluated plans rejected by the vertex-claim
	// sweep; they are re-evaluated next pass.
	Conflicts int
	// Edges and InBand describe the final mesh: total edge count and the
	// fraction with metric length inside [1/Band, Band].
	Edges  int
	InBand float64
	// Converged is true when every edge ended in band.
	Converged bool
}

// engine is the per-Adapt state.
type engine struct {
	tp      *topo
	opt     Options
	workers int
	// claimVert[v] == epoch marks v claimed by a selected operation in
	// the current selection sweep.
	claimVert []uint32
	epoch     uint32
	res       Result
}

const evalChunk = 256

// Adapt drives the input mesh toward unit metric edge length under the
// per-vertex field f, returning the adapted mesh (the input is not
// modified) and a report. The field must have one tensor per input
// vertex; tensors at vertices created by splits are interpolated (or
// resampled via opt.Resample).
func Adapt(m *mesh.Mesh, f metric.Field, opt Options) (*mesh.Mesh, *Result, error) {
	if opt.Band <= 1 {
		opt.Band = DefaultBand
	}
	if opt.MaxSweeps <= 0 {
		opt.MaxSweeps = 20
	}
	if opt.Workers <= 0 {
		if opt.Pool != nil {
			opt.Workers = opt.Pool.Size()
		} else {
			opt.Workers = 1
		}
	}
	for i, t := range f {
		if !t.SPD() {
			return nil, nil, fmt.Errorf("adapt: tensor %d is not SPD: %+v", i, t)
		}
	}
	tp, err := newTopo(m, f)
	if err != nil {
		return nil, nil, err
	}
	e := &engine{tp: tp, opt: opt, workers: opt.Workers,
		claimVert: make([]uint32, len(tp.pts))}
	if err := e.run(); err != nil {
		return nil, nil, err
	}
	return tp.mesh(), &e.res, nil
}

func (e *engine) run() error {
	kinds := []opKind{opSplit, opCollapse, opSwap, opSmooth}
	for s := 0; s < e.opt.MaxSweeps; s++ {
		changed := 0
		for _, k := range kinds {
			if (k == opSwap && e.opt.NoSwap) || (k == opSmooth && e.opt.NoSmooth) {
				continue
			}
			n, err := e.pass(k)
			if err != nil {
				return err
			}
			changed += n
		}
		e.res.Sweeps = s + 1
		edges, in := e.edgeBand()
		e.res.Edges = edges
		if edges > 0 {
			e.res.InBand = float64(in) / float64(edges)
		}
		if e.opt.CheckEach != nil {
			if err := e.opt.CheckEach(s, e.tp.mesh()); err != nil {
				return fmt.Errorf("adapt: sweep %d: %w", s, err)
			}
		}
		if in == edges {
			e.res.Converged = true
			return nil
		}
		if changed == 0 {
			return nil
		}
	}
	return nil
}

// pass runs one evaluate/select/commit round of a single operator kind
// and returns the number of committed operations.
func (e *engine) pass(kind opKind) (int, error) {
	var span trace.Span
	if e.opt.Tracer != nil {
		span = e.opt.Tracer.Begin(e.opt.Rank, trace.CatKernel, "adapt."+kind.String())
	}
	var plans []*opPlan
	if e.opt.Ranks > 1 {
		var err error
		plans, err = e.evaluateDist(kind)
		if err != nil {
			if e.opt.Tracer != nil {
				span.End()
			}
			return 0, err
		}
	} else {
		plans = e.evaluate(kind)
	}
	sel := e.selectPlans(plans)
	e.commit(sel)
	e.recycle(sel)
	switch kind {
	case opSplit:
		e.res.Splits += len(sel)
	case opCollapse:
		e.res.Collapses += len(sel)
	case opSwap:
		e.res.Swaps += len(sel)
	case opSmooth:
		e.res.Smooths += len(sel)
	}
	if e.opt.Tracer != nil {
		span.End(trace.I("planned", len(plans)), trace.I("committed", len(sel)))
		mm := e.opt.Tracer.Metrics()
		mm.Count("adapt."+kind.String(), int64(len(sel)))
		mm.Gauge("adapt.live_triangles", float64(e.tp.live))
	}
	return len(sel), nil
}

// items returns the number of evaluation items for a kind: triangles for
// the edge-based operators, vertices for smoothing.
func (e *engine) items(kind opKind) int {
	if kind == opSmooth {
		return len(e.tp.pts)
	}
	return len(e.tp.tri)
}

// evaluate computes every candidate plan of one kind against the frozen
// topology. Work is cut into fixed chunks independent of the worker
// count and the per-chunk results are merged in chunk order, so the plan
// list — and everything downstream — is worker-count invariant.
func (e *engine) evaluate(kind opKind) []*opPlan {
	n := e.items(kind)
	chunks := (n + evalChunk - 1) / evalChunk
	results := make([][]*opPlan, chunks)
	e.runParallel(func(w int) {
		s1 := make([]int32, 0, maxRing)
		s2 := make([]int32, 0, maxRing)
		for c := w; c < chunks; c += e.workers {
			results[c] = e.evalRange(kind, c*evalChunk, min((c+1)*evalChunk, n), s1, s2)
		}
	})
	var out []*opPlan
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// evalRange evaluates items [from, to) of one kind. Edge-based kinds
// visit each undirected edge once, owned by the lower-indexed triangle.
func (e *engine) evalRange(kind opKind, from, to int, s1, s2 []int32) []*opPlan {
	tp := e.tp
	var out []*opPlan
	if kind == opSmooth {
		for v := int32(from); v < int32(to); v++ {
			if p := e.evalSmooth(v, s1); p != nil {
				out = append(out, p)
			}
		}
		return out
	}
	for t := int32(from); t < int32(to); t++ {
		if tp.tri[t].dead {
			continue
		}
		for ei := 0; ei < 3; ei++ {
			nb := tp.tri[t].n[ei]
			if nb >= 0 && nb < t {
				continue // the neighbor owns this edge
			}
			var p *opPlan
			switch kind {
			case opSplit:
				p = e.evalSplit(t, ei)
			case opCollapse:
				p = e.evalCollapse(t, ei, s1, s2)
			case opSwap:
				if nb >= 0 {
					p = e.evalSwap(t, ei)
				}
			}
			if p != nil {
				out = append(out, p)
			}
		}
	}
	return out
}

// selectPlans picks a maximal conflict-free subset: plans in stable
// priority order, claiming every vertex of every cavity triangle under
// the current epoch; a plan touching a claimed vertex is dropped (it
// re-evaluates next pass). Splits get their new vertex and triangle
// slots assigned here, on the sequential path.
func (e *engine) selectPlans(plans []*opPlan) []*opPlan {
	tp := e.tp
	sort.SliceStable(plans, func(i, j int) bool { return plans[i].Prio > plans[j].Prio })
	e.epoch++
	if len(e.claimVert) < len(tp.pts) {
		e.claimVert = append(e.claimVert, make([]uint32, len(tp.pts)-len(e.claimVert))...)
	}
	var sel []*opPlan
	for _, p := range plans {
		conflict := false
	scan:
		for _, t := range p.Cav {
			for _, v := range tp.tri[t].v {
				if e.claimVert[v] == e.epoch {
					conflict = true
					break scan
				}
			}
		}
		if conflict {
			e.res.Conflicts++
			continue
		}
		for _, t := range p.Cav {
			for _, v := range tp.tri[t].v {
				e.claimVert[v] = e.epoch
			}
		}
		if p.Kind == opSplit {
			p.newV = tp.addVertex(p.Pos, p.Met, p.Bnd)
			e.claimVert = append(e.claimVert, e.epoch)
			p.slots[0] = tp.allocSlot()
			p.slots[1] = -1
			if !p.Bnd {
				p.slots[1] = tp.allocSlot()
			}
		}
		sel = append(sel, p)
	}
	return sel
}

// commit applies the selected plans, striped across workers. The
// vertex-claim rule makes every write of one commit invisible to every
// other, so striping is only a work split.
func (e *engine) commit(sel []*opPlan) {
	if len(sel) == 0 {
		return
	}
	e.runParallel(func(w int) {
		for k := w; k < len(sel); k += e.workers {
			p := sel[k]
			switch p.Kind {
			case opSplit:
				e.commitSplit(p)
			case opCollapse:
				e.commitCollapse(p)
			case opSwap:
				e.commitSwap(p)
			case opSmooth:
				e.commitSmooth(p)
			}
		}
	})
}

// recycle returns the slots of collapsed triangles to the free list.
// Sequential: the free list is shared state.
func (e *engine) recycle(sel []*opPlan) {
	for _, p := range sel {
		if p.Kind != opCollapse {
			continue
		}
		for i := 0; i < int(p.NDy); i++ {
			e.tp.freeSlot(p.Dy[i].D)
		}
	}
}

// runParallel executes body on every worker index and waits.
func (e *engine) runParallel(body func(w int)) {
	if e.workers <= 1 {
		body(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(e.workers)
	for w := 0; w < e.workers; w++ {
		job := func(w int) func() {
			return func() { defer wg.Done(); body(w) }
		}(w)
		if e.opt.Pool != nil {
			e.opt.Pool.Submit(job)
		} else {
			go job()
		}
	}
	wg.Wait()
}

// edgeBand counts live edges and how many have metric length within
// [1/Band, Band].
func (e *engine) edgeBand() (edges, in int) {
	tp := e.tp
	for t := range tp.tri {
		if tp.tri[t].dead {
			continue
		}
		for ei := 0; ei < 3; ei++ {
			if nb := tp.tri[t].n[ei]; nb >= 0 && nb < int32(t) {
				continue
			}
			a, b := tp.edgeVerts(int32(t), ei)
			edges++
			if l := tp.edgeLen(a, b); l >= 1/e.opt.Band && l <= e.opt.Band {
				in++
			}
		}
	}
	return edges, in
}
