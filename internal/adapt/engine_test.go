package adapt

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"pamg2d/internal/delaunay"
	"pamg2d/internal/geom"
	"pamg2d/internal/mesh"
	"pamg2d/internal/metric"
	"pamg2d/internal/trace"
)

// egrid builds an n×n structured triangulation of the unit square.
func egrid(t testing.TB, n int) *mesh.Mesh {
	t.Helper()
	b := mesh.NewBuilder()
	h := 1.0 / float64(n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			x0, y0 := float64(i)*h, float64(j)*h
			x1, y1 := x0+h, y0+h
			b.AddTriangle(geom.Pt(x0, y0), geom.Pt(x1, y0), geom.Pt(x1, y1))
			b.AddTriangle(geom.Pt(x0, y0), geom.Pt(x1, y1), geom.Pt(x0, y1))
		}
	}
	m := b.Mesh()
	if err := m.Audit(); err != nil {
		t.Fatalf("grid mesh: %v", err)
	}
	return m
}

// structuralEach audits every intermediate mesh.
func structuralEach(t *testing.T) func(int, *mesh.Mesh) error {
	t.Helper()
	return func(sweep int, m *mesh.Mesh) error {
		if err := m.Audit(); err != nil {
			return fmt.Errorf("after sweep %d: %w", sweep, err)
		}
		return nil
	}
}

func TestAdaptUniformRefine(t *testing.T) {
	m := egrid(t, 4)
	h := 1.0 / 16 // four-fold refinement target
	iso := func(geom.Point) metric.M { return metric.Iso(h) }
	out, res, err := Adapt(m, metric.Analytic(m, iso), Options{
		Resample:  iso,
		CheckEach: structuralEach(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Splits == 0 {
		t.Fatal("refinement produced no splits")
	}
	if res.InBand < 0.9 {
		t.Fatalf("InBand = %.3f after %d sweeps (splits %d collapses %d swaps %d smooths %d)",
			res.InBand, res.Sweeps, res.Splits, res.Collapses, res.Swaps, res.Smooths)
	}
	if got, want := out.Area(), m.Area(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("area changed: %g -> %g", want, got)
	}
	if out.NumTriangles() <= m.NumTriangles() {
		t.Fatalf("refinement shrank the mesh: %d -> %d triangles",
			m.NumTriangles(), out.NumTriangles())
	}
}

func TestAdaptUniformCoarsen(t *testing.T) {
	// 16 -> 5: the coarse pitch is incommensurate with the fine grid, so
	// no edge lands exactly on the band boundary.
	m := egrid(t, 16)
	h := 1.0 / 5
	iso := func(geom.Point) metric.M { return metric.Iso(h) }
	out, res, err := Adapt(m, metric.Analytic(m, iso), Options{
		Resample:  iso,
		CheckEach: structuralEach(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Collapses == 0 {
		t.Fatal("coarsening produced no collapses")
	}
	if res.InBand < 0.9 {
		t.Fatalf("InBand = %.3f after %d sweeps (splits %d collapses %d)",
			res.InBand, res.Sweeps, res.Splits, res.Collapses)
	}
	if got, want := out.Area(), m.Area(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("area changed: %g -> %g", want, got)
	}
	if out.NumTriangles() >= m.NumTriangles() {
		t.Fatalf("coarsening grew the mesh: %d -> %d triangles",
			m.NumTriangles(), out.NumTriangles())
	}
}

// TestAdaptAnisotropicBL is the acceptance test: a boundary-layer metric
// along the bottom wall must pull >= 90% of the edges into the quasi-unit
// band, with every intermediate mesh structurally sound.
func TestAdaptAnisotropicBL(t *testing.T) {
	m := egrid(t, 8)
	f, err := metric.ParseSpec("bl:x0=0,y0=0,x1=1,y1=0,hn=0.02,ht=0.2,grow=0.6")
	if err != nil {
		t.Fatal(err)
	}
	out, res, err := Adapt(m, metric.Analytic(m, f), Options{
		Resample:  f,
		CheckEach: structuralEach(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.InBand < 0.9 {
		t.Fatalf("InBand = %.3f after %d sweeps (splits %d collapses %d swaps %d smooths %d, %d edges)",
			res.InBand, res.Sweeps, res.Splits, res.Collapses, res.Swaps, res.Smooths, res.Edges)
	}
	if err := out.Audit(); err != nil {
		t.Fatal(err)
	}
	if got, want := out.Area(), m.Area(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("area changed: %g -> %g", want, got)
	}
	// The wall band must actually be anisotropic: stretched triangles
	// hugging y=0.
	st, err := metric.FieldStats(out, metric.Analytic(out, f), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxAspect < 5 {
		t.Fatalf("metric max aspect %g, want boundary-layer anisotropy", st.MaxAspect)
	}
}

// TestAdaptDeterministicWorkers demands byte-identical output for every
// worker count, with and without a shared pool.
func TestAdaptDeterministicWorkers(t *testing.T) {
	f, err := metric.ParseSpec("bl:x0=0,y0=0,x1=1,y1=0,hn=0.03,ht=0.2,grow=0.7")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int, pool *delaunay.WorkerPool) *mesh.Mesh {
		m := egrid(t, 6)
		out, _, err := Adapt(m, metric.Analytic(m, f), Options{
			Workers:  workers,
			Pool:     pool,
			Resample: f,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(1, nil)
	pool := delaunay.NewWorkerPool(3)
	defer pool.Close()
	for _, w := range []int{2, 4, 7} {
		got := run(w, nil)
		if !reflect.DeepEqual(ref.Points, got.Points) || !reflect.DeepEqual(ref.Triangles, got.Triangles) {
			t.Fatalf("workers=%d: adapted mesh differs from sequential result", w)
		}
	}
	if got := run(0, pool); !reflect.DeepEqual(ref.Points, got.Points) || !reflect.DeepEqual(ref.Triangles, got.Triangles) {
		t.Fatal("pooled run differs from sequential result")
	}
}

// TestAdaptDistMatchesLocal runs the evaluation fan-out over an
// in-process world and demands the identical mesh.
func TestAdaptDistMatchesLocal(t *testing.T) {
	f, err := metric.ParseSpec("uniform:h=0.08")
	if err != nil {
		t.Fatal(err)
	}
	m := egrid(t, 5)
	ref, _, err := Adapt(m, metric.Analytic(m, f), Options{Resample: f})
	if err != nil {
		t.Fatal(err)
	}
	m2 := egrid(t, 5)
	got, res, err := Adapt(m2, metric.Analytic(m2, f), Options{Resample: f, Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Points, got.Points) || !reflect.DeepEqual(ref.Triangles, got.Triangles) {
		t.Fatalf("Ranks=3 mesh differs from local mesh (%d vs %d triangles)",
			got.NumTriangles(), ref.NumTriangles())
	}
	if res.Splits == 0 {
		t.Fatal("distributed run planned nothing")
	}
}

// TestAdaptConcurrent exercises the parallel evaluate/commit phases on a
// larger problem; under -race this is the engine's data-race gate.
func TestAdaptConcurrent(t *testing.T) {
	f, err := metric.ParseSpec("bl:x0=0,y0=0,x1=1,y1=0,hn=0.015,ht=0.12,grow=0.5")
	if err != nil {
		t.Fatal(err)
	}
	m := egrid(t, 10)
	out, res, err := Adapt(m, metric.Analytic(m, f), Options{
		Workers:  8,
		Resample: f,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Audit(); err != nil {
		t.Fatal(err)
	}
	if res.InBand < 0.85 {
		t.Fatalf("InBand = %.3f, want >= 0.85", res.InBand)
	}
}

func TestAdaptTracerMetrics(t *testing.T) {
	tr := trace.New(1)
	f := func(geom.Point) metric.M { return metric.Iso(0.1) }
	m := egrid(t, 4)
	if _, _, err := Adapt(m, metric.Analytic(m, f), Options{
		Resample: f, Tracer: tr, MaxSweeps: 3,
	}); err != nil {
		t.Fatal(err)
	}
	if tr.OpenSpans() != 0 {
		t.Fatalf("%d spans leaked", tr.OpenSpans())
	}
	if tr.Events() == 0 {
		t.Fatal("no trace events recorded")
	}
	snap := tr.Metrics().Snapshot()
	found := false
	for name := range snap.Counters {
		if name == "adapt.split" {
			found = true
		}
	}
	if !found {
		t.Fatalf("adapt.split counter missing from %v", snap.Counters)
	}
}

func TestAdaptInputErrors(t *testing.T) {
	m := egrid(t, 2)
	f := metric.Uniform(m, 0.5)
	if _, _, err := Adapt(m, f[:2], Options{}); err == nil {
		t.Fatal("field length mismatch accepted")
	}
	bad := append(metric.Field(nil), f...)
	bad[0] = metric.M{XX: -1, YY: 1}
	if _, _, err := Adapt(m, bad, Options{}); err == nil {
		t.Fatal("non-SPD tensor accepted")
	}
}

// TestAdaptNoOp: a mesh already in band must come back unchanged.
func TestAdaptNoOp(t *testing.T) {
	m := egrid(t, 4)
	f := metric.Uniform(m, 0.25) // exactly the grid pitch
	out, res, err := Adapt(m, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Sweeps != 1 {
		t.Fatalf("expected immediate convergence, got %+v", res)
	}
	if res.Splits+res.Collapses != 0 {
		t.Fatalf("no-op adaptation changed the mesh: %+v", res)
	}
	if out.NumTriangles() != m.NumTriangles() {
		t.Fatalf("triangle count changed: %d -> %d", m.NumTriangles(), out.NumTriangles())
	}
}

func TestPlanBatchCodecRoundTrip(t *testing.T) {
	in := &planBatch{
		Chunk: 7,
		Plans: []*opPlan{
			{
				Kind: opSplit, Prio: 2.5, T: 3, E: 1,
				Pos: geom.Pt(0.25, -1.5), Met: metric.Iso(0.1), Bnd: true,
				Cav: []int32{3},
				Pat: [2]patchRef{{T: 9, E: 2}, {T: -1, E: -1}},
			},
			{
				Kind: opCollapse, Prio: 11, T: 4, E: 0, V: 12, Keep: 13, NDy: 2,
				Cav: []int32{4, 5, 6, 7},
				Dy: [2]dyingRef{
					{D: 4, K: 20, R: 5, W: 14, KE: 1},
					{D: 7, K: -1, R: 6, W: 15, KE: -1},
				},
			},
			{
				Kind: opCollapse, Prio: 3, T: 8, E: 2, V: 21, Keep: 22, NDy: 2,
				Mid: true, Pos: geom.Pt(0.5, 0.75), Met: metric.FromSpacings(0.01, 0.1, geom.V(0, 1)),
				Cav: []int32{8, 9, 10, 11, 30},
				Dy: [2]dyingRef{
					{D: 8, K: 40, R: 9, W: 23, KE: 0},
					{D: 11, K: 41, R: 10, W: 24, KE: 2},
				},
			},
		},
	}
	b := encodePlanBatch(in, nil)
	if got, want := len(b), in.wireBytes(); got != want {
		t.Fatalf("encoded %d bytes, wireBytes claims %d", got, want)
	}
	ref, err := decodePlanBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	out := ref.(*planBatch)
	if out.Chunk != in.Chunk || len(out.Plans) != len(in.Plans) {
		t.Fatalf("round trip: %+v", out)
	}
	for i := range in.Plans {
		if !reflect.DeepEqual(*in.Plans[i], *out.Plans[i]) {
			t.Fatalf("plan %d round trip:\n in  %+v\n out %+v", i, *in.Plans[i], *out.Plans[i])
		}
	}
	// Malformed input must error, not panic.
	for cut := 0; cut < len(b); cut += 7 {
		if _, err := decodePlanBatch(b[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
	if _, err := decodePlanBatch(append(b, 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// TestIndicatorEdgeCases covers the isotropic indicator's degenerate
// inputs: a single-triangle mesh (no interior faces), zero-area cells,
// and a mismatched field length.
func TestIndicatorEdgeCases(t *testing.T) {
	b := mesh.NewBuilder()
	b.AddTriangle(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1))
	single := b.Mesh()
	eta, err := Indicator(single, []float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(eta) != 1 || eta[0] != 0 {
		t.Fatalf("single triangle: eta = %v, want [0]", eta)
	}

	if _, err := Indicator(single, []float64{1, 2}); err == nil {
		t.Fatal("mismatched field length accepted")
	}

	// Zero-area cell: the indicator must stay finite and the derived
	// sizing must respect its floor.
	deg := &mesh.Mesh{
		Points: []geom.Point{
			geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1), geom.Pt(0.5, 0),
		},
		Triangles: [][3]int32{{0, 1, 2}, {0, 1, 3}},
	}
	eta, err = Indicator(deg, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range eta {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("cell %d: indicator %v", i, v)
		}
	}
	sz, err := SizingFromIndicator(deg, eta, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if v := sz(geom.Pt(0.4, 0.1)); v <= 0 || math.IsNaN(v) {
		t.Fatalf("sizing at degenerate cell: %v", v)
	}
}
