package adapt

import (
	"math"
	"sync/atomic"

	"pamg2d/internal/geom"
	"pamg2d/internal/metric"
)

// opKind enumerates the cavity operators.
type opKind uint8

const (
	opSplit opKind = iota + 1
	opCollapse
	opSwap
	opSmooth
)

func (k opKind) String() string {
	switch k {
	case opSplit:
		return "split"
	case opCollapse:
		return "collapse"
	case opSwap:
		return "swap"
	case opSmooth:
		return "smooth"
	}
	return "?"
}

// qualityGain is the minimum improvement in the worst metric quality a
// swap or smooth must deliver; it keeps near-neutral operations from
// oscillating between sweeps.
const qualityGain = 1e-3

// patchRef names one neighbor-pointer word of a triangle outside the
// cavity that a commit must rewrite: tri[t].n[e]. The word index is
// recorded during evaluation (when topology is frozen and reads are
// safe) so commits write it directly without scanning — concurrent
// commits may own other words of the same triangle.
type patchRef struct {
	T int32
	E int8
}

// dyingRef describes one triangle a collapse deletes: the slot D, its
// third vertex W (besides the dying and surviving endpoints), the
// outside neighbor K across the (keep, w) edge with the index KE of K's
// pointer word back at D, and the ring neighbor R across the (w, die)
// edge. After the collapse K and R become mutual neighbors.
type dyingRef struct {
	D, K, R, W int32
	KE         int8
}

// opPlan is one evaluated cavity operation. The evaluation phase fills
// everything except newV/slots (assigned at selection for splits).
// Cav lists the triangles the commit rewrites or deletes. Selection
// claims every vertex of every cavity triangle: operations with
// disjoint cavity vertex sets read and write disjoint coordinates,
// create distinct edges, and touch distinct neighbor-pointer words, so
// their commits are independent (see engine.selectPlans).
type opPlan struct {
	Kind opKind
	Prio float64    // selection priority, larger first
	T    int32      // anchor triangle (split/collapse/swap)
	E    int8       // anchor edge in T
	V    int32      // collapse: dying vertex; smooth: moved vertex
	Keep int32      // collapse: surviving vertex
	Pos  geom.Point // split: new point; smooth: new position
	Met  metric.M   // metric at Pos
	Bnd  bool       // split of a boundary edge
	Mid  bool       // collapse onto the edge midpoint (keep moves to Pos)
	Cav  []int32
	Pat  [2]patchRef // split/swap: outside back-pointer words
	Dy   [2]dyingRef // collapse: deleted triangles
	NDy  int8        // collapse: how many triangles die (1 or 2)

	newV  int32
	slots [2]int32
}

// edgeVerts returns the endpoints of anchor edge e of triangle t.
func (tp *topo) edgeVerts(t int32, e int) (int32, int32) {
	return tp.tri[t].v[e], tp.tri[t].v[(e+1)%3]
}

// nbrEdge returns the index of h's neighbor word referencing x, or -1.
func (tp *topo) nbrEdge(h, x int32) int8 {
	if h < 0 {
		return -1
	}
	for e := int8(0); e < 3; e++ {
		if tp.tri[h].n[e] == x {
			return e
		}
	}
	return -1
}

func (e *engine) storeVtri(v, t int32) {
	atomic.StoreInt32(&e.tp.vtri[v], t)
}

// patch writes one recorded back-pointer word.
func (e *engine) patch(p patchRef, val int32) {
	if p.T >= 0 {
		e.tp.tri[p.T].n[p.E] = val
	}
}

// --- split ---------------------------------------------------------------

// evalSplit plans the midpoint split of edge ei of triangle t when its
// metric length exceeds band. The metric at the new vertex comes from
// Options.Resample (analytic fields) or the log-Euclidean mean of the
// endpoints.
func (e *engine) evalSplit(t int32, ei int) *opPlan {
	tp := e.tp
	a, b := tp.edgeVerts(t, ei)
	l := tp.edgeLen(a, b)
	if l <= e.opt.Band {
		return nil
	}
	mid := tp.pts[a].Mid(tp.pts[b])
	var mm metric.M
	if e.opt.Resample != nil {
		mm = e.opt.Resample(mid)
	} else {
		mm = metric.Interp(tp.met[a], tp.met[b], 0.5)
	}
	r := tp.tri[t]
	c := r.v[(ei+2)%3]
	n := r.n[ei]
	// The two (or four) children must be strictly CCW.
	if geom.Orient2DSign(tp.pts[a], mid, tp.pts[c]) <= 0 ||
		geom.Orient2DSign(mid, tp.pts[b], tp.pts[c]) <= 0 {
		return nil
	}
	p := &opPlan{Kind: opSplit, Prio: l, T: t, E: int8(ei), Pos: mid, Met: mm}
	p.Cav = append(p.Cav, t)
	tBC := r.n[(ei+1)%3]
	p.Pat[0] = patchRef{T: tBC, E: tp.nbrEdge(tBC, t)}
	p.Pat[1] = patchRef{T: -1}
	if n < 0 {
		p.Bnd = true
		return p
	}
	en := tp.find(n, b) // edge (b, a) in the neighbor
	if en < 0 || tp.tri[n].v[(en+1)%3] != a {
		return nil // non-manifold adjacency; leave it to the audit
	}
	d := tp.tri[n].v[(en+2)%3]
	if geom.Orient2DSign(tp.pts[b], mid, tp.pts[d]) <= 0 ||
		geom.Orient2DSign(mid, tp.pts[a], tp.pts[d]) <= 0 {
		return nil
	}
	p.Cav = append(p.Cav, n)
	nAD := tp.tri[n].n[(en+1)%3]
	p.Pat[1] = patchRef{T: nAD, E: tp.nbrEdge(nAD, n)}
	return p
}

// commitSplit replaces the one or two cavity triangles of a planned
// split with the midpoint children. Slot layout: the a-side child keeps
// slot T and the b-side child takes slots[0]; across the edge the
// b-side child keeps slot n and the a-side child takes slots[1].
func (e *engine) commitSplit(p *opPlan) {
	tp := e.tp
	t := p.T
	ei := int(p.E)
	r := tp.tri[t] // copy: the slot is overwritten below
	a, b := r.v[ei], r.v[(ei+1)%3]
	c := r.v[(ei+2)%3]
	m := p.newV
	tBC := r.n[(ei+1)%3]
	tCA := r.n[(ei+2)%3]
	s1 := p.slots[0]

	if p.Bnd {
		tp.tri[t] = triRec{v: [3]int32{a, m, c}, n: [3]int32{-1, s1, tCA}}
		tp.tri[s1] = triRec{v: [3]int32{m, b, c}, n: [3]int32{-1, tBC, t}}
		e.patch(p.Pat[0], s1) // tBC: t → s1
		e.storeVtri(a, t)
		e.storeVtri(b, s1)
		e.storeVtri(c, t)
		e.storeVtri(m, t)
		return
	}

	n := r.n[ei]
	en := tp.find(n, b)
	d := tp.tri[n].v[(en+2)%3]
	nDB := tp.tri[n].n[(en+2)%3]
	s2 := p.slots[1]

	tp.tri[t] = triRec{v: [3]int32{a, m, c}, n: [3]int32{s2, s1, tCA}}
	tp.tri[s1] = triRec{v: [3]int32{m, b, c}, n: [3]int32{n, tBC, t}}
	nAD := tp.tri[n].n[(en+1)%3]
	tp.tri[n] = triRec{v: [3]int32{b, m, d}, n: [3]int32{s1, s2, nDB}}
	tp.tri[s2] = triRec{v: [3]int32{m, a, d}, n: [3]int32{t, nAD, n}}
	e.patch(p.Pat[0], s1) // tBC: t → s1
	e.patch(p.Pat[1], s2) // nAD: n → s2
	e.storeVtri(a, t)
	e.storeVtri(b, s1)
	e.storeVtri(c, t)
	e.storeVtri(d, s2)
	e.storeVtri(m, t)
}

// --- collapse ------------------------------------------------------------

// evalCollapse plans the contraction of edge ei of triangle t when its
// metric length is below 1/band. Candidate forms are tried in order
// until one validates: contract onto either endpoint (interior endpoints
// die in preference to boundary ones), then — for fully interior edges —
// contract onto the edge midpoint, which halves the created edge lengths
// when both endpoint contractions would leave an overlong edge. A
// boundary vertex may only die into its boundary neighbor when it lies
// strictly between its two boundary neighbors on an exactly straight
// segment, so the domain shape never changes. s1 and s2 are ring scratch
// buffers.
func (e *engine) evalCollapse(t int32, ei int, s1, s2 []int32) *opPlan {
	tp := e.tp
	a, b := tp.edgeVerts(t, ei)
	l := tp.edgeLen(a, b)
	if l >= 1/e.opt.Band {
		return nil
	}
	prio := 1 / math.Max(l, 1e-300)
	type cand struct {
		die, keep int32
		mid       bool
	}
	var cands [4]cand
	nc := 0
	switch {
	case !tp.vb[a] && !tp.vb[b]:
		cands[0] = cand{a, b, false}
		cands[1] = cand{b, a, false}
		cands[2] = cand{a, b, true}
		cands[3] = cand{b, a, true}
		nc = 4
	case !tp.vb[a]:
		cands[0] = cand{a, b, false}
		nc = 1
	case !tp.vb[b]:
		cands[0] = cand{b, a, false}
		nc = 1
	case tp.tri[t].n[ei] < 0:
		// Both endpoints on the boundary and the edge itself a boundary
		// edge: either endpoint may die, but only along an exactly
		// straight boundary. (A chord between two boundary vertices can
		// never collapse.)
		for _, d := range [2][2]int32{{a, b}, {b, a}} {
			if e.collinearBoundary(d[0], d[1], s1) {
				cands[nc] = cand{d[0], d[1], false}
				nc++
			}
		}
	}
	for i := 0; i < nc; i++ {
		if p := e.tryCollapse(t, ei, prio, cands[i].die, cands[i].keep, cands[i].mid, s1, s2); p != nil {
			return p
		}
	}
	return nil
}

// tryCollapse validates one contraction form (die onto keep, which stays
// put or — mid — moves to the edge midpoint) and builds its plan, or
// returns nil.
func (e *engine) tryCollapse(t int32, ei int, prio float64, die, keep int32, mid bool, s1, s2 []int32) *opPlan {
	tp := e.tp
	ring, interior := tp.ring(die, s1)
	wantDying := 2
	if !interior {
		wantDying = 1
	}
	if len(ring) < wantDying+1 {
		return nil // nothing would survive to hold keep
	}
	p := &opPlan{Kind: opCollapse, Prio: prio, T: t, E: int8(ei), V: die, Keep: keep}
	keepPos, keepMet := tp.pts[keep], tp.met[keep]
	if mid {
		keepPos = tp.pts[die].Mid(tp.pts[keep])
		if e.opt.Resample != nil {
			keepMet = e.opt.Resample(keepPos)
		} else {
			keepMet = metric.Interp(tp.met[die], tp.met[keep], 0.5)
		}
		p.Mid, p.Pos, p.Met = true, keepPos, keepMet
	}
	// Gather die's neighbor vertices and the dying triangles, and check
	// every rewritten triangle stays strictly CCW.
	var dieNbrs [2 * maxRing]int32
	dying, nd := 0, 0
	addNbr := func(v int32) {
		for i := 0; i < nd; i++ {
			if dieNbrs[i] == v {
				return
			}
		}
		dieNbrs[nd] = v
		nd++
	}
	for _, rt := range ring {
		p.Cav = append(p.Cav, rt)
		r := tp.tri[rt]
		if tp.find(rt, keep) >= 0 {
			if dying >= wantDying {
				return nil
			}
			dr := dyingRef{D: rt, K: -1, R: -1}
			for _, v := range r.v {
				if v != die && v != keep {
					dr.W = v
					// The edge not containing die leads outside (K); the
					// edge not containing keep leads to the ring (R).
					for y := 0; y < 3; y++ {
						u, w := r.v[y], r.v[(y+1)%3]
						if u != die && w != die {
							dr.K = r.n[y]
						}
						if u != keep && w != keep {
							dr.R = r.n[y]
						}
					}
				}
				if v != die {
					addNbr(v)
				}
			}
			dr.KE = tp.nbrEdge(dr.K, rt)
			p.Dy[dying] = dr
			dying++
			continue
		}
		var q [3]geom.Point
		for i, v := range r.v {
			if v == die {
				q[i] = keepPos
			} else {
				q[i] = tp.pts[v]
				addNbr(v)
			}
		}
		if geom.Orient2DSign(q[0], q[1], q[2]) <= 0 {
			return nil
		}
	}
	if dying != wantDying {
		return nil
	}
	p.NDy = int8(wantDying)
	isW := func(v int32) bool {
		return v == p.Dy[0].W || (wantDying == 2 && v == p.Dy[1].W)
	}
	// New edges from keep must stay below the split threshold, so a
	// collapse never creates work for the next split pass. When keep
	// moves to the midpoint its surviving W edges change length too, so
	// they are re-measured rather than skipped.
	for i := 0; i < nd; i++ {
		v := dieNbrs[i]
		if v == keep || (!mid && isW(v)) {
			continue // existing edges, unchanged by the collapse
		}
		if metric.EdgeLen(keepPos, tp.pts[v], keepMet, tp.met[v]) >= e.opt.Band {
			return nil
		}
	}
	// Link condition: a vertex adjacent to both die and keep must be a
	// dying triangle's third vertex; any other common neighbor would
	// pinch the contraction into a non-manifold bowtie. A moving keep
	// additionally requires its surviving ring triangles to stay strictly
	// CCW, its existing edges to stay short enough, and the triangles
	// join the cavity (the commit changes their shape).
	keepRing, _ := tp.ring(keep, s2)
	if len(keepRing) == 0 {
		return nil
	}
	for _, kt := range keepRing {
		r := tp.tri[kt]
		dyingTri := tp.find(kt, die) >= 0
		for _, v := range r.v {
			if v == keep || v == die || isW(v) {
				continue
			}
			for i := 0; i < nd; i++ {
				if dieNbrs[i] == v {
					return nil
				}
			}
		}
		if !mid || dyingTri {
			continue
		}
		var q [3]geom.Point
		for i, v := range r.v {
			if v == keep {
				q[i] = keepPos
			} else {
				q[i] = tp.pts[v]
				if metric.EdgeLen(keepPos, tp.pts[v], keepMet, tp.met[v]) >= e.opt.Band {
					return nil
				}
			}
		}
		if geom.Orient2DSign(q[0], q[1], q[2]) <= 0 {
			return nil
		}
		p.Cav = append(p.Cav, kt)
	}
	return p
}

// collinearBoundary reports whether boundary vertex die lies strictly
// between its two boundary neighbors on an exactly straight segment and
// keep is one of those neighbors.
func (e *engine) collinearBoundary(die, keep int32, scratch []int32) bool {
	tp := e.tp
	ring, interior := tp.ring(die, scratch)
	if interior || len(ring) == 0 {
		return false
	}
	// In an open CCW fan the boundary neighbors are the first triangle's
	// CCW-next vertex and the last triangle's CCW-prev vertex.
	first, last := ring[0], ring[len(ring)-1]
	i0 := tp.find(first, die)
	i1 := tp.find(last, die)
	if i0 < 0 || i1 < 0 {
		return false
	}
	n0 := tp.tri[first].v[(i0+1)%3] // along the boundary, CW side
	n1 := tp.tri[last].v[(i1+2)%3]  // along the boundary, CCW side
	if n0 != keep && n1 != keep {
		return false
	}
	z := n0
	if z == keep {
		z = n1
	}
	if geom.Orient2DSign(tp.pts[z], tp.pts[die], tp.pts[keep]) != 0 {
		return false
	}
	// Strictly between: the segments z→die and die→keep point the same
	// way.
	return tp.pts[die].Sub(tp.pts[z]).Dot(tp.pts[keep].Sub(tp.pts[die])) > 0
}

// commitCollapse contracts die onto keep: ring triangles containing
// keep die, the rest are rewritten in place with die replaced by keep,
// and adjacency across each dying triangle is stitched between its two
// surviving neighbors. The dying slots are recycled by the sequential
// post-commit phase.
func (e *engine) commitCollapse(p *opPlan) {
	tp := e.tp
	die, keep := p.V, p.Keep
	if p.Mid {
		tp.pts[keep] = p.Pos
		tp.met[keep] = p.Met
	}
	dying := func(rt int32) bool {
		for i := 0; i < int(p.NDy); i++ {
			if p.Dy[i].D == rt {
				return true
			}
		}
		return false
	}
	var survivor int32 = -1
	for _, rt := range p.Cav {
		if dying(rt) {
			continue
		}
		r := &tp.tri[rt]
		for i := range r.v {
			if r.v[i] == die {
				r.v[i] = keep
			}
		}
		if survivor < 0 {
			survivor = rt
		}
	}
	for i := 0; i < int(p.NDy); i++ {
		dr := p.Dy[i]
		if dr.R >= 0 {
			// R is ours (cavity): scanning its words is single-writer.
			tp.setNeighbor(dr.R, dr.D, dr.K)
		}
		if dr.K >= 0 {
			tp.tri[dr.K].n[dr.KE] = dr.R
		}
		if atomic.LoadInt32(&tp.vtri[dr.W]) == dr.D {
			tgt := dr.R
			if tgt < 0 {
				tgt = dr.K
			}
			e.storeVtri(dr.W, tgt)
		}
	}
	e.storeVtri(keep, survivor)
	atomic.StoreInt32(&tp.vtri[die], -1)
}

// --- swap ----------------------------------------------------------------

// evalSwap plans the diagonal flip of interior edge ei of triangle t
// when the flip strictly improves the worse metric quality of the pair.
func (e *engine) evalSwap(t int32, ei int) *opPlan {
	tp := e.tp
	r := tp.tri[t]
	n := r.n[ei]
	if n < 0 {
		return nil
	}
	a, b := r.v[ei], r.v[(ei+1)%3]
	c := r.v[(ei+2)%3]
	en := tp.find(n, b)
	if en < 0 || tp.tri[n].v[(en+1)%3] != a {
		return nil
	}
	d := tp.tri[n].v[(en+2)%3]
	pa, pb, pc, pd := tp.pts[a], tp.pts[b], tp.pts[c], tp.pts[d]
	// The flipped pair must be strictly CCW (quad convexity).
	if geom.Orient2DSign(pa, pd, pc) <= 0 || geom.Orient2DSign(pd, pb, pc) <= 0 {
		return nil
	}
	ma, mb, mc, md := tp.met[a], tp.met[b], tp.met[c], tp.met[d]
	qOld := math.Min(metric.TriQuality(pa, pb, pc, ma, mb, mc),
		metric.TriQuality(pb, pa, pd, mb, ma, md))
	qNew := math.Min(metric.TriQuality(pa, pd, pc, ma, md, mc),
		metric.TriQuality(pd, pb, pc, md, mb, mc))
	if qNew <= qOld+qualityGain {
		return nil
	}
	p := &opPlan{Kind: opSwap, Prio: qNew - qOld, T: t, E: int8(ei)}
	p.Cav = append(p.Cav, t, n)
	nAD := tp.tri[n].n[(en+1)%3]
	tBC := r.n[(ei+1)%3]
	p.Pat[0] = patchRef{T: nAD, E: tp.nbrEdge(nAD, n)}
	p.Pat[1] = patchRef{T: tBC, E: tp.nbrEdge(tBC, t)}
	return p
}

// commitSwap flips the diagonal: t = (a,b,c) and n = (b,a,d) become
// (a,d,c) in slot t and (d,b,c) in slot n.
func (e *engine) commitSwap(p *opPlan) {
	tp := e.tp
	t := p.T
	ei := int(p.E)
	r := tp.tri[t]
	a, b := r.v[ei], r.v[(ei+1)%3]
	c := r.v[(ei+2)%3]
	n := r.n[ei]
	en := tp.find(n, b)
	d := tp.tri[n].v[(en+2)%3]
	tBC := r.n[(ei+1)%3]
	tCA := r.n[(ei+2)%3]
	nAD := tp.tri[n].n[(en+1)%3]
	nDB := tp.tri[n].n[(en+2)%3]

	tp.tri[t] = triRec{v: [3]int32{a, d, c}, n: [3]int32{nAD, n, tCA}}
	tp.tri[n] = triRec{v: [3]int32{d, b, c}, n: [3]int32{nDB, tBC, t}}
	e.patch(p.Pat[0], t) // nAD: n → t
	e.patch(p.Pat[1], n) // tBC: t → n
	e.storeVtri(a, t)
	e.storeVtri(b, n)
	e.storeVtri(c, t)
	e.storeVtri(d, t)
}

// --- smooth --------------------------------------------------------------

// evalSmooth plans a metric-weighted Laplacian move of interior vertex
// v: the target is the neighbor average weighted by metric edge length
// (overlong directions pull harder), damped halfway, accepted only when
// every ring triangle stays strictly CCW and the worst ring quality
// strictly improves.
func (e *engine) evalSmooth(v int32, scratch []int32) *opPlan {
	tp := e.tp
	if tp.vb[v] || tp.vtri[v] < 0 {
		return nil
	}
	ring, interior := tp.ring(v, scratch)
	if !interior || len(ring) < 3 {
		return nil
	}
	var sx, sy, wsum float64
	qOld := math.Inf(1)
	for _, rt := range ring {
		i := tp.find(rt, v)
		nb := tp.tri[rt].v[(i+1)%3]
		w := tp.edgeLen(v, nb)
		sx += w * tp.pts[nb].X
		sy += w * tp.pts[nb].Y
		wsum += w
		qOld = math.Min(qOld, tp.triQuality(rt))
	}
	if wsum <= 0 {
		return nil
	}
	target := geom.Pt(sx/wsum, sy/wsum)
	pos := tp.pts[v].Lerp(target, 0.5)
	if pos == tp.pts[v] {
		return nil
	}
	mm := tp.met[v]
	if e.opt.Resample != nil {
		mm = e.opt.Resample(pos)
	}
	qNew := math.Inf(1)
	for _, rt := range ring {
		r := tp.tri[rt]
		var q [3]geom.Point
		var ms [3]metric.M
		for i, vv := range r.v {
			if vv == v {
				q[i], ms[i] = pos, mm
			} else {
				q[i], ms[i] = tp.pts[vv], tp.met[vv]
			}
		}
		if geom.Orient2DSign(q[0], q[1], q[2]) <= 0 {
			return nil
		}
		qNew = math.Min(qNew, metric.TriQuality(q[0], q[1], q[2], ms[0], ms[1], ms[2]))
	}
	if qNew <= qOld+qualityGain {
		return nil
	}
	p := &opPlan{Kind: opSmooth, Prio: qNew - qOld, T: -1, V: v, Pos: pos, Met: mm}
	p.Cav = append([]int32(nil), ring...)
	return p
}

// commitSmooth moves the vertex. The vertex claim over its full ring
// guarantees nobody concurrently reads the old coordinates.
func (e *engine) commitSmooth(p *opPlan) {
	e.tp.pts[p.V] = p.Pos
	e.tp.met[p.V] = p.Met
}
