package adapt

import (
	"fmt"

	"pamg2d/internal/geom"
	"pamg2d/internal/mesh"
	"pamg2d/internal/metric"
)

// triRec is one editable triangle: CCW vertex indices and the neighbor
// across each edge e (the edge running v[e] → v[(e+1)%3]; -1 = domain
// boundary). Dead records live in the free list until a split reuses
// them.
type triRec struct {
	v    [3]int32
	n    [3]int32
	dead bool
}

// topo is the editable half-edge-free mesh representation the cavity
// operators work on: triangle soup with explicit adjacency, a
// vertex→incident-triangle map, boundary-vertex flags, and a free list
// of dead triangle slots. It is built once per Adapt call from an
// immutable mesh.Mesh and extracted back at the end.
type topo struct {
	pts  []geom.Point
	met  []metric.M // per-vertex metric, grown alongside pts
	vb   []bool     // vertex lies on the domain boundary
	vtri []int32    // some live triangle incident to the vertex, -1 when dead
	tri  []triRec
	free []int32
	live int
}

// maxRing bounds ring walks; a walk longer than this means corrupted
// adjacency, not a real vertex star.
const maxRing = 1024

func newTopo(m *mesh.Mesh, f metric.Field) (*topo, error) {
	if len(f) != len(m.Points) {
		return nil, fmt.Errorf("adapt: %d metric tensors for %d vertices", len(f), len(m.Points))
	}
	if err := m.Audit(); err != nil {
		return nil, fmt.Errorf("adapt: input mesh: %w", err)
	}
	adj := m.Adjacency()
	tp := &topo{
		pts:  append([]geom.Point(nil), m.Points...),
		met:  append(metric.Field(nil), f...),
		vb:   make([]bool, len(m.Points)),
		vtri: make([]int32, len(m.Points)),
		tri:  make([]triRec, len(m.Triangles)),
		live: len(m.Triangles),
	}
	for i := range tp.vtri {
		tp.vtri[i] = -1
	}
	for i, t := range m.Triangles {
		tp.tri[i] = triRec{v: t, n: adj[i]}
		for e := 0; e < 3; e++ {
			tp.vtri[t[e]] = int32(i)
			if adj[i][e] < 0 {
				tp.vb[t[e]] = true
				tp.vb[t[(e+1)%3]] = true
			}
		}
	}
	for v, t := range tp.vtri {
		if t < 0 {
			return nil, fmt.Errorf("adapt: vertex %d has no incident triangle", v)
		}
	}
	return tp, nil
}

// mesh extracts the live triangles into a fresh compact mesh, dropping
// dead triangle slots and unreferenced vertices. Vertex order is
// preserved (surviving original vertices first, then insertion order),
// so extraction is deterministic.
func (tp *topo) mesh() *mesh.Mesh {
	remap := make([]int32, len(tp.pts))
	for i := range remap {
		remap[i] = -1
	}
	out := &mesh.Mesh{}
	used := 0
	for i := range tp.tri {
		if tp.tri[i].dead {
			continue
		}
		used++
		for _, v := range tp.tri[i].v {
			if remap[v] < 0 {
				remap[v] = int32(len(out.Points))
				out.Points = append(out.Points, tp.pts[v])
			}
		}
	}
	out.Triangles = make([][3]int32, 0, used)
	for i := range tp.tri {
		if tp.tri[i].dead {
			continue
		}
		t := tp.tri[i].v
		out.Triangles = append(out.Triangles, [3]int32{remap[t[0]], remap[t[1]], remap[t[2]]})
	}
	return out
}

// find returns the index of vertex v in triangle t, or -1.
func (tp *topo) find(t, v int32) int {
	for i := 0; i < 3; i++ {
		if tp.tri[t].v[i] == v {
			return i
		}
	}
	return -1
}

// setNeighbor rewrites the neighbor pointer of t that references old to
// new. Missing old is a topology corruption; callers guarantee it.
func (tp *topo) setNeighbor(t, old, new int32) {
	if t < 0 {
		return
	}
	r := &tp.tri[t]
	for e := 0; e < 3; e++ {
		if r.n[e] == old {
			r.n[e] = new
			return
		}
	}
}

// ring collects the triangles around vertex v into out, in CCW order.
// For boundary vertices the fan is anchored at the clockwise-most
// triangle, which makes the order unique; interior rings are rotated so
// the smallest triangle index comes first, so the order is independent
// of which incident triangle vtri happens to hold (and therefore of
// commit scheduling in earlier passes). The second result is false on a
// corrupted or oversized star.
func (tp *topo) ring(v int32, out []int32) ([]int32, bool) {
	out = out[:0]
	t0 := tp.vtri[v]
	if t0 < 0 || tp.tri[t0].dead {
		return out, false
	}
	// Rotate clockwise to the boundary (or all the way around).
	anchor := t0
	interior := false
	for i := 0; ; i++ {
		if i >= maxRing {
			return out, false
		}
		ii := tp.find(anchor, v)
		if ii < 0 {
			return out, false
		}
		prev := tp.tri[anchor].n[ii] // across edge (v, next): the CW neighbor
		if prev < 0 {
			break
		}
		if prev == t0 {
			anchor = t0
			interior = true
			break
		}
		anchor = prev
	}
	// Collect counterclockwise from the anchor.
	cur := anchor
	for {
		if len(out) >= maxRing {
			return out, false
		}
		out = append(out, cur)
		ii := tp.find(cur, v)
		if ii < 0 {
			return out, false
		}
		next := tp.tri[cur].n[(ii+2)%3] // across edge (prev, v): the CCW neighbor
		if next < 0 || next == anchor {
			break
		}
		cur = next
	}
	if interior && len(out) > 1 {
		// Canonical start: smallest triangle index.
		lo := 0
		for i := 1; i < len(out); i++ {
			if out[i] < out[lo] {
				lo = i
			}
		}
		if lo > 0 {
			rotated := append(out[len(out):], out[lo:]...)
			rotated = append(rotated, out[:lo]...)
			copy(out, rotated)
		}
	}
	return out, interior
}

// addVertex appends a vertex and returns its index.
func (tp *topo) addVertex(p geom.Point, m metric.M, boundary bool) int32 {
	v := int32(len(tp.pts))
	tp.pts = append(tp.pts, p)
	tp.met = append(tp.met, m)
	tp.vb = append(tp.vb, boundary)
	tp.vtri = append(tp.vtri, -1)
	return v
}

// allocSlot returns a dead slot to reuse or appends a fresh one. The
// slot is returned still marked dead; the commit writing it flips it
// live.
func (tp *topo) allocSlot() int32 {
	tp.live++
	if n := len(tp.free); n > 0 {
		s := tp.free[n-1]
		tp.free = tp.free[:n-1]
		return s
	}
	tp.tri = append(tp.tri, triRec{dead: true})
	return int32(len(tp.tri) - 1)
}

// freeSlot marks a slot dead and recycles it. Only the sequential
// post-commit phase calls this.
func (tp *topo) freeSlot(s int32) {
	tp.tri[s].dead = true
	tp.live--
	tp.free = append(tp.free, s)
}

// edgeLen returns the metric length of the mesh edge p–q.
func (tp *topo) edgeLen(p, q int32) float64 {
	return metric.EdgeLen(tp.pts[p], tp.pts[q], tp.met[p], tp.met[q])
}

// triQuality returns the metric shape quality of triangle t.
func (tp *topo) triQuality(t int32) float64 {
	v := tp.tri[t].v
	return metric.TriQuality(tp.pts[v[0]], tp.pts[v[1]], tp.pts[v[2]],
		tp.met[v[0]], tp.met[v[1]], tp.met[v[2]])
}
