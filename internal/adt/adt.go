// Package adt implements the Alternating Digital Tree of Bonet & Peraire
// (1991) for geometric searching. In two dimensions a segment's axis-aligned
// extent box (xmin, ymin, xmax, ymax) is treated as a point in a
// four-dimensional unit hypercube; extent-box overlap queries become
// hyper-rectangular range searches, answered in O(log n) expected time per
// query. The paper uses the ADT as the second stage of its hierarchical
// intersection pruning, after the Cohen–Sutherland AABB pass.
package adt

import "pamg2d/internal/geom"

// Dims is the dimensionality of the digital tree: 2-D extent boxes become
// 4-D points.
const Dims = 4

// Key is a point in the 4-D extent space: (xmin, ymin, xmax, ymax).
type Key [Dims]float64

// KeyOf returns the 4-D key of a 2-D extent box.
func KeyOf(b geom.BBox) Key {
	return Key{b.Min.X, b.Min.Y, b.Max.X, b.Max.Y}
}

// KeyOfSegment returns the 4-D key of a segment's extent box.
func KeyOfSegment(s geom.Segment) Key {
	return KeyOf(s.BBox())
}

type node struct {
	key         Key
	id          int
	left, right *node
}

// Tree is an alternating digital tree over 4-D points. The tree is built
// for a fixed root region (the extent space of the whole dataset); points
// inserted outside the root region are still stored correctly but degrade
// balance.
type Tree struct {
	root   *node
	lo, hi Key
	size   int
}

// New creates a tree whose root region is the given extent-space bounds.
// The bounds of the region along dimensions 0..3 are [lo[i], hi[i]].
func New(lo, hi Key) *Tree {
	for i := 0; i < Dims; i++ {
		if hi[i] <= lo[i] {
			hi[i] = lo[i] + 1 // guard against degenerate regions
		}
	}
	return &Tree{lo: lo, hi: hi}
}

// NewForBox creates a tree sized for extent boxes contained in the 2-D
// world box b: dimensions 0 and 2 span b's x range, 1 and 3 its y range.
func NewForBox(b geom.BBox) *Tree {
	return New(
		Key{b.Min.X, b.Min.Y, b.Min.X, b.Min.Y},
		Key{b.Max.X, b.Max.Y, b.Max.X, b.Max.Y},
	)
}

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.size }

// Insert stores key k with payload id.
func (t *Tree) Insert(k Key, id int) {
	t.size++
	nn := &node{key: k, id: id}
	if t.root == nil {
		t.root = nn
		return
	}
	lo, hi := t.lo, t.hi
	cur := t.root
	for depth := 0; ; depth++ {
		dim := depth % Dims
		mid := (lo[dim] + hi[dim]) / 2
		if k[dim] < mid {
			hi[dim] = mid
			if cur.left == nil {
				cur.left = nn
				return
			}
			cur = cur.left
		} else {
			lo[dim] = mid
			if cur.right == nil {
				cur.right = nn
				return
			}
			cur = cur.right
		}
	}
}

// InsertBox stores a 2-D extent box with payload id.
func (t *Tree) InsertBox(b geom.BBox, id int) { t.Insert(KeyOf(b), id) }

// Range reports, via visit, the ids of all stored keys k with
// qlo[i] <= k[i] <= qhi[i] for every dimension i. Returning false from
// visit stops the search early.
func (t *Tree) Range(qlo, qhi Key, visit func(id int) bool) {
	t.search(t.root, t.lo, t.hi, 0, qlo, qhi, visit)
}

func (t *Tree) search(n *node, lo, hi Key, depth int, qlo, qhi Key, visit func(int) bool) bool {
	if n == nil {
		return true
	}
	inside := true
	for i := 0; i < Dims; i++ {
		if n.key[i] < qlo[i] || n.key[i] > qhi[i] {
			inside = false
			break
		}
	}
	if inside && !visit(n.id) {
		return false
	}
	dim := depth % Dims
	mid := (lo[dim] + hi[dim]) / 2
	// Left child region: [lo, hi with hi[dim]=mid]. Visit if it overlaps
	// the query range along dim.
	if n.left != nil && qlo[dim] < mid {
		nhi := hi
		nhi[dim] = mid
		if !t.search(n.left, lo, nhi, depth+1, qlo, qhi, visit) {
			return false
		}
	}
	if n.right != nil && qhi[dim] >= mid {
		nlo := lo
		nlo[dim] = mid
		if !t.search(n.right, nlo, hi, depth+1, qlo, qhi, visit) {
			return false
		}
	}
	return true
}

// Overlapping returns the ids of all stored extent boxes that overlap the
// query box q (boundaries count). A stored box P overlaps q iff
// P.xmin <= q.xmax, P.xmax >= q.xmin, P.ymin <= q.ymax and P.ymax >= q.ymin;
// expressed as a 4-D range query this is
//
//	xmin in [-inf, q.xmax], ymin in [-inf, q.ymax],
//	xmax in [q.xmin, +inf], ymax in [q.ymin, +inf],
//
// clipped to the root region.
func (t *Tree) Overlapping(q geom.BBox) []int {
	var out []int
	t.VisitOverlapping(q, func(id int) bool {
		out = append(out, id)
		return true
	})
	return out
}

// VisitOverlapping is like Overlapping but streams ids through visit;
// returning false stops the search.
func (t *Tree) VisitOverlapping(q geom.BBox, visit func(id int) bool) {
	qlo := Key{t.lo[0], t.lo[1], q.Min.X, q.Min.Y}
	qhi := Key{q.Max.X, q.Max.Y, t.hi[2], t.hi[3]}
	// Extend the open sides beyond the root region so boxes inserted
	// slightly outside it are still found.
	const slack = 1e30
	qlo[0], qlo[1] = -slack, -slack
	qhi[2], qhi[3] = slack, slack
	t.Range(qlo, qhi, visit)
}
