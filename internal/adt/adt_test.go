package adt

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pamg2d/internal/geom"
)

func randBox(rng *rand.Rand, world geom.BBox, maxSize float64) geom.BBox {
	w, h := world.Width(), world.Height()
	x := world.Min.X + rng.Float64()*w
	y := world.Min.Y + rng.Float64()*h
	return geom.BBox{
		Min: geom.Pt(x, y),
		Max: geom.Pt(x+rng.Float64()*maxSize, y+rng.Float64()*maxSize),
	}
}

func TestEmptyTree(t *testing.T) {
	tr := NewForBox(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)})
	if tr.Len() != 0 {
		t.Error("new tree must be empty")
	}
	if got := tr.Overlapping(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}); len(got) != 0 {
		t.Errorf("query on empty tree: %v", got)
	}
}

func TestSingleBox(t *testing.T) {
	world := geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(10, 10)}
	tr := NewForBox(world)
	b := geom.BBox{Min: geom.Pt(2, 2), Max: geom.Pt(4, 4)}
	tr.InsertBox(b, 7)
	if got := tr.Overlapping(geom.BBox{Min: geom.Pt(3, 3), Max: geom.Pt(5, 5)}); len(got) != 1 || got[0] != 7 {
		t.Errorf("overlapping query: %v, want [7]", got)
	}
	if got := tr.Overlapping(geom.BBox{Min: geom.Pt(5, 5), Max: geom.Pt(6, 6)}); len(got) != 0 {
		t.Errorf("disjoint query: %v, want []", got)
	}
	// Touching boundaries count.
	if got := tr.Overlapping(geom.BBox{Min: geom.Pt(4, 4), Max: geom.Pt(6, 6)}); len(got) != 1 {
		t.Errorf("touching query: %v, want [7]", got)
	}
}

func TestDuplicateKeys(t *testing.T) {
	world := geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(10, 10)}
	tr := NewForBox(world)
	b := geom.BBox{Min: geom.Pt(1, 1), Max: geom.Pt(2, 2)}
	for i := 0; i < 10; i++ {
		tr.InsertBox(b, i)
	}
	got := tr.Overlapping(b)
	if len(got) != 10 {
		t.Errorf("duplicate keys: found %d of 10", len(got))
	}
}

func TestOverlappingMatchesBruteForce(t *testing.T) {
	world := geom.BBox{Min: geom.Pt(-5, -5), Max: geom.Pt(15, 15)}
	rng := rand.New(rand.NewSource(11))
	tr := NewForBox(world)
	boxes := make([]geom.BBox, 500)
	for i := range boxes {
		boxes[i] = randBox(rng, world, 3)
		tr.InsertBox(boxes[i], i)
	}
	for trial := 0; trial < 200; trial++ {
		q := randBox(rng, world, 5)
		var want []int
		for i, b := range boxes {
			if b.Intersects(q) {
				want = append(want, i)
			}
		}
		got := tr.Overlapping(q)
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d ids, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v, want %v", trial, got, want)
			}
		}
	}
}

func TestBoxesOutsideRootRegion(t *testing.T) {
	// Boxes inserted outside the declared root region must still be found.
	world := geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}
	tr := NewForBox(world)
	outlier := geom.BBox{Min: geom.Pt(5, 5), Max: geom.Pt(6, 6)}
	tr.InsertBox(outlier, 99)
	got := tr.Overlapping(geom.BBox{Min: geom.Pt(4, 4), Max: geom.Pt(7, 7)})
	if len(got) != 1 || got[0] != 99 {
		t.Errorf("outlier box: got %v, want [99]", got)
	}
}

func TestVisitEarlyStop(t *testing.T) {
	world := geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(10, 10)}
	tr := NewForBox(world)
	b := geom.BBox{Min: geom.Pt(1, 1), Max: geom.Pt(2, 2)}
	for i := 0; i < 100; i++ {
		tr.InsertBox(b, i)
	}
	count := 0
	tr.VisitOverlapping(b, func(id int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop: visited %d, want 5", count)
	}
}

func TestSegmentKeys(t *testing.T) {
	s := geom.Segment{A: geom.Pt(3, 1), B: geom.Pt(1, 4)}
	k := KeyOfSegment(s)
	if k != (Key{1, 1, 3, 4}) {
		t.Errorf("KeyOfSegment = %v", k)
	}
}

func TestDegenerateRootRegion(t *testing.T) {
	// A root region with zero extent must not cause infinite descent.
	tr := New(Key{0, 0, 0, 0}, Key{0, 0, 0, 0})
	for i := 0; i < 50; i++ {
		tr.Insert(Key{0, 0, 0, 0}, i)
	}
	n := 0
	tr.Range(Key{-1, -1, -1, -1}, Key{1, 1, 1, 1}, func(int) bool { n++; return true })
	if n != 50 {
		t.Errorf("degenerate region: found %d of 50", n)
	}
}

// Property: ADT range query agrees with brute force for random data.
func TestRangeQueryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		world := geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)}
		tr := NewForBox(world)
		n := 100
		boxes := make([]geom.BBox, n)
		for i := range boxes {
			boxes[i] = randBox(rng, world, 10)
			tr.InsertBox(boxes[i], i)
		}
		q := randBox(rng, world, 30)
		got := tr.Overlapping(q)
		want := 0
		for _, b := range boxes {
			if b.Intersects(q) {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkADTInsert(b *testing.B) {
	world := geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)}
	rng := rand.New(rand.NewSource(1))
	boxes := make([]geom.BBox, 4096)
	for i := range boxes {
		boxes[i] = randBox(rng, world, 2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%4096 == 0 {
			b.StopTimer()
			// Fresh tree every pass to keep depth realistic.
			b.StartTimer()
		}
		tr := NewForBox(world)
		for j, bx := range boxes {
			tr.InsertBox(bx, j)
		}
		i += 4095
	}
}

func BenchmarkADTQueryVsBruteForce(b *testing.B) {
	world := geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)}
	rng := rand.New(rand.NewSource(1))
	n := 10000
	tr := NewForBox(world)
	boxes := make([]geom.BBox, n)
	for i := range boxes {
		boxes[i] = randBox(rng, world, 1)
		tr.InsertBox(boxes[i], i)
	}
	q := randBox(rng, world, 5)
	b.Run("adt", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Overlapping(q)
		}
	})
	b.Run("brute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var out []int
			for j, bx := range boxes {
				if bx.Intersects(q) {
					out = append(out, j)
				}
			}
			_ = out
		}
	})
}
