// Package airfoil generates the test geometries of the paper: NACA
// four-digit airfoil sections (the NACA 0012 of Figure 2) and a synthetic
// three-element high-lift configuration standing in for the proprietary
// 30p30n coordinates. The synthetic configuration exercises every feature
// the 30p30n exercises: a sharp trailing-edge cusp, a blunt trailing edge
// with slope discontinuities, concave cove corners, leading-edge
// curvature, and narrow inter-element gaps.
package airfoil

import (
	"fmt"
	"math"

	"pamg2d/internal/geom"
	"pamg2d/internal/pslg"
)

// NACA4 describes a four-digit NACA section.
type NACA4 struct {
	// MaxCamber is the maximum camber as a fraction of chord (first digit
	// over 100); 0 for symmetric sections.
	MaxCamber float64
	// CamberPos is the chordwise position of maximum camber (second digit
	// over 10).
	CamberPos float64
	// Thickness is the maximum thickness as a fraction of chord (last two
	// digits over 100), e.g. 0.12 for the NACA 0012.
	Thickness float64
	// ClosedTE selects the closed trailing-edge thickness polynomial
	// (-0.1036 coefficient) so the upper and lower surfaces meet in a
	// sharp cusp. With false, the section has the classic open (blunt)
	// trailing edge of finite thickness.
	ClosedTE bool
}

// NACA0012 is the symmetric 12%-thickness section used in Figure 2.
var NACA0012 = NACA4{Thickness: 0.12, ClosedTE: true}

// Thickness4 evaluates the half-thickness distribution at chord fraction x.
func (n NACA4) Thickness4(x float64) float64 {
	c4 := -0.1015
	if n.ClosedTE {
		c4 = -0.1036
	}
	return 5 * n.Thickness * (0.2969*math.Sqrt(x) - 0.1260*x - 0.3516*x*x +
		0.2843*x*x*x + c4*x*x*x*x)
}

// Camber evaluates the mean camber line and its slope at chord fraction x.
func (n NACA4) Camber(x float64) (yc, dyc float64) {
	m, p := n.MaxCamber, n.CamberPos
	if m == 0 || p == 0 {
		return 0, 0
	}
	if x < p {
		yc = m / (p * p) * (2*p*x - x*x)
		dyc = 2 * m / (p * p) * (p - x)
	} else {
		yc = m / ((1 - p) * (1 - p)) * ((1 - 2*p) + 2*p*x - x*x)
		dyc = 2 * m / ((1 - p) * (1 - p)) * (p - x)
	}
	return yc, dyc
}

// Points samples the section with 2n+1 surface points using cosine
// clustering (dense at the leading and trailing edges, where the paper
// needs resolution). The loop runs counter-clockwise: from the trailing
// edge along the upper surface to the leading edge and back along the
// lower surface. For a CCW body loop the outward normal (into the fluid)
// of a directed edge is the edge direction rotated -90 degrees. For an
// open trailing edge the first and last points differ (blunt TE); for a
// closed one the trailing-edge point is shared.
func (n NACA4) Points(nHalf int) []geom.Point {
	if nHalf < 4 {
		nHalf = 4
	}
	var pts []geom.Point
	// Upper surface: x from 1 to 0.
	for i := 0; i <= nHalf; i++ {
		beta := math.Pi * float64(i) / float64(nHalf)
		x := 0.5 * (1 + math.Cos(beta)) // 1 -> 0
		pts = append(pts, n.surfacePoint(x, true))
	}
	// Lower surface: x from 0 to 1, skipping the shared leading edge.
	for i := 1; i <= nHalf; i++ {
		beta := math.Pi * float64(i) / float64(nHalf)
		x := 0.5 * (1 - math.Cos(beta)) // 0 -> 1
		p := n.surfacePoint(x, false)
		// With a closed trailing edge the last lower point coincides with
		// the first upper point; drop it to keep the loop simple.
		if n.ClosedTE && i == nHalf {
			break
		}
		pts = append(pts, p)
	}
	return pts
}

func (n NACA4) surfacePoint(x float64, upper bool) geom.Point {
	yt := n.Thickness4(x)
	yc, dyc := n.Camber(x)
	th := math.Atan(dyc)
	if upper {
		return geom.Pt(x-yt*math.Sin(th), yc+yt*math.Cos(th))
	}
	return geom.Pt(x+yt*math.Sin(th), yc-yt*math.Cos(th))
}

// Transform places a unit-chord section: scale by Chord, rotate by
// -AngleDeg (positive angle pitches the leading edge down, the convention
// for deployed slats/flaps), then translate by Offset.
type Transform struct {
	Chord    float64
	AngleDeg float64
	Offset   geom.Vec
}

// Apply maps a point of the unit section.
func (tr Transform) Apply(p geom.Point) geom.Point {
	th := -tr.AngleDeg * math.Pi / 180
	v := geom.V(p.X*tr.Chord, p.Y*tr.Chord).Rotate(th)
	return geom.Pt(v.X+tr.Offset.X, v.Y+tr.Offset.Y)
}

// TransformAll maps a whole loop.
func (tr Transform) TransformAll(pts []geom.Point) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = tr.Apply(p)
	}
	return out
}

// Element is one member of a multi-element configuration.
type Element struct {
	Name    string
	Section NACA4
	Place   Transform
	NHalf   int
	// Cove, when true, cuts a rectangular cove (concave notch) into the
	// lower aft surface, exercising the self-intersection handling at
	// concave corners (paper Figure 13b/13c).
	Cove bool
}

// Loop generates the element's placed surface loop.
func (e Element) Loop() pslg.Loop {
	pts := e.Section.Points(e.NHalf)
	if e.Cove {
		pts = cutCove(pts)
	}
	placed := e.Place.TransformAll(pts)
	return pslg.Loop{Points: placed, Name: e.Name}
}

// cutCove replaces part of the lower aft surface (unit-chord coordinates
// roughly x in [0.6, 0.85]) with a rectangular notch carved upward into
// the section.
func cutCove(pts []geom.Point) []geom.Point {
	var out []geom.Point
	const x0, x1 = 0.6, 0.85
	depth := 0.03
	skipping := false
	for i, p := range pts {
		onLower := i > len(pts)/2 // lower surface comes second
		if onLower && p.X > x0 && p.X < x1 {
			if !skipping {
				skipping = true
				// Entry corner: drop into the cove with two right angles.
				out = append(out, p, geom.Pt(p.X, p.Y+depth))
			}
			continue
		}
		if skipping {
			// Exit corner.
			prev := out[len(out)-1]
			out = append(out, geom.Pt(p.X, prev.Y), p)
			skipping = false
			continue
		}
		out = append(out, p)
	}
	return out
}

// Config is a complete meshing geometry: the airfoil elements plus the
// far-field box sized in chord lengths.
type Config struct {
	Elements []Element
	// FarfieldChords is the half-width of the square far-field box in
	// chord lengths (the paper uses 30 to 50).
	FarfieldChords float64
	// Chord is the reference chord length (the main element's).
	Chord float64
}

// Graph builds and validates the PSLG of the configuration.
func (c Config) Graph() (*pslg.Graph, error) {
	g := &pslg.Graph{}
	for _, e := range c.Elements {
		g.Surfaces = append(g.Surfaces, e.Loop())
	}
	half := c.FarfieldChords * c.Chord
	if half <= 0 {
		half = 30 * c.Chord
	}
	// Center the far-field box on the union of the surfaces.
	bb := geom.EmptyBBox()
	for i := range g.Surfaces {
		bb = bb.Union(g.Surfaces[i].BBox())
	}
	ctr := bb.Center()
	g.Farfield = pslg.Loop{
		Name: "farfield",
		Points: []geom.Point{
			geom.Pt(ctr.X-half, ctr.Y-half),
			geom.Pt(ctr.X+half, ctr.Y-half),
			geom.Pt(ctr.X+half, ctr.Y+half),
			geom.Pt(ctr.X-half, ctr.Y+half),
		},
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("airfoil: %w", err)
	}
	return g, nil
}

// Single returns a single-element configuration for the given section.
func Single(sec NACA4, nHalf int, farfieldChords float64) Config {
	return Config{
		Elements: []Element{{
			Name:    "main",
			Section: sec,
			Place:   Transform{Chord: 1},
			NHalf:   nHalf,
		}},
		FarfieldChords: farfieldChords,
		Chord:          1,
	}
}

// ThreeElement returns the synthetic high-lift configuration standing in
// for the 30p30n: a deployed leading-edge slat, a main element with a cove,
// and a deployed trailing-edge flap. Deflections and gaps follow typical
// high-lift geometry (30 degree slat and flap deflections give the
// configuration its name).
func ThreeElement(nHalf int) Config {
	slat := Element{
		Name:    "slat",
		Section: NACA4{Thickness: 0.10, MaxCamber: 0.04, CamberPos: 0.4, ClosedTE: true},
		Place:   Transform{Chord: 0.18, AngleDeg: 30, Offset: geom.V(-0.13, -0.055)},
		NHalf:   maxInt(nHalf/3, 8),
	}
	main := Element{
		Name:    "main",
		Section: NACA4{Thickness: 0.12, MaxCamber: 0.02, CamberPos: 0.4, ClosedTE: false},
		Place:   Transform{Chord: 0.65, AngleDeg: 0, Offset: geom.V(0.0, 0.0)},
		NHalf:   nHalf,
		Cove:    true,
	}
	flap := Element{
		Name:    "flap",
		Section: NACA4{Thickness: 0.10, MaxCamber: 0.03, CamberPos: 0.35, ClosedTE: true},
		Place:   Transform{Chord: 0.28, AngleDeg: -30, Offset: geom.V(0.67, -0.015)},
		NHalf:   maxInt(nHalf/2, 8),
	}
	return Config{
		Elements:       []Element{slat, main, flap},
		FarfieldChords: 30,
		Chord:          1,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
