package airfoil

import (
	"math"
	"testing"

	"pamg2d/internal/geom"
)

func TestNACA0012Thickness(t *testing.T) {
	n := NACA0012
	// Maximum thickness of 12% occurs near x = 0.30.
	yt := n.Thickness4(0.30)
	if math.Abs(yt-0.06) > 0.002 {
		t.Errorf("half thickness at 0.3 = %v, want ~0.06", yt)
	}
	// Closed trailing edge: thickness at x=1 is ~0.
	if te := n.Thickness4(1.0); math.Abs(te) > 1e-4 {
		t.Errorf("closed TE thickness = %v, want ~0", te)
	}
	// Open trailing edge has finite thickness.
	open := NACA4{Thickness: 0.12}
	if te := open.Thickness4(1.0); te < 1e-3 {
		t.Errorf("open TE thickness = %v, want > 0.001", te)
	}
}

func TestNACA0012Symmetry(t *testing.T) {
	n := NACA0012
	for _, x := range []float64{0.1, 0.3, 0.5, 0.9} {
		up := n.surfacePoint(x, true)
		lo := n.surfacePoint(x, false)
		if math.Abs(up.Y+lo.Y) > 1e-12 || math.Abs(up.X-lo.X) > 1e-12 {
			t.Errorf("x=%v: symmetric section must mirror: %v vs %v", x, up, lo)
		}
	}
}

func TestCamberedSection(t *testing.T) {
	// NACA 2412.
	n := NACA4{MaxCamber: 0.02, CamberPos: 0.4, Thickness: 0.12, ClosedTE: true}
	yc, _ := n.Camber(0.4)
	if math.Abs(yc-0.02) > 1e-12 {
		t.Errorf("max camber = %v, want 0.02", yc)
	}
	// Camber slope is zero at the maximum.
	_, dyc := n.Camber(0.4)
	if math.Abs(dyc) > 1e-12 {
		t.Errorf("camber slope at max = %v, want 0", dyc)
	}
	// Upper surface must be above the lower one at mid chord.
	up := n.surfacePoint(0.5, true)
	lo := n.surfacePoint(0.5, false)
	if up.Y <= lo.Y {
		t.Error("upper surface below lower surface")
	}
}

func TestPointsLoopShape(t *testing.T) {
	pts := NACA0012.Points(32)
	// Closed TE: 2*32 points (TE shared, LE shared).
	if len(pts) != 64 {
		t.Errorf("closed-TE point count = %d, want 64", len(pts))
	}
	// The loop must be counter-clockwise (TE -> upper surface -> LE ->
	// lower surface).
	var area float64
	for i := range pts {
		p, q := pts[i], pts[(i+1)%len(pts)]
		area += p.X*q.Y - q.X*p.Y
	}
	if area <= 0 {
		t.Errorf("airfoil loop must be CCW, signed area %v", area)
	}
	// First point is the trailing edge (x ~ 1), and some point reaches the
	// leading edge (x ~ 0).
	if math.Abs(pts[0].X-1) > 1e-9 {
		t.Errorf("first point %v, want trailing edge", pts[0])
	}
	minX := 1.0
	for _, p := range pts {
		if p.X < minX {
			minX = p.X
		}
	}
	if minX > 0.001 {
		t.Errorf("leading edge x = %v, want ~0", minX)
	}
}

func TestOpenTEHasTwoTrailingPoints(t *testing.T) {
	open := NACA4{Thickness: 0.12}
	pts := open.Points(16)
	first := pts[0]
	last := pts[len(pts)-1]
	if math.Abs(first.X-1) > 1e-9 || math.Abs(last.X-1) > 1e-9 {
		t.Fatalf("blunt TE endpoints: %v %v", first, last)
	}
	if first == last {
		t.Error("open TE must have distinct upper/lower trailing points")
	}
	if first.Y <= last.Y {
		t.Error("upper TE point must be above lower TE point")
	}
}

func TestTransform(t *testing.T) {
	tr := Transform{Chord: 2, AngleDeg: 90, Offset: geom.V(1, 1)}
	// Unit point (1,0): scaled (2,0), rotated -90deg -> (0,-2), translated (1,-1).
	got := tr.Apply(geom.Pt(1, 0))
	if got.Dist(geom.Pt(1, -1)) > 1e-12 {
		t.Errorf("Apply = %v, want (1,-1)", got)
	}
}

func TestSingleConfigGraph(t *testing.T) {
	cfg := Single(NACA0012, 64, 30)
	g, err := cfg.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Surfaces) != 1 {
		t.Fatalf("surfaces = %d", len(g.Surfaces))
	}
	if len(g.Farfield.Points) != 4 {
		t.Fatalf("farfield points = %d", len(g.Farfield.Points))
	}
	if !g.Farfield.IsCCW() {
		t.Error("farfield must be CCW")
	}
	// Far-field half-width 30 chords.
	if w := g.Farfield.BBox().Width(); math.Abs(w-60) > 1e-9 {
		t.Errorf("farfield width = %v, want 60", w)
	}
}

func TestThreeElementGraph(t *testing.T) {
	cfg := ThreeElement(48)
	g, err := cfg.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Surfaces) != 3 {
		t.Fatalf("surfaces = %d, want 3", len(g.Surfaces))
	}
	names := map[string]bool{}
	for i := range g.Surfaces {
		names[g.Surfaces[i].Name] = true
	}
	for _, want := range []string{"slat", "main", "flap"} {
		if !names[want] {
			t.Errorf("missing element %q", want)
		}
	}
	// The slat must sit ahead of the main element, the flap behind.
	var slat, main, flap geom.BBox
	for i := range g.Surfaces {
		switch g.Surfaces[i].Name {
		case "slat":
			slat = g.Surfaces[i].BBox()
		case "main":
			main = g.Surfaces[i].BBox()
		case "flap":
			flap = g.Surfaces[i].BBox()
		}
	}
	if slat.Center().X >= main.Center().X {
		t.Error("slat must be ahead of the main element")
	}
	if flap.Center().X <= main.Center().X {
		t.Error("flap must be behind the main element")
	}
}

func TestCoveCreatesConcaveCorners(t *testing.T) {
	cfg := ThreeElement(48)
	var main *Element
	for i := range cfg.Elements {
		if cfg.Elements[i].Name == "main" {
			main = &cfg.Elements[i]
		}
	}
	if main == nil || !main.Cove {
		t.Fatal("main element must have a cove")
	}
	loop := main.Loop()
	// Count reflex (concave) corners of the clockwise loop: for a CW loop
	// a reflex corner makes a strict left turn.
	reflex := 0
	pts := loop.Points
	n := len(pts)
	for i := 0; i < n; i++ {
		a, b, c := pts[(i+n-1)%n], pts[i], pts[(i+1)%n]
		if geom.Orient2DSign(a, b, c) > 0 {
			reflex++
		}
	}
	if reflex < 2 {
		t.Errorf("cove must create at least 2 reflex corners, found %d", reflex)
	}
}

func TestGrowthConfigurationsValidate(t *testing.T) {
	// Several resolutions must all produce valid PSLGs.
	for _, nHalf := range []int{16, 32, 64, 128} {
		if _, err := Single(NACA0012, nHalf, 30).Graph(); err != nil {
			t.Errorf("single nHalf=%d: %v", nHalf, err)
		}
	}
	for _, nHalf := range []int{24, 48, 96} {
		if _, err := ThreeElement(nHalf).Graph(); err != nil {
			t.Errorf("three-element nHalf=%d: %v", nHalf, err)
		}
	}
}
