// Package audit is the mesh invariant-verification engine: a registry of
// pluggable Check implementations that verify, after the fact, the
// correctness properties the pipeline's algorithms are supposed to
// guarantee — exact-predicate (constrained-)Delaunay empty-circumcircle
// audits built on the pooled Shewchuk arena in internal/geom, topological
// checks (2-manifold edge incidence, consistent CCW orientation, no
// duplicate or orphan points, watertight boundary recovery), boundary-layer
// checks (ray ordering, extrusion monotonicity, intersection-freedom after
// ADT/Cohen–Sutherland resolution), and decoupling checks (every decoupling
// path edge survives as a conforming mesh edge, so no element straddles a
// path and neighboring sectors agree on their shared border).
//
// Checks audit a Snapshot — the final mesh plus whatever generation context
// is available (boundary layers, decoupling paths). Element-local checks
// can audit index subranges independently, which is what lets the pipeline
// fan sector audits out across ranks and reduce the typed Violation reports
// at the root; global checks run as single units under the same scheduler.
package audit

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"pamg2d/internal/blayer"
	"pamg2d/internal/geom"
	"pamg2d/internal/mesh"
)

// mallocCount reads the cumulative heap allocation counter; per-check
// deltas are exact for sequential runs and best-effort (the counter is
// process-global) when checks run concurrently across ranks.
func mallocCount() uint64 {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.Mallocs
}

// Violation is one invariant failure, attributed to the check that found
// it, the rank that ran the check (-1 for sequential/root execution), and
// the offending element (-1 when the failure is not element-attributable,
// e.g. an orphan point or a missing path edge).
type Violation struct {
	Check   string `json:"check"`
	Rank    int    `json:"rank"`
	Element int    `json:"element"`
	Detail  string `json:"detail"`
}

func (v Violation) String() string {
	var b strings.Builder
	b.WriteString(v.Check)
	if v.Element >= 0 {
		fmt.Fprintf(&b, ": element %d", v.Element)
	}
	if v.Rank >= 0 {
		fmt.Fprintf(&b, " (rank %d)", v.Rank)
	}
	b.WriteString(": ")
	b.WriteString(v.Detail)
	return b.String()
}

// CheckStat is one check's execution record: wall time, heap allocation
// delta, elements covered, and how many violations it found. For checks
// chunked across ranks the wall time is the sum over all chunks (CPU time,
// which can exceed the audit stage's wall clock) and the allocation count
// is a best-effort sum measured per chunk on a shared heap counter.
type CheckStat struct {
	Name       string        `json:"name"`
	Wall       time.Duration `json:"wall_ns"`
	Allocs     uint64        `json:"allocs"`
	Elements   int           `json:"elements"`
	Violations int           `json:"violations"`
	Skipped    bool          `json:"skipped,omitempty"`
}

// Report is the outcome of an audit: per-check execution records and every
// violation found (capped per check; Violations counts in CheckStat are
// exact even when the recorded list is truncated).
type Report struct {
	Checks     []CheckStat `json:"checks"`
	Violations []Violation `json:"violations"`
}

// Ok reports whether the audit found no violations.
func (r *Report) Ok() bool {
	for _, c := range r.Checks {
		if c.Violations > 0 {
			return false
		}
	}
	return len(r.Violations) == 0
}

// Error converts a failed report into an *Error, or nil when the report is
// clean.
func (r *Report) Error() error {
	if r.Ok() {
		return nil
	}
	return &Error{Report: r}
}

// Error is the typed failure a violating audit surfaces: it carries the
// full report so callers can attribute every violation, while the message
// summarizes the first few.
type Error struct {
	Report *Report
}

func (e *Error) Error() string {
	total := 0
	for _, c := range e.Report.Checks {
		total += c.Violations
	}
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d violation(s)", total)
	for i, v := range e.Report.Violations {
		if i == 3 {
			b.WriteString("; ...")
			break
		}
		b.WriteString("; ")
		b.WriteString(v.String())
	}
	return b.String()
}

// maxRecorded caps the violations kept per check so a thoroughly corrupted
// mesh cannot balloon the report; the per-check counts stay exact.
const maxRecorded = 256

// Reporter collects one check run's violations. The engine fills in the
// check name and executing rank.
type Reporter struct {
	check string
	rank  int
	count int
	out   []Violation
}

// NewReporter returns a reporter for one check execution on the given rank
// (-1 for sequential execution).
func NewReporter(check string, rank int) *Reporter {
	return &Reporter{check: check, rank: rank}
}

// Reportf records a violation against element elem (-1 when the violation
// is not element-attributable).
func (r *Reporter) Reportf(elem int, format string, args ...any) {
	r.count++
	if r.count > maxRecorded {
		return
	}
	r.out = append(r.out, Violation{
		Check:   r.check,
		Rank:    r.rank,
		Element: elem,
		Detail:  fmt.Sprintf(format, args...),
	})
}

// Count returns the exact number of violations reported, including any
// beyond the recording cap.
func (r *Reporter) Count() int { return r.count }

// Violations returns the recorded violations.
func (r *Reporter) Violations() []Violation { return r.out }

// Check is one pluggable mesh invariant verification.
type Check interface {
	// Name identifies the check in reports and CLI selection.
	Name() string
	// Applicable reports whether the snapshot carries the inputs the check
	// needs (e.g. boundary-layer checks need the generation-time layers).
	Applicable(s *Snapshot) bool
	// Local reports whether Run may be called on element subranges
	// independently; global checks are always run as [0, NumTriangles).
	Local() bool
	// Run audits elements [from, to) of the snapshot's mesh for local
	// checks; global checks ignore the range and audit everything.
	Run(s *Snapshot, from, to int, rep *Reporter)
}

// All returns the full check registry in execution order.
func All() []Check {
	return []Check{
		orientationCheck{},
		conformityCheck{},
		boundaryCheck{},
		delaunayCheck{},
		blayerCheck{},
		decoupleCheck{},
	}
}

// Structural returns the checks that need nothing beyond the mesh itself —
// the set cmd/meshcheck runs by default on a bare mesh file.
func Structural() []Check {
	return []Check{orientationCheck{}, conformityCheck{}, boundaryCheck{}}
}

// Adapted returns the profile for metric-adapted meshes: everything in
// All except the Delaunay empty-circumcircle check. Anisotropic
// adaptation deliberately trades the Delaunay property for metric
// conformity — stretched elements violate the Euclidean circumcircle
// criterion by design — while every structural and domain invariant must
// still hold.
func Adapted() []Check {
	var out []Check
	for _, c := range All() {
		if c.Name() == "delaunay" {
			continue
		}
		out = append(out, c)
	}
	return out
}

// ByName resolves a comma-separated check selection against the registry.
func ByName(names string) ([]Check, error) {
	var out []Check
	for _, raw := range strings.Split(names, ",") {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		found := false
		for _, c := range All() {
			if c.Name() == name {
				out = append(out, c)
				found = true
				break
			}
		}
		if !found {
			known := make([]string, 0, len(All()))
			for _, c := range All() {
				known = append(known, c.Name())
			}
			return nil, fmt.Errorf("audit: unknown check %q (have %s)", name, strings.Join(known, ", "))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("audit: empty check selection %q", names)
	}
	return out, nil
}

// pointEdge is an undirected mesh edge keyed by exact endpoint
// coordinates, ordered so (a, b) and (b, a) collide.
type pointEdge struct{ a, b geom.Point }

func edgeOf(a, b geom.Point) pointEdge {
	if b.X < a.X || (b.X == a.X && b.Y < a.Y) {
		a, b = b, a
	}
	return pointEdge{a, b}
}

// Snapshot is the audit input: the mesh under test plus whatever
// generation-time context is available. Prepare must be called (once,
// before any concurrent check execution) to build the shared read-only
// lookup structures; Run and the pipeline's audit stage do this for you.
type Snapshot struct {
	// Mesh is the mesh under audit. Required.
	Mesh *mesh.Mesh

	// Layers, when non-nil, are the generation-time boundary layers; they
	// enable the boundary-layer checks and watertight surface recovery.
	Layers []*blayer.Layer
	// BL are the boundary-layer parameters the layers were generated with.
	BL blayer.Params

	// Paths, when non-nil, are the decoupling path edges (subdomain
	// borders, transition sector cuts, the boundary-layer outer boundary,
	// the near-body box border) as exact endpoint pairs; they enable the
	// decoupling check and exempt constrained edges from the Delaunay
	// audit.
	Paths [][2]geom.Point

	// Farfield, when non-empty, is the far-field bounding box; path edges
	// on its border legitimately bound only one triangle.
	Farfield geom.BBox

	// StrictDelaunay treats the mesh as one unconstrained Delaunay
	// triangulation: every interior edge must be empty-circumcircle with no
	// constraint exemptions, and the boundary must be a single convex loop.
	// Used for meshes that claim global Delaunayness (cmd/meshcheck
	// -delaunay); the pipeline's merged mesh is only piecewise Delaunay.
	StrictDelaunay bool

	// SkipDelaunay disables the Delaunay check (the advancing-front kernel
	// produces deliberately non-Delaunay inviscid elements).
	SkipDelaunay bool

	prepared  bool
	adj       [][3]int32           // neighbor across edge e of each triangle, -1 boundary
	edgeUse   map[pointEdge]int    // undirected incidence count by coordinates
	pathSet   map[pointEdge]bool   // constrained path edges by coordinates
	pointIdx  map[geom.Point]int32 // first index of each coordinate
	surfaceV  map[geom.Point]bool  // refined surface vertices of all layers
	boundary  [][2]int32           // directed boundary edges
	boundaryT map[[2]int32]int32   // boundary edge -> owning triangle
}

// Prepare builds the shared lookup structures every check reads. It is
// idempotent and must complete before checks run concurrently.
func (s *Snapshot) Prepare() {
	if s.prepared {
		return
	}
	m := s.Mesh
	s.adj = m.Adjacency()
	s.edgeUse = make(map[pointEdge]int, 3*len(m.Triangles)/2)
	s.boundaryT = make(map[[2]int32]int32)
	for i, t := range m.Triangles {
		if !indicesValid(m, t) {
			continue // flagged by the orientation check; keep lookups safe
		}
		for e := 0; e < 3; e++ {
			u, v := t[e], t[(e+1)%3]
			s.edgeUse[edgeOf(m.Points[u], m.Points[v])]++
			if s.adj[i][e] < 0 {
				s.boundary = append(s.boundary, [2]int32{u, v})
				s.boundaryT[[2]int32{u, v}] = int32(i)
			}
		}
	}
	sort.Slice(s.boundary, func(i, j int) bool {
		if s.boundary[i][0] != s.boundary[j][0] {
			return s.boundary[i][0] < s.boundary[j][0]
		}
		return s.boundary[i][1] < s.boundary[j][1]
	})
	s.pointIdx = make(map[geom.Point]int32, len(m.Points))
	for i, p := range m.Points {
		if _, ok := s.pointIdx[p]; !ok {
			s.pointIdx[p] = int32(i)
		}
	}
	s.pathSet = make(map[pointEdge]bool, len(s.Paths))
	for _, pe := range s.Paths {
		s.pathSet[edgeOf(pe[0], pe[1])] = true
	}
	s.surfaceV = make(map[geom.Point]bool)
	for _, l := range s.Layers {
		for _, p := range l.Surface.Points {
			s.surfaceV[p] = true
		}
	}
	s.prepared = true
}

func indicesValid(m *mesh.Mesh, t [3]int32) bool {
	n := int32(len(m.Points))
	return t[0] >= 0 && t[0] < n && t[1] >= 0 && t[1] < n && t[2] >= 0 && t[2] < n
}

// onFarfieldBorder reports whether both endpoints lie on the far-field box
// perimeter (such edges legitimately bound a single triangle).
func (s *Snapshot) onFarfieldBorder(a, b geom.Point) bool {
	ff := s.Farfield
	if ff.Empty() || ff == (geom.BBox{}) {
		return false
	}
	on := func(p geom.Point) bool {
		return (p.X == ff.Min.X || p.X == ff.Max.X || p.Y == ff.Min.Y || p.Y == ff.Max.Y) && ff.Contains(p)
	}
	return on(a) && on(b)
}

// Job is one schedulable audit unit: a check over an element range (the
// whole mesh for global checks).
type Job struct {
	Check    Check
	From, To int
}

// Elements returns the number of elements the job covers, the scheduler's
// cost estimate.
func (j Job) Elements() int { return j.To - j.From }

// PlanJobs splits the applicable checks into jobs: local checks are chunked
// into ranges of at most chunk elements, global checks become one job each.
// Inapplicable checks are returned separately so reports can list them as
// skipped.
func PlanJobs(s *Snapshot, checks []Check, chunk int) (jobs []Job, skipped []Check) {
	if chunk < 1 {
		chunk = 1
	}
	n := s.Mesh.NumTriangles()
	for _, c := range checks {
		if !c.Applicable(s) {
			skipped = append(skipped, c)
			continue
		}
		if !c.Local() || n <= chunk {
			jobs = append(jobs, Job{Check: c, From: 0, To: n})
			continue
		}
		for from := 0; from < n; from += chunk {
			to := from + chunk
			if to > n {
				to = n
			}
			jobs = append(jobs, Job{Check: c, From: from, To: to})
		}
	}
	return jobs, skipped
}

// Run executes the checks sequentially against the snapshot and returns the
// full report. This is the single-process entry point used by
// cmd/meshcheck and tests; the pipeline's audit stage schedules the same
// checks across ranks instead.
func Run(s *Snapshot, checks []Check) *Report {
	s.Prepare()
	rep := &Report{}
	for _, c := range checks {
		if !c.Applicable(s) {
			rep.Checks = append(rep.Checks, CheckStat{Name: c.Name(), Skipped: true})
			continue
		}
		r := NewReporter(c.Name(), -1)
		t0 := time.Now()
		a0 := mallocCount()
		c.Run(s, 0, s.Mesh.NumTriangles(), r)
		rep.Checks = append(rep.Checks, CheckStat{
			Name:       c.Name(),
			Wall:       time.Since(t0),
			Allocs:     mallocCount() - a0,
			Elements:   s.Mesh.NumTriangles(),
			Violations: r.Count(),
		})
		rep.Violations = append(rep.Violations, r.Violations()...)
	}
	return rep
}
