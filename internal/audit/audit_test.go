package audit

import (
	"math"
	"strings"
	"testing"

	"pamg2d/internal/blayer"
	"pamg2d/internal/delaunay"
	"pamg2d/internal/geom"
	"pamg2d/internal/mesh"
	"pamg2d/internal/pslg"
)

// triangulate builds a plain Delaunay mesh of the given points for tests.
func triangulate(t *testing.T, pts []geom.Point) *mesh.Mesh {
	t.Helper()
	res, err := delaunay.Triangulate(delaunay.Input{Points: pts})
	if err != nil {
		t.Fatal(err)
	}
	return &mesh.Mesh{Points: res.Points, Triangles: res.Triangles}
}

// gridPoints returns a deterministic, slightly jittered n x n point grid.
func gridPoints(n int) []geom.Point {
	pts := make([]geom.Point, 0, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// Deterministic pseudo-jitter keeps the set in general position.
			dx := float64((i*7+j*13)%11) / 37
			dy := float64((i*5+j*17)%13) / 41
			pts = append(pts, geom.Pt(float64(i)+dx, float64(j)+dy))
		}
	}
	return pts
}

func findCheck(rep *Report, name string) CheckStat {
	for _, c := range rep.Checks {
		if c.Name == name {
			return c
		}
	}
	return CheckStat{Name: name, Skipped: true}
}

func TestCleanDelaunayPasses(t *testing.T) {
	m := triangulate(t, gridPoints(8))
	s := &Snapshot{Mesh: m, StrictDelaunay: true}
	rep := Run(s, All())
	if !rep.Ok() {
		t.Fatalf("clean Delaunay mesh failed audit: %+v", rep.Violations)
	}
	for _, name := range []string{"orientation", "conformity", "boundary", "delaunay"} {
		c := findCheck(rep, name)
		if c.Skipped {
			t.Errorf("check %s skipped on a bare mesh snapshot", name)
		}
	}
	for _, name := range []string{"boundary-layer", "decoupling"} {
		if c := findCheck(rep, name); !c.Skipped {
			t.Errorf("check %s ran without its inputs", name)
		}
	}
}

func TestFlippedTriangleAttributed(t *testing.T) {
	m := triangulate(t, gridPoints(6))
	victim := m.NumTriangles() / 2
	m.Triangles[victim][1], m.Triangles[victim][2] = m.Triangles[victim][2], m.Triangles[victim][1]
	rep := Run(&Snapshot{Mesh: m}, []Check{orientationCheck{}})
	if rep.Ok() {
		t.Fatal("flipped triangle not flagged")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Check == "orientation" && v.Element == victim {
			found = true
			if !strings.Contains(v.Detail, "clockwise") {
				t.Errorf("flip reported as %q, want clockwise", v.Detail)
			}
		}
	}
	if !found {
		t.Errorf("no orientation violation attributed to element %d: %+v", victim, rep.Violations)
	}
}

func TestOutOfRangeIndexFlaggedWithoutPanic(t *testing.T) {
	m := triangulate(t, gridPoints(4))
	m.Triangles[0][2] = int32(len(m.Points)) + 7
	rep := Run(&Snapshot{Mesh: m, StrictDelaunay: true}, All())
	c := findCheck(rep, "orientation")
	if c.Violations == 0 {
		t.Fatalf("out-of-range index not flagged: %+v", rep.Violations)
	}
	if rep.Violations[0].Element != 0 {
		t.Errorf("violation attributed to element %d, want 0", rep.Violations[0].Element)
	}
}

func TestDuplicateAndOrphanFlagged(t *testing.T) {
	m := triangulate(t, gridPoints(4))
	m.Triangles = append(m.Triangles, m.Triangles[3]) // duplicate element
	m.Points = append(m.Points, geom.Pt(-50, -50))    // orphan vertex
	rep := Run(&Snapshot{Mesh: m}, []Check{conformityCheck{}})
	var dup, orphan bool
	for _, v := range rep.Violations {
		if strings.Contains(v.Detail, "duplicate of triangle") {
			dup = true
			if v.Element != m.NumTriangles()-1 {
				t.Errorf("duplicate attributed to element %d, want %d", v.Element, m.NumTriangles()-1)
			}
		}
		if strings.Contains(v.Detail, "orphan point") {
			orphan = true
		}
	}
	if !dup || !orphan {
		t.Errorf("dup=%v orphan=%v, want both flagged: %+v", dup, orphan, rep.Violations)
	}
}

func TestDeletedTriangleTearsBoundary(t *testing.T) {
	m := triangulate(t, gridPoints(6))
	// Find a strictly interior triangle (no boundary edge) and delete it.
	adj := m.Adjacency()
	victim := -1
	for i, a := range adj {
		if a[0] >= 0 && a[1] >= 0 && a[2] >= 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no interior triangle in test mesh")
	}
	m.Triangles = append(m.Triangles[:victim], m.Triangles[victim+1:]...)
	rep := Run(&Snapshot{Mesh: m, StrictDelaunay: true}, []Check{boundaryCheck{}})
	if rep.Ok() {
		t.Fatal("deleted interior triangle not flagged by strict boundary check")
	}
}

// quadMeshes returns the two diagonalizations of a kite quad: the Delaunay
// one and the non-Delaunay one (the flat triangle's circumcircle contains
// the opposite vertex).
func quadPoints() (a, b, c, d geom.Point) {
	return geom.Pt(0, 0), geom.Pt(1, -0.2), geom.Pt(2, 0), geom.Pt(1, 2)
}

func goodQuadMesh() *mesh.Mesh {
	a, b, c, d := quadPoints()
	return &mesh.Mesh{
		Points:    []geom.Point{a, b, c, d},
		Triangles: [][3]int32{{0, 1, 3}, {1, 2, 3}}, // diagonal b-d
	}
}

func badQuadMesh() *mesh.Mesh {
	a, b, c, d := quadPoints()
	return &mesh.Mesh{
		Points:    []geom.Point{a, b, c, d},
		Triangles: [][3]int32{{0, 1, 2}, {0, 2, 3}}, // diagonal a-c: abc is non-Delaunay
	}
}

func TestDelaunayViolationFlagged(t *testing.T) {
	if rep := Run(&Snapshot{Mesh: goodQuadMesh(), StrictDelaunay: true}, All()); !rep.Ok() {
		t.Fatalf("Delaunay diagonal flagged: %+v", rep.Violations)
	}
	rep := Run(&Snapshot{Mesh: badQuadMesh(), StrictDelaunay: true}, []Check{delaunayCheck{}})
	if rep.Ok() {
		t.Fatal("non-Delaunay diagonal not flagged")
	}
	v := rep.Violations[0]
	if v.Check != "delaunay" || v.Element != 0 {
		t.Errorf("violation %+v, want delaunay at element 0", v)
	}
}

// TestConstrainedEdgeExemption verifies the CDT semantics: an edge that is
// a decoupling/constrained path is exempt from the empty-circumcircle
// audit (non-strict mode), and strict mode has no exemptions.
func TestConstrainedEdgeExemption(t *testing.T) {
	a, _, c, _ := quadPoints()
	paths := [][2]geom.Point{{a, c}}
	m := badQuadMesh()
	if rep := Run(&Snapshot{Mesh: m, Paths: paths}, []Check{delaunayCheck{}}); !rep.Ok() {
		t.Fatalf("constrained diagonal not exempt in CDT mode: %+v", rep.Violations)
	}
	if rep := Run(&Snapshot{Mesh: m, Paths: paths, StrictDelaunay: true}, []Check{delaunayCheck{}}); rep.Ok() {
		t.Fatal("strict mode honored a constraint exemption")
	}
}

func TestDecouplingPathEdges(t *testing.T) {
	a, b, c, d := quadPoints()
	paths := [][2]geom.Point{{a, c}}
	// Mesh on diagonal a-c conforms to the path.
	if rep := Run(&Snapshot{Mesh: badQuadMesh(), Paths: paths}, []Check{decoupleCheck{}}); !rep.Ok() {
		t.Fatalf("conforming path edge flagged: %+v", rep.Violations)
	}
	// Mesh on diagonal b-d straddles it.
	rep := Run(&Snapshot{Mesh: goodQuadMesh(), Paths: paths}, []Check{decoupleCheck{}})
	if rep.Ok() {
		t.Fatal("straddled decoupling path not flagged")
	}
	if !strings.Contains(rep.Violations[0].Detail, "straddles") {
		t.Errorf("unexpected detail %q", rep.Violations[0].Detail)
	}
	// A path edge with a single incident triangle means the neighbor sector
	// is missing — unless the edge lies on the far-field border.
	half := &mesh.Mesh{Points: []geom.Point{a, b, c, d}, Triangles: [][3]int32{{0, 2, 3}}}
	rep = Run(&Snapshot{Mesh: half, Paths: paths}, []Check{decoupleCheck{}})
	if rep.Ok() {
		t.Fatal("one-sided path edge not flagged")
	}
	// On the far-field border a single incident triangle is legitimate.
	ff := geom.BBoxOf([]geom.Point{a, b, c, d})
	rep = Run(&Snapshot{
		Mesh:     &mesh.Mesh{Points: []geom.Point{a, c, d}, Triangles: [][3]int32{{0, 1, 2}}},
		Paths:    [][2]geom.Point{{c, d}},
		Farfield: ff,
	}, []Check{decoupleCheck{}})
	if !rep.Ok() {
		t.Fatalf("far-field border path edge flagged: %+v", rep.Violations)
	}
}

// squareLayer builds a synthetic boundary layer around the unit square for
// the boundary-layer checks: one outward ray per vertex, two monotone
// points each.
func squareLayer() *blayer.Layer {
	sq := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)}
	l := &blayer.Layer{Surface: pslg.Loop{Points: sq}}
	dirs := []geom.Vec{{X: -1, Y: -1}, {X: 1, Y: -1}, {X: 1, Y: 1}, {X: -1, Y: 1}}
	for i, p := range sq {
		d := dirs[i].Unit()
		l.Rays = append(l.Rays, blayer.Ray{
			Origin: p, Dir: d, MaxLen: math.Inf(1), Tangential: 1, SurfaceIdx: i,
		})
		l.Points = append(l.Points, []geom.Point{
			p.Add(d.Scale(0.1)),
			p.Add(d.Scale(0.25)),
		})
	}
	return l
}

func blSnapshot(l *blayer.Layer) *Snapshot {
	// Any valid mesh satisfies Prepare; the boundary-layer check reads only
	// the layers.
	return &Snapshot{Mesh: goodQuadMesh(), Layers: []*blayer.Layer{l}}
}

func TestBoundaryLayerClean(t *testing.T) {
	rep := Run(blSnapshot(squareLayer()), []Check{blayerCheck{}})
	if !rep.Ok() {
		t.Fatalf("clean synthetic layer flagged: %+v", rep.Violations)
	}
}

func TestBoundaryLayerBackwardStep(t *testing.T) {
	l := squareLayer()
	l.Points[2][1] = l.Rays[2].Origin // second point collapses back onto the origin
	rep := Run(blSnapshot(l), []Check{blayerCheck{}})
	if rep.Ok() {
		t.Fatal("backward extrusion step not flagged")
	}
	if !strings.Contains(rep.Violations[0].Detail, "backward") {
		t.Errorf("unexpected detail %q", rep.Violations[0].Detail)
	}
}

func TestBoundaryLayerTrimEscape(t *testing.T) {
	l := squareLayer()
	l.Rays[1].MaxLen = 0.2 // trimmed below the second point's distance
	rep := Run(blSnapshot(l), []Check{blayerCheck{}})
	if rep.Ok() {
		t.Fatal("point beyond trimmed length not flagged")
	}
	if !strings.Contains(rep.Violations[0].Detail, "exceeds trimmed length") {
		t.Errorf("unexpected detail %q", rep.Violations[0].Detail)
	}
}

func TestBoundaryLayerChainCrossing(t *testing.T) {
	l := squareLayer()
	// Extend ray 0's chain and redirect ray 1 (origin (1,0)) across it while
	// both stay monotone along their own directions.
	l.Points[0] = append(l.Points[0], l.Rays[0].Origin.Add(l.Rays[0].Dir.Scale(1.0)))
	dir := geom.V(-2, -0.5).Unit()
	l.Rays[1].Dir = dir
	l.Points[1] = []geom.Point{geom.Pt(-1, -0.5)}
	rep := Run(blSnapshot(l), []Check{blayerCheck{}})
	if rep.Ok() {
		t.Fatal("crossing extrusion chains not flagged")
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v.Detail, "cross") {
			found = true
		}
	}
	if !found {
		t.Errorf("no crossing violation recorded: %+v", rep.Violations)
	}
}

func TestBoundaryLayerRayOrder(t *testing.T) {
	l := squareLayer()
	l.Rays[2].SurfaceIdx = 0 // out of loop order
	rep := Run(blSnapshot(l), []Check{blayerCheck{}})
	if rep.Ok() {
		t.Fatal("out-of-order ray not flagged")
	}
}

func TestSurfaceRecovery(t *testing.T) {
	// Triangulate an annulus-like domain: square outer boundary with a
	// triangular hole whose loop is the "surface".
	outer := []geom.Point{geom.Pt(-2, -2), geom.Pt(3, -2), geom.Pt(3, 3), geom.Pt(-2, 3)}
	hole := []geom.Point{geom.Pt(0.2, 0.2), geom.Pt(0.8, 0.3), geom.Pt(0.5, 0.8)}
	pts := append(append([]geom.Point{}, outer...), hole...)
	segs := [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}, {5, 6}, {6, 4}}
	res, err := delaunay.Triangulate(delaunay.Input{
		Points:   pts,
		Segments: segs,
		Holes:    []geom.Point{geom.Pt(0.5, 0.4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := &mesh.Mesh{Points: res.Points, Triangles: res.Triangles}
	layer := &blayer.Layer{Surface: pslg.Loop{Points: hole}}
	s := &Snapshot{Mesh: m, Layers: []*blayer.Layer{layer}}
	rep := Run(s, []Check{boundaryCheck{}})
	if !rep.Ok() {
		t.Fatalf("recovered surface flagged: %+v", rep.Violations)
	}
	// Knock the hole out of the mesh entirely: surface segments are gone.
	res2, err := delaunay.Triangulate(delaunay.Input{Points: outer})
	if err != nil {
		t.Fatal(err)
	}
	m2 := &mesh.Mesh{Points: res2.Points, Triangles: res2.Triangles}
	rep = Run(&Snapshot{Mesh: m2, Layers: []*blayer.Layer{layer}}, []Check{boundaryCheck{}})
	if rep.Ok() {
		t.Fatal("missing surface not flagged")
	}
}

func TestByName(t *testing.T) {
	checks, err := ByName("orientation, delaunay")
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != 2 || checks[0].Name() != "orientation" || checks[1].Name() != "delaunay" {
		t.Fatalf("ByName returned %v", checks)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown check accepted")
	}
	if _, err := ByName(" , "); err == nil {
		t.Fatal("empty selection accepted")
	}
}

// TestPlanJobsMatchesSequential verifies chunked local execution finds
// exactly what a sequential run finds.
func TestPlanJobsMatchesSequential(t *testing.T) {
	m := triangulate(t, gridPoints(7))
	// Flip two triangles far apart.
	for _, i := range []int{1, m.NumTriangles() - 2} {
		m.Triangles[i][0], m.Triangles[i][1] = m.Triangles[i][1], m.Triangles[i][0]
	}
	s := &Snapshot{Mesh: m}
	s.Prepare()
	checks := []Check{orientationCheck{}, conformityCheck{}}
	jobs, skipped := PlanJobs(s, checks, 10)
	if len(skipped) != 0 {
		t.Fatalf("unexpected skips: %v", skipped)
	}
	if len(jobs) < 3 {
		t.Fatalf("chunking produced only %d jobs", len(jobs))
	}
	var got []Violation
	for _, j := range jobs {
		r := NewReporter(j.Check.Name(), -1)
		j.Check.Run(s, j.From, j.To, r)
		got = append(got, r.Violations()...)
	}
	want := Run(&Snapshot{Mesh: m}, checks).Violations
	if len(got) != len(want) {
		t.Fatalf("chunked run found %d violations, sequential %d", len(got), len(want))
	}
}

func TestReporterCap(t *testing.T) {
	r := NewReporter("x", -1)
	for i := 0; i < maxRecorded+50; i++ {
		r.Reportf(i, "v")
	}
	if r.Count() != maxRecorded+50 {
		t.Errorf("Count = %d, want %d", r.Count(), maxRecorded+50)
	}
	if len(r.Violations()) != maxRecorded {
		t.Errorf("recorded %d violations, want cap %d", len(r.Violations()), maxRecorded)
	}
}

func TestReportError(t *testing.T) {
	rep := Run(&Snapshot{Mesh: badQuadMesh(), StrictDelaunay: true}, []Check{delaunayCheck{}})
	err := rep.Error()
	if err == nil {
		t.Fatal("failing report produced nil error")
	}
	if !strings.Contains(err.Error(), "delaunay") {
		t.Errorf("error %q does not name the failing check", err)
	}
	clean := Run(&Snapshot{Mesh: goodQuadMesh()}, []Check{orientationCheck{}})
	if clean.Error() != nil {
		t.Errorf("clean report produced error %v", clean.Error())
	}
}

func TestAdaptedProfile(t *testing.T) {
	names := map[string]bool{}
	for _, c := range Adapted() {
		names[c.Name()] = true
	}
	if names["delaunay"] {
		t.Fatal("Adapted profile includes the delaunay check")
	}
	if len(Adapted()) != len(All())-1 {
		t.Fatalf("Adapted has %d checks, want %d", len(Adapted()), len(All())-1)
	}
	for _, want := range []string{"orientation", "conformity", "boundary"} {
		if !names[want] {
			t.Fatalf("Adapted profile missing %q", want)
		}
	}
	// A structurally sound but non-Delaunay mesh (anisotropic-style sliver
	// pair) must pass Adapted and fail All under strict mode.
	m := &mesh.Mesh{
		Points: []geom.Point{
			{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 0.05}, {X: 0, Y: 0.05},
		},
		Triangles: [][3]int32{{0, 1, 2}, {0, 2, 3}},
	}
	if rep := Run(&Snapshot{Mesh: m, StrictDelaunay: true}, Adapted()); !rep.Ok() {
		t.Fatalf("adapted profile rejected a structurally sound mesh: %+v", rep)
	}
}
