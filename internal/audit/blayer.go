package audit

// Boundary-layer checks, verifying what the extrusion and intersection
// resolution in internal/blayer claim: rays come out in surface loop
// order, every ray's point chain marches monotonically outward within its
// trimmed length, and after ADT/Cohen–Sutherland resolution no two
// extrusion chains cross each other or any body surface. Chain-crossing
// freedom is also the anisotropic no-inversion property: an inverted
// extrusion quad requires its two bounding ray chains to cross.

import (
	"math"

	"pamg2d/internal/adt"
	"pamg2d/internal/blayer"
	"pamg2d/internal/geom"
)

// blayerCheck audits the generation-time boundary layers carried by the
// snapshot. It needs the layers with their inserted points, so it only
// applies to pipeline-integrated audits, not bare mesh files.
type blayerCheck struct{}

func (blayerCheck) Name() string { return "boundary-layer" }

func (blayerCheck) Applicable(s *Snapshot) bool { return len(s.Layers) > 0 }

func (blayerCheck) Local() bool { return false }

func (blayerCheck) Run(s *Snapshot, _, _ int, rep *Reporter) {
	for li, l := range s.Layers {
		checkRayOrder(li, l, rep)
		checkMonotone(li, l, rep)
	}
	checkChainCrossings(s, rep)
}

// checkRayOrder verifies rays reference surface vertices in loop order:
// SurfaceIdx values in range and non-decreasing (several fan rays may
// share one vertex), each ray anchored at its surface vertex.
func checkRayOrder(li int, l *blayer.Layer, rep *Reporter) {
	n := len(l.Surface.Points)
	prev := -1
	for ri, r := range l.Rays {
		if r.SurfaceIdx < 0 || r.SurfaceIdx >= n {
			rep.Reportf(-1, "layer %d ray %d references surface vertex %d of %d", li, ri, r.SurfaceIdx, n)
			continue
		}
		if r.SurfaceIdx < prev {
			rep.Reportf(-1, "layer %d ray %d out of order: surface vertex %d after %d", li, ri, r.SurfaceIdx, prev)
		}
		prev = r.SurfaceIdx
		if r.Origin != l.Surface.Points[r.SurfaceIdx] {
			rep.Reportf(-1, "layer %d ray %d origin %v is not its surface vertex %v",
				li, ri, r.Origin, l.Surface.Points[r.SurfaceIdx])
		}
	}
}

// checkMonotone verifies normal-extrusion monotonicity of every ray chain:
// each step advances strictly along the ray's extrusion axis (the ray
// direction; the fan bisector for curved fan rays, which blend toward it
// with height), and no point escapes the trimmed length MaxLen.
func checkMonotone(li int, l *blayer.Layer, rep *Reporter) {
	for ri, pts := range l.Points {
		if ri >= len(l.Rays) {
			rep.Reportf(-1, "layer %d has %d point chains for %d rays", li, len(l.Points), len(l.Rays))
			break
		}
		r := l.Rays[ri]
		axis := r.Dir
		if r.Fan && r.FanBisector != (geom.Vec{}) {
			axis = r.FanBisector
		}
		// Rounding accumulates ulp-scale error per inserted layer; the bound
		// only has to catch real escapes past the trim point.
		maxLen := r.MaxLen
		if !math.IsInf(maxLen, 1) {
			maxLen *= 1 + 1e-9
		}
		prev := r.Origin
		for k, p := range pts {
			step := p.Sub(prev)
			if step.Dot(axis) <= 0 {
				rep.Reportf(-1, "layer %d ray %d point %d steps backward along the extrusion axis", li, ri, k)
			}
			if d := p.Dist(r.Origin); d > maxLen {
				rep.Reportf(-1, "layer %d ray %d point %d at distance %g exceeds trimmed length %g", li, ri, k, d, r.MaxLen)
			}
			prev = p
		}
	}
}

// checkChainCrossings verifies intersection resolution: no extrusion chain
// segment crosses (or collinearly overlaps) another chain segment or a
// body surface segment, within a layer or across layers. Touching at a
// shared endpoint is legal — consecutive chain segments share a point, fan
// rays share their origin, and ray origins sit on the surface loops. An
// alternating digital tree over segment boxes prunes the pair tests, the
// exact segment predicate classifies the survivors.
func checkChainCrossings(s *Snapshot, rep *Reporter) {
	var segs []geom.Segment
	box := geom.EmptyBBox()
	add := func(a, b geom.Point) {
		if a == b {
			return
		}
		segs = append(segs, geom.Segment{A: a, B: b})
		box = box.Extend(a).Extend(b)
	}
	for _, l := range s.Layers {
		pts := l.Surface.Points
		for i := range pts {
			add(pts[i], pts[(i+1)%len(pts)])
		}
		for ri, chain := range l.Points {
			if ri >= len(l.Rays) {
				break
			}
			prev := l.Rays[ri].Origin
			for _, p := range chain {
				add(prev, p)
				prev = p
			}
		}
	}
	if len(segs) < 2 {
		return
	}
	tree := adt.NewForBox(box)
	for i, sg := range segs {
		tree.InsertBox(sg.BBox(), i)
	}
	for i, sg := range segs {
		tree.VisitOverlapping(sg.BBox(), func(j int) bool {
			if j <= i {
				return true // each pair once
			}
			other := segs[j]
			switch geom.SegmentsIntersect(sg, other) {
			case geom.SegCross:
				rep.Reportf(-1, "extrusion chain segments cross: %v-%v and %v-%v",
					sg.A, sg.B, other.A, other.B)
			case geom.SegOverlap:
				rep.Reportf(-1, "extrusion chain segments collinearly overlap: %v-%v and %v-%v",
					sg.A, sg.B, other.A, other.B)
			case geom.SegTouch:
				if !shareEndpoint(sg, other) {
					rep.Reportf(-1, "extrusion chain segment touches another segment's interior: %v-%v and %v-%v",
						sg.A, sg.B, other.A, other.B)
				}
			}
			return true
		})
	}
}

func shareEndpoint(s, t geom.Segment) bool {
	return s.A == t.A || s.A == t.B || s.B == t.A || s.B == t.B
}
