package audit

// Topological checks: consistent CCW orientation with exact predicates,
// 2-manifold edge incidence and duplicate/orphan detection, and watertight
// boundary recovery against the generation-time surfaces.

import (
	"pamg2d/internal/geom"
)

// orientationCheck verifies every triangle references in-range, distinct
// vertices and is strictly counter-clockwise under the exact orientation
// predicate. Degenerate (collinear) and inverted (clockwise) elements are
// reported separately so a flipped triangle is distinguishable from a
// collapsed one.
type orientationCheck struct{}

func (orientationCheck) Name() string                { return "orientation" }
func (orientationCheck) Applicable(s *Snapshot) bool { return true }
func (orientationCheck) Local() bool                 { return true }

func (orientationCheck) Run(s *Snapshot, from, to int, rep *Reporter) {
	m := s.Mesh
	for i := from; i < to; i++ {
		t := m.Triangles[i]
		if !indicesValid(m, t) {
			rep.Reportf(i, "vertex index out of range: (%d,%d,%d) with %d points", t[0], t[1], t[2], len(m.Points))
			continue
		}
		if t[0] == t[1] || t[1] == t[2] || t[0] == t[2] {
			rep.Reportf(i, "repeated vertex index: (%d,%d,%d)", t[0], t[1], t[2])
			continue
		}
		switch sign := geom.Orient2DSign(m.Points[t[0]], m.Points[t[1]], m.Points[t[2]]); {
		case sign < 0:
			rep.Reportf(i, "clockwise (inverted) triangle (%d,%d,%d)", t[0], t[1], t[2])
		case sign == 0:
			rep.Reportf(i, "degenerate (collinear) triangle (%d,%d,%d)", t[0], t[1], t[2])
		}
	}
}

// conformityCheck verifies the mesh is a 2-manifold simplicial complex over
// its indexed vertices: every directed edge used at most once (no
// overlapping elements), every undirected edge shared by at most two
// triangles, no duplicate elements, no duplicate point coordinates, and no
// orphan points unreferenced by any triangle.
type conformityCheck struct{}

func (conformityCheck) Name() string                { return "conformity" }
func (conformityCheck) Applicable(s *Snapshot) bool { return true }
func (conformityCheck) Local() bool                 { return false }

func (conformityCheck) Run(s *Snapshot, _, _ int, rep *Reporter) {
	m := s.Mesh
	type dedge struct{ a, b int32 }
	dir := make(map[dedge]int32, 3*len(m.Triangles))
	seen := make(map[[3]int32]int32, len(m.Triangles))
	used := make([]bool, len(m.Points))
	for i, t := range m.Triangles {
		if !indicesValid(m, t) || t[0] == t[1] || t[1] == t[2] || t[0] == t[2] {
			continue // orientation's finding; skip to keep maps well-formed
		}
		key := canonicalTri(t)
		if prev, ok := seen[key]; ok {
			rep.Reportf(i, "duplicate of triangle %d", prev)
			continue
		}
		seen[key] = int32(i)
		for e := 0; e < 3; e++ {
			u, v := t[e], t[(e+1)%3]
			used[u] = true
			if prev, ok := dir[dedge{u, v}]; ok {
				rep.Reportf(i, "directed edge (%d,%d) already used by triangle %d: overlapping elements", u, v, prev)
				continue
			}
			dir[dedge{u, v}] = int32(i)
		}
	}
	// Three or more triangles on one undirected index edge can only happen
	// via a repeated directed edge (caught above); the coordinate-keyed
	// incidence map additionally catches the same failure between distinct
	// index pairs that alias the same coordinates.
	for e, n := range s.edgeUse {
		if n > 2 {
			rep.Reportf(-1, "edge %v-%v shared by %d triangles", e.a, e.b, n)
		}
	}
	dupPts := make(map[geom.Point]int32, len(m.Points))
	for i, p := range m.Points {
		if prev, ok := dupPts[p]; ok {
			rep.Reportf(-1, "point %d duplicates point %d at %v", i, prev, p)
			continue
		}
		dupPts[p] = int32(i)
	}
	for i, u := range used {
		if !u {
			rep.Reportf(-1, "orphan point %d at %v referenced by no triangle", i, m.Points[i])
		}
	}
}

func canonicalTri(t [3]int32) [3]int32 {
	a, b, c := t[0], t[1], t[2]
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return [3]int32{a, b, c}
}

// boundaryCheck verifies the mesh boundary is watertight: the directed
// boundary edges decompose into disjoint simple cycles (every boundary
// vertex has exactly one incoming and one outgoing boundary edge). When the
// snapshot carries the generation-time boundary layers, it additionally
// verifies boundary recovery against the input surfaces: every refined
// surface vertex is present in the mesh and every surface segment appears
// verbatim as a mesh boundary edge — the surfaces are holes of the final
// mesh, so losing a segment means a leak into the body. In StrictDelaunay
// mode the boundary must be a single loop (an unconstrained Delaunay
// triangulation's boundary is its point set's convex hull), which catches
// deleted elements that tear an interior hole.
type boundaryCheck struct{}

func (boundaryCheck) Name() string                { return "boundary" }
func (boundaryCheck) Applicable(s *Snapshot) bool { return true }
func (boundaryCheck) Local() bool                 { return false }

func (boundaryCheck) Run(s *Snapshot, _, _ int, rep *Reporter) {
	// In/out degree over the directed boundary edges. Any conforming
	// oriented triangle complex has in == out at every boundary vertex
	// (each triangle fan incident to the vertex contributes one incoming
	// and one outgoing boundary edge); a mismatch means the boundary is
	// torn. Degree above 1 is a pinch — two fans meeting at a point — which
	// valid kernel output can produce for degenerate inputs (dropped
	// convex-hull slivers), so it is only an error in strict mode.
	out := make(map[int32][]int32, len(s.boundary)) // vertex -> successors
	inN := make(map[int32]int, len(s.boundary))
	for _, e := range s.boundary {
		out[e[0]] = append(out[e[0]], e[1])
		inN[e[1]]++
	}
	for v, succ := range out {
		if len(succ) != inN[v] {
			rep.Reportf(int(s.boundaryT[[2]int32{v, succ[0]}]),
				"boundary vertex %d has %d outgoing / %d incoming boundary edges", v, len(succ), inN[v])
		}
		if s.StrictDelaunay && len(succ) > 1 {
			rep.Reportf(-1, "boundary vertex %d pinched: %d boundary fans, want a simple hull loop", v, len(succ))
		}
	}
	for v, n := range inN {
		if len(out[v]) == 0 {
			rep.Reportf(-1, "boundary vertex %d has %d incoming boundary edges but no outgoing one", v, n)
		}
	}
	// Count the closed walks by consuming successor links (pairing at a
	// pinched vertex is arbitrary but the walk count is what matters).
	loops := 0
	for _, e := range s.boundary {
		v := e[0]
		if len(out[v]) == 0 {
			continue
		}
		loops++
		for steps := 0; len(out[v]) > 0 && steps <= len(s.boundary); steps++ {
			next := out[v][len(out[v])-1]
			out[v] = out[v][:len(out[v])-1]
			v = next
		}
	}
	if s.StrictDelaunay && loops != 1 {
		rep.Reportf(-1, "boundary splits into %d loops, want a single convex hull loop", loops)
	}
	// Watertight surface recovery: every refined surface vertex present,
	// every surface segment a boundary edge of the mesh.
	if len(s.Layers) == 0 {
		return
	}
	bset := make(map[[2]int32]bool, len(s.boundary))
	for _, e := range s.boundary {
		bset[e] = true
	}
	for li, l := range s.Layers {
		pts := l.Surface.Points
		n := len(pts)
		for i := 0; i < n; i++ {
			ai, aok := s.pointIdx[pts[i]]
			bi, bok := s.pointIdx[pts[(i+1)%n]]
			if !aok {
				rep.Reportf(-1, "surface %d vertex %d at %v missing from mesh", li, i, pts[i])
				continue
			}
			if !bok {
				continue // reported when its own segment is visited
			}
			// Surfaces are CW holes in the final mesh, so the boundary edge
			// runs opposite the CCW surface loop; accept either direction.
			if !bset[[2]int32{ai, bi}] && !bset[[2]int32{bi, ai}] {
				if n := s.edgeUse[edgeOf(pts[i], pts[(i+1)%n])]; n > 0 {
					rep.Reportf(-1, "surface %d segment %d (%v-%v) is an interior edge (%d triangles), not a boundary edge",
						li, i, pts[i], pts[(i+1)%n], n)
				} else {
					rep.Reportf(-1, "surface %d segment %d (%v-%v) not recovered as a mesh boundary edge",
						li, i, pts[i], pts[(i+1)%n])
				}
			}
		}
	}
}
