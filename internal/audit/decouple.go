package audit

// The decoupling check. Graded Delaunay Decoupling is only sound if the
// decoupling paths survive triangulation intact: every path edge must
// appear verbatim as a conforming edge of the merged mesh. A missing edge
// means either an element straddles the path (the sectors were not
// actually independent) or refinement inserted an encroaching point and
// split a border that the k-rule (k = sqrt(A/sqrt(2))/2) promised to
// protect. An edge present once too often, or with only one incident
// triangle off the far-field border, means the two sectors sharing the
// path disagree about it.

type decoupleCheck struct{}

func (decoupleCheck) Name() string { return "decoupling" }

func (decoupleCheck) Applicable(s *Snapshot) bool { return len(s.Paths) > 0 }

func (decoupleCheck) Local() bool { return false }

func (decoupleCheck) Run(s *Snapshot, _, _ int, rep *Reporter) {
	for _, pe := range s.Paths {
		a, b := pe[0], pe[1]
		if a == b {
			continue
		}
		if _, ok := s.pointIdx[a]; !ok {
			rep.Reportf(-1, "path vertex %v missing from mesh", a)
			continue
		}
		if _, ok := s.pointIdx[b]; !ok {
			rep.Reportf(-1, "path vertex %v missing from mesh", b)
			continue
		}
		switch n := s.edgeUse[edgeOf(a, b)]; {
		case n == 0:
			rep.Reportf(-1, "path edge %v-%v not a mesh edge: an element straddles the decoupling path", a, b)
		case n == 1 && !s.onFarfieldBorder(a, b):
			rep.Reportf(-1, "path edge %v-%v has one incident triangle: sectors disagree on the shared border", a, b)
		case n > 2:
			rep.Reportf(-1, "path edge %v-%v shared by %d triangles", a, b, n)
		}
	}
}
