package audit

// The exact-predicate Delaunay audit: for every interior edge that is not
// a constrained/decoupling path edge, the opposite vertex of the neighbor
// triangle must not lie strictly inside the triangle's circumcircle (the
// local Delaunay property; Delaunay's lemma lifts local to global within
// each unconstrained region). The incircle test is geom.InCircleSign — the
// filtered-exact Shewchuk predicate whose slow path runs on the pooled
// expansion arena — so the audit never misclassifies a near-cocircular
// configuration.

import "pamg2d/internal/geom"

// delaunayCheck audits the empty-circumcircle property of non-constrained
// interior edges. Constrained edges (decoupling paths, sector borders, the
// boundary-layer outer boundary) are exempt: a constrained Delaunay
// triangulation only guarantees Delaunayness away from its constraints. In
// StrictDelaunay mode there are no exemptions — every interior edge must
// pass, which is the contract of an unconstrained Delaunay triangulation.
type delaunayCheck struct{}

func (delaunayCheck) Name() string { return "delaunay" }

func (delaunayCheck) Applicable(s *Snapshot) bool { return !s.SkipDelaunay }

func (delaunayCheck) Local() bool { return true }

func (delaunayCheck) Run(s *Snapshot, from, to int, rep *Reporter) {
	m := s.Mesh
	for i := from; i < to; i++ {
		t := m.Triangles[i]
		if !indicesValid(m, t) || t[0] == t[1] || t[1] == t[2] || t[0] == t[2] {
			continue // orientation's finding
		}
		a, b, c := m.Points[t[0]], m.Points[t[1]], m.Points[t[2]]
		if geom.Orient2DSign(a, b, c) <= 0 {
			continue // InCircle's sign convention assumes CCW; orientation reports this
		}
		for e := 0; e < 3; e++ {
			nb := int(s.adj[i][e])
			if nb < 0 || nb < i {
				continue // boundary edge, or the pair was audited from nb's side
			}
			u, v := t[e], t[(e+1)%3]
			if !s.StrictDelaunay && s.pathSet[edgeOf(m.Points[u], m.Points[v])] {
				continue // constrained edge: CDT makes no promise across it
			}
			nt := m.Triangles[nb]
			opp, ok := oppositeVertex(nt, u, v)
			if !ok || opp < 0 || int(opp) >= len(m.Points) {
				continue // corrupt neighbor; orientation/conformity report it
			}
			p := m.Points[opp]
			if geom.InCircleSign(a, b, c, p) > 0 {
				rep.Reportf(i, "edge (%d,%d): vertex %d of neighbor %d inside circumcircle of (%d,%d,%d)",
					u, v, opp, nb, t[0], t[1], t[2])
			}
		}
	}
}

// oppositeVertex returns the vertex of triangle nt that is not u or v.
func oppositeVertex(nt [3]int32, u, v int32) (int32, bool) {
	for _, w := range nt {
		if w != u && w != v {
			return w, true
		}
	}
	return -1, false
}
