package audit

import (
	"testing"

	"pamg2d/internal/delaunay"
	"pamg2d/internal/geom"
	"pamg2d/internal/mesh"
)

// FuzzAuditDelaunay drives the audit engine from both sides: a freshly
// triangulated point cloud must always pass the strict structural +
// Delaunay audit, and a mesh corrupted by one of three guaranteed-invalid
// index mutations (orientation flip, repeated vertex, out-of-range index)
// must always be flagged, attributed to the mutated element.
//
// The high bits of mut select the triangulation kernel (mut/64 + 1 insertion
// workers, so mut < 64 keeps the original sequential kernel and the fuzzer
// explores every worker count): the concurrent independent-set engine must
// produce meshes the audit finds exactly as clean as the sequential one's.
func FuzzAuditDelaunay(f *testing.F) {
	f.Add([]byte{0, 0, 50, 0, 0, 50, 50, 50, 25, 10, 10, 40}, uint8(0), uint16(0))
	f.Add([]byte{0, 0, 90, 10, 40, 80, 10, 60, 70, 20, 30, 30, 60, 50}, uint8(1), uint16(1))
	f.Add([]byte{5, 5, 200, 5, 5, 200, 200, 200, 100, 100, 150, 42, 33, 180}, uint8(2), uint16(2))
	// Parallel-kernel seed: mut 193 -> 4 workers, on a cloud with duplicate
	// and tightly clustered points that exercise the conflict-retry and
	// sequential-fallback paths.
	f.Add([]byte{0, 0, 200, 0, 0, 200, 200, 200, 100, 100, 100, 100, 101, 100,
		100, 101, 101, 101, 30, 170, 170, 30, 90, 90, 110, 110, 50, 50}, uint8(193), uint16(4))

	f.Fuzz(func(t *testing.T, data []byte, mut uint8, pick uint16) {
		if len(data) < 6 || len(data) > 2048 {
			t.Skip()
		}
		pts := make([]geom.Point, 0, len(data)/2)
		for i := 0; i+1 < len(data); i += 2 {
			pts = append(pts, geom.Pt(float64(data[i]), float64(data[i+1])))
		}
		in := delaunay.Input{Points: pts}
		var res *delaunay.Result
		var err error
		if workers := int(mut)/64 + 1; workers > 1 {
			res, _, err = delaunay.TriangulateParallel(in, delaunay.ParallelOptions{Workers: workers})
		} else {
			res, err = delaunay.Triangulate(in)
		}
		if err != nil {
			t.Skip() // degenerate input (e.g. all points coincident)
		}
		m := &mesh.Mesh{Points: res.Points, Triangles: res.Triangles}
		if m.NumTriangles() == 0 {
			t.Skip() // collinear cloud: nothing to audit or corrupt
		}
		// Non-strict mode: with no constrained paths the Delaunay audit still
		// covers every interior edge, while the boundary audit tolerates the
		// pinched hulls the kernel legitimately produces for degenerate
		// (collinear-subset) clouds by dropping hull slivers.
		checks := []Check{orientationCheck{}, conformityCheck{}, boundaryCheck{}, delaunayCheck{}}

		rep := Run(&Snapshot{Mesh: m}, checks)
		if !rep.Ok() {
			t.Fatalf("fresh Delaunay triangulation of %d points failed audit: %+v",
				len(pts), rep.Violations)
		}

		victim := int(pick) % m.NumTriangles()
		tri := &m.Triangles[victim]
		switch mut % 3 {
		case 0: // orientation flip
			tri[0], tri[1] = tri[1], tri[0]
		case 1: // repeated vertex (degenerate element)
			tri[1] = tri[0]
		case 2: // out-of-range index
			tri[2] = int32(len(m.Points)) + 3
		}
		rep = Run(&Snapshot{Mesh: m}, checks)
		if rep.Ok() {
			t.Fatalf("mutation %d of element %d not flagged", mut%3, victim)
		}
		attributed := false
		for _, v := range rep.Violations {
			if v.Check == "orientation" && v.Element == victim {
				attributed = true
				break
			}
		}
		if !attributed {
			t.Fatalf("mutation %d flagged but not attributed to element %d: %+v",
				mut%3, victim, rep.Violations)
		}
	})
}
