// Package benchcfg holds the scaled-down benchmark configurations shared
// between the repository benchmarks (bench_test.go) and cmd/benchreport, so
// the committed BENCH_<date>.json trajectory measures exactly what
// `go test -bench` measures.
package benchcfg

import (
	"pamg2d/internal/airfoil"
	"pamg2d/internal/blayer"
	"pamg2d/internal/core"
	"pamg2d/internal/geom"
	"pamg2d/internal/growth"
	"pamg2d/internal/project"
)

// PushButton returns the shared scaled-down pipeline configuration used by
// BenchmarkPushButton and the other full-pipeline benchmarks: NACA 0012,
// moderately fine boundary layer, rank-2 pipeline.
func PushButton() core.Config {
	cfg := core.DefaultConfig()
	cfg.Geometry = airfoil.Single(airfoil.NACA0012, 48, 10)
	cfg.BL = blayer.Params{
		Growth:         growth.Geometric{H0: 1e-3, Ratio: 1.3},
		MaxLayers:      15,
		MaxAngleDeg:    20,
		CuspAngleDeg:   60,
		FanSpacingDeg:  15,
		FanCurving:     0.5,
		IsotropyFactor: 1.0,
		TrimFactor:     1.0,
	}
	cfg.SurfaceH0 = 0.04
	cfg.Gradation = 0.25
	cfg.HMax = 2
	cfg.Ranks = 2
	return cfg
}

// Fig08Points builds the boundary-layer point set that the Figure 8
// benchmark decomposes into independent Delaunay subdomains.
func Fig08Points() ([]geom.Point, error) {
	cfg := airfoil.Single(airfoil.NACA0012, 256, 30)
	g, err := cfg.Graph()
	if err != nil {
		return nil, err
	}
	layers := blayer.Generate(g, blayer.DefaultParams())
	return layers[0].AllPoints(), nil
}

// Fig08Options returns the decomposition options of the Figure 8 benchmark
// (depth 7 yields up to 128 subdomains).
func Fig08Options() project.Options {
	return project.Options{MinVerts: 2, MaxDepth: 7}
}

// AdaptMetric is the analytic boundary-layer metric spec the adaptation
// benchmarks drive the PushButton mesh toward: a stretch field off the
// chord with 0.02 normal spacing at the wall relaxing to isotropic 0.3.
// It lives here so BenchmarkPushButtonAdapt and cmd/benchreport measure
// the identical workload.
const AdaptMetric = "bl:x0=0,y0=0,x1=1,y1=0,hn=0.02,ht=0.3,grow=0.6"
