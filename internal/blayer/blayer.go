// Package blayer implements the paper's anisotropic boundary-layer
// generator: extrusion-based point insertion along surface normals
// (Aubry et al.), refinement of large angles between neighboring rays by
// interpolated rays, fans of curved rays at cusps and blunt trailing
// edges, and hierarchical self- and multi-element intersection resolution
// (Cohen–Sutherland AABB pruning, then an alternating digital tree over
// 4-D extent-box points, then exact segment intersection tests).
package blayer

import (
	"math"

	"pamg2d/internal/adt"
	"pamg2d/internal/clip"
	"pamg2d/internal/geom"
	"pamg2d/internal/growth"
	"pamg2d/internal/pslg"
)

// Params controls boundary-layer generation.
type Params struct {
	// Growth spaces the layer points along each ray.
	Growth growth.Function
	// MaxLayers caps the number of layers per ray.
	MaxLayers int
	// MaxAngleDeg is the largest allowed angle between the rays of two
	// neighboring surface vertices; beyond it, new surface points with
	// linearly interpolated normals are inserted between them (paper
	// section II.B).
	MaxAngleDeg float64
	// CuspAngleDeg is the turn angle at a single vertex beyond which a fan
	// of rays is emitted at that vertex instead of new surface points.
	CuspAngleDeg float64
	// FanSpacingDeg is the angular spacing between consecutive fan rays.
	FanSpacingDeg float64
	// FanCurving bends fan rays toward the fan bisector with increasing
	// height (the paper's fans "curve inward towards the cusp point", as
	// the physics of the wake dictate). Zero disables curving; 1 bends
	// fully onto the bisector at the last layer.
	FanCurving float64
	// IsotropyFactor stops layer insertion when the normal spacing reaches
	// this multiple of the local tangential spacing, providing the smooth
	// transition to the isotropic region of Figure 5.
	IsotropyFactor float64
	// TrimFactor scales the distance to a detected ray intersection when
	// trimming; 1 inserts points strictly up to the intersection point.
	TrimFactor float64
	// SmoothLayers, when positive, limits the difference in layer counts
	// between neighboring rays to this value, smoothing the cliffs that
	// trimming and the isotropy cutoff would otherwise leave in the outer
	// border (the gradual height variation of Figure 5). Zero disables
	// smoothing.
	SmoothLayers int
}

// DefaultParams returns parameters suitable for chord-1 airfoils.
func DefaultParams() Params {
	return Params{
		Growth:         growth.Geometric{H0: 4e-4, Ratio: 1.25},
		MaxLayers:      40,
		MaxAngleDeg:    20,
		CuspAngleDeg:   60,
		FanSpacingDeg:  15,
		FanCurving:     0.5,
		IsotropyFactor: 1.0,
		TrimFactor:     1.0,
	}
}

// Ray is one extrusion ray of the boundary layer.
type Ray struct {
	Origin geom.Point
	Dir    geom.Vec // unit outward direction
	// MaxLen limits point insertion (set by intersection trimming);
	// +Inf when untrimmed.
	MaxLen float64
	// Tangential is the local surface spacing at the origin, used for the
	// isotropy cutoff.
	Tangential float64
	// Fan marks rays that belong to a cusp fan.
	Fan bool
	// FanBisector is the direction fan rays curve toward (unit).
	FanBisector geom.Vec
	// SurfaceIdx is the index of the originating vertex in the refined
	// surface loop (several fan rays may share one).
	SurfaceIdx int
}

// Layer is the generated boundary layer of one element.
type Layer struct {
	// Surface is the refined surface loop (original vertices plus any
	// interpolated large-angle vertices).
	Surface pslg.Loop
	// Rays, one or more per surface vertex in loop order.
	Rays []Ray
	// Points[i] are the inserted points of Rays[i], nearest first.
	Points [][]geom.Point
	// Stats counts the refinement and intersection-resolution work.
	Stats Stats
}

// Stats reports what generation did, mirroring the features of the
// paper's Figures 3, 4 and 13.
type Stats struct {
	OriginalVertices   int
	InsertedVertices   int // large-angle interpolated surface points
	FanRays            int
	SelfIntersections  int
	MultiIntersections int
	TrimmedRays        int
	TotalPoints        int
}

// normals returns the outward unit normal of each directed edge of the
// CCW loop (edge direction rotated -90 degrees).
func edgeNormals(pts []geom.Point) []geom.Vec {
	n := len(pts)
	out := make([]geom.Vec, n)
	for i := 0; i < n; i++ {
		d := pts[(i+1)%n].Sub(pts[i]).Unit()
		out[i] = geom.V(d.Y, -d.X)
	}
	return out
}

// VertexNormals returns the outward unit normal at each vertex of the CCW
// loop: the angle bisector of the two adjacent edge normals.
func VertexNormals(pts []geom.Point) []geom.Vec {
	n := len(pts)
	en := edgeNormals(pts)
	out := make([]geom.Vec, n)
	for i := 0; i < n; i++ {
		prev := en[(i+n-1)%n]
		sum := prev.Add(en[i])
		if sum.Len() < 1e-12 {
			// 180-degree turn (knife edge): fall back to the edge tangent.
			sum = pts[(i+1)%n].Sub(pts[i])
		}
		out[i] = sum.Unit()
	}
	return out
}

// TurnAngle returns the exterior turn angle at vertex i of the loop in
// radians: the angle between the adjacent edge normals. Zero for straight
// segments; approaches pi at a knife-edge cusp.
func TurnAngle(pts []geom.Point, i int) float64 {
	n := len(pts)
	en := edgeNormals(pts)
	return en[(i+n-1)%n].AngleBetween(en[i])
}

// Convex reports whether vertex i of the CCW loop is convex (the body
// bulges into the fluid there). Fans are only emitted at convex cusps:
// at a concave corner the angular wedge between the adjacent normals
// passes through the body, so interpolated fan directions would too.
func Convex(pts []geom.Point, i int) bool {
	n := len(pts)
	return geom.Orient2DSign(pts[(i+n-1)%n], pts[i], pts[(i+1)%n]) > 0
}

// Generate builds the boundary layers of every surface loop in the graph
// and resolves self- and multi-element intersections.
func Generate(g *pslg.Graph, p Params) []*Layer {
	layers := GenerateRays(g, p)
	for _, l := range layers {
		insertPoints(l, p)
	}
	return layers
}

// GenerateRays runs every stage up to (but excluding) point insertion:
// surface refinement, ray construction with fans, and self- and
// multi-element intersection resolution. The caller then inserts points,
// possibly distributing ray ranges across ranks (the paper's parallel
// point insertion, where only the coordinates are gathered at the root).
func GenerateRays(g *pslg.Graph, p Params) []*Layer {
	layers := make([]*Layer, len(g.Surfaces))
	for i := range g.Surfaces {
		layers[i] = generateElement(&g.Surfaces[i], p)
	}
	resolveMultiElement(layers, p)
	return layers
}

// generateElement computes the refined surface, rays and self-intersection
// trims of a single element (points are not inserted yet; multi-element
// resolution must run first).
func generateElement(loop *pslg.Loop, p Params) *Layer {
	l := &Layer{}
	l.Stats.OriginalVertices = len(loop.Points)

	refined := refineSurface(loop.Points, p, &l.Stats)
	l.Surface = pslg.Loop{Points: refined, Name: loop.Name}
	l.Rays = buildRays(refined, p, &l.Stats)
	resolveSelf(l, p)
	return l
}

// refineSurface inserts interpolated surface points between neighboring
// vertices whose vertex normals differ by more than MaxAngleDeg, unless the
// angle is concentrated at a cusp vertex (handled by fans later).
func refineSurface(pts []geom.Point, p Params, st *Stats) []geom.Point {
	n := len(pts)
	vn := VertexNormals(pts)
	maxAngle := p.MaxAngleDeg * math.Pi / 180
	cusp := p.CuspAngleDeg * math.Pi / 180
	var out []geom.Point
	for i := 0; i < n; i++ {
		out = append(out, pts[i])
		j := (i + 1) % n
		ang := vn[i].AngleBetween(vn[j])
		if ang <= maxAngle {
			continue
		}
		// If the angle is concentrated at a convex cusp at either endpoint,
		// the fan mechanism will cover it; skip edge subdivision.
		if (TurnAngle(pts, i) > cusp && Convex(pts, i)) || (TurnAngle(pts, j) > cusp && Convex(pts, j)) {
			continue
		}
		m := int(math.Ceil(ang/maxAngle)) - 1
		for k := 1; k <= m; k++ {
			t := float64(k) / float64(m+1)
			out = append(out, pts[i].Lerp(pts[j], t))
			st.InsertedVertices++
		}
	}
	return out
}

// buildRays creates one ray per refined surface vertex plus fans at cusp
// vertices.
func buildRays(pts []geom.Point, p Params, st *Stats) []Ray {
	n := len(pts)
	vn := VertexNormals(pts)
	en := edgeNormals(pts)
	cusp := p.CuspAngleDeg * math.Pi / 180
	fanStep := p.FanSpacingDeg * math.Pi / 180
	var rays []Ray
	for i := 0; i < n; i++ {
		tangential := (pts[i].Dist(pts[(i+n-1)%n]) + pts[i].Dist(pts[(i+1)%n])) / 2
		turn := TurnAngle(pts, i)
		if turn > cusp && Convex(pts, i) {
			// Fan of rays sweeping from the normal of the incoming edge to
			// the normal of the outgoing edge; directions by angular
			// interpolation, curving handled at insertion time.
			from := en[(i+n-1)%n]
			total := turn
			k := int(math.Ceil(total/fanStep)) + 1
			if k < 3 {
				k = 3
			}
			// Rotation sign: the outgoing normal is the incoming normal
			// rotated by +-turn; probe both.
			sign := 1.0
			if from.Rotate(total).Sub(en[i]).Len() > from.Rotate(-total).Sub(en[i]).Len() {
				sign = -1
			}
			for f := 0; f < k; f++ {
				t := float64(f) / float64(k-1)
				dir := from.Rotate(sign * total * t)
				rays = append(rays, Ray{
					Origin:      pts[i],
					Dir:         dir.Unit(),
					MaxLen:      math.Inf(1),
					Tangential:  tangential,
					Fan:         true,
					FanBisector: vn[i],
					SurfaceIdx:  i,
				})
				st.FanRays++
			}
			continue
		}
		rays = append(rays, Ray{
			Origin:     pts[i],
			Dir:        vn[i],
			MaxLen:     math.Inf(1),
			Tangential: tangential,
			SurfaceIdx: i,
		})
	}
	return rays
}

// fullLength returns the untrimmed extent of a ray: the growth offset of
// the last possible layer.
func fullLength(p Params) float64 {
	return p.Growth.Offset(p.MaxLayers - 1)
}

// raySegment returns the ray as a segment of its current allowed length.
func raySegment(r *Ray, p Params) geom.Segment {
	l := fullLength(p)
	if r.MaxLen < l {
		l = r.MaxLen
	}
	return geom.Segment{A: r.Origin, B: r.Origin.Add(r.Dir.Scale(l))}
}

// resolveSelf trims rays of one element against each other and against
// the element's own surface, using an ADT over extent boxes (paper
// section II.B, n log n). A ray crossing the surface (possible at deep
// concavities when it slips between the opposing wall's rays) is trimmed
// to half the distance so the opposing wall's layer keeps room.
func resolveSelf(l *Layer, p Params) {
	nr := len(l.Rays)
	segs := make([]geom.Segment, nr)
	world := geom.EmptyBBox()
	for i := range l.Rays {
		segs[i] = raySegment(&l.Rays[i], p)
		world = world.Union(segs[i].BBox())
	}
	surf := l.Surface.Points
	ns := len(surf)
	tree := adt.NewForBox(world)
	for i := range segs {
		tree.InsertBox(segs[i].BBox(), i)
	}
	for k := 0; k < ns; k++ {
		s := geom.Segment{A: surf[k], B: surf[(k+1)%ns]}
		tree.InsertBox(s.BBox(), nr+k)
	}
	for i := range segs {
		ri := &l.Rays[i]
		tree.VisitOverlapping(segs[i].BBox(), func(j int) bool {
			if j >= nr {
				// Surface segment: skip the two segments adjacent to the
				// ray's origin vertex.
				k := j - nr
				if k == ri.SurfaceIdx || (k+1)%ns == ri.SurfaceIdx {
					return true
				}
				s := geom.Segment{A: surf[k], B: surf[(k+1)%ns]}
				si := raySegment(ri, p)
				q, _, ok := geom.SegmentIntersection(si, s)
				if !ok {
					return true
				}
				d := q.Dist(ri.Origin)
				if d < 1e-12*si.Len() {
					return true // grazing its own origin
				}
				if d/2 < ri.MaxLen {
					ri.MaxLen = d / 2
					l.Stats.SelfIntersections++
				}
				return true
			}
			if j <= i {
				return true
			}
			rj := &l.Rays[j]
			// Neighboring rays sharing the origin (fans) never intersect
			// away from the wall.
			if ri.Origin == rj.Origin {
				return true
			}
			si := raySegment(ri, p)
			sj := raySegment(rj, p)
			q, u, ok := geom.SegmentIntersection(si, sj)
			if !ok || geom.SegmentsIntersect(si, sj) == geom.SegTouch {
				return true
			}
			l.Stats.SelfIntersections++
			trim(ri, u*si.Len(), p)
			trim(rj, q.Dist(rj.Origin), p)
			return true
		})
	}
}

func trim(r *Ray, dist float64, p Params) {
	d := dist * p.TrimFactor
	if d < r.MaxLen {
		r.MaxLen = d
	}
}

// OuterBorder returns the current outer border polyline of the layer: the
// endpoint of each ray in order. Before point insertion this uses the
// allowed ray extents; after insertion it uses the last inserted point.
func (l *Layer) OuterBorder(p Params) []geom.Point {
	out := make([]geom.Point, 0, len(l.Rays))
	for i := range l.Rays {
		if len(l.Points) == len(l.Rays) && len(l.Points[i]) > 0 {
			out = append(out, l.Points[i][len(l.Points[i])-1])
			continue
		}
		out = append(out, raySegment(&l.Rays[i], p).B)
	}
	return out
}

// resolveMultiElement trims each element's rays against the outer borders
// of every other element's boundary layer: candidate rays are pruned by
// the other layer's AABB with Cohen–Sutherland clipping, then by an ADT
// over the border segments' extent boxes, and finally tested exactly.
func resolveMultiElement(layers []*Layer, p Params) {
	if len(layers) < 2 {
		return
	}
	type border struct {
		segs []geom.Segment
		// surface flags segments that belong to the element surface rather
		// than the layer's outer border; hits there trim to half distance.
		surface []bool
		bb      geom.BBox
		tree    *adt.Tree
	}
	borders := make([]border, len(layers))
	for i, l := range layers {
		poly := l.OuterBorder(p)
		bb := geom.BBoxOf(poly)
		b := border{bb: bb}
		n := len(poly)
		for k := 0; k < n; k++ {
			b.segs = append(b.segs, geom.Segment{A: poly[k], B: poly[(k+1)%n]})
			b.surface = append(b.surface, false)
		}
		surf := l.Surface.Points
		ns := len(surf)
		for k := 0; k < ns; k++ {
			b.segs = append(b.segs, geom.Segment{A: surf[k], B: surf[(k+1)%ns]})
			b.surface = append(b.surface, true)
		}
		b.tree = adt.NewForBox(bb)
		for k := range b.segs {
			b.tree.InsertBox(b.segs[k].BBox(), k)
		}
		borders[i] = b
	}
	for i, l := range layers {
		for j := range layers {
			if i == j {
				continue
			}
			bj := &borders[j]
			for ri := range l.Rays {
				r := &l.Rays[ri]
				rs := raySegment(r, p)
				// Stage 1: Cohen–Sutherland AABB pruning.
				if !clip.SegmentIntersectsBox(rs, bj.bb) {
					continue
				}
				// Stage 2: ADT extent-box query; stage 3: exact tests.
				trimmed := false
				bj.tree.VisitOverlapping(rs.BBox(), func(k int) bool {
					q, _, ok := geom.SegmentIntersection(rs, bj.segs[k])
					if ok {
						d := q.Dist(r.Origin)
						if bj.surface[k] {
							// Never reach the other body: stop halfway so
							// its own layer keeps room in the gap.
							if d/2 < r.MaxLen {
								r.MaxLen = d / 2
								trimmed = true
								rs = raySegment(r, p)
							}
						} else if d < r.MaxLen {
							trim(r, d, p)
							trimmed = true
							rs = raySegment(r, p)
						}
					}
					return true
				})
				if trimmed {
					l.Stats.MultiIntersections++
				}
			}
		}
	}
}

// insertPoints fills Points along every ray according to the growth
// function, stopping at the trimmed length or at the isotropy cutoff
// (optionally smoothed across neighbors), and curving fan rays toward
// their bisector.
func insertPoints(l *Layer, p Params) {
	counts := PlanCounts(l, p)
	l.Points = make([][]geom.Point, len(l.Rays))
	for i := range l.Rays {
		l.Points[i] = InsertRay(&l.Rays[i], p, counts[i])
		l.Stats.TotalPoints += len(l.Points[i])
	}
}

// PlanCounts computes the (smoothed) number of layer points each ray will
// carry, accounting for trimmed lengths and the isotropy cutoff. It also
// updates the layer's TrimmedRays statistic.
func PlanCounts(l *Layer, p Params) []int {
	counts := make([]int, len(l.Rays))
	for i := range l.Rays {
		r := &l.Rays[i]
		if r.MaxLen < fullLength(p) {
			l.Stats.TrimmedRays++
		}
		n := 0
		for k := 0; k < p.MaxLayers; k++ {
			if p.Growth.Offset(k) >= r.MaxLen {
				break
			}
			if p.IsotropyFactor > 0 && p.Growth.Spacing(k) >= p.IsotropyFactor*r.Tangential {
				break
			}
			n++
		}
		counts[i] = n
	}
	smoothCounts(counts, p.SmoothLayers)
	return counts
}

// InsertRay computes the count layer points of a single ray; rays are
// independent, so ranges of them can be inserted on different ranks.
func InsertRay(r *Ray, p Params, count int) []geom.Point {
	var pts []geom.Point
	cur := r.Origin
	prevOffset := 0.0
	for k := 0; k < count; k++ {
		off := p.Growth.Offset(k)
		dir := r.Dir
		if r.Fan && p.FanCurving > 0 {
			// Blend toward the bisector with height: the fan curves
			// inward, as the wake physics dictate (Figure 4).
			t := p.FanCurving * float64(k) / float64(p.MaxLayers)
			dir = r.Dir.Scale(1 - t).Add(r.FanBisector.Scale(t)).Unit()
		}
		cur = cur.Add(dir.Scale(off - prevOffset))
		prevOffset = off
		pts = append(pts, cur)
	}
	return pts
}

// SetPoints installs externally computed ray points (for example gathered
// from rank-distributed InsertRay calls) and updates the statistics.
func (l *Layer) SetPoints(points [][]geom.Point) {
	l.Points = points
	l.Stats.TotalPoints = 0
	for _, pts := range points {
		l.Stats.TotalPoints += len(pts)
	}
}

// smoothCounts caps the cyclic neighbor-to-neighbor difference of the
// layer counts at limit, only ever reducing counts (a ray may always carry
// fewer layers than its own bound, never more). Iterates to a fixed point.
func smoothCounts(counts []int, limit int) {
	if limit <= 0 || len(counts) < 3 {
		return
	}
	n := len(counts)
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			lo := counts[(i+n-1)%n]
			if c := counts[(i+1)%n]; c < lo {
				lo = c
			}
			if counts[i] > lo+limit {
				counts[i] = lo + limit
				changed = true
			}
		}
	}
}

// AllPoints gathers every inserted boundary-layer point of the layer,
// including the surface vertices. This mirrors the paper's gather of
// coordinates at the root before triangulation.
func (l *Layer) AllPoints() []geom.Point {
	out := make([]geom.Point, 0, l.Stats.TotalPoints+len(l.Surface.Points))
	out = append(out, l.Surface.Points...)
	for _, pts := range l.Points {
		out = append(out, pts...)
	}
	return out
}

// MaxAspectRatio estimates the largest anisotropy of the layer: the ratio
// of the tangential spacing to the first-layer normal spacing across all
// rays.
func (l *Layer) MaxAspectRatio(p Params) float64 {
	h0 := p.Growth.Spacing(0)
	worst := 0.0
	for i := range l.Rays {
		if len(l.Points[i]) == 0 {
			continue
		}
		if ar := l.Rays[i].Tangential / h0; ar > worst {
			worst = ar
		}
	}
	return worst
}
