package blayer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pamg2d/internal/airfoil"
	"pamg2d/internal/geom"
	"pamg2d/internal/growth"
	"pamg2d/internal/hull"
	"pamg2d/internal/pslg"
)

// ccwSquare is a CCW unit square.
func ccwSquare() []geom.Point {
	return []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)}
}

func TestEdgeNormalsSquare(t *testing.T) {
	en := edgeNormals(ccwSquare())
	want := []geom.Vec{geom.V(0, -1), geom.V(1, 0), geom.V(0, 1), geom.V(-1, 0)}
	for i := range en {
		if math.Abs(en[i].X-want[i].X) > 1e-12 || math.Abs(en[i].Y-want[i].Y) > 1e-12 {
			t.Errorf("edge normal %d = %v, want %v", i, en[i], want[i])
		}
	}
}

func TestVertexNormalsSquare(t *testing.T) {
	vn := VertexNormals(ccwSquare())
	s := 1 / math.Sqrt2
	want := []geom.Vec{geom.V(-s, -s), geom.V(s, -s), geom.V(s, s), geom.V(-s, s)}
	for i := range vn {
		if math.Abs(vn[i].X-want[i].X) > 1e-12 || math.Abs(vn[i].Y-want[i].Y) > 1e-12 {
			t.Errorf("vertex normal %d = %v, want %v", i, vn[i], want[i])
		}
	}
}

func TestVertexNormalsPointOutward(t *testing.T) {
	// For a CCW circle, vertex normals must point away from the center.
	n := 64
	pts := make([]geom.Point, n)
	for i := range pts {
		th := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = geom.Pt(math.Cos(th), math.Sin(th))
	}
	vn := VertexNormals(pts)
	for i := range pts {
		radial := pts[i].Sub(geom.Pt(0, 0)).Unit()
		if vn[i].Dot(radial) < 0.99 {
			t.Fatalf("normal %d = %v not radial (%v)", i, vn[i], radial)
		}
	}
}

func TestTurnAngle(t *testing.T) {
	sq := ccwSquare()
	for i := range sq {
		if got := TurnAngle(sq, i); math.Abs(got-math.Pi/2) > 1e-12 {
			t.Errorf("square corner %d turn = %v, want pi/2", i, got)
		}
	}
	// Straight polyline point has zero turn.
	line := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(2, 2), geom.Pt(0, 2)}
	if got := TurnAngle(line, 1); got > 1e-12 {
		t.Errorf("straight vertex turn = %v, want 0", got)
	}
}

func circleLoop(n int, r float64) pslg.Loop {
	pts := make([]geom.Point, n)
	for i := range pts {
		th := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = geom.Pt(r*math.Cos(th), r*math.Sin(th))
	}
	return pslg.Loop{Points: pts, Name: "circle"}
}

func smoothParams() Params {
	p := DefaultParams()
	p.Growth = growth.Geometric{H0: 0.01, Ratio: 1.2}
	p.MaxLayers = 10
	p.IsotropyFactor = 0 // no cutoff: predictable layer counts
	return p
}

func TestCircleLayerNoIntersections(t *testing.T) {
	g := &pslg.Graph{Surfaces: []pslg.Loop{circleLoop(64, 1)}}
	p := smoothParams()
	layers := Generate(g, p)
	if len(layers) != 1 {
		t.Fatal("one layer expected")
	}
	l := layers[0]
	if l.Stats.SelfIntersections != 0 {
		t.Errorf("convex circle must have no self-intersections, got %d", l.Stats.SelfIntersections)
	}
	if l.Stats.FanRays != 0 {
		t.Errorf("smooth circle must have no fans, got %d", l.Stats.FanRays)
	}
	if len(l.Rays) != 64 {
		t.Errorf("rays = %d, want 64", len(l.Rays))
	}
	for i, pts := range l.Points {
		if len(pts) != p.MaxLayers {
			t.Fatalf("ray %d: %d layers, want %d", i, len(pts), p.MaxLayers)
		}
		// All points must lie outside the unit circle, at increasing radii.
		prev := 1.0
		for _, q := range pts {
			r := math.Hypot(q.X, q.Y)
			if r <= prev {
				t.Fatalf("ray %d: radius not increasing (%v after %v)", i, r, prev)
			}
			prev = r
		}
	}
}

func TestIsotropyCutoff(t *testing.T) {
	// With an isotropy factor, rays must stop when the normal spacing
	// reaches the tangential spacing (Figure 5's variable-height layer).
	g := &pslg.Graph{Surfaces: []pslg.Loop{circleLoop(64, 1)}}
	p := smoothParams()
	p.IsotropyFactor = 1.0
	p.MaxLayers = 100
	layers := Generate(g, p)
	l := layers[0]
	tangential := l.Rays[0].Tangential
	for i, pts := range l.Points {
		n := len(pts)
		if n == 0 || n == 100 {
			t.Fatalf("ray %d: unexpected layer count %d", i, n)
		}
		if sp := p.Growth.Spacing(n - 1); sp >= tangential {
			t.Fatalf("ray %d: spacing %v at last layer exceeds tangential %v", i, sp, tangential)
		}
		if sp := p.Growth.Spacing(n); sp < tangential {
			t.Fatalf("ray %d: next spacing %v still below tangential; stopped early", i, sp)
		}
	}
}

func TestConcaveCornerSelfIntersection(t *testing.T) {
	// An L-shaped body (CCW): rays at the concave notch converge and must
	// be trimmed (Figure 13c: resolved self intersection at a 90 degree
	// concave corner).
	l := pslg.Loop{Name: "L", Points: []geom.Point{
		geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 2), geom.Pt(2, 2), geom.Pt(2, 4), geom.Pt(0, 4),
	}}
	// Subdivide the edges so rays are dense enough to collide.
	var pts []geom.Point
	n := len(l.Points)
	for i := 0; i < n; i++ {
		a, b := l.Points[i], l.Points[(i+1)%n]
		for k := 0; k < 8; k++ {
			pts = append(pts, a.Lerp(b, float64(k)/8))
		}
	}
	g := &pslg.Graph{Surfaces: []pslg.Loop{{Name: "L", Points: pts}}}
	p := smoothParams()
	p.Growth = growth.Geometric{H0: 0.05, Ratio: 1.3}
	p.MaxLayers = 12
	layers := Generate(g, p)
	st := layers[0].Stats
	if st.SelfIntersections == 0 {
		t.Error("concave corner must produce self-intersections")
	}
	if st.TrimmedRays == 0 {
		t.Error("intersecting rays must be trimmed")
	}
	// No two inserted points from converging rays may cross the bisector
	// of the notch: check that all points remain outside the body.
	loop := layers[0].Surface
	for i, rayPts := range layers[0].Points {
		for _, q := range rayPts {
			if loop.Contains(q) {
				t.Fatalf("ray %d: point %v inside the body", i, q)
			}
		}
	}
}

func TestCuspFanAtTrailingEdge(t *testing.T) {
	// The sharp (closed) NACA 0012 trailing edge is a cusp: a fan of rays
	// must be emitted there (Figure 4).
	cfg := airfoil.Single(airfoil.NACA0012, 48, 30)
	g, err := cfg.Graph()
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Growth = growth.Geometric{H0: 1e-3, Ratio: 1.3}
	p.MaxLayers = 15
	layers := Generate(g, p)
	st := layers[0].Stats
	if st.FanRays < 3 {
		t.Errorf("sharp trailing edge must emit a fan, got %d fan rays", st.FanRays)
	}
}

func TestFanCurvesTowardBisector(t *testing.T) {
	// A wedge body whose apex emits a fan: with curving on, the fan's
	// outermost points must bend toward the bisector compared to straight
	// extrapolation.
	wedge := pslg.Loop{Name: "wedge", Points: []geom.Point{
		geom.Pt(0, 0.4), geom.Pt(-2, 0.4), geom.Pt(-2, -0.4), geom.Pt(0, -0.4),
	}}
	g := &pslg.Graph{Surfaces: []pslg.Loop{wedge}}
	p := smoothParams()
	p.FanCurving = 0.8
	p.CuspAngleDeg = 60
	layers := Generate(g, p)
	l := layers[0]
	if l.Stats.FanRays == 0 {
		t.Skip("no fan emitted for this wedge; corner below cusp angle")
	}
	for i := range l.Rays {
		r := &l.Rays[i]
		if !r.Fan || len(l.Points[i]) < 3 {
			continue
		}
		last := l.Points[i][len(l.Points[i])-1]
		straight := r.Origin.Add(r.Dir.Scale(last.Dist(r.Origin)))
		// Unless the ray is already the bisector, the curved endpoint must
		// be closer to the bisector ray than the straight endpoint.
		if math.Abs(r.Dir.Dot(r.FanBisector)) > 0.999 {
			continue
		}
		bisLine := geom.Segment{A: r.Origin, B: r.Origin.Add(r.FanBisector.Scale(100))}
		if geom.PointSegDist(last, bisLine) >= geom.PointSegDist(straight, bisLine) {
			t.Fatalf("fan ray %d did not curve toward the bisector", i)
		}
	}
}

func TestMultiElementTrimming(t *testing.T) {
	// Two nearby squares whose layers overlap: rays of each must be
	// trimmed against the other's outer border (Figure 13d).
	a := pslg.Loop{Name: "a", Points: subdiv([]geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)}, 6)}
	b := pslg.Loop{Name: "b", Points: subdiv([]geom.Point{
		geom.Pt(1.2, 0), geom.Pt(2.2, 0), geom.Pt(2.2, 1), geom.Pt(1.2, 1)}, 6)}
	g := &pslg.Graph{Surfaces: []pslg.Loop{a, b}}
	p := smoothParams()
	p.Growth = growth.Geometric{H0: 0.04, Ratio: 1.3}
	p.MaxLayers = 10 // full height ~1.7: guaranteed overlap across the 0.2 gap
	layers := Generate(g, p)
	multi := layers[0].Stats.MultiIntersections + layers[1].Stats.MultiIntersections
	if multi == 0 {
		t.Fatal("overlapping layers must report multi-element intersections")
	}
	// Points of element a facing b must not cross b's surface.
	for i, rayPts := range layers[0].Points {
		for _, q := range rayPts {
			if layers[1].Surface.Contains(q) {
				t.Fatalf("element a ray %d point %v entered element b", i, q)
			}
		}
	}
}

func subdiv(pts []geom.Point, k int) []geom.Point {
	var out []geom.Point
	n := len(pts)
	for i := 0; i < n; i++ {
		a, b := pts[i], pts[(i+1)%n]
		for j := 0; j < k; j++ {
			out = append(out, a.Lerp(b, float64(j)/float64(k)))
		}
	}
	return out
}

func TestLargeAngleSurfaceRefinement(t *testing.T) {
	// A coarse circle has large angles between neighboring vertex normals;
	// refinement must insert interpolated surface points.
	g := &pslg.Graph{Surfaces: []pslg.Loop{circleLoop(8, 1)}}
	p := smoothParams()
	p.MaxAngleDeg = 10
	layers := Generate(g, p)
	st := layers[0].Stats
	if st.InsertedVertices == 0 {
		t.Error("coarse circle must trigger large-angle surface refinement")
	}
	if len(layers[0].Surface.Points) != st.OriginalVertices+st.InsertedVertices {
		t.Errorf("refined surface size %d != %d original + %d inserted",
			len(layers[0].Surface.Points), st.OriginalVertices, st.InsertedVertices)
	}
}

func TestAllPointsCount(t *testing.T) {
	g := &pslg.Graph{Surfaces: []pslg.Loop{circleLoop(32, 1)}}
	p := smoothParams()
	layers := Generate(g, p)
	l := layers[0]
	want := len(l.Surface.Points) + l.Stats.TotalPoints
	if got := len(l.AllPoints()); got != want {
		t.Errorf("AllPoints = %d, want %d", got, want)
	}
}

func TestThreeElementEndToEnd(t *testing.T) {
	cfg := airfoil.ThreeElement(48)
	g, err := cfg.Graph()
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Growth = growth.Geometric{H0: 5e-4, Ratio: 1.25}
	p.MaxLayers = 25
	layers := Generate(g, p)
	if len(layers) != 3 {
		t.Fatalf("layers = %d", len(layers))
	}
	var totalPts, totalFans int
	for _, l := range layers {
		totalPts += l.Stats.TotalPoints
		totalFans += l.Stats.FanRays
		// No boundary-layer point may fall inside any element.
		for _, other := range layers {
			for i, rayPts := range l.Points {
				for _, q := range rayPts {
					if other.Surface.Contains(q) {
						t.Fatalf("layer %s ray %d point inside %s", l.Surface.Name, i, other.Surface.Name)
					}
				}
			}
		}
	}
	if totalPts < 1000 {
		t.Errorf("three-element config generated only %d points", totalPts)
	}
	if totalFans == 0 {
		t.Error("three-element config must emit cusp fans")
	}
	// Anisotropy must be significant (paper cites 10,000:1 for production;
	// this scaled-down config still must exceed 10:1).
	if ar := layers[1].MaxAspectRatio(p); ar < 10 {
		t.Errorf("max aspect ratio = %v, want >= 10", ar)
	}
}

func BenchmarkGenerateNACA0012(b *testing.B) {
	cfg := airfoil.Single(airfoil.NACA0012, 256, 30)
	g, err := cfg.Graph()
	if err != nil {
		b.Fatal(err)
	}
	p := DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Generate(g, p)
	}
}

func BenchmarkGenerateThreeElement(b *testing.B) {
	cfg := airfoil.ThreeElement(128)
	g, err := cfg.Graph()
	if err != nil {
		b.Fatal(err)
	}
	p := DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Generate(g, p)
	}
}

// Property: for random convex polygons, boundary-layer generation never
// reports self-intersections and all inserted points stay outside the
// body.
func TestConvexBodyProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%20 + 6
		rng := rand.New(rand.NewSource(seed))
		// Random convex polygon: sort random angles, radius jitter kept
		// small enough to stay convex-ish, then take the convex hull of
		// the candidate points to guarantee convexity.
		var cand []geom.Point
		for i := 0; i < n*2; i++ {
			th := 2 * math.Pi * float64(i) / float64(n*2)
			r := 1 + 0.3*rng.Float64()
			cand = append(cand, geom.Pt(r*math.Cos(th), r*math.Sin(th)))
		}
		pts := hull.Convex(cand)
		if len(pts) < 5 {
			return true
		}
		g := &pslg.Graph{Surfaces: []pslg.Loop{{Name: "body", Points: pts}}}
		p := smoothParams()
		p.Growth = growth.Geometric{H0: 0.02, Ratio: 1.25}
		p.MaxLayers = 8
		layers := Generate(g, p)
		l := layers[0]
		if l.Stats.SelfIntersections != 0 {
			return false
		}
		for _, rayPts := range l.Points {
			for _, q := range rayPts {
				if l.Surface.Contains(q) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
