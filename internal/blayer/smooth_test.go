package blayer

import (
	"testing"

	"pamg2d/internal/geom"
	"pamg2d/internal/growth"
	"pamg2d/internal/pslg"
)

func TestSmoothCounts(t *testing.T) {
	counts := []int{10, 10, 2, 10, 10, 10}
	smoothCounts(counts, 2)
	n := len(counts)
	for i := 0; i < n; i++ {
		d := counts[i] - counts[(i+1)%n]
		if d < 0 {
			d = -d
		}
		if d > 2 {
			t.Fatalf("neighbor difference %d at %d: %v", d, i, counts)
		}
	}
	// The dip itself must be preserved (smoothing only reduces).
	if counts[2] != 2 {
		t.Errorf("the minimum must not grow: %v", counts)
	}
	// Expected shape: 6 4 2 4 6 8? cyclic: index 5 neighbors 4 and 0.
	want := []int{6, 4, 2, 4, 6, 8}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

func TestSmoothCountsDisabled(t *testing.T) {
	counts := []int{10, 1, 10}
	orig := append([]int{}, counts...)
	smoothCounts(counts, 0)
	for i := range counts {
		if counts[i] != orig[i] {
			t.Fatal("limit 0 must not modify counts")
		}
	}
}

func TestSmoothLayersInGeneration(t *testing.T) {
	// A square with one ray trimmed hard (via a nearby obstacle square)
	// would create a cliff; with SmoothLayers the neighbor layer counts
	// step down gradually.
	a := pslg.Loop{Name: "a", Points: subdiv([]geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)}, 16)}
	g := &pslg.Graph{Surfaces: []pslg.Loop{a}}
	p := smoothParams()
	p.Growth = growth.Geometric{H0: 0.02, Ratio: 1.3}
	p.MaxLayers = 12
	p.SmoothLayers = 1
	layers := Generate(g, p)
	l := layers[0]
	n := len(l.Points)
	for i := 0; i < n; i++ {
		d := len(l.Points[i]) - len(l.Points[(i+1)%n])
		if d < 0 {
			d = -d
		}
		if d > 1 {
			t.Fatalf("layer-count cliff of %d between rays %d and %d", d, i, (i+1)%n)
		}
	}
}
