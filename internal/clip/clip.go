// Package clip implements the Cohen–Sutherland outcode algorithm for
// clipping line segments against axis-aligned bounding boxes. The paper
// uses a modified Cohen–Sutherland pass as the first, cheapest stage of the
// hierarchical multi-element intersection check: candidate rays are pruned
// by whether they intersect the AABB of another element's boundary layer.
package clip

import "pamg2d/internal/geom"

// Outcode bits for the nine Cohen–Sutherland regions around a box.
const (
	Inside = 0
	Left   = 1 << iota
	Right
	Bottom
	Top
)

// Outcode returns the Cohen–Sutherland region code of p relative to box b.
func Outcode(p geom.Point, b geom.BBox) int {
	code := Inside
	if p.X < b.Min.X {
		code |= Left
	} else if p.X > b.Max.X {
		code |= Right
	}
	if p.Y < b.Min.Y {
		code |= Bottom
	} else if p.Y > b.Max.Y {
		code |= Top
	}
	return code
}

// SegmentIntersectsBox reports whether segment s intersects box b
// (boundaries count), using iterative Cohen–Sutherland clipping. It never
// reports false for a truly intersecting segment: the box is inflated by a
// small relative tolerance first, which absorbs the rounding error of exact
// corner grazes. A barely-missing segment may be reported as intersecting,
// which is harmless for the filter's pruning role.
func SegmentIntersectsBox(s geom.Segment, b geom.BBox) bool {
	scale := b.Width() + b.Height() + abs(b.Min.X) + abs(b.Min.Y) + 1
	_, _, ok := ClipSegment(s, b.Inflate(1e-12*scale))
	return ok
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ClipSegment clips segment s against box b and returns the clipped
// endpoints. ok is false when the segment lies entirely outside the box.
func ClipSegment(s geom.Segment, b geom.BBox) (p0, p1 geom.Point, ok bool) {
	p0, p1 = s.A, s.B
	out0 := Outcode(p0, b)
	out1 := Outcode(p1, b)
	// In exact arithmetic Cohen–Sutherland terminates after at most four
	// clips; with floating point a segment grazing a corner can oscillate
	// between two outside regions. Cap the iterations and accept
	// conservatively on exhaustion — by then both endpoints are within
	// rounding distance of the box.
	for iter := 0; ; iter++ {
		if iter > 16 {
			return p0, p1, true
		}
		if out0|out1 == 0 {
			// Both endpoints inside: trivially accepted.
			return p0, p1, true
		}
		if out0&out1 != 0 {
			// Both endpoints share an outside region: trivially rejected.
			return p0, p1, false
		}
		// Pick an endpoint outside the box and move it to the box border.
		out := out0
		if out == 0 {
			out = out1
		}
		var p geom.Point
		dx := p1.X - p0.X
		dy := p1.Y - p0.Y
		switch {
		case out&Top != 0:
			p = geom.Pt(p0.X+dx*(b.Max.Y-p0.Y)/dy, b.Max.Y)
		case out&Bottom != 0:
			p = geom.Pt(p0.X+dx*(b.Min.Y-p0.Y)/dy, b.Min.Y)
		case out&Right != 0:
			p = geom.Pt(b.Max.X, p0.Y+dy*(b.Max.X-p0.X)/dx)
		default: // Left
			p = geom.Pt(b.Min.X, p0.Y+dy*(b.Min.X-p0.X)/dx)
		}
		if out == out0 {
			p0 = p
			out0 = Outcode(p0, b)
		} else {
			p1 = p
			out1 = Outcode(p1, b)
		}
	}
}

// PruneByBox returns the indices of the segments that intersect box b.
// This is the paper's first-stage candidate-ray pruning for multi-element
// boundary-layer intersection checks.
func PruneByBox(segs []geom.Segment, b geom.BBox) []int {
	var out []int
	for i, s := range segs {
		if SegmentIntersectsBox(s, b) {
			out = append(out, i)
		}
	}
	return out
}
