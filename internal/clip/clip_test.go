package clip

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pamg2d/internal/geom"
)

var box = geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(10, 10)}

func TestOutcode(t *testing.T) {
	cases := []struct {
		p    geom.Point
		want int
	}{
		{geom.Pt(5, 5), Inside},
		{geom.Pt(-1, 5), Left},
		{geom.Pt(11, 5), Right},
		{geom.Pt(5, -1), Bottom},
		{geom.Pt(5, 11), Top},
		{geom.Pt(-1, -1), Left | Bottom},
		{geom.Pt(11, 11), Right | Top},
		{geom.Pt(-1, 11), Left | Top},
		{geom.Pt(11, -1), Right | Bottom},
		{geom.Pt(0, 0), Inside},   // on corner
		{geom.Pt(10, 10), Inside}, // on corner
	}
	for _, c := range cases {
		if got := Outcode(c.p, box); got != c.want {
			t.Errorf("Outcode(%v) = %b, want %b", c.p, got, c.want)
		}
	}
}

func TestClipSegmentAccepted(t *testing.T) {
	s := geom.Segment{A: geom.Pt(1, 1), B: geom.Pt(9, 9)}
	p0, p1, ok := ClipSegment(s, box)
	if !ok || p0 != s.A || p1 != s.B {
		t.Errorf("fully-inside segment must be unchanged: %v %v %v", p0, p1, ok)
	}
}

func TestClipSegmentRejected(t *testing.T) {
	cases := []geom.Segment{
		{A: geom.Pt(-5, -5), B: geom.Pt(-1, -1)},   // all left-bottom
		{A: geom.Pt(11, 0), B: geom.Pt(12, 10)},    // all right
		{A: geom.Pt(0, 11), B: geom.Pt(10, 12)},    // all top
		{A: geom.Pt(-1, 5), B: geom.Pt(1, 30)},     // steep diagonal miss
		{A: geom.Pt(9, 11.6), B: geom.Pt(11.6, 9)}, // corner miss (x+y=20.6 > 20)
	}
	for _, s := range cases {
		if _, _, ok := ClipSegment(s, box); ok {
			t.Errorf("segment %v must be rejected", s)
		}
	}
}

func TestClipSegmentCrossing(t *testing.T) {
	s := geom.Segment{A: geom.Pt(-5, 5), B: geom.Pt(15, 5)}
	p0, p1, ok := ClipSegment(s, box)
	if !ok {
		t.Fatal("crossing segment must be accepted")
	}
	if p0 != (geom.Pt(0, 5)) || p1 != (geom.Pt(10, 5)) {
		t.Errorf("clip: got %v %v", p0, p1)
	}
}

func TestClipSegmentDiagonalThroughCorner(t *testing.T) {
	s := geom.Segment{A: geom.Pt(-5, -5), B: geom.Pt(15, 15)}
	p0, p1, ok := ClipSegment(s, box)
	if !ok {
		t.Fatal("diagonal through box must be accepted")
	}
	if p0.Dist(geom.Pt(0, 0)) > 1e-12 || p1.Dist(geom.Pt(10, 10)) > 1e-12 {
		t.Errorf("clip: got %v %v", p0, p1)
	}
}

func TestClipSegmentOneEndpointInside(t *testing.T) {
	s := geom.Segment{A: geom.Pt(5, 5), B: geom.Pt(5, 20)}
	p0, p1, ok := ClipSegment(s, box)
	if !ok {
		t.Fatal("must be accepted")
	}
	if p0 != (geom.Pt(5, 5)) || p1 != (geom.Pt(5, 10)) {
		t.Errorf("clip: got %v %v", p0, p1)
	}
}

func TestClipDegenerateSegment(t *testing.T) {
	// Zero-length segments.
	if _, _, ok := ClipSegment(geom.Segment{A: geom.Pt(5, 5), B: geom.Pt(5, 5)}, box); !ok {
		t.Error("point inside the box must be accepted")
	}
	if _, _, ok := ClipSegment(geom.Segment{A: geom.Pt(15, 5), B: geom.Pt(15, 5)}, box); ok {
		t.Error("point outside the box must be rejected")
	}
}

func TestClipGrazingEdge(t *testing.T) {
	// Segment along the box's top edge: boundaries count as intersecting.
	s := geom.Segment{A: geom.Pt(-5, 10), B: geom.Pt(15, 10)}
	if !SegmentIntersectsBox(s, box) {
		t.Error("segment along the boundary must intersect")
	}
}

// Property: agreement with an exact intersection test built from the robust
// predicates. Cohen–Sutherland is used as a conservative prefilter, so we
// check it never misses a true intersection.
func TestClipNeverMissesIntersection(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		clamp := func(v float64) float64 { return math.Mod(v, 30) - 10 }
		s := geom.Segment{
			A: geom.Pt(clamp(ax), clamp(ay)),
			B: geom.Pt(clamp(bx), clamp(by)),
		}
		truth := exactSegBox(s, box)
		cs := SegmentIntersectsBox(s, box)
		// cs must be true whenever truth is true.
		return !truth || cs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// exactSegBox decides segment-box intersection exactly: either an endpoint
// is inside, or the segment crosses one of the four box edges.
func exactSegBox(s geom.Segment, b geom.BBox) bool {
	if b.Contains(s.A) || b.Contains(s.B) {
		return true
	}
	corners := []geom.Point{
		geom.Pt(b.Min.X, b.Min.Y), geom.Pt(b.Max.X, b.Min.Y),
		geom.Pt(b.Max.X, b.Max.Y), geom.Pt(b.Min.X, b.Max.Y),
	}
	for i := 0; i < 4; i++ {
		edge := geom.Segment{A: corners[i], B: corners[(i+1)%4]}
		if geom.SegmentsIntersect(s, edge) != geom.SegDisjoint {
			return true
		}
	}
	return false
}

func TestPruneByBox(t *testing.T) {
	segs := []geom.Segment{
		{A: geom.Pt(1, 1), B: geom.Pt(2, 2)},     // inside
		{A: geom.Pt(-5, -5), B: geom.Pt(-1, -1)}, // outside
		{A: geom.Pt(-5, 5), B: geom.Pt(15, 5)},   // crossing
		{A: geom.Pt(20, 20), B: geom.Pt(30, 30)}, // outside
	}
	got := PruneByBox(segs, box)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("PruneByBox = %v, want [0 2]", got)
	}
}

func BenchmarkClipSegment(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	segs := make([]geom.Segment, 1024)
	for i := range segs {
		segs[i] = geom.Segment{
			A: geom.Pt(rng.Float64()*30-10, rng.Float64()*30-10),
			B: geom.Pt(rng.Float64()*30-10, rng.Float64()*30-10),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ClipSegment(segs[i%len(segs)], box)
	}
}
