package core

// The optional audit stage: post-merge invariant verification of the final
// mesh over the internal/audit check registry. Element-local checks are
// chunked into jobs and fanned out across the ranks under the same
// work-stealing balancer the meshing phases use; each rank ships its typed
// violation findings and per-job measurements back to the root, which
// reduces them into one audit.Report. A failed audit surfaces as a
// *PhaseError for the "audit" stage wrapping an *audit.Error, attributed
// to the rank that found the first violation — the same contract every
// other stage failure follows.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pamg2d/internal/audit"
	"pamg2d/internal/loadbal"
	"pamg2d/internal/mpi"
	"pamg2d/internal/trace"
)

// kindAudit is the audit job task kind (test hooks see it like the meshing
// kinds; audit jobs are not float-encoded, the task only carries an index
// into the shared job list).
const kindAudit = 100

// auditChunk returns the element-range chunk size for local checks: small
// enough to give the balancer several jobs per rank, bounded below so tiny
// meshes do not shatter into per-element jobs.
func auditChunk(n, ranks, perRank int) int {
	c := n / (ranks * perRank)
	if c < 256 {
		c = 256
	}
	return c
}

// runAudit is the audit stage body.
func runAudit(rc *RunCtx) error {
	cfg := rc.cfg
	if cfg.testMutateMesh != nil {
		cfg.testMutateMesh(rc.res.Mesh)
	}
	s := &audit.Snapshot{
		Mesh:     rc.res.Mesh,
		Layers:   rc.layers,
		BL:       cfg.BL,
		Paths:    rc.pathEdges,
		Farfield: rc.ffBox,
		// The advancing-front kernel produces deliberately non-Delaunay
		// inviscid elements; the empty-circumcircle audit only applies to
		// the Delaunay pipeline.
		SkipDelaunay: cfg.InviscidKernel == KernelAdvancingFront,
	}
	// Prepare the shared read-only lookup structures at the root, before
	// any concurrent job execution.
	s.Prepare()
	checks := audit.All()
	// The fold below derives each check's skipped flag from having no jobs,
	// so PlanJobs' skip list is not needed separately.
	jobs, _ := audit.PlanJobs(s, checks, auditChunk(s.Mesh.NumTriangles(), cfg.Ranks, cfg.SubdomainsPerRank))

	results, err := runAuditJobs(rc, s, jobs)
	if err != nil {
		return err
	}

	// Reduce: fold the per-job findings into per-check statistics and the
	// ordered violation list. Jobs are folded in plan order, so the report
	// is deterministic regardless of which rank ran what.
	rep := &audit.Report{}
	violRank := -1
	for _, c := range checks {
		applicable := false
		st := audit.CheckStat{Name: c.Name()}
		for ji, j := range jobs {
			if j.Check.Name() != c.Name() {
				continue
			}
			applicable = true
			r := results[ji]
			if r == nil {
				continue
			}
			st.Wall += r.wall
			st.Allocs += r.allocs
			st.Elements += j.Elements()
			st.Violations += r.count
			for _, v := range r.violations {
				rep.Violations = append(rep.Violations, v)
				if violRank < 0 {
					violRank = v.Rank
				}
			}
		}
		if !applicable {
			st.Skipped = true
		}
		rep.Checks = append(rep.Checks, st)
		if !st.Skipped {
			rc.stats.recordStage(StageStat{
				Name:   StageAudit + "/" + st.Name,
				Wall:   st.Wall,
				Allocs: st.Allocs,
			})
		}
	}
	rc.stats.Audit = rep
	if !rep.Ok() {
		return &PhaseError{Stage: StageAudit, Rank: violRank, Err: rep.Error()}
	}
	return nil
}

// auditJobResult is one audit job's findings, shipped to the root by
// reference but accounted at the size its serialized form would occupy
// (fixed header plus the violation strings).
type auditJobResult struct {
	job        int32
	wall       time.Duration
	allocs     uint64
	count      int
	violations []audit.Violation
}

func (r *auditJobResult) wireBytes() int {
	n := 32
	for _, v := range r.violations {
		n += 24 + len(v.Check) + len(v.Detail)
	}
	return n
}

// runAuditJobs executes the audit jobs under the load balancer on a fresh
// world, mirroring runDistributed: jobs are dealt round-robin, stolen as
// needed, and each rank sends its findings to the root. The snapshot and
// job list are shared read-only (Prepare ran before the fan-out); only the
// job index travels in the task vector.
func runAuditJobs(rc *RunCtx, s *audit.Snapshot, jobs []audit.Job) ([]*auditJobResult, error) {
	cfg := rc.cfg
	hook := cfg.TaskHook
	tr := rc.tracer
	world := rc.newWorld()
	world.SetTracer(tr)
	win := world.NewWindow(cfg.Ranks)

	tasks := make([]loadbal.Task, len(jobs))
	for i, j := range jobs {
		tasks[i] = loadbal.Task{
			ID:   int32(i),
			Cost: float64(j.Elements() + 1),
			Vals: []float64{kindAudit, float64(i)},
		}
	}
	initial := make([][]loadbal.Task, cfg.Ranks)
	for i, t := range tasks {
		initial[i%cfg.Ranks] = append(initial[i%cfg.Ranks], t)
	}

	var mu sync.Mutex
	balStats := make([]loadbal.Stats, cfg.Ranks)
	perRank := make([]RankStat, cfg.Ranks)
	var taskErr *PhaseError

	opt := loadbal.DefaultOptions(totalCost(tasks), cfg.Ranks)
	opt.Tracer = tr
	wireRecovery(&opt, world, tasks, initial)
	err := world.RunCtx(rc.ctx, func(c *mpi.Comm) error {
		bs, err := loadbal.Run(rc.ctx, c, win, initial[c.Rank()], len(tasks), opt, func(task loadbal.Task) {
			if hook != nil {
				if herr := hook(StageAudit, kindAudit); herr != nil {
					mu.Lock()
					if taskErr == nil {
						taskErr = &PhaseError{Stage: StageAudit, Rank: c.Rank(), Err: fmt.Errorf("job %d: %w", task.ID, herr)}
					}
					mu.Unlock()
					res := &auditJobResult{job: task.ID}
					_ = c.SendRef(0, tagResult, res, res.wireBytes())
					return
				}
			}
			ji := int(task.Vals[1])
			j := jobs[ji]
			rep := audit.NewReporter(j.Check.Name(), c.Rank())
			sp := tr.Begin(c.Rank(), trace.CatAudit, StageAudit+"/"+j.Check.Name())
			t0 := time.Now()
			a0 := mallocCount()
			j.Check.Run(s, j.From, j.To, rep)
			// The allocation delta is read off the process-global counter, so
			// concurrent jobs bleed into each other's numbers; the per-check
			// totals are best-effort under parallel execution and exact at
			// Ranks=1.
			dt := time.Since(t0)
			res := &auditJobResult{
				job:        task.ID,
				wall:       dt,
				allocs:     mallocCount() - a0,
				count:      rep.Count(),
				violations: rep.Violations(),
			}
			if tr.Enabled() {
				sp.End(trace.I("job", int(task.ID)),
					trace.I("elements", j.Elements()),
					trace.I("violations", rep.Count()))
				tr.Metrics().Observe("audit.job_seconds", dt.Seconds())
			}
			mu.Lock()
			perRank[c.Rank()].Tasks++
			perRank[c.Rank()].Busy += dt
			mu.Unlock()
			_ = c.SendRef(0, tagResult, res, res.wireBytes())
		})
		mu.Lock()
		balStats[c.Rank()] = bs
		mu.Unlock()
		return err
	})
	// Error precedence mirrors runDistributed: cancellation, then
	// rank/world failures, then the first injected task failure.
	if rc.ctx.Err() != nil {
		return nil, &PhaseError{Stage: StageAudit, Rank: -1, Err: context.Cause(rc.ctx)}
	}
	if err != nil {
		return nil, phaseError(StageAudit, err)
	}
	mu.Lock()
	firstTaskErr := taskErr
	mu.Unlock()
	// Mirror runDistributed: a local task failure must survive to the
	// cross-process agreement below, or the other processes would hang in
	// the collective waiting for this one.
	if firstTaskErr != nil && !world.MultiProcess() {
		return nil, firstTaskErr
	}

	results := make([]*auditJobResult, len(jobs))
	collected := 0
	agreedErrRank := -1
	err = world.RunCtx(rc.ctx, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			for collected < len(jobs) {
				ref, _, _, ok := c.TryRecvRef(mpi.AnySource, tagResult)
				if !ok {
					break
				}
				// Re-queued jobs may deliver duplicate findings; the first
				// arrival wins (jobs are deterministic, so they agree).
				if r, ok := ref.(*auditJobResult); ok {
					ji := int(r.job)
					if ji < 0 || ji >= len(jobs) || results[ji] != nil {
						continue
					}
					results[ji] = r
					collected++
				}
			}
		}
		if !world.MultiProcess() {
			return nil
		}
		// Star-shaped failure agreement, then the root's re-distribution of
		// the reduced findings so every process folds the identical report.
		mu.Lock()
		localFail := taskErr != nil
		mu.Unlock()
		rank, aerr := agreePhase(rc, c, localFail, func() ([]byte, error) {
			if collected != len(jobs) {
				return nil, fmt.Errorf("collected %d of %d audit job results", collected, len(jobs))
			}
			return encodeAuditResults(results), nil
		}, func(body []byte) error {
			if derr := decodeAuditResultsInto(body, results); derr != nil {
				return derr
			}
			collected = len(jobs)
			return nil
		})
		agreedErrRank = rank
		return aerr
	})
	if rc.ctx.Err() != nil {
		return nil, &PhaseError{Stage: StageAudit, Rank: -1, Err: context.Cause(rc.ctx)}
	}
	if err != nil {
		return nil, phaseError(StageAudit, err)
	}
	if firstTaskErr != nil {
		return nil, firstTaskErr
	}
	if agreedErrRank >= 0 {
		return nil, &PhaseError{Stage: StageAudit, Rank: agreedErrRank, Err: fmt.Errorf("audit job failed on rank %d", agreedErrRank)}
	}
	if collected != len(jobs) {
		return nil, &PhaseError{Stage: StageAudit, Rank: -1, Err: fmt.Errorf("collected %d of %d audit job results", collected, len(jobs))}
	}
	rc.foldBalancer(perRank, balStats)
	rc.wireMsgs += world.Stats().Messages.Load()
	rc.wireBytes += world.Stats().Bytes.Load()
	return results, nil
}
