package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"pamg2d/internal/audit"
	"pamg2d/internal/mesh"
	"pamg2d/internal/mpi"
)

// TestAuditCleanRun runs the audited pipeline at 1 and 4 ranks and checks
// that the real pipeline output passes its own audit: every check runs (the
// Ruppert kernel makes the Delaunay check applicable), zero violations, and
// the stage engine records both the "audit" summary entry and the
// per-check "audit/<check>" entries with nonzero wall time.
func TestAuditCleanRun(t *testing.T) {
	for _, ranks := range []int{1, 4} {
		cfg := smallConfig(ranks)
		cfg.Audit = true
		res, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%d ranks: audited run failed: %v", ranks, err)
		}
		rep := res.Stats.Audit
		if rep == nil {
			t.Fatalf("%d ranks: Stats.Audit is nil", ranks)
		}
		if !rep.Ok() {
			t.Fatalf("%d ranks: clean run reported violations: %v", ranks, rep.Error())
		}
		if len(rep.Checks) != len(audit.All()) {
			t.Errorf("%d ranks: report has %d checks, want %d", ranks, len(rep.Checks), len(audit.All()))
		}
		for _, c := range rep.Checks {
			if c.Skipped {
				t.Errorf("%d ranks: check %q skipped on a full pipeline run", ranks, c.Name)
			}
		}
		stages := make(map[string]StageStat)
		for _, s := range res.Stats.Stages {
			stages[s.Name] = s
		}
		summary, ok := stages[StageAudit]
		if !ok {
			t.Fatalf("%d ranks: no %q entry in Stats.Stages", ranks, StageAudit)
		}
		if summary.Wall <= 0 {
			t.Errorf("%d ranks: audit stage wall time = %v", ranks, summary.Wall)
		}
		if res.Stats.Times.Audit != summary.Wall {
			t.Errorf("%d ranks: Times.Audit = %v, want the stage entry's %v", ranks, res.Stats.Times.Audit, summary.Wall)
		}
		for _, c := range audit.All() {
			name := StageAudit + "/" + c.Name()
			if _, ok := stages[name]; !ok {
				t.Errorf("%d ranks: no %q entry in Stats.Stages", ranks, name)
			}
		}
		if ranks > 1 && summary.Messages == 0 {
			t.Errorf("%d ranks: audit stage recorded no wire messages", ranks)
		}
	}
}

// TestAuditSkipsDelaunayForAdvancingFront: the advancing-front kernel
// produces deliberately non-Delaunay inviscid elements, so the
// empty-circumcircle check must be skipped — and the run must still pass.
func TestAuditSkipsDelaunayForAdvancingFront(t *testing.T) {
	cfg := smallConfig(2)
	cfg.Audit = true
	cfg.InviscidKernel = KernelAdvancingFront
	res, err := Generate(cfg)
	if err != nil {
		t.Fatalf("audited advancing-front run failed: %v", err)
	}
	found := false
	for _, c := range res.Stats.Audit.Checks {
		if c.Name == "delaunay" {
			found = true
			if !c.Skipped {
				t.Error("delaunay check ran on advancing-front output")
			}
		}
	}
	if !found {
		t.Error("no delaunay entry in the audit report")
	}
}

// TestAuditViolationFailsRun corrupts the merged mesh before the audit
// stage (a flipped triangle) and checks the failure contract: the run
// fails with a *PhaseError for the audit stage attributing the rank that
// found the violation, wrapping an *audit.Error whose report names the
// corrupted element.
func TestAuditViolationFailsRun(t *testing.T) {
	const victim = 7
	cfg := smallConfig(3)
	cfg.Audit = true
	cfg.testMutateMesh = func(m *mesh.Mesh) {
		t := &m.Triangles[victim]
		t[0], t[1] = t[1], t[0]
	}
	_, err := Generate(cfg)
	if err == nil {
		t.Fatal("audited run with a flipped triangle did not fail")
	}
	var pe *PhaseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T (%v), want *PhaseError", err, err)
	}
	if pe.Stage != StageAudit {
		t.Errorf("PhaseError.Stage = %q, want %q", pe.Stage, StageAudit)
	}
	if pe.Rank < 0 || pe.Rank >= cfg.Ranks {
		t.Errorf("PhaseError.Rank = %d, want a rank in [0, %d)", pe.Rank, cfg.Ranks)
	}
	var ae *audit.Error
	if !errors.As(err, &ae) {
		t.Fatalf("error does not wrap *audit.Error: %v", err)
	}
	// Violations fold in check order with orientation first, so the flipped
	// triangle is the leading finding and the PhaseError carries its rank.
	if len(ae.Report.Violations) == 0 {
		t.Fatal("audit.Error carries an empty report")
	}
	if first := ae.Report.Violations[0]; first.Element != victim {
		t.Errorf("first violation attributes element %d, want %d", first.Element, victim)
	} else if first.Rank != pe.Rank {
		t.Errorf("first violation on rank %d but PhaseError.Rank = %d", first.Rank, pe.Rank)
	}
	if !strings.Contains(err.Error(), "element") {
		t.Errorf("error message carries no element attribution: %v", err)
	}
}

// TestCancelDuringAudit mirrors the other mid-stage cancellation tests:
// canceling from the first audit job tears the stage down as a *PhaseError
// wrapping context.Canceled, without leaking pooled wire buffers.
func TestCancelDuringAudit(t *testing.T) {
	g0, p0 := mpi.PoolCounters()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := smallConfig(2)
	cfg.Audit = true
	cfg.TaskHook = func(stage string, kind int) error {
		if stage == StageAudit {
			cancel()
		}
		return nil
	}
	_, err := GenerateContext(ctx, cfg)
	if err == nil {
		t.Fatal("canceling during the audit stage did not fail the run")
	}
	var pe *PhaseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T (%v), want *PhaseError", err, err)
	}
	if pe.Stage != StageAudit {
		t.Errorf("PhaseError.Stage = %q, want %q", pe.Stage, StageAudit)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not wrap context.Canceled: %v", err)
	}
	g1, p1 := mpi.PoolCounters()
	if gets, puts := g1-g0, p1-p0; gets != puts {
		t.Errorf("pooled buffers leaked across cancellation: %d gets, %d puts", gets, puts)
	}
}

// TestAuditTaskFailureAttribution injects a job failure in the audit stage
// and checks it surfaces with stage and rank attribution like every other
// distributed phase.
func TestAuditTaskFailureAttribution(t *testing.T) {
	boom := errors.New("injected audit job failure")
	cfg := smallConfig(3)
	cfg.Audit = true
	cfg.TaskHook = func(stage string, kind int) error {
		if stage == StageAudit && kind == kindAudit {
			return boom
		}
		return nil
	}
	_, err := Generate(cfg)
	if err == nil {
		t.Fatal("injected audit job failure did not fail the run")
	}
	var pe *PhaseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T (%v), want *PhaseError", err, err)
	}
	if pe.Stage != StageAudit {
		t.Errorf("PhaseError.Stage = %q, want %q", pe.Stage, StageAudit)
	}
	if pe.Rank < 0 || pe.Rank >= cfg.Ranks {
		t.Errorf("PhaseError.Rank = %d, want a rank in [0, %d)", pe.Rank, cfg.Ranks)
	}
	if !errors.Is(err, boom) {
		t.Errorf("error does not wrap the injected failure: %v", err)
	}
}

// TestAuditOffByDefault: a default config run must not grow an audit stage
// or an audit report.
func TestAuditOffByDefault(t *testing.T) {
	res, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Audit != nil {
		t.Error("Stats.Audit populated without Config.Audit")
	}
	for _, s := range res.Stats.Stages {
		if s.Name == StageAudit || strings.HasPrefix(s.Name, StageAudit+"/") {
			t.Errorf("stage %q recorded without Config.Audit", s.Name)
		}
	}
}
