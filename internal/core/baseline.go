package core

import (
	"fmt"

	"pamg2d/internal/blayer"
	"pamg2d/internal/decouple"
	"pamg2d/internal/delaunay"
	"pamg2d/internal/geom"
	"pamg2d/internal/mesh"
	"pamg2d/internal/pslg"
	"pamg2d/internal/sizing"
)

// SequentialBaseline generates the same mesh as the pipeline using direct
// sequential kernel calls with no decomposition, decoupling or message
// passing — the "Triangle alone" reference of the paper's sequential
// efficiency measurement (their 192 s versus the application's 196 s; the
// difference is the extra triangles the decoupling paths introduce).
func SequentialBaseline(cfg Config) (*mesh.Mesh, error) {
	g, err := cfg.graph()
	if err != nil {
		return nil, err
	}
	layers := blayer.Generate(g, cfg.BL)
	var blPoints []geom.Point
	surfaceSet := make(map[geom.Point]bool)
	for _, l := range layers {
		blPoints = append(blPoints, l.AllPoints()...)
		for _, p := range l.Surface.Points {
			surfaceSet[p] = true
		}
	}

	ffBox := g.Farfield.BBox()
	var surfacePts []geom.Point
	for i := range g.Surfaces {
		surfacePts = append(surfacePts, g.Surfaces[i].Points...)
	}
	grad := sizing.NewGraded(surfacePts, cfg.SurfaceH0, cfg.Gradation, cfg.HMax)

	// One Delaunay triangulation of all boundary-layer points.
	res, err := delaunay.Triangulate(delaunay.Input{Points: blPoints, Frame: ffBox})
	if err != nil {
		return nil, err
	}
	var tris []float64
	for _, tri := range res.Triangles {
		a, b, c := res.Points[tri[0]], res.Points[tri[1]], res.Points[tri[2]]
		tris = append(tris, a.X, a.Y, b.X, b.Y, c.X, c.Y)
	}
	blMesh := filterBoundaryLayer(tris, layers, cfg.BL)

	outerPts, outerSegs := outerBoundary(blMesh, surfaceSet)
	if len(outerSegs) == 0 {
		return nil, fmt.Errorf("core: baseline boundary layer has no outer boundary")
	}
	blBox := geom.BBoxOf(blPoints)
	margin := cfg.NearBodyMargin
	if margin <= 0 {
		margin = 0.25
	}
	nbBox := blBox.Inflate(margin * (blBox.Width() + blBox.Height()) / 2)

	transIn, err := transitionInput(g, outerPts, outerSegs, nbBox, grad.Area)
	if err != nil {
		return nil, err
	}
	transRes, err := delaunay.TriangulateRefined(transIn, qualityFor(grad.Area))
	if err != nil {
		return nil, err
	}

	// The whole inviscid annulus as one region: the near-body box border
	// (marched identically to the transition side) and the far-field
	// border, with a hole seed at the center.
	annulus, err := annulusInput(nbBox, ffBox, grad)
	if err != nil {
		return nil, err
	}
	invRes, err := delaunay.TriangulateRefined(annulus, qualityFor(grad.Area))
	if err != nil {
		return nil, err
	}

	b := mesh.NewBuilder()
	for _, tr := range blMesh.Triangles {
		b.AddTriangle(blMesh.Points[tr[0]], blMesh.Points[tr[1]], blMesh.Points[tr[2]])
	}
	for _, r := range []*delaunay.Result{transRes, invRes} {
		for _, tri := range r.Triangles {
			b.AddTriangle(r.Points[tri[0]], r.Points[tri[1]], r.Points[tri[2]])
		}
	}
	m := b.Mesh()
	if err := m.Audit(); err != nil {
		return nil, fmt.Errorf("core: baseline mesh failed audit: %w", err)
	}
	return m, nil
}

// annulusInput builds the CDT input for the region between the near-body
// box and the far-field box as one undecoupled domain.
func annulusInput(nbBox, ffBox geom.BBox, grad *sizing.Graded) (delaunay.Input, error) {
	in := delaunay.Input{}
	addLoop := func(bb geom.BBox) {
		corners := [4]geom.Point{
			geom.Pt(bb.Min.X, bb.Min.Y), geom.Pt(bb.Max.X, bb.Min.Y),
			geom.Pt(bb.Max.X, bb.Max.Y), geom.Pt(bb.Min.X, bb.Max.Y),
		}
		first := int32(len(in.Points))
		for i := 0; i < 4; i++ {
			in.Points = append(in.Points, decouple.MarchBorder(corners[i], corners[(i+1)%4], grad.Area)...)
		}
		last := int32(len(in.Points)) - 1
		for k := first; k < last; k++ {
			in.Segments = append(in.Segments, [2]int32{k, k + 1})
		}
		in.Segments = append(in.Segments, [2]int32{last, first})
	}
	addLoop(nbBox)
	addLoop(ffBox)
	in.Holes = []geom.Point{nbBox.Center()}
	return in, nil
}

// IsotropicBaseline generates the Figure 16 comparison mesh: the same
// geometry and sizing but no anisotropic boundary layer. To resolve the
// near-wall gradients isotropically, the surface edge length is tied to
// the boundary layer's normal spacing scaled by resolutionFactor (1 means
// "as fine as the first layer height", the paper's apples-to-apples
// choice; larger factors trade fidelity for speed in tests).
func IsotropicBaseline(cfg Config, resolutionFactor float64) (*mesh.Mesh, error) {
	g, err := cfg.graph()
	if err != nil {
		return nil, err
	}
	if resolutionFactor <= 0 {
		resolutionFactor = 1
	}
	var surfacePts []geom.Point
	for i := range g.Surfaces {
		surfacePts = append(surfacePts, g.Surfaces[i].Points...)
	}
	h0 := cfg.BL.Growth.Spacing(0) * resolutionFactor
	grad := sizing.NewGraded(surfacePts, h0, cfg.Gradation, cfg.HMax)

	in := delaunay.Input{Frame: g.Farfield.BBox()}
	for i := range g.Surfaces {
		appendLoop(&in, g.Surfaces[i].Points)
		in.Holes = append(in.Holes, pslg.InteriorPointOf(&g.Surfaces[i]))
	}
	appendLoop(&in, g.Farfield.Points)

	res, err := delaunay.TriangulateRefined(in, delaunay.Quality{
		MaxRadiusEdgeRatio: 1.4142135623730951, // sqrt(2): min angle 20.7 degrees
		SizeAt:             grad.Area,
	})
	if err != nil {
		return nil, err
	}
	b := mesh.NewBuilder()
	for _, tri := range res.Triangles {
		b.AddTriangle(res.Points[tri[0]], res.Points[tri[1]], res.Points[tri[2]])
	}
	m := b.Mesh()
	if err := m.Audit(); err != nil {
		return nil, fmt.Errorf("core: isotropic mesh failed audit: %w", err)
	}
	return m, nil
}

func appendLoop(in *delaunay.Input, pts []geom.Point) {
	first := int32(len(in.Points))
	in.Points = append(in.Points, pts...)
	n := int32(len(pts))
	for k := int32(0); k < n; k++ {
		in.Segments = append(in.Segments, [2]int32{first + k, first + (k+1)%n})
	}
}
