package core

// Wire codecs for the pipeline's by-reference result types, registered in
// the mpi block reserved for core (32–47). In-process they never run —
// results travel as pointers — but over a multi-process fabric every
// rank-to-root result send serializes through these, and the root's
// result re-broadcast packs the collected arrays with the same entry
// encoders so both directions share one format.

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"pamg2d/internal/audit"
	"pamg2d/internal/mpi"
	"pamg2d/internal/trace"
)

const (
	codecTaskResult  mpi.CodecID = 32
	codecAuditResult mpi.CodecID = 33
	codecTelemetry   mpi.CodecID = 34
)

func encodeTaskResultRef(ref any, dst []byte) []byte {
	r := ref.(*taskResult)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.id))
	for _, v := range r.tris {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

func decodeTaskResultRef(b []byte) (any, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("core: task result frame of %d bytes, want >= 4", len(b))
	}
	body := b[4:]
	if len(body)%8 != 0 {
		return nil, fmt.Errorf("core: task result floats of %d bytes not a multiple of 8", len(body))
	}
	r := &taskResult{id: int32(binary.LittleEndian.Uint32(b))}
	if n := len(body) / 8; n > 0 {
		r.tris = make([]float64, n)
		for i := range r.tris {
			r.tris[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
		}
	}
	return r, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

func encodeAuditResultRef(ref any, dst []byte) []byte {
	r := ref.(*auditJobResult)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.job))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.wall))
	dst = binary.LittleEndian.AppendUint64(dst, r.allocs)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.count))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.violations)))
	for _, v := range r.violations {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v.Rank))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v.Element))
		dst = appendString(dst, v.Check)
		dst = appendString(dst, v.Detail)
	}
	return dst
}

// auditCursor walks an audit-result body with bounds checks; short input
// surfaces as err rather than a panic, because the bytes crossed a
// process boundary.
type auditCursor struct {
	b   []byte
	off int
	err error
}

func (c *auditCursor) u32() uint32 {
	if c.err != nil || c.off+4 > len(c.b) {
		c.err = fmt.Errorf("core: truncated audit result frame")
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *auditCursor) u64() uint64 {
	if c.err != nil || c.off+8 > len(c.b) {
		c.err = fmt.Errorf("core: truncated audit result frame")
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *auditCursor) str() string {
	n := int(c.u32())
	if c.err != nil || n < 0 || c.off+n > len(c.b) {
		if c.err == nil {
			c.err = fmt.Errorf("core: truncated audit result string")
		}
		return ""
	}
	s := string(c.b[c.off : c.off+n])
	c.off += n
	return s
}

func decodeAuditResultRef(b []byte) (any, error) {
	c := &auditCursor{b: b}
	r := &auditJobResult{
		job:    int32(c.u32()),
		wall:   time.Duration(c.u64()),
		allocs: c.u64(),
		count:  int(int32(c.u32())),
	}
	nv := int(int32(c.u32()))
	if c.err != nil {
		return nil, c.err
	}
	if nv < 0 || nv > len(b) {
		return nil, fmt.Errorf("core: audit result claims %d violations in %d bytes", nv, len(b))
	}
	for i := 0; i < nv; i++ {
		v := audit.Violation{
			Rank:    int(int32(c.u32())),
			Element: int(int32(c.u32())),
		}
		v.Check = c.str()
		v.Detail = c.str()
		if c.err != nil {
			return nil, c.err
		}
		r.violations = append(r.violations, v)
	}
	if c.off != len(b) {
		return nil, fmt.Errorf("core: %d trailing bytes after audit result", len(b)-c.off)
	}
	return r, nil
}

func init() {
	mpi.RegisterCodec(codecTaskResult, &taskResult{}, encodeTaskResultRef, decodeTaskResultRef)
	mpi.RegisterCodec(codecAuditResult, &auditJobResult{}, encodeAuditResultRef, decodeAuditResultRef)
	// Telemetry snapshots (trace tracks + metrics) ship from worker
	// processes to rank 0 at the end of a run; the wire image lives in
	// internal/trace so the exporter and the codec cannot drift apart.
	mpi.RegisterCodec(codecTelemetry, &trace.Telemetry{},
		func(ref any, dst []byte) []byte { return ref.(*trace.Telemetry).AppendBinary(dst) },
		func(b []byte) (any, error) { return trace.DecodeTelemetry(b) },
	)
}

// encodeResults packs the root's collected per-task result arrays for the
// post-collection broadcast that keeps every process's pipeline state
// identical in multi-process runs.
func encodeResults(results [][]float64) []byte {
	n := 4
	for _, r := range results {
		n += 4 + 8*len(r)
	}
	dst := make([]byte, 0, n)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(results)))
	for _, r := range results {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r)))
		for _, v := range r {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst
}

// decodeResultsInto unpacks an encodeResults payload into results, which
// must already have the task count's length.
func decodeResultsInto(b []byte, results [][]float64) error {
	c := &auditCursor{b: b}
	if n := int(c.u32()); c.err == nil && n != len(results) {
		return fmt.Errorf("core: result broadcast carries %d tasks, want %d", n, len(results))
	}
	for i := range results {
		nv := int(int32(c.u32()))
		if c.err != nil {
			return c.err
		}
		if nv < 0 || c.off+8*nv > len(b) {
			return fmt.Errorf("core: truncated result broadcast at task %d", i)
		}
		var vals []float64
		if nv > 0 {
			vals = make([]float64, nv)
			for k := range vals {
				vals[k] = math.Float64frombits(binary.LittleEndian.Uint64(b[c.off+8*k:]))
			}
		}
		c.off += 8 * nv
		results[i] = vals
	}
	if c.err != nil {
		return c.err
	}
	if c.off != len(b) {
		return fmt.Errorf("core: %d trailing bytes after result broadcast", len(b)-c.off)
	}
	return nil
}

// encodeAuditResults / decodeAuditResultsInto are the audit stage's
// counterpart of the result broadcast, reusing the per-entry codec.
func encodeAuditResults(results []*auditJobResult) []byte {
	dst := binary.LittleEndian.AppendUint32(nil, uint32(len(results)))
	for _, r := range results {
		entry := encodeAuditResultRef(r, nil)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(entry)))
		dst = append(dst, entry...)
	}
	return dst
}

func decodeAuditResultsInto(b []byte, results []*auditJobResult) error {
	c := &auditCursor{b: b}
	if n := int(c.u32()); c.err == nil && n != len(results) {
		return fmt.Errorf("core: audit broadcast carries %d jobs, want %d", n, len(results))
	}
	for i := range results {
		n := int(int32(c.u32()))
		if c.err != nil {
			return c.err
		}
		if n < 0 || c.off+n > len(b) {
			return fmt.Errorf("core: truncated audit broadcast at job %d", i)
		}
		ref, err := decodeAuditResultRef(b[c.off : c.off+n])
		if err != nil {
			return err
		}
		c.off += n
		results[i] = ref.(*auditJobResult)
	}
	if c.off != len(b) {
		return fmt.Errorf("core: %d trailing bytes after audit broadcast", len(b)-c.off)
	}
	return nil
}
