// Package core is the push-button parallel anisotropic mesh generator —
// the paper's "application". Given an airfoil configuration and
// boundary-layer parameters it runs the full pipeline without further
// interaction:
//
//  1. build and validate the PSLG;
//  2. generate the anisotropic boundary layer (extrusion along normals,
//     large-angle refinement, cusp fans, self-/multi-element intersection
//     resolution);
//  3. triangulate the boundary-layer points in parallel with the
//     projection-based decomposition, each leaf on some rank, merged by
//     the circumcenter-region rule;
//  4. mesh the transition region between the boundary layer's outer
//     boundary and the near-body box;
//  5. decouple the inviscid annulus into graded Delaunay subdomains and
//     refine them independently on the ranks;
//  6. gather everything at the root and merge into the final mesh.
//
// Steps 3 and 5 run under the work-stealing load balancer on the
// simulated MPI runtime; all task processing is timed so the
// strong-scaling performance model can be calibrated from real kernel
// costs.
package core

import (
	"log/slog"
	"time"

	"pamg2d/internal/airfoil"
	"pamg2d/internal/audit"
	"pamg2d/internal/blayer"
	"pamg2d/internal/loadbal"
	"pamg2d/internal/mesh"
	"pamg2d/internal/mpi"
	"pamg2d/internal/pslg"
	"pamg2d/internal/sizing"
	"pamg2d/internal/trace"
)

// Config is the push-button input: geometry plus boundary-layer
// parameters, as the paper's conclusion describes.
type Config struct {
	// Geometry is the airfoil configuration (elements + far field).
	Geometry airfoil.Config
	// CustomGraph, when non-nil, overrides Geometry with an arbitrary
	// validated PSLG (for example one read from a .poly file). It must
	// contain a far-field loop.
	CustomGraph *pslg.Graph
	// BL are the boundary-layer extrusion parameters.
	BL blayer.Params
	// SurfaceH0 is the target isotropic edge length at the body surface
	// (drives the graded sizing function).
	SurfaceH0 float64
	// Gradation is the sizing growth rate with distance from the body.
	Gradation float64
	// HMax caps the far-field edge length.
	HMax float64
	// Ranks is the number of MPI ranks. With the default in-process
	// fabric they are simulated by goroutines; with a Fabric attached the
	// count must match (or be left zero to adopt) the fabric's size.
	Ranks int
	// Fabric, when non-nil, supplies the rank communication transport the
	// distributed stages run over — typically one process per rank joined
	// over TCP (mpi.AcceptTCP / mpi.JoinTCP). Every process of the fabric
	// must call Generate with an identical configuration: the pipeline is
	// SPMD, running the sequential stages redundantly on each process and
	// splitting only the distributed phases, whose collected results the
	// root re-broadcasts so all processes merge the same mesh. Nil selects
	// the in-process fabric (goroutine ranks, zero-copy transfers).
	Fabric *mpi.Cluster
	// SubdomainsPerRank sets the decoupling target (the paper
	// over-decomposes for load balancing); default 4.
	SubdomainsPerRank int
	// KernelWorkers is the number of goroutines the Delaunay kernel uses
	// inside each distributed task (independent-set batched insertion).
	// 1 (and any negative value) keeps the sequential kernel; 0 resolves
	// to runtime.NumCPU(). This is intra-rank parallelism, orthogonal to
	// Ranks: each rank's meshing tasks individually fan their bulk point
	// insertion across this many workers.
	KernelWorkers int
	// KernelShuffle turns on BRIO-style round-shuffled insertion batches in
	// the parallel Delaunay kernel (KernelWorkers > 1): instead of feeding
	// the x-sorted point order straight into the independent-set rounds —
	// whose spatially adjacent batches retry heavily on clustered
	// boundary-layer points — each batch interleaves points from across the
	// whole domain, cutting Stats.Kernel.Conflicts at the cost of
	// bin-seeded (rather than walk-coherent) point location. Off by
	// default; no effect on the sequential kernel.
	KernelShuffle bool
	// NearBodyMargin inflates the boundary-layer bounding box to form the
	// near-body box, in multiples of the box diagonal; default 0.25.
	NearBodyMargin float64
	// CustomSizing, when non-nil, replaces the graded sizing function
	// derived from SurfaceH0/Gradation/HMax for the transition and
	// inviscid regions (the adaptation loop of Figure 1 supplies a sizing
	// built from the previous solution's error indicator).
	CustomSizing sizing.Func
	// InviscidKernel selects the mesher used for the decoupled inviscid
	// subdomains: KernelRuppert (default, the paper's Triangle role) or
	// KernelAdvancingFront (the related-work baseline). Both preserve the
	// decoupled borders, so the merged mesh stays conforming either way.
	InviscidKernel Kernel
	// TransitionSectors splits the transition annulus into this many
	// angular sectors so the near-body region parallelizes too (0 = auto
	// from the rank and subdomain counts; 1 = single task). Sector
	// decomposition silently falls back to a single task when the
	// boundary-layer outer boundary is not a single simple loop.
	TransitionSectors int
	// Tracer, when non-nil, records the run for offline inspection: every
	// stage, per-rank task execution, steal transfer, audit check, and
	// MPI send becomes a rank-attributed span or event, exportable as a
	// Chrome trace-event file (trace.Tracer.WriteTrace) with a companion
	// run-metrics registry (Tracer.Metrics). The default nil tracer is
	// free in the hot paths beyond a single nil check per instrumentation
	// site — benchreport's -guard gate holds with tracing disabled.
	Tracer *trace.Tracer
	// Audit enables the post-merge invariant-verification stage: the
	// merged mesh is audited against the internal/audit check registry
	// (exact-predicate Delaunay, topology, boundary-layer and decoupling
	// invariants), with element-local checks fanned out across the ranks.
	// Violations fail the run with a *PhaseError for the "audit" stage
	// wrapping an *audit.Error; the full report lands in Stats.Audit
	// either way.
	Audit bool
	// RunID labels the run in logs, stats, and trace metadata. Callers
	// with a natural correlation key (meshd stamps its request ID here)
	// set it; when empty, an engine with observability enabled (a logger
	// or a per-run tracer) assigns a sequential "run-NNNNNN". With
	// neither, the run stays unlabeled — no formatting on the hot path,
	// keeping disabled telemetry allocation-neutral.
	RunID string
	// Logger, when non-nil, is handed to the throwaway engine the
	// Generate wrappers build, so CLI runs get the same lifecycle records
	// as engine-hosted ones. Engine.Run ignores it (the engine's own
	// logger wins); nil keeps logging fully disabled.
	Logger *slog.Logger
	// Adapt carries the metric-adaptation parameters for tools that run
	// the internal/adapt cavity-operator engine after generation. The
	// pipeline itself ignores it (core cannot depend on adapt, which sits
	// above it); CLIs such as meshgen and meshadapt read it to drive
	// their post-generation adaptation cycles.
	Adapt AdaptParams

	// TaskHook, when set, runs at the start of every distributed task's
	// execution with the stage name and task kind; a non-nil return fails
	// the task on the rank executing it. It exists for test and
	// fault-injection harnesses: the stage engine tests use it to cancel
	// or fail mid-phase deterministically, and meshgen's -fault-kill-*
	// flags use it to SIGKILL a worker at an exact point in the task
	// stream when rehearsing rank-death recovery. Leave nil in production
	// runs.
	TaskHook func(stage string, kind int) error
	// testMutateMesh, when set (tests only), runs on the merged mesh
	// before the audit stage inspects it; the failure-path tests corrupt
	// the mesh here to prove violations surface as stage errors.
	testMutateMesh func(*mesh.Mesh)
}

// AdaptParams is the passive metric-adaptation configuration carried on
// Config.Adapt. It is plain data: the source of the target metric field
// and the loop bounds. The adaptation engine lives in internal/adapt
// (which imports core), so core only transports these values.
type AdaptParams struct {
	// Cycles is the number of adapt cycles to run after generation
	// (each cycle: build/refresh the metric field, run the cavity
	// operators to convergence or SweepCap, audit). 0 disables
	// adaptation.
	Cycles int
	// Metric selects the metric source: an analytic spec string
	// understood by metric.ParseSpec ("uniform:h=…", "bl:…"), or
	// "hessian" to rebuild the metric each cycle from the Hessian of a
	// solved field.
	Metric string
	// SweepCap bounds the operator sweeps per cycle; 0 uses the adapt
	// package default.
	SweepCap int
	// Band overrides the metric-length acceptance band upper bound
	// (edges converge into [1/Band, Band]); 0 uses sqrt(2).
	Band float64
}

// Kernel identifies a sequential meshing kernel for the inviscid regions.
type Kernel int

const (
	// KernelRuppert is constrained Delaunay + Ruppert refinement.
	KernelRuppert Kernel = iota
	// KernelAdvancingFront is the advancing-front baseline.
	KernelAdvancingFront
)

// DefaultConfig returns a working configuration for a NACA 0012 at the
// given surface resolution.
func DefaultConfig() Config {
	return Config{
		Geometry:          airfoil.Single(airfoil.NACA0012, 64, 30),
		BL:                blayer.DefaultParams(),
		SurfaceH0:         0.02,
		Gradation:         0.15,
		HMax:              4.0,
		Ranks:             4,
		SubdomainsPerRank: 4,
		KernelWorkers:     1,
		NearBodyMargin:    0.25,
	}
}

// PhaseTimes records the pipeline phase wall times; the sequential phases
// feed the performance model's Amdahl fraction.
type PhaseTimes struct {
	Validate  time.Duration
	Boundary  time.Duration
	Decompose time.Duration
	Parallel  time.Duration
	Merge     time.Duration
	Audit     time.Duration
	Total     time.Duration
}

// PhaseAllocs records the heap allocation count of each pipeline phase,
// measured as runtime.MemStats.Mallocs deltas at the phase boundaries. The
// counters track the allocation overhauls of the task fabric and the
// Delaunay kernel: a regression in a phase's hot path shows up here before
// it shows up in wall time.
type PhaseAllocs struct {
	Validate  uint64
	Boundary  uint64
	Decompose uint64
	Parallel  uint64
	Merge     uint64
	Audit     uint64
	Total     uint64
}

// StealStats aggregates the work-stealing balancer's per-rank counters
// over the whole run (all distributed stages, audit included). It is the
// load-balancer behavior of the paper's Figures 9–11 in summary form:
// Gotten/Requests is the steal success rate, and Idle against the stage
// walls is the rank-skew signal.
type StealStats struct {
	// Requests counts steal requests issued by underloaded ranks.
	Requests int
	// Granted counts requests satisfied by a victim handing over a task.
	Granted int
	// Gotten counts tasks that arrived on a thief; it equals Granted for
	// a run that completed (every granted task is delivered in-process).
	Gotten int
	// Idle is the summed time mesher goroutines spent waiting for work.
	Idle time.Duration
}

// KernelStats aggregates the intra-rank parallel Delaunay engine's
// accounting across every distributed task of the run: how many
// independent-set rounds ran, how many points committed concurrently,
// how many were deferred by cavity conflicts, and how many took the
// sequential fallback (duplicates, constrained-edge splits, degenerate
// cavities). All zeros when KernelWorkers <= 1.
type KernelStats struct {
	Workers    int
	Rounds     int
	Inserted   int
	Conflicts  int
	Sequential int
}

// TaskMeasure is one task's measured execution, the calibration input of
// the strong-scaling model.
type TaskMeasure struct {
	Seconds       float64
	Bytes         int64
	BoundaryLayer bool
	Triangles     int
}

// Stats summarizes a pipeline run.
type Stats struct {
	// RunID is the run's correlation label: Config.RunID when the caller
	// set one, the engine-assigned sequential ID when observability is
	// on, empty otherwise.
	RunID            string
	SurfacePoints    int
	BoundaryLayerPts int
	BLTriangles      int
	TransitionTris   int
	InviscidTris     int
	TotalTriangles   int
	BLLayerStats     []blayer.Stats
	Tasks            []TaskMeasure
	// LoadBalance holds the balancer's raw per-rank records, appended in
	// stage order: each distributed stage (and the audit stage) contributes
	// Ranks consecutive entries. The Steals aggregate and the per-stage
	// StageStat.Ranks summaries are folded from these, so the balancer's
	// behavior is reachable from Result without a tracer attached.
	LoadBalance []loadbal.Stats
	// Steals is the run-wide fold of the balancer counters across every
	// distributed stage: how often ranks asked for work, how many tasks
	// changed hands, and the total time meshers spent waiting for work.
	Steals StealStats
	// Kernel is the run-wide fold of the intra-rank parallel insertion
	// engine's round/conflict counters (zero when KernelWorkers <= 1).
	Kernel KernelStats
	// Stages is the ordered per-stage record written by the engine's
	// stats hook; the PhaseTimes/PhaseAllocs aggregates below are derived
	// from it (the two boundary-layer stages sum into Boundary).
	Stages      []StageStat
	Times       PhaseTimes
	Allocs      PhaseAllocs
	Messages    int64
	BytesOnWire int64
	// Audit is the invariant-verification report of the optional audit
	// stage (nil when Config.Audit is off). It is populated even when the
	// audit fails the run.
	Audit *audit.Report
	// Resilience records how the run degraded when ranks died mid-flight;
	// all-zero for clean runs. A run on a fabric that already lost ranks
	// (a long-lived engine surviving an earlier failure) reports those
	// losses too: it genuinely ran on the shrunken rank set.
	Resilience ResilienceStats
}

// ResilienceStats summarizes a run's fault-tolerance activity: ranks lost,
// tasks re-queued onto survivors by the balancer's recovery path, and the
// wall time the distributed phases spent between noticing a death and
// terminating degraded.
type ResilienceStats struct {
	RanksLost     int
	TasksRequeued int
	RecoveryWall  time.Duration
	// Deaths is the fabric's chronological death record as seen from this
	// process: which rank, when it was declared dead, and why.
	Deaths []RankDeathStat
}

// RankDeathStat is one rank death: detection time and cause as recorded by
// the transport's membership view.
type RankDeathStat struct {
	Rank  int
	At    time.Time
	Cause string
}

// Degraded reports whether the run lost ranks: it completed, and its audit
// (when enabled) passed, but on fewer ranks than configured. Degraded runs
// are not guaranteed byte-identical to the full-rank run — the invariant
// audit is the correctness gate.
func (st *Stats) Degraded() bool { return st.Resilience.RanksLost > 0 }
