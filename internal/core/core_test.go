package core

import (
	"math"
	"testing"

	"pamg2d/internal/airfoil"
	"pamg2d/internal/blayer"
	"pamg2d/internal/growth"
)

// smallConfig is a fast NACA 0012 configuration for tests.
func smallConfig(ranks int) Config {
	cfg := DefaultConfig()
	cfg.Geometry = airfoil.Single(airfoil.NACA0012, 32, 10)
	cfg.BL = blayer.Params{
		Growth:         growth.Geometric{H0: 2e-3, Ratio: 1.3},
		MaxLayers:      12,
		MaxAngleDeg:    25,
		CuspAngleDeg:   60,
		FanSpacingDeg:  20,
		FanCurving:     0.5,
		IsotropyFactor: 1.0,
		TrimFactor:     1.0,
	}
	cfg.SurfaceH0 = 0.06
	cfg.Gradation = 0.3
	cfg.HMax = 3
	cfg.Ranks = ranks
	cfg.SubdomainsPerRank = 2
	return cfg
}

func TestGenerateSingleRank(t *testing.T) {
	res, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Mesh.NumTriangles() < 500 {
		t.Errorf("mesh has only %d triangles", res.Mesh.NumTriangles())
	}
	if res.Stats.BLTriangles == 0 || res.Stats.InviscidTris == 0 || res.Stats.TransitionTris == 0 {
		t.Errorf("phase counts: %+v", res.Stats)
	}
	if res.Stats.TotalTriangles != res.Mesh.NumTriangles() {
		t.Error("stats triangle count mismatch")
	}
}

func TestGenerateMultiRankMatchesSingle(t *testing.T) {
	r1, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Generate(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	// The decompositions differ slightly with rank count (decoupling
	// target scales with ranks), but the boundary-layer part is identical
	// and totals must be in the same ballpark.
	if r1.Stats.BLTriangles != r4.Stats.BLTriangles {
		t.Errorf("BL triangles differ: %d vs %d (the BL mesh is deterministic)",
			r1.Stats.BLTriangles, r4.Stats.BLTriangles)
	}
	ratio := float64(r4.Mesh.NumTriangles()) / float64(r1.Mesh.NumTriangles())
	if ratio < 0.8 || ratio > 1.3 {
		t.Errorf("triangle counts diverge: %d vs %d", r1.Mesh.NumTriangles(), r4.Mesh.NumTriangles())
	}
}

func TestGenerateCoversDomain(t *testing.T) {
	cfg := smallConfig(2)
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Total area = far-field box minus airfoil area.
	g, err := cfg.Geometry.Graph()
	if err != nil {
		t.Fatal(err)
	}
	ffArea := g.Farfield.SignedArea()
	bodyArea := 0.0
	for i := range g.Surfaces {
		bodyArea += math.Abs(g.Surfaces[i].SignedArea())
	}
	// The boundary-layer surface refinement may slightly alter the body
	// polygon; tolerance is generous.
	want := ffArea - bodyArea
	got := res.Mesh.Area()
	if math.Abs(got-want) > 0.01*want {
		t.Errorf("mesh area %v, want ~%v", got, want)
	}
}

func TestGenerateAnisotropy(t *testing.T) {
	res, err := Generate(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	q := res.Mesh.Quality()
	// The boundary layer must contain strongly anisotropic elements.
	if q.MaxAspectRatio < 5 {
		t.Errorf("max aspect ratio %v; boundary layer missing?", q.MaxAspectRatio)
	}
}

func TestGenerateTaskMeasurements(t *testing.T) {
	res, err := Generate(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Tasks) < 5 {
		t.Fatalf("only %d task measurements", len(res.Stats.Tasks))
	}
	blTasks, invTasks := 0, 0
	for _, tm := range res.Stats.Tasks {
		if tm.Seconds < 0 {
			t.Error("negative task time")
		}
		if tm.BoundaryLayer {
			blTasks++
		} else {
			invTasks++
		}
	}
	if blTasks == 0 || invTasks == 0 {
		t.Errorf("task mix: %d BL, %d inviscid", blTasks, invTasks)
	}
	if res.Stats.Messages == 0 || res.Stats.BytesOnWire == 0 {
		t.Error("no communication recorded")
	}
}

func TestSequentialBaseline(t *testing.T) {
	cfg := smallConfig(1)
	m, err := SequentialBaseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The baseline must produce no more triangles than the pipeline (the
	// decoupling paths only add elements), and be within 25%.
	nb, np := m.NumTriangles(), res.Mesh.NumTriangles()
	if nb > np {
		t.Errorf("baseline %d triangles > pipeline %d; decoupling should only add", nb, np)
	}
	if float64(np-nb) > 0.25*float64(np) {
		t.Errorf("baseline %d and pipeline %d diverge too much", nb, np)
	}
}

func TestIsotropicBaselineHasMoreElements(t *testing.T) {
	cfg := smallConfig(1)
	aniso, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	iso, err := IsotropicBaseline(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Even at a relaxed resolution factor, resolving the near-wall region
	// isotropically must cost substantially more elements (the paper
	// measures 14.7x at factor 1).
	ratio := float64(iso.NumTriangles()) / float64(aniso.Mesh.NumTriangles())
	if ratio < 1.5 {
		t.Errorf("isotropic/anisotropic element ratio %v; want > 1.5 at factor 4 (paper: 14.7 at factor 1)", ratio)
	}
	// And the isotropic mesh must satisfy the 20.7 degree bound away from
	// the airfoil's own small input angles.
	q := iso.Quality()
	if q.MaxAspectRatio > 50 {
		t.Errorf("isotropic mesh contains highly anisotropic elements (aspect %v)", q.MaxAspectRatio)
	}
}

func TestGenerateThreeElement(t *testing.T) {
	cfg := smallConfig(2)
	cfg.Geometry = airfoil.ThreeElement(36)
	cfg.Geometry.FarfieldChords = 8
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mesh.NumTriangles() < 1000 {
		t.Errorf("three-element mesh has only %d triangles", res.Mesh.NumTriangles())
	}
	if len(res.Stats.BLLayerStats) != 3 {
		t.Errorf("expected 3 per-element BL stats, got %d", len(res.Stats.BLLayerStats))
	}
	fans := 0
	for _, s := range res.Stats.BLLayerStats {
		fans += s.FanRays
	}
	if fans == 0 {
		t.Error("three-element config must produce cusp fans")
	}
}

func TestNearBodyMustFitInFarfield(t *testing.T) {
	cfg := smallConfig(1)
	cfg.Geometry.FarfieldChords = 0.2 // far field too tight
	if _, err := Generate(cfg); err == nil {
		t.Error("near-body box outside the far field must fail")
	}
}

func TestGenerateAdvancingFrontKernel(t *testing.T) {
	cfg := smallConfig(2)
	cfg.InviscidKernel = KernelAdvancingFront
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The merged mesh must still audit cleanly: the advancing front never
	// touches the decoupled borders, so conformity holds.
	if res.Stats.InviscidTris == 0 {
		t.Fatal("no inviscid triangles from the AF kernel")
	}
	ruppert, err := Generate(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.Stats.InviscidTris) / float64(ruppert.Stats.InviscidTris)
	if ratio < 0.3 || ratio > 3 {
		t.Errorf("AF inviscid count %d vs Ruppert %d diverge too much",
			res.Stats.InviscidTris, ruppert.Stats.InviscidTris)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	// Two runs of the same configuration must agree exactly: the pipeline
	// contains no randomness and no map-iteration-order dependence in any
	// quantity that reaches the mesh.
	cfg := smallConfig(3)
	r1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Mesh.NumTriangles() != r2.Mesh.NumTriangles() {
		t.Errorf("triangle counts differ: %d vs %d", r1.Mesh.NumTriangles(), r2.Mesh.NumTriangles())
	}
	if math.Abs(r1.Mesh.Area()-r2.Mesh.Area()) > 1e-12*r1.Mesh.Area() {
		t.Errorf("areas differ: %v vs %v", r1.Mesh.Area(), r2.Mesh.Area())
	}
	q1, q2 := r1.Mesh.Quality(), r2.Mesh.Quality()
	if q1.MinAngleDeg != q2.MinAngleDeg || q1.MaxAspectRatio != q2.MaxAspectRatio {
		t.Errorf("quality differs: %+v vs %+v", q1, q2)
	}
}
