package core

// The engine/run split. An Engine is the long-lived half of the mesh
// generator: it owns the rank fabric (the mpi.Cluster and, through it, the
// persistent worlds and pooled wire buffers), the shared Delaunay kernel
// worker pool, and an engine-lifetime metrics registry. A Run is the
// per-request half: one Config executed under one context.Context with its
// own Stats and (optional) Tracer, borrowing the engine's resources and
// returning them clean. Many runs may be in flight on one engine at once —
// that is the seam cmd/meshd serves traffic through — with admission
// control bounding how many execute concurrently and how many may queue.
//
// Generate and GenerateContext are thin wrappers over a throwaway engine,
// so every pre-split caller keeps its one-run-owns-the-process view while
// the engine is the real execution path underneath.

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pamg2d/internal/delaunay"
	"pamg2d/internal/mpi"
	"pamg2d/internal/trace"
)

var (
	// ErrEngineBusy reports a run rejected by admission control: the
	// engine is executing MaxConcurrent runs and the wait queue is full.
	ErrEngineBusy = errors.New("core: engine at capacity")
	// ErrEngineClosed reports a run submitted after Close.
	ErrEngineClosed = errors.New("core: engine closed")
)

// EngineConfig sizes a long-lived engine. The zero value is a usable
// single-rank, unlimited-admission engine.
type EngineConfig struct {
	// Ranks is the engine's rank count. With a Fabric attached it must
	// match (or be left zero to adopt) the fabric's size; otherwise ranks
	// are in-process goroutines and any count >= 1 works (zero resolves
	// to 1).
	Ranks int
	// Fabric, when non-nil, is the rank transport the engine's runs
	// execute over; the engine does not close it. Nil builds a private
	// in-process cluster. Multi-process fabrics serialize runs — the SPMD
	// world-epoch pairing requires every process to mint worlds in the
	// same order, which concurrent runs would interleave.
	Fabric *mpi.Cluster
	// MaxConcurrent bounds the runs executing at once; 0 means unlimited
	// (every submitted run executes immediately).
	MaxConcurrent int
	// MaxQueue bounds the runs waiting for an execution slot when
	// MaxConcurrent is saturated: beyond it, Run fails fast with
	// ErrEngineBusy. 0 means an unbounded queue; negative means no queue
	// (reject as soon as MaxConcurrent runs are active). Ignored when
	// MaxConcurrent is 0.
	MaxQueue int
	// KernelPoolSize is the size of the shared Delaunay insertion worker
	// pool, created lazily on the first run with KernelWorkers > 1;
	// 0 resolves to runtime.NumCPU(). The pool bounds the process's kernel
	// goroutines no matter how many runs and tasks are in flight.
	KernelPoolSize int
	// Logger, when non-nil, receives a structured record per run
	// lifecycle event (started / completed / failed) with the run ID,
	// rank count, and outcome attached. Nil disables engine logging
	// entirely — not a single slog call is made, keeping the disabled
	// path allocation-free.
	Logger *slog.Logger
}

// Engine is the persistent mesh-generation service core: one fabric, one
// kernel worker pool, one metrics registry, any number of runs. Create
// with NewEngine, execute with Run, release with Close.
type Engine struct {
	ranks     int
	fabric    *mpi.Cluster
	ownFabric bool
	multiProc bool
	maxQueue  int
	poolSize  int

	metrics *trace.Metrics
	logger  *slog.Logger
	runSeq  atomic.Uint64 // sequential run IDs, assigned only when observed

	sem     chan struct{} // admission slots; nil = unlimited
	waiting atomic.Int64  // runs queued on sem
	active  atomic.Int64  // runs past admission, not yet released
	runs    sync.WaitGroup
	serial  sync.Mutex // multi-process fabrics: one run at a time

	poolMu sync.Mutex
	pool   *delaunay.WorkerPool

	closed atomic.Bool
}

// NewEngine builds an engine. The error mirrors GenerateContext's
// rank/fabric validation so wrapper callers see identical failures.
func NewEngine(ec EngineConfig) (*Engine, error) {
	e := &Engine{ranks: ec.Ranks, maxQueue: ec.MaxQueue, poolSize: ec.KernelPoolSize, logger: ec.Logger}
	if ec.Fabric != nil {
		if e.ranks < 1 {
			e.ranks = ec.Fabric.Size()
		} else if e.ranks != ec.Fabric.Size() {
			return nil, fmt.Errorf("core: config asks for %d ranks but the fabric has %d", e.ranks, ec.Fabric.Size())
		}
		e.fabric = ec.Fabric
		e.multiProc = ec.Fabric.TransportName() != "inproc"
	} else {
		if e.ranks < 1 {
			e.ranks = 1
		}
		e.fabric = mpi.InProcess(e.ranks)
		e.ownFabric = true
	}
	if ec.MaxConcurrent > 0 {
		e.sem = make(chan struct{}, ec.MaxConcurrent)
	}
	e.metrics = trace.NewMetrics()
	return e, nil
}

// Ranks returns the engine's rank count; runs must match it (or leave
// Config.Ranks zero to adopt it).
func (e *Engine) Ranks() int { return e.ranks }

// Metrics returns the engine-lifetime registry: run totals, failure
// counts, and wall-time histograms accumulate here across every run, and
// servers built on the engine (cmd/meshd) fold their own counters in. It
// is distinct from any per-run Tracer registry, which records one run.
func (e *Engine) Metrics() *trace.Metrics { return e.metrics }

// Active returns the number of runs past admission and still executing.
func (e *Engine) Active() int { return int(e.active.Load()) }

// kernelPool returns the shared insertion worker pool, creating it on
// first use. Tasks attach it so concurrent runs share one bounded team
// instead of spawning per-build goroutine squads.
func (e *Engine) kernelPool() *delaunay.WorkerPool {
	e.poolMu.Lock()
	defer e.poolMu.Unlock()
	if e.pool == nil {
		n := e.poolSize
		if n <= 0 {
			n = runtime.NumCPU()
		}
		e.pool = delaunay.NewWorkerPool(n)
	}
	return e.pool
}

// admit reserves an execution slot, waiting in the bounded queue when the
// engine is saturated. It fails fast with ErrEngineBusy when the queue is
// full, and returns the context's cause if the caller gives up waiting.
func (e *Engine) admit(ctx context.Context) error {
	if e.closed.Load() {
		return ErrEngineClosed
	}
	if e.sem == nil {
		return nil
	}
	select {
	case e.sem <- struct{}{}:
		return nil
	default:
	}
	if e.maxQueue < 0 {
		return ErrEngineBusy
	}
	if e.maxQueue > 0 && e.waiting.Add(1) > int64(e.maxQueue) {
		e.waiting.Add(-1)
		return ErrEngineBusy
	} else if e.maxQueue > 0 {
		defer e.waiting.Add(-1)
	}
	e.metrics.Count("engine.queued", 1)
	select {
	case e.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// Run executes one pipeline over the engine's fabric. cfg carries the
// per-request half of the state — geometry, sizing, per-run Stats and
// Tracer — and must either leave Ranks/Fabric zero to adopt the engine's
// or match them exactly. Concurrent Run calls are safe and, on an
// in-process fabric, execute in parallel (bounded by MaxConcurrent); each
// returns its own Result with fully independent Stats. Cancellation,
// failure attribution, and audit semantics are exactly GenerateContext's.
func (e *Engine) Run(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := e.admit(ctx); err != nil {
		e.metrics.Count("engine.rejected", 1)
		return nil, err
	}
	e.runs.Add(1)
	e.active.Add(1)
	defer func() {
		e.active.Add(-1)
		e.runs.Done()
		if e.sem != nil {
			<-e.sem
		}
	}()
	if e.closed.Load() {
		return nil, ErrEngineClosed
	}
	if e.multiProc {
		// SPMD epoch pairing: every process must mint the same world
		// sequence, so runs on a wire fabric cannot overlap.
		e.serial.Lock()
		defer e.serial.Unlock()
	}

	if cfg.Fabric != nil && cfg.Fabric != e.fabric {
		return nil, fmt.Errorf("core: run config carries a fabric that is not the engine's")
	}
	cfg.Fabric = e.fabric
	if cfg.Ranks < 1 {
		cfg.Ranks = e.ranks
	} else if cfg.Ranks != e.ranks {
		return nil, fmt.Errorf("core: config asks for %d ranks but the fabric has %d", cfg.Ranks, e.ranks)
	}
	if cfg.SubdomainsPerRank < 1 {
		cfg.SubdomainsPerRank = 4
	}
	if cfg.KernelWorkers == 0 {
		cfg.KernelWorkers = runtime.NumCPU()
	}
	if cfg.KernelWorkers < 1 {
		cfg.KernelWorkers = 1
	}
	if cfg.NearBodyMargin <= 0 {
		cfg.NearBodyMargin = 0.25
	}

	// Assign a run ID only when someone will see it (a logger or a
	// per-run tracer): the fmt.Sprintf would otherwise be the only
	// allocation telemetry-off runs pay.
	if cfg.RunID == "" && (e.logger != nil || cfg.Tracer != nil) {
		cfg.RunID = fmt.Sprintf("run-%06d", e.runSeq.Add(1))
	}

	res := &Result{}
	res.Stats.RunID = cfg.RunID
	rc := &RunCtx{ctx: ctx, cfg: cfg, stats: &res.Stats, res: res, tracer: cfg.Tracer, eng: e}
	stages := pipeline
	if cfg.Audit {
		// Fresh slice: the shared pipeline list must not grow an audit stage
		// for runs that did not ask for one.
		stages = append(append(make([]Stage, 0, len(pipeline)+1), pipeline...),
			stageFunc{StageAudit, runAudit})
	}
	if e.logger != nil {
		e.logger.Info("run started",
			"run_id", cfg.RunID, "ranks", cfg.Ranks,
			"transport", e.fabric.TransportName(), "audit", cfg.Audit)
	}
	t0 := time.Now()
	err := rc.runStages(stages)
	wall := time.Since(t0)
	// Membership is fabric state, not per-phase state: fold the death
	// record once here (per-phase balancer stats would double-count a
	// rank that is already dead when a later phase starts). A run on a
	// previously degraded fabric reports those losses too — the caller is
	// running on fewer ranks than configured either way.
	for _, d := range cfg.Fabric.DeadRanks() {
		res.Stats.Resilience.RanksLost++
		cause := ""
		if d.Cause != nil {
			cause = d.Cause.Error()
		}
		res.Stats.Resilience.Deaths = append(res.Stats.Resilience.Deaths,
			RankDeathStat{Rank: d.Rank, At: d.At, Cause: cause})
	}
	// Fold the run summary into the per-run metrics registry even on
	// failure: a canceled run's partial registry is often exactly what is
	// being debugged. No-op without a tracer.
	foldMetrics(rc.tracer.Metrics(), &res.Stats)
	e.foldRun(&res.Stats, wall, err)
	if e.logger != nil {
		if err != nil {
			e.logger.Error("run failed",
				"run_id", cfg.RunID, "error", err, "seconds", wall.Seconds())
		} else {
			e.logger.Info("run completed",
				"run_id", cfg.RunID, "triangles", res.Stats.TotalTriangles,
				"tasks", len(res.Stats.Tasks), "seconds", wall.Seconds())
		}
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// foldRun accumulates one run's summary into the engine-lifetime registry.
func (e *Engine) foldRun(st *Stats, wall time.Duration, err error) {
	m := e.metrics
	m.Count("engine.runs", 1)
	if err != nil {
		m.Count("engine.run_failures", 1)
	}
	m.Observe("engine.run.seconds", wall.Seconds())
	m.Count("engine.triangles", int64(st.TotalTriangles))
	m.Count("engine.tasks", int64(len(st.Tasks)))
	m.Count("engine.wire.bytes", st.BytesOnWire)
	m.Gauge("engine.active", float64(e.active.Load()))
}

// Close retires the engine: it waits for in-flight runs to finish, shuts
// the kernel worker pool down, and closes the fabric if the engine built
// it (an attached fabric stays the caller's to close). Runs submitted
// after Close fail with ErrEngineClosed. Close must not be called from
// inside a Run callback.
func (e *Engine) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	e.runs.Wait()
	e.poolMu.Lock()
	pool := e.pool
	e.pool = nil
	e.poolMu.Unlock()
	if pool != nil {
		pool.Close()
	}
	if e.ownFabric {
		return e.fabric.Close()
	}
	return nil
}
