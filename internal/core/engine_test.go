package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"pamg2d/internal/mpi"
	"pamg2d/internal/trace"
)

// TestEngineConcurrentRuns is the engine-sharing gate (run under -race in
// CI): several runs in flight on one Engine at once, each with its own
// Stats and Tracer, all byte-identical to a solo run, with the shared
// mpi buffer pools balanced once everything drains.
func TestEngineConcurrentRuns(t *testing.T) {
	cfgSolo := smallConfig(2)
	cfgSolo.Audit = true
	solo, err := Generate(cfgSolo)
	if err != nil {
		t.Fatal(err)
	}
	want := meshBytes(t, solo)

	gets0, puts0 := mpi.PoolCounters()

	eng, err := NewEngine(EngineConfig{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}

	const runs = 4
	results := make([]*Result, runs)
	tracers := make([]*trace.Tracer, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := smallConfig(2)
			cfg.Audit = true
			tracers[i] = trace.New(2)
			cfg.Tracer = tracers[i]
			results[i], errs[i] = eng.Run(context.Background(), cfg)
		}(i)
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if got := meshBytes(t, results[i]); !bytes.Equal(got, want) {
			t.Errorf("run %d: mesh differs from solo run (%d vs %d bytes)", i, len(got), len(want))
		}
		// Per-run state must be fully independent: every run carries its own
		// complete stage record and audit report, not a shared accumulator.
		if a, b := len(results[i].Stats.Stages), len(solo.Stats.Stages); a != b {
			t.Errorf("run %d: %d stage records, solo has %d", i, a, b)
		}
		if results[i].Stats.Audit == nil {
			t.Errorf("run %d: no audit report", i)
		}
		if tracers[i].OpenSpans() != 0 {
			t.Errorf("run %d: %d spans left open", i, tracers[i].OpenSpans())
		}
		// The tracer's task counter must equal this run's own per-rank task
		// totals (audit jobs included) — a shared or cross-wired registry
		// would count other runs' tasks too.
		var expect int64
		for _, s := range results[i].Stats.Stages {
			for _, r := range s.Ranks {
				expect += int64(r.Tasks)
			}
		}
		snap := tracers[i].Metrics().Snapshot()
		if n := snap.Counters["tasks.total"]; n != expect {
			t.Errorf("run %d: tracer saw %d tasks, stats have %d — registries cross-talk?",
				i, n, expect)
		}
	}
	if n := eng.Metrics().Snapshot().Counters["engine.runs"]; n != runs {
		t.Errorf("engine.runs = %d, want %d", n, runs)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// All pooled wire buffers borrowed by the concurrent runs must be back:
	// the per-run leak check is that the global balance moved by equal
	// amounts while this engine was the only user.
	gets1, puts1 := mpi.PoolCounters()
	if gets1-gets0 != puts1-puts0 {
		t.Errorf("pooled buffers leaked: %d gets vs %d puts across the engine's lifetime",
			gets1-gets0, puts1-puts0)
	}
}

// TestEngineConcurrentKernelPool runs concurrent multi-worker-kernel runs
// over the engine's shared Delaunay worker pool and checks the meshes
// still match a solo kw2 run (the parallel kernel is deterministic for
// any worker count >= 2, and executing its stripe jobs on a shared pool
// must not change the result).
func TestEngineConcurrentKernelPool(t *testing.T) {
	cfgSolo := smallConfig(1)
	cfgSolo.KernelWorkers = 2
	solo, err := Generate(cfgSolo)
	if err != nil {
		t.Fatal(err)
	}
	want := meshBytes(t, solo)

	eng, err := NewEngine(EngineConfig{Ranks: 1, KernelPoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var wg sync.WaitGroup
	results := make([]*Result, 3)
	errs := make([]error, 3)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := smallConfig(1)
			cfg.KernelWorkers = 2
			results[i], errs[i] = eng.Run(context.Background(), cfg)
		}(i)
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if got := meshBytes(t, results[i]); !bytes.Equal(got, want) {
			t.Errorf("run %d: pooled-kernel mesh differs from solo output", i)
		}
		if results[i].Stats.Kernel.Workers != 2 {
			t.Errorf("run %d: kernel workers = %d, want 2", i, results[i].Stats.Kernel.Workers)
		}
	}
}

// TestEngineAdmission exercises the MaxConcurrent/MaxQueue gate with runs
// deterministically parked inside a distributed stage via the test hook.
func TestEngineAdmission(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Ranks: 1, MaxConcurrent: 1, MaxQueue: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	inside := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	cfg := smallConfig(1)
	cfg.TaskHook = func(stage string, kind int) error {
		once.Do(func() {
			close(inside)
			<-release
		})
		return nil
	}
	done := make(chan error, 1)
	go func() {
		_, err := eng.Run(context.Background(), cfg)
		done <- err
	}()
	<-inside

	// The engine is saturated and has no queue: the second run fails fast.
	if _, err := eng.Run(context.Background(), smallConfig(1)); !errors.Is(err, ErrEngineBusy) {
		t.Errorf("saturated engine: err = %v, want ErrEngineBusy", err)
	}
	if n := eng.Metrics().Snapshot().Counters["engine.rejected"]; n != 1 {
		t.Errorf("engine.rejected = %d, want 1", n)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("parked run: %v", err)
	}
	// Capacity is back: the next run is admitted.
	if _, err := eng.Run(context.Background(), smallConfig(1)); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// TestEngineQueueWait: a queued run waits for a slot and then executes;
// a canceled waiter leaves with the context's cause.
func TestEngineQueueWait(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Ranks: 1, MaxConcurrent: 1, MaxQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	inside := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	cfg := smallConfig(1)
	cfg.TaskHook = func(stage string, kind int) error {
		once.Do(func() {
			close(inside)
			<-release
		})
		return nil
	}
	first := make(chan error, 1)
	go func() {
		_, err := eng.Run(context.Background(), cfg)
		first <- err
	}()
	<-inside

	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() {
		_, err := eng.Run(ctx, smallConfig(1))
		queued <- err
	}()
	// Give the waiter a moment to enter the queue, then cancel it: it must
	// leave with the cancellation, not ErrEngineBusy, and without running.
	for eng.Metrics().Snapshot().Counters["engine.queued"] == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-queued; !errors.Is(err, context.Canceled) {
		t.Errorf("canceled waiter: err = %v, want context.Canceled", err)
	}
	close(release)
	if err := <-first; err != nil {
		t.Fatalf("parked run: %v", err)
	}
}

// TestEngineValidation covers closed-engine, rank-mismatch and foreign-
// fabric rejections.
func TestEngineValidation(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(3)
	if _, err := eng.Run(context.Background(), cfg); err == nil ||
		!strings.Contains(err.Error(), "asks for 3 ranks but the fabric has 2") {
		t.Errorf("rank mismatch: err = %v", err)
	}
	other := mpi.InProcess(2)
	defer other.Close()
	cfgF := smallConfig(2)
	cfgF.Fabric = other
	if _, err := eng.Run(context.Background(), cfgF); err == nil ||
		!strings.Contains(err.Error(), "not the engine's") {
		t.Errorf("foreign fabric: err = %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := eng.Run(context.Background(), smallConfig(2)); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("closed engine: err = %v, want ErrEngineClosed", err)
	}

	// NewEngine against a mismatched attached fabric mirrors the
	// GenerateContext error exactly.
	if _, err := NewEngine(EngineConfig{Ranks: 3, Fabric: other}); err == nil ||
		!strings.Contains(err.Error(), "asks for 3 ranks but the fabric has 2") {
		t.Errorf("NewEngine mismatch: err = %v", err)
	}
}

// TestEngineAdoptsRanks: a zero-rank config adopts the engine's count,
// and the wrapper path (GenerateContext) still resolves zero to one.
func TestEngineAdoptsRanks(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cfg := smallConfig(2)
	cfg.Ranks = 0
	res, err := eng.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mesh.NumTriangles() < 500 {
		t.Errorf("adopted-rank run produced only %d triangles", res.Mesh.NumTriangles())
	}
}
