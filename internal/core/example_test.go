package core_test

import (
	"fmt"

	"pamg2d/internal/airfoil"
	"pamg2d/internal/blayer"
	"pamg2d/internal/core"
	"pamg2d/internal/growth"
)

// ExampleGenerate runs the complete push-button pipeline on a small
// NACA 0012 configuration across two simulated ranks.
func ExampleGenerate() {
	cfg := core.DefaultConfig()
	cfg.Geometry = airfoil.Single(airfoil.NACA0012, 24, 6)
	cfg.BL = blayer.Params{
		Growth:         growth.Geometric{H0: 3e-3, Ratio: 1.35},
		MaxLayers:      8,
		MaxAngleDeg:    25,
		CuspAngleDeg:   60,
		FanSpacingDeg:  20,
		FanCurving:     0.5,
		IsotropyFactor: 1,
		TrimFactor:     1,
	}
	cfg.SurfaceH0 = 0.1
	cfg.Gradation = 0.4
	cfg.HMax = 2.5
	cfg.Ranks = 2
	cfg.SubdomainsPerRank = 2

	res, err := core.Generate(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("mesh audited:", res.Mesh.NumTriangles() > 0)
	fmt.Println("has boundary layer:", res.Stats.BLTriangles > 0)
	fmt.Println("has inviscid region:", res.Stats.InviscidTris > 0)
	fmt.Println("anisotropic:", res.Mesh.Quality().MaxAspectRatio > 3)
	// Output:
	// mesh audited: true
	// has boundary layer: true
	// has inviscid region: true
	// anisotropic: true
}
