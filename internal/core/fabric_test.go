package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pamg2d/internal/airfoil"
	"pamg2d/internal/blayer"
	"pamg2d/internal/loadbal"
	"pamg2d/internal/mpi"
	"pamg2d/internal/project"
)

// runOnFabric runs fn as one SPMD process per loopback-TCP cluster member
// and returns the per-process errors.
func runOnFabric(t *testing.T, ranks int, fn func(i int, cl *mpi.Cluster) error) []error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	t.Cleanup(cancel)
	clusters, err := mpi.LoopbackClusters(ctx, ranks)
	if err != nil {
		t.Fatalf("LoopbackClusters(%d): %v", ranks, err)
	}
	t.Cleanup(func() {
		for _, cl := range clusters {
			cl.Close()
		}
	})
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for i, cl := range clusters {
		wg.Add(1)
		go func(i int, cl *mpi.Cluster) {
			defer wg.Done()
			errs[i] = fn(i, cl)
		}(i, cl)
	}
	wg.Wait()
	return errs
}

func meshBytes(t *testing.T, r *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Mesh.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	return buf.Bytes()
}

// TestGenerateTCPByteIdentical is the transport acceptance gate: the full
// audited pipeline over a loopback TCP fabric produces, on every process,
// a mesh byte-identical to the in-process run at the same rank count.
func TestGenerateTCPByteIdentical(t *testing.T) {
	for _, ranks := range []int{1, 4} {
		t.Run(fmt.Sprintf("ranks-%d", ranks), func(t *testing.T) {
			cfg := smallConfig(ranks)
			cfg.Audit = true
			want, err := Generate(cfg)
			if err != nil {
				t.Fatalf("in-process Generate: %v", err)
			}
			wantBytes := meshBytes(t, want)
			if want.Stats.Audit == nil || !want.Stats.Audit.Ok() {
				t.Fatalf("in-process audit not clean: %v", want.Stats.Audit)
			}

			results := make([]*Result, ranks)
			errs := runOnFabric(t, ranks, func(i int, cl *mpi.Cluster) error {
				c := cfg
				c.Fabric = cl
				res, err := GenerateContext(context.Background(), c)
				results[i] = res
				return err
			})
			for i, err := range errs {
				if err != nil {
					t.Fatalf("process %d: %v", i, err)
				}
			}
			for i, r := range results {
				if r.Stats.Audit == nil || !r.Stats.Audit.Ok() {
					t.Errorf("process %d audit not clean: %v", i, r.Stats.Audit)
				}
				if got := meshBytes(t, r); !bytes.Equal(got, wantBytes) {
					t.Errorf("process %d: mesh (%d bytes, %d triangles) differs from in-process run (%d bytes, %d triangles)",
						i, len(got), r.Mesh.NumTriangles(), len(wantBytes), want.Mesh.NumTriangles())
				}
			}
		})
	}
}

// fig08Tasks builds the Figure 8 workload: the boundary-layer point cloud
// of a NACA 0012 decomposed into projection subdomains, one BL-leaf task
// per subdomain — the same task form the bl-triangulation stage feeds the
// balancer.
func fig08Tasks(t *testing.T) []loadbal.Task {
	t.Helper()
	cfg := airfoil.Single(airfoil.NACA0012, 96, 20)
	g, err := cfg.Graph()
	if err != nil {
		t.Fatalf("graph: %v", err)
	}
	layers := blayer.Generate(g, blayer.DefaultParams())
	root := project.New(layers[0].AllPoints())
	leaves, _ := project.Decompose(root, project.Options{MinVerts: 16, MaxDepth: 5})
	tasks := make([]loadbal.Task, len(leaves))
	for i, leaf := range leaves {
		leaf.DropYSorted()
		tasks[i] = loadbal.Task{
			ID:            int32(i),
			Cost:          float64(leaf.Len()),
			BoundaryLayer: true,
			Vals:          blLeafVals(leaf),
		}
	}
	return tasks
}

// TestRunDistributedTCPMatchesInProcess drives the distributed executor
// directly with the Figure 8 workload on both transports: every process of
// the TCP run must end up with exactly the result floats the in-process
// run collected, proving the collection + re-broadcast path is lossless.
func TestRunDistributedTCPMatchesInProcess(t *testing.T) {
	const ranks = 4
	tasks := fig08Tasks(t)
	if len(tasks) < 2*ranks {
		t.Fatalf("only %d tasks; workload too small to exercise stealing", len(tasks))
	}
	mk := func(fabric *mpi.Cluster) *RunCtx {
		cfg := DefaultConfig()
		cfg.Ranks = ranks
		cfg.Fabric = fabric
		res := &Result{}
		return &RunCtx{ctx: context.Background(), cfg: cfg, stats: &res.Stats, res: res}
	}
	g, err := airfoil.Single(airfoil.NACA0012, 96, 20).Graph()
	if err != nil {
		t.Fatal(err)
	}
	tctx := taskCtx{frame: g.Farfield.BBox()}

	want, err := runDistributed(mk(nil), StageBLTriangulation, tasks, tctx)
	if err != nil {
		t.Fatalf("in-process runDistributed: %v", err)
	}

	all := make([][][]float64, ranks)
	errs := runOnFabric(t, ranks, func(i int, cl *mpi.Cluster) error {
		got, err := runDistributed(mk(cl), StageBLTriangulation, tasks, tctx)
		all[i] = got
		return err
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", i, err)
		}
	}
	for p, got := range all {
		if len(got) != len(want) {
			t.Fatalf("process %d: %d results, want %d", p, len(got), len(want))
		}
		for ti := range want {
			if len(got[ti]) != len(want[ti]) {
				t.Fatalf("process %d task %d: %d floats, want %d", p, ti, len(got[ti]), len(want[ti]))
			}
			for k := range want[ti] {
				if got[ti][k] != want[ti][k] {
					t.Fatalf("process %d task %d: float %d differs", p, ti, k)
				}
			}
		}
	}
}

// TestGenerateTCPTaskFailureAgreement injects a task failure on exactly
// one process: the post-phase agreement must fail the run on every
// process, attributed to the failing rank, instead of letting the healthy
// processes mesh on alone.
func TestGenerateTCPTaskFailureAgreement(t *testing.T) {
	const ranks = 2
	boom := errors.New("injected task failure")
	errs := runOnFabric(t, ranks, func(i int, cl *mpi.Cluster) error {
		c := smallConfig(ranks)
		c.Fabric = cl
		if i == 1 {
			c.TaskHook = func(stage string, kind int) error {
				if stage == StageInviscid {
					return boom
				}
				return nil
			}
		}
		_, err := GenerateContext(context.Background(), c)
		return err
	})
	for i, err := range errs {
		if err == nil {
			t.Fatalf("process %d: run succeeded despite a task failure on rank 1", i)
		}
		var pe *PhaseError
		if !errors.As(err, &pe) {
			t.Fatalf("process %d: %T (%v), want *PhaseError", i, err, err)
		}
		if pe.Stage != StageInviscid {
			t.Errorf("process %d: failure attributed to stage %q, want %q", i, pe.Stage, StageInviscid)
		}
		if pe.Rank != 1 {
			t.Errorf("process %d: failure attributed to rank %d, want 1", i, pe.Rank)
		}
	}
	if !errors.Is(errs[1], boom) {
		t.Errorf("failing process lost the original cause: %v", errs[1])
	}
}

// TestGenerateTCPDegradedRun kills one worker process mid-run (its
// fabric connections reset, the SIGKILL stand-in) and checks the
// survivors complete the audited pipeline degraded: the run succeeds,
// the audit is clean, the loss is recorded in Stats.Resilience, and the
// surviving processes agree on the mesh bytes.
func TestGenerateTCPDegradedRun(t *testing.T) {
	const ranks = 4
	const victim = 3
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	clusters, err := mpi.LoopbackClusters(ctx, ranks)
	if err != nil {
		t.Fatalf("LoopbackClusters(%d): %v", ranks, err)
	}
	defer func() {
		for _, cl := range clusters {
			if cl.Rank() != victim {
				cl.Close()
			}
		}
	}()

	results := make([]*Result, ranks)
	errs := make([]error, ranks)
	var killOnce sync.Once
	var wg sync.WaitGroup
	for _, cl := range clusters {
		wg.Add(1)
		go func(cl *mpi.Cluster) {
			defer wg.Done()
			r := cl.Rank()
			c := smallConfig(ranks)
			c.Audit = true
			c.Fabric = cl
			if r == victim {
				c.TaskHook = func(stage string, kind int) error {
					if stage == StageInviscid {
						// Vanish mid-task: connections reset while this rank
						// still owns unfinished work, then park so the
						// completion is never sent.
						killOnce.Do(func() { cl.Close() })
						time.Sleep(50 * time.Millisecond)
					}
					return nil
				}
			}
			results[r], errs[r] = GenerateContext(context.Background(), c)
		}(cl)
	}
	wg.Wait()

	if errs[victim] == nil {
		t.Errorf("victim process completed despite losing its fabric")
	}
	var survivors [][]byte
	for r := 0; r < ranks; r++ {
		if r == victim {
			continue
		}
		if errs[r] != nil {
			t.Fatalf("survivor %d: %v", r, errs[r])
		}
		res := results[r]
		if res.Stats.Audit == nil || !res.Stats.Audit.Ok() {
			t.Errorf("survivor %d audit not clean: %v", r, res.Stats.Audit)
		}
		if !res.Stats.Degraded() || res.Stats.Resilience.RanksLost != 1 {
			t.Errorf("survivor %d resilience = %+v, want 1 rank lost", r, res.Stats.Resilience)
		}
		if len(res.Stats.Resilience.Deaths) != 1 || res.Stats.Resilience.Deaths[0].Rank != victim {
			t.Errorf("survivor %d death record = %+v, want rank %d", r, res.Stats.Resilience.Deaths, victim)
		}
		survivors = append(survivors, meshBytes(t, res))
	}
	if results[0].Stats.Resilience.TasksRequeued < 1 {
		t.Errorf("root requeued %d tasks, want >= 1", results[0].Stats.Resilience.TasksRequeued)
	}
	for i := 1; i < len(survivors); i++ {
		if !bytes.Equal(survivors[i], survivors[0]) {
			t.Errorf("survivor meshes disagree (%d vs %d bytes)", len(survivors[i]), len(survivors[0]))
		}
	}
}
