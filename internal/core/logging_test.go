package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"strings"
	"testing"
)

// TestEngineRunIDs pins the run-labeling contract: an unobserved run
// stays unlabeled (no formatting on the disabled path), an observed run
// gets a sequential engine ID, and a caller-supplied ID wins over both.
func TestEngineRunIDs(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	res, err := eng.Run(context.Background(), smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RunID != "" {
		t.Errorf("unobserved run labeled %q, want empty", res.Stats.RunID)
	}

	cfg := smallConfig(1)
	cfg.RunID = "req-abc"
	if res, err = eng.Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if res.Stats.RunID != "req-abc" {
		t.Errorf("caller-supplied run ID lost: got %q", res.Stats.RunID)
	}

	var buf bytes.Buffer
	logged, err := NewEngine(EngineConfig{
		Ranks:  1,
		Logger: slog.New(slog.NewJSONHandler(&buf, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer logged.Close()
	if res, err = logged.Run(context.Background(), smallConfig(1)); err != nil {
		t.Fatal(err)
	}
	if res.Stats.RunID != "run-000001" {
		t.Errorf("engine-assigned run ID = %q, want run-000001", res.Stats.RunID)
	}

	// Both lifecycle records must be valid JSON carrying the run ID.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2 (started + completed):\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line %d not JSON: %v\n%s", i, err, line)
		}
		if rec["run_id"] != "run-000001" {
			t.Errorf("log line %d run_id = %v", i, rec["run_id"])
		}
	}
	if !strings.Contains(lines[0], "run started") || !strings.Contains(lines[1], "run completed") {
		t.Errorf("unexpected lifecycle messages:\n%s", buf.String())
	}
}

// TestEngineRunFailureLogged checks a failing run emits a "run failed"
// record with the error attached.
func TestEngineRunFailureLogged(t *testing.T) {
	var buf bytes.Buffer
	eng, err := NewEngine(EngineConfig{
		Ranks:  1,
		Logger: slog.New(slog.NewJSONHandler(&buf, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	boom := errors.New("injected task failure")
	cfg := smallConfig(1)
	cfg.TaskHook = func(stage string, kind int) error {
		return boom
	}
	if _, err := eng.Run(context.Background(), cfg); err == nil {
		t.Fatal("injected task failure did not fail the run")
	}
	if !strings.Contains(buf.String(), "run failed") {
		t.Errorf("no failure record logged:\n%s", buf.String())
	}
}
