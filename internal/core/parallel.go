package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pamg2d/internal/blayer"
	"pamg2d/internal/delaunay"
	"pamg2d/internal/front"
	"pamg2d/internal/geom"
	"pamg2d/internal/loadbal"
	"pamg2d/internal/mpi"
	"pamg2d/internal/project"
	"pamg2d/internal/sizing"
	"pamg2d/internal/trace"
)

// Message tags of the pipeline's own protocol (distinct from the
// balancer's range).
const (
	tagResult = iota + 200
	// tagErrSync carries each worker's post-phase failure flag to the
	// root in multi-process runs (the collect leg of the star-shaped
	// agreement; the slot after it is reserved from the protocol's
	// earlier Allreduce-based shape).
	tagErrSync
	_
	// tagResultSync carries the root's combined verdict + result payload
	// back to each worker (the distribute leg of the agreement).
	tagResultSync
)

// taskKind distinguishes the payload encodings.
const (
	kindBLLeaf = iota
	kindTransition
	kindInviscid
	kindRayBatch
)

// taskKindName labels a task's trace span by its payload kind.
func taskKindName(vals []float64) string {
	if len(vals) == 0 {
		return "task"
	}
	switch int(vals[0]) {
	case kindBLLeaf:
		return "task/bl-leaf"
	case kindTransition:
		return "task/transition"
	case kindInviscid:
		return "task/inviscid"
	case kindRayBatch:
		return "task/ray-batch"
	}
	return "task"
}

// blLeafVals builds a projection-decomposition leaf task: kind, the owned
// circumcenter region, then the x-sorted points. The slice is allocated at
// its exact final size and travels by reference through the balancer; its
// serialized form would be mpi.EncodeFloats(vals).
func blLeafVals(leaf *project.Subdomain) []float64 {
	vals := make([]float64, 0, 5+2*len(leaf.XS))
	vals = append(vals, kindBLLeaf,
		leaf.Region.MinX, leaf.Region.MaxX, leaf.Region.MinY, leaf.Region.MaxY)
	for _, v := range leaf.XS {
		vals = append(vals, v.P.X, v.P.Y)
	}
	return vals
}

// regionTaskVals builds a transition input or inviscid region border task
// at its exact final size.
func regionTaskVals(kind int, pts []geom.Point, segs [][2]int32, holes []geom.Point) []float64 {
	vals := make([]float64, 0, 4+2*len(pts)+2*len(segs)+2*len(holes))
	vals = append(vals, float64(kind), float64(len(pts)), float64(len(segs)), float64(len(holes)))
	for _, p := range pts {
		vals = append(vals, p.X, p.Y)
	}
	for _, s := range segs {
		vals = append(vals, float64(s[0]), float64(s[1]))
	}
	for _, h := range holes {
		vals = append(vals, h.X, h.Y)
	}
	return vals
}

// taskCtx carries the shared read-only context every task needs. The
// kernel-parallelism fields (workers, kern, tracer, rank) are filled by
// runDistributed, not by the stage prepare functions: workers and kern are
// phase-wide, rank is stamped per executing rank.
type taskCtx struct {
	frame  geom.BBox
	size   sizing.Func
	kernel Kernel
	bl     blayer.Params
	// workers is the intra-task insertion worker count (Config.KernelWorkers
	// resolved); <= 1 selects the sequential Delaunay kernel.
	workers int
	// kern accumulates the parallel engine's per-build statistics across
	// the phase's tasks; nil when the sequential kernel runs.
	kern   *kernelCounters
	tracer *trace.Tracer
	rank   int
	// pool, when non-nil, is the engine's shared kernel worker team; the
	// parallel builds submit their stripe jobs to it instead of spawning a
	// goroutine squad per build.
	pool *delaunay.WorkerPool
	// shuffle selects BRIO round-shuffled insertion batches
	// (Config.KernelShuffle).
	shuffle bool
	// hook, when set (tests only), runs before each task's kind dispatch;
	// a non-nil return fails the task on the executing rank.
	hook func(kind int) error
}

// parOpts builds the Delaunay engine options for a task executing on this
// context's rank.
func (ctx *taskCtx) parOpts() delaunay.ParallelOptions {
	return delaunay.ParallelOptions{
		Workers:      ctx.workers,
		Tracer:       ctx.tracer,
		Rank:         ctx.rank,
		Pool:         ctx.pool,
		RoundShuffle: ctx.shuffle,
	}
}

// kernelCounters accumulates the intra-rank insertion engine's statistics
// across a phase's concurrently executing tasks; runDistributed folds the
// totals into Stats.Kernel when the phase completes.
type kernelCounters struct {
	rounds     atomic.Int64
	inserted   atomic.Int64
	conflicts  atomic.Int64
	sequential atomic.Int64
}

func (k *kernelCounters) add(ps *delaunay.ParStats) {
	if k == nil || ps == nil {
		return
	}
	k.rounds.Add(int64(ps.Rounds))
	k.inserted.Add(int64(ps.Inserted))
	k.conflicts.Add(int64(ps.Conflicts))
	k.sequential.Add(int64(ps.Sequential))
}

// processTask executes a task's value vector and returns the produced
// floats: triangles as 6 values each for meshing tasks, flat point
// coordinates for ray-insertion batches.
func processTask(vals []float64, frame geom.BBox, size sizing.Func) ([]float64, error) {
	return processTaskCtx(vals, taskCtx{frame: frame, size: size})
}

// processTaskCtx is processTask with the full shared context. The vals
// slice is the task's Vals vector (or the decoded Payload for tasks that
// arrived serialized); it is only read.
func processTaskCtx(vals []float64, ctx taskCtx) ([]float64, error) {
	frame := ctx.frame
	size := ctx.size
	kernel := ctx.kernel
	if len(vals) == 0 {
		return nil, fmt.Errorf("core: empty task payload")
	}
	if ctx.hook != nil {
		if err := ctx.hook(int(vals[0])); err != nil {
			return nil, err
		}
	}
	switch int(vals[0]) {
	case kindRayBatch:
		nRays := int(vals[1])
		// The planned per-ray counts are in the payload, so the output size
		// is known up front: two coordinates per planned point.
		planned := 0
		for i, off := 0, 2; i < nRays; i, off = i+1, off+10 {
			planned += int(vals[off+9])
		}
		out := make([]float64, 0, 2*planned)
		off := 2
		for i := 0; i < nRays; i++ {
			r := blayer.Ray{
				Origin:      geom.Pt(vals[off], vals[off+1]),
				Dir:         geom.V(vals[off+2], vals[off+3]),
				MaxLen:      vals[off+4],
				Tangential:  vals[off+5],
				Fan:         vals[off+6] != 0,
				FanBisector: geom.V(vals[off+7], vals[off+8]),
			}
			count := int(vals[off+9])
			off += 10
			for _, q := range blayer.InsertRay(&r, ctx.bl, count) {
				out = append(out, q.X, q.Y)
			}
		}
		return out, nil
	case kindBLLeaf:
		region := project.Rect{MinX: vals[1], MaxX: vals[2], MinY: vals[3], MaxY: vals[4]}
		coords := vals[5:]
		pts := make([]geom.Point, len(coords)/2)
		for i := range pts {
			pts[i] = geom.Pt(coords[2*i], coords[2*i+1])
		}
		if len(pts) < 3 {
			return nil, nil
		}
		leafIn := delaunay.Input{Points: pts, Sorted: true, Frame: frame}
		var res *delaunay.Result
		var err error
		if ctx.workers > 1 {
			var ps *delaunay.ParStats
			res, ps, err = delaunay.TriangulateParallel(leafIn, ctx.parOpts())
			ctx.kern.add(ps)
		} else {
			res, err = delaunay.Triangulate(leafIn)
		}
		if err != nil {
			return nil, err
		}
		out := make([]float64, 0, 6*len(res.Triangles))
		for _, tri := range res.Triangles {
			a, b, c := res.Points[tri[0]], res.Points[tri[1]], res.Points[tri[2]]
			if region.Contains(geom.Circumcenter(a, b, c)) {
				out = append(out, a.X, a.Y, b.X, b.Y, c.X, c.Y)
			}
		}
		return out, nil
	case kindTransition, kindInviscid:
		np := int(vals[1])
		useAF := kernel == KernelAdvancingFront && int(vals[0]) == kindInviscid
		ns := int(vals[2])
		nh := int(vals[3])
		off := 4
		in := delaunay.Input{
			Frame:    frame,
			Points:   make([]geom.Point, 0, np),
			Segments: make([][2]int32, 0, ns),
			Holes:    make([]geom.Point, 0, nh),
		}
		for i := 0; i < np; i++ {
			in.Points = append(in.Points, geom.Pt(vals[off+2*i], vals[off+2*i+1]))
		}
		off += 2 * np
		for i := 0; i < ns; i++ {
			in.Segments = append(in.Segments, [2]int32{int32(vals[off+2*i]), int32(vals[off+2*i+1])})
		}
		off += 2 * ns
		for i := 0; i < nh; i++ {
			in.Holes = append(in.Holes, geom.Pt(vals[off+2*i], vals[off+2*i+1]))
		}
		if useAF {
			// The decoupled region's border is one closed CCW loop already
			// discretized at the k-rule spacing, which is finer than the
			// sizing target, so the advancing front adds no border points
			// and conformity with the neighbors is preserved.
			m, err := front.Mesh([][]geom.Point{in.Points}, front.Options{SizeAt: size})
			if err != nil {
				return nil, err
			}
			out := make([]float64, 0, 6*m.NumTriangles())
			for _, tri := range m.Triangles {
				a, b, c := m.Points[tri[0]], m.Points[tri[1]], m.Points[tri[2]]
				out = append(out, a.X, a.Y, b.X, b.Y, c.X, c.Y)
			}
			return out, nil
		}
		var res *delaunay.Result
		var err error
		if ctx.workers > 1 {
			var ps *delaunay.ParStats
			res, ps, err = delaunay.TriangulateRefinedParallel(in, qualityFor(size), ctx.parOpts())
			ctx.kern.add(ps)
		} else {
			res, err = delaunay.TriangulateRefined(in, qualityFor(size))
		}
		if err != nil {
			return nil, err
		}
		out := make([]float64, 0, 6*len(res.Triangles))
		for _, tri := range res.Triangles {
			a, b, c := res.Points[tri[0]], res.Points[tri[1]], res.Points[tri[2]]
			out = append(out, a.X, a.Y, b.X, b.Y, c.X, c.Y)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("core: unknown task kind %v", vals[0])
	}
}

// taskResult carries one task's output floats to the root by reference.
// On a real interconnect the result would be EncodeFloats(append([ID],
// tris...)), so its wire size is 8*(1+len(tris)) bytes.
type taskResult struct {
	id   int32
	tris []float64
}

func (r *taskResult) wireBytes() int { return 8 * (1 + len(r.tris)) }

// runDistributed is the pipeline's single distributed-phase executor: it
// runs the given tasks under the work-stealing load balancer on a fresh
// world and returns each task's result floats (indexed by task ID) as
// collected at the root. Tasks and results move through the in-process
// fabric by reference; every transfer is accounted at the size its
// serialized form would occupy, so the wire statistics match a
// byte-serialized run exactly.
//
// Cancellation of rc's context tears the world down mid-phase: in-flight
// tasks finish, both balancer goroutines on every rank drain, and the
// call returns a *PhaseError carrying the stage name and the context's
// cause. A task or rank failure is returned the same way, attributed to
// the rank it occurred on.
func runDistributed(rc *RunCtx, stage string, tasks []loadbal.Task, tctx taskCtx) ([][]float64, error) {
	cfg := rc.cfg
	if cfg.TaskHook != nil {
		hook := cfg.TaskHook
		tctx.hook = func(kind int) error { return hook(stage, kind) }
	}
	tr := rc.tracer
	// Intra-task kernel parallelism: GenerateContext resolved the worker
	// count already, but callers reaching runDistributed through other
	// paths (tests) may carry the raw convention, so resolve defensively.
	tctx.workers = cfg.KernelWorkers
	if tctx.workers == 0 {
		tctx.workers = runtime.NumCPU()
	}
	var kern *kernelCounters
	if tctx.workers > 1 {
		kern = &kernelCounters{}
		tctx.kern = kern
		tctx.tracer = tr
		tctx.shuffle = cfg.KernelShuffle
		if rc.eng != nil {
			tctx.pool = rc.eng.kernelPool()
		}
	}
	world := rc.newWorld()
	world.SetTracer(tr)
	win := world.NewWindow(cfg.Ranks)

	// Deal tasks round-robin. Every process computed the identical task
	// list (the pipeline is SPMD), so in a multi-process run each process
	// simply keeps the share of its own rank; in-process, the root's deal
	// is the distribution.
	initial := make([][]loadbal.Task, cfg.Ranks)
	for i, t := range tasks {
		r := i % cfg.Ranks
		initial[r] = append(initial[r], t)
	}

	var mu sync.Mutex
	measures := make([]TaskMeasure, len(tasks))
	balStats := make([]loadbal.Stats, cfg.Ranks)
	perRank := make([]RankStat, cfg.Ranks)
	var taskErr *PhaseError

	opt := loadbal.DefaultOptions(totalCost(tasks), cfg.Ranks)
	opt.Tracer = tr
	wireRecovery(&opt, world, tasks, initial)
	err := world.RunCtx(rc.ctx, func(c *mpi.Comm) error {
		// Per-rank context copy: the kernel worker spans of a task executed
		// here must land on this rank's tracer track.
		tc := tctx
		tc.rank = c.Rank()
		bs, err := loadbal.Run(rc.ctx, c, win, initial[c.Rank()], len(tasks), opt, func(task loadbal.Task) {
			vals := task.Vals
			if vals == nil && task.Payload != nil {
				vals = mpi.DecodeFloats(task.Payload)
			}
			var sp trace.Span
			if tr.Enabled() {
				sp = tr.Begin(c.Rank(), trace.CatTask, taskKindName(vals))
			}
			t0 := time.Now()
			tris, perr := processTaskCtx(vals, tc)
			dt := time.Since(t0)
			if tr.Enabled() {
				sp.End(trace.I("id", int(task.ID)), trace.F("cost", task.Cost),
					trace.I("tris", len(tris)/6))
				tr.Metrics().Observe("task.seconds", dt.Seconds())
			}
			if perr != nil {
				mu.Lock()
				if taskErr == nil {
					taskErr = &PhaseError{Stage: stage, Rank: c.Rank(), Err: fmt.Errorf("task %d: %w", task.ID, perr)}
				}
				mu.Unlock()
				tris = nil
			}
			mu.Lock()
			measures[task.ID] = TaskMeasure{
				Seconds:       dt.Seconds(),
				Bytes:         int64(8*len(task.Vals) + len(task.Payload)),
				BoundaryLayer: task.BoundaryLayer,
				Triangles:     len(tris) / 6,
			}
			perRank[c.Rank()].Tasks++
			perRank[c.Rank()].Busy += dt
			mu.Unlock()
			// Ship the result to the root ahead of the completion message,
			// by reference but accounted at its serialized size. A failed
			// send means the world is tearing down; the cause surfaces from
			// the balancer return and the context check below.
			res := &taskResult{id: task.ID, tris: tris}
			_ = c.SendRef(0, tagResult, res, res.wireBytes())
		})
		mu.Lock()
		balStats[c.Rank()] = bs
		mu.Unlock()
		return err
	})
	// Error precedence: cancellation first (it is the root cause of any
	// rank errors it provoked), then rank/world failures, then the first
	// task-processing failure.
	if rc.ctx.Err() != nil {
		return nil, &PhaseError{Stage: stage, Rank: -1, Err: context.Cause(rc.ctx)}
	}
	if err != nil {
		return nil, phaseError(stage, err)
	}
	mu.Lock()
	firstTaskErr := taskErr
	mu.Unlock()
	// A task failure is local knowledge: in a multi-process run the other
	// processes completed the phase cleanly (the failed task shipped a nil
	// result) and must be told before anyone returns, or they would march
	// on alone. The agreement below handles that; in-process, everyone
	// shares taskErr and the phase can fail immediately.
	if firstTaskErr != nil && !world.MultiProcess() {
		return nil, firstTaskErr
	}

	// Drain the results at the root (they were all enqueued before the
	// balancer's termination: each rank's result sends precede its
	// completion signals on the same ordered channel, and the balancer
	// terminates only after the root has observed every completion —
	// re-queued tasks may deliver a duplicate result, counted once). In a
	// multi-process run the drain is followed by the failure agreement and
	// the root's re-distribution of the full result set, so every process
	// leaves the phase with identical state.
	results := make([][]float64, len(tasks))
	have := make([]bool, len(tasks))
	collected := 0
	agreedErrRank := -1
	err = world.RunCtx(rc.ctx, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			for collected < len(tasks) {
				ref, _, _, ok := c.TryRecvRef(mpi.AnySource, tagResult)
				if !ok {
					break
				}
				var id int
				var tris []float64
				switch p := ref.(type) {
				case *taskResult:
					id, tris = int(p.id), p.tris
				case []byte:
					vals := mpi.DecodeFloats(p)
					id, tris = int(vals[0]), vals[1:]
				default:
					continue
				}
				if id < 0 || id >= len(tasks) || have[id] {
					continue
				}
				have[id] = true
				results[id] = tris
				collected++
			}
		}
		if !world.MultiProcess() {
			return nil
		}
		mu.Lock()
		localFail := taskErr != nil
		mu.Unlock()
		rank, aerr := agreePhase(rc, c, localFail, func() ([]byte, error) {
			if collected != len(tasks) {
				return nil, fmt.Errorf("collected %d of %d task results", collected, len(tasks))
			}
			return encodeResults(results), nil
		}, func(body []byte) error {
			if derr := decodeResultsInto(body, results); derr != nil {
				return derr
			}
			collected = len(tasks)
			return nil
		})
		agreedErrRank = rank
		return aerr
	})
	if rc.ctx.Err() != nil {
		return nil, &PhaseError{Stage: stage, Rank: -1, Err: context.Cause(rc.ctx)}
	}
	if err != nil {
		return nil, phaseError(stage, err)
	}
	if firstTaskErr != nil {
		return nil, firstTaskErr
	}
	if agreedErrRank >= 0 {
		return nil, &PhaseError{Stage: stage, Rank: agreedErrRank, Err: fmt.Errorf("task failed on rank %d", agreedErrRank)}
	}
	if collected != len(tasks) {
		return nil, &PhaseError{Stage: stage, Rank: -1, Err: fmt.Errorf("collected %d of %d task results", collected, len(tasks))}
	}

	rc.stats.Tasks = append(rc.stats.Tasks, measures...)
	rc.foldBalancer(perRank, balStats)
	rc.foldKernel(tctx.workers, kern)
	rc.wireMsgs += world.Stats().Messages.Load()
	rc.wireBytes += world.Stats().Bytes.Load()
	return results, nil
}

// wireRecovery arms the balancer's task re-queue path for multi-process
// runs: Assign mirrors the round-robin deal so the root knows every
// task's initial owner without a startup report, and Lookup
// re-materializes a task by ID when its owner dies. In-process worlds
// share fate across all ranks, so recovery stays off and the options
// carry no extra allocations.
func wireRecovery(opt *loadbal.Options, world *mpi.World, tasks []loadbal.Task, initial [][]loadbal.Task) {
	if !world.MultiProcess() {
		return
	}
	assign := make(map[int32]int, len(tasks))
	byID := make(map[int32]loadbal.Task, len(tasks))
	for r, share := range initial {
		for _, t := range share {
			assign[t.ID] = r
			byID[t.ID] = t
		}
	}
	opt.Assign = assign
	opt.Lookup = func(id int32) (loadbal.Task, bool) {
		t, ok := byID[id]
		return t, ok
	}
}

// agreePhase is the post-phase agreement of multi-process runs: every
// process must leave a distributed phase with the same verdict (which
// rank, if any, failed a task) and, on success, the same result set.
// The exchange is star-shaped — each worker sends its failure flag to
// the root and receives a combined verdict+results payload back — so it
// stays correct when survivors hold different views of the membership:
// every leg is a direct root<->worker exchange, and a leg to or from a
// dead rank fails fast with RankDeadError, which the root tolerates
// inline. Tree-shaped collectives would deadlock here when a process
// that has not yet observed a death waits on a parent that the
// better-informed root routed around.
//
// complete runs only on the root once no rank reported failure; it
// returns the encoded result payload. install runs on each worker with
// the root's result bytes. The returned rank is the agreed failing rank
// (-1 for a clean phase), identical on every surviving process.
func agreePhase(rc *RunCtx, c *mpi.Comm, localFail bool,
	complete func() ([]byte, error), install func([]byte) error) (int, error) {
	if c.Rank() != 0 {
		flag := -1.0
		if localFail {
			flag = float64(c.Rank())
		}
		if err := c.Send(0, tagErrSync, mpi.EncodeFloats([]float64{flag})); err != nil {
			return -1, err
		}
		buf, _, _, err := c.Recv(rc.ctx, 0, tagResultSync)
		if err != nil {
			return -1, err
		}
		if len(buf) < 8 {
			mpi.PutBytes(buf)
			return -1, fmt.Errorf("core: short agreement payload (%d bytes)", len(buf))
		}
		verdict := int(mpi.DecodeFloats(buf[:8])[0])
		if verdict >= 0 {
			mpi.PutBytes(buf)
			return verdict, nil
		}
		ierr := install(buf[8:])
		mpi.PutBytes(buf)
		return -1, ierr
	}

	// Root: collect the live workers' flags, tolerating deaths mid-phase
	// (a dead worker's flag simply never factors in; its tasks were
	// re-queued by the balancer, so the results are complete without it).
	fail := -1
	if localFail {
		fail = 0
	}
	for r := 1; r < c.Size(); r++ {
		if !c.Alive(r) {
			continue
		}
		buf, _, _, err := c.Recv(rc.ctx, r, tagErrSync)
		if err != nil {
			var de *mpi.RankDeadError
			if errors.As(err, &de) {
				continue
			}
			return -1, err
		}
		if len(buf) >= 8 {
			if v := int(mpi.DecodeFloats(buf[:8])[0]); v > fail {
				fail = v
			}
		}
		mpi.PutBytes(buf)
	}
	var body []byte
	var completeErr error
	if fail < 0 {
		body, completeErr = complete()
		if completeErr != nil {
			// Unblock the workers with a root-attributed failure verdict,
			// then surface the real error locally.
			fail = 0
			body = nil
		}
	}
	for r := 1; r < c.Size(); r++ {
		if !c.Alive(r) {
			continue
		}
		// Each worker gets its own payload copy: the fabric returns sent
		// buffers to the pool on delivery, so one shared slice across
		// sends would be a use-after-free.
		msg := mpi.GetBytes(8 + len(body))
		encodeFloatsTo(msg[:8], float64(fail))
		copy(msg[8:], body)
		if err := c.Send(r, tagResultSync, msg); err != nil {
			var de *mpi.RankDeadError
			if !errors.As(err, &de) {
				return -1, err
			}
		}
	}
	if completeErr != nil {
		return -1, completeErr
	}
	return fail, nil
}

// encodeFloatsTo writes one float64 into an 8-byte destination slot
// using the fabric's wire encoding.
func encodeFloatsTo(dst []byte, v float64) {
	copy(dst, mpi.EncodeFloats([]float64{v}))
}

// foldBalancer folds one distributed stage's per-rank execution summary
// and balancer counters into the run statistics: the raw records append
// to Stats.LoadBalance, the steal and idle totals accumulate into
// Stats.Steals, and the combined per-rank summary becomes the stage's
// StageStat.Ranks via rc.stageRanks. perRank arrives with Tasks/Busy
// already accumulated by the executor's callback.
func (rc *RunCtx) foldBalancer(perRank []RankStat, balStats []loadbal.Stats) {
	for r := range perRank {
		perRank[r].Rank = r
		perRank[r].Idle = balStats[r].IdleTime
		perRank[r].StealRequests = balStats[r].StealRequests
		perRank[r].StealsGranted = balStats[r].StealsGranted
		perRank[r].StealsGotten = balStats[r].StealsGotten
		rc.stats.Steals.Requests += balStats[r].StealRequests
		rc.stats.Steals.Granted += balStats[r].StealsGranted
		rc.stats.Steals.Gotten += balStats[r].StealsGotten
		rc.stats.Steals.Idle += balStats[r].IdleTime
		// Recovery counters are root-only in each phase's stats; summing
		// over ranks folds exactly the root's observations.
		rc.stats.Resilience.TasksRequeued += balStats[r].Requeued
		rc.stats.Resilience.RecoveryWall += balStats[r].RecoveryTime
	}
	rc.stats.LoadBalance = append(rc.stats.LoadBalance, balStats...)
	rc.stageRanks = perRank
}

// foldKernel folds one distributed stage's intra-rank insertion-engine
// counters into the run statistics, mirroring foldBalancer for the kernel
// axis of the parallelism. A nil kern (sequential kernel) records only the
// resolved worker count.
func (rc *RunCtx) foldKernel(workers int, kern *kernelCounters) {
	ks := &rc.stats.Kernel
	if workers > ks.Workers {
		ks.Workers = workers
	}
	if kern == nil {
		return
	}
	ks.Rounds += int(kern.rounds.Load())
	ks.Inserted += int(kern.inserted.Load())
	ks.Conflicts += int(kern.conflicts.Load())
	ks.Sequential += int(kern.sequential.Load())
}

func totalCost(tasks []loadbal.Task) float64 {
	var s float64
	for _, t := range tasks {
		s += t.Cost
	}
	return s
}
