package core

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"pamg2d/internal/blayer"
	"pamg2d/internal/decouple"
	"pamg2d/internal/delaunay"
	"pamg2d/internal/geom"
	"pamg2d/internal/mesh"
	"pamg2d/internal/pslg"
	"pamg2d/internal/sizing"
	"pamg2d/internal/trace"
)

// Result is the output of a pipeline run.
type Result struct {
	Mesh  *mesh.Mesh
	Stats Stats
}

// Generate runs the full push-button pipeline on cfg.Ranks simulated MPI
// ranks and returns the merged, audited mesh.
func Generate(cfg Config) (*Result, error) {
	return GenerateContext(context.Background(), cfg)
}

// GenerateContext is Generate with cancellation: when ctx is canceled or
// its deadline passes, the distributed phases tear their worlds down, the
// worker goroutines drain, and the call returns a *PhaseError naming the
// interrupted stage (wrapping the context's cause) instead of a mesh. All
// failures, not just cancellation, surface as *PhaseError values
// attributing the stage and — for worker-side failures — the rank.
//
// It is a thin wrapper over a throwaway Engine: the run borrows a
// single-use fabric and releases it on return. Long-lived callers that
// execute many runs (cmd/meshd, adaptation loops) should hold a shared
// Engine instead and call Engine.Run directly.
func GenerateContext(ctx context.Context, cfg Config) (*Result, error) {
	eng, err := NewEngine(EngineConfig{
		Ranks:          cfg.Ranks,
		Fabric:         cfg.Fabric,
		KernelPoolSize: cfg.KernelWorkers,
		Logger:         cfg.Logger,
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	return eng.Run(ctx, cfg)
}

// foldMetrics writes the run's summary statistics into the metrics
// registry: per-stage walls and allocations as gauges, tasks per rank and
// steal totals as counters, wire volume as gauges. The live histograms
// (task.seconds, loadbal.queue_cost) are recorded at the instrumentation
// sites; this fold adds everything derivable after the fact.
func foldMetrics(m *trace.Metrics, st *Stats) {
	if m == nil {
		return
	}
	var totalTasks int64
	for i := range st.Stages {
		s := &st.Stages[i]
		m.Gauge("stage."+s.Name+".wall_seconds", s.Wall.Seconds())
		m.Gauge("stage."+s.Name+".allocs", float64(s.Allocs))
		if s.Messages > 0 {
			m.Gauge("stage."+s.Name+".wire_bytes", float64(s.BytesOnWire))
		}
		for _, r := range s.Ranks {
			m.Count("tasks.rank."+strconv.Itoa(r.Rank), int64(r.Tasks))
			totalTasks += int64(r.Tasks)
		}
	}
	// tasks.total counts distributed task executions (audit jobs included),
	// so it always equals the sum of the tasks.rank.N counters.
	m.Count("tasks.total", totalTasks)
	if st.Kernel.Workers > 0 {
		m.Gauge("kernel.workers", float64(st.Kernel.Workers))
		m.Count("kernel.rounds", int64(st.Kernel.Rounds))
		m.Count("kernel.inserted", int64(st.Kernel.Inserted))
		m.Count("kernel.conflicts", int64(st.Kernel.Conflicts))
		m.Count("kernel.sequential", int64(st.Kernel.Sequential))
	}
	m.Count("steals.requests", int64(st.Steals.Requests))
	m.Count("steals.granted", int64(st.Steals.Granted))
	m.Count("steals.gotten", int64(st.Steals.Gotten))
	m.Gauge("steals.idle_seconds", st.Steals.Idle.Seconds())
	m.Gauge("wire.messages", float64(st.Messages))
	m.Gauge("wire.bytes", float64(st.BytesOnWire))
	m.Gauge("mesh.triangles", float64(st.TotalTriangles))
	if st.Resilience.RanksLost > 0 || st.Resilience.TasksRequeued > 0 {
		m.Count("fabric.rank_deaths", int64(st.Resilience.RanksLost))
		m.Count("fabric.tasks_requeued", int64(st.Resilience.TasksRequeued))
		m.Gauge("fabric.recovery_seconds", st.Resilience.RecoveryWall.Seconds())
	}
}

// graph resolves the configured geometry: the custom PSLG when set,
// otherwise the airfoil configuration.
func (cfg *Config) graph() (*pslg.Graph, error) {
	if cfg.CustomGraph != nil {
		if len(cfg.CustomGraph.Farfield.Points) < 3 {
			return nil, fmt.Errorf("core: custom PSLG needs a far-field loop")
		}
		if err := cfg.CustomGraph.Validate(); err != nil {
			return nil, err
		}
		return cfg.CustomGraph, nil
	}
	return cfg.Geometry.Graph()
}

// filterBoundaryLayer keeps the triangles of the merged boundary-layer
// Delaunay triangulation that belong to some element's layer annulus.
func filterBoundaryLayer(tris []float64, layers []*blayer.Layer, p blayer.Params) *mesh.Mesh {
	outers := make([]pslg.Loop, len(layers))
	for i, l := range layers {
		outers[i] = pslg.Loop{Points: l.OuterBorder(p)}
	}
	b := mesh.NewBuilder()
	for i := 0; i+5 < len(tris); i += 6 {
		a := geom.Pt(tris[i], tris[i+1])
		c := geom.Pt(tris[i+2], tris[i+3])
		d := geom.Pt(tris[i+4], tris[i+5])
		ctr := geom.Pt((a.X+c.X+d.X)/3, (a.Y+c.Y+d.Y)/3)
		keep := false
		for k := range layers {
			if outers[k].Contains(ctr) && !layers[k].Surface.Contains(ctr) {
				keep = true
				break
			}
		}
		if keep {
			b.AddTriangle(a, c, d)
		}
	}
	return b.Mesh()
}

// outerBoundary returns the boundary edges of the boundary-layer mesh that
// are not on a body surface, as point pairs.
func outerBoundary(m *mesh.Mesh, surfaceSet map[geom.Point]bool) ([]geom.Point, [][2]int32) {
	edges := m.BoundaryEdges()
	index := make(map[geom.Point]int32)
	var pts []geom.Point
	var segs [][2]int32
	intern := func(p geom.Point) int32 {
		if i, ok := index[p]; ok {
			return i
		}
		i := int32(len(pts))
		pts = append(pts, p)
		index[p] = i
		return i
	}
	for _, e := range edges {
		pa := m.Points[e[0]]
		pb := m.Points[e[1]]
		if surfaceSet[pa] && surfaceSet[pb] {
			continue // body surface edge
		}
		segs = append(segs, [2]int32{intern(pa), intern(pb)})
	}
	return pts, segs
}

// transitionInput assembles the CDT input for the region between the
// boundary layer's outer boundary and the near-body box border. The box
// border is discretized with the same march the decoupling quadrants use,
// so the two sides of the border agree exactly.
func transitionInput(g *pslg.Graph, outerPts []geom.Point, outerSegs [][2]int32, nbBox geom.BBox, size sizing.Func) (delaunay.Input, error) {
	in := delaunay.Input{}
	in.Points = append(in.Points, outerPts...)
	in.Segments = append(in.Segments, outerSegs...)

	// The near-body box border, marched exactly as InitialQuadrants marches
	// its inner border (MarchBorder is deterministic, so the two
	// discretizations agree point for point).
	nbc := [4]geom.Point{
		geom.Pt(nbBox.Min.X, nbBox.Min.Y), geom.Pt(nbBox.Max.X, nbBox.Min.Y),
		geom.Pt(nbBox.Max.X, nbBox.Max.Y), geom.Pt(nbBox.Min.X, nbBox.Max.Y),
	}
	borderFirst := int32(len(in.Points))
	for i := 0; i < 4; i++ {
		in.Points = append(in.Points, decouple.MarchBorder(nbc[i], nbc[(i+1)%4], size)...)
	}
	borderLast := int32(len(in.Points)) - 1
	for k := borderFirst; k < borderLast; k++ {
		in.Segments = append(in.Segments, [2]int32{k, k + 1})
	}
	in.Segments = append(in.Segments, [2]int32{borderLast, borderFirst})

	// Hole seeds: inside each body (the flood spreads across the whole
	// boundary-layer annulus, which carries no constraints in this CDT,
	// and stops at the outer-boundary segments).
	for i := range g.Surfaces {
		in.Holes = append(in.Holes, pslg.InteriorPointOf(&g.Surfaces[i]))
	}
	return in, nil
}

// sequentialBaselineQuality mirrors Triangle's quality switch used
// throughout the pipeline.
func qualityFor(size sizing.Func) delaunay.Quality {
	return delaunay.Quality{
		MaxRadiusEdgeRatio: math.Sqrt2,
		SizeAt:             size,
		NoSplitSegments:    true,
	}
}
