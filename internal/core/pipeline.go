package core

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"pamg2d/internal/blayer"
	"pamg2d/internal/decouple"
	"pamg2d/internal/delaunay"
	"pamg2d/internal/geom"
	"pamg2d/internal/mesh"
	"pamg2d/internal/pslg"
	"pamg2d/internal/sizing"
)

// Result is the output of a pipeline run.
type Result struct {
	Mesh  *mesh.Mesh
	Stats Stats
}

// mallocCount reads the cumulative heap allocation counter; deltas between
// phase boundaries feed Stats.Allocs.
func mallocCount() uint64 {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.Mallocs
}

// Generate runs the full push-button pipeline on cfg.Ranks simulated MPI
// ranks and returns the merged, audited mesh.
func Generate(cfg Config) (*Result, error) {
	start := time.Now()
	allocStart := mallocCount()
	if cfg.Ranks < 1 {
		cfg.Ranks = 1
	}
	if cfg.SubdomainsPerRank < 1 {
		cfg.SubdomainsPerRank = 4
	}
	if cfg.NearBodyMargin <= 0 {
		cfg.NearBodyMargin = 0.25
	}
	res := &Result{}

	// Phase 1: PSLG construction and validation.
	t0 := time.Now()
	a0 := allocStart
	g, err := cfg.graph()
	if err != nil {
		return nil, err
	}
	res.Stats.SurfacePoints = g.NumPoints() - len(g.Farfield.Points)
	res.Stats.Times.Validate = time.Since(t0)
	a1 := mallocCount()
	res.Stats.Allocs.Validate = a1 - a0

	// Geometry frames are needed before the parallel phases.
	ffBox := g.Farfield.BBox()

	// Phase 2: anisotropic boundary layer. Ray construction and
	// intersection resolution run at the root; point insertion along the
	// resolved rays is distributed across the ranks, with only the
	// coordinates gathered back (paper section II.C).
	t0 = time.Now()
	layers := blayer.GenerateRays(g, cfg.BL)
	if err := runRayInsertionPhase(cfg, layers, ffBox, &res.Stats); err != nil {
		return nil, err
	}
	var blPoints []geom.Point
	surfaceSet := make(map[geom.Point]bool)
	for _, l := range layers {
		res.Stats.BLLayerStats = append(res.Stats.BLLayerStats, l.Stats)
		blPoints = append(blPoints, l.AllPoints()...)
		for _, p := range l.Surface.Points {
			surfaceSet[p] = true
		}
	}
	res.Stats.BoundaryLayerPts = len(blPoints)
	res.Stats.Times.Boundary = time.Since(t0)
	a2 := mallocCount()
	res.Stats.Allocs.Boundary = a2 - a1
	var surfacePts []geom.Point
	for i := range g.Surfaces {
		surfacePts = append(surfacePts, g.Surfaces[i].Points...)
	}
	grad := sizing.NewGraded(surfacePts, cfg.SurfaceH0, cfg.Gradation, cfg.HMax)
	size := grad.Area
	if cfg.CustomSizing != nil {
		size = cfg.CustomSizing
	}

	blBox := geom.BBoxOf(blPoints)
	d := cfg.NearBodyMargin * (blBox.Width() + blBox.Height()) / 2
	nbBox := blBox.Inflate(d)
	if nbBox.Min.X <= ffBox.Min.X || nbBox.Max.X >= ffBox.Max.X ||
		nbBox.Min.Y <= ffBox.Min.Y || nbBox.Max.Y >= ffBox.Max.Y {
		return nil, fmt.Errorf("core: near-body box %v not inside the far field %v; increase FarfieldChords", nbBox, ffBox)
	}

	// Phase 3 (parallel): triangulate the boundary layer via the
	// projection-based decomposition.
	t0 = time.Now()
	blTris, err := runBoundaryLayerPhase(cfg, blPoints, ffBox, &res.Stats)
	if err != nil {
		return nil, err
	}
	res.Stats.Times.Decompose = time.Since(t0)
	a3 := mallocCount()
	res.Stats.Allocs.Decompose = a3 - a2

	// Filter the merged Delaunay triangulation down to the boundary-layer
	// annuli: keep a triangle when its centroid lies inside some element's
	// outer-border polygon but not inside the element surface itself.
	blMesh := filterBoundaryLayer(blTris, layers, cfg.BL)
	res.Stats.BLTriangles = blMesh.NumTriangles()

	// Extract the outer boundary of the boundary-layer mesh: boundary
	// edges whose endpoints are not both surface points.
	outerPts, outerSegs := outerBoundary(blMesh, surfaceSet)
	if len(outerSegs) == 0 {
		return nil, fmt.Errorf("core: boundary-layer mesh has no outer boundary")
	}

	// Phase 4+5 (parallel): transition region plus decoupled inviscid
	// subdomains under the load balancer.
	t0 = time.Now()
	transIn, err := transitionInput(g, outerPts, outerSegs, nbBox, size)
	if err != nil {
		return nil, err
	}
	quads, err := decouple.InitialQuadrants(nbBox, ffBox, size)
	if err != nil {
		return nil, err
	}
	regions := decouple.Decouple(quads[:], size, cfg.Ranks*cfg.SubdomainsPerRank)

	isoTris, transCount, invCount, err := runInviscidPhase(cfg, transIn, len(outerPts), regions, ffBox, size, &res.Stats)
	if err != nil {
		return nil, err
	}
	res.Stats.TransitionTris = transCount
	res.Stats.InviscidTris = invCount
	res.Stats.Times.Parallel = time.Since(t0)
	a4 := mallocCount()
	res.Stats.Allocs.Parallel = a4 - a3

	// Final merge.
	t0 = time.Now()
	b := mesh.NewBuilder()
	for _, tr := range blMesh.Triangles {
		b.AddTriangle(blMesh.Points[tr[0]], blMesh.Points[tr[1]], blMesh.Points[tr[2]])
	}
	for i := 0; i+5 < len(isoTris); i += 6 {
		b.AddTriangle(
			geom.Pt(isoTris[i], isoTris[i+1]),
			geom.Pt(isoTris[i+2], isoTris[i+3]),
			geom.Pt(isoTris[i+4], isoTris[i+5]),
		)
	}
	res.Mesh = b.Mesh()
	res.Stats.TotalTriangles = res.Mesh.NumTriangles()
	res.Stats.Times.Merge = time.Since(t0)
	res.Stats.Times.Total = time.Since(start)
	a5 := mallocCount()
	res.Stats.Allocs.Merge = a5 - a4
	res.Stats.Allocs.Total = a5 - allocStart

	if err := res.Mesh.Audit(); err != nil {
		return nil, fmt.Errorf("core: final mesh failed audit: %w", err)
	}
	return res, nil
}

// graph resolves the configured geometry: the custom PSLG when set,
// otherwise the airfoil configuration.
func (cfg *Config) graph() (*pslg.Graph, error) {
	if cfg.CustomGraph != nil {
		if len(cfg.CustomGraph.Farfield.Points) < 3 {
			return nil, fmt.Errorf("core: custom PSLG needs a far-field loop")
		}
		if err := cfg.CustomGraph.Validate(); err != nil {
			return nil, err
		}
		return cfg.CustomGraph, nil
	}
	return cfg.Geometry.Graph()
}

// filterBoundaryLayer keeps the triangles of the merged boundary-layer
// Delaunay triangulation that belong to some element's layer annulus.
func filterBoundaryLayer(tris []float64, layers []*blayer.Layer, p blayer.Params) *mesh.Mesh {
	outers := make([]pslg.Loop, len(layers))
	for i, l := range layers {
		outers[i] = pslg.Loop{Points: l.OuterBorder(p)}
	}
	b := mesh.NewBuilder()
	for i := 0; i+5 < len(tris); i += 6 {
		a := geom.Pt(tris[i], tris[i+1])
		c := geom.Pt(tris[i+2], tris[i+3])
		d := geom.Pt(tris[i+4], tris[i+5])
		ctr := geom.Pt((a.X+c.X+d.X)/3, (a.Y+c.Y+d.Y)/3)
		keep := false
		for k := range layers {
			if outers[k].Contains(ctr) && !layers[k].Surface.Contains(ctr) {
				keep = true
				break
			}
		}
		if keep {
			b.AddTriangle(a, c, d)
		}
	}
	return b.Mesh()
}

// outerBoundary returns the boundary edges of the boundary-layer mesh that
// are not on a body surface, as point pairs.
func outerBoundary(m *mesh.Mesh, surfaceSet map[geom.Point]bool) ([]geom.Point, [][2]int32) {
	edges := m.BoundaryEdges()
	index := make(map[geom.Point]int32)
	var pts []geom.Point
	var segs [][2]int32
	intern := func(p geom.Point) int32 {
		if i, ok := index[p]; ok {
			return i
		}
		i := int32(len(pts))
		pts = append(pts, p)
		index[p] = i
		return i
	}
	for _, e := range edges {
		pa := m.Points[e[0]]
		pb := m.Points[e[1]]
		if surfaceSet[pa] && surfaceSet[pb] {
			continue // body surface edge
		}
		segs = append(segs, [2]int32{intern(pa), intern(pb)})
	}
	return pts, segs
}

// transitionInput assembles the CDT input for the region between the
// boundary layer's outer boundary and the near-body box border. The box
// border is discretized with the same march the decoupling quadrants use,
// so the two sides of the border agree exactly.
func transitionInput(g *pslg.Graph, outerPts []geom.Point, outerSegs [][2]int32, nbBox geom.BBox, size sizing.Func) (delaunay.Input, error) {
	in := delaunay.Input{}
	in.Points = append(in.Points, outerPts...)
	in.Segments = append(in.Segments, outerSegs...)

	// The near-body box border, marched exactly as InitialQuadrants marches
	// its inner border (MarchBorder is deterministic, so the two
	// discretizations agree point for point).
	nbc := [4]geom.Point{
		geom.Pt(nbBox.Min.X, nbBox.Min.Y), geom.Pt(nbBox.Max.X, nbBox.Min.Y),
		geom.Pt(nbBox.Max.X, nbBox.Max.Y), geom.Pt(nbBox.Min.X, nbBox.Max.Y),
	}
	borderFirst := int32(len(in.Points))
	for i := 0; i < 4; i++ {
		in.Points = append(in.Points, decouple.MarchBorder(nbc[i], nbc[(i+1)%4], size)...)
	}
	borderLast := int32(len(in.Points)) - 1
	for k := borderFirst; k < borderLast; k++ {
		in.Segments = append(in.Segments, [2]int32{k, k + 1})
	}
	in.Segments = append(in.Segments, [2]int32{borderLast, borderFirst})

	// Hole seeds: inside each body (the flood spreads across the whole
	// boundary-layer annulus, which carries no constraints in this CDT,
	// and stops at the outer-boundary segments).
	for i := range g.Surfaces {
		in.Holes = append(in.Holes, pslg.InteriorPointOf(&g.Surfaces[i]))
	}
	return in, nil
}

// sequentialBaselineQuality mirrors Triangle's quality switch used
// throughout the pipeline.
func qualityFor(size sizing.Func) delaunay.Quality {
	return delaunay.Quality{
		MaxRadiusEdgeRatio: math.Sqrt2,
		SizeAt:             size,
		NoSplitSegments:    true,
	}
}
