package core

import (
	"math"
	"sort"

	"pamg2d/internal/adt"
	"pamg2d/internal/decouple"
	"pamg2d/internal/delaunay"
	"pamg2d/internal/geom"
	"pamg2d/internal/sizing"
)

// transitionSectors splits the transition annulus (between the boundary
// layer's outer boundary and the near-body box border) into angular
// sectors so the near-body region parallelizes like everything else. Each
// radial cut starts at an existing outer-boundary vertex and ends at an
// existing box-border point — shared borders are never re-discretized —
// with the interior of the cut marched by the decoupling k-rule. Sectors
// apply only when the outer boundary forms a single simple loop (a
// single-element configuration or fully merged layers); otherwise the
// caller falls back to one transition task. The bool result reports
// whether sector decomposition succeeded.
func transitionSectors(in delaunay.Input, nOuter int, size sizing.Func, sectors int) ([]delaunay.Input, bool) {
	if sectors < 2 {
		return nil, false
	}
	// The first nOuter points of the transition input are the outer
	// boundary; the rest are the box border ring, whose segments are the
	// trailing ones. Rebuild both rings.
	loop, ok := chainSingleLoop(in.Segments, nOuter)
	if !ok || len(loop) < 2*sectors {
		return nil, false
	}
	boxRing := make([]int32, 0, len(in.Points)-nOuter)
	for i := nOuter; i < len(in.Points); i++ {
		boxRing = append(boxRing, int32(i))
	}
	if len(boxRing) < 2*sectors {
		return nil, false
	}

	// Parametrize both rings by angle around the loop centroid.
	var cx, cy float64
	for _, vi := range loop {
		cx += in.Points[vi].X
		cy += in.Points[vi].Y
	}
	ctr := geom.Pt(cx/float64(len(loop)), cy/float64(len(loop)))
	angleOf := func(p geom.Point) float64 { return math.Atan2(p.Y-ctr.Y, p.X-ctr.X) }

	pick := func(ring []int32, theta float64) int {
		best, bestD := -1, math.Inf(1)
		for i, vi := range ring {
			d := math.Abs(angleDiff(angleOf(in.Points[vi]), theta))
			if d < bestD {
				bestD = d
				best = i
			}
		}
		return best
	}

	cuts := make([]cut, 0, sectors)
	usedLoop := map[int]bool{}
	usedBox := map[int]bool{}
	for j := 0; j < sectors; j++ {
		theta := -math.Pi + 2*math.Pi*float64(j)/float64(sectors)
		li := pick(loop, theta)
		bi := pick(boxRing, theta)
		if usedLoop[li] || usedBox[bi] {
			return nil, false // degenerate spacing; fall back
		}
		usedLoop[li] = true
		usedBox[bi] = true
		a := in.Points[loop[li]]
		b := in.Points[boxRing[bi]]
		m := decouple.MarchBorder(a, b, size)
		cuts = append(cuts, cut{loopIdx: li, boxIdx: bi, path: m[1:]})
	}
	// Cuts must appear in the same cyclic order on both rings.
	sort.Slice(cuts, func(i, j int) bool { return cuts[i].loopIdx < cuts[j].loopIdx })
	for i := 1; i < len(cuts); i++ {
		if cuts[i].boxIdx == cuts[i-1].boxIdx {
			return nil, false
		}
	}
	orderOK := true
	first := cuts[0].boxIdx
	prev := first
	for i := 1; i < len(cuts); i++ {
		cur := cuts[i].boxIdx
		if (cur-first+len(boxRing))%len(boxRing) < (prev-first+len(boxRing))%len(boxRing) {
			orderOK = false
			break
		}
		prev = cur
	}
	if !orderOK {
		return nil, false
	}

	// The cut paths must not intersect the outer boundary, the box ring,
	// or each other (away from shared endpoints); verify with an ADT over
	// every boundary segment.
	if !cutsAreClean(in, loop, boxRing, cuts) {
		return nil, false
	}

	// Assemble the sector inputs.
	var out []delaunay.Input
	for j := range cuts {
		next := (j + 1) % len(cuts)
		var pts []geom.Point
		add := func(p geom.Point) { pts = append(pts, p) }
		// Inner arc from cut j's loop vertex forward (in loop order) to
		// cut next's loop vertex.
		for i := cuts[j].loopIdx; ; i = (i + 1) % len(loop) {
			add(in.Points[loop[i]])
			if i == cuts[next].loopIdx {
				break
			}
		}
		// Outward along cut next.
		for _, p := range cuts[next].path {
			add(p)
		}
		// Box arc from cut next's box point backward to cut j's box point.
		// The loop runs CCW around the body and the box ring runs CCW as
		// well, so walking the box from next's point back to j's point
		// goes against the ring direction.
		for i := cuts[next].boxIdx; ; i = (i - 1 + len(boxRing)) % len(boxRing) {
			add(in.Points[boxRing[i]])
			if i == cuts[j].boxIdx {
				break
			}
		}
		// Inward along cut j.
		for i := len(cuts[j].path) - 1; i >= 0; i-- {
			add(cuts[j].path[i])
		}
		n := int32(len(pts))
		segs := make([][2]int32, n)
		for k := int32(0); k < n; k++ {
			segs[k] = [2]int32{k, (k + 1) % n}
		}
		out = append(out, delaunay.Input{Points: pts, Segments: segs})
	}
	return out, true
}

// angleDiff returns the wrapped difference a-b in (-pi, pi].
func angleDiff(a, b float64) float64 {
	d := a - b
	for d <= -math.Pi {
		d += 2 * math.Pi
	}
	for d > math.Pi {
		d -= 2 * math.Pi
	}
	return d
}

// chainSingleLoop chains the directed segments among the first nOuter
// points into loops and returns the vertex order when there is exactly one
// loop covering all outer points.
func chainSingleLoop(segs [][2]int32, nOuter int) ([]int32, bool) {
	next := make(map[int32]int32, nOuter)
	count := 0
	for _, s := range segs {
		if int(s[0]) < nOuter && int(s[1]) < nOuter {
			if _, dup := next[s[0]]; dup {
				return nil, false
			}
			next[s[0]] = s[1]
			count++
		}
	}
	if count != nOuter || count < 3 {
		return nil, false
	}
	loop := make([]int32, 0, nOuter)
	start := int32(-1)
	for v := range next {
		start = v
		break
	}
	v := start
	for {
		loop = append(loop, v)
		nv, ok := next[v]
		if !ok {
			return nil, false
		}
		v = nv
		if v == start {
			break
		}
		if len(loop) > nOuter {
			return nil, false
		}
	}
	if len(loop) != nOuter {
		return nil, false // more than one loop
	}
	return loop, true
}

// cut is one radial decoupling path of the transition annulus: it runs
// from an existing outer-boundary vertex to an existing box-border point,
// with marched interior points.
type cut struct {
	loopIdx, boxIdx int
	path            []geom.Point // marched interior points, inner -> outer
}

// segments returns the cut's full polyline as segments.
func (c *cut) segments(in delaunay.Input, loop, boxRing []int32) []geom.Segment {
	pts := make([]geom.Point, 0, len(c.path)+2)
	pts = append(pts, in.Points[loop[c.loopIdx]])
	pts = append(pts, c.path...)
	pts = append(pts, in.Points[boxRing[c.boxIdx]])
	segs := make([]geom.Segment, 0, len(pts)-1)
	for i := 0; i+1 < len(pts); i++ {
		segs = append(segs, geom.Segment{A: pts[i], B: pts[i+1]})
	}
	return segs
}

// cutsAreClean verifies that no cut path segment improperly intersects the
// rings or another cut: every intersection other than the shared ring
// endpoints disqualifies the sector decomposition. The check prunes with
// an alternating digital tree over the obstacle segments.
func cutsAreClean(in delaunay.Input, loop, boxRing []int32, cuts []cut) bool {
	var obstacles []geom.Segment
	for i := range loop {
		obstacles = append(obstacles, geom.Segment{
			A: in.Points[loop[i]],
			B: in.Points[loop[(i+1)%len(loop)]],
		})
	}
	for i := range boxRing {
		obstacles = append(obstacles, geom.Segment{
			A: in.Points[boxRing[i]],
			B: in.Points[boxRing[(i+1)%len(boxRing)]],
		})
	}
	var cutSegs []geom.Segment
	for i := range cuts {
		cutSegs = append(cutSegs, cuts[i].segments(in, loop, boxRing)...)
	}
	world := geom.EmptyBBox()
	for _, s := range obstacles {
		world = world.Union(s.BBox())
	}
	tree := adt.NewForBox(world)
	for i, s := range obstacles {
		tree.InsertBox(s.BBox(), i)
	}
	for _, cs := range cutSegs {
		bad := false
		tree.VisitOverlapping(cs.BBox(), func(oi int) bool {
			switch geom.SegmentsIntersect(cs, obstacles[oi]) {
			case geom.SegDisjoint:
				return true
			case geom.SegTouch:
				// Touching at the cut's own ring endpoints is expected.
				o := obstacles[oi]
				for _, e := range []geom.Point{cs.A, cs.B} {
					if e == o.A || e == o.B {
						return true
					}
				}
			}
			bad = true
			return false
		})
		if bad {
			return false
		}
	}
	// Cuts against each other: cuts share no endpoints, so any contact is
	// disqualifying. Brute force is fine at this scale.
	for i := 0; i < len(cuts); i++ {
		si := cuts[i].segments(in, loop, boxRing)
		for j := i + 1; j < len(cuts); j++ {
			for _, a := range si {
				for _, b := range cuts[j].segments(in, loop, boxRing) {
					if geom.SegmentsIntersect(a, b) != geom.SegDisjoint {
						return false
					}
				}
			}
		}
	}
	return true
}
