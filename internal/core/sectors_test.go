package core

import (
	"math"
	"testing"

	"pamg2d/internal/decouple"
	"pamg2d/internal/delaunay"
	"pamg2d/internal/geom"
	"pamg2d/internal/mpi"
	"pamg2d/internal/project"
	"pamg2d/internal/sizing"
)

func TestChainSingleLoop(t *testing.T) {
	// A 4-cycle among the first 4 points, in scrambled segment order.
	segs := [][2]int32{{2, 3}, {0, 1}, {3, 0}, {1, 2}, {4, 5}}
	loop, ok := chainSingleLoop(segs, 4)
	if !ok {
		t.Fatal("4-cycle must chain")
	}
	if len(loop) != 4 {
		t.Fatalf("loop = %v", loop)
	}
	// Follow the successor relation around.
	for i := 0; i < 4; i++ {
		want := (loop[i] + 1) % 4
		if loop[(i+1)%4] != want {
			t.Fatalf("loop order broken: %v", loop)
		}
	}
}

func TestChainSingleLoopRejectsTwoLoops(t *testing.T) {
	segs := [][2]int32{{0, 1}, {1, 0}, {2, 3}, {3, 2}}
	if _, ok := chainSingleLoop(segs, 4); ok {
		t.Error("two loops must be rejected")
	}
}

func TestChainSingleLoopRejectsOpenChain(t *testing.T) {
	segs := [][2]int32{{0, 1}, {1, 2}}
	if _, ok := chainSingleLoop(segs, 3); ok {
		t.Error("open chain must be rejected")
	}
}

func TestChainSingleLoopRejectsDuplicateStart(t *testing.T) {
	segs := [][2]int32{{0, 1}, {0, 2}, {1, 2}}
	if _, ok := chainSingleLoop(segs, 3); ok {
		t.Error("vertex starting two segments must be rejected")
	}
}

func TestAngleDiff(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0},
		{math.Pi / 2, 0, math.Pi / 2},
		{-math.Pi + 0.1, math.Pi - 0.1, 0.2},
		{math.Pi - 0.1, -math.Pi + 0.1, -0.2},
	}
	for _, c := range cases {
		if got := angleDiff(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("angleDiff(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestTransitionSectorsOnRing(t *testing.T) {
	// Synthetic annulus: inner ring of 64 points (the "outer boundary"),
	// box ring of marched points. Sector decomposition must succeed and
	// tile the annulus.
	var in delaunay.Input
	nInner := 64
	for i := 0; i < nInner; i++ {
		th := 2 * math.Pi * float64(i) / float64(nInner)
		in.Points = append(in.Points, geom.Pt(math.Cos(th), math.Sin(th)))
	}
	for i := 0; i < nInner; i++ {
		in.Segments = append(in.Segments, [2]int32{int32(i), int32((i + 1) % nInner)})
	}
	// Box ring.
	size := sizing.Uniform(0.05)
	nbBox := geom.BBox{Min: geom.Pt(-3, -3), Max: geom.Pt(3, 3)}
	nbc := [4]geom.Point{
		geom.Pt(nbBox.Min.X, nbBox.Min.Y), geom.Pt(nbBox.Max.X, nbBox.Min.Y),
		geom.Pt(nbBox.Max.X, nbBox.Max.Y), geom.Pt(nbBox.Min.X, nbBox.Max.Y),
	}
	first := int32(len(in.Points))
	for i := 0; i < 4; i++ {
		in.Points = append(in.Points, decouple.MarchBorder(nbc[i], nbc[(i+1)%4], size)...)
	}
	last := int32(len(in.Points)) - 1
	for k := first; k < last; k++ {
		in.Segments = append(in.Segments, [2]int32{k, k + 1})
	}
	in.Segments = append(in.Segments, [2]int32{last, first})

	sectors, ok := transitionSectors(in, nInner, size, 8)
	if !ok {
		t.Fatal("sector decomposition must succeed on a clean annulus")
	}
	if len(sectors) != 8 {
		t.Fatalf("sectors = %d", len(sectors))
	}
	// Refine every sector and verify the union area equals the annulus.
	var area float64
	for si, sec := range sectors {
		res, err := delaunay.TriangulateRefined(sec, qualityFor(size))
		if err != nil {
			t.Fatalf("sector %d: %v", si, err)
		}
		for _, tri := range res.Triangles {
			area += math.Abs(geom.TriangleArea(res.Points[tri[0]], res.Points[tri[1]], res.Points[tri[2]]))
		}
	}
	// Annulus area: 6x6 box minus the polygonal disk (area of regular
	// 64-gon with circumradius 1).
	poly := float64(nInner) / 2 * math.Sin(2*math.Pi/float64(nInner))
	want := 36 - poly
	if math.Abs(area-want) > 1e-6*want {
		t.Errorf("sector union area %v, want %v", area, want)
	}
}

func TestTransitionSectorsFallsBackOnTwoLoops(t *testing.T) {
	var in delaunay.Input
	// Two separate inner triangles: multi-element outer boundary.
	in.Points = []geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1),
		geom.Pt(3, 0), geom.Pt(4, 0), geom.Pt(3, 1),
	}
	in.Segments = [][2]int32{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}}
	if _, ok := transitionSectors(in, 6, sizing.Uniform(0.1), 4); ok {
		t.Error("two inner loops must fall back")
	}
}

func TestTaskCodecRoundTrips(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0.5, 1)}
	segs := [][2]int32{{0, 1}, {1, 2}, {2, 0}}
	holes := []geom.Point{geom.Pt(0.5, 0.3)}
	vals := regionTaskVals(kindInviscid, pts, segs, holes)
	if int(vals[0]) != kindInviscid || int(vals[1]) != 3 || int(vals[2]) != 3 || int(vals[3]) != 1 {
		t.Fatalf("header built as %v", vals[:4])
	}
	// The vals vector must survive a serialize/deserialize round trip
	// bit-for-bit — that is the wire format a distributed run would use.
	decoded := mpi.DecodeFloats(mpi.EncodeFloats(vals))
	if len(decoded) != len(vals) {
		t.Fatalf("round trip length %d, want %d", len(decoded), len(vals))
	}
	for i := range vals {
		if decoded[i] != vals[i] {
			t.Fatalf("round trip slot %d: %v != %v", i, decoded[i], vals[i])
		}
	}
	// Processing the task yields one triangle... the hole removes it,
	// so use no holes for the positive check.
	vals = regionTaskVals(kindInviscid, pts, segs, nil)
	tris, err := processTask(vals, geom.BBox{Min: geom.Pt(-1, -1), Max: geom.Pt(2, 2)}, sizing.Uniform(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != 6 {
		t.Fatalf("processed %d floats, want 6 (one triangle)", len(tris))
	}
}

func TestProcessTaskErrors(t *testing.T) {
	if _, err := processTask(nil, geom.BBox{}, nil); err == nil {
		t.Error("empty payload must fail")
	}
	bad := regionTaskVals(99, nil, nil, nil)
	if _, err := processTask(bad, geom.BBox{}, nil); err == nil {
		t.Error("unknown kind must fail")
	}
}

func TestBLLeafPayloadUsesOnlyXSorted(t *testing.T) {
	// The paper ships only the x-sorted vertices of a sufficiently
	// decomposed subdomain (the y-sorted copy is dropped); the payload size
	// must reflect exactly one copy of the points plus the region header.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1), geom.Pt(1, 1), geom.Pt(0.5, 0.5)}
	leaf := project.New(pts)
	leaf.DropYSorted()
	vals := blLeafVals(leaf)
	wantFloats := 5 + 2*len(pts) // kind + 4 region bounds + coordinates
	if len(vals) != wantFloats {
		t.Errorf("task vector = %d floats, want %d (one copy of the coordinates)", len(vals), wantFloats)
	}
	if cap(vals) != wantFloats {
		t.Errorf("task vector capacity = %d, want exactly %d (no over-allocation)", cap(vals), wantFloats)
	}
}
