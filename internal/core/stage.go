package core

// The stage-graph engine. The pipeline's phases are first-class Stage
// values executed in sequence by runStages, which owns all per-stage
// instrumentation (wall time, heap allocation delta, wire traffic) through
// the single recordStage hook — stages themselves contain no bookkeeping.
// A context.Context threads through every stage; cancellation between or
// during stages surfaces as a *PhaseError naming the interrupted stage,
// and a worker-rank failure inside a distributed stage is attributed to
// its rank. This is the seam future work plugs into: async/overlapped
// stages and alternative transports slot in as Stage implementations
// without touching Generate.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"pamg2d/internal/blayer"
	"pamg2d/internal/geom"
	"pamg2d/internal/loadbal"
	"pamg2d/internal/mesh"
	"pamg2d/internal/mpi"
	"pamg2d/internal/pslg"
	"pamg2d/internal/sizing"
	"pamg2d/internal/trace"
)

// Stage names, in pipeline order. They key the StageStat records and the
// Stage/PhaseError attribution.
const (
	StageValidate        = "validate"
	StageRays            = "boundary-rays"
	StageRayInsertion    = "ray-insertion"
	StageBLTriangulation = "bl-triangulation"
	StageInviscid        = "inviscid"
	StageMerge           = "merge"
	// StageAudit is the optional seventh stage (Config.Audit): post-merge
	// invariant verification over the internal/audit check registry. Its
	// per-check measurements are recorded as additional "audit/<check>"
	// StageStat entries ahead of the engine's own "audit" summary entry.
	StageAudit = "audit"
)

// Stage is one pipeline phase: a named unit of work over the shared run
// state. Stages are stateless values; all mutable state lives in the
// RunCtx, so the same stage list serves every Generate call.
type Stage interface {
	Name() string
	Run(rc *RunCtx) error
}

// StageStat is one stage's execution record, written by the engine's stats
// hook: wall time, heap allocation delta, and the messages/bytes its
// distributed execution put on the (simulated) wire.
//
// Wire-attribution convention: a stage's Messages/BytesOnWire are carried
// by its summary entry alone — the entry whose Name is the plain stage
// name. Sub-entries, whose Name contains a '/' (the audit stage's
// per-check "audit/<check>" records), report Wall and Allocs only and
// always leave the wire counters zero, because the underlying traffic
// (job fan-out, result returns, steal transfers) is shared across checks
// and cannot be attributed to one of them without double counting.
// Summing Messages over Stats.Stages therefore equals Stats.Messages
// exactly, with or without sub-entries present.
type StageStat struct {
	Name        string
	Wall        time.Duration
	Allocs      uint64
	Messages    int64
	BytesOnWire int64
	// Ranks is the per-rank execution summary of a distributed stage,
	// folded from the task measurements and the balancer's counters; nil
	// for root-side stages and sub-entries. Index order is rank order.
	Ranks []RankStat
}

// RankStat summarizes one rank's part in a distributed stage: how many
// tasks it executed, how long it computed (Busy) versus waited for work
// (Idle), and its share of the steal traffic. Busy is summed task
// execution time, so max(Busy) across ranks approximates the stage's
// critical path and mean/max Busy is the load-balance ratio.
type RankStat struct {
	Rank          int
	Tasks         int
	Busy          time.Duration
	Idle          time.Duration
	StealRequests int
	StealsGranted int
	StealsGotten  int
}

// RankWall returns the min/max/mean per-rank busy wall of a distributed
// stage's Ranks summary; zeros when the stage recorded no rank data.
func (s *StageStat) RankWall() (min, max, mean time.Duration) {
	if len(s.Ranks) == 0 {
		return 0, 0, 0
	}
	var sum time.Duration
	min = s.Ranks[0].Busy
	for _, r := range s.Ranks {
		if r.Busy < min {
			min = r.Busy
		}
		if r.Busy > max {
			max = r.Busy
		}
		sum += r.Busy
	}
	return min, max, sum / time.Duration(len(s.Ranks))
}

// PhaseError attributes a pipeline failure to the stage it occurred in
// and, for failures inside a distributed phase, the rank it occurred on
// (Rank is -1 when the failure is not rank-attributable, e.g. root-side
// preparation or cancellation). It wraps the underlying cause, so
// errors.Is(err, context.Canceled) and friends see through it.
type PhaseError struct {
	Stage string
	Rank  int
	Err   error
}

func (e *PhaseError) Error() string {
	if e.Rank >= 0 {
		return fmt.Sprintf("core: stage %s: rank %d: %v", e.Stage, e.Rank, e.Err)
	}
	return fmt.Sprintf("core: stage %s: %v", e.Stage, e.Err)
}

func (e *PhaseError) Unwrap() error { return e.Err }

// phaseError wraps err with the stage name, pulling the rank out of an
// mpi.RankError when the failure is rank-attributed. An error that is
// already a *PhaseError passes through unchanged.
func phaseError(stage string, err error) *PhaseError {
	var pe *PhaseError
	if errors.As(err, &pe) {
		return pe
	}
	var re *mpi.RankError
	if errors.As(err, &re) {
		return &PhaseError{Stage: stage, Rank: re.Rank, Err: re.Err}
	}
	return &PhaseError{Stage: stage, Rank: -1, Err: err}
}

// RunCtx is the shared state of one pipeline run: the context and config
// in, the stats and result out, and the intermediate products each stage
// leaves for its successors.
type RunCtx struct {
	ctx    context.Context
	cfg    Config
	stats  *Stats
	res    *Result
	tracer *trace.Tracer // nil when tracing is off
	eng    *Engine       // owning engine; nil for directly-constructed test runs

	// Intermediate pipeline state, in production order.
	g          *pslg.Graph     // validate
	ffBox      geom.BBox       // validate: far-field frame
	layers     []*blayer.Layer // boundary-rays
	blPoints   []geom.Point    // ray-insertion
	surfaceSet map[geom.Point]bool
	blMesh     *mesh.Mesh   // bl-triangulation
	size       sizing.Func  // bl-triangulation
	nbBox      geom.BBox    // bl-triangulation: near-body box
	outerPts   []geom.Point // bl-triangulation: BL outer boundary
	outerSegs  [][2]int32
	isoTris    []float64 // inviscid: transition + inviscid triangles
	// pathEdges are the constrained/decoupling edges of the final mesh
	// (BL outer boundary, near-body box border, sector cuts, decoupled
	// region borders) as exact endpoint pairs; collected by the inviscid
	// stage only when cfg.Audit, for the audit stage's Snapshot.
	pathEdges [][2]geom.Point

	// Wire counters for the stage in flight, reset by the engine around
	// each stage and folded into the stats by recordStage.
	wireMsgs  int64
	wireBytes int64
	// stageRanks is the per-rank summary of the distributed stage in
	// flight, reset with the wire counters and folded into the StageStat.
	stageRanks []RankStat
}

// Context returns the run's cancellation context.
func (rc *RunCtx) Context() context.Context { return rc.ctx }

// newWorld mints the world a distributed stage runs on: from the
// configured fabric when one is attached (each process hosts its own
// rank; worlds pair across processes by creation order, which is why
// every process must run the identical stage sequence), otherwise the
// classic in-process world.
func (rc *RunCtx) newWorld() *mpi.World {
	if rc.cfg.Fabric != nil {
		return rc.cfg.Fabric.NewWorld()
	}
	return mpi.NewWorld(rc.cfg.Ranks)
}

// mallocCount reads the cumulative heap allocation counter; deltas between
// stage boundaries feed the StageStat records.
func mallocCount() uint64 {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.Mallocs
}

// runStages executes the stage list in order. It is the only place in the
// pipeline that measures anything: each stage's wall time, allocation
// delta and wire traffic pass through the recordStage hook, and every
// failure leaves as a *PhaseError naming the stage. The context is checked
// before each stage so cancellation between stages costs nothing.
func (rc *RunCtx) runStages(stages []Stage) error {
	start := time.Now()
	allocStart := mallocCount()
	for _, s := range stages {
		if rc.ctx.Err() != nil {
			return &PhaseError{Stage: s.Name(), Rank: -1, Err: context.Cause(rc.ctx)}
		}
		t0 := time.Now()
		a0 := mallocCount()
		rc.wireMsgs, rc.wireBytes = 0, 0
		rc.stageRanks = nil
		sp := rc.tracer.Begin(trace.RootRank, trace.CatStage, s.Name())
		err := s.Run(rc)
		sp.End()
		rc.stats.recordStage(StageStat{
			Name:        s.Name(),
			Wall:        time.Since(t0),
			Allocs:      mallocCount() - a0,
			Messages:    rc.wireMsgs,
			BytesOnWire: rc.wireBytes,
			Ranks:       rc.stageRanks,
		})
		if err != nil {
			return phaseError(s.Name(), err)
		}
	}
	rc.stats.Times.Total = time.Since(start)
	rc.stats.Allocs.Total = mallocCount() - allocStart
	return nil
}

// recordStage is the engine's single stats hook: every stage's measurement
// lands here, both in the ordered Stages list and in the legacy per-phase
// aggregates the performance model and CLI reports read (the two
// boundary-layer stages sum into the Boundary bucket).
func (st *Stats) recordStage(s StageStat) {
	st.Stages = append(st.Stages, s)
	st.Messages += s.Messages
	st.BytesOnWire += s.BytesOnWire
	switch s.Name {
	case StageValidate:
		st.Times.Validate += s.Wall
		st.Allocs.Validate += s.Allocs
	case StageRays, StageRayInsertion:
		st.Times.Boundary += s.Wall
		st.Allocs.Boundary += s.Allocs
	case StageBLTriangulation:
		st.Times.Decompose += s.Wall
		st.Allocs.Decompose += s.Allocs
	case StageInviscid:
		st.Times.Parallel += s.Wall
		st.Allocs.Parallel += s.Allocs
	case StageMerge:
		st.Times.Merge += s.Wall
		st.Allocs.Merge += s.Allocs
	case StageAudit:
		// The per-check "audit/<check>" entries deliberately fall through to
		// no bucket: only the stage summary feeds the aggregate, so the
		// bucket is not double-counted.
		st.Times.Audit += s.Wall
		st.Allocs.Audit += s.Allocs
	}
}

// stageFunc adapts a plain function to the Stage interface for the
// root-side (non-distributed) phases.
type stageFunc struct {
	name string
	fn   func(*RunCtx) error
}

func (s stageFunc) Name() string         { return s.name }
func (s stageFunc) Run(rc *RunCtx) error { return s.fn(rc) }

// mergeFunc folds the collected per-task results (indexed by task ID) into
// the run state at the root.
type mergeFunc func(results [][]float64) error

// prepareFunc builds a distributed stage's task list and shared task
// context and returns the merge that will fold the results. Splitting
// preparation (encoding) from merging is what lets one generic executor —
// runDistributed — serve all three distributed phases.
type prepareFunc func(rc *RunCtx) (tasks []loadbal.Task, tctx taskCtx, merge mergeFunc, err error)

// distStage is a distributed phase: prepare encodes the tasks, the shared
// runDistributed executor runs them under the load balancer, merge folds
// the results back into the run state.
type distStage struct {
	name    string
	prepare prepareFunc
}

func (s *distStage) Name() string { return s.name }

func (s *distStage) Run(rc *RunCtx) error {
	tasks, tctx, merge, err := s.prepare(rc)
	if err != nil {
		return err
	}
	results, err := runDistributed(rc, s.name, tasks, tctx)
	if err != nil {
		return err
	}
	return merge(results)
}
