package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"pamg2d/internal/mpi"
)

// TestStageOrder locks in the stage graph: a full run records exactly the
// six pipeline stages, in order, with wall time measured for each.
func TestStageOrder(t *testing.T) {
	res, err := Generate(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{StageValidate, StageRays, StageRayInsertion,
		StageBLTriangulation, StageInviscid, StageMerge}
	if len(res.Stats.Stages) != len(want) {
		t.Fatalf("recorded %d stages, want %d: %+v", len(res.Stats.Stages), len(want), res.Stats.Stages)
	}
	for i, s := range res.Stats.Stages {
		if s.Name != want[i] {
			t.Errorf("stage %d is %q, want %q", i, s.Name, want[i])
		}
		if s.Wall < 0 {
			t.Errorf("stage %q has negative wall time", s.Name)
		}
	}
	// The distributed stages are the only ones that talk on the wire.
	for _, s := range res.Stats.Stages {
		wired := s.Name == StageRayInsertion || s.Name == StageBLTriangulation || s.Name == StageInviscid
		if wired && s.Messages == 0 {
			t.Errorf("distributed stage %q recorded no messages", s.Name)
		}
		if !wired && s.Messages != 0 {
			t.Errorf("root-side stage %q recorded %d messages", s.Name, s.Messages)
		}
	}
}

// cancelDuring runs the pipeline with a context that is canceled by the
// first task of the named stage and returns the resulting error.
func cancelDuring(t *testing.T, stage string) error {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := smallConfig(2)
	cfg.TaskHook = func(s string, kind int) error {
		if s == stage {
			cancel()
		}
		return nil
	}
	_, err := GenerateContext(ctx, cfg)
	return err
}

func testCancelMidStage(t *testing.T, stage string) {
	t.Helper()
	g0, p0 := mpi.PoolCounters()
	err := cancelDuring(t, stage)
	if err == nil {
		t.Fatalf("canceling during %s did not fail the run", stage)
	}
	var pe *PhaseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T (%v), want *PhaseError", err, err)
	}
	if pe.Stage != stage {
		t.Errorf("PhaseError.Stage = %q, want %q", pe.Stage, stage)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not wrap context.Canceled: %v", err)
	}
	g1, p1 := mpi.PoolCounters()
	if gets, puts := g1-g0, p1-p0; gets != puts {
		t.Errorf("pooled buffers leaked across cancellation: %d gets, %d puts", gets, puts)
	}
}

func TestCancelDuringRayInsertion(t *testing.T) {
	testCancelMidStage(t, StageRayInsertion)
}

func TestCancelDuringInviscid(t *testing.T) {
	testCancelMidStage(t, StageInviscid)
}

// TestCancelBeforeFirstStage covers the between-stage check: an already
// canceled context fails on the first stage without running anything.
func TestCancelBeforeFirstStage(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := GenerateContext(ctx, smallConfig(1))
	var pe *PhaseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T (%v), want *PhaseError", err, err)
	}
	if pe.Stage != StageValidate {
		t.Errorf("PhaseError.Stage = %q, want %q", pe.Stage, StageValidate)
	}
	if pe.Rank != -1 {
		t.Errorf("cancellation before any rank ran has Rank = %d, want -1", pe.Rank)
	}
}

// TestTaskFailureAttribution injects a task failure in the inviscid phase
// and checks the PhaseError names the stage and the executing rank.
func TestTaskFailureAttribution(t *testing.T) {
	boom := errors.New("injected task failure")
	cfg := smallConfig(3)
	cfg.TaskHook = func(stage string, kind int) error {
		if stage == StageInviscid && kind == kindInviscid {
			return boom
		}
		return nil
	}
	_, err := Generate(cfg)
	if err == nil {
		t.Fatal("injected task failure did not fail the run")
	}
	var pe *PhaseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T (%v), want *PhaseError", err, err)
	}
	if pe.Stage != StageInviscid {
		t.Errorf("PhaseError.Stage = %q, want %q", pe.Stage, StageInviscid)
	}
	if pe.Rank < 0 || pe.Rank >= cfg.Ranks {
		t.Errorf("PhaseError.Rank = %d, want a rank in [0, %d)", pe.Rank, cfg.Ranks)
	}
	if !errors.Is(err, boom) {
		t.Errorf("error does not wrap the injected failure: %v", err)
	}
}

// TestCancelLeavesNoGoroutines drives a mid-stage cancellation and polls
// the goroutine count back to its pre-run level: every balancer and rank
// goroutine must drain.
func TestCancelLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		if err := cancelDuring(t, StageInviscid); err == nil {
			t.Fatal("cancellation did not fail the run")
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after canceled runs", before, runtime.NumGoroutine())
}

// TestGenerateTimeout exercises the deadline path end to end.
func TestGenerateTimeout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	_, err := GenerateContext(ctx, smallConfig(1))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out run returned %v, want DeadlineExceeded", err)
	}
	var pe *PhaseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, want *PhaseError", err)
	}
}
