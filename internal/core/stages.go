package core

// The pipeline's stages. Root-side phases are stageFunc values; the three
// distributed phases are distStage values whose prepare functions encode
// the tasks and return the merge that folds the results back into the run
// state. All of them read and write only the RunCtx.

import (
	"fmt"

	"pamg2d/internal/blayer"
	"pamg2d/internal/decouple"
	"pamg2d/internal/delaunay"
	"pamg2d/internal/geom"
	"pamg2d/internal/loadbal"
	"pamg2d/internal/mesh"
	"pamg2d/internal/project"
	"pamg2d/internal/sizing"
)

// pipeline is the push-button stage graph, in execution order. Stages are
// stateless, so one shared list serves every run.
var pipeline = []Stage{
	stageFunc{StageValidate, runValidate},
	stageFunc{StageRays, runRays},
	&distStage{StageRayInsertion, prepareRayInsertion},
	&distStage{StageBLTriangulation, prepareBLTriangulation},
	&distStage{StageInviscid, prepareInviscid},
	stageFunc{StageMerge, runMerge},
}

// runValidate builds and validates the PSLG (phase 1).
func runValidate(rc *RunCtx) error {
	g, err := rc.cfg.graph()
	if err != nil {
		return err
	}
	rc.g = g
	rc.ffBox = g.Farfield.BBox()
	rc.stats.SurfacePoints = g.NumPoints() - len(g.Farfield.Points)
	return nil
}

// runRays constructs and resolves the boundary-layer rays at the root
// (phase 2a); point insertion along them is the next, distributed, stage.
func runRays(rc *RunCtx) error {
	rc.layers = blayer.GenerateRays(rc.g, rc.cfg.BL)
	return nil
}

// prepareRayInsertion distributes boundary-layer point insertion across
// the ranks: rays are independent once trimmed, so batches of rays are
// balanced like any other task and only the coordinates return to the
// root (the paper's section II.C communication argument). The merge
// reassembles each layer's per-ray point lists and gathers the
// boundary-layer point set for the stages downstream.
func prepareRayInsertion(rc *RunCtx) ([]loadbal.Task, taskCtx, mergeFunc, error) {
	type batchRef struct {
		layer    int
		from, to int
		counts   []int
	}
	cfg := rc.cfg
	layers := rc.layers
	var tasks []loadbal.Task
	var refs []batchRef
	batchSize := 64
	for li, l := range layers {
		counts := blayer.PlanCounts(l, cfg.BL)
		for from := 0; from < len(l.Rays); from += batchSize {
			to := from + batchSize
			if to > len(l.Rays) {
				to = len(l.Rays)
			}
			vals := make([]float64, 0, 2+10*(to-from))
			vals = append(vals, kindRayBatch, float64(to-from))
			cost := 0.0
			for i := from; i < to; i++ {
				r := l.Rays[i]
				fan := 0.0
				if r.Fan {
					fan = 1
				}
				vals = append(vals, r.Origin.X, r.Origin.Y, r.Dir.X, r.Dir.Y,
					r.MaxLen, r.Tangential, fan, r.FanBisector.X, r.FanBisector.Y,
					float64(counts[i]))
				cost += float64(counts[i])
			}
			tasks = append(tasks, loadbal.Task{
				ID:            int32(len(tasks)),
				Cost:          cost + 1,
				BoundaryLayer: true,
				Vals:          vals,
			})
			refs = append(refs, batchRef{layer: li, from: from, to: to, counts: counts[from:to]})
		}
	}
	merge := func(results [][]float64) error {
		// Reassemble each layer's per-ray point lists from the gathered
		// coordinates.
		perLayer := make([][][]geom.Point, len(layers))
		for li, l := range layers {
			perLayer[li] = make([][]geom.Point, len(l.Rays))
		}
		for ti, ref := range refs {
			vals := results[ti]
			off := 0
			for i := ref.from; i < ref.to; i++ {
				n := ref.counts[i-ref.from]
				pts := make([]geom.Point, 0, n)
				for k := 0; k < n; k++ {
					pts = append(pts, geom.Pt(vals[off], vals[off+1]))
					off += 2
				}
				perLayer[ref.layer][i] = pts
			}
			if off != len(vals) {
				return fmt.Errorf("core: ray batch %d returned %d floats, consumed %d", ti, len(vals), off)
			}
		}
		for li, l := range layers {
			l.SetPoints(perLayer[li])
		}
		// Collect the inserted points and the surface point set the
		// filtering and outer-boundary extraction need downstream.
		var blPoints []geom.Point
		surfaceSet := make(map[geom.Point]bool)
		for _, l := range layers {
			rc.stats.BLLayerStats = append(rc.stats.BLLayerStats, l.Stats)
			blPoints = append(blPoints, l.AllPoints()...)
			for _, p := range l.Surface.Points {
				surfaceSet[p] = true
			}
		}
		rc.blPoints = blPoints
		rc.surfaceSet = surfaceSet
		rc.stats.BoundaryLayerPts = len(blPoints)
		return nil
	}
	return tasks, taskCtx{frame: rc.ffBox, bl: cfg.BL}, merge, nil
}

// prepareBLTriangulation resolves the sizing function and the near-body
// box, then decomposes the boundary-layer points with the projection-based
// decomposition and triangulates the leaves in parallel (paper Figure 8).
// The merge filters the triangles down to the layer annuli and extracts
// the mesh's outer boundary for the transition region.
func prepareBLTriangulation(rc *RunCtx) ([]loadbal.Task, taskCtx, mergeFunc, error) {
	cfg := rc.cfg
	var surfacePts []geom.Point
	for i := range rc.g.Surfaces {
		surfacePts = append(surfacePts, rc.g.Surfaces[i].Points...)
	}
	grad := sizing.NewGraded(surfacePts, cfg.SurfaceH0, cfg.Gradation, cfg.HMax)
	rc.size = grad.Area
	if cfg.CustomSizing != nil {
		rc.size = cfg.CustomSizing
	}

	blBox := geom.BBoxOf(rc.blPoints)
	d := cfg.NearBodyMargin * (blBox.Width() + blBox.Height()) / 2
	nbBox := blBox.Inflate(d)
	if nbBox.Min.X <= rc.ffBox.Min.X || nbBox.Max.X >= rc.ffBox.Max.X ||
		nbBox.Min.Y <= rc.ffBox.Min.Y || nbBox.Max.Y >= rc.ffBox.Max.Y {
		return nil, taskCtx{}, nil, fmt.Errorf("core: near-body box %v not inside the far field %v; increase FarfieldChords", nbBox, rc.ffBox)
	}
	rc.nbBox = nbBox

	root := project.New(rc.blPoints)
	depth := 1
	for 1<<depth < cfg.Ranks*cfg.SubdomainsPerRank {
		depth++
	}
	leaves, _ := project.Decompose(root, project.Options{MinVerts: 16, MaxDepth: depth})
	tasks := make([]loadbal.Task, len(leaves))
	for i, leaf := range leaves {
		leaf.DropYSorted()
		tasks[i] = loadbal.Task{
			ID:            int32(i),
			Cost:          float64(leaf.Len()),
			BoundaryLayer: true,
			Vals:          blLeafVals(leaf),
		}
	}
	merge := func(results [][]float64) error {
		var tris []float64
		for _, r := range results {
			tris = append(tris, r...)
		}
		// Filter the merged Delaunay triangulation down to the
		// boundary-layer annuli: keep a triangle when its centroid lies
		// inside some element's outer-border polygon but not inside the
		// element surface itself.
		rc.blMesh = filterBoundaryLayer(tris, rc.layers, cfg.BL)
		rc.stats.BLTriangles = rc.blMesh.NumTriangles()
		// Extract the outer boundary of the boundary-layer mesh: boundary
		// edges whose endpoints are not both surface points.
		rc.outerPts, rc.outerSegs = outerBoundary(rc.blMesh, rc.surfaceSet)
		if len(rc.outerSegs) == 0 {
			return fmt.Errorf("core: boundary-layer mesh has no outer boundary")
		}
		return nil
	}
	return tasks, taskCtx{frame: rc.ffBox}, merge, nil
}

// prepareInviscid assembles the transition region between the boundary
// layer's outer boundary and the near-body box (sector-decoupled when the
// geometry allows it) plus the decoupled inviscid subdomains, all refined
// in parallel under the load balancer (phases 4+5).
func prepareInviscid(rc *RunCtx) ([]loadbal.Task, taskCtx, mergeFunc, error) {
	cfg := rc.cfg
	size := rc.size
	transIn, err := transitionInput(rc.g, rc.outerPts, rc.outerSegs, rc.nbBox, size)
	if err != nil {
		return nil, taskCtx{}, nil, err
	}
	quads, err := decouple.InitialQuadrants(rc.nbBox, rc.ffBox, size)
	if err != nil {
		return nil, taskCtx{}, nil, err
	}
	regions := decouple.Decouple(quads[:], size, cfg.Ranks*cfg.SubdomainsPerRank)

	var tasks []loadbal.Task

	// Transition tasks: sector-decoupled when the geometry allows it.
	want := cfg.TransitionSectors
	if want == 0 {
		want = cfg.Ranks * cfg.SubdomainsPerRank / 128
		if want > 32 {
			want = 32
		}
	}
	var transInputs []delaunay.Input
	if want > 1 {
		if sec, ok := transitionSectors(transIn, len(rc.outerPts), size, want); ok {
			transInputs = sec
		}
	}
	if transInputs == nil {
		transInputs = []delaunay.Input{transIn}
	}
	if cfg.Audit {
		// Collect every constrained/decoupling edge for the audit stage:
		// the transition inputs' segments (BL outer boundary, near-body box
		// border, sector cuts) and the decoupled region borders. All of
		// them are refined with NoSplitSegments, so each must survive
		// verbatim as a conforming edge of the merged mesh.
		for _, ti := range transInputs {
			for _, s := range ti.Segments {
				rc.pathEdges = append(rc.pathEdges, [2]geom.Point{ti.Points[s[0]], ti.Points[s[1]]})
			}
		}
		for _, r := range regions {
			n := len(r.Border)
			for k := 0; k < n; k++ {
				rc.pathEdges = append(rc.pathEdges, [2]geom.Point{r.Border[k], r.Border[(k+1)%n]})
			}
		}
	}
	for _, ti := range transInputs {
		tasks = append(tasks, loadbal.Task{
			ID:   int32(len(tasks)),
			Cost: float64(len(ti.Points)) * 4,
			Vals: regionTaskVals(kindTransition, ti.Points, ti.Segments, ti.Holes),
		})
	}
	nTrans := len(tasks)
	for _, r := range regions {
		n := len(r.Border)
		segs := make([][2]int32, n)
		for k := 0; k < n; k++ {
			segs[k] = [2]int32{int32(k), int32((k + 1) % n)}
		}
		tasks = append(tasks, loadbal.Task{
			ID:   int32(len(tasks)),
			Cost: r.Cost(size),
			Vals: regionTaskVals(kindInviscid, r.Border, segs, nil),
		})
	}
	merge := func(results [][]float64) error {
		var tris []float64
		trans, inv := 0, 0
		for i, r := range results {
			tris = append(tris, r...)
			if i < nTrans {
				trans += len(r) / 6
			} else {
				inv += len(r) / 6
			}
		}
		rc.isoTris = tris
		rc.stats.TransitionTris = trans
		rc.stats.InviscidTris = inv
		return nil
	}
	return tasks, taskCtx{frame: rc.ffBox, size: size, kernel: cfg.InviscidKernel}, merge, nil
}

// runMerge gathers the boundary-layer mesh and the transition/inviscid
// triangles into the final audited mesh (phase 6).
func runMerge(rc *RunCtx) error {
	b := mesh.NewBuilder()
	for _, tr := range rc.blMesh.Triangles {
		b.AddTriangle(rc.blMesh.Points[tr[0]], rc.blMesh.Points[tr[1]], rc.blMesh.Points[tr[2]])
	}
	for i := 0; i+5 < len(rc.isoTris); i += 6 {
		b.AddTriangle(
			geom.Pt(rc.isoTris[i], rc.isoTris[i+1]),
			geom.Pt(rc.isoTris[i+2], rc.isoTris[i+3]),
			geom.Pt(rc.isoTris[i+4], rc.isoTris[i+5]),
		)
	}
	rc.res.Mesh = b.Mesh()
	rc.stats.TotalTriangles = rc.res.Mesh.NumTriangles()
	if err := rc.res.Mesh.Audit(); err != nil {
		return fmt.Errorf("core: final mesh failed audit: %w", err)
	}
	return nil
}
