package core

// Tests of the traced pipeline: a run with a Tracer attached must export a
// valid Chrome trace-event file and metrics registry, close every span on
// both the success and the cancellation path, and fold consistent per-rank
// summaries into the Stats. The export format itself is tested in
// internal/trace; here the subject is the instrumentation wiring.

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"pamg2d/internal/trace"
)

// tracedRun generates with a fresh tracer attached and returns both.
func tracedRun(t *testing.T, cfg Config) (*Result, *trace.Tracer) {
	t.Helper()
	tr := trace.New(cfg.Ranks)
	cfg.Tracer = tr
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, tr
}

func TestTracedRunExportsValidTrace(t *testing.T) {
	cfg := smallConfig(2)
	cfg.Audit = true
	res, tr := tracedRun(t, cfg)

	if n := tr.OpenSpans(); n != 0 {
		t.Errorf("%d spans left open after a completed run", n)
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	if events == 0 {
		t.Fatal("exported trace is empty")
	}

	// Every stage of the audited pipeline appears as a root-track span.
	var tj struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			PID  float64 `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tj); err != nil {
		t.Fatal(err)
	}
	stageSpans := map[string]bool{}
	taskSpans, auditSpans := 0, 0
	for _, e := range tj.TraceEvents {
		switch {
		case e.Ph == "X" && e.Cat == trace.CatStage:
			stageSpans[e.Name] = true
			if e.PID != 0 {
				t.Errorf("stage span %q on pid %v, want the root track 0", e.Name, e.PID)
			}
		case e.Ph == "X" && e.Cat == trace.CatTask:
			taskSpans++
		case e.Ph == "X" && e.Cat == trace.CatAudit:
			auditSpans++
		}
	}
	for _, want := range []string{StageValidate, StageBLTriangulation, StageInviscid, StageMerge, StageAudit} {
		if !stageSpans[want] {
			t.Errorf("no stage span named %q in the trace", want)
		}
	}
	if taskSpans == 0 {
		t.Error("no task spans in the trace")
	}
	if auditSpans == 0 {
		t.Error("no audit-check spans in the trace")
	}

	// The metrics registry exports and validates too.
	buf.Reset()
	if err := tr.Metrics().WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateMetrics(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exported metrics invalid: %v", err)
	}
	snap := tr.Metrics().Snapshot()
	if snap.Counters["tasks.total"] != int64(totalRankTasks(res.Stats)) {
		t.Errorf("tasks.total = %d, want %d (sum of StageStat.Ranks)",
			snap.Counters["tasks.total"], totalRankTasks(res.Stats))
	}
}

func totalRankTasks(st Stats) int {
	n := 0
	for _, s := range st.Stages {
		for _, r := range s.Ranks {
			n += r.Tasks
		}
	}
	return n
}

// TestTracedRunRankStats: distributed stages fold per-rank summaries into
// their StageStat, and the run-wide steal aggregate matches the raw
// balancer records.
func TestTracedRunRankStats(t *testing.T) {
	cfg := smallConfig(2)
	cfg.Audit = true
	res, _ := tracedRun(t, cfg)
	st := res.Stats

	distributed := 0
	for _, s := range st.Stages {
		if strings.Contains(s.Name, "/") {
			if s.Ranks != nil {
				t.Errorf("sub-entry %q carries rank data", s.Name)
			}
			continue
		}
		if s.Ranks == nil {
			continue
		}
		distributed++
		if len(s.Ranks) != cfg.Ranks {
			t.Errorf("stage %q has %d rank entries, want %d", s.Name, len(s.Ranks), cfg.Ranks)
		}
		for i, r := range s.Ranks {
			if r.Rank != i {
				t.Errorf("stage %q rank entry %d labeled rank %d", s.Name, i, r.Rank)
			}
			if r.Tasks > 0 && r.Busy <= 0 {
				t.Errorf("stage %q rank %d: %d tasks but zero busy time", s.Name, i, r.Tasks)
			}
		}
		if _, max, mean := s.RankWall(); max < mean {
			t.Errorf("stage %q RankWall: max %v < mean %v", s.Name, max, mean)
		}
	}
	// bl-triangulation, inviscid, audit (ray-insertion tasks run at the
	// root when there is only one batch, but these three always fan out).
	if distributed < 3 {
		t.Errorf("only %d stages recorded rank data", distributed)
	}

	var agg StealStats
	for _, b := range st.LoadBalance {
		agg.Requests += b.StealRequests
		agg.Granted += b.StealsGranted
		agg.Gotten += b.StealsGotten
		agg.Idle += b.IdleTime
	}
	if st.Steals != agg {
		t.Errorf("Stats.Steals = %+v, want fold of LoadBalance %+v", st.Steals, agg)
	}
}

// TestTracedRunUntracedStatsAgree: the Steals/Ranks folds are tracer-
// independent — a run without a tracer produces them identically.
func TestTracedRunUntracedStatsAgree(t *testing.T) {
	cfg := smallConfig(2)
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if totalRankTasks(res.Stats) == 0 {
		t.Error("untraced run folded no per-rank task counts")
	}
	var agg StealStats
	for _, b := range res.Stats.LoadBalance {
		agg.Requests += b.StealRequests
		agg.Granted += b.StealsGranted
		agg.Gotten += b.StealsGotten
		agg.Idle += b.IdleTime
	}
	if res.Stats.Steals != agg {
		t.Errorf("Stats.Steals = %+v, want %+v", res.Stats.Steals, agg)
	}
}

// TestTracedCancellationClosesSpans: a run canceled mid-stage must still
// leave the tracer quiescent (no open spans) and exportable.
func TestTracedCancellationClosesSpans(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := smallConfig(2)
	tr := trace.New(cfg.Ranks)
	cfg.Tracer = tr
	cfg.TaskHook = func(s string, kind int) error {
		if s == StageInviscid {
			cancel()
		}
		return nil
	}
	if _, err := GenerateContext(ctx, cfg); err == nil {
		t.Fatal("canceled run did not fail")
	}
	if n := tr.OpenSpans(); n != 0 {
		t.Errorf("%d spans left open after cancellation", n)
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("canceled run exported an invalid trace: %v", err)
	}
}

// TestAuditWireAttribution: the audit stage's wire traffic lands on the
// summary entry alone — the per-check sub-entries stay at zero, so the sum
// of Messages over Stages equals Stats.Messages exactly.
func TestAuditWireAttribution(t *testing.T) {
	cfg := smallConfig(2)
	cfg.Audit = true
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	var sumMsgs, sumBytes int64
	auditSummary := false
	for _, s := range st.Stages {
		sumMsgs += s.Messages
		sumBytes += s.BytesOnWire
		if strings.HasPrefix(s.Name, StageAudit+"/") {
			if s.Messages != 0 || s.BytesOnWire != 0 {
				t.Errorf("sub-entry %q carries wire traffic (%d msgs, %d bytes)",
					s.Name, s.Messages, s.BytesOnWire)
			}
		}
		if s.Name == StageAudit {
			auditSummary = true
			if s.Messages == 0 {
				t.Error("audit summary entry recorded no wire traffic")
			}
		}
	}
	if !auditSummary {
		t.Fatal("no audit summary entry in Stages")
	}
	if sumMsgs != st.Messages || sumBytes != st.BytesOnWire {
		t.Errorf("stage wire sums (%d msgs, %d bytes) != totals (%d, %d)",
			sumMsgs, sumBytes, st.Messages, st.BytesOnWire)
	}
}

// TestKernelWorkersTracedRun: a run with the intra-rank parallel Delaunay
// kernel enabled folds kernel statistics into Stats.Kernel and the metrics
// registry, records per-worker kernel spans on rank tracks, and produces a
// mesh of the same size as the sequential kernel's.
func TestKernelWorkersTracedRun(t *testing.T) {
	seq, err := Generate(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}

	cfg := smallConfig(2)
	cfg.KernelWorkers = 4
	res, tr := tracedRun(t, cfg)

	ks := res.Stats.Kernel
	if ks.Workers != 4 {
		t.Fatalf("Stats.Kernel.Workers = %d, want 4", ks.Workers)
	}
	if ks.Inserted == 0 || ks.Rounds == 0 {
		t.Fatalf("parallel kernel recorded no work: %+v", ks)
	}
	if n := tr.OpenSpans(); n != 0 {
		t.Errorf("%d spans left open (kernel worker spans must close)", n)
	}
	snap := tr.Metrics().Snapshot()
	if snap.Counters["kernel.inserted"] != int64(ks.Inserted) {
		t.Errorf("kernel.inserted metric = %d, want %d", snap.Counters["kernel.inserted"], ks.Inserted)
	}

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	var tj struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			PID  float64 `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tj); err != nil {
		t.Fatal(err)
	}
	kernelSpans := 0
	for _, e := range tj.TraceEvents {
		if e.Ph == "X" && e.Cat == trace.CatKernel {
			kernelSpans++
			if !strings.HasPrefix(e.Name, "kernel/worker-") {
				t.Errorf("kernel span named %q, want kernel/worker-N", e.Name)
			}
			if e.PID == 0 {
				t.Errorf("kernel span %q on the root track, want a rank track", e.Name)
			}
		}
	}
	if kernelSpans == 0 {
		t.Fatal("no kernel worker spans in the trace")
	}

	// Same workload, same mesh scale: the parallel kernel builds the same
	// constrained Delaunay triangulations (insertion order may differ only
	// at cocircular degeneracies, and refinement is quality-driven), so the
	// merged counts must stay in a tight band.
	ratio := float64(res.Mesh.NumTriangles()) / float64(seq.Mesh.NumTriangles())
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("kw4 mesh diverges from sequential: %d vs %d triangles",
			res.Mesh.NumTriangles(), seq.Mesh.NumTriangles())
	}
}
