// Package decouple implements the Graded Delaunay Decoupling method of
// Linardakis & Chrisochoides used by the paper for the isotropic inviscid
// region: the annulus between the near-body box and the far field is split
// into four quadrants (paper Figure 9) whose shared borders are
// discretized by marching with the edge length of equation (1),
// k = sqrt(A/sqrt(2))/2, derived from the termination bounds of Ruppert's
// refinement. Further subdomains are created with '+'-shaped cuts whose
// new points lie strictly inside the parent subdomain — the cut connects
// to existing border points, so neighbors are never disturbed and no
// communication is needed. Each subdomain can then be refined completely
// independently while the union remains conforming and globally Delaunay.
package decouple

import (
	"fmt"
	"math"

	"pamg2d/internal/delaunay"
	"pamg2d/internal/geom"
	"pamg2d/internal/sizing"
)

// Region is one decoupled subdomain: a convex polygon whose border is
// already discretized to final resolution. Border points are stored in
// counter-clockwise order (the paper stores only the points; edges are
// implicit until the subdomain is refined). Corners marks the four logical
// corner indices within Border, preserved across '+' splits.
type Region struct {
	Border  []geom.Point
	Corners [4]int
	Depth   int
}

// MarchBorder discretizes the straight border from a to b with the
// k-formula spacing: each step is at most 2k (and at least 2k/sqrt(3)) for
// the local k, and never reaches 2k of the next vertex, which keeps
// independently refined neighbors globally Delaunay. The returned slice
// includes a and excludes b.
func MarchBorder(a, b geom.Point, size sizing.Func) []geom.Point {
	out := []geom.Point{a}
	total := a.Dist(b)
	if total == 0 {
		return out
	}
	dir := b.Sub(a).Unit()
	pos := 0.0
	cur := a
	for {
		k := sizing.K(size(cur))
		if k <= 0 {
			k = total / 4
		}
		// Propose a step in [2k/sqrt(3), 2k); use the midpoint of the
		// admissible range.
		step := k * (2/math.Sqrt(3) + 2) / 2
		// Enforce D < 2*k_next by shrinking until stable.
		for i := 0; i < 8; i++ {
			next := cur.Add(dir.Scale(step))
			kn := sizing.K(size(next))
			if step < 2*kn || kn <= 0 {
				break
			}
			step = 1.8 * kn
		}
		if pos+step >= total-0.5*step {
			// Absorb the remainder into the final edge so no sliver spacing
			// appears at b.
			return out
		}
		pos += step
		cur = a.Add(dir.Scale(pos))
		out = append(out, cur)
	}
}

// InitialQuadrants splits the annulus between the near-body box nb and the
// far-field box ff into four convex trapezoids (Figure 9). The four
// diagonal borders (near-body corner to far-field corner) and the outer
// and inner borders are discretized with MarchBorder; shared borders are
// discretized once so adjacent quadrants hold identical point sequences.
func InitialQuadrants(nb, ff geom.BBox, size sizing.Func) ([4]*Region, error) {
	if nb.Min.X <= ff.Min.X || nb.Max.X >= ff.Max.X || nb.Min.Y <= ff.Min.Y || nb.Max.Y >= ff.Max.Y {
		return [4]*Region{}, fmt.Errorf("decouple: near-body box must lie strictly inside the far field")
	}
	nbc := [4]geom.Point{
		geom.Pt(nb.Min.X, nb.Min.Y), geom.Pt(nb.Max.X, nb.Min.Y),
		geom.Pt(nb.Max.X, nb.Max.Y), geom.Pt(nb.Min.X, nb.Max.Y),
	}
	ffc := [4]geom.Point{
		geom.Pt(ff.Min.X, ff.Min.Y), geom.Pt(ff.Max.X, ff.Min.Y),
		geom.Pt(ff.Max.X, ff.Max.Y), geom.Pt(ff.Min.X, ff.Max.Y),
	}
	// Shared diagonals, marched from the near body toward the far field
	// (the paper marches along shared borders towards the farfield).
	var diag [4][]geom.Point
	for i := 0; i < 4; i++ {
		diag[i] = MarchBorder(nbc[i], ffc[i], size)
	}
	// Outer border edges (far field) and inner border edges (near body).
	var outer, inner [4][]geom.Point
	for i := 0; i < 4; i++ {
		outer[i] = MarchBorder(ffc[i], ffc[(i+1)%4], size)
		inner[i] = MarchBorder(nbc[i], nbc[(i+1)%4], size)
	}
	var out [4]*Region
	for i := 0; i < 4; i++ {
		j := (i + 1) % 4
		// Quadrant i (counter-clockwise walk): along the near-body edge
		// from nbc_j to nbc_i (the body edge is traversed against its own
		// CCW direction because the quadrant lies outside the body), out
		// along diagonal i to ffc_i, along the far-field edge to ffc_j,
		// and back in along diagonal j.
		var b []geom.Point
		var corners [4]int
		corners[0] = len(b)
		b = append(b, reverseExcl(inner[i], nbc[j])...) // nbc_j .. excl nbc_i
		corners[1] = len(b)
		b = append(b, diag[i]...) // nbc_i .. excl ffc_i
		corners[2] = len(b)
		b = append(b, outer[i]...) // ffc_i .. excl ffc_j
		corners[3] = len(b)
		b = append(b, reverseExcl(diag[j], ffc[j])...) // ffc_j .. excl nbc_j
		out[i] = &Region{Border: b, Corners: corners}
		if polygonArea(b) <= 0 {
			return out, fmt.Errorf("decouple: quadrant %d not counter-clockwise", i)
		}
	}
	return out, nil
}

// reverseExcl takes a marched polyline from p0 to pEnd (including p0,
// excluding pEnd) and returns the polyline from pEnd to p0 including pEnd
// and excluding p0.
func reverseExcl(march []geom.Point, pEnd geom.Point) []geom.Point {
	out := make([]geom.Point, 0, len(march))
	out = append(out, pEnd)
	for i := len(march) - 1; i >= 1; i-- {
		out = append(out, march[i])
	}
	return out
}

func polygonArea(pts []geom.Point) float64 {
	var sum float64
	n := len(pts)
	for i := 0; i < n; i++ {
		p, q := pts[i], pts[(i+1)%n]
		sum += p.X*q.Y - q.X*p.Y
	}
	return sum / 2
}

// Area returns the polygon area of the region.
func (r *Region) Area() float64 { return polygonArea(r.Border) }

// Cost estimates the number of triangles the region will contain after
// refinement with the sizing function: the integral of 1/size over the
// region, evaluated by a centroid fan quadrature. The paper uses this
// estimate both to pick which subdomain to decouple next and as the load
// balancing work unit.
func (r *Region) Cost(size sizing.Func) float64 {
	n := len(r.Border)
	if n < 3 {
		return 0
	}
	var cx, cy float64
	for _, p := range r.Border {
		cx += p.X
		cy += p.Y
	}
	c := geom.Pt(cx/float64(n), cy/float64(n))
	var cost float64
	for i := 0; i < n; i++ {
		a, b := r.Border[i], r.Border[(i+1)%n]
		area := math.Abs(geom.TriangleArea(c, a, b))
		mid := geom.Pt((c.X+a.X+b.X)/3, (c.Y+a.Y+b.Y)/3)
		s := size(mid)
		if s > 0 {
			cost += area / s
		}
	}
	return cost
}

// Side returns the border indices of side s: from Corners[s] to
// Corners[(s+1)%4] cyclically (inclusive endpoints).
func (r *Region) side(s int) []int {
	start := r.Corners[s]
	end := r.Corners[(s+1)%4]
	n := len(r.Border)
	var idx []int
	for i := start; ; i = (i + 1) % n {
		idx = append(idx, i)
		if i == end {
			break
		}
	}
	return idx
}

// SplitPlus performs the '+'-shaped decoupling of the paper: a new center
// point plus four marched paths from the center to the existing border
// point nearest the midpoint of each side. New points appear only in the
// interior, so neighboring regions are untouched. It returns nil when a
// side has no interior point to attach to (the region is too small to
// split).
func (r *Region) SplitPlus(size sizing.Func) []*Region {
	var midIdx [4]int
	var mids [4]geom.Point
	for s := 0; s < 4; s++ {
		side := r.side(s)
		if len(side) < 3 {
			return nil // no interior border point on this side
		}
		a := r.Border[side[0]]
		b := r.Border[side[len(side)-1]]
		target := a.Mid(b)
		best := -1
		bestD := math.Inf(1)
		for _, bi := range side[1 : len(side)-1] {
			if d := r.Border[bi].Dist(target); d < bestD {
				bestD = d
				best = bi
			}
		}
		midIdx[s] = best
		mids[s] = r.Border[best]
	}
	center := geom.Pt(
		(mids[0].X+mids[1].X+mids[2].X+mids[3].X)/4,
		(mids[0].Y+mids[1].Y+mids[2].Y+mids[3].Y)/4,
	)
	// March each arm from the side midpoint toward the center; the arm
	// includes the midpoint (owned by the border) so drop it, and excludes
	// the center.
	var arms [4][]geom.Point // interior points only, ordered mid -> center
	for s := 0; s < 4; s++ {
		m := MarchBorder(mids[s], center, size)
		arms[s] = m[1:]
	}
	// Child c sits between arm c-1 and arm c and contains corner c+1:
	// border = center -> arm[c-1]... no: build from the border walk
	// mid[c] .. corner[c+1] .. mid[c+1], then back through the cross:
	// mid[c+1] -> center (arm c+1 reversed is wrong side) ...
	children := make([]*Region, 0, 4)
	n := len(r.Border)
	for c := 0; c < 4; c++ {
		cn := (c + 1) % 4
		var b []geom.Point
		var corners [4]int
		// Border walk from midIdx[c] to midIdx[cn] (CCW along the parent
		// border, passing Corners[cn]).
		corners[0] = len(b)
		cornerSeen := 0
		for i := midIdx[c]; ; i = (i + 1) % n {
			b = append(b, r.Border[i])
			if i == r.Corners[cn] {
				cornerSeen = len(b) - 1
			}
			if i == midIdx[cn] {
				break
			}
		}
		corners[1] = cornerSeen
		corners[2] = len(b) - 1
		// Cross path: from mids[cn] toward center via arm[cn], then center,
		// then arm[c] reversed back toward mids[c] (exclusive).
		b = append(b, arms[cn]...)
		corners[3] = len(b)
		b = append(b, center)
		for i := len(arms[c]) - 1; i >= 0; i-- {
			b = append(b, arms[c][i])
		}
		child := &Region{Border: b, Corners: corners, Depth: r.Depth + 1}
		if polygonArea(b) <= 0 {
			return nil
		}
		children = append(children, child)
	}
	return children
}

// Decouple repeatedly '+'-splits the highest-cost region until at least
// want regions exist or no region can split further. Region costs are
// evaluated once per region and cached — the sizing function's distance
// queries dominate decoupling time otherwise.
func Decouple(initial []*Region, size sizing.Func, want int) []*Region {
	regions := append([]*Region{}, initial...)
	costs := make([]float64, len(regions))
	for i, r := range regions {
		costs[i] = r.Cost(size)
	}
	replace := func(i int, children []*Region) {
		regions = append(regions[:i], regions[i+1:]...)
		costs = append(costs[:i], costs[i+1:]...)
		for _, ch := range children {
			regions = append(regions, ch)
			costs = append(costs, ch.Cost(size))
		}
	}
	for len(regions) < want {
		// Pick the most expensive region.
		best := -1
		bestCost := -1.0
		for i := range regions {
			if costs[i] > bestCost {
				bestCost = costs[i]
				best = i
			}
		}
		if best < 0 {
			break
		}
		children := regions[best].SplitPlus(size)
		if children == nil {
			// Try the other regions; if none splits, stop.
			split := false
			for i := range regions {
				if ch := regions[i].SplitPlus(size); ch != nil {
					replace(i, ch)
					split = true
					break
				}
			}
			if !split {
				break
			}
			continue
		}
		replace(best, children)
	}
	return regions
}

// Refine triangulates and refines the region independently: its border
// points become the PSLG (consecutive points joined by constrained
// segments) and the sizing function bounds the triangle areas, with
// Ruppert's sqrt(2) circumradius-to-shortest-edge quality bound.
func (r *Region) Refine(size sizing.Func, frame geom.BBox) (*delaunay.Result, error) {
	n := len(r.Border)
	segs := make([][2]int32, n)
	for i := 0; i < n; i++ {
		segs[i] = [2]int32{int32(i), int32((i + 1) % n)}
	}
	return delaunay.TriangulateRefined(
		delaunay.Input{Points: r.Border, Segments: segs, Frame: frame},
		delaunay.Quality{
			MaxRadiusEdgeRatio: math.Sqrt2,
			SizeAt:             size,
			NoSplitSegments:    true,
		},
	)
}
