package decouple

import (
	"math"
	"testing"

	"pamg2d/internal/delaunay"
	"pamg2d/internal/geom"
	"pamg2d/internal/sizing"
)

var (
	nb = geom.BBox{Min: geom.Pt(-1, -1), Max: geom.Pt(1, 1)}
	ff = geom.BBox{Min: geom.Pt(-8, -8), Max: geom.Pt(8, 8)}
)

func uniform(area float64) sizing.Func { return sizing.Uniform(area) }

func TestMarchBorderSpacing(t *testing.T) {
	size := uniform(0.5)
	k := sizing.K(0.5)
	pts := MarchBorder(geom.Pt(0, 0), geom.Pt(10, 0), size)
	if len(pts) < 3 {
		t.Fatalf("marched only %d points", len(pts))
	}
	if pts[0] != (geom.Pt(0, 0)) {
		t.Error("march must start at a")
	}
	for i := 1; i < len(pts); i++ {
		d := pts[i].Dist(pts[i-1])
		if d < 2*k/math.Sqrt(3)-1e-9 || d >= 2*k {
			t.Errorf("step %d spacing %v outside [2k/sqrt3, 2k) = [%v, %v)", i, d, 2*k/math.Sqrt(3), 2*k)
		}
	}
	// Last marched point must not be too close to b.
	last := pts[len(pts)-1]
	if last.Dist(geom.Pt(10, 0)) < k {
		t.Errorf("last point %v too close to the endpoint", last)
	}
}

func TestMarchBorderGraded(t *testing.T) {
	// Sizing growing with x: spacing must grow along the march and respect
	// D < 2*k_next.
	size := func(p geom.Point) float64 { return 0.05 + 0.2*math.Abs(p.X) }
	pts := MarchBorder(geom.Pt(0, 0), geom.Pt(20, 0), size)
	if len(pts) < 5 {
		t.Fatalf("marched only %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		d := pts[i].Dist(pts[i-1])
		kn := sizing.K(size(pts[i]))
		if d >= 2*kn {
			t.Errorf("step %d: spacing %v >= 2*k_next %v", i, d, 2*kn)
		}
	}
	// Spacings grow overall.
	first := pts[1].Dist(pts[0])
	last := pts[len(pts)-1].Dist(pts[len(pts)-2])
	if last <= first {
		t.Errorf("graded march: last spacing %v not larger than first %v", last, first)
	}
}

func TestInitialQuadrants(t *testing.T) {
	quads, err := InitialQuadrants(nb, ff, uniform(1.0))
	if err != nil {
		t.Fatal(err)
	}
	totalArea := 0.0
	for i, q := range quads {
		if a := q.Area(); a <= 0 {
			t.Errorf("quadrant %d not CCW (area %v)", i, a)
		}
		totalArea += q.Area()
		if len(q.Border) < 8 {
			t.Errorf("quadrant %d border has only %d points", i, len(q.Border))
		}
		// Corners must index valid border positions.
		for _, c := range q.Corners {
			if c < 0 || c >= len(q.Border) {
				t.Fatalf("quadrant %d corner index %d out of range", i, c)
			}
		}
	}
	want := ff.Width()*ff.Height() - nb.Width()*nb.Height()
	if math.Abs(totalArea-want) > 1e-9*want {
		t.Errorf("quadrant areas sum to %v, want %v", totalArea, want)
	}
}

func TestInitialQuadrantsBadBoxes(t *testing.T) {
	if _, err := InitialQuadrants(ff, nb, uniform(1)); err == nil {
		t.Error("near-body outside far field must fail")
	}
}

// sharedPoints returns how many border points of a appear in b.
func sharedPoints(a, b *Region) int {
	set := map[geom.Point]bool{}
	for _, p := range a.Border {
		set[p] = true
	}
	n := 0
	for _, p := range b.Border {
		if set[p] {
			n++
		}
	}
	return n
}

func TestQuadrantSharedBordersIdentical(t *testing.T) {
	quads, err := InitialQuadrants(nb, ff, uniform(1.0))
	if err != nil {
		t.Fatal(err)
	}
	// Adjacent quadrants share a full diagonal discretization.
	for i := 0; i < 4; i++ {
		j := (i + 1) % 4
		if n := sharedPoints(quads[i], quads[j]); n < 3 {
			t.Errorf("quadrants %d and %d share only %d points", i, j, n)
		}
	}
}

func TestSplitPlus(t *testing.T) {
	quads, err := InitialQuadrants(nb, ff, uniform(0.5))
	if err != nil {
		t.Fatal(err)
	}
	parent := quads[0]
	parentPts := map[geom.Point]bool{}
	for _, p := range parent.Border {
		parentPts[p] = true
	}
	children := parent.SplitPlus(uniform(0.5))
	if children == nil {
		t.Fatal("quadrant must be splittable")
	}
	if len(children) != 4 {
		t.Fatalf("children = %d", len(children))
	}
	var areaSum float64
	for i, c := range children {
		if a := c.Area(); a <= 0 {
			t.Fatalf("child %d not CCW (area %v)", i, a)
		}
		areaSum += c.Area()
		if c.Depth != parent.Depth+1 {
			t.Error("child depth")
		}
	}
	if math.Abs(areaSum-parent.Area()) > 1e-9*parent.Area() {
		t.Errorf("children areas %v != parent %v", areaSum, parent.Area())
	}
	// The parent's outer border is untouched: every parent border point
	// appears in exactly one or two children (two at the connection mids),
	// and no child point outside the parent's border is on the parent
	// border polygon's edges.
	for _, c := range children {
		for _, p := range c.Border {
			if parentPts[p] {
				continue
			}
			// New point: must be strictly interior to the parent polygon.
			loopPts := parent.Border
			if !pointInPolygon(p, loopPts) {
				t.Fatalf("new point %v not interior to the parent", p)
			}
		}
	}
}

func pointInPolygon(p geom.Point, poly []geom.Point) bool {
	inside := false
	n := len(poly)
	for i := 0; i < n; i++ {
		a, b := poly[i], poly[(i+1)%n]
		if (a.Y > p.Y) != (b.Y > p.Y) {
			t := (p.Y - a.Y) / (b.Y - a.Y)
			if a.X+t*(b.X-a.X) > p.X {
				inside = !inside
			}
		}
	}
	return inside
}

func TestDecoupleToCount(t *testing.T) {
	quads, err := InitialQuadrants(nb, ff, uniform(0.5))
	if err != nil {
		t.Fatal(err)
	}
	regions := Decouple(quads[:], uniform(0.5), 16)
	if len(regions) < 16 {
		t.Fatalf("decoupled into %d regions, want >= 16", len(regions))
	}
	var total float64
	for _, r := range regions {
		if r.Area() <= 0 {
			t.Fatal("non-CCW region")
		}
		total += r.Area()
	}
	want := ff.Width()*ff.Height() - nb.Width()*nb.Height()
	if math.Abs(total-want) > 1e-6*want {
		t.Errorf("areas sum to %v, want %v", total, want)
	}
}

func TestDecoupleBalancesCost(t *testing.T) {
	size := uniform(0.5)
	quads, err := InitialQuadrants(nb, ff, size)
	if err != nil {
		t.Fatal(err)
	}
	regions := Decouple(quads[:], size, 32)
	var costs []float64
	var sum float64
	for _, r := range regions {
		c := r.Cost(size)
		costs = append(costs, c)
		sum += c
	}
	mean := sum / float64(len(costs))
	// Splitting the largest first keeps the max within a small factor of
	// the mean ("each subdomain has roughly the same number of triangles").
	for _, c := range costs {
		if c > 4*mean {
			t.Errorf("cost %v more than 4x the mean %v", c, mean)
		}
	}
}

func TestRefineRegion(t *testing.T) {
	size := uniform(0.8)
	quads, err := InitialQuadrants(nb, ff, size)
	if err != nil {
		t.Fatal(err)
	}
	frame := ff
	res, err := quads[0].Refine(size, frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Triangles) < 10 {
		t.Fatalf("refined quadrant has %d triangles", len(res.Triangles))
	}
	var area float64
	for _, tri := range res.Triangles {
		area += math.Abs(geom.TriangleArea(res.Points[tri[0]], res.Points[tri[1]], res.Points[tri[2]]))
	}
	if math.Abs(area-quads[0].Area()) > 1e-6*quads[0].Area() {
		t.Errorf("refined area %v != region area %v", area, quads[0].Area())
	}
}

// TestDecouplingPreservesBorders is the core decoupling guarantee: after
// independent refinement, no Steiner point lies on a shared border (the
// borders were discretized so they are never encroached or split).
func TestDecouplingPreservesBorders(t *testing.T) {
	size := uniform(0.8)
	quads, err := InitialQuadrants(nb, ff, size)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range quads {
		res, err := q.Refine(size, ff)
		if err != nil {
			t.Fatal(err)
		}
		borderSet := map[geom.Point]bool{}
		for _, p := range q.Border {
			borderSet[p] = true
		}
		// Any result point on a border segment must be an original border
		// point.
		n := len(q.Border)
		for _, p := range res.Points {
			if borderSet[p] {
				continue
			}
			for i := 0; i < n; i++ {
				s := geom.Segment{A: q.Border[i], B: q.Border[(i+1)%n]}
				if geom.PointSegDist(p, s) < 1e-12 {
					t.Fatalf("quadrant %d: refinement split border segment %d at %v", qi, i, p)
				}
			}
		}
	}
}

// TestCrossBorderDelaunay merges two adjacent refined quadrants and checks
// the global Delaunay property across the shared border: for every
// triangle, no vertex of the other subdomain near the border lies strictly
// inside its circumcircle.
func TestCrossBorderDelaunay(t *testing.T) {
	size := uniform(1.2)
	quads, err := InitialQuadrants(nb, ff, size)
	if err != nil {
		t.Fatal(err)
	}
	res0, err := quads[0].Refine(size, ff)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := quads[1].Refine(size, ff)
	if err != nil {
		t.Fatal(err)
	}
	// Shared border points between quadrant 0 and 1.
	shared := map[geom.Point]bool{}
	set0 := map[geom.Point]bool{}
	for _, p := range quads[0].Border {
		set0[p] = true
	}
	for _, p := range quads[1].Border {
		if set0[p] {
			shared[p] = true
		}
	}
	if len(shared) < 3 {
		t.Fatal("no shared border found")
	}
	// For every triangle of res0 with a vertex on the shared border, no
	// point of res1 may lie strictly inside its circumcircle (and vice
	// versa). This is the decoupling guarantee that the union is globally
	// Delaunay.
	check := func(a, b *delaunay.Result) int {
		violations := 0
		for _, tri := range a.Triangles {
			pa, pb, pc := a.Points[tri[0]], a.Points[tri[1]], a.Points[tri[2]]
			touchesBorder := shared[pa] || shared[pb] || shared[pc]
			if !touchesBorder {
				continue
			}
			cc := geom.Circumcenter(pa, pb, pc)
			r := cc.Dist(pa)
			for _, q := range b.Points {
				if q == pa || q == pb || q == pc {
					continue
				}
				if cc.Dist(q) < r*(1-1e-9) {
					violations++
					break
				}
			}
		}
		return violations
	}
	if v := check(res0, res1); v > 0 {
		t.Errorf("%d triangles of quadrant 0 have quadrant-1 points inside their circumcircles", v)
	}
	if v := check(res1, res0); v > 0 {
		t.Errorf("%d triangles of quadrant 1 have quadrant-0 points inside their circumcircles", v)
	}
}

func BenchmarkDecouple64(b *testing.B) {
	size := uniform(0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		quads, err := InitialQuadrants(nb, ff, size)
		if err != nil {
			b.Fatal(err)
		}
		Decouple(quads[:], size, 64)
	}
}

func BenchmarkRefineQuadrant(b *testing.B) {
	size := uniform(0.5)
	quads, err := InitialQuadrants(nb, ff, size)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := quads[0].Refine(size, ff); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPlusJunctionConformity refines the four children of one '+' split
// independently and checks conformity and the cross-border Delaunay
// property at the junction point and along the arms.
func TestPlusJunctionConformity(t *testing.T) {
	size := uniform(0.9)
	quads, err := InitialQuadrants(nb, ff, size)
	if err != nil {
		t.Fatal(err)
	}
	children := quads[0].SplitPlus(size)
	if children == nil {
		t.Fatal("quadrant must split")
	}
	var results []*delaunay.Result
	for i, c := range children {
		res, err := c.Refine(size, ff)
		if err != nil {
			t.Fatalf("child %d: %v", i, err)
		}
		results = append(results, res)
	}
	// Conformity: points on shared borders appear identically in both
	// neighbors. Collect per-child point sets and check each child's
	// border points against the union of the others.
	pointSets := make([]map[geom.Point]bool, len(children))
	for i, res := range results {
		pointSets[i] = map[geom.Point]bool{}
		for _, p := range res.Points {
			pointSets[i][p] = true
		}
	}
	for i, c := range children {
		for _, p := range c.Border {
			if !pointSets[i][p] {
				t.Fatalf("child %d lost its own border point %v", i, p)
			}
		}
	}
	// Global Delaunay across each pair of children (the '+' arms).
	for i := 0; i < len(results); i++ {
		for j := i + 1; j < len(results); j++ {
			for _, tri := range results[i].Triangles {
				pa := results[i].Points[tri[0]]
				pb := results[i].Points[tri[1]]
				pc := results[i].Points[tri[2]]
				cc := geom.Circumcenter(pa, pb, pc)
				r := cc.Dist(pa)
				for _, q := range results[j].Points {
					if q == pa || q == pb || q == pc {
						continue
					}
					if cc.Dist(q) < r*(1-1e-9) {
						t.Fatalf("child %d triangle has child-%d point %v inside its circumcircle", i, j, q)
					}
				}
			}
		}
	}
}
