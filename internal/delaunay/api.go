package delaunay

import (
	"fmt"

	"pamg2d/internal/geom"
)

// Input is a planar straight-line graph handed to the kernel: points, the
// constrained segments between them (as point-index pairs), and hole seed
// points. It mirrors Triangle's .poly input.
type Input struct {
	Points   []geom.Point
	Segments [][2]int32
	Holes    []geom.Point

	// Sorted declares that Points are already sorted by (X, Y). The paper
	// maintains x-sorted vertices through every decomposition step exactly
	// so the kernel can skip this sort.
	Sorted bool

	// Frame, when non-empty, fixes the working bounding box. Parallel
	// decompositions pass the same global frame to every subdomain so that
	// convex-hull slivers survive or die identically in every leaf and in
	// a direct triangulation of the union.
	Frame geom.BBox
}

// Result is a finished mesh: the vertex coordinates and the interior
// triangles as index triples in counter-clockwise order. Vertex indices
// refer to Points, which lists vertices in first-encountered order and
// contains only vertices referenced by interior triangles.
type Result struct {
	Points    []geom.Point
	Triangles [][3]int32
	// Constrained marks, for each triangle edge (triangle i, edge j from
	// vertex j to j+1 mod 3), whether it lies on a constrained segment.
	Constrained [][3]bool
}

// NumTriangles returns the number of triangles in the result.
func (r *Result) NumTriangles() int { return len(r.Triangles) }

// Quality options for Refine.
type Quality struct {
	// MaxRadiusEdgeRatio bounds the circumradius-to-shortest-edge ratio;
	// sqrt(2) corresponds to Ruppert's 20.7 degree minimum angle. Zero
	// disables the quality bound.
	MaxRadiusEdgeRatio float64

	// MaxArea bounds every triangle's area. Zero disables it.
	MaxArea float64

	// SizeAt, when non-nil, returns the target triangle area near a point;
	// triangles larger than the target are split. This is Triangle's
	// user-defined area constraint used by the paper's sizing function.
	SizeAt func(geom.Point) float64

	// MinLength guards termination: segments and edges shorter than this
	// are never split and circumcenters closer than this to an existing
	// vertex are rejected. When zero a value derived from the domain size
	// is used.
	MinLength float64

	// MaxPoints caps the total vertex count as a safety valve. Zero means
	// no cap.
	MaxPoints int

	// NoSplitSegments prohibits inserting Steiner points on constrained
	// segments (Triangle's -Y switch). Circumcenters that would encroach a
	// segment are simply rejected and the offending triangle is left in
	// place. The graded decoupling method relies on this: shared borders
	// between subdomains must keep exactly their initial discretization so
	// independently refined neighbors stay conforming.
	NoSplitSegments bool
}

// Triangulate builds the constrained Delaunay triangulation of the input,
// carves holes and exterior area, and returns the mesh without refinement.
func Triangulate(in Input) (*Result, error) {
	tr, err := Build(in)
	if err != nil {
		return nil, err
	}
	return tr.Extract(), nil
}

// TriangulateRefined builds the constrained Delaunay triangulation and
// refines it to the given quality.
func TriangulateRefined(in Input, q Quality) (*Result, error) {
	tr, err := Build(in)
	if err != nil {
		return nil, err
	}
	if err := tr.Refine(q); err != nil {
		return nil, err
	}
	return tr.Extract(), nil
}

// Build runs point insertion, segment recovery and carving, returning the
// live Triangulation for callers that need incremental access.
func Build(in Input) (*Triangulation, error) {
	if len(in.Points) < 3 {
		return nil, fmt.Errorf("delaunay: need at least 3 points, have %d", len(in.Points))
	}
	bb := in.Frame
	if bb == (geom.BBox{}) || bb.Empty() {
		bb = geom.BBoxOf(in.Points)
	}
	t := NewCap(bb, len(in.Points))

	// Insert points in spatially coherent order: either the caller's
	// x-sorted order, or sorted by insertionOrder (which also enables the
	// bin seed for the scattered queries that follow).
	order := insertionOrder(in, t)
	// vmap maps input point indices to triangulation vertex indices
	// (offset by the four frame corners, or aliased for duplicates).
	vmap := make([]int32, len(in.Points))
	for _, i := range order {
		v, err := t.InsertPoint(in.Points[i])
		if err == ErrDuplicate {
			vmap[i] = v
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("delaunay: inserting point %d %v: %w", i, in.Points[i], err)
		}
		vmap[i] = v
	}
	for _, s := range in.Segments {
		a, b := vmap[s[0]], vmap[s[1]]
		if a == b {
			continue
		}
		if err := t.InsertSegment(a, b); err != nil {
			return nil, err
		}
	}
	t.Carve(in.Holes)
	return t, nil
}

// Extract converts the live triangulation into a compact Result holding
// only interior triangles and referenced vertices.
func (t *Triangulation) Extract() *Result {
	remap := make([]int32, len(t.pts))
	for i := range remap {
		remap[i] = -1
	}
	nInterior := t.InteriorTriangles()
	res := &Result{
		Points:      make([]geom.Point, 0, len(t.pts)),
		Triangles:   make([][3]int32, 0, nInterior),
		Constrained: make([][3]bool, 0, nInterior),
	}
	for i := range t.tris {
		tr := t.tris[i]
		if tr.Dead || tr.Outside {
			continue
		}
		var tri [3]int32
		for k := 0; k < 3; k++ {
			v := tr.V[k]
			if remap[v] < 0 {
				remap[v] = int32(len(res.Points))
				res.Points = append(res.Points, t.pts[v])
			}
			tri[k] = remap[v]
		}
		res.Triangles = append(res.Triangles, tri)
		res.Constrained = append(res.Constrained, tr.C)
	}
	return res
}

// CheckDelaunay validates structural invariants; exposed for tests.
func (t *Triangulation) CheckDelaunay(full bool) error { return t.checkInvariants(full) }
