package delaunay

import "pamg2d/internal/geom"

// Carve classifies triangles as interior or exterior. Flood fill starts
// from the triangles incident to the auxiliary bounding-box corners and
// spreads across unconstrained edges, marking everything it reaches as
// outside; constrained (PSLG border) edges stop the flood. Then, for each
// hole seed point, the flood is repeated from the triangle containing it.
// This mirrors Triangle's behavior of eating concavities and holes from an
// initial triangulation of the convex region.
func (t *Triangulation) Carve(holes []geom.Point) {
	for i := range t.tris {
		t.tris[i].Outside = false
	}
	if !t.hasConstraints() {
		// Pure point-set triangulation: the exterior is exactly the set of
		// triangles using a frame corner (a triangle whose three vertices
		// are input points lies inside their convex hull), so no flood is
		// needed — and a flood would eat everything.
		for i := range t.tris {
			tr := &t.tris[i]
			if tr.Dead {
				continue
			}
			for k := 0; k < 3; k++ {
				if t.IsCorner(tr.V[k]) {
					tr.Outside = true
					break
				}
			}
		}
		t.carved = true
		return
	}
	var seeds []int32
	for _, c := range t.corner {
		if ti := t.vtri[c]; ti != invalid && !t.tris[ti].Dead {
			seeds = append(seeds, ti)
		} else if ti := t.findIncident(c); ti != invalid {
			seeds = append(seeds, ti)
		}
	}
	for _, h := range holes {
		loc := t.locate(h)
		if loc.kind == locInside || loc.kind == locEdge {
			seeds = append(seeds, loc.t)
		}
	}
	stack := seeds
	for len(stack) > 0 {
		ti := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t.tris[ti].Dead || t.tris[ti].Outside {
			continue
		}
		t.tris[ti].Outside = true
		tr := t.tris[ti]
		for e := int32(0); e < 3; e++ {
			if tr.C[e] {
				continue
			}
			nb := tr.N[e]
			if nb != invalid && !t.tris[nb].Dead && !t.tris[nb].Outside {
				stack = append(stack, nb)
			}
		}
	}
	t.carved = true
}

// hasConstraints reports whether any live triangle has a constrained edge.
func (t *Triangulation) hasConstraints() bool {
	for i := range t.tris {
		if t.tris[i].Dead {
			continue
		}
		if t.tris[i].C[0] || t.tris[i].C[1] || t.tris[i].C[2] {
			return true
		}
	}
	return false
}
