package delaunay

import (
	"fmt"

	"pamg2d/internal/geom"
)

// InsertSegment forces the edge (a, b) between two existing vertices into
// the triangulation and marks it constrained. If the edge is not already
// present, every triangle crossed by the open segment is removed and the
// two resulting pseudo-polygons are retriangulated (Anglada's algorithm).
// Vertices lying exactly on the open segment split the constraint into
// sub-segments recursively.
func (t *Triangulation) InsertSegment(a, b int32) error {
	if a == b {
		return fmt.Errorf("delaunay: degenerate segment (%d,%d)", a, b)
	}
	// Fast path: edge already exists.
	if ti, e := t.findEdge(a, b); ti != invalid {
		t.setConstrained(ti, e, true)
		return nil
	}
	// Walk the triangles crossed by segment a->b. Collect the crossed
	// triangles and the vertices strictly left and right of the segment.
	pa, pb := t.pts[a], t.pts[b]

	ti, e := t.firstCrossing(a, pb)
	if ti == invalid {
		// The segment leaves a through an existing vertex v exactly on the
		// line: split the constraint at v.
		v := t.vertexOnSegment(a, b)
		if v == invalid {
			return fmt.Errorf("delaunay: cannot start segment (%d,%d): no crossing found", a, b)
		}
		if err := t.InsertSegment(a, v); err != nil {
			return err
		}
		return t.InsertSegment(v, b)
	}

	crossed := []int32{ti}
	var left, right []int32
	// Edge e of ti is the first crossed edge; sort its endpoints onto the
	// two sides of the directed line a -> b.
	u := t.tris[ti].V[e]
	w := t.tris[ti].V[(e+1)%3]
	if geom.Orient2DSign(pa, pb, t.pts[u]) > 0 {
		u, w = w, u
	}
	// Now u is strictly right of the segment and w strictly left (the
	// crossing walk guarantees neither is on the line).
	right = append(right, u)
	left = append(left, w)

	cur := ti
	curEdge := e
	for {
		nb := t.tris[cur].N[curEdge]
		if nb == invalid || t.tris[nb].Dead {
			return fmt.Errorf("delaunay: segment (%d,%d) walk left the triangulation", a, b)
		}
		if t.tris[cur].C[curEdge] {
			return fmt.Errorf("delaunay: segment (%d,%d) crosses constrained edge", a, b)
		}
		crossed = append(crossed, nb)
		// Find the apex of nb: the vertex not on the shared edge.
		sh := t.edgeIndex(nb, t.tris[cur].V[(curEdge+1)%3], t.tris[cur].V[curEdge])
		apex := t.tris[nb].V[(sh+2)%3]
		if apex == b {
			break
		}
		s := geom.Orient2DSign(pa, pb, t.pts[apex])
		if s == 0 {
			// A vertex exactly on the open segment: split there.
			// Roll back nothing (no mutation yet) and recurse.
			if err := t.InsertSegment(a, apex); err != nil {
				return err
			}
			return t.InsertSegment(apex, b)
		}
		if s > 0 {
			left = append(left, apex)
			// Continue through the edge of nb crossed by ab: it is the edge
			// from the shared-edge's right vertex to apex or apex to left
			// vertex; pick the one straddling the line.
			curEdge = t.exitEdge(nb, sh, pa, pb)
		} else {
			right = append(right, apex)
			curEdge = t.exitEdge(nb, sh, pa, pb)
		}
		cur = nb
	}

	// Record the outer neighbors of the crossed region before deleting.
	type outerEdge struct {
		va, vb int32 // directed edge of the hole boundary
		nb, ne int32 // neighbor outside the region and its edge index
		c      bool
	}
	var outer []outerEdge
	inRegion := func(x int32) bool {
		for _, c := range crossed {
			if c == x {
				return true
			}
		}
		return false
	}
	for _, ci := range crossed {
		tr := t.tris[ci]
		for e := int32(0); e < 3; e++ {
			nb := tr.N[e]
			if nb != invalid && inRegion(nb) {
				continue
			}
			var ne int32 = -1
			if nb != invalid {
				ne = t.edgeIndex(nb, tr.V[(e+1)%3], tr.V[e])
			}
			outer = append(outer, outerEdge{tr.V[e], tr.V[(e+1)%3], nb, ne, tr.C[e]})
		}
	}
	for _, ci := range crossed {
		t.killTri(ci)
	}

	// Retriangulate the two pseudo-polygons. Each polygon lists its CCW
	// boundary with the closing (constrained) edge running from the last
	// vertex to the first:
	//   left region:  b, left[k-1], ..., left[0], a  (closing edge a -> b)
	//   right region: a, right[0], ..., right[k-1], b (closing edge b -> a)
	edgeTri := make(map[[2]int32]halfRef, 4*len(outer))
	for _, oe := range outer {
		edgeTri[[2]int32{oe.va, oe.vb}] = halfRef{oe.nb, oe.ne, oe.c}
	}
	leftPoly := append([]int32{b}, reverse(left)...)
	leftPoly = append(leftPoly, a)
	rightPoly := append([]int32{a}, right...)
	rightPoly = append(rightPoly, b)

	lt, ltEdge := t.fillPolygon(leftPoly, edgeTri)
	rt, rtEdge := t.fillPolygon(rightPoly, edgeTri)
	t.link(lt, ltEdge, rt, rtEdge)
	t.tris[lt].C[ltEdge] = true
	t.tris[rt].C[rtEdge] = true
	return nil
}

type halfRef struct {
	tri, e int32
	c      bool
}

func reverse(s []int32) []int32 {
	out := make([]int32, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}

// fillPolygon triangulates the pseudo-polygon whose CCW boundary is poly
// (poly[0] and poly[len-1] are the constraint endpoints; the closing edge
// poly[len-1] -> poly[0] is the new constrained edge). It returns the new
// triangle adjacent to the closing edge and that edge's index. edgeTri maps
// directed boundary edges to their outside neighbors and is updated with
// newly created interior diagonals.
func (t *Triangulation) fillPolygon(poly []int32, edgeTri map[[2]int32]halfRef) (int32, int32) {
	n := len(poly)
	if n < 3 {
		return invalid, 0
	}
	a := poly[n-1] // closing edge start
	b := poly[0]   // closing edge end
	if n == 3 {
		c := poly[1]
		nt := t.addTri(a, b, c)
		// Edge 0 = (a,b) is the closing edge. Edges (b,c) and (c,a) are
		// boundary edges of the pseudo-polygon.
		t.hookEdge(nt, 1, b, c, edgeTri)
		t.hookEdge(nt, 2, c, a, edgeTri)
		return nt, 0
	}
	// Choose the apex c: the boundary vertex (strictly between the
	// endpoints) whose circumcircle with (a,b) is empty of the other
	// boundary vertices (Anglada's rule).
	best := 1
	pa, pb := t.pts[a], t.pts[b]
	for i := 2; i < n-1; i++ {
		// Triangle (a, b, poly[best]) is CCW; a positive incircle value
		// means poly[i] invalidates the current apex.
		if geom.InCircle(pa, pb, t.pts[poly[best]], t.pts[poly[i]]) > 0 {
			best = i
		}
	}
	c := poly[best]
	nt := t.addTri(a, b, c)
	// Recurse on the sub-polygons poly[0..best] (between b and c) and
	// poly[best..n-1] (between c and a).
	if best >= 1 {
		sub := append([]int32{}, poly[:best+1]...)
		// Closing edge of sub is c -> b = (poly[best] -> poly[0]); our
		// triangle's edge 1 is (b, c), the twin.
		st, se := t.fillPolygon(sub, edgeTri)
		if st != invalid {
			t.link(nt, 1, st, se)
		} else {
			t.hookEdge(nt, 1, b, c, edgeTri)
		}
	}
	if best <= n-2 {
		sub := append([]int32{}, poly[best:]...)
		// Closing edge of sub is a -> c; our edge 2 is (c, a).
		st, se := t.fillPolygon(sub, edgeTri)
		if st != invalid {
			t.link(nt, 2, st, se)
		} else {
			t.hookEdge(nt, 2, c, a, edgeTri)
		}
	}
	return nt, 0
}

// hookEdge links edge e of triangle nt, whose directed edge is (u, v), to
// the outside neighbor recorded in edgeTri, restoring the constraint flag.
func (t *Triangulation) hookEdge(nt, e, u, v int32, edgeTri map[[2]int32]halfRef) {
	if hr, ok := edgeTri[[2]int32{u, v}]; ok {
		t.link(nt, e, hr.tri, hr.e)
		t.tris[nt].C[e] = hr.c
		if hr.tri != invalid {
			t.tris[hr.tri].C[hr.e] = hr.c
		}
	}
}

// firstCrossing finds the triangle incident to vertex a whose opposite edge
// is crossed by the ray from a toward target, returning the triangle and
// the crossed edge's index. invalid is returned when the segment's first
// obstacle is a vertex exactly on the line.
func (t *Triangulation) firstCrossing(a int32, target geom.Point) (int32, int32) {
	pa := t.pts[a]
	start := t.vtri[a]
	if start == invalid || t.tris[start].Dead {
		start = t.findIncident(a)
		if start == invalid {
			return invalid, invalid
		}
	}
	// Walk around vertex a's star using the shared traversal scratch.
	mark := t.beginStarWalk()
	epoch := t.starEpoch
	stack := append(t.starStack, start)
	defer func() { t.starStack = stack[:0] }()
	for len(stack) > 0 {
		ti := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if mark[ti] == epoch {
			continue
		}
		mark[ti] = epoch
		tr := t.tris[ti]
		ai := int32(-1)
		for i := int32(0); i < 3; i++ {
			if tr.V[i] == a {
				ai = i
				break
			}
		}
		if ai < 0 {
			continue
		}
		// Opposite edge is (V[ai+1], V[ai+2]).
		u := tr.V[(ai+1)%3]
		w := tr.V[(ai+2)%3]
		su := geom.Orient2DSign(pa, target, t.pts[u])
		sw := geom.Orient2DSign(pa, target, t.pts[w])
		inFront := func(v int32) bool {
			q := t.pts[v]
			return (q.X-pa.X)*(target.X-pa.X)+(q.Y-pa.Y)*(target.Y-pa.Y) > 0
		}
		// The ray toward target exits through the opposite edge (u,w) iff
		// u is strictly right of the line and w strictly left. A collinear
		// star vertex in front of a means the segment passes through a
		// vertex; report no crossing so the caller splits there.
		if su == 0 && inFront(u) {
			return invalid, invalid
		}
		if sw == 0 && inFront(w) {
			return invalid, invalid
		}
		if su < 0 && sw > 0 {
			e := t.edgeIndex(ti, u, w)
			return ti, e
		}
		// Continue around the star through the two edges incident to a.
		for e := int32(0); e < 3; e++ {
			if tr.V[e] == a || tr.V[(e+1)%3] == a {
				nb := tr.N[e]
				if nb != invalid && !t.tris[nb].Dead && mark[nb] != epoch {
					stack = append(stack, nb)
				}
			}
		}
	}
	return invalid, invalid
}

// exitEdge returns the edge index of triangle ti through which the
// directed line (pa, pb) leaves, given that it entered through edge sh.
func (t *Triangulation) exitEdge(ti, sh int32, pa, pb geom.Point) int32 {
	for e := int32(0); e < 3; e++ {
		if e == sh {
			continue
		}
		u := t.tris[ti].V[e]
		w := t.tris[ti].V[(e+1)%3]
		su := geom.Orient2DSign(pa, pb, t.pts[u])
		sw := geom.Orient2DSign(pa, pb, t.pts[w])
		// The directed line enters a CCW triangle through the edge whose
		// first endpoint is left of the line and exits through the edge
		// whose first endpoint is right of it.
		if su < 0 && sw > 0 {
			return e
		}
	}
	// Degenerate: should be handled by the on-segment vertex case upstream.
	for e := int32(0); e < 3; e++ {
		if e != sh {
			return e
		}
	}
	return 0
}

// vertexOnSegment returns a vertex of a's star that lies exactly on the
// open segment (a, b), or invalid.
func (t *Triangulation) vertexOnSegment(a, b int32) int32 {
	pa, pb := t.pts[a], t.pts[b]
	var found int32 = invalid
	t.visitStar(a, func(ti int32) bool {
		tr := t.tris[ti]
		for i := 0; i < 3; i++ {
			v := tr.V[i]
			if v == a || v == b {
				continue
			}
			p := t.pts[v]
			if geom.Orient2DSign(pa, pb, p) == 0 {
				// Within the open segment?
				if (p.X-pa.X)*(p.X-pb.X)+(p.Y-pa.Y)*(p.Y-pb.Y) < 0 {
					found = v
					return false
				}
			}
		}
		return true
	})
	return found
}

// beginStarWalk resets the shared star-traversal scratch and returns the
// marker slice. A triangle counts as visited in the current traversal iff
// its mark equals t.starEpoch, so the reset is one increment; the marker
// array only needs re-zeroing on epoch wraparound.
func (t *Triangulation) beginStarWalk() []uint32 {
	if len(t.starMark) < len(t.tris) {
		t.starMark = append(t.starMark, make([]uint32, len(t.tris)-len(t.starMark))...)
	}
	t.starEpoch++
	if t.starEpoch == 0 {
		for i := range t.starMark {
			t.starMark[i] = 0
		}
		t.starEpoch = 1
	}
	t.starStack = t.starStack[:0]
	return t.starMark
}

// visitStar calls f for every live triangle incident to vertex v until f
// returns false. The traversal scratch is reused across calls; f must not
// start a nested star traversal.
func (t *Triangulation) visitStar(v int32, f func(ti int32) bool) {
	start := t.vtri[v]
	if start == invalid || t.tris[start].Dead {
		start = t.findIncident(v)
		if start == invalid {
			return
		}
	}
	mark := t.beginStarWalk()
	epoch := t.starEpoch
	stack := append(t.starStack, start)
	for len(stack) > 0 {
		ti := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if mark[ti] == epoch || t.tris[ti].Dead {
			continue
		}
		mark[ti] = epoch
		tr := t.tris[ti]
		has := false
		for i := 0; i < 3; i++ {
			if tr.V[i] == v {
				has = true
				break
			}
		}
		if !has {
			continue
		}
		if !f(ti) {
			t.starStack = stack[:0]
			return
		}
		for e := int32(0); e < 3; e++ {
			if tr.V[e] == v || tr.V[(e+1)%3] == v {
				nb := tr.N[e]
				if nb != invalid && mark[nb] != epoch {
					stack = append(stack, nb)
				}
			}
		}
	}
	t.starStack = stack[:0]
}

// findIncident scans for any live triangle incident to v (slow fallback).
func (t *Triangulation) findIncident(v int32) int32 {
	for i := range t.tris {
		if t.tris[i].Dead {
			continue
		}
		for k := 0; k < 3; k++ {
			if t.tris[i].V[k] == v {
				return int32(i)
			}
		}
	}
	return invalid
}

// findEdge returns a live triangle and edge index whose directed edge is
// (a, b), or (invalid, -1).
func (t *Triangulation) findEdge(a, b int32) (int32, int32) {
	var rt, re int32 = invalid, -1
	t.visitStar(a, func(ti int32) bool {
		if e := t.edgeIndex(ti, a, b); e >= 0 {
			rt, re = ti, e
			return false
		}
		return true
	})
	return rt, re
}

// setConstrained sets the constraint flag on edge e of triangle ti and on
// its twin.
func (t *Triangulation) setConstrained(ti, e int32, c bool) {
	t.tris[ti].C[e] = c
	nb := t.tris[ti].N[e]
	if nb != invalid {
		a, b := t.tris[ti].V[e], t.tris[ti].V[(e+1)%3]
		if be := t.edgeIndex(nb, b, a); be >= 0 {
			t.tris[nb].C[be] = c
		}
	}
}

// insertOnConstraint inserts a point lying exactly on a constrained edge,
// splitting the constraint into two constrained sub-segments.
func (t *Triangulation) insertOnConstraint(p geom.Point, loc location) (int32, error) {
	ti, e := loc.t, loc.e
	a := t.tris[ti].V[e]
	b := t.tris[ti].V[(e+1)%3]
	t.setConstrained(ti, e, false)
	v := t.addPoint(p)
	t.digCavity(v, loc)
	// Restore the two halves as constraints.
	for _, pair := range [2][2]int32{{a, v}, {v, b}} {
		if ct, ce := t.findEdge(pair[0], pair[1]); ct != invalid {
			t.setConstrained(ct, ce, true)
		} else {
			return v, fmt.Errorf("delaunay: split constraint edge (%d,%d) missing after insertion", pair[0], pair[1])
		}
	}
	return v, nil
}
