// Package delaunay implements the sequential meshing kernel that plays the
// role of Shewchuk's Triangle in the paper: a constrained Delaunay
// triangulator with Ruppert-style quality refinement driven by a
// circumradius-to-shortest-edge bound and a user sizing function.
//
// The triangulation is built incrementally (Bowyer–Watson) inside a
// bounding box whose four corners are real auxiliary vertices, so every
// inserted point lies strictly inside the current triangulation and no
// symbolic ghost handling is needed. Constrained segments are recovered by
// cavity retriangulation, the exterior and holes are carved by flood fill
// across unconstrained edges, and refinement inserts circumcenters and
// constraint midpoints until all interior triangles meet the quality and
// size bounds. All orientation and incircle decisions use the robust
// adaptive predicates from the geom package.
package delaunay

import (
	"errors"
	"fmt"

	"pamg2d/internal/geom"
)

// invalid marks an absent neighbor or vertex slot.
const invalid = int32(-1)

// Tri is one triangle of the triangulation. V holds the vertex indices in
// counter-clockwise order. N[i] is the neighbor across edge i, where edge i
// connects V[i] to V[(i+1)%3]. C[i] reports whether edge i is a constrained
// (PSLG) edge. Outside marks triangles carved away as exterior or hole
// area; they stay in the data structure to keep adjacency walks simple but
// are excluded from the output mesh and from refinement.
type Tri struct {
	V       [3]int32
	N       [3]int32
	C       [3]bool
	Dead    bool
	Outside bool
}

// Triangulation is an incremental constrained Delaunay triangulation.
type Triangulation struct {
	pts  []geom.Point
	tris []Tri
	free []int32 // indices of dead triangles available for reuse

	// vtri[v] is some live triangle incident to vertex v, used to seed
	// point-location walks and vertex star traversals.
	vtri []int32

	// corner[i] are the four auxiliary bounding-box vertices.
	corner [4]int32

	// last is the most recently created or visited triangle, the walk seed.
	last int32

	// carved reports that Carve ran; refinement requires it.
	carved bool

	// scratch is the sequential insertion path's cavity-search state,
	// reused across insertions to avoid per-insert allocation. The
	// concurrent engine (parallel.go) shards this state instead: each
	// pending point carries its own cavScratch so cavity searches from
	// multiple workers never share buffers.
	scratch cavScratch

	// starMark/starStack/starEpoch are the star-traversal scratch shared by
	// visitStar and firstCrossing (never active at the same time): a
	// triangle is visited in the current traversal iff starMark[ti] equals
	// starEpoch, so resetting between traversals is a single increment.
	starMark  []uint32
	starStack []int32
	starEpoch uint32

	// refSegs and refTris hold the refiner's worklists between Refine
	// calls so repeated refinement passes reuse their backing arrays.
	refSegs []segRef
	refTris []triRef

	// binGrid, when non-nil, hashes points to cells and binSeed remembers
	// the most recent vertex per cell; locate starts its walk from that
	// vertex when it is closer to the query than the default seed. Enabled
	// by Build for inputs without spatial coherence.
	binGrid *geom.Grid
	binSeed []int32
}

// fanEdge is one open edge of the cavity fan under construction: the
// directed edge between the new vertex v and another cavity-boundary
// vertex, waiting to be linked to the sibling fan triangle that shares it.
type fanEdge struct {
	other  int32 // the non-v endpoint
	tri, e int32 // fan triangle and its edge index
	fromV  bool  // directed (v, other) if true, (other, v) otherwise
}

type cavityEdge struct {
	a, b    int32 // directed edge of the cavity boundary (cavity on the left)
	t       int32 // triangle outside the cavity across this edge (invalid if none)
	te      int32 // edge index within t matching (b,a)
	c       bool  // constrained flag carried over from the removed triangle
	outside bool  // carved-exterior flag of the removed triangle
}

// cavScratch is one insertion's cavity-search scratch: the cavity triangle
// list, its directed boundary edges, the breadth-first search worklist,
// and commit's open fan-edge list. The triangulation owns one for the
// sequential path; the concurrent engine keeps one per pending point so
// cavity searches and commits run without shared buffers.
type cavScratch struct {
	cavityTris  []int32
	cavityEdges []cavityEdge
	stack       []int32
	fanOpen     []fanEdge
}

// ErrDuplicate is returned by InsertPoint for a point that coincides with
// an existing vertex.
var ErrDuplicate = errors.New("delaunay: duplicate point")

// ErrOutside is returned for a point outside the triangulation's bounding
// box.
var ErrOutside = errors.New("delaunay: point outside bounding box")

// New creates a triangulation whose working area is the given bounding box
// inflated by a margin. All points inserted later must lie within the
// original box.
func New(bb geom.BBox) *Triangulation { return NewCap(bb, 0) }

// NewCap is New with a capacity hint: the expected number of points to be
// inserted. The vertex and triangle stores are preallocated from the hint
// (an incremental Delaunay triangulation of n points holds about 2n live
// triangles), eliminating append regrowth during bulk insertion.
func NewCap(bb geom.BBox, expectPoints int) *Triangulation {
	if bb.Empty() {
		bb = geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}
	}
	// Inflate generously so circumcircles of skinny boundary triangles stay
	// well-behaved and domain points never touch the auxiliary frame.
	d := bb.Width() + bb.Height()
	if d == 0 {
		d = 1
	}
	bb = bb.Inflate(d)
	t := &Triangulation{last: 0}
	if expectPoints > 0 {
		t.pts = make([]geom.Point, 0, expectPoints+4)
		t.vtri = make([]int32, 0, expectPoints+4)
		t.tris = make([]Tri, 0, 2*expectPoints+16)
	}
	c0 := t.addPoint(geom.Pt(bb.Min.X, bb.Min.Y))
	c1 := t.addPoint(geom.Pt(bb.Max.X, bb.Min.Y))
	c2 := t.addPoint(geom.Pt(bb.Max.X, bb.Max.Y))
	c3 := t.addPoint(geom.Pt(bb.Min.X, bb.Max.Y))
	t.corner = [4]int32{c0, c1, c2, c3}
	// Two seed triangles: (c0,c1,c2) and (c0,c2,c3), both CCW.
	t0 := t.addTri(c0, c1, c2)
	t1 := t.addTri(c0, c2, c3)
	t.tris[t0].N[2] = t1 // edge c2->c0
	t.tris[t1].N[0] = t0 // edge c0->c2
	return t
}

// NumPoints returns the number of vertices including the four auxiliary
// bounding-box corners.
func (t *Triangulation) NumPoints() int { return len(t.pts) }

// Point returns vertex v's coordinates.
func (t *Triangulation) Point(v int32) geom.Point { return t.pts[v] }

// IsCorner reports whether v is one of the four auxiliary frame vertices.
func (t *Triangulation) IsCorner(v int32) bool {
	for _, c := range t.corner {
		if c == v {
			return true
		}
	}
	return false
}

func (t *Triangulation) addPoint(p geom.Point) int32 {
	t.pts = append(t.pts, p)
	t.vtri = append(t.vtri, invalid)
	v := int32(len(t.pts) - 1)
	if t.binGrid != nil {
		t.binSeed[t.binGrid.Cell(p)] = v
	}
	return v
}

// EnableBinSeeding turns on spatially hashed walk seeds for locate: points
// hash to cells of a uniform grid over bb, and each insertion remembers its
// vertex in its cell so later queries nearby start their walk there. This
// is the cheap BRIO-style accelerator for insertion orders without spatial
// coherence; expectPoints sizes the grid (about two points per cell). The
// already-inserted vertices seed their cells immediately.
func (t *Triangulation) EnableBinSeeding(bb geom.BBox, expectPoints int) {
	cells := expectPoints / 2
	if cells < 1 {
		cells = 1
	}
	t.binGrid = geom.NewGrid(bb, cells)
	t.binSeed = make([]int32, t.binGrid.NumCells())
	for i := range t.binSeed {
		t.binSeed[i] = invalid
	}
	for v, p := range t.pts {
		t.binSeed[t.binGrid.Cell(p)] = int32(v)
	}
}

func (t *Triangulation) addTri(a, b, c int32) int32 {
	var idx int32
	if n := len(t.free); n > 0 {
		idx = t.free[n-1]
		t.free = t.free[:n-1]
		t.tris[idx] = Tri{V: [3]int32{a, b, c}, N: [3]int32{invalid, invalid, invalid}}
	} else {
		t.tris = append(t.tris, Tri{V: [3]int32{a, b, c}, N: [3]int32{invalid, invalid, invalid}})
		idx = int32(len(t.tris) - 1)
	}
	t.vtri[a] = idx
	t.vtri[b] = idx
	t.vtri[c] = idx
	t.last = idx
	return idx
}

func (t *Triangulation) killTri(ti int32) {
	t.tris[ti].Dead = true
	t.free = append(t.free, ti)
}

// edgeIndex returns the edge index e of triangle ti such that the directed
// edge (V[e], V[e+1]) equals (a, b), or -1.
func (t *Triangulation) edgeIndex(ti, a, b int32) int32 {
	tr := &t.tris[ti]
	for e := int32(0); e < 3; e++ {
		if tr.V[e] == a && tr.V[(e+1)%3] == b {
			return e
		}
	}
	return -1
}

// link makes ta (edge ea) and tb (edge eb) mutual neighbors. Either side
// may be invalid.
func (t *Triangulation) link(ta, ea, tb, eb int32) {
	if ta != invalid {
		t.tris[ta].N[ea] = tb
	}
	if tb != invalid {
		t.tris[tb].N[eb] = ta
	}
}

// InsertPoint adds p to the triangulation and returns its vertex index.
// Points must lie strictly inside the working bounding box. Duplicate
// points return the existing vertex index together with ErrDuplicate.
func (t *Triangulation) InsertPoint(p geom.Point) (int32, error) {
	loc := t.locate(p)
	switch loc.kind {
	case locOutside:
		return -1, ErrOutside
	case locVertex:
		return loc.v, ErrDuplicate
	case locEdge:
		if t.tris[loc.t].C[loc.e] {
			// Splitting a constrained segment: clear the constraint, open
			// the cavity on both sides, and re-constrain the two halves.
			return t.insertOnConstraint(p, loc)
		}
	}
	v := t.addPoint(p)
	t.digCavity(v, loc)
	return v, nil
}

// digCavity removes every triangle whose circumcircle strictly contains
// vertex v's point (never crossing constrained edges), then retriangulates
// the star-shaped hole by fanning v to the cavity boundary.
func (t *Triangulation) digCavity(v int32, loc location) {
	t.computeCavity(t.pts[v], loc)
	t.commitCavity(v)
}

// computeCavity fills the sequential scratch's cavityTris and cavityEdges
// for inserting point p at location loc, without mutating the
// triangulation.
func (t *Triangulation) computeCavity(p geom.Point, loc location) {
	t.computeCavityInto(p, loc, &t.scratch)
}

// computeCavityInto is computeCavity writing into the given scratch. It
// only reads the triangulation, so concurrent cavity searches with private
// scratches can share one topology snapshot.
func (t *Triangulation) computeCavityInto(p geom.Point, loc location, s *cavScratch) {
	s.cavityTris = s.cavityTris[:0]
	s.cavityEdges = s.cavityEdges[:0]

	inCavity := func(ti int32) bool {
		for _, c := range s.cavityTris {
			if c == ti {
				return true
			}
		}
		return false
	}

	// Seed triangles: the containing triangle, or both triangles sharing
	// the containing edge.
	s.stack = s.stack[:0]
	push := func(ti int32) {
		if ti == invalid || t.tris[ti].Dead || inCavity(ti) {
			return
		}
		s.cavityTris = append(s.cavityTris, ti)
		s.stack = append(s.stack, ti)
	}
	push(loc.t)
	if loc.kind == locEdge {
		// Also seed the triangle on the other side of the edge, unless the
		// edge is constrained (a point exactly on a constrained segment
		// still opens the cavity on both sides only via splitConstraint,
		// which clears the flag first).
		if !t.tris[loc.t].C[loc.e] {
			push(t.tris[loc.t].N[loc.e])
		}
	}

	for len(s.stack) > 0 {
		ti := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		tr := t.tris[ti]
		for e := int32(0); e < 3; e++ {
			nb := tr.N[e]
			if tr.C[e] {
				continue // never grow the cavity across a constraint
			}
			if nb == invalid || t.tris[nb].Dead {
				continue
			}
			if inCavity(nb) {
				continue
			}
			ntr := t.tris[nb]
			if geom.InCircle(t.pts[ntr.V[0]], t.pts[ntr.V[1]], t.pts[ntr.V[2]], p) > 0 {
				s.cavityTris = append(s.cavityTris, nb)
				s.stack = append(s.stack, nb)
			}
		}
	}

	// Collect the directed boundary edges of the cavity.
	for _, ti := range s.cavityTris {
		tr := t.tris[ti]
		for e := int32(0); e < 3; e++ {
			nb := tr.N[e]
			if nb != invalid && !t.tris[nb].Dead && inCavity(nb) && !tr.C[e] {
				continue // interior cavity edge
			}
			a := tr.V[e]
			b := tr.V[(e+1)%3]
			var te int32 = -1
			if nb != invalid {
				te = t.edgeIndex(nb, b, a)
			}
			s.cavityEdges = append(s.cavityEdges, cavityEdge{a: a, b: b, t: nb, te: te, c: tr.C[e], outside: tr.Outside})
		}
	}
}

// commitCavity removes the triangles found by computeCavity and fans
// vertex v to the cavity boundary.
func (t *Triangulation) commitCavity(v int32) {
	for _, ti := range t.scratch.cavityTris {
		t.killTri(ti)
	}

	// Fan v to each boundary edge, then stitch neighbor pointers between
	// consecutive fan triangles. Every interior fan edge is shared by
	// exactly two fan triangles, so a small open-edge list with linear
	// matching replaces a per-insert map: cavities are tiny (a handful of
	// edges), making the scan cheaper than hashing and allocation-free.
	open := t.scratch.fanOpen[:0]
	match := func(other int32, fromV bool) (fanEdge, bool) {
		for i := range open {
			if open[i].other == other && open[i].fromV == fromV {
				fe := open[i]
				open[i] = open[len(open)-1]
				open = open[:len(open)-1]
				return fe, true
			}
		}
		return fanEdge{}, false
	}
	for _, ce := range t.scratch.cavityEdges {
		nt := t.addTri(v, ce.a, ce.b)
		// Each fan triangle lies on the same side of any constraint as the
		// removed triangle that contributed its boundary edge, so it
		// inherits that triangle's carved-exterior status.
		t.tris[nt].Outside = ce.outside
		// Edge 1 is (a,b): the cavity boundary edge.
		t.tris[nt].C[1] = ce.c
		t.link(nt, 1, ce.t, ce.te)
		// Edge 0 is (v,a), edge 2 is (b,v): shared with sibling fan
		// triangles. Match (v,a) against a sibling's (a,v).
		if he, ok := match(ce.a, false); ok {
			t.link(nt, 0, he.tri, he.e)
		} else {
			open = append(open, fanEdge{other: ce.a, tri: nt, e: 0, fromV: true})
		}
		if he, ok := match(ce.b, true); ok {
			t.link(nt, 2, he.tri, he.e)
		} else {
			open = append(open, fanEdge{other: ce.b, tri: nt, e: 2, fromV: false})
		}
	}
	t.scratch.fanOpen = open[:0]
}

// locKind classifies a point-location result.
type locKind int

const (
	locInside locKind = iota
	locEdge
	locVertex
	locOutside
)

type location struct {
	kind locKind
	t    int32 // containing triangle
	e    int32 // edge index for locEdge
	v    int32 // vertex index for locVertex
}

// locate finds the triangle containing p by straight walking from the last
// visited triangle (or, with bin seeding enabled, from the nearest of the
// last triangle and the query cell's remembered vertex), using exact
// orientation tests. The found triangle seeds the next walk.
func (t *Triangulation) locate(p geom.Point) location {
	loc := t.locateFrom(t.last, p)
	if loc.kind != locOutside && loc.t != invalid {
		t.last = loc.t
	}
	return loc
}

// locateFrom is locate's read-only walk: it starts from the given seed
// triangle and never mutates the triangulation, so concurrent locators
// holding private seeds can share one topology snapshot.
func (t *Triangulation) locateFrom(seed int32, p geom.Point) location {
	ti := seed
	if ti == invalid || int(ti) >= len(t.tris) || t.tris[ti].Dead {
		ti = t.anyLive()
		if ti == invalid {
			return location{kind: locOutside}
		}
	}
	if t.binGrid != nil {
		if w := t.binSeed[t.binGrid.Cell(p)]; w != invalid {
			if wt := t.vtri[w]; wt != invalid && !t.tris[wt].Dead {
				if t.pts[w].Dist2(p) < t.pts[t.tris[ti].V[0]].Dist2(p) {
					ti = wt
				}
			}
		}
	}
	maxSteps := 4*len(t.tris) + 16
	for step := 0; step < maxSteps; step++ {
		tr := t.tris[ti]
		var onEdge int32 = -1
		walked := false
		for e := int32(0); e < 3; e++ {
			a := tr.V[e]
			b := tr.V[(e+1)%3]
			s := geom.Orient2DSign(t.pts[a], t.pts[b], p)
			if s < 0 {
				nb := tr.N[e]
				if nb == invalid || t.tris[nb].Dead {
					return location{kind: locOutside}
				}
				ti = nb
				walked = true
				break
			}
			if s == 0 {
				onEdge = e
			}
		}
		if walked {
			continue
		}
		if onEdge >= 0 {
			tr := t.tris[ti]
			a := tr.V[onEdge]
			b := tr.V[(onEdge+1)%3]
			if p == t.pts[a] {
				return location{kind: locVertex, t: ti, v: a}
			}
			if p == t.pts[b] {
				return location{kind: locVertex, t: ti, v: b}
			}
			return location{kind: locEdge, t: ti, e: onEdge}
		}
		return location{kind: locInside, t: ti}
	}
	// The walk failed to terminate (should not happen with exact
	// predicates); fall back to exhaustive search.
	return t.locateExhaustive(p)
}

func (t *Triangulation) locateExhaustive(p geom.Point) location {
	for i := range t.tris {
		if t.tris[i].Dead {
			continue
		}
		tr := t.tris[i]
		var onEdge int32 = -1
		inside := true
		for e := int32(0); e < 3; e++ {
			s := geom.Orient2DSign(t.pts[tr.V[e]], t.pts[tr.V[(e+1)%3]], p)
			if s < 0 {
				inside = false
				break
			}
			if s == 0 {
				onEdge = e
			}
		}
		if !inside {
			continue
		}
		ti := int32(i)
		if onEdge >= 0 {
			a := tr.V[onEdge]
			b := tr.V[(onEdge+1)%3]
			if p == t.pts[a] {
				return location{kind: locVertex, t: ti, v: a}
			}
			if p == t.pts[b] {
				return location{kind: locVertex, t: ti, v: b}
			}
			return location{kind: locEdge, t: ti, e: onEdge}
		}
		return location{kind: locInside, t: ti}
	}
	return location{kind: locOutside}
}

func (t *Triangulation) anyLive() int32 {
	for i := range t.tris {
		if !t.tris[i].Dead {
			return int32(i)
		}
	}
	return invalid
}

// checkInvariants validates adjacency symmetry, CCW orientation and the
// (constrained) Delaunay property of every live triangle. It is meant for
// tests and costs O(n^2) in the Delaunay check.
func (t *Triangulation) checkInvariants(full bool) error {
	for i := range t.tris {
		tr := t.tris[i]
		if tr.Dead {
			continue
		}
		a, b, c := t.pts[tr.V[0]], t.pts[tr.V[1]], t.pts[tr.V[2]]
		if geom.Orient2DSign(a, b, c) <= 0 {
			return fmt.Errorf("triangle %d not CCW: %v %v %v", i, a, b, c)
		}
		for e := int32(0); e < 3; e++ {
			nb := tr.N[e]
			if nb == invalid {
				continue
			}
			if t.tris[nb].Dead {
				return fmt.Errorf("triangle %d edge %d points to dead neighbor %d", i, e, nb)
			}
			va, vb := tr.V[e], tr.V[(e+1)%3]
			back := t.edgeIndex(nb, vb, va)
			if back < 0 {
				return fmt.Errorf("triangle %d edge %d (%d,%d): neighbor %d lacks reverse edge", i, e, va, vb, nb)
			}
			if t.tris[nb].N[back] != int32(i) {
				return fmt.Errorf("triangle %d edge %d: asymmetric adjacency with %d", i, e, nb)
			}
			if tr.C[e] != t.tris[nb].C[back] {
				return fmt.Errorf("triangle %d edge %d: constraint flag mismatch with %d", i, e, nb)
			}
		}
	}
	if !full {
		return nil
	}
	// Local Delaunay check: for each unconstrained interior edge, the
	// opposite vertex of the neighbor must not be strictly inside the
	// circumcircle.
	for i := range t.tris {
		tr := t.tris[i]
		if tr.Dead {
			continue
		}
		for e := int32(0); e < 3; e++ {
			nb := tr.N[e]
			if nb == invalid || tr.C[e] {
				continue
			}
			va, vb := tr.V[e], tr.V[(e+1)%3]
			back := t.edgeIndex(nb, vb, va)
			opp := t.tris[nb].V[(back+2)%3]
			if geom.InCircle(t.pts[tr.V[0]], t.pts[tr.V[1]], t.pts[tr.V[2]], t.pts[opp]) > 0 {
				return fmt.Errorf("edge (%d,%d) of triangle %d is not locally Delaunay", va, vb, i)
			}
		}
	}
	return nil
}

// triArea returns twice the signed area of triangle ti.
func (t *Triangulation) triArea(ti int32) float64 {
	tr := t.tris[ti]
	return geom.Orient2D(t.pts[tr.V[0]], t.pts[tr.V[1]], t.pts[tr.V[2]])
}

// LiveTriangles returns the number of live (not dead) triangles, including
// carved-outside ones.
func (t *Triangulation) LiveTriangles() int {
	n := 0
	for i := range t.tris {
		if !t.tris[i].Dead {
			n++
		}
	}
	return n
}

// InteriorTriangles returns the number of live interior (not carved)
// triangles.
func (t *Triangulation) InteriorTriangles() int {
	n := 0
	for i := range t.tris {
		if !t.tris[i].Dead && !t.tris[i].Outside {
			n++
		}
	}
	return n
}
