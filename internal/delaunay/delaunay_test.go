package delaunay

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pamg2d/internal/geom"
)

// buildPlain triangulates a raw point set (no constraints) and returns the
// live triangulation for invariant checks.
func buildPlain(t *testing.T, pts []geom.Point) *Triangulation {
	t.Helper()
	tr := New(geom.BBoxOf(pts))
	for i, p := range pts {
		if _, err := tr.InsertPoint(p); err != nil && err != ErrDuplicate {
			t.Fatalf("insert %d %v: %v", i, p, err)
		}
	}
	return tr
}

func TestInsertSinglePoint(t *testing.T) {
	tr := New(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)})
	v, err := tr.InsertPoint(geom.Pt(0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if v != 4 {
		t.Errorf("vertex index = %d, want 4 (after four corners)", v)
	}
	if err := tr.CheckDelaunay(true); err != nil {
		t.Fatal(err)
	}
	// 2 seed triangles split into a fan: the cavity around a point inside
	// one triangle has at least 3 boundary edges.
	if n := tr.LiveTriangles(); n < 4 {
		t.Errorf("live triangles = %d, want >= 4", n)
	}
}

func TestInsertDuplicate(t *testing.T) {
	tr := New(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)})
	v1, err := tr.InsertPoint(geom.Pt(0.25, 0.75))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := tr.InsertPoint(geom.Pt(0.25, 0.75))
	if err != ErrDuplicate {
		t.Fatalf("duplicate insert: err = %v, want ErrDuplicate", err)
	}
	if v1 != v2 {
		t.Errorf("duplicate returned %d, want %d", v2, v1)
	}
}

func TestInsertOnEdge(t *testing.T) {
	tr := New(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(4, 4)})
	a, _ := tr.InsertPoint(geom.Pt(1, 1))
	b, _ := tr.InsertPoint(geom.Pt(3, 3))
	_ = a
	_ = b
	// The midpoint (2,2) lies exactly on edge (1,1)-(3,3) if that edge
	// exists; either way insertion must keep the structure valid.
	if _, err := tr.InsertPoint(geom.Pt(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckDelaunay(true); err != nil {
		t.Fatal(err)
	}
}

func TestGridDelaunayInvariant(t *testing.T) {
	var pts []geom.Point
	for i := 0; i <= 6; i++ {
		for j := 0; j <= 6; j++ {
			pts = append(pts, geom.Pt(float64(i), float64(j)))
		}
	}
	tr := buildPlain(t, pts)
	if err := tr.CheckDelaunay(true); err != nil {
		t.Fatal(err)
	}
}

func TestCocircularGrid(t *testing.T) {
	// A perfect grid has massively cocircular quadruples; the kernel must
	// produce some valid triangulation without violating invariants.
	var pts []geom.Point
	for i := 0; i <= 10; i++ {
		for j := 0; j <= 10; j++ {
			pts = append(pts, geom.Pt(float64(i), float64(j)))
		}
	}
	tr := buildPlain(t, pts)
	if err := tr.CheckDelaunay(false); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDelaunayProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
		}
		tr := New(geom.BBoxOf(pts))
		for _, p := range pts {
			if _, err := tr.InsertPoint(p); err != nil && err != ErrDuplicate {
				return false
			}
		}
		return tr.CheckDelaunay(true) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCollinearInput(t *testing.T) {
	pts := []geom.Point{}
	for i := 0; i < 20; i++ {
		pts = append(pts, geom.Pt(float64(i), 2))
	}
	tr := buildPlain(t, pts)
	if err := tr.CheckDelaunay(true); err != nil {
		t.Fatal(err)
	}
}

func TestTriangulateSquare(t *testing.T) {
	in := Input{
		Points:   []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)},
		Segments: [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
	res, err := Triangulate(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Triangles) != 2 {
		t.Errorf("square: %d triangles, want 2", len(res.Triangles))
	}
	if len(res.Points) != 4 {
		t.Errorf("square: %d points, want 4", len(res.Points))
	}
	checkResult(t, res)
}

// checkResult validates CCW orientation, no duplicate triangles, and area
// conservation against the polygon the constrained edges bound.
func checkResult(t *testing.T, res *Result) {
	t.Helper()
	seen := map[[3]int32]bool{}
	for i, tri := range res.Triangles {
		a, b, c := res.Points[tri[0]], res.Points[tri[1]], res.Points[tri[2]]
		if geom.Orient2DSign(a, b, c) <= 0 {
			t.Fatalf("triangle %d not CCW", i)
		}
		key := tri
		if seen[key] {
			t.Fatalf("duplicate triangle %v", tri)
		}
		seen[key] = true
	}
}

func meshArea(res *Result) float64 {
	var sum float64
	for _, tri := range res.Triangles {
		sum += math.Abs(geom.TriangleArea(res.Points[tri[0]], res.Points[tri[1]], res.Points[tri[2]]))
	}
	return sum
}

func TestTriangulateConcavePolygon(t *testing.T) {
	// An L-shaped (concave) domain: exterior carving must remove the
	// notch.
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 2), geom.Pt(2, 2), geom.Pt(2, 4), geom.Pt(0, 4),
	}
	segs := [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}
	res, err := Triangulate(Input{Points: pts, Segments: segs})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	if got, want := meshArea(res), 12.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("L-shape area = %v, want %v", got, want)
	}
}

func TestTriangulateWithHole(t *testing.T) {
	// Outer square [0,4]^2 with inner square hole [1,3]^2.
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4),
		geom.Pt(1, 1), geom.Pt(3, 1), geom.Pt(3, 3), geom.Pt(1, 3),
	}
	segs := [][2]int32{
		{0, 1}, {1, 2}, {2, 3}, {3, 0},
		{4, 5}, {5, 6}, {6, 7}, {7, 4},
	}
	res, err := Triangulate(Input{Points: pts, Segments: segs, Holes: []geom.Point{geom.Pt(2, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	if got, want := meshArea(res), 16.0-4.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("holed square area = %v, want %v", got, want)
	}
}

func TestSegmentThroughInterior(t *testing.T) {
	// Force a diagonal through a point cloud; it must exist afterwards.
	rng := rand.New(rand.NewSource(5))
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 10)}
	for i := 0; i < 200; i++ {
		pts = append(pts, geom.Pt(rng.Float64()*10, rng.Float64()*10))
	}
	tr := New(geom.BBoxOf(pts))
	ids := make([]int32, len(pts))
	for i, p := range pts {
		v, err := tr.InsertPoint(p)
		if err != nil && err != ErrDuplicate {
			t.Fatal(err)
		}
		ids[i] = v
	}
	if err := tr.InsertSegment(ids[0], ids[1]); err != nil {
		t.Fatal(err)
	}
	if ti, e := tr.findEdge(ids[0], ids[1]); ti == invalid {
		// The segment may have been split at collinear vertices; verify
		// a constrained path from ids[0] to ids[1] along the line exists.
		if !constrainedPathExists(tr, ids[0], ids[1]) {
			t.Fatal("constrained segment missing after insertion")
		}
	} else if !tr.tris[ti].C[e] {
		t.Fatal("edge present but not constrained")
	}
	if err := tr.CheckDelaunay(false); err != nil {
		t.Fatal(err)
	}
}

// constrainedPathExists walks constrained edges collinear with (a, b) from
// a to b.
func constrainedPathExists(tr *Triangulation, a, b int32) bool {
	pa, pb := tr.pts[a], tr.pts[b]
	cur := a
	for steps := 0; steps < 10000; steps++ {
		if cur == b {
			return true
		}
		next := invalid
		tr.visitStar(cur, func(ti int32) bool {
			trr := tr.tris[ti]
			for e := int32(0); e < 3; e++ {
				if trr.V[e] != cur || !trr.C[e] {
					continue
				}
				cand := trr.V[(e+1)%3]
				p := tr.pts[cand]
				if geom.Orient2DSign(pa, pb, p) != 0 {
					continue
				}
				// Progress toward b?
				if (p.X-tr.pts[cur].X)*(pb.X-pa.X)+(p.Y-tr.pts[cur].Y)*(pb.Y-pa.Y) > 0 {
					next = cand
					return false
				}
			}
			return true
		})
		if next == invalid {
			return false
		}
		cur = next
	}
	return false
}

func TestSegmentCrossingConstraintFails(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(4, 4), geom.Pt(0, 4), geom.Pt(4, 0),
	}
	tr := New(geom.BBoxOf(pts))
	ids := make([]int32, len(pts))
	for i, p := range pts {
		ids[i], _ = tr.InsertPoint(p)
	}
	if err := tr.InsertSegment(ids[0], ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := tr.InsertSegment(ids[2], ids[3]); err == nil {
		t.Fatal("crossing constrained segments must fail")
	}
}

func TestBuildSortedMatchesUnsorted(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 100
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*5, rng.Float64()*5)
	}
	res1, err := Triangulate(Input{Points: pts})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-sort and declare Sorted.
	sorted := make([]geom.Point, n)
	copy(sorted, pts)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0; j-- {
			if sorted[j].X < sorted[j-1].X || (sorted[j].X == sorted[j-1].X && sorted[j].Y < sorted[j-1].Y) {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			} else {
				break
			}
		}
	}
	res2, err := Triangulate(Input{Points: sorted, Sorted: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Triangles) != len(res2.Triangles) {
		t.Errorf("triangle counts differ: %d vs %d", len(res1.Triangles), len(res2.Triangles))
	}
	if math.Abs(meshArea(res1)-meshArea(res2)) > 1e-9 {
		t.Errorf("areas differ: %v vs %v", meshArea(res1), meshArea(res2))
	}
}

func TestTriangulateErrors(t *testing.T) {
	if _, err := Triangulate(Input{Points: []geom.Point{geom.Pt(0, 0)}}); err == nil {
		t.Error("too few points must fail")
	}
}

func TestExtractOnlyInterior(t *testing.T) {
	// After carving a square domain, no frame-corner vertex may appear in
	// the result.
	in := Input{
		Points:   []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)},
		Segments: [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
	res, err := Triangulate(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			t.Errorf("point %v outside the domain", p)
		}
	}
}

func TestRefineQuality(t *testing.T) {
	// A long thin rectangle refined with a quality bound: every interior
	// triangle must meet the circumradius-to-shortest-edge bound.
	in := Input{
		Points:   []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 1), geom.Pt(0, 1)},
		Segments: [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
	res, err := TriangulateRefined(in, Quality{MaxRadiusEdgeRatio: math.Sqrt2, MaxArea: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	if math.Abs(meshArea(res)-10) > 1e-6 {
		t.Errorf("refined area = %v, want 10", meshArea(res))
	}
	worst := 0.0
	for _, tri := range res.Triangles {
		a, b, c := res.Points[tri[0]], res.Points[tri[1]], res.Points[tri[2]]
		if r := geom.CircumradiusToShortestEdge(a, b, c); r > worst {
			worst = r
		}
		if area := math.Abs(geom.TriangleArea(a, b, c)); area > 0.2+1e-9 {
			t.Errorf("triangle area %v exceeds bound", area)
		}
	}
	if worst > math.Sqrt2+1e-9 {
		t.Errorf("worst radius-edge ratio %v exceeds sqrt(2)", worst)
	}
	if len(res.Triangles) < 60 {
		t.Errorf("refinement made only %d triangles; expected >= 60 for area 10 at max 0.2", len(res.Triangles))
	}
}

func TestRefineSizingFunction(t *testing.T) {
	// Sizing that demands tiny triangles near the origin corner and large
	// ones far away.
	in := Input{
		Points:   []geom.Point{geom.Pt(0, 0), geom.Pt(8, 0), geom.Pt(8, 8), geom.Pt(0, 8)},
		Segments: [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
	size := func(p geom.Point) float64 {
		d := math.Hypot(p.X, p.Y)
		return 0.01 + 0.05*d*d
	}
	res, err := TriangulateRefined(in, Quality{MaxRadiusEdgeRatio: math.Sqrt2, SizeAt: size})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	// Triangles near the origin must be smaller than triangles near the
	// far corner on average.
	var nearSum, nearN, farSum, farN float64
	for _, tri := range res.Triangles {
		a, b, c := res.Points[tri[0]], res.Points[tri[1]], res.Points[tri[2]]
		cx, cy := (a.X+b.X+c.X)/3, (a.Y+b.Y+c.Y)/3
		area := math.Abs(geom.TriangleArea(a, b, c))
		if d := math.Hypot(cx, cy); d < 2 {
			nearSum += area
			nearN++
		} else if d > 8 {
			farSum += area
			farN++
		}
	}
	if nearN == 0 || farN == 0 {
		t.Fatal("sampling regions empty")
	}
	if nearSum/nearN >= farSum/farN {
		t.Errorf("graded sizing failed: near avg %v >= far avg %v", nearSum/nearN, farSum/farN)
	}
}

func TestRefineHoleDomain(t *testing.T) {
	// Refinement must not fill the hole back in.
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(6, 0), geom.Pt(6, 6), geom.Pt(0, 6),
		geom.Pt(2, 2), geom.Pt(4, 2), geom.Pt(4, 4), geom.Pt(2, 4),
	}
	segs := [][2]int32{
		{0, 1}, {1, 2}, {2, 3}, {3, 0},
		{4, 5}, {5, 6}, {6, 7}, {7, 4},
	}
	res, err := TriangulateRefined(
		Input{Points: pts, Segments: segs, Holes: []geom.Point{geom.Pt(3, 3)}},
		Quality{MaxRadiusEdgeRatio: math.Sqrt2, MaxArea: 0.5},
	)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	if got, want := meshArea(res), 36.0-4.0; math.Abs(got-want) > 1e-6 {
		t.Errorf("area = %v, want %v", got, want)
	}
	for _, tri := range res.Triangles {
		a, b, c := res.Points[tri[0]], res.Points[tri[1]], res.Points[tri[2]]
		cx, cy := (a.X+b.X+c.X)/3, (a.Y+b.Y+c.Y)/3
		if cx > 2 && cx < 4 && cy > 2 && cy < 4 {
			t.Fatalf("triangle centroid (%v,%v) inside the hole", cx, cy)
		}
	}
}

func TestRefineMaxPoints(t *testing.T) {
	in := Input{
		Points:   []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)},
		Segments: [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
	_, err := TriangulateRefined(in, Quality{MaxArea: 1e-7, MaxPoints: 50})
	if err == nil {
		t.Error("MaxPoints cap must abort runaway refinement")
	}
}

func TestResultConstrainedFlags(t *testing.T) {
	in := Input{
		Points:   []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)},
		Segments: [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
	res, err := Triangulate(in)
	if err != nil {
		t.Fatal(err)
	}
	// Every border edge must be flagged; the one interior diagonal not.
	nConstrained := 0
	for i := range res.Triangles {
		for e := 0; e < 3; e++ {
			if res.Constrained[i][e] {
				nConstrained++
			}
		}
	}
	if nConstrained != 4 {
		t.Errorf("constrained edge flags = %d, want 4", nConstrained)
	}
}

func BenchmarkInsertRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 5000)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	bb := geom.BBoxOf(pts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New(bb)
		for _, p := range pts {
			tr.InsertPoint(p)
		}
	}
}

func BenchmarkTriangulateSorted(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 5000)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Triangulate(Input{Points: pts}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRefineUnitSquare(b *testing.B) {
	in := Input{
		Points:   []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)},
		Segments: [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TriangulateRefined(in, Quality{MaxRadiusEdgeRatio: math.Sqrt2, MaxArea: 1e-3}); err != nil {
			b.Fatal(err)
		}
	}
}
