package delaunay_test

import (
	"fmt"
	"math"

	"pamg2d/internal/delaunay"
	"pamg2d/internal/geom"
)

// ExampleTriangulate builds the constrained Delaunay triangulation of a
// square with a forced diagonal.
func ExampleTriangulate() {
	res, err := delaunay.Triangulate(delaunay.Input{
		Points: []geom.Point{
			geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1),
		},
		Segments: [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("triangles:", len(res.Triangles))
	fmt.Println("points:", len(res.Points))
	// Output:
	// triangles: 2
	// points: 4
}

// ExampleTriangulateRefined refines a unit square to a quality and area
// bound, the way the pipeline refines each decoupled subdomain.
func ExampleTriangulateRefined() {
	res, err := delaunay.TriangulateRefined(delaunay.Input{
		Points: []geom.Point{
			geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1),
		},
		Segments: [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}, delaunay.Quality{
		MaxRadiusEdgeRatio: math.Sqrt2, // Ruppert's bound: min angle 20.7 deg
		MaxArea:            0.05,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var area float64
	ok := true
	for _, tri := range res.Triangles {
		a, b, c := res.Points[tri[0]], res.Points[tri[1]], res.Points[tri[2]]
		t := math.Abs(geom.TriangleArea(a, b, c))
		area += t
		if t > 0.05 {
			ok = false
		}
	}
	fmt.Printf("area preserved: %.4f\n", area)
	fmt.Println("all under the bound:", ok)
	// Output:
	// area preserved: 1.0000
	// all under the bound: true
}
