package delaunay

// Concurrent point insertion: the intra-rank parallel Bowyer–Watson
// engine. The paper parallelizes across subdomains; this file parallelizes
// inside one, following the independent-set batching of Spielman–Teng–
// Üngör's parallel Delaunay refinement (and TriMe++'s multi-threaded
// variant): a batch of pending points is located and its cavities computed
// concurrently against a frozen topology snapshot, a sequential sweep
// picks a conflict-free subset, and the selected insertions commit from
// multiple workers into pre-assigned triangle slots. Conflicted points
// retry in the next round against the updated topology.
//
// Two cavities may commit concurrently only when they are halo-disjoint:
// neither shares a cavity triangle with the other's cavity, and neither's
// cavity appears among the other's halo triangles (the neighbors just
// outside a cavity's boundary, cavityEdge.t). Cavity-disjointness makes
// the removed-triangle sets independent; halo-disjointness additionally
// guarantees that everything a commit writes outside its own slots — the
// back-pointer t.tris[halo].N[te] — is a triangle the other commit never
// removes, and that each plan's precomputed boundary snapshot stays valid.
// Under that rule the concurrent commit is equivalent to inserting the
// selected points sequentially in selection order, so one round's output
// is a function of the batch alone: the engine is deterministic for every
// worker count >= 2 (worker count only changes who does the work, never
// what is computed).
//
// Slot pre-assignment exploits the cavity Euler property: a cavity of K
// triangles has K+2 boundary edges, so each commit reincarnates its own K
// removed slots and takes exactly two extra slots handed out by the
// sequential selection sweep. The parallel phase therefore never touches
// the shared append path or the free list.
//
// Sharded state, per worker: the point-location walk seed (the sequential
// kernel's t.last) and the tallies; per pending point: the cavity buffers
// (cavScratch). The Shewchuk predicate arenas are already pooled
// per-goroutine by internal/geom. Shared vertex-to-triangle seeds
// (t.vtri) are the one write that can target the same element from two
// independent commits (a shared cavity-boundary vertex), so those stores
// are atomic; either winner is a valid incidence.

import (
	"fmt"
	"runtime"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"

	"pamg2d/internal/geom"
	"pamg2d/internal/trace"
)

// ParallelOptions configures the concurrent insertion engine.
type ParallelOptions struct {
	// Workers is the number of insertion goroutines. 1 (and any negative
	// value) selects the sequential kernel unchanged; 0 resolves to
	// runtime.NumCPU().
	Workers int
	// Pool, when non-nil, executes the phase jobs on a persistent shared
	// worker team instead of spawning a fresh team per build. A long-lived
	// engine serving many concurrent builds attaches one pool so the
	// process runs a bounded number of insertion goroutines no matter how
	// many triangulations are in flight. The stripe decomposition — and
	// therefore the result — is identical either way.
	Pool *WorkerPool
	// RoundShuffle interleaves the insertion order BRIO-style so each
	// batch spans the whole domain instead of one x-stripe. Clustered
	// inputs (anisotropic boundary-layer points) otherwise fill a batch
	// from a single cluster whose cavities all overlap, burning rounds on
	// conflict retries; spreading the batch trades walk locality (restored
	// by bin-seeded locates) for near-conflict-free rounds. Off by default.
	RoundShuffle bool
	// Tracer, when non-nil, records one span per worker (category
	// trace.CatKernel, mesher track) covering the worker's lifetime.
	Tracer *trace.Tracer
	// Rank is the tracer track the worker spans land on.
	Rank int
}

// WorkerPool is a persistent team of kernel goroutines shared by every
// build that attaches it (ParallelOptions.Pool). Jobs are plain closures;
// the pool guarantees each submitted job runs exactly once, on some pool
// goroutine. Safe for concurrent Submit from many builds: jobs from
// different builds interleave freely, and a build's phase barrier is its
// own WaitGroup, not the pool's.
type WorkerPool struct {
	jobs chan func()
	size int
	wg   sync.WaitGroup
}

// NewWorkerPool starts a pool of n persistent goroutines (0 resolves to
// runtime.NumCPU()). Close releases them.
func NewWorkerPool(n int) *WorkerPool {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	p := &WorkerPool{jobs: make(chan func(), 4*n), size: n}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.jobs {
				f()
			}
		}()
	}
	return p
}

// Size returns the number of pool goroutines.
func (p *WorkerPool) Size() int { return p.size }

// Submit enqueues one job. It must not be called after Close.
func (p *WorkerPool) Submit(f func()) { p.jobs <- f }

// Close stops the pool after the queued jobs drain. Builds still running
// against the pool must complete first; Close then blocks until every
// goroutine has exited.
func (p *WorkerPool) Close() {
	close(p.jobs)
	p.wg.Wait()
}

// resolveWorkers maps the Workers convention (0 = NumCPU) to a count.
func (o ParallelOptions) resolveWorkers() int {
	if o.Workers == 0 {
		return runtime.NumCPU()
	}
	return o.Workers
}

// ParStats reports what the engine did during one build. A build that fell
// back to the sequential kernel (Workers <= 1) reports zero rounds.
type ParStats struct {
	Workers    int // resolved worker count
	Rounds     int // independent-set select+commit rounds
	Inserted   int // points committed by the concurrent phase
	Conflicts  int // insertions deferred to a later round by cavity conflicts
	Sequential int // points that took the sequential path (duplicates, splits, odd cavities)
}

// Add accumulates other into s.
func (s *ParStats) Add(other *ParStats) {
	if other == nil {
		return
	}
	if other.Workers > s.Workers {
		s.Workers = other.Workers
	}
	s.Rounds += other.Rounds
	s.Inserted += other.Inserted
	s.Conflicts += other.Conflicts
	s.Sequential += other.Sequential
}

// workerScratch is one insertion worker's private state, keyed by worker
// id: the sharded point-location walk seed and the per-worker tallies the
// tracer span reports.
type workerScratch struct {
	seed      int32
	located   int
	committed int
}

// insertPlan is one pending point's phase-1 result: its location, its
// cavity (triangles plus boundary edges) computed against the round's
// frozen topology, and — once selected — its vertex id and the triangle
// slots its fan will occupy.
type insertPlan struct {
	pt    geom.Point
	loc   location
	err   error // ErrDuplicate or ErrOutside discovered during location
	dupV  int32 // existing vertex for ErrDuplicate
	seq   bool  // must take the sequential path
	s     cavScratch
	v     int32
	slots []int32
}

// parInserter runs the round loop for one bulk insertion.
type parInserter struct {
	t       *Triangulation
	workers int
	shards  []workerScratch
	plans   []insertPlan
	batch   []int32 // input-point indices in this round's batch
	retry   []int32
	sel     []int32 // batch positions selected this round
	seqList []int32 // batch positions routed to the sequential path

	// claimCav/claimHalo mark, per triangle and per round (epoch), whether
	// a selected plan's cavity (respectively halo) touches it. A candidate
	// conflicts when any of its cavity triangles is already claimed as
	// cavity or halo, or any of its halo triangles is claimed as cavity;
	// halo/halo sharing is harmless and allowed.
	claimCav  []uint32
	claimHalo []uint32
	epoch     uint32

	jobs   chan func()
	pool   *WorkerPool // shared persistent team; nil = per-build goroutines
	phase  sync.WaitGroup
	life   sync.WaitGroup
	stats  ParStats
	tracer *trace.Tracer
	rank   int

	debugCheck bool // tests: validate invariants after every round
	debugFull  bool // tests: include the O(n^2) Delaunay property check
}

// BuildParallel is Build with the bulk point-insertion phase executed by a
// team of workers using independent-set batched insertion. Segment
// recovery, carving, and every later stage stay sequential. Workers <= 1
// delegates to Build, byte for byte. The returned stats are valid even
// when the error is non-nil.
func BuildParallel(in Input, opt ParallelOptions) (*Triangulation, *ParStats, error) {
	workers := opt.resolveWorkers()
	if workers <= 1 {
		t, err := Build(in)
		return t, &ParStats{Workers: 1}, err
	}
	if len(in.Points) < 3 {
		return nil, &ParStats{Workers: workers}, fmt.Errorf("delaunay: need at least 3 points, have %d", len(in.Points))
	}
	bb := in.Frame
	if bb == (geom.BBox{}) || bb.Empty() {
		bb = geom.BBoxOf(in.Points)
	}
	t := NewCap(bb, len(in.Points))
	order := insertionOrder(in, t)
	if opt.RoundShuffle {
		order = brioInterleave(order)
		// Interleaved batches have no walk locality left, so bound every
		// locate with the spatial-hash seed regardless of input sortedness.
		if t.binGrid == nil {
			t.EnableBinSeeding(bb, len(in.Points))
		}
	}

	vmap := make([]int32, len(in.Points))
	ins := &parInserter{t: t, workers: workers, pool: opt.Pool, tracer: opt.Tracer, rank: opt.Rank}
	err := ins.run(in.Points, order, vmap)
	ins.stats.Workers = workers
	if err != nil {
		return nil, &ins.stats, err
	}
	for _, s := range in.Segments {
		a, b := vmap[s[0]], vmap[s[1]]
		if a == b {
			continue
		}
		if err := t.InsertSegment(a, b); err != nil {
			return nil, &ins.stats, err
		}
	}
	t.Carve(in.Holes)
	return t, &ins.stats, nil
}

// TriangulateParallel is Triangulate on the concurrent engine.
func TriangulateParallel(in Input, opt ParallelOptions) (*Result, *ParStats, error) {
	t, ps, err := BuildParallel(in, opt)
	if err != nil {
		return nil, ps, err
	}
	return t.Extract(), ps, nil
}

// TriangulateRefinedParallel is TriangulateRefined with the bulk insertion
// parallelized; refinement itself stays sequential (it is a small share of
// the kernel profile, and its insertion order is quality-driven).
func TriangulateRefinedParallel(in Input, q Quality, opt ParallelOptions) (*Result, *ParStats, error) {
	t, ps, err := BuildParallel(in, opt)
	if err != nil {
		return nil, ps, err
	}
	if err := t.Refine(q); err != nil {
		return nil, ps, err
	}
	return t.Extract(), ps, nil
}

// insertionOrder computes the bulk-insertion order shared by Build and
// BuildParallel: the caller's x-sorted order, or a sort here. Sorted
// insertion makes the walk-from-last point location near O(1) per insert;
// without caller-provided spatial coherence, refinement and segment
// recovery issue scattered locate queries, so the bin seed is enabled to
// bound those walks (BRIO-style) without perturbing the deterministic
// insertion order.
func insertionOrder(in Input, t *Triangulation) []int32 {
	order := make([]int32, len(in.Points))
	for i := range order {
		order[i] = int32(i)
	}
	if !in.Sorted {
		pts := in.Points
		slices.SortFunc(order, func(i, j int32) int {
			a, b := pts[i], pts[j]
			switch {
			case a.X < b.X:
				return -1
			case a.X > b.X:
				return 1
			case a.Y < b.Y:
				return -1
			case a.Y > b.Y:
				return 1
			}
			return 0
		})
		t.EnableBinSeeding(geom.BBoxOf(in.Points), len(in.Points))
	}
	return order
}

// brioSpan is the round-shuffle granularity: the interleave is built so
// that any consecutive run of up to brioSpan points in the shuffled order
// samples the whole sorted range. It matches the engine's largest batch,
// so every batch is spread regardless of the worker count, and the
// shuffled order itself is worker-count independent.
const brioSpan = 256

// brioInterleave reorders an x-sorted insertion order into round-robin
// groups: group g holds the sorted positions g, g+G, g+2G, ... with
// G = ceil(n/brioSpan) groups concatenated in order. Consecutive entries of
// the result are G sorted positions apart, so a batch drawn from it spans
// the full domain instead of one x-stripe — the deterministic stand-in for
// BRIO's within-round shuffle. Inputs small enough for a single group (or
// two) keep their sorted order.
func brioInterleave(order []int32) []int32 {
	n := len(order)
	groups := (n + brioSpan - 1) / brioSpan
	if groups < 2 {
		return order
	}
	out := make([]int32, 0, n)
	for g := 0; g < groups; g++ {
		for i := g; i < n; i += groups {
			out = append(out, order[i])
		}
	}
	return out
}

// run drives the round loop: phase 1 locates and digs cavities in
// parallel, phase 2 sequentially selects a conflict-free set and
// pre-assigns vertices and slots, phase 3 commits the selected fans in
// parallel, phase 4 sequentially handles the points that cannot commit
// concurrently. Deferred (conflicted) points lead the next batch.
func (ins *parInserter) run(pts []geom.Point, order []int32, vmap []int32) error {
	t := ins.t
	batchCap := 16 * ins.workers
	if batchCap < 32 {
		batchCap = 32
	}
	if batchCap > 256 {
		batchCap = 256
	}
	ins.plans = make([]insertPlan, batchCap)
	ins.shards = make([]workerScratch, ins.workers)
	for w := range ins.shards {
		ins.shards[w].seed = t.last
	}
	// Worker spans are begun and ended here, not inside the execution
	// goroutines: with a shared WorkerPool the executing goroutines outlive
	// any one build, but the per-stripe accounting (shards) is still this
	// build's own. The deferred End closes every span even on the error
	// paths, after the last phase barrier has ordered the shard writes.
	if ins.tracer.Enabled() {
		spans := make([]trace.Span, ins.workers)
		for w := range spans {
			spans[w] = ins.tracer.Begin(ins.rank, trace.CatKernel, "kernel/worker-"+strconv.Itoa(w))
		}
		defer func() {
			for w := range spans {
				spans[w].End(trace.I("located", ins.shards[w].located),
					trace.I("committed", ins.shards[w].committed))
			}
		}()
	}
	if ins.pool == nil {
		ins.jobs = make(chan func())
		ins.life.Add(ins.workers)
		for w := 0; w < ins.workers; w++ {
			go func() {
				defer ins.life.Done()
				for f := range ins.jobs {
					f()
				}
			}()
		}
		defer func() {
			close(ins.jobs)
			ins.life.Wait()
		}()
	}

	pos := 0
	for pos < len(order) || len(ins.retry) > 0 {
		ins.batch = append(ins.batch[:0], ins.retry...)
		ins.retry = ins.retry[:0]
		for len(ins.batch) < batchCap && pos < len(order) {
			ins.batch = append(ins.batch, order[pos])
			pos++
		}
		ins.stats.Rounds++
		ins.runPhase(ins.preparePhase(pts))
		ins.selectPlans(vmap)
		ins.runPhase(ins.commitPhase())
		ins.stats.Inserted += len(ins.sel)
		if n := len(ins.sel); n > 0 {
			// Reseed the sequential walk near the round's last commit.
			t.last = ins.plans[ins.sel[n-1]].slots[0]
		}
		for _, bi := range ins.seqList {
			pl := &ins.plans[bi]
			idx := ins.batch[bi]
			if pl.err == ErrDuplicate {
				vmap[idx] = pl.dupV
				continue
			}
			v, err := t.InsertPoint(pts[idx])
			if err == ErrDuplicate {
				vmap[idx] = v
				continue
			}
			if err != nil {
				return fmt.Errorf("delaunay: inserting point %d %v: %w", idx, pts[idx], err)
			}
			vmap[idx] = v
			ins.stats.Sequential++
		}
		if ins.debugCheck {
			if err := t.checkInvariants(ins.debugFull); err != nil {
				return fmt.Errorf("round %d (batch %d, selected %d): %w",
					ins.stats.Rounds, len(ins.batch), len(ins.sel), err)
			}
			for v := range t.vtri {
				ti := t.vtri[v]
				if ti == invalid || t.tris[ti].Dead ||
					(t.tris[ti].V[0] != int32(v) && t.tris[ti].V[1] != int32(v) && t.tris[ti].V[2] != int32(v)) {
					return fmt.Errorf("round %d (batch %d, selected %d): vtri[%d]=%d stale",
						ins.stats.Rounds, len(ins.batch), len(ins.sel), v, ti)
				}
			}
		}
	}
	return nil
}

// runPhase enqueues one stripe-bound job per worker slot — on the shared
// WorkerPool when one is attached, on the build's own team otherwise — and
// waits for all stripes to finish. The jobs carry the stripe id rather
// than relying on which goroutine dequeues them — a fast worker may
// execute two stripes while a slow one executes none, but every stripe
// runs exactly once, so the computation is identical on both vehicles.
// The WaitGroup barrier orders each phase's writes before the next phase's
// reads, and makes each shard single-writer within a phase.
func (ins *parInserter) runPhase(f func(w int)) {
	ins.phase.Add(ins.workers)
	for w := 0; w < ins.workers; w++ {
		stripe := w
		if ins.pool != nil {
			ins.pool.Submit(func() { f(stripe); ins.phase.Done() })
		} else {
			ins.jobs <- func() { f(stripe); ins.phase.Done() }
		}
	}
	ins.phase.Wait()
}

// preparePhase returns phase 1: locate each batch point and compute its
// cavity against the frozen topology. Work is striped by batch position so
// the assignment is deterministic and the x-sorted batch keeps each
// worker's walk local.
func (ins *parInserter) preparePhase(pts []geom.Point) func(w int) {
	t := ins.t
	return func(w int) {
		ws := &ins.shards[w]
		for i := w; i < len(ins.batch); i += ins.workers {
			pl := &ins.plans[i]
			pl.pt = pts[ins.batch[i]]
			pl.err = nil
			pl.seq = false
			ws.located++
			loc := t.locateFrom(ws.seed, pl.pt)
			pl.loc = loc
			switch loc.kind {
			case locOutside:
				pl.err = ErrOutside
				pl.seq = true
				continue
			case locVertex:
				pl.err = ErrDuplicate
				pl.dupV = loc.v
				pl.seq = true
				continue
			case locEdge:
				if t.tris[loc.t].C[loc.e] {
					// Constrained-segment split: sequential path only.
					pl.seq = true
					continue
				}
			}
			ws.seed = loc.t
			t.computeCavityInto(pl.pt, loc, &pl.s)
		}
	}
}

// selectPlans is phase 2, the sequential sweep in batch order: route
// sequential-only plans aside, defer conflicted plans to the next round,
// and for each selected plan allocate its vertex and pre-assign its fan
// slots (its own cavity slots plus two extras).
func (ins *parInserter) selectPlans(vmap []int32) {
	t := ins.t
	ins.sel = ins.sel[:0]
	ins.seqList = ins.seqList[:0]
	ins.epoch++
	for len(ins.claimCav) < len(t.tris) {
		ins.claimCav = append(ins.claimCav, 0)
		ins.claimHalo = append(ins.claimHalo, 0)
	}
	for i := range ins.batch {
		pl := &ins.plans[i]
		if pl.seq {
			ins.seqList = append(ins.seqList, int32(i))
			continue
		}
		if len(pl.s.cavityEdges) != len(pl.s.cavityTris)+2 {
			// A cavity that is not a simple triangulated star polygon
			// (possible only in degenerate inputs) breaks the K+2 slot
			// budget; insert it alone on the sequential path.
			ins.seqList = append(ins.seqList, int32(i))
			continue
		}
		conflict := false
		for _, c := range pl.s.cavityTris {
			if ins.claimCav[c] == ins.epoch || ins.claimHalo[c] == ins.epoch {
				conflict = true
				break
			}
		}
		if !conflict {
			for k := range pl.s.cavityEdges {
				if h := pl.s.cavityEdges[k].t; h != invalid && ins.claimCav[h] == ins.epoch {
					conflict = true
					break
				}
			}
		}
		if conflict {
			ins.retry = append(ins.retry, ins.batch[i])
			ins.stats.Conflicts++
			continue
		}
		for _, c := range pl.s.cavityTris {
			ins.claimCav[c] = ins.epoch
		}
		for k := range pl.s.cavityEdges {
			if h := pl.s.cavityEdges[k].t; h != invalid {
				ins.claimHalo[h] = ins.epoch
			}
		}
		pl.v = t.addPoint(pl.pt)
		vmap[ins.batch[i]] = pl.v
		pl.slots = append(pl.slots[:0], pl.s.cavityTris...)
		pl.slots = append(pl.slots, t.allocSlot(), t.allocSlot())
		ins.sel = append(ins.sel, int32(i))
	}
}

// commitPhase returns phase 3: write the selected fans concurrently.
func (ins *parInserter) commitPhase() func(w int) {
	t := ins.t
	return func(w int) {
		ws := &ins.shards[w]
		for k := w; k < len(ins.sel); k += ins.workers {
			pl := &ins.plans[ins.sel[k]]
			t.commitCavityPar(pl.v, &pl.s, pl.slots)
			ws.committed++
		}
	}
}

// allocSlot hands out one triangle slot on the sequential path: a free
// (dead) slot if one exists, else a fresh appended one. The placeholder is
// marked dead until a commit reincarnates it.
func (t *Triangulation) allocSlot() int32 {
	if n := len(t.free); n > 0 {
		idx := t.free[n-1]
		t.free = t.free[:n-1]
		return idx
	}
	t.tris = append(t.tris, Tri{Dead: true})
	return int32(len(t.tris) - 1)
}

// commitCavityPar is commitCavity for the concurrent engine: the fan
// triangles land in pre-assigned slots (the plan's own cavity slots plus
// the two extras), so no shared allocation state is touched. The only
// writes outside the plan's slots are the halo back-pointers — distinct
// N-array words under the halo-disjointness rule — and the vertex
// incidence seeds, which are atomic because independent cavities may share
// boundary vertices.
func (t *Triangulation) commitCavityPar(v int32, s *cavScratch, slots []int32) {
	open := s.fanOpen[:0]
	match := func(other int32, fromV bool) (fanEdge, bool) {
		for i := range open {
			if open[i].other == other && open[i].fromV == fromV {
				fe := open[i]
				open[i] = open[len(open)-1]
				open = open[:len(open)-1]
				return fe, true
			}
		}
		return fanEdge{}, false
	}
	for k := range s.cavityEdges {
		ce := &s.cavityEdges[k]
		nt := slots[k]
		tr := Tri{V: [3]int32{v, ce.a, ce.b}, N: [3]int32{invalid, ce.t, invalid}, Outside: ce.outside}
		tr.C[1] = ce.c
		t.tris[nt] = tr
		if ce.t != invalid {
			t.tris[ce.t].N[ce.te] = nt
		}
		atomic.StoreInt32(&t.vtri[ce.a], nt)
		atomic.StoreInt32(&t.vtri[ce.b], nt)
		if he, ok := match(ce.a, false); ok {
			t.link(nt, 0, he.tri, he.e)
		} else {
			open = append(open, fanEdge{other: ce.a, tri: nt, e: 0, fromV: true})
		}
		if he, ok := match(ce.b, true); ok {
			t.link(nt, 2, he.tri, he.e)
		} else {
			open = append(open, fanEdge{other: ce.b, tri: nt, e: 2, fromV: false})
		}
	}
	atomic.StoreInt32(&t.vtri[v], slots[0])
	s.fanOpen = open[:0]
}
