package delaunay

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"pamg2d/internal/geom"
)

// fuzzCloud builds a point cloud mixing uniform noise, clustered bursts,
// exact duplicates and cocircular grid points — the degenerate mix the
// concurrent engine must route through conflicts and the sequential
// fallback.
func fuzzCloud(seed int64, n int) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		switch rng.Intn(10) {
		case 0: // grid point: cocircular quadruples galore
			pts = append(pts, geom.Pt(float64(rng.Intn(8))/8, float64(rng.Intn(8))/8))
		case 1: // duplicate of an earlier point
			if len(pts) > 0 {
				pts = append(pts, pts[rng.Intn(len(pts))])
				continue
			}
			fallthrough
		case 2, 3: // tight cluster: adjacent cavities, heavy conflicts
			cx, cy := rng.Float64(), rng.Float64()
			for k := 0; k < 4 && len(pts) < n; k++ {
				pts = append(pts, geom.Pt(cx+rng.Float64()*1e-3, cy+rng.Float64()*1e-3))
			}
		default:
			pts = append(pts, geom.Pt(rng.Float64(), rng.Float64()))
		}
	}
	return pts
}

// squareInput wraps a cloud with a constrained square boundary so segment
// recovery and carving run after the parallel bulk insertion.
func squareInput(pts []geom.Point) Input {
	n := int32(len(pts))
	in := Input{Points: append([]geom.Point{
		geom.Pt(-0.5, -0.5), geom.Pt(1.5, -0.5), geom.Pt(1.5, 1.5), geom.Pt(-0.5, 1.5),
	}, pts...)}
	_ = n
	in.Segments = [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	return in
}

func TestBuildParallelOneWorkerIsSequential(t *testing.T) {
	in := squareInput(fuzzCloud(3, 400))
	seq, err := Triangulate(in)
	if err != nil {
		t.Fatal(err)
	}
	par, ps, err := TriangulateParallel(in, ParallelOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ps.Rounds != 0 || ps.Workers != 1 {
		t.Fatalf("workers=1 must delegate to the sequential kernel, got stats %+v", ps)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("workers=1 result differs from the sequential kernel")
	}
}

func TestBuildParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	in := squareInput(fuzzCloud(7, 600))
	var want *Result
	for _, w := range []int{2, 3, 4, 8} {
		got, ps, err := TriangulateParallel(in, ParallelOptions{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ps.Rounds == 0 {
			t.Fatalf("workers=%d: engine did not run", w)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d topology differs from workers=2", w)
		}
	}
}

func TestBuildParallelInvariants(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		in := squareInput(fuzzCloud(seed, 500))
		tr, ps, err := BuildParallel(in, ParallelOptions{Workers: 4})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := tr.CheckDelaunay(true); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if ps.Inserted+ps.Sequential == 0 {
			t.Fatalf("seed %d: no insertions recorded: %+v", seed, ps)
		}
		// The engine must account for every non-duplicate input point.
		res := tr.Extract()
		if len(res.Points) < 400 {
			t.Fatalf("seed %d: only %d points survive", seed, len(res.Points))
		}
	}
}

// TestBuildParallelStress hammers the concurrent engine on fuzzed clouds;
// under `go test -race` this is the data-race gate for the sharded
// scratch, the slot pre-assignment, and the atomic incidence stores.
func TestBuildParallelStress(t *testing.T) {
	seeds := []int64{11, 12, 13}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		for _, w := range []int{2, 4, 8} {
			in := squareInput(fuzzCloud(seed, 800))
			tr, _, err := BuildParallel(in, ParallelOptions{Workers: w})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
			if err := tr.CheckDelaunay(true); err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
		}
	}
}

// TestParallelRoundInvariants drives the round loop directly with the
// per-round invariant check enabled, catching structural corruption in the
// exact round it appears rather than rounds later in segment recovery.
func TestParallelRoundInvariants(t *testing.T) {
	in := squareInput(fuzzCloud(11, 800))
	tr := NewCap(geom.BBoxOf(in.Points), len(in.Points))
	order := insertionOrder(in, tr)
	vmap := make([]int32, len(in.Points))
	ins := &parInserter{t: tr, workers: 2, debugCheck: true, debugFull: true}
	if err := ins.run(in.Points, order, vmap); err != nil {
		t.Fatal(err)
	}
}

func TestTriangulateRefinedParallel(t *testing.T) {
	in := squareInput(fuzzCloud(21, 200))
	q := Quality{MaxRadiusEdgeRatio: 1.5, MaxArea: 0.02}
	seqRes, err := TriangulateRefined(in, q)
	if err != nil {
		t.Fatal(err)
	}
	res, ps, err := TriangulateRefinedParallel(in, q, ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ps.Rounds == 0 {
		t.Fatal("engine did not run")
	}
	// Refinement is quality-driven, so only the bounds are comparable.
	if len(res.Triangles) < len(seqRes.Triangles)/2 || len(res.Triangles) > 2*len(seqRes.Triangles) {
		t.Fatalf("refined sizes diverge: parallel %d vs sequential %d", len(res.Triangles), len(seqRes.Triangles))
	}
}

func BenchmarkBuildParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 5000)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	for _, w := range []int{1, 4} {
		b.Run(map[int]string{1: "kw1", 4: "kw4"}[w], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := BuildParallel(Input{Points: pts}, ParallelOptions{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// clusteredCloud mimics boundary-layer point sets: dense x-sorted bands of
// near-collinear clustered points, the worst case for spatially adjacent
// insertion batches (neighbors in the x-order share cavities and conflict).
func clusteredCloud(seed int64, n int) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		// A short "extrusion stack": points packed along a near-vertical ray.
		x, y := rng.Float64(), rng.Float64()
		h := 1e-4
		for k := 0; k < 8 && len(pts) < n; k++ {
			pts = append(pts, geom.Pt(x+rng.Float64()*1e-5, y+h))
			h *= 1.3
		}
	}
	return pts
}

// TestRoundShuffleCutsConflicts is the before/after gate for the BRIO
// round-shuffle batch composition: on clustered boundary-layer-like
// points the shuffled batches must retry measurably less than the
// x-sorted ones, while still producing a valid Delaunay triangulation
// that is deterministic across worker counts.
func TestRoundShuffleCutsConflicts(t *testing.T) {
	in := squareInput(clusteredCloud(11, 1200))

	_, plain, err := BuildParallel(in, ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	trs, shuf, err := BuildParallel(in, ParallelOptions{Workers: 4, RoundShuffle: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := trs.CheckDelaunay(true); err != nil {
		t.Fatalf("shuffled triangulation invalid: %v", err)
	}
	t.Logf("conflicts: sorted=%d shuffled=%d (rounds %d vs %d)",
		plain.Conflicts, shuf.Conflicts, plain.Rounds, shuf.Rounds)
	if plain.Conflicts == 0 {
		t.Fatalf("clustered cloud produced no conflicts in sorted order — test input too easy")
	}
	if shuf.Conflicts*2 > plain.Conflicts {
		t.Errorf("round shuffle did not cut conflicts in half: sorted %d, shuffled %d",
			plain.Conflicts, shuf.Conflicts)
	}

	// Shuffled insertion is reproducible: the interleave is a pure function
	// of the point order, so repeating the build gives the identical result.
	// (Across different worker counts only validity is guaranteed — the
	// batch capacity scales with the worker count, which regroups the
	// conflict retries; that is equally true of the unshuffled path.)
	ref := trs.Extract()
	again, _, err := BuildParallel(in, ParallelOptions{Workers: 4, RoundShuffle: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, again.Extract()) {
		t.Fatalf("shuffled build is not reproducible for a fixed worker count")
	}
	for _, w := range []int{2, 8} {
		trw, _, err := BuildParallel(in, ParallelOptions{Workers: w, RoundShuffle: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if err := trw.CheckDelaunay(true); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
	}
}

// TestWorkerPoolEquivalence: executing the stripe jobs on a shared
// WorkerPool must produce exactly the per-build-team result, regardless
// of the pool's size relative to the build's worker count.
func TestWorkerPoolEquivalence(t *testing.T) {
	in := squareInput(fuzzCloud(5, 600))
	want, wps, err := TriangulateParallel(in, ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{1, 2, 4, 8} {
		pool := NewWorkerPool(size)
		got, ps, err := TriangulateParallel(in, ParallelOptions{Workers: 4, Pool: pool})
		pool.Close()
		if err != nil {
			t.Fatalf("pool size %d: %v", size, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("pool size %d: result differs from per-build team", size)
		}
		if ps.Rounds != wps.Rounds || ps.Inserted != wps.Inserted {
			t.Fatalf("pool size %d: stats differ: %+v vs %+v", size, ps, wps)
		}
	}
}

// TestWorkerPoolSharedAcrossBuilds drives concurrent builds through one
// pool (the engine's serving pattern); under -race this gates the pool's
// job hand-off, and every build must match its solo result.
func TestWorkerPoolSharedAcrossBuilds(t *testing.T) {
	pool := NewWorkerPool(4)
	defer pool.Close()
	var wg sync.WaitGroup
	errs := make([]error, 6)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := squareInput(fuzzCloud(int64(20+i), 400))
			want, _, err := TriangulateParallel(in, ParallelOptions{Workers: 3})
			if err != nil {
				errs[i] = err
				return
			}
			got, _, err := TriangulateParallel(in, ParallelOptions{Workers: 3, Pool: pool})
			if err != nil {
				errs[i] = err
				return
			}
			if !reflect.DeepEqual(want, got) {
				errs[i] = fmt.Errorf("build %d: pooled result differs", i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("build %d: %v", i, err)
		}
	}
}
