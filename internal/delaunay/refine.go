package delaunay

import (
	"fmt"
	"math"

	"pamg2d/internal/geom"
)

// Refine runs Ruppert's algorithm on the carved triangulation: encroached
// constrained segments are split at their midpoints, and triangles that
// violate the quality bound (circumradius-to-shortest-edge ratio), the
// global area bound, or the sizing function are split at their
// circumcenters. A circumcenter that would encroach a constrained segment
// is not inserted; the segment is split instead, as Ruppert's termination
// proof requires.
func (t *Triangulation) Refine(q Quality) error {
	if !t.carved {
		t.Carve(nil)
	}
	minLen := q.MinLength
	if minLen == 0 {
		bb := geom.BBoxOf(t.pts)
		minLen = 1e-8 * (bb.Width() + bb.Height())
	}
	// The worklists live on the Triangulation so repeated Refine calls
	// reuse their backing arrays.
	r := &refiner{t: t, q: q, minLen: minLen, segs: t.refSegs[:0], tris: t.refTris[:0]}

	// Seed the queues with every interior triangle and constrained edge.
	for i := range t.tris {
		tr := t.tris[i]
		if tr.Dead || tr.Outside {
			continue
		}
		r.considerTri(int32(i))
		for e := int32(0); e < 3; e++ {
			if tr.C[e] {
				r.considerSeg(int32(i), e)
			}
		}
	}
	err := r.run()
	t.refSegs, t.refTris = r.segs[:0], r.tris[:0]
	return err
}

type triRef struct {
	ti int32
	v  [3]int32 // fingerprint to detect staleness
}

type segRef struct {
	a, b int32
	// force skips the encroachment re-check: set when a rejected
	// circumcenter encroached the segment (Ruppert splits it regardless of
	// whether any existing vertex encroaches it).
	force bool
}

type refiner struct {
	t      *Triangulation
	q      Quality
	minLen float64

	segs []segRef
	tris []triRef
}

// considerTri enqueues ti if it violates a bound.
func (r *refiner) considerTri(ti int32) {
	if r.isBad(ti) {
		tr := r.t.tris[ti]
		r.tris = append(r.tris, triRef{ti, tr.V})
	}
}

func (r *refiner) isBad(ti int32) bool {
	t := r.t
	tr := t.tris[ti]
	if tr.Dead || tr.Outside {
		return false
	}
	a, b, c := t.pts[tr.V[0]], t.pts[tr.V[1]], t.pts[tr.V[2]]
	ab := a.Dist(b)
	bc := b.Dist(c)
	ca := c.Dist(a)
	shortest := math.Min(ab, math.Min(bc, ca))
	area := math.Abs(geom.TriangleArea(a, b, c))
	if r.q.MaxArea > 0 && area > r.q.MaxArea && shortest > 2*r.minLen {
		return true
	}
	if r.q.SizeAt != nil && shortest > 2*r.minLen {
		centroid := geom.Pt((a.X+b.X+c.X)/3, (a.Y+b.Y+c.Y)/3)
		if want := r.q.SizeAt(centroid); want > 0 && area > want {
			return true
		}
	}
	if r.q.MaxRadiusEdgeRatio > 0 && shortest > 2*r.minLen {
		if geom.Circumradius(a, b, c)/shortest > r.q.MaxRadiusEdgeRatio {
			return true
		}
	}
	return false
}

// considerSeg enqueues the constrained edge e of ti if it is encroached by
// either adjacent apex.
func (r *refiner) considerSeg(ti, e int32) {
	t := r.t
	tr := t.tris[ti]
	a, b := tr.V[e], tr.V[(e+1)%3]
	if r.segEncroached(ti, e) {
		r.segs = append(r.segs, segRef{a: a, b: b})
	}
}

func (r *refiner) segEncroached(ti, e int32) bool {
	t := r.t
	tr := t.tris[ti]
	a, b := tr.V[e], tr.V[(e+1)%3]
	s := geom.Segment{A: t.pts[a], B: t.pts[b]}
	if s.Len() <= 2*r.minLen {
		return false // too short to split; accept as is
	}
	apex := tr.V[(e+2)%3]
	if !t.tris[ti].Outside && geom.InDiametralCircle(t.pts[apex], s) {
		return true
	}
	nb := tr.N[e]
	if nb != invalid && !t.tris[nb].Dead && !t.tris[nb].Outside {
		be := t.edgeIndex(nb, b, a)
		if be >= 0 {
			napex := t.tris[nb].V[(be+2)%3]
			if geom.InDiametralCircle(t.pts[napex], s) {
				return true
			}
		}
	}
	return false
}

func (r *refiner) run() error {
	t := r.t
	for len(r.segs) > 0 || len(r.tris) > 0 {
		if r.q.MaxPoints > 0 && len(t.pts) >= r.q.MaxPoints {
			return fmt.Errorf("delaunay: refinement exceeded MaxPoints=%d", r.q.MaxPoints)
		}
		if len(r.segs) > 0 {
			sr := r.segs[len(r.segs)-1]
			r.segs = r.segs[:len(r.segs)-1]
			r.splitSegIfNeeded(sr)
			continue
		}
		tr := r.tris[len(r.tris)-1]
		r.tris = r.tris[:len(r.tris)-1]
		// Staleness: the triangle must still exist with the same vertices.
		if tr.ti >= int32(len(t.tris)) || t.tris[tr.ti].Dead || t.tris[tr.ti].V != tr.v {
			continue
		}
		if !r.isBad(tr.ti) {
			continue
		}
		r.splitTri(tr.ti)
	}
	return nil
}

// splitSegIfNeeded splits the constrained segment (a,b) at its midpoint if
// it still exists and is still encroached.
func (r *refiner) splitSegIfNeeded(sr segRef) {
	if r.q.NoSplitSegments {
		return
	}
	t := r.t
	ti, e := t.findEdge(sr.a, sr.b)
	if ti == invalid || !t.tris[ti].C[e] {
		return
	}
	if sr.force {
		s := geom.Segment{A: t.pts[sr.a], B: t.pts[sr.b]}
		if s.Len() > 2*r.minLen {
			r.splitSeg(ti, e)
		}
		return
	}
	if !r.segEncroached(ti, e) {
		return
	}
	r.splitSeg(ti, e)
}

// splitSeg inserts the midpoint of constrained edge e of triangle ti and
// requeues the affected elements.
func (r *refiner) splitSeg(ti, e int32) {
	t := r.t
	a := t.tris[ti].V[e]
	b := t.tris[ti].V[(e+1)%3]
	mid := t.pts[a].Mid(t.pts[b])
	loc := location{kind: locEdge, t: ti, e: e}
	v, err := t.insertOnConstraint(mid, loc)
	if err != nil {
		return
	}
	r.requeueAround(v)
}

// requeueAround re-examines the star of a freshly inserted vertex: its
// triangles for quality/size violations and their constrained edges for
// encroachment.
func (r *refiner) requeueAround(v int32) {
	t := r.t
	t.visitStar(v, func(ti int32) bool {
		if t.tris[ti].Outside {
			return true
		}
		r.considerTri(ti)
		tr := t.tris[ti]
		for e := int32(0); e < 3; e++ {
			if tr.C[e] {
				r.considerSeg(ti, e)
			}
		}
		return true
	})
}

// splitTri inserts the circumcenter of bad triangle ti, unless the
// circumcenter encroaches a constrained segment, in which case the segment
// is queued for splitting instead.
func (r *refiner) splitTri(ti int32) {
	t := r.t
	tr := t.tris[ti]
	a, b, c := t.pts[tr.V[0]], t.pts[tr.V[1]], t.pts[tr.V[2]]
	cc := geom.Circumcenter(a, b, c)
	if math.IsNaN(cc.X) || math.IsInf(cc.X, 0) || math.IsNaN(cc.Y) || math.IsInf(cc.Y, 0) {
		return
	}
	// Walk from the triangle toward the circumcenter. If the walk crosses a
	// constrained edge, the circumcenter is not visible from the triangle
	// interior; treat the blocking segment as encroached.
	blockTi, blockE, reached := t.walkVisible(ti, cc)
	if !reached {
		if blockTi != invalid {
			aa := t.tris[blockTi].V[blockE]
			bb := t.tris[blockTi].V[(blockE+1)%3]
			s := geom.Segment{A: t.pts[aa], B: t.pts[bb]}
			if !r.q.NoSplitSegments && s.Len() > 2*r.minLen {
				r.segs = append(r.segs, segRef{a: aa, b: bb, force: true})
				r.considerTri(ti)
			}
		}
		return
	}
	v, encroached, err := t.insertCircumcenter(cc, r.minLen)
	if err != nil {
		return
	}
	if len(encroached) > 0 {
		// Ruppert's rule: do not insert a circumcenter that would encroach
		// a constrained segment; split those segments instead. Under
		// NoSplitSegments (-Y) the segments must stay intact: a triangle
		// that only violates the quality bound is left in place, but one
		// violating the area or sizing bound still needs volume, so its
		// centroid is inserted instead (strictly interior, so constraints
		// are never split).
		if r.q.NoSplitSegments {
			if r.isAreaBad(ti) {
				r.insertCentroid(ti)
			}
			return
		}
		for _, seg := range encroached {
			s := geom.Segment{A: t.pts[seg[0]], B: t.pts[seg[1]]}
			if s.Len() > 2*r.minLen {
				r.segs = append(r.segs, segRef{a: seg[0], b: seg[1], force: true})
			}
		}
		// Requeue the still-bad triangle: splitting the segments may cure
		// it, and if not its next circumcenter attempt must run again.
		r.considerTri(ti)
		return
	}
	r.requeueAround(v)
}

// isAreaBad reports whether the triangle violates the area or sizing
// bound (ignoring the quality ratio).
func (r *refiner) isAreaBad(ti int32) bool {
	t := r.t
	tr := t.tris[ti]
	if tr.Dead || tr.Outside {
		return false
	}
	a, b, c := t.pts[tr.V[0]], t.pts[tr.V[1]], t.pts[tr.V[2]]
	area := math.Abs(geom.TriangleArea(a, b, c))
	if r.q.MaxArea > 0 && area > r.q.MaxArea {
		return true
	}
	if r.q.SizeAt != nil {
		centroid := geom.Pt((a.X+b.X+c.X)/3, (a.Y+b.Y+c.Y)/3)
		if want := r.q.SizeAt(centroid); want > 0 && area > want {
			return true
		}
	}
	return false
}

// insertCentroid splits an area-bad triangle at its centroid, the
// NoSplitSegments fallback when the circumcenter is vetoed.
func (r *refiner) insertCentroid(ti int32) {
	t := r.t
	tr := t.tris[ti]
	a, b, c := t.pts[tr.V[0]], t.pts[tr.V[1]], t.pts[tr.V[2]]
	cen := geom.Pt((a.X+b.X+c.X)/3, (a.Y+b.Y+c.Y)/3)
	if cen.Dist(a) < r.minLen || cen.Dist(b) < r.minLen || cen.Dist(c) < r.minLen {
		return
	}
	loc := t.locate(cen)
	if loc.kind != locInside && loc.kind != locEdge {
		return
	}
	if loc.kind == locEdge && t.tris[loc.t].C[loc.e] {
		return // degenerate centroid exactly on a constraint; leave it
	}
	v, err := t.InsertPoint(cen)
	if err != nil {
		return
	}
	r.requeueAround(v)
}

// insertCircumcenter inserts cc unless the insertion cavity's boundary
// contains a constrained segment whose diametral circle holds cc; in that
// case nothing is mutated and the encroached segments are returned.
func (t *Triangulation) insertCircumcenter(cc geom.Point, minLen float64) (int32, [][2]int32, error) {
	loc := t.locate(cc)
	switch loc.kind {
	case locOutside:
		return -1, nil, ErrOutside
	case locVertex:
		return -1, nil, ErrDuplicate
	case locEdge:
		if t.tris[loc.t].C[loc.e] {
			// Exactly on a constrained segment: report it as encroached so
			// the caller splits it at its midpoint instead.
			a := t.tris[loc.t].V[loc.e]
			b := t.tris[loc.t].V[(loc.e+1)%3]
			return -1, [][2]int32{{a, b}}, nil
		}
	}
	if t.tris[loc.t].Outside {
		return -1, nil, ErrOutside
	}
	ltr := t.tris[loc.t]
	for k := 0; k < 3; k++ {
		if t.pts[ltr.V[k]].Dist(cc) < minLen {
			return -1, nil, ErrDuplicate
		}
	}
	t.computeCavity(cc, loc)
	var enc [][2]int32
	for _, ce := range t.scratch.cavityEdges {
		if ce.c && geom.InDiametralCircle(cc, geom.Segment{A: t.pts[ce.a], B: t.pts[ce.b]}) {
			enc = append(enc, [2]int32{ce.a, ce.b})
		}
	}
	if len(enc) > 0 {
		return -1, enc, nil
	}
	v := t.addPoint(cc)
	t.commitCavity(v)
	return v, nil, nil
}

// walkVisible walks from triangle ti toward point p. It returns
// reached=true when p's containing triangle is reachable without crossing a
// constrained edge; otherwise it returns the blocking triangle and edge.
func (t *Triangulation) walkVisible(ti int32, p geom.Point) (int32, int32, bool) {
	// Start from the triangle's centroid to have a well-defined ray origin.
	tr := t.tris[ti]
	a, b, c := t.pts[tr.V[0]], t.pts[tr.V[1]], t.pts[tr.V[2]]
	from := geom.Pt((a.X+b.X+c.X)/3, (a.Y+b.Y+c.Y)/3)
	cur := ti
	maxSteps := 4*len(t.tris) + 16
	for step := 0; step < maxSteps; step++ {
		tr := t.tris[cur]
		// Is p inside cur?
		inside := true
		var exit int32 = -1
		for e := int32(0); e < 3; e++ {
			u := t.pts[tr.V[e]]
			w := t.pts[tr.V[(e+1)%3]]
			if geom.Orient2DSign(u, w, p) < 0 {
				inside = false
				// Candidate exit edge: the segment from->p must cross it.
				if geom.SegmentsIntersect(geom.Segment{A: from, B: p}, geom.Segment{A: u, B: w}) != geom.SegDisjoint {
					exit = e
				}
			}
		}
		if inside {
			return cur, -1, true
		}
		if exit < 0 {
			// Numerical corner case; give up optimistically.
			return cur, -1, true
		}
		if tr.C[exit] {
			return cur, exit, false
		}
		nb := tr.N[exit]
		if nb == invalid || t.tris[nb].Dead {
			return cur, exit, false
		}
		cur = nb
	}
	return cur, -1, false
}
