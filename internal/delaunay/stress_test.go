package delaunay

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pamg2d/internal/geom"
)

// Stress and adversarial inputs for the kernel beyond the basic unit
// tests: massive cocircularity, tight clusters, duplicate floods, spiral
// and lattice patterns, crossing constraints, and refinement on domains
// with small input angles.

func TestCocircularRing(t *testing.T) {
	// Many points on one circle: every quadruple is cocircular, the
	// hardest case for incircle-based insertion.
	for _, n := range []int{8, 64, 257} {
		var pts []geom.Point
		for i := 0; i < n; i++ {
			th := 2 * math.Pi * float64(i) / float64(n)
			pts = append(pts, geom.Pt(math.Cos(th), math.Sin(th)))
		}
		tr := buildPlain(t, pts)
		if err := tr.CheckDelaunay(false); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// The triangulation of a convex polygon has n-2 interior triangles.
		tr.Carve(nil)
		if got, want := tr.InteriorTriangles(), n-2; got != want {
			t.Errorf("n=%d: %d interior triangles, want %d", n, got, want)
		}
	}
}

func TestConcentricRings(t *testing.T) {
	var pts []geom.Point
	for ring := 1; ring <= 5; ring++ {
		r := float64(ring)
		for i := 0; i < 40; i++ {
			th := 2 * math.Pi * float64(i) / 40
			pts = append(pts, geom.Pt(r*math.Cos(th), r*math.Sin(th)))
		}
	}
	tr := buildPlain(t, pts)
	if err := tr.CheckDelaunay(true); err != nil {
		t.Fatal(err)
	}
}

func TestTightCluster(t *testing.T) {
	// Points packed within a few ulps of each other plus far outliers.
	base := geom.Pt(1, 1)
	pts := []geom.Point{geom.Pt(-100, -100), geom.Pt(100, -100), geom.Pt(0, 100)}
	x, y := base.X, base.Y
	for i := 0; i < 30; i++ {
		x = math.Nextafter(x, 2)
		y = math.Nextafter(y, 2)
		pts = append(pts, geom.Pt(x, base.Y), geom.Pt(base.X, y), geom.Pt(x, y))
	}
	tr := buildPlain(t, pts)
	if err := tr.CheckDelaunay(false); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateFlood(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var pts []geom.Point
	for i := 0; i < 50; i++ {
		p := geom.Pt(rng.Float64(), rng.Float64())
		for k := 0; k < 5; k++ {
			pts = append(pts, p) // every point five times
		}
	}
	tr := New(geom.BBoxOf(pts))
	dups := 0
	for _, p := range pts {
		if _, err := tr.InsertPoint(p); err == ErrDuplicate {
			dups++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if dups != 200 {
		t.Errorf("duplicates rejected = %d, want 200", dups)
	}
	if err := tr.CheckDelaunay(true); err != nil {
		t.Fatal(err)
	}
}

func TestSpiral(t *testing.T) {
	var pts []geom.Point
	for i := 0; i < 400; i++ {
		th := 0.15 * float64(i)
		r := 0.05 * th
		pts = append(pts, geom.Pt(r*math.Cos(th), r*math.Sin(th)))
	}
	tr := buildPlain(t, pts)
	if err := tr.CheckDelaunay(true); err != nil {
		t.Fatal(err)
	}
}

func TestAxisLattice(t *testing.T) {
	// Points on a cross of the two axes (extreme collinear runs).
	var pts []geom.Point
	for i := -30; i <= 30; i++ {
		pts = append(pts, geom.Pt(float64(i), 0), geom.Pt(0, float64(i)))
	}
	tr := buildPlain(t, pts)
	if err := tr.CheckDelaunay(true); err != nil {
		t.Fatal(err)
	}
}

func TestCrossingConstraintsRejected(t *testing.T) {
	// Through the high-level API: a bowtie's crossing diagonals.
	in := Input{
		Points: []geom.Point{
			geom.Pt(0, 0), geom.Pt(2, 2), geom.Pt(2, 0), geom.Pt(0, 2),
		},
		Segments: [][2]int32{{0, 1}, {2, 3}},
	}
	if _, err := Triangulate(in); err == nil {
		t.Fatal("crossing constrained segments must be rejected")
	}
}

func TestSegmentChainThroughCollinearPoints(t *testing.T) {
	// A constraint passing exactly through intermediate vertices must be
	// split at each of them and remain recoverable.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(4, 0)}
	for i := 1; i < 4; i++ {
		pts = append(pts, geom.Pt(float64(i), 0))
	}
	// Add off-axis points so the line is embedded in a real triangulation.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 60; i++ {
		pts = append(pts, geom.Pt(rng.Float64()*4, rng.Float64()*2-1))
	}
	tr := New(geom.BBoxOf(pts))
	ids := make([]int32, len(pts))
	for i, p := range pts {
		v, err := tr.InsertPoint(p)
		if err != nil && err != ErrDuplicate {
			t.Fatal(err)
		}
		ids[i] = v
	}
	if err := tr.InsertSegment(ids[0], ids[1]); err != nil {
		t.Fatal(err)
	}
	if !constrainedPathExists(tr, ids[0], ids[1]) {
		t.Fatal("collinear chain must carry the constraint")
	}
	if err := tr.CheckDelaunay(false); err != nil {
		t.Fatal(err)
	}
}

func TestManySegmentsStar(t *testing.T) {
	// Constraints radiating from one hub vertex.
	pts := []geom.Point{geom.Pt(0, 0)}
	n := 24
	for i := 0; i < n; i++ {
		th := 2 * math.Pi * float64(i) / float64(n)
		pts = append(pts, geom.Pt(2*math.Cos(th), 2*math.Sin(th)))
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		th := rng.Float64() * 2 * math.Pi
		r := rng.Float64() * 1.9
		pts = append(pts, geom.Pt(r*math.Cos(th), r*math.Sin(th)))
	}
	tr := New(geom.BBoxOf(pts))
	ids := make([]int32, len(pts))
	for i, p := range pts {
		v, err := tr.InsertPoint(p)
		if err != nil && err != ErrDuplicate {
			t.Fatal(err)
		}
		ids[i] = v
	}
	for i := 1; i <= n; i++ {
		if err := tr.InsertSegment(ids[0], ids[i]); err != nil {
			t.Fatalf("spoke %d: %v", i, err)
		}
	}
	if err := tr.CheckDelaunay(false); err != nil {
		t.Fatal(err)
	}
}

func TestRefineSmallInputAngle(t *testing.T) {
	// A needle-thin wedge: Ruppert cannot fix the input angle itself but
	// must terminate and keep the rest of the domain clean.
	in := Input{
		Points: []geom.Point{
			geom.Pt(0, 0), geom.Pt(10, 0.2), geom.Pt(10, -0.2),
		},
		Segments: [][2]int32{{0, 1}, {1, 2}, {2, 0}},
	}
	res, err := TriangulateRefined(in, Quality{
		MaxRadiusEdgeRatio: math.Sqrt2,
		MaxArea:            0.5,
		MaxPoints:          20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	if len(res.Triangles) < 20 {
		t.Errorf("refinement produced only %d triangles", len(res.Triangles))
	}
}

func TestNoSplitSegmentsKeepsBoundary(t *testing.T) {
	in := Input{
		Points:   []geom.Point{geom.Pt(0, 0), geom.Pt(6, 0), geom.Pt(6, 6), geom.Pt(0, 6)},
		Segments: [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
	res, err := TriangulateRefined(in, Quality{
		MaxRadiusEdgeRatio: math.Sqrt2,
		MaxArea:            0.4,
		NoSplitSegments:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every result point on the square's boundary must be an input corner.
	for _, p := range res.Points {
		onBoundary := p.X == 0 || p.X == 6 || p.Y == 0 || p.Y == 6
		if onBoundary {
			isCorner := (p.X == 0 || p.X == 6) && (p.Y == 0 || p.Y == 6)
			if !isCorner {
				t.Fatalf("Steiner point %v on the boundary despite NoSplitSegments", p)
			}
		}
	}
	// Interior must still satisfy the area bound broadly.
	oversize := 0
	for _, tri := range res.Triangles {
		a, b, c := res.Points[tri[0]], res.Points[tri[1]], res.Points[tri[2]]
		if math.Abs(geom.TriangleArea(a, b, c)) > 0.4+1e-9 {
			oversize++
		}
	}
	// Boundary-adjacent triangles may exceed the bound (their fixes were
	// vetoed); they must be a small minority.
	if oversize > len(res.Triangles)/3 {
		t.Errorf("%d of %d triangles oversize with NoSplitSegments", oversize, len(res.Triangles))
	}
}

func TestMaxAreaEnforcedInInterior(t *testing.T) {
	in := Input{
		Points:   []geom.Point{geom.Pt(0, 0), geom.Pt(8, 0), geom.Pt(8, 8), geom.Pt(0, 8)},
		Segments: [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
	res, err := TriangulateRefined(in, Quality{MaxArea: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for i, tri := range res.Triangles {
		a, b, c := res.Points[tri[0]], res.Points[tri[1]], res.Points[tri[2]]
		if area := math.Abs(geom.TriangleArea(a, b, c)); area > 0.3+1e-9 {
			t.Fatalf("triangle %d area %v exceeds MaxArea", i, area)
		}
	}
}

func TestLargeRandomCDT(t *testing.T) {
	if testing.Short() {
		t.Skip("large case")
	}
	rng := rand.New(rand.NewSource(77))
	n := 20000
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	res, err := Triangulate(Input{Points: pts})
	if err != nil {
		t.Fatal(err)
	}
	// Euler: for a triangulation of the convex hull, T = 2n - 2 - h where
	// h is the hull size. Verify within the identity (duplicates are
	// impossible at this density; hull size from the result boundary).
	if len(res.Triangles) < 2*n-2-1000 || len(res.Triangles) > 2*n {
		t.Errorf("triangle count %d violates the Euler envelope for %d points", len(res.Triangles), n)
	}
}

// Property: random star-shaped polygons (radial polygons are always
// simple) triangulate with exact area conservation and full boundary
// recovery.
func TestRandomPolygonProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%30 + 4
		rng := rand.New(rand.NewSource(seed))
		pts := make([]geom.Point, n)
		var area2 float64
		for i := range pts {
			th := 2 * math.Pi * float64(i) / float64(n)
			r := 0.5 + rng.Float64()*2
			pts[i] = geom.Pt(r*math.Cos(th), r*math.Sin(th))
		}
		for i := range pts {
			p, q := pts[i], pts[(i+1)%n]
			area2 += p.X*q.Y - q.X*p.Y
		}
		segs := make([][2]int32, n)
		for i := range segs {
			segs[i] = [2]int32{int32(i), int32((i + 1) % n)}
		}
		res, err := Triangulate(Input{Points: pts, Segments: segs})
		if err != nil {
			return false
		}
		var got float64
		for _, tri := range res.Triangles {
			got += math.Abs(geom.TriangleArea(res.Points[tri[0]], res.Points[tri[1]], res.Points[tri[2]]))
		}
		if math.Abs(got-area2/2) > 1e-9*math.Abs(area2/2) {
			return false
		}
		// All boundary segments recovered: count constrained edge flags.
		constrained := 0
		for i := range res.Triangles {
			for e := 0; e < 3; e++ {
				if res.Constrained[i][e] {
					constrained++
				}
			}
		}
		return constrained == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
