// Package front implements a sequential advancing-front isotropic mesh
// generator, the classical alternative the paper's related-work section
// cites (Ito et al., "Parallel Unstructured Mesh Generation Using an
// Advancing Front Method"). It serves as a comparison baseline for the
// Delaunay-refinement kernel: same domains, same sizing function,
// different meshing paradigm.
//
// The front is the set of directed edges with unmeshed area on their left,
// initialized from the domain boundary (outer loops counter-clockwise,
// hole loops clockwise). Each step retires the shortest front edge by
// forming a triangle with either a newly placed ideal vertex (the apex of
// a near-equilateral triangle sized by the sizing function) or a suitable
// existing front vertex, whichever is valid and closest to ideal. The
// front updates by edge cancellation; meshing finishes when the front is
// empty.
package front

import (
	"container/heap"
	"fmt"
	"math"

	"pamg2d/internal/geom"
	"pamg2d/internal/mesh"
	"pamg2d/internal/sizing"
)

// Options controls the mesher.
type Options struct {
	// SizeAt gives the target triangle area near a point (same contract as
	// the Delaunay kernel's sizing).
	SizeAt sizing.Func
	// MaxTriangles aborts runaway fronts. Zero means 10x the rough
	// estimate from the domain area.
	MaxTriangles int
}

// Mesh generates a triangle mesh of the region bounded by the loops.
// Outer boundaries must be counter-clockwise and holes clockwise, so that
// the unmeshed interior always lies to the left of every directed
// boundary edge.
func Mesh(loops [][]geom.Point, opt Options) (*mesh.Mesh, error) {
	if opt.SizeAt == nil {
		return nil, fmt.Errorf("front: SizeAt is required")
	}
	m := newMesher(opt)
	totalArea := 0.0
	for _, loop := range loops {
		if len(loop) < 3 {
			return nil, fmt.Errorf("front: loop with %d points", len(loop))
		}
		var sum float64
		n := len(loop)
		for i := 0; i < n; i++ {
			p, q := loop[i], loop[(i+1)%n]
			sum += p.X*q.Y - q.X*p.Y
		}
		totalArea += sum / 2
		// Pre-discretize the boundary to the sizing resolution: the
		// advancing front builds near-equilateral triangles off its edges,
		// so front edges must start near the local target length.
		for i := 0; i < n; i++ {
			pa := loop[i]
			pb := loop[(i+1)%n]
			prev := m.vertex(pa)
			for _, q := range subdivide(pa, pb, m.targetLen) {
				v := m.vertex(q)
				m.addFront(prev, v)
				prev = v
			}
			last := m.vertex(pb)
			m.addFront(prev, last)
		}
	}
	if totalArea <= 0 {
		return nil, fmt.Errorf("front: loops enclose non-positive area %g (outer loops must be CCW, holes CW)", totalArea)
	}
	if opt.MaxTriangles == 0 {
		// Estimate the demand by integrating 1/size over each loop with a
		// centroid-fan quadrature (graded sizing makes any single-point
		// sample wildly wrong).
		est := 0.0
		for _, loop := range loops {
			var cx, cy float64
			for _, p := range loop {
				cx += p.X
				cy += p.Y
			}
			c := geom.Pt(cx/float64(len(loop)), cy/float64(len(loop)))
			n := len(loop)
			for i := 0; i < n; i++ {
				a, b := loop[i], loop[(i+1)%n]
				area := math.Abs(geom.TriangleArea(c, a, b))
				mid := geom.Pt((c.X+a.X+b.X)/3, (c.Y+a.Y+b.Y)/3)
				if sz := opt.SizeAt(mid); sz > 0 && !math.IsInf(sz, 1) {
					est += area / sz
				}
			}
		}
		opt.MaxTriangles = 20*int(est) + 2000
		m.opt.MaxTriangles = opt.MaxTriangles
	}
	boundary := make(map[int32]bool, len(m.pts))
	for i := range m.pts {
		boundary[int32(i)] = true // every pre-run vertex is on a loop
	}
	if err := m.run(); err != nil {
		return nil, err
	}
	m.postProcess(boundary)
	return m.build(), nil
}

type fedge struct {
	a, b int32
	len  float64
	dead bool
}

type edgeHeap []*fedge

func (h edgeHeap) Len() int            { return len(h) }
func (h edgeHeap) Less(i, j int) bool  { return h[i].len < h[j].len }
func (h edgeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *edgeHeap) Push(x interface{}) { *h = append(*h, x.(*fedge)) }
func (h *edgeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type mesher struct {
	opt    Options
	pts    []geom.Point
	vindex map[geom.Point]int32
	tris   [][3]int32

	// live front edges keyed by directed pair, plus the length heap
	// (entries are invalidated lazily via dead flags).
	front map[[2]int32]*fedge
	heap  edgeHeap

	// grid buckets front-edge keys for proximity and crossing queries.
	cell float64
	grid map[[2]int]map[[2]int32]bool
}

func newMesher(opt Options) *mesher {
	return &mesher{
		opt:    opt,
		vindex: map[geom.Point]int32{},
		front:  map[[2]int32]*fedge{},
		grid:   map[[2]int]map[[2]int32]bool{},
	}
}

func (m *mesher) vertex(p geom.Point) int32 {
	if i, ok := m.vindex[p]; ok {
		return i
	}
	i := int32(len(m.pts))
	m.pts = append(m.pts, p)
	m.vindex[p] = i
	return i
}

// targetLen is the isotropic edge length implied by the sizing area at p.
func (m *mesher) targetLen(p geom.Point) float64 {
	a := m.opt.SizeAt(p)
	if a <= 0 || math.IsInf(a, 1) {
		a = 1
	}
	return math.Sqrt(4 * a / math.Sqrt(3))
}

func (m *mesher) cellOf(p geom.Point) [2]int {
	if m.cell == 0 {
		m.cell = m.targetLen(p)
		if m.cell <= 0 {
			m.cell = 1
		}
	}
	return [2]int{int(math.Floor(p.X / m.cell)), int(math.Floor(p.Y / m.cell))}
}

func (m *mesher) gridCellsOf(a, b geom.Point) [][2]int {
	ca := m.cellOf(a)
	cb := m.cellOf(b)
	lo := [2]int{min(ca[0], cb[0]), min(ca[1], cb[1])}
	hi := [2]int{max(ca[0], cb[0]), max(ca[1], cb[1])}
	var cells [][2]int
	for x := lo[0]; x <= hi[0]; x++ {
		for y := lo[1]; y <= hi[1]; y++ {
			cells = append(cells, [2]int{x, y})
		}
	}
	return cells
}

func (m *mesher) addFront(a, b int32) {
	// An existing reverse edge cancels instead of coexisting.
	if rev, ok := m.front[[2]int32{b, a}]; ok {
		m.removeFront(rev)
		return
	}
	e := &fedge{a: a, b: b, len: m.pts[a].Dist(m.pts[b])}
	m.front[[2]int32{a, b}] = e
	heap.Push(&m.heap, e)
	for _, c := range m.gridCellsOf(m.pts[a], m.pts[b]) {
		if m.grid[c] == nil {
			m.grid[c] = map[[2]int32]bool{}
		}
		m.grid[c][[2]int32{a, b}] = true
	}
}

func (m *mesher) removeFront(e *fedge) {
	e.dead = true
	delete(m.front, [2]int32{e.a, e.b})
	for _, c := range m.gridCellsOf(m.pts[e.a], m.pts[e.b]) {
		delete(m.grid[c], [2]int32{e.a, e.b})
	}
}

// nearbyEdges collects live front edges within radius r of p.
func (m *mesher) nearbyEdges(p geom.Point, r float64) [][2]int32 {
	c0 := m.cellOf(p)
	span := int(math.Ceil(r/m.cell)) + 1
	seen := map[[2]int32]bool{}
	var out [][2]int32
	for dx := -span; dx <= span; dx++ {
		for dy := -span; dy <= span; dy++ {
			for key := range m.grid[[2]int{c0[0] + dx, c0[1] + dy}] {
				if !seen[key] {
					seen[key] = true
					out = append(out, key)
				}
			}
		}
	}
	return out
}

// validTriangle checks that joining front edge (a,b) with apex c yields a
// CCW triangle whose new edges cross no front edge and whose apex is not
// indecently close to an unrelated front edge.
func (m *mesher) validTriangle(a, b, c int32, clearance float64) bool {
	pa, pb, pc := m.pts[a], m.pts[b], m.pts[c]
	if geom.Orient2DSign(pa, pb, pc) <= 0 {
		return false
	}
	searchR := pa.Dist(pb) + pa.Dist(pc) + clearance
	for _, key := range m.nearbyEdges(pc, searchR) {
		ea, eb := key[0], key[1]
		qs := geom.Segment{A: m.pts[ea], B: m.pts[eb]}
		// No front vertex may lie inside (or on) the candidate triangle:
		// without this, edges can wrap around a reflex boundary vertex and
		// the front escapes the domain.
		for _, v := range key {
			if v == a || v == b || v == c {
				continue
			}
			pv := m.pts[v]
			if geom.Orient2DSign(pa, pb, pv) >= 0 &&
				geom.Orient2DSign(pb, pc, pv) >= 0 &&
				geom.Orient2DSign(pc, pa, pv) >= 0 {
				return false
			}
		}
		// New edges (a,c) and (c,b) must not cross the front edge except
		// at shared endpoints.
		for _, ne := range [2][2]int32{{a, c}, {c, b}} {
			if (ea == ne[0] || ea == ne[1]) && (eb == ne[0] || eb == ne[1]) {
				continue
			}
			ns := geom.Segment{A: m.pts[ne[0]], B: m.pts[ne[1]]}
			switch geom.SegmentsIntersect(ns, qs) {
			case geom.SegDisjoint:
			case geom.SegTouch:
				// Touching at a shared vertex is fine; touching mid-edge is
				// not.
				shared := ea == ne[0] || ea == ne[1] || eb == ne[0] || eb == ne[1]
				if !shared {
					return false
				}
			default:
				return false
			}
		}
		// A newly created apex must keep clearance from unrelated edges.
		if c == int32(len(m.pts)-1) && ea != c && eb != c && ea != a && eb != b && ea != b && eb != a {
			if geom.PointSegDist(pc, qs) < clearance {
				return false
			}
		}
	}
	return true
}

func (m *mesher) run() error {
	for len(m.front) > 0 {
		if len(m.tris) > m.opt.MaxTriangles {
			return fmt.Errorf("front: exceeded %d triangles; stalled front or undersized MaxTriangles", m.opt.MaxTriangles)
		}
		// Pop the shortest live edge.
		var e *fedge
		for m.heap.Len() > 0 {
			cand := heap.Pop(&m.heap).(*fedge)
			if !cand.dead {
				e = cand
				break
			}
		}
		if e == nil {
			return fmt.Errorf("front: heap drained with %d live edges", len(m.front))
		}
		if err := m.advance(e); err != nil {
			return err
		}
	}
	return nil
}

// advance retires front edge e with the best apex candidate.
func (m *mesher) advance(e *fedge) error {
	a, b := e.a, e.b
	pa, pb := m.pts[a], m.pts[b]
	mid := pa.Mid(pb)
	h := m.targetLen(mid)
	base := pb.Sub(pa)
	// Interior is on the left: the ideal apex sits at the equilateral
	// height on the left side, scaled toward the sizing target.
	apexHeight := math.Sqrt(math.Max(h*h-base.Len2()/4, 0.2*h*h))
	ideal := mid.Add(base.Perp().Unit().Scale(apexHeight))

	// Candidate existing vertices: endpoints of nearby front edges within
	// a generous radius of the ideal point, ranked by distance to ideal.
	type cand struct {
		v int32
		d float64
	}
	var cands []cand
	seen := map[int32]bool{a: true, b: true}
	for _, key := range m.nearbyEdges(ideal, 1.5*h+e.len) {
		for _, v := range key {
			if seen[v] {
				continue
			}
			seen[v] = true
			d := m.pts[v].Dist(ideal)
			if d < 1.2*h {
				cands = append(cands, cand{v, d})
			}
		}
	}
	// Sort by closeness to the ideal point (insertion sort; few items).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].d < cands[j-1].d; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	clearance := 0.35 * h
	for _, cd := range cands {
		if m.validTriangle(a, b, cd.v, 0) {
			m.commit(e, cd.v)
			return nil
		}
	}
	// Place the ideal vertex, retreating toward the edge when the ideal
	// spot is blocked.
	for _, scale := range []float64{1, 0.7, 0.45, 0.25} {
		p := mid.Add(base.Perp().Unit().Scale(apexHeight * scale))
		v := m.vertex(p)
		if int(v) == len(m.pts)-1 && m.validTriangle(a, b, v, clearance*scale) {
			m.commit(e, v)
			return nil
		}
		if int(v) == len(m.pts)-1 {
			// Roll back the tentative vertex (it is the last one and has
			// no references yet).
			delete(m.vindex, p)
			m.pts = m.pts[:len(m.pts)-1]
		}
	}
	// Last resort: any front vertex that forms a valid triangle.
	bestV := int32(-1)
	bestD := math.Inf(1)
	for _, key := range m.nearbyEdges(mid, 4*h+2*e.len) {
		for _, v := range key {
			if v == a || v == b {
				continue
			}
			if geom.Orient2DSign(pa, pb, m.pts[v]) <= 0 {
				continue
			}
			if d := m.pts[v].Dist(mid); d < bestD && m.validTriangle(a, b, v, 0) {
				bestD = d
				bestV = v
			}
		}
	}
	if bestV >= 0 {
		m.commit(e, bestV)
		return nil
	}
	return fmt.Errorf("front: stalled at edge (%v, %v)", pa, pb)
}

func (m *mesher) commit(e *fedge, c int32) {
	m.removeFront(e)
	m.tris = append(m.tris, [3]int32{e.a, e.b, c})
	m.addFront(e.a, c)
	m.addFront(c, e.b)
}

func (m *mesher) build() *mesh.Mesh {
	b := mesh.NewBuilder()
	for _, t := range m.tris {
		b.AddTriangle(m.pts[t[0]], m.pts[t[1]], m.pts[t[2]])
	}
	return b.Mesh()
}

// subdivide returns the interior points splitting segment (a, b) into
// pieces no longer than the local target length (exclusive of both
// endpoints).
func subdivide(a, b geom.Point, target func(geom.Point) float64) []geom.Point {
	h := target(a.Mid(b))
	if h <= 0 {
		return nil
	}
	n := int(math.Ceil(a.Dist(b) / h))
	if n <= 1 {
		return nil
	}
	out := make([]geom.Point, 0, n-1)
	for k := 1; k < n; k++ {
		out = append(out, a.Lerp(b, float64(k)/float64(n)))
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
