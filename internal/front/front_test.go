package front

import (
	"math"
	"testing"

	"pamg2d/internal/delaunay"
	"pamg2d/internal/geom"
	"pamg2d/internal/sizing"
)

func square(s float64) []geom.Point {
	return []geom.Point{geom.Pt(0, 0), geom.Pt(s, 0), geom.Pt(s, s), geom.Pt(0, s)}
}

func circle(cx, cy, r float64, n int, ccw bool) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		th := 2 * math.Pi * float64(i) / float64(n)
		if !ccw {
			th = -th
		}
		pts[i] = geom.Pt(cx+r*math.Cos(th), cy+r*math.Sin(th))
	}
	return pts
}

func TestSquareUniform(t *testing.T) {
	m, err := Mesh([][]geom.Point{square(4)}, Options{SizeAt: sizing.Uniform(0.3)})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
	if got := m.Area(); math.Abs(got-16) > 1e-9 {
		t.Errorf("area = %v, want 16", got)
	}
	// Rough element count: area / target.
	if n := m.NumTriangles(); n < 30 || n > 300 {
		t.Errorf("triangles = %d; expected on the order of 16/0.3", n)
	}
	q := m.Quality()
	if q.MinAngleDeg < 10 {
		t.Errorf("min angle %.1f deg; advancing front should stay above 10", q.MinAngleDeg)
	}
}

func TestCircleWithHole(t *testing.T) {
	outer := circle(0, 0, 3, 48, true)
	hole := circle(0, 0, 1, 24, false) // CW: a hole
	m, err := Mesh([][]geom.Point{outer, hole}, Options{SizeAt: sizing.Uniform(0.2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
	// Annulus area between the polygonal rings.
	polyArea := func(pts []geom.Point) float64 {
		var s float64
		n := len(pts)
		for i := 0; i < n; i++ {
			p, q := pts[i], pts[(i+1)%n]
			s += p.X*q.Y - q.X*p.Y
		}
		return s / 2
	}
	want := polyArea(outer) + polyArea(hole) // hole is CW: negative
	if got := m.Area(); math.Abs(got-want) > 1e-9*want {
		t.Errorf("area = %v, want %v", got, want)
	}
	// No triangle centroid inside the hole.
	for _, tri := range m.Triangles {
		a, b, c := m.Points[tri[0]], m.Points[tri[1]], m.Points[tri[2]]
		cx, cy := (a.X+b.X+c.X)/3, (a.Y+b.Y+c.Y)/3
		if math.Hypot(cx, cy) < 0.95 {
			t.Fatalf("triangle centroid (%v,%v) inside the hole", cx, cy)
		}
	}
}

func TestGradedSizing(t *testing.T) {
	size := func(p geom.Point) float64 {
		h := 0.1 + 0.3*math.Hypot(p.X-2, p.Y-2)
		return math.Sqrt(3) / 4 * h * h
	}
	m, err := Mesh([][]geom.Point{square(4)}, Options{SizeAt: size})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
	// Cells near the center (2,2) must be smaller than corner cells.
	var nearSum, nearN, farSum, farN float64
	for _, tri := range m.Triangles {
		a, b, c := m.Points[tri[0]], m.Points[tri[1]], m.Points[tri[2]]
		cx, cy := (a.X+b.X+c.X)/3, (a.Y+b.Y+c.Y)/3
		area := math.Abs(geom.TriangleArea(a, b, c))
		if math.Hypot(cx-2, cy-2) < 0.7 {
			nearSum += area
			nearN++
		} else if math.Hypot(cx-2, cy-2) > 2 {
			farSum += area
			farN++
		}
	}
	if nearN == 0 || farN == 0 {
		t.Fatal("sampling regions empty")
	}
	if nearSum/nearN >= farSum/farN {
		t.Errorf("graded AF mesh: near mean area %v not smaller than far %v", nearSum/nearN, farSum/farN)
	}
}

func TestConcaveDomain(t *testing.T) {
	l := []geom.Point{
		geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 2), geom.Pt(2, 2), geom.Pt(2, 4), geom.Pt(0, 4),
	}
	m, err := Mesh([][]geom.Point{l}, Options{SizeAt: sizing.Uniform(0.25)})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
	if got := m.Area(); math.Abs(got-12) > 1e-9 {
		t.Errorf("L-domain area = %v, want 12", got)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Mesh([][]geom.Point{square(1)}, Options{}); err == nil {
		t.Error("missing sizing must fail")
	}
	if _, err := Mesh([][]geom.Point{{geom.Pt(0, 0), geom.Pt(1, 0)}}, Options{SizeAt: sizing.Uniform(1)}); err == nil {
		t.Error("two-point loop must fail")
	}
	// A CW outer loop (negative area) must be rejected.
	cw := square(2)
	for i, j := 0, len(cw)-1; i < j; i, j = i+1, j-1 {
		cw[i], cw[j] = cw[j], cw[i]
	}
	if _, err := Mesh([][]geom.Point{cw}, Options{SizeAt: sizing.Uniform(1)}); err == nil {
		t.Error("CW outer loop must fail")
	}
}

func BenchmarkFrontVsRuppert(b *testing.B) {
	size := sizing.Uniform(0.02)
	b.Run("advancing-front", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Mesh([][]geom.Point{square(4)}, Options{SizeAt: size}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func TestQualityAfterCleanup(t *testing.T) {
	m, err := Mesh([][]geom.Point{square(4)}, Options{SizeAt: sizing.Uniform(0.05)})
	if err != nil {
		t.Fatal(err)
	}
	q := m.Quality()
	t.Logf("advancing front: %d triangles, min angle %.1f, worst ratio %.2f",
		m.NumTriangles(), q.MinAngleDeg, q.MaxRadiusEdge)
	if q.MinAngleDeg < 12 {
		t.Errorf("min angle %.1f after flip+smooth cleanup", q.MinAngleDeg)
	}
}

// TestComparableToRuppert checks the two paradigms produce comparable
// meshes on the same domain and sizing: similar element counts, both
// passing audits.
func TestComparableToRuppert(t *testing.T) {
	size := sizing.Uniform(0.08)
	af, err := Mesh([][]geom.Point{square(4)}, Options{SizeAt: size})
	if err != nil {
		t.Fatal(err)
	}
	in := delaunay.Input{
		Points:   square(4),
		Segments: [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
	res, err := delaunay.TriangulateRefined(in, delaunay.Quality{
		MaxRadiusEdgeRatio: math.Sqrt2, SizeAt: size,
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(af.NumTriangles()) / float64(len(res.Triangles))
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("element counts diverge: AF %d vs Ruppert %d", af.NumTriangles(), len(res.Triangles))
	}
}
