package front

import (
	"pamg2d/internal/geom"
)

// Advancing-front meshes are cleaned up by the classical post-pass:
// Delaunay edge flipping removes the slivers left where fronts collide,
// and Laplacian smoothing of interior vertices (boundary vertices stay
// fixed) evens out the element sizes. Flips and smoothing alternate for a
// few rounds, each step validated so the mesh stays CCW and conforming.

// postProcess runs the flip/smooth rounds on the mesher's triangle soup.
func (m *mesher) postProcess(boundary map[int32]bool) {
	for round := 0; round < 4; round++ {
		flips := m.flipToDelaunay()
		moved := m.smoothInterior(boundary)
		if flips == 0 && moved == 0 {
			break
		}
	}
}

// flipToDelaunay performs local incircle flips until no interior edge
// violates the Delaunay criterion (or an iteration cap fires). Returns the
// number of flips performed.
func (m *mesher) flipToDelaunay() int {
	total := 0
	for pass := 0; pass < 30; pass++ {
		type ek struct{ a, b int32 }
		owner := make(map[ek]int, 3*len(m.tris))
		for i, t := range m.tris {
			for e := 0; e < 3; e++ {
				owner[ek{t[e], t[(e+1)%3]}] = i
			}
		}
		touched := make([]bool, len(m.tris))
		flips := 0
		for i := range m.tris {
			if touched[i] {
				continue
			}
			t := m.tris[i]
			for e := 0; e < 3; e++ {
				a, b := t[e], t[(e+1)%3]
				j, ok := owner[ek{b, a}]
				if !ok || j == i || touched[j] {
					continue
				}
				c := t[(e+2)%3] // apex of triangle i
				// Apex of triangle j across (b,a).
				tj := m.tris[j]
				var d int32 = -1
				for k := 0; k < 3; k++ {
					if tj[k] == b && tj[(k+1)%3] == a {
						d = tj[(k+2)%3]
					}
				}
				if d < 0 {
					continue
				}
				pa, pb, pc, pd := m.pts[a], m.pts[b], m.pts[c], m.pts[d]
				if geom.InCircle(pa, pb, pc, pd) <= 0 {
					continue // locally Delaunay
				}
				// Flip (a,b) -> (c,d), valid only when the quad is convex.
				if geom.Orient2DSign(pc, pd, pa) >= 0 || geom.Orient2DSign(pc, pd, pb) <= 0 {
					continue
				}
				m.tris[i] = [3]int32{c, a, d}
				m.tris[j] = [3]int32{d, b, c}
				touched[i] = true
				touched[j] = true
				flips++
				break
			}
		}
		total += flips
		if flips == 0 {
			return total
		}
	}
	return total
}

// smoothInterior moves each non-boundary vertex toward the centroid of its
// neighbors, keeping every incident triangle CCW. Returns how many
// vertices moved.
func (m *mesher) smoothInterior(boundary map[int32]bool) int {
	n := len(m.pts)
	neighbors := make(map[int32]map[int32]bool, n)
	incident := make(map[int32][]int, n)
	for ti, t := range m.tris {
		for e := 0; e < 3; e++ {
			v := t[e]
			if neighbors[v] == nil {
				neighbors[v] = map[int32]bool{}
			}
			neighbors[v][t[(e+1)%3]] = true
			neighbors[v][t[(e+2)%3]] = true
			incident[v] = append(incident[v], ti)
		}
	}
	moved := 0
	for v := int32(0); v < int32(n); v++ {
		if boundary[v] || len(neighbors[v]) == 0 {
			continue
		}
		var sx, sy float64
		for nb := range neighbors[v] {
			sx += m.pts[nb].X
			sy += m.pts[nb].Y
		}
		k := float64(len(neighbors[v]))
		cand := geom.Pt(sx/k, sy/k)
		if cand == m.pts[v] {
			continue
		}
		old := m.pts[v]
		m.pts[v] = cand
		ok := true
		for _, ti := range incident[v] {
			t := m.tris[ti]
			if geom.Orient2DSign(m.pts[t[0]], m.pts[t[1]], m.pts[t[2]]) <= 0 {
				ok = false
				break
			}
		}
		if !ok {
			m.pts[v] = old
			continue
		}
		moved++
	}
	return moved
}
