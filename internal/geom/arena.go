package geom

import "sync"

// expArena is a bump allocator for expansion scratch. The exact predicate
// fallbacks build dozens of short-lived expansions per call; carving them
// out of one pooled block instead of the heap removes the dominant
// allocation source of the Delaunay kernel (only a scalar estimate escapes
// a predicate, so the whole block is reusable the moment the call returns).
type expArena struct {
	buf []float64
	off int
}

var expArenaPool = sync.Pool{
	New: func() any { return &expArena{buf: make([]float64, 4096)} },
}

func getArena() *expArena { return expArenaPool.Get().(*expArena) }

func putArena(a *expArena) {
	a.off = 0
	expArenaPool.Put(a)
}

// take returns a zero-length slice with capacity n carved from the block.
// If the block is exhausted it is replaced with a larger one; slices handed
// out earlier remain valid because their callers still reference the old
// block.
func (a *expArena) take(n int) []float64 {
	if a.off+n > len(a.buf) {
		size := 2 * len(a.buf)
		for size < n {
			size *= 2
		}
		a.buf = make([]float64, size)
		a.off = 0
	}
	s := a.buf[a.off:a.off : a.off+n]
	a.off += n
	return s
}

// pair returns the two-component expansion {lo, hi} in arena storage.
func (a *expArena) pair(lo, hi float64) []float64 {
	h := a.take(2)
	return append(h, lo, hi)
}

// sum is expSum with the output carved from the arena. The semantics are
// identical, including returning an input unchanged when the other is
// empty.
func (a *expArena) sum(e, f []float64) []float64 {
	if len(e) == 0 {
		return f
	}
	if len(f) == 0 {
		return e
	}
	h := a.take(len(e) + len(f))
	ei, fi := 0, 0
	enow, fnow := e[0], f[0]
	var q, hh float64
	if absLess(fnow, enow) {
		q = fnow
		fi++
	} else {
		q = enow
		ei++
	}
	if ei < len(e) && fi < len(f) {
		enow, fnow = e[ei], f[fi]
		if absLess(fnow, enow) {
			q, hh = fastTwoSum(fnow, q)
			fi++
		} else {
			q, hh = fastTwoSum(enow, q)
			ei++
		}
		if hh != 0 {
			h = append(h, hh)
		}
		for ei < len(e) && fi < len(f) {
			enow, fnow = e[ei], f[fi]
			if absLess(fnow, enow) {
				q, hh = twoSum(q, fnow)
				fi++
			} else {
				q, hh = twoSum(q, enow)
				ei++
			}
			if hh != 0 {
				h = append(h, hh)
			}
		}
	}
	for ei < len(e) {
		q, hh = twoSum(q, e[ei])
		ei++
		if hh != 0 {
			h = append(h, hh)
		}
	}
	for fi < len(f) {
		q, hh = twoSum(q, f[fi])
		fi++
		if hh != 0 {
			h = append(h, hh)
		}
	}
	if q != 0 || len(h) == 0 {
		h = append(h, q)
	}
	return h
}

// scale is expScale with the output carved from the arena.
func (a *expArena) scale(e []float64, b float64) []float64 {
	if len(e) == 0 || b == 0 {
		h := a.take(1)
		return append(h, 0)
	}
	h := a.take(2 * len(e))
	q, hh := twoProduct(e[0], b)
	if hh != 0 {
		h = append(h, hh)
	}
	for i := 1; i < len(e); i++ {
		t1, t0 := twoProduct(e[i], b)
		var sum float64
		sum, hh = twoSum(q, t0)
		if hh != 0 {
			h = append(h, hh)
		}
		q, hh = fastTwoSum(t1, sum)
		if hh != 0 {
			h = append(h, hh)
		}
	}
	if q != 0 || len(h) == 0 {
		h = append(h, q)
	}
	return h
}

// mul is expMul with all intermediates carved from the arena.
func (a *expArena) mul(e, f []float64) []float64 {
	prod := a.take(1)
	prod = append(prod, 0)
	for _, c := range e {
		if c == 0 {
			continue
		}
		prod = a.sum(prod, a.scale(f, c))
	}
	return prod
}

// twoTwoDiff is the package-level twoTwoDiff with arena storage.
func (a *expArena) twoTwoDiff(x, y, z, w float64) []float64 {
	p1, p0 := twoProduct(x, y)
	q1, q0 := twoProduct(z, w)
	return a.sum(a.pair(p0, p1), a.pair(-q0, -q1))
}

func absLess(a, b float64) bool {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	return a < b
}
