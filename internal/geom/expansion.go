package geom

// Floating-point expansion arithmetic after Shewchuk, "Adaptive Precision
// Floating-Point Arithmetic and Fast Robust Geometric Predicates" (1997).
//
// An expansion is a sum of floating-point components stored in order of
// increasing magnitude, where the components are nonoverlapping. The exact
// value of the expansion is the exact sum of its components, so arbitrary
// exact values produced by +, -, * on doubles can be represented and their
// signs determined without error.

// twoSum computes a+b exactly as x (rounded sum) plus y (roundoff).
func twoSum(a, b float64) (x, y float64) {
	x = a + b
	bv := x - a
	av := x - bv
	br := b - bv
	ar := a - av
	return x, ar + br
}

// fastTwoSum computes a+b exactly when |a| >= |b|.
func fastTwoSum(a, b float64) (x, y float64) {
	x = a + b
	bv := x - a
	return x, b - bv
}

// twoDiff computes a-b exactly as x (rounded difference) plus y (roundoff).
func twoDiff(a, b float64) (x, y float64) {
	x = a - b
	bv := a - x
	av := x + bv
	br := bv - b
	ar := a - av
	return x, ar + br
}

// splitter is 2^27+1 for IEEE binary64; used by split.
const splitter = 134217729.0

// split breaks a into hi and lo halves with at most 26 nonzero bits each,
// such that a = hi + lo exactly.
func split(a float64) (hi, lo float64) {
	c := splitter * a
	big := c - a
	hi = c - big
	lo = a - hi
	return hi, lo
}

// twoProduct computes a*b exactly as x (rounded product) plus y (roundoff).
func twoProduct(a, b float64) (x, y float64) {
	x = a * b
	ahi, alo := split(a)
	bhi, blo := split(b)
	e1 := x - ahi*bhi
	e2 := e1 - alo*bhi
	e3 := e2 - ahi*blo
	return x, alo*blo - e3
}

// expSum returns the zero-eliminated sum of expansions e and f
// (fast expansion sum with zero elimination). The inputs must be valid
// expansions (increasing magnitude, nonoverlapping); the output is too.
func expSum(e, f []float64) []float64 {
	if len(e) == 0 {
		return f
	}
	if len(f) == 0 {
		return e
	}
	h := make([]float64, 0, len(e)+len(f))
	ei, fi := 0, 0
	enow, fnow := e[0], f[0]
	var q, hh float64
	// Merge the two expansions by magnitude, accumulating with fast/two-sum.
	absLess := func(a, b float64) bool {
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		return a < b
	}
	if absLess(fnow, enow) {
		q = fnow
		fi++
	} else {
		q = enow
		ei++
	}
	if ei < len(e) && fi < len(f) {
		enow, fnow = e[ei], f[fi]
		if absLess(fnow, enow) {
			q, hh = fastTwoSum(fnow, q)
			fi++
		} else {
			q, hh = fastTwoSum(enow, q)
			ei++
		}
		if hh != 0 {
			h = append(h, hh)
		}
		for ei < len(e) && fi < len(f) {
			enow, fnow = e[ei], f[fi]
			if absLess(fnow, enow) {
				q, hh = twoSum(q, fnow)
				fi++
			} else {
				q, hh = twoSum(q, enow)
				ei++
			}
			if hh != 0 {
				h = append(h, hh)
			}
		}
	}
	for ei < len(e) {
		q, hh = twoSum(q, e[ei])
		ei++
		if hh != 0 {
			h = append(h, hh)
		}
	}
	for fi < len(f) {
		q, hh = twoSum(q, f[fi])
		fi++
		if hh != 0 {
			h = append(h, hh)
		}
	}
	if q != 0 || len(h) == 0 {
		h = append(h, q)
	}
	return h
}

// expScale returns the zero-eliminated product of expansion e and scalar b.
func expScale(e []float64, b float64) []float64 {
	if len(e) == 0 || b == 0 {
		return []float64{0}
	}
	h := make([]float64, 0, 2*len(e))
	q, hh := twoProduct(e[0], b)
	if hh != 0 {
		h = append(h, hh)
	}
	for i := 1; i < len(e); i++ {
		t1, t0 := twoProduct(e[i], b)
		var sum float64
		sum, hh = twoSum(q, t0)
		if hh != 0 {
			h = append(h, hh)
		}
		q, hh = fastTwoSum(t1, sum)
		if hh != 0 {
			h = append(h, hh)
		}
	}
	if q != 0 || len(h) == 0 {
		h = append(h, q)
	}
	return h
}

// expMul returns the exact product of expansions e and f. Cost is
// O(len(e)*len(f)) components before zero elimination; used only in exact
// fallbacks, never on fast paths.
func expMul(e, f []float64) []float64 {
	prod := []float64{0}
	for _, c := range e {
		if c == 0 {
			continue
		}
		prod = expSum(prod, expScale(f, c))
	}
	return prod
}

// expNeg negates expansion e in place and returns it.
func expNeg(e []float64) []float64 {
	for i := range e {
		e[i] = -e[i]
	}
	return e
}

// expSign returns the sign of the exact value of expansion e: -1, 0 or +1.
// The most significant (last) nonzero component carries the sign.
func expSign(e []float64) int {
	for i := len(e) - 1; i >= 0; i-- {
		if e[i] > 0 {
			return 1
		}
		if e[i] < 0 {
			return -1
		}
	}
	return 0
}

// expEstimate returns a floating-point approximation of expansion e.
func expEstimate(e []float64) float64 {
	var s float64
	for _, c := range e {
		s += c
	}
	return s
}

// twoTwoDiff returns the exact 4-component expansion of a*b - c*d where each
// product is computed via twoProduct. Result has increasing magnitude.
func twoTwoDiff(a, b, c, d float64) []float64 {
	p1, p0 := twoProduct(a, b)
	q1, q0 := twoProduct(c, d)
	return expSum([]float64{p0, p1}, []float64{-q0, -q1})
}
