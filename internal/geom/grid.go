package geom

import "math"

// Grid is a uniform spatial binning of a bounding box, used to hash points
// to cells in O(1). The Delaunay kernel seeds its point-location walks from
// the most recent vertex in the query point's cell, which bounds the walk
// length when the insertion order has no spatial coherence (a cheap stand-in
// for a BRIO ordering).
type Grid struct {
	bb         BBox
	nx, ny     int
	invW, invH float64
}

// NewGrid builds a grid over bb with approximately targetCells cells,
// distributed across the two axes in proportion to the box's aspect ratio.
// targetCells below 1 yields a single cell.
func NewGrid(bb BBox, targetCells int) *Grid {
	if targetCells < 1 {
		targetCells = 1
	}
	w, h := bb.Width(), bb.Height()
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	// nx/ny ~ w/h with nx*ny ~ targetCells.
	nx := int(math.Round(math.Sqrt(float64(targetCells) * w / h)))
	if nx < 1 {
		nx = 1
	}
	ny := (targetCells + nx - 1) / nx
	if ny < 1 {
		ny = 1
	}
	return &Grid{
		bb:   bb,
		nx:   nx,
		ny:   ny,
		invW: float64(nx) / w,
		invH: float64(ny) / h,
	}
}

// NumCells returns the total number of cells.
func (g *Grid) NumCells() int { return g.nx * g.ny }

// Cell returns the index of the cell containing p, clamping points outside
// the box to the border cells.
func (g *Grid) Cell(p Point) int {
	ix := int((p.X - g.bb.Min.X) * g.invW)
	if ix < 0 {
		ix = 0
	} else if ix >= g.nx {
		ix = g.nx - 1
	}
	iy := int((p.Y - g.bb.Min.Y) * g.invH)
	if iy < 0 {
		iy = 0
	} else if iy >= g.ny {
		iy = g.ny - 1
	}
	return iy*g.nx + ix
}
