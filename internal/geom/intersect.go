package geom

// Segment intersection built on the exact orientation predicate, plus a
// numeric intersection-point solver for the boundary-layer clipping code.

// SegIntersectKind classifies how two segments meet.
type SegIntersectKind int

const (
	// SegDisjoint means the segments share no point.
	SegDisjoint SegIntersectKind = iota
	// SegCross means the segments cross at a single interior point of both.
	SegCross
	// SegTouch means the segments share a single point that is an endpoint
	// of at least one of them.
	SegTouch
	// SegOverlap means the segments are collinear and share more than one
	// point.
	SegOverlap
)

// SegmentsIntersect reports whether segments s and t share any point, and
// classifies the intersection. The classification is exact (it uses the
// robust orientation predicate).
func SegmentsIntersect(s, t Segment) SegIntersectKind {
	d1 := Orient2DSign(t.A, t.B, s.A)
	d2 := Orient2DSign(t.A, t.B, s.B)
	d3 := Orient2DSign(s.A, s.B, t.A)
	d4 := Orient2DSign(s.A, s.B, t.B)

	if d1*d2 < 0 && d3*d4 < 0 {
		return SegCross
	}
	if d1 == 0 && d2 == 0 && d3 == 0 && d4 == 0 {
		// Collinear (or degenerate): check 1-D overlap along the dominant
		// axis of the combined extent, shared by both segments.
		bb := s.BBox().Union(t.BBox())
		useX := bb.Width() >= bb.Height()
		lo1, hi1 := orderedRange(s, useX)
		lo2, hi2 := orderedRange(t, useX)
		if hi1 < lo2 || hi2 < lo1 {
			return SegDisjoint
		}
		if hi1 == lo2 || hi2 == lo1 {
			return SegTouch
		}
		return SegOverlap
	}
	onSeg := func(sign int, seg Segment, p Point) bool {
		return sign == 0 && seg.BBox().Contains(p)
	}
	if onSeg(d1, t, s.A) || onSeg(d2, t, s.B) || onSeg(d3, s, t.A) || onSeg(d4, s, t.B) {
		return SegTouch
	}
	return SegDisjoint
}

// orderedRange returns the coordinate range of the segment along the given
// axis, ordered lo <= hi. Used only for collinear overlap tests.
func orderedRange(s Segment, useX bool) (lo, hi float64) {
	var a, b float64
	if useX {
		a, b = s.A.X, s.B.X
	} else {
		a, b = s.A.Y, s.B.Y
	}
	if a <= b {
		return a, b
	}
	return b, a
}

// SegmentIntersection returns the intersection point of segments s and t
// when they intersect in exactly one point, along with the parameter u in
// [0,1] locating the point along s. ok is false for disjoint or collinear
// overlapping segments.
func SegmentIntersection(s, t Segment) (p Point, u float64, ok bool) {
	kind := SegmentsIntersect(s, t)
	if kind == SegDisjoint || kind == SegOverlap {
		return Point{}, 0, false
	}
	r := s.B.Sub(s.A)
	d := t.B.Sub(t.A)
	denom := r.Cross(d)
	if denom == 0 {
		// Touching at an endpoint with collinear direction; pick the shared
		// endpoint.
		switch {
		case s.A == t.A || s.A == t.B:
			return s.A, 0, true
		case s.B == t.A || s.B == t.B:
			return s.B, 1, true
		default:
			// Collinear touch without equal endpoints (an endpoint interior
			// to the other segment). Project t's endpoints onto s.
			for _, q := range []Point{t.A, t.B} {
				w := q.Sub(s.A)
				tt := w.Dot(r) / r.Len2()
				if tt >= 0 && tt <= 1 {
					return q, tt, true
				}
			}
			return Point{}, 0, false
		}
	}
	w := t.A.Sub(s.A)
	u = w.Cross(d) / denom
	if u < 0 {
		u = 0
	} else if u > 1 {
		u = 1
	}
	return s.A.Lerp(s.B, u), u, true
}

// PointSegDist returns the distance from point p to segment s.
func PointSegDist(p Point, s Segment) float64 {
	r := s.B.Sub(s.A)
	l2 := r.Len2()
	if l2 == 0 {
		return p.Dist(s.A)
	}
	t := p.Sub(s.A).Dot(r) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return p.Dist(s.A.Lerp(s.B, t))
}

// InDiametralCircle reports whether point p lies strictly inside the
// diametral circle of segment s (the circle with s as diameter). This is
// the encroachment test used by Ruppert refinement.
func InDiametralCircle(p Point, s Segment) bool {
	// p is inside the diametral circle iff angle(A, p, B) > 90 degrees,
	// i.e. (A-p) . (B-p) < 0.
	return s.A.Sub(p).Dot(s.B.Sub(p)) < 0
}
