package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func seg(ax, ay, bx, by float64) Segment {
	return Segment{Point{ax, ay}, Point{bx, by}}
}

func TestSegmentsIntersectCases(t *testing.T) {
	cases := []struct {
		name string
		s, u Segment
		want SegIntersectKind
	}{
		{"crossing X", seg(0, 0, 2, 2), seg(0, 2, 2, 0), SegCross},
		{"disjoint parallel", seg(0, 0, 1, 0), seg(0, 1, 1, 1), SegDisjoint},
		{"disjoint skew", seg(0, 0, 1, 0), seg(2, 1, 3, -1), SegDisjoint},
		{"touch at shared endpoint", seg(0, 0, 1, 0), seg(1, 0, 2, 1), SegTouch},
		{"T junction", seg(0, 0, 2, 0), seg(1, 0, 1, 1), SegTouch},
		{"collinear overlap", seg(0, 0, 2, 0), seg(1, 0, 3, 0), SegOverlap},
		{"collinear touch", seg(0, 0, 1, 0), seg(1, 0, 2, 0), SegTouch},
		{"collinear disjoint", seg(0, 0, 1, 0), seg(2, 0, 3, 0), SegDisjoint},
		{"vertical collinear overlap", seg(0, 0, 0, 2), seg(0, 1, 0, 3), SegOverlap},
		{"identical", seg(0, 0, 1, 1), seg(0, 0, 1, 1), SegOverlap},
		{"near miss", seg(0, 0, 1, 1), seg(0, 1e-12, -1, 1), SegDisjoint},
	}
	for _, c := range cases {
		if got := SegmentsIntersect(c.s, c.u); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
		// Symmetry.
		if got := SegmentsIntersect(c.u, c.s); got != c.want {
			t.Errorf("%s (swapped): got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSegmentIntersectionPoint(t *testing.T) {
	p, u, ok := SegmentIntersection(seg(0, 0, 2, 2), seg(0, 2, 2, 0))
	if !ok {
		t.Fatal("expected intersection")
	}
	if p.Dist(Point{1, 1}) > 1e-12 {
		t.Errorf("intersection point %v, want (1,1)", p)
	}
	if math.Abs(u-0.5) > 1e-12 {
		t.Errorf("parameter %v, want 0.5", u)
	}
}

func TestSegmentIntersectionSharedEndpoint(t *testing.T) {
	p, u, ok := SegmentIntersection(seg(0, 0, 1, 0), seg(1, 0, 2, 1))
	if !ok || p != (Point{1, 0}) || u != 1 {
		t.Errorf("shared endpoint: got %v u=%v ok=%v", p, u, ok)
	}
}

func TestSegmentIntersectionDisjoint(t *testing.T) {
	if _, _, ok := SegmentIntersection(seg(0, 0, 1, 0), seg(0, 1, 1, 1)); ok {
		t.Error("disjoint segments must not intersect")
	}
	if _, _, ok := SegmentIntersection(seg(0, 0, 2, 0), seg(1, 0, 3, 0)); ok {
		t.Error("collinear overlap has no unique point")
	}
}

func TestSegmentIntersectionConsistency(t *testing.T) {
	// Whenever the classifier says Cross, the solver must return a point
	// that lies on (near) both segments.
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		clamp := func(v float64) float64 { return math.Mod(v, 100) }
		s := Segment{Point{clamp(ax), clamp(ay)}, Point{clamp(bx), clamp(by)}}
		u := Segment{Point{clamp(cx), clamp(cy)}, Point{clamp(dx), clamp(dy)}}
		kind := SegmentsIntersect(s, u)
		if kind != SegCross {
			return true
		}
		p, _, ok := SegmentIntersection(s, u)
		if !ok {
			return false
		}
		scale := s.Len() + u.Len() + 1
		return PointSegDist(p, s) < 1e-9*scale && PointSegDist(p, u) < 1e-9*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPointSegDist(t *testing.T) {
	s := seg(0, 0, 2, 0)
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{1, 1}, 1},
		{Point{-1, 0}, 1},
		{Point{3, 0}, 1},
		{Point{1, 0}, 0},
		{Point{0, 0}, 0},
		{Point{-3, 4}, 5},
	}
	for _, c := range cases {
		if got := PointSegDist(c.p, s); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PointSegDist(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Degenerate zero-length segment.
	if got := PointSegDist(Point{3, 4}, seg(0, 0, 0, 0)); math.Abs(got-5) > 1e-12 {
		t.Errorf("degenerate segment: got %v, want 5", got)
	}
}

func TestInDiametralCircle(t *testing.T) {
	s := seg(0, 0, 2, 0) // diametral circle: center (1,0), radius 1
	if !InDiametralCircle(Point{1, 0.5}, s) {
		t.Error("(1,0.5) must be inside")
	}
	if InDiametralCircle(Point{1, 1}, s) {
		t.Error("(1,1) is on the circle, not strictly inside")
	}
	if InDiametralCircle(Point{3, 0}, s) {
		t.Error("(3,0) must be outside")
	}
	if InDiametralCircle(Point{0, 0}, s) {
		t.Error("segment endpoint is on the circle, not inside")
	}
}

func TestBBoxOps(t *testing.T) {
	b := EmptyBBox()
	if !b.Empty() {
		t.Error("EmptyBBox must be empty")
	}
	b = b.Extend(Point{1, 2}).Extend(Point{-1, 5})
	if b.Min != (Point{-1, 2}) || b.Max != (Point{1, 5}) {
		t.Errorf("extend: got %+v", b)
	}
	if !b.Contains(Point{0, 3}) || b.Contains(Point{0, 6}) {
		t.Error("contains failed")
	}
	c := BBox{Point{0.5, 4}, Point{3, 9}}
	if !b.Intersects(c) || !c.Intersects(b) {
		t.Error("intersects failed")
	}
	d := BBox{Point{2, 2}, Point{3, 3}}
	if b.Intersects(d) {
		t.Error("non-overlapping boxes must not intersect")
	}
	if got := b.Union(d); got.Min != (Point{-1, 2}) || got.Max != (Point{3, 5}) {
		t.Errorf("union: got %+v", got)
	}
	if got := b.Union(EmptyBBox()); got != b {
		t.Errorf("union with empty: got %+v", got)
	}
}

func TestVecOps(t *testing.T) {
	v := Vec{3, 4}
	if v.Len() != 5 {
		t.Errorf("Len = %v", v.Len())
	}
	if v.Unit().Len() != 1 {
		t.Errorf("Unit().Len() = %v", v.Unit().Len())
	}
	if (Vec{0, 0}).Unit() != (Vec{0, 0}) {
		t.Error("unit of zero vector must be zero")
	}
	if v.Perp() != (Vec{-4, 3}) {
		t.Errorf("Perp = %v", v.Perp())
	}
	if v.Perp().Dot(v) != 0 {
		t.Error("Perp must be orthogonal")
	}
	w := v.Rotate(math.Pi / 2)
	if math.Hypot(w.X+4, w.Y-3) > 1e-12 {
		t.Errorf("Rotate pi/2 = %v, want (-4,3)", w)
	}
}

func TestAngleBetween(t *testing.T) {
	v := Vec{1, 0}
	cases := []struct {
		w    Vec
		want float64
	}{
		{Vec{1, 0}, 0},
		{Vec{0, 1}, math.Pi / 2},
		{Vec{-1, 0}, math.Pi},
		{Vec{1, 1}, math.Pi / 4},
	}
	for _, c := range cases {
		if got := v.AngleBetween(c.w); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("AngleBetween(%v) = %v, want %v", c.w, got, c.want)
		}
	}
}

func TestTriangleQualityMeasures(t *testing.T) {
	// Equilateral triangle with unit edges.
	a := Point{0, 0}
	b := Point{1, 0}
	c := Point{0.5, math.Sqrt(3) / 2}
	if got := MinAngle(a, b, c); math.Abs(got-math.Pi/3) > 1e-12 {
		t.Errorf("equilateral MinAngle = %v, want pi/3", got)
	}
	// Circumradius-to-shortest-edge of an equilateral is 1/sqrt(3).
	if got := CircumradiusToShortestEdge(a, b, c); math.Abs(got-1/math.Sqrt(3)) > 1e-12 {
		t.Errorf("equilateral ratio = %v, want %v", got, 1/math.Sqrt(3))
	}
	// Right isoceles: circumradius = hypotenuse/2 = sqrt(2)/2, shortest = 1.
	r := Point{0, 1}
	if got := CircumradiusToShortestEdge(a, b, r); math.Abs(got-math.Sqrt2/2) > 1e-12 {
		t.Errorf("right isoceles ratio = %v, want %v", got, math.Sqrt2/2)
	}
	if got := AspectRatio(a, b, c); math.Abs(got-2/math.Sqrt(3)) > 1e-12 {
		t.Errorf("equilateral aspect = %v, want %v", got, 2/math.Sqrt(3))
	}
	// Degenerate triangle.
	if got := AspectRatio(a, b, Point{2, 0}); !math.IsInf(got, 1) {
		t.Errorf("degenerate aspect = %v, want +Inf", got)
	}
}

func TestLerpAndMid(t *testing.T) {
	p := Point{0, 0}
	q := Point{4, 8}
	if p.Lerp(q, 0.25) != (Point{1, 2}) {
		t.Errorf("Lerp = %v", p.Lerp(q, 0.25))
	}
	if p.Mid(q) != (Point{2, 4}) {
		t.Errorf("Mid = %v", p.Mid(q))
	}
}

func TestRandomCrossingsAgainstBruteForce(t *testing.T) {
	// Compare the exact classifier against a float-based brute force on
	// well-separated random segments (where floats are reliable).
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		s := Segment{Point{rng.Float64(), rng.Float64()}, Point{rng.Float64(), rng.Float64()}}
		u := Segment{Point{rng.Float64(), rng.Float64()}, Point{rng.Float64(), rng.Float64()}}
		d1 := Orient2D(u.A, u.B, s.A)
		d2 := Orient2D(u.A, u.B, s.B)
		d3 := Orient2D(s.A, s.B, u.A)
		d4 := Orient2D(s.A, s.B, u.B)
		// Only check clearly crossing / clearly disjoint configurations.
		const margin = 1e-9
		if abs(d1) < margin || abs(d2) < margin || abs(d3) < margin || abs(d4) < margin {
			continue
		}
		want := SegDisjoint
		if d1*d2 < 0 && d3*d4 < 0 {
			want = SegCross
		}
		if got := SegmentsIntersect(s, u); got != want {
			t.Fatalf("case %d: got %v want %v (%v %v)", i, got, want, s, u)
		}
	}
}
