// Package geom provides the low-level computational geometry substrate for
// the mesh generator: points, vectors, bounding boxes, segments, robust
// adaptive-precision orientation and incircle predicates, and exact segment
// intersection tests.
//
// The predicates follow Shewchuk's filtered-exact approach: a fast
// floating-point evaluation with a forward error bound, falling back to an
// exact evaluation using floating-point expansions when the filter cannot
// certify the sign. All downstream Delaunay code relies on these predicates
// never reporting a wrong sign.
package geom

import (
	"fmt"
	"math"
)

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// Pt returns the point (x, y).
func Pt(x, y float64) Point { return Point{x, y} }

// V returns the vector (x, y).
func V(x, y float64) Vec { return Vec{x, y} }

// Vec is a displacement in the plane.
type Vec struct {
	X, Y float64
}

// Add returns p translated by v.
func (p Point) Add(v Vec) Point { return Point{p.X + v.X, p.Y + v.Y} }

// Sub returns the displacement from q to p.
func (p Point) Sub(q Point) Vec { return Vec{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Mid returns the midpoint of p and q.
func (p Point) Mid(q Point) Point { return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2} }

// Lerp returns the point (1-t)*p + t*q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + t*(q.X-p.X), p.Y + t*(q.Y-p.Y)}
}

func (p Point) String() string { return fmt.Sprintf("(%.17g, %.17g)", p.X, p.Y) }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s} }

// Add returns the vector sum v+w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y} }

// Sub returns the vector difference v-w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y} }

// Dot returns the dot product of v and w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the z-component of the cross product v x w.
func (v Vec) Cross(w Vec) float64 { return v.X*w.Y - v.Y*w.X }

// Len returns the Euclidean length of v.
func (v Vec) Len() float64 { return math.Hypot(v.X, v.Y) }

// Len2 returns the squared length of v.
func (v Vec) Len2() float64 { return v.X*v.X + v.Y*v.Y }

// Unit returns v normalized to unit length. The zero vector is returned
// unchanged.
func (v Vec) Unit() Vec {
	l := v.Len()
	if l == 0 {
		return v
	}
	return Vec{v.X / l, v.Y / l}
}

// Perp returns v rotated 90 degrees counter-clockwise.
func (v Vec) Perp() Vec { return Vec{-v.Y, v.X} }

// Neg returns -v.
func (v Vec) Neg() Vec { return Vec{-v.X, -v.Y} }

// Angle returns the angle of v in radians in (-pi, pi].
func (v Vec) Angle() float64 { return math.Atan2(v.Y, v.X) }

// AngleBetween returns the unsigned angle between v and w in [0, pi].
func (v Vec) AngleBetween(w Vec) float64 {
	d := v.Unit().Dot(w.Unit())
	if d > 1 {
		d = 1
	} else if d < -1 {
		d = -1
	}
	return math.Acos(d)
}

// Rotate returns v rotated counter-clockwise by theta radians.
func (v Vec) Rotate(theta float64) Vec {
	s, c := math.Sin(theta), math.Cos(theta)
	return Vec{c*v.X - s*v.Y, s*v.X + c*v.Y}
}

// BBox is an axis-aligned bounding box. An empty box has Min > Max.
type BBox struct {
	Min, Max Point
}

// EmptyBBox returns a box that contains nothing and absorbs any point added
// to it.
func EmptyBBox() BBox {
	inf := math.Inf(1)
	return BBox{Min: Point{inf, inf}, Max: Point{-inf, -inf}}
}

// Empty reports whether b contains no points.
func (b BBox) Empty() bool { return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y }

// Extend returns b grown to include p.
func (b BBox) Extend(p Point) BBox {
	if p.X < b.Min.X {
		b.Min.X = p.X
	}
	if p.Y < b.Min.Y {
		b.Min.Y = p.Y
	}
	if p.X > b.Max.X {
		b.Max.X = p.X
	}
	if p.Y > b.Max.Y {
		b.Max.Y = p.Y
	}
	return b
}

// Union returns the smallest box containing both b and c.
func (b BBox) Union(c BBox) BBox {
	if c.Empty() {
		return b
	}
	if b.Empty() {
		return c
	}
	return b.Extend(c.Min).Extend(c.Max)
}

// Contains reports whether p lies inside or on the boundary of b.
func (b BBox) Contains(p Point) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X && p.Y >= b.Min.Y && p.Y <= b.Max.Y
}

// Intersects reports whether b and c share any point (boundaries count).
func (b BBox) Intersects(c BBox) bool {
	return b.Min.X <= c.Max.X && c.Min.X <= b.Max.X &&
		b.Min.Y <= c.Max.Y && c.Min.Y <= b.Max.Y
}

// Inflate returns b grown by d on every side.
func (b BBox) Inflate(d float64) BBox {
	return BBox{Point{b.Min.X - d, b.Min.Y - d}, Point{b.Max.X + d, b.Max.Y + d}}
}

// Width returns the x extent of b.
func (b BBox) Width() float64 { return b.Max.X - b.Min.X }

// Height returns the y extent of b.
func (b BBox) Height() float64 { return b.Max.Y - b.Min.Y }

// Center returns the center point of b.
func (b BBox) Center() Point { return b.Min.Mid(b.Max) }

// BBoxOf returns the bounding box of the given points.
func BBoxOf(pts []Point) BBox {
	b := EmptyBBox()
	for _, p := range pts {
		b = b.Extend(p)
	}
	return b
}

// Segment is a directed line segment from A to B.
type Segment struct {
	A, B Point
}

// BBox returns the bounding box of s.
func (s Segment) BBox() BBox {
	return EmptyBBox().Extend(s.A).Extend(s.B)
}

// Len returns the length of s.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// Mid returns the midpoint of s.
func (s Segment) Mid() Point { return s.A.Mid(s.B) }

// Triangle circumscribed-circle helpers.

// Circumcenter returns the circumcenter of triangle abc. The triangle must
// not be degenerate; for a (nearly) degenerate triangle the result may be
// far away or non-finite.
func Circumcenter(a, b, c Point) Point {
	// Translate so a is the origin for numerical stability.
	bx, by := b.X-a.X, b.Y-a.Y
	cx, cy := c.X-a.X, c.Y-a.Y
	d := 2 * (bx*cy - by*cx)
	b2 := bx*bx + by*by
	c2 := cx*cx + cy*cy
	ux := (cy*b2 - by*c2) / d
	uy := (bx*c2 - cx*b2) / d
	return Point{a.X + ux, a.Y + uy}
}

// Circumradius returns the circumradius of triangle abc.
func Circumradius(a, b, c Point) float64 {
	return Circumcenter(a, b, c).Dist(a)
}

// TriangleArea returns the signed area of triangle abc (positive when abc
// is counter-clockwise).
func TriangleArea(a, b, c Point) float64 {
	return Orient2D(a, b, c) / 2
}

// MinAngle returns the smallest interior angle of triangle abc in radians.
func MinAngle(a, b, c Point) float64 {
	ang := func(p, q, r Point) float64 { return q.Sub(p).AngleBetween(r.Sub(p)) }
	m := ang(a, b, c)
	if x := ang(b, c, a); x < m {
		m = x
	}
	if x := ang(c, a, b); x < m {
		m = x
	}
	return m
}

// AspectRatio returns the ratio of the longest edge to the shortest
// altitude of triangle abc; equilateral triangles give 2/sqrt(3).
func AspectRatio(a, b, c Point) float64 {
	ab := a.Dist(b)
	bc := b.Dist(c)
	ca := c.Dist(a)
	longest := math.Max(ab, math.Max(bc, ca))
	area := math.Abs(TriangleArea(a, b, c))
	if area == 0 {
		return math.Inf(1)
	}
	shortestAlt := 2 * area / longest
	return longest / shortestAlt
}

// CircumradiusToShortestEdge returns the circumradius-to-shortest-edge
// ratio of triangle abc, the quality measure bounded by sqrt(2) in
// Ruppert's algorithm.
func CircumradiusToShortestEdge(a, b, c Point) float64 {
	ab := a.Dist(b)
	bc := b.Dist(c)
	ca := c.Dist(a)
	shortest := math.Min(ab, math.Min(bc, ca))
	if shortest == 0 {
		return math.Inf(1)
	}
	return Circumradius(a, b, c) / shortest
}
