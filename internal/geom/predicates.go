package geom

import "math"

// Error-bound coefficients for the floating-point filters, computed from the
// machine epsilon of IEEE binary64 following Shewchuk. epsilon here is half
// an ulp of 1.0, i.e. 2^-53.
var (
	epsilon      = math.Ldexp(1, -53)
	ccwErrBoundA = (3.0 + 16.0*epsilon) * epsilon
	iccErrBoundA = (10.0 + 96.0*epsilon) * epsilon
)

// Orient2D returns a positive value if the points a, b, c occur in
// counter-clockwise order, a negative value if they occur in clockwise
// order, and zero if they are collinear. The sign of the result is exact;
// the magnitude is an approximation of twice the signed triangle area.
func Orient2D(a, b, c Point) float64 {
	detLeft := (a.X - c.X) * (b.Y - c.Y)
	detRight := (a.Y - c.Y) * (b.X - c.X)
	det := detLeft - detRight

	var detSum float64
	if detLeft > 0 {
		if detRight <= 0 {
			return det
		}
		detSum = detLeft + detRight
	} else if detLeft < 0 {
		if detRight >= 0 {
			return det
		}
		detSum = -detLeft - detRight
	} else {
		return det
	}
	errBound := ccwErrBoundA * detSum
	if det >= errBound || -det >= errBound {
		return det
	}
	return orient2DExact(a, b, c)
}

// orient2DExact evaluates the 2x2 orientation determinant exactly on the
// original (untranslated) coordinates:
//
//	| ax-cx  ay-cy |   = ax*by - ax*cy - ay*bx + ay*cx + bx*cy - by*cx
//	| bx-cx  by-cy |
func orient2DExact(a, b, c Point) float64 {
	ar := getArena()
	axby := ar.twoTwoDiff(a.X, b.Y, a.X, c.Y) // ax*by - ax*cy
	aybx := ar.twoTwoDiff(a.Y, c.X, a.Y, b.X) // ay*cx - ay*bx
	bxcy := ar.twoTwoDiff(b.X, c.Y, b.Y, c.X) // bx*cy - by*cx
	det := ar.sum(ar.sum(axby, aybx), bxcy)
	est := expEstimate(det)
	putArena(ar)
	return est
}

// Orient2DSign returns the sign of Orient2D as -1, 0, or +1.
func Orient2DSign(a, b, c Point) int {
	d := Orient2D(a, b, c)
	if d > 0 {
		return 1
	}
	if d < 0 {
		return -1
	}
	return 0
}

// InCircle returns a positive value if point d lies inside the circle
// through a, b, c (which must be in counter-clockwise order), a negative
// value if d lies outside, and zero if the four points are cocircular.
// The sign of the result is exact.
func InCircle(a, b, c, d Point) float64 {
	adx := a.X - d.X
	ady := a.Y - d.Y
	bdx := b.X - d.X
	bdy := b.Y - d.Y
	cdx := c.X - d.X
	cdy := c.Y - d.Y

	bdxcdy := bdx * cdy
	cdxbdy := cdx * bdy
	alift := adx*adx + ady*ady

	cdxady := cdx * ady
	adxcdy := adx * cdy
	blift := bdx*bdx + bdy*bdy

	adxbdy := adx * bdy
	bdxady := bdx * ady
	clift := cdx*cdx + cdy*cdy

	det := alift*(bdxcdy-cdxbdy) + blift*(cdxady-adxcdy) + clift*(adxbdy-bdxady)

	permanent := (abs(bdxcdy)+abs(cdxbdy))*alift +
		(abs(cdxady)+abs(adxcdy))*blift +
		(abs(adxbdy)+abs(bdxady))*clift
	errBound := iccErrBoundA * permanent
	if det > errBound || -det > errBound {
		return det
	}
	return inCircleExact(a, b, c, d)
}

// inCircleExact evaluates the incircle determinant exactly on the original
// coordinates via the 4x4 lifted determinant
//
//	| ax ay ax^2+ay^2 1 |
//	| bx by bx^2+by^2 1 |
//	| cx cy cx^2+cy^2 1 |
//	| dx dy dx^2+dy^2 1 |
//
// expanded along the last column. The sign equals the sign of the
// translated 3x3 determinant used by the fast path.
func inCircleExact(a, b, c, d Point) float64 {
	ar := getArena()
	lift := func(p Point) []float64 {
		x1, x0 := twoProduct(p.X, p.X)
		y1, y0 := twoProduct(p.Y, p.Y)
		return ar.sum(ar.pair(x0, x1), ar.pair(y0, y1))
	}
	la := lift(a)
	lb := lift(b)
	lc := lift(c)
	ld := lift(d)

	// 2x2 minors m[pq] = px*qy - py*qx for all ordered pairs we need.
	mab := ar.twoTwoDiff(a.X, b.Y, a.Y, b.X)
	mac := ar.twoTwoDiff(a.X, c.Y, a.Y, c.X)
	mad := ar.twoTwoDiff(a.X, d.Y, a.Y, d.X)
	mbc := ar.twoTwoDiff(b.X, c.Y, b.Y, c.X)
	mbd := ar.twoTwoDiff(b.X, d.Y, b.Y, d.X)
	mcd := ar.twoTwoDiff(c.X, d.Y, c.Y, d.X)

	// 3x3 minor with rows p,q,r (columns x,y,lift):
	//   lift(p)*m[qr] - lift(q)*m[pr] + lift(r)*m[pq]
	// The minors are read by two later minor3 calls, so the negated
	// products must not negate shared storage: expNeg is applied to the
	// freshly multiplied (arena-private) copies only.
	minor3 := func(lp, lq, lr, mqr, mpr, mpq []float64) []float64 {
		t := ar.mul(lp, mqr)
		t = ar.sum(t, expNeg(ar.mul(lq, mpr)))
		return ar.sum(t, ar.mul(lr, mpq))
	}
	// det = -M(b,c,d) + M(a,c,d) - M(a,b,d) + M(a,b,c)
	mbcd := minor3(lb, lc, ld, mcd, mbd, mbc)
	macd := minor3(la, lc, ld, mcd, mad, mac)
	mabd := minor3(la, lb, ld, mbd, mad, mab)
	mabc := minor3(la, lb, lc, mbc, mac, mab)

	det := ar.sum(expNeg(mbcd), macd)
	det = ar.sum(det, expNeg(mabd))
	det = ar.sum(det, mabc)
	est := expEstimate(det)
	putArena(ar)
	return est
}

// InCircleSign returns the sign of InCircle as -1, 0, or +1.
func InCircleSign(a, b, c, d Point) int {
	v := InCircle(a, b, c, d)
	if v > 0 {
		return 1
	}
	if v < 0 {
		return -1
	}
	return 0
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
