package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOrient2DBasic(t *testing.T) {
	a := Point{0, 0}
	b := Point{1, 0}
	c := Point{0, 1}
	if Orient2D(a, b, c) <= 0 {
		t.Errorf("ccw triangle: got %v, want > 0", Orient2D(a, b, c))
	}
	if Orient2D(a, c, b) >= 0 {
		t.Errorf("cw triangle: got %v, want < 0", Orient2D(a, c, b))
	}
	if Orient2D(a, b, Point{2, 0}) != 0 {
		t.Errorf("collinear: got %v, want 0", Orient2D(a, b, Point{2, 0}))
	}
}

func TestOrient2DNearDegenerate(t *testing.T) {
	// Points nearly collinear: differences on the order of one ulp. The
	// exact fallback must still give a consistent, correct sign.
	base := Point{12.0, 12.0}
	dir := Vec{1, 1}
	for i := 0; i < 1000; i++ {
		tt := float64(i) * 1e-3
		p := base.Add(dir.Scale(tt))
		// q is p shifted by the smallest representable amount upward.
		q := Point{p.X, math.Nextafter(p.Y, math.Inf(1))}
		s := Orient2DSign(Point{0, 0}, Point{24, 24}, q)
		if s != 1 {
			t.Fatalf("point nudged above the line y=x must be CCW, got %d at i=%d", s, i)
		}
		r := Point{p.X, math.Nextafter(p.Y, math.Inf(-1))}
		s = Orient2DSign(Point{0, 0}, Point{24, 24}, r)
		if s != -1 {
			t.Fatalf("point nudged below the line y=x must be CW, got %d at i=%d", s, i)
		}
	}
}

func TestOrient2DExactGrid(t *testing.T) {
	// On a small integer grid the fast path is exact; compare the exact
	// evaluator against direct integer arithmetic.
	for ax := -3; ax <= 3; ax++ {
		for ay := -3; ay <= 3; ay++ {
			for bx := -3; bx <= 3; bx++ {
				for by := -3; by <= 3; by++ {
					a := Point{float64(ax), float64(ay)}
					b := Point{float64(bx), float64(by)}
					c := Point{1, 2}
					want := (ax-1)*(by-2) - (ay-2)*(bx-1)
					got := orient2DExact(a, b, c)
					if sign(float64(want)) != sign(got) {
						t.Fatalf("orient2DExact(%v,%v,%v) = %v, want sign %d", a, b, c, got, sign(float64(want)))
					}
				}
			}
		}
	}
}

func sign(x float64) int {
	if x > 0 {
		return 1
	}
	if x < 0 {
		return -1
	}
	return 0
}

func TestOrient2DAntisymmetry(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		// Swapping two arguments must flip the sign.
		return Orient2DSign(a, b, c) == -Orient2DSign(b, a, c) &&
			Orient2DSign(a, b, c) == Orient2DSign(b, c, a) &&
			Orient2DSign(a, b, c) == Orient2DSign(c, a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestInCircleBasic(t *testing.T) {
	a := Point{0, 0}
	b := Point{1, 0}
	c := Point{0, 1}
	// Circumcircle of abc has center (0.5, 0.5), radius sqrt(0.5).
	if InCircle(a, b, c, Point{0.5, 0.5}) <= 0 {
		t.Error("center must be inside")
	}
	if InCircle(a, b, c, Point{2, 2}) >= 0 {
		t.Error("far point must be outside")
	}
	if InCircle(a, b, c, Point{1, 1}) != 0 {
		t.Errorf("cocircular point: got %v, want 0", InCircle(a, b, c, Point{1, 1}))
	}
}

func TestInCircleOrientationFlip(t *testing.T) {
	// With a clockwise triangle the sign convention flips.
	a := Point{0, 0}
	b := Point{1, 0}
	c := Point{0, 1}
	inside := Point{0.5, 0.5}
	if InCircle(a, c, b, inside) >= 0 {
		t.Error("cw triangle: inside point must give negative value")
	}
}

func TestInCircleNearCocircular(t *testing.T) {
	// Four points on the unit circle; perturb one radially by one ulp and
	// check the sign tracks the perturbation.
	angles := []float64{0.1, 1.3, 2.9, 4.2}
	pts := make([]Point, 4)
	for i, th := range angles {
		pts[i] = Point{math.Cos(th), math.Sin(th)}
	}
	a, b, c := pts[0], pts[1], pts[2]
	if Orient2DSign(a, b, c) < 0 {
		a, b = b, a
	}
	d := pts[3]
	// Pull d toward the origin: strictly inside.
	din := Point{d.X * (1 - 1e-14), d.Y * (1 - 1e-14)}
	if InCircleSign(a, b, c, din) != 1 {
		t.Error("point pulled inside the circle must test inside")
	}
	dout := Point{d.X * (1 + 1e-14), d.Y * (1 + 1e-14)}
	if InCircleSign(a, b, c, dout) != -1 {
		t.Error("point pushed outside the circle must test outside")
	}
}

func TestInCircleExactMatchesFastOnEasyCases(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := Point{rng.Float64() * 10, rng.Float64() * 10}
		b := Point{rng.Float64() * 10, rng.Float64() * 10}
		c := Point{rng.Float64() * 10, rng.Float64() * 10}
		d := Point{rng.Float64() * 10, rng.Float64() * 10}
		if Orient2DSign(a, b, c) <= 0 {
			continue
		}
		fast := InCircle(a, b, c, d)
		exact := inCircleExact(a, b, c, d)
		if sign(fast) != sign(exact) && abs(fast) > 1e-6 {
			t.Fatalf("fast %v and exact %v disagree for %v %v %v %v", fast, exact, a, b, c, d)
		}
	}
}

func TestInCircleTranslationInvariance(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		clamp := func(v float64) float64 { return math.Mod(v, 100) }
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		d := Point{clamp(dx), clamp(dy)}
		if Orient2DSign(a, b, c) == 0 {
			return true
		}
		s1 := InCircleSign(a, b, c, d)
		off := Vec{13.5, -7.25} // exactly representable offset
		s2 := InCircleSign(a.Add(off), b.Add(off), c.Add(off), d.Add(off))
		return s1 == s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestCircumcenterEquidistant(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		clamp := func(v float64) float64 { return math.Mod(v, 50) }
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		area := math.Abs(TriangleArea(a, b, c))
		if area < 1e-3 {
			return true // skip degenerate
		}
		cc := Circumcenter(a, b, c)
		ra, rb, rc := cc.Dist(a), cc.Dist(b), cc.Dist(c)
		scale := ra + rb + rc + 1
		return math.Abs(ra-rb) < 1e-7*scale && math.Abs(rb-rc) < 1e-7*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestExpansionArithmetic(t *testing.T) {
	// twoSum invariant: x+y == a+b exactly.
	x, y := twoSum(1e16, 1)
	if x != 1e16 || y != 1 {
		t.Errorf("twoSum(1e16,1) = (%v,%v)", x, y)
	}
	// twoProduct roundoff.
	p, q := twoProduct(1e8+1, 1e8+1)
	// (1e8+1)^2 = 1e16 + 2e8 + 1; the +1 doesn't fit in the rounded product.
	if p+q != (1e8+1)*(1e8+1) && q == 0 {
		t.Errorf("twoProduct lost the roundoff: (%v,%v)", p, q)
	}
	// Expansion sum of known values.
	e := expSum([]float64{1}, []float64{1e-30})
	if expEstimate(e) != 1 || expSign(e) != 1 {
		t.Errorf("expSum basic failed: %v", e)
	}
	// Sign of a tiny negative residue dominating.
	e2 := expSum([]float64{1e20}, []float64{-1e20})
	if expSign(e2) != 0 {
		t.Errorf("cancellation must give sign 0, got %v (%v)", expSign(e2), e2)
	}
}

func TestExpansionSumExactness(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		fix := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Mod(v, 1e6)
		}
		a, b, c, d = fix(a), fix(b), fix(c), fix(d)
		e1 := twoTwoDiff(a, b, c, d) // a*b - c*d exactly
		e2 := twoTwoDiff(c, d, a, b) // c*d - a*b exactly
		s := expSum(e1, e2)
		return expSign(s) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestExpScaleDistributes(t *testing.T) {
	f := func(a, b, s float64) bool {
		fix := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Mod(v, 1e5)
		}
		a, b, s = fix(a), fix(b), fix(s)
		e := twoTwoDiff(a, b, b, a) // == 0 exactly
		scaled := expScale(e, s)
		return expSign(scaled) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkOrient2DFastPath(b *testing.B) {
	p := Point{0.1, 0.2}
	q := Point{3.7, 1.9}
	r := Point{2.2, 8.1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Orient2D(p, q, r)
	}
}

func BenchmarkOrient2DExactPath(b *testing.B) {
	// Collinear points force the exact fallback every time.
	p := Point{0, 0}
	q := Point{1e-30, 1e-30}
	r := Point{2e-30, 2e-30}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Orient2D(p, q, r)
	}
}

func BenchmarkInCircleFastPath(b *testing.B) {
	p := Point{0, 0}
	q := Point{1, 0}
	r := Point{0, 1}
	s := Point{5, 5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		InCircle(p, q, r, s)
	}
}

func BenchmarkInCircleExactPath(b *testing.B) {
	p := Point{0, 0}
	q := Point{1, 0}
	r := Point{0, 1}
	s := Point{1, 1} // exactly cocircular
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		InCircle(p, q, r, s)
	}
}
