package geom

// Reference implementations of the geometric predicates in exact rational
// arithmetic (math/big.Rat). These are far too slow for production but
// cannot be wrong, so the fast filtered-expansion predicates are
// property-tested against them, including on adversarial near-degenerate
// inputs.

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func ratOrient2D(a, b, c Point) int {
	ax, ay := new(big.Rat).SetFloat64(a.X), new(big.Rat).SetFloat64(a.Y)
	bx, by := new(big.Rat).SetFloat64(b.X), new(big.Rat).SetFloat64(b.Y)
	cx, cy := new(big.Rat).SetFloat64(c.X), new(big.Rat).SetFloat64(c.Y)
	// (ax-cx)(by-cy) - (ay-cy)(bx-cx)
	l := new(big.Rat).Mul(new(big.Rat).Sub(ax, cx), new(big.Rat).Sub(by, cy))
	r := new(big.Rat).Mul(new(big.Rat).Sub(ay, cy), new(big.Rat).Sub(bx, cx))
	return l.Cmp(r)
}

func ratInCircle(a, b, c, d Point) int {
	coord := func(p Point) (x, y, l *big.Rat) {
		x = new(big.Rat).SetFloat64(p.X)
		y = new(big.Rat).SetFloat64(p.Y)
		l = new(big.Rat).Add(new(big.Rat).Mul(x, x), new(big.Rat).Mul(y, y))
		return
	}
	ax, ay, al := coord(a)
	bx, by, bl := coord(b)
	cx, cy, cl := coord(c)
	dx, dy, dl := coord(d)
	// Translate by d.
	sub := func(p, q *big.Rat) *big.Rat { return new(big.Rat).Sub(p, q) }
	mul := func(p, q *big.Rat) *big.Rat { return new(big.Rat).Mul(p, q) }
	adx, ady := sub(ax, dx), sub(ay, dy)
	bdx, bdy := sub(bx, dx), sub(by, dy)
	cdx, cdy := sub(cx, dx), sub(cy, dy)
	// Lifted third column: |p|^2 - |d|^2 - 2 d.(p-d) ... equivalently use
	// the direct 3x3 determinant with rows (pdx, pdy, |p|^2-|d|^2-2(dx*pdx+dy*pdy)).
	lift := func(pl, pdx, pdy *big.Rat) *big.Rat {
		t := new(big.Rat).Sub(pl, dl)
		t.Sub(t, mul(big.NewRat(2, 1), new(big.Rat).Add(mul(dx, pdx), mul(dy, pdy))))
		return t
	}
	la := lift(al, adx, ady)
	lb := lift(bl, bdx, bdy)
	lc := lift(cl, cdx, cdy)
	// det = la*(bdx*cdy-cdx*bdy) - lb*(adx*cdy-cdx*ady) + lc*(adx*bdy-bdx*ady)
	m1 := new(big.Rat).Sub(mul(bdx, cdy), mul(cdx, bdy))
	m2 := new(big.Rat).Sub(mul(adx, cdy), mul(cdx, ady))
	m3 := new(big.Rat).Sub(mul(adx, bdy), mul(bdx, ady))
	det := new(big.Rat).Mul(la, m1)
	det.Sub(det, mul(lb, m2))
	det.Add(det, mul(lc, m3))
	return det.Sign()
}

func TestOrient2DMatchesRational(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		return Orient2DSign(a, b, c) == ratOrient2D(a, b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestOrient2DMatchesRationalNearDegenerate(t *testing.T) {
	// Points perturbed by single ulps around a collinear configuration:
	// the regime where naive floating-point evaluation fails.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3000; trial++ {
		base := rng.Float64() * 10
		dir := rng.Float64()*2 - 1
		a := Point{base, base * dir}
		b := Point{base + 1, (base + 1) * dir}
		c := Point{base + 2, (base + 2) * dir}
		// Nudge each coordinate by up to 2 ulps.
		nudge := func(v float64) float64 {
			for i := 0; i < rng.Intn(3); i++ {
				if rng.Intn(2) == 0 {
					v = math.Nextafter(v, math.Inf(1))
				} else {
					v = math.Nextafter(v, math.Inf(-1))
				}
			}
			return v
		}
		a = Point{nudge(a.X), nudge(a.Y)}
		b = Point{nudge(b.X), nudge(b.Y)}
		c = Point{nudge(c.X), nudge(c.Y)}
		if got, want := Orient2DSign(a, b, c), ratOrient2D(a, b, c); got != want {
			t.Fatalf("trial %d: Orient2DSign=%d rational=%d for %v %v %v", trial, got, want, a, b, c)
		}
	}
}

func TestInCircleMatchesRational(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e3)
		}
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		d := Point{clamp(dx), clamp(dy)}
		return InCircleSign(a, b, c, d) == ratInCircle(a, b, c, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestInCircleMatchesRationalNearCocircular(t *testing.T) {
	// Four points nudged off a common circle by ulps.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 1500; trial++ {
		r := 1 + rng.Float64()*10
		cx := rng.Float64()*20 - 10
		cy := rng.Float64()*20 - 10
		pt := func() Point {
			th := rng.Float64() * 2 * math.Pi
			p := Point{cx + r*math.Cos(th), cy + r*math.Sin(th)}
			nudge := func(v float64) float64 {
				for i := 0; i < rng.Intn(3); i++ {
					if rng.Intn(2) == 0 {
						v = math.Nextafter(v, math.Inf(1))
					} else {
						v = math.Nextafter(v, math.Inf(-1))
					}
				}
				return v
			}
			return Point{nudge(p.X), nudge(p.Y)}
		}
		a, b, c, d := pt(), pt(), pt(), pt()
		if got, want := InCircleSign(a, b, c, d), ratInCircle(a, b, c, d); got != want {
			t.Fatalf("trial %d: InCircleSign=%d rational=%d for %v %v %v %v", trial, got, want, a, b, c, d)
		}
	}
}

func TestExpansionSignMatchesRational(t *testing.T) {
	// expSum/expScale chains evaluated exactly versus big.Rat.
	f := func(a, b, c, d, s float64) bool {
		fix := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Mod(v, 1e8)
		}
		a, b, c, d, s = fix(a), fix(b), fix(c), fix(d), fix(s)
		// Exact value of (a*b - c*d) * s via expansions.
		e := expScale(twoTwoDiff(a, b, c, d), s)
		// Same in rationals.
		ra := new(big.Rat).SetFloat64(a)
		rb := new(big.Rat).SetFloat64(b)
		rc := new(big.Rat).SetFloat64(c)
		rd := new(big.Rat).SetFloat64(d)
		rs := new(big.Rat).SetFloat64(s)
		want := new(big.Rat).Sub(new(big.Rat).Mul(ra, rb), new(big.Rat).Mul(rc, rd))
		want.Mul(want, rs)
		if expSign(e) != want.Sign() {
			return false
		}
		// The expansion's exact sum must equal the rational value.
		sum := new(big.Rat)
		for _, comp := range e {
			sum.Add(sum, new(big.Rat).SetFloat64(comp))
		}
		return sum.Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
