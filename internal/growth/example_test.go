package growth_test

import (
	"fmt"

	"pamg2d/internal/growth"
)

// ExampleGeometric shows a typical boundary-layer growth function: first
// layer 1e-4 chords, growing 25% per layer.
func ExampleGeometric() {
	g := growth.Geometric{H0: 1e-4, Ratio: 1.25}
	for _, i := range []int{0, 5, 10} {
		fmt.Printf("layer %2d: offset %.5f spacing %.5f\n", i, g.Offset(i), g.Spacing(i))
	}
	n := growth.LayersUntil(g, 0.002, 100)
	fmt.Println("layers until 0.002 spacing:", n)
	// Output:
	// layer  0: offset 0.00010 spacing 0.00010
	// layer  5: offset 0.00113 spacing 0.00031
	// layer 10: offset 0.00426 spacing 0.00093
	// layers until 0.002 spacing: 15
}
