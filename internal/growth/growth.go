// Package growth provides the boundary-layer growth functions of
// Garimella & Shephard used by the paper's extrusion-based point
// insertion: the distance of the i-th layer point from the surface along
// the surface normal. Geometric and polynomial growth give uniform
// gradation; the adaptive function blends them for complex geometries.
package growth

import "math"

// Function maps a zero-based layer index to the offset of that layer from
// the surface. Offset(0) is the first point off the wall and must be
// positive; Offset must be strictly increasing.
type Function interface {
	// Offset returns the distance of layer i from the surface.
	Offset(i int) float64
	// Spacing returns the gap between layers i and i+1.
	Spacing(i int) float64
}

// Geometric grows the spacing by a constant ratio per layer:
// spacing_i = H0 * Ratio^i, so Offset(i) = H0 * (Ratio^(i+1)-1)/(Ratio-1).
type Geometric struct {
	// H0 is the first-layer height, typically chord * 1e-4 .. 1e-6 for the
	// 10,000:1 aspect ratios the paper cites.
	H0 float64
	// Ratio is the per-layer growth ratio, typically 1.1 to 1.3.
	Ratio float64
}

// Offset implements Function.
func (g Geometric) Offset(i int) float64 {
	if g.Ratio == 1 {
		return g.H0 * float64(i+1)
	}
	return g.H0 * (math.Pow(g.Ratio, float64(i+1)) - 1) / (g.Ratio - 1)
}

// Spacing implements Function.
func (g Geometric) Spacing(i int) float64 {
	return g.H0 * math.Pow(g.Ratio, float64(i))
}

// Polynomial grows the offset as H0 * (i+1)^Power; Power=1 gives uniform
// spacing, Power=2 quadratic growth.
type Polynomial struct {
	H0    float64
	Power float64
}

// Offset implements Function.
func (p Polynomial) Offset(i int) float64 {
	return p.H0 * math.Pow(float64(i+1), p.Power)
}

// Spacing implements Function.
func (p Polynomial) Spacing(i int) float64 {
	return p.Offset(i) - offsetBefore(p, i)
}

// Adaptive blends a geometric near-wall region into polynomial far-field
// growth at layer Switch, the kind of composite function Garimella &
// Shephard recommend for complex geometries.
type Adaptive struct {
	Near   Geometric
	Far    Polynomial
	Switch int
}

// Offset implements Function.
func (a Adaptive) Offset(i int) float64 {
	if i < a.Switch {
		return a.Near.Offset(i)
	}
	base := a.Near.Offset(a.Switch - 1)
	return base + a.Far.Offset(i-a.Switch)
}

// Spacing implements Function.
func (a Adaptive) Spacing(i int) float64 {
	return a.Offset(i) - offsetBefore(a, i)
}

func offsetBefore(f Function, i int) float64 {
	if i == 0 {
		return 0
	}
	return f.Offset(i - 1)
}

// LayersUntil returns the number of layers needed for the spacing to reach
// the target value (the paper's transition to isotropy: points are
// inserted until the resulting triangles would be isotropic, i.e. the
// normal spacing matches the local tangential spacing). The count is
// capped at maxLayers.
func LayersUntil(f Function, targetSpacing float64, maxLayers int) int {
	for i := 0; i < maxLayers; i++ {
		if f.Spacing(i) >= targetSpacing {
			return i + 1
		}
	}
	return maxLayers
}
