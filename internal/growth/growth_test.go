package growth

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeometricOffsets(t *testing.T) {
	g := Geometric{H0: 1e-4, Ratio: 1.2}
	if got := g.Offset(0); math.Abs(got-1e-4) > 1e-18 {
		t.Errorf("Offset(0) = %v, want 1e-4", got)
	}
	// Offset(1) = h0*(1 + r).
	if got, want := g.Offset(1), 1e-4*2.2; math.Abs(got-want) > 1e-15 {
		t.Errorf("Offset(1) = %v, want %v", got, want)
	}
	// Spacing(i) = h0 * r^i.
	if got, want := g.Spacing(3), 1e-4*math.Pow(1.2, 3); math.Abs(got-want) > 1e-15 {
		t.Errorf("Spacing(3) = %v, want %v", got, want)
	}
}

func TestGeometricRatioOne(t *testing.T) {
	g := Geometric{H0: 0.5, Ratio: 1}
	if got := g.Offset(3); got != 2 {
		t.Errorf("uniform growth Offset(3) = %v, want 2", got)
	}
	if got := g.Spacing(7); got != 0.5 {
		t.Errorf("uniform growth Spacing(7) = %v, want 0.5", got)
	}
}

func TestPolynomial(t *testing.T) {
	p := Polynomial{H0: 0.1, Power: 2}
	if got := p.Offset(2); math.Abs(got-0.9) > 1e-15 {
		t.Errorf("Offset(2) = %v, want 0.9", got)
	}
	if got := p.Spacing(0); math.Abs(got-0.1) > 1e-15 {
		t.Errorf("Spacing(0) = %v, want 0.1", got)
	}
	if got := p.Spacing(2); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("Spacing(2) = %v, want 0.5 (0.9-0.4)", got)
	}
}

func TestAdaptiveContinuity(t *testing.T) {
	a := Adaptive{
		Near:   Geometric{H0: 1e-3, Ratio: 1.3},
		Far:    Polynomial{H0: 5e-3, Power: 1.5},
		Switch: 5,
	}
	// Offsets must be strictly increasing across the switch.
	prev := 0.0
	for i := 0; i < 20; i++ {
		o := a.Offset(i)
		if o <= prev {
			t.Fatalf("Offset not increasing at %d: %v <= %v", i, o, prev)
		}
		prev = o
	}
}

// Property: all growth functions produce strictly increasing offsets and
// positive spacings.
func TestMonotoneProperty(t *testing.T) {
	f := func(h0Raw, ratioRaw uint16) bool {
		h0 := 1e-6 + float64(h0Raw)/1e6
		ratio := 1.0 + float64(ratioRaw%5000)/10000 // 1.0 .. 1.5
		funcs := []Function{
			Geometric{H0: h0, Ratio: ratio},
			Polynomial{H0: h0, Power: 1.7},
			Adaptive{Near: Geometric{H0: h0, Ratio: ratio}, Far: Polynomial{H0: h0 * 10, Power: 1.2}, Switch: 4},
		}
		for _, fn := range funcs {
			prev := 0.0
			for i := 0; i < 30; i++ {
				o := fn.Offset(i)
				if o <= prev {
					return false
				}
				if fn.Spacing(i) <= 0 {
					return false
				}
				prev = o
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLayersUntil(t *testing.T) {
	g := Geometric{H0: 1e-4, Ratio: 1.2}
	// Spacing reaches 1e-3 when 1.2^i >= 10: i >= 12.6 -> layer 13 (index
	// 12), so the count is 13.
	n := LayersUntil(g, 1e-3, 100)
	if n != 14 && n != 13 {
		t.Errorf("LayersUntil = %d, want 13 or 14", n)
	}
	if got := g.Spacing(n - 1); got < 1e-3 {
		t.Errorf("final spacing %v below target", got)
	}
	if n >= 2 {
		if got := g.Spacing(n - 2); got >= 1e-3 {
			t.Errorf("previous spacing %v already met the target", got)
		}
	}
	// Cap respected.
	if n := LayersUntil(g, 1e9, 25); n != 25 {
		t.Errorf("cap: got %d, want 25", n)
	}
}
