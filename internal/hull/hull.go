// Package hull implements Andrew's Monotone Chain convex hull algorithm
// (Andrew 1979), the worst-case linear-time hull construction on
// pre-sorted points used by the projection-based Delaunay decomposition
// (paper Figure 7): the lower convex hull of the flattened paraboloid
// projection yields the Delaunay dividing path.
package hull

import (
	"sort"

	"pamg2d/internal/geom"
)

// LowerSorted returns the indices of the points on the lower convex hull of
// pts, which must already be sorted lexicographically by (X, Y). The hull is
// returned left to right and includes both extreme points. Collinear points
// on the hull are removed (strict right turns only are kept out).
//
// This is the inner loop of the dividing-path construction: the vertices
// arrive already sorted along the cut axis, so the hull costs O(n).
func LowerSorted(pts []geom.Point) []int {
	n := len(pts)
	if n == 0 {
		return nil
	}
	h := make([]int, 0, n)
	for i := 0; i < n; i++ {
		// Pop while the last two hull points and pts[i] do not make a
		// strict left turn (counter-clockwise): the middle point is not on
		// the lower hull.
		for len(h) >= 2 && geom.Orient2DSign(pts[h[len(h)-2]], pts[h[len(h)-1]], pts[i]) <= 0 {
			h = h[:len(h)-1]
		}
		h = append(h, i)
	}
	return h
}

// UpperSorted returns the indices of the points on the upper convex hull of
// pts, which must already be sorted lexicographically by (X, Y). The hull is
// returned left to right and includes both extreme points.
func UpperSorted(pts []geom.Point) []int {
	n := len(pts)
	if n == 0 {
		return nil
	}
	h := make([]int, 0, n)
	for i := 0; i < n; i++ {
		for len(h) >= 2 && geom.Orient2DSign(pts[h[len(h)-2]], pts[h[len(h)-1]], pts[i]) >= 0 {
			h = h[:len(h)-1]
		}
		h = append(h, i)
	}
	return h
}

// Convex returns the full convex hull of arbitrary (unsorted) points in
// counter-clockwise order without repetition of the first point. Duplicate
// points are tolerated. For fewer than three distinct points the distinct
// points are returned in sorted order.
func Convex(pts []geom.Point) []geom.Point {
	if len(pts) == 0 {
		return nil
	}
	sorted := make([]geom.Point, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	// Deduplicate.
	uniq := sorted[:1]
	for _, p := range sorted[1:] {
		if p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	if len(uniq) <= 2 {
		return uniq
	}
	lower := LowerSorted(uniq)
	upper := UpperSorted(uniq)
	out := make([]geom.Point, 0, len(lower)+len(upper)-2)
	for _, i := range lower {
		out = append(out, uniq[i])
	}
	// Upper hull runs left to right; append it reversed, skipping the two
	// shared extreme points.
	for i := len(upper) - 2; i >= 1; i-- {
		out = append(out, uniq[upper[i]])
	}
	return out
}
