package hull

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pamg2d/internal/geom"
)

func sortPts(pts []geom.Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	})
}

func TestLowerSortedSquare(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0, 1), geom.Pt(1, 0), geom.Pt(1, 1)}
	sortPts(pts)
	// The chain runs from the lexicographically smallest point (0,0) to the
	// largest (1,1), passing under the square via (1,0).
	h := LowerSorted(pts)
	if len(h) != 3 {
		t.Fatalf("lower hull of square: got %d points, want 3", len(h))
	}
	want := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1)}
	for i, hi := range h {
		if pts[hi] != want[i] {
			t.Errorf("hull[%d] = %v, want %v", i, pts[hi], want[i])
		}
	}
}

func TestLowerSortedV(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 1), geom.Pt(1, 0), geom.Pt(2, 1)}
	h := LowerSorted(pts)
	if len(h) != 3 {
		t.Fatalf("V shape: got %d hull points, want 3", len(h))
	}
}

func TestLowerSortedCollinearRemoved(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0)}
	h := LowerSorted(pts)
	if len(h) != 2 {
		t.Fatalf("collinear points: got %d hull points, want 2 (endpoints)", len(h))
	}
}

func TestLowerSortedSmall(t *testing.T) {
	if h := LowerSorted(nil); h != nil {
		t.Error("empty input must give nil")
	}
	if h := LowerSorted([]geom.Point{geom.Pt(1, 1)}); len(h) != 1 || h[0] != 0 {
		t.Error("single point must give itself")
	}
	if h := LowerSorted([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}); len(h) != 2 {
		t.Error("two points must both be on the hull")
	}
}

func TestUpperSortedMirror(t *testing.T) {
	// The upper hull of S is the reflection of the lower hull of -S.
	rng := rand.New(rand.NewSource(3))
	pts := make([]geom.Point, 50)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	sortPts(pts)
	upper := UpperSorted(pts)
	neg := make([]geom.Point, len(pts))
	for i, p := range pts {
		neg[i] = geom.Pt(p.X, -p.Y)
	}
	lowerOfNeg := LowerSorted(neg)
	if len(upper) != len(lowerOfNeg) {
		t.Fatalf("upper hull size %d != mirrored lower hull size %d", len(upper), len(lowerOfNeg))
	}
	for i := range upper {
		if upper[i] != lowerOfNeg[i] {
			t.Fatalf("index %d: %d vs %d", i, upper[i], lowerOfNeg[i])
		}
	}
}

func TestConvexSquareWithInterior(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(2, 0), geom.Pt(2, 2), geom.Pt(0, 2), geom.Pt(1, 1), geom.Pt(0.5, 0.7)}
	h := Convex(pts)
	if len(h) != 4 {
		t.Fatalf("hull of square+interior: got %d points, want 4: %v", len(h), h)
	}
	// Must be counter-clockwise.
	area := 0.0
	for i := range h {
		j := (i + 1) % len(h)
		area += h[i].X*h[j].Y - h[j].X*h[i].Y
	}
	if area <= 0 {
		t.Errorf("hull not CCW, signed area %v", area)
	}
}

func TestConvexDuplicates(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 0), geom.Pt(0, 1)}
	h := Convex(pts)
	if len(h) != 3 {
		t.Fatalf("hull with duplicates: got %d, want 3", len(h))
	}
}

func TestConvexDegenerate(t *testing.T) {
	if h := Convex(nil); h != nil {
		t.Error("nil input")
	}
	h := Convex([]geom.Point{geom.Pt(1, 1), geom.Pt(1, 1)})
	if len(h) != 1 {
		t.Errorf("all-same points: got %d, want 1", len(h))
	}
	h = Convex([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 1), geom.Pt(2, 2), geom.Pt(3, 3)})
	if len(h) != 2 {
		t.Errorf("collinear points: got %d, want 2", len(h))
	}
}

// Property: every input point lies on or above the lower hull chain
// (no point below), and hull vertices make strict left turns.
func TestLowerHullProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%100 + 3
		rng := rand.New(rand.NewSource(seed))
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(math.Round(rng.Float64()*100)/10, math.Round(rng.Float64()*100)/10)
		}
		sortPts(pts)
		h := LowerSorted(pts)
		// Strict left turns along the hull.
		for i := 0; i+2 < len(h); i++ {
			if geom.Orient2DSign(pts[h[i]], pts[h[i+1]], pts[h[i+2]]) <= 0 {
				return false
			}
		}
		// No input point strictly below any hull edge.
		for i := 0; i+1 < len(h); i++ {
			a, b := pts[h[i]], pts[h[i+1]]
			for _, p := range pts {
				if p.X < a.X || p.X > b.X {
					continue
				}
				if geom.Orient2DSign(a, b, p) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Convex is idempotent — the hull of the hull is the hull.
func TestConvexIdempotent(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%50 + 3
		rng := rand.New(rand.NewSource(seed))
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
		}
		h1 := Convex(pts)
		h2 := Convex(h1)
		if len(h1) != len(h2) {
			return false
		}
		// Same point set (order may rotate; compare as sets).
		set := make(map[geom.Point]bool, len(h1))
		for _, p := range h1 {
			set[p] = true
		}
		for _, p := range h2 {
			if !set[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLowerSorted(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 10000)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	sortPts(pts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LowerSorted(pts)
	}
}
