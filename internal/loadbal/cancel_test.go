package loadbal

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"pamg2d/internal/mpi"
)

func TestRunPreCanceledContext(t *testing.T) {
	// An already-canceled context must fail every rank immediately, before
	// any task runs.
	ranks := 2
	dist := make([][]Task, ranks)
	for k := int32(0); k < 6; k++ {
		dist[0] = append(dist[0], Task{ID: k, Cost: 1})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	world := mpi.NewWorld(ranks)
	win := world.NewWindow(ranks)
	var processed atomic.Int32
	errs := make([]error, ranks)
	werr := world.Run(func(c *mpi.Comm) {
		_, errs[c.Rank()] = Run(ctx, c, win, dist[c.Rank()], 6,
			Options{StealBelow: 0.5, Poll: 100 * time.Microsecond},
			func(Task) { processed.Add(1) })
	})
	if werr != nil {
		t.Fatal(werr)
	}
	for r, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("rank %d: err = %v, want context.Canceled", r, err)
		}
	}
	if n := processed.Load(); n != 0 {
		t.Errorf("%d tasks ran despite a pre-canceled context", n)
	}
}

func TestRunCancelMidStream(t *testing.T) {
	// Cancel while tasks are flowing: every rank must return an error and
	// drain both of its goroutines instead of hanging on termination
	// messages that will never arrive.
	ranks := 4
	dist := make([][]Task, ranks)
	id := int32(0)
	for r := 0; r < ranks; r++ {
		for k := 0; k < 50; k++ {
			dist[r] = append(dist[r], Task{ID: id, Cost: 5})
			id++
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	world := mpi.NewWorld(ranks)
	win := world.NewWindow(ranks)
	var processed atomic.Int32
	errs := make([]error, ranks)
	done := make(chan struct{})
	go func() {
		defer close(done)
		world.RunCtx(ctx, func(c *mpi.Comm) error {
			_, errs[c.Rank()] = Run(ctx, c, win, dist[c.Rank()], int(id),
				Options{StealBelow: 10, Poll: 100 * time.Microsecond},
				func(Task) {
					if processed.Add(1) == 3 {
						cancel()
					}
					time.Sleep(200 * time.Microsecond)
				})
			return nil
		})
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("balancer hung after mid-stream cancellation")
	}
	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	if failed == 0 {
		t.Error("no rank reported the cancellation")
	}
	if n := processed.Load(); int(n) == int(id) {
		t.Errorf("all %d tasks completed; cancellation had no effect", n)
	}
}
