package loadbal

// Wire codec for Task, registered with the mpi transport layer so steal
// grants — which travel as zero-copy Task references in-process — can
// cross a process boundary. The format extends the stealing protocol's
// 24-byte-equivalent header with a discriminator preserving which payload
// representation the task carries, because the meshing callback decodes
// Vals and Payload differently.

import (
	"encoding/binary"
	"fmt"
	"math"

	"pamg2d/internal/mpi"
)

// codecTask is loadbal's wire id in the block mpi reserves for it.
const codecTask mpi.CodecID = 16

const (
	taskFormPayload byte = 0
	taskFormVals    byte = 1
)

func encodeTaskRef(ref any, dst []byte) []byte {
	t := ref.(Task)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(t.ID))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(t.Cost))
	var flags byte
	if t.BoundaryLayer {
		flags = 1
	}
	form := taskFormPayload
	if len(t.Vals) > 0 {
		form = taskFormVals
	}
	dst = append(dst, flags, form)
	if form == taskFormVals {
		for _, v := range t.Vals {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
		return dst
	}
	return append(dst, t.Payload...)
}

func decodeTaskRef(b []byte) (any, error) {
	if len(b) < 14 {
		return nil, fmt.Errorf("loadbal: task frame of %d bytes, want >= 14", len(b))
	}
	t := Task{
		ID:            int32(binary.LittleEndian.Uint32(b)),
		Cost:          math.Float64frombits(binary.LittleEndian.Uint64(b[4:])),
		BoundaryLayer: b[12] != 0,
	}
	body := b[14:]
	switch b[13] {
	case taskFormPayload:
		if len(body) > 0 {
			t.Payload = append([]byte{}, body...)
		}
	case taskFormVals:
		if len(body)%8 != 0 {
			return nil, fmt.Errorf("loadbal: task vals of %d bytes not a multiple of 8", len(body))
		}
		t.Vals = make([]float64, len(body)/8)
		for i := range t.Vals {
			t.Vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
		}
	default:
		return nil, fmt.Errorf("loadbal: unknown task payload form %d", b[13])
	}
	return t, nil
}

func init() {
	mpi.RegisterCodec(codecTask, Task{}, encodeTaskRef, decodeTaskRef)
}
