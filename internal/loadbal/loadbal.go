// Package loadbal implements the paper's dynamic load balancing: each
// process keeps its subdomains in a priority queue ordered by estimated
// meshing cost (boundary-layer subdomains first — they hold the most
// points and are the most expensive to transfer, so they are meshed while
// everyone still has work). Every process runs a mesher goroutine and a
// communicator goroutine; the communicator keeps the process's remaining
// work estimate fresh in an RMA window hosted on the root, requests work
// from the most loaded process when the local estimate falls below a
// threshold, and serves incoming work requests from the local queue.
package loadbal

import (
	"container/heap"
	"context"
	"errors"
	"math"
	"sync"
	"time"

	"pamg2d/internal/mpi"
	"pamg2d/internal/trace"
)

// Task is one unit of meshing work (a subdomain).
type Task struct {
	// ID is unique across all ranks.
	ID int32
	// Cost is the estimated number of triangles the task will produce.
	Cost float64
	// BoundaryLayer marks boundary-layer subdomains, which are prioritized
	// ahead of inviscid subdomains of any cost.
	BoundaryLayer bool
	// Payload is the serialized subdomain, opaque to the balancer.
	Payload []byte
	// Vals is the zero-copy alternative to Payload for tasks built in the
	// same address space: the floats that EncodeFloats would have packed,
	// handed around by reference. Steal transfers still account the bytes
	// the serialized form would occupy (see WireBytes), so the
	// communication-volume statistics are unchanged by the fast path.
	Vals []float64
}

// WireBytes returns the number of bytes the task would occupy on a real
// interconnect: the 24-byte header of the stealing protocol plus the
// serialized payload, whichever representation the task carries.
func (t *Task) WireBytes() int {
	return 24 + len(t.Payload) + 8*len(t.Vals)
}

// message tags of the stealing protocol.
const (
	tagRequest = iota + 100
	tagGrant
	tagDeny
	tagComplete
	// tagMoved is the grant acknowledgement of multi-process runs: after a
	// successful grant the granter reports {task, new owner} to the root,
	// which keeps the root's ownership map fresh for dead-rank re-queue.
	tagMoved
	tagTerminate
)

// Options tunes the balancer.
type Options struct {
	// StealBelow triggers a steal request when the local remaining cost
	// drops below this value.
	StealBelow float64
	// Poll is the communicator loop interval.
	Poll time.Duration
	// Tracer, when non-nil, records the balancer's behavior on each
	// rank's track: idle waits as spans, steal requests/denies as instant
	// events, grants and receipts as spans linked by a flow arrow, and
	// the local queue cost as a counter series. Disabled (nil) costs the
	// hot paths a single nil check.
	Tracer *trace.Tracer
	// Assign is the initial task→owner map of the caller's deal. With
	// Assign and Lookup set, the root of a multi-process run tracks task
	// ownership (grants re-report via tagMoved) and, when a rank dies,
	// re-materializes its unfinished tasks through Lookup onto the root's
	// own queue — stealing then redistributes them across the survivors.
	// Re-queued tasks execute at-least-once: a task granted moments before
	// the granter died may run twice, which is safe because every task is
	// deterministic and completions are de-duplicated by ID.
	Assign map[int32]int
	// Lookup re-materializes a task by ID for the re-queue path (the
	// caller holds the full task list; the root only learns IDs).
	Lookup func(id int32) (Task, bool)
}

// DefaultOptions returns the tuning used by the pipeline.
func DefaultOptions(totalCost float64, ranks int) Options {
	return Options{
		StealBelow: totalCost / float64(ranks) / 4,
		Poll:       200 * time.Microsecond,
	}
}

// Stats reports per-rank balancer behavior.
type Stats struct {
	Processed     int
	Failed        int // tasks whose process callback panicked
	StealRequests int
	StealsGranted int // requests this rank satisfied for others
	StealsGotten  int // tasks this rank received from others
	IdleTime      time.Duration
	// Dead-rank recovery (root only): ranks whose death this run handled,
	// tasks re-queued onto survivors, and the wall time between the first
	// death observed and the run's termination.
	RanksLost    int
	Requeued     int
	RecoveryTime time.Duration
}

// taskQueue is a max-heap: boundary-layer tasks first, then by cost.
type taskQueue []Task

func (q taskQueue) Len() int { return len(q) }
func (q taskQueue) Less(i, j int) bool {
	if q[i].BoundaryLayer != q[j].BoundaryLayer {
		return q[i].BoundaryLayer
	}
	return q[i].Cost > q[j].Cost
}
func (q taskQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *taskQueue) Push(x interface{}) { *q = append(*q, x.(Task)) }
func (q *taskQueue) Pop() interface{} {
	old := *q
	n := len(old)
	t := old[n-1]
	*q = old[:n-1]
	return t
}

// state is the queue shared by the two goroutines of one rank.
type state struct {
	mu        sync.Mutex
	cond      *sync.Cond
	queue     taskQueue
	remaining float64 // queued + in-flight cost
	done      bool
	canceled  bool // abort: stop even with tasks still queued
}

func (s *state) push(t Task) {
	s.mu.Lock()
	heap.Push(&s.queue, t)
	s.remaining += t.Cost
	s.cond.Broadcast()
	s.mu.Unlock()
}

// popForMesher removes the highest-priority task; the task's cost stays in
// `remaining` until finish() because it is still unfinished local work.
func (s *state) popForMesher() (Task, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && !s.done {
		s.cond.Wait()
	}
	if s.canceled || len(s.queue) == 0 {
		return Task{}, false
	}
	t := heap.Pop(&s.queue).(Task)
	return t, true
}

// popForSteal removes a task to grant to another rank, or reports none to
// spare.
func (s *state) popForSteal() (Task, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return Task{}, false
	}
	t := heap.Pop(&s.queue).(Task)
	s.remaining -= t.Cost
	return t, true
}

func (s *state) finish(t Task) {
	s.mu.Lock()
	s.remaining -= t.Cost
	s.mu.Unlock()
}

func (s *state) load() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.remaining
}

func (s *state) terminate() {
	s.mu.Lock()
	s.done = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// cancel aborts the queue: unlike terminate, which lets the mesher drain
// what is already queued, cancel makes popForMesher return immediately
// even with tasks outstanding. Used when the world is torn down or the
// run's context is canceled.
func (s *state) cancel() {
	s.mu.Lock()
	s.done = true
	s.canceled = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Run executes all tasks across the world. Every rank calls Run with its
// initial task list; process is invoked once per task, on exactly one
// rank. Returns this rank's stats. The window must have one slot per rank.
//
// The run ends early when ctx is canceled or the world is torn down: the
// task in flight completes, queued tasks are abandoned, both goroutines
// return promptly (no leak), and the teardown cause is returned alongside
// the stats accumulated so far. A nil error means every local pop was
// processed and termination arrived from the root.
func Run(ctx context.Context, c *mpi.Comm, win *mpi.Window, initial []Task, totalTasks int, opt Options, process func(Task)) (Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// A run that is dead on arrival must not process anything: without this
	// check the mesher could race the communicator's first poll and drain a
	// task before the abort lands.
	if ctx.Err() != nil {
		return Stats{}, context.Cause(ctx)
	}
	if err := c.Err(); err != nil {
		return Stats{}, err
	}
	st := &state{}
	st.cond = sync.NewCond(&st.mu)
	for _, t := range initial {
		st.push(t)
	}

	multi := c.World().MultiProcess()
	// Dead-rank recovery is root-side state: the ownership map starts as
	// the caller's deal and grant acknowledgements keep it fresh, so when
	// a rank dies the root knows exactly which unfinished tasks to
	// re-materialize onto the survivors.
	recoverOn := multi && c.Rank() == 0 && opt.Lookup != nil && opt.Assign != nil

	var stats Stats
	var statsMu sync.Mutex
	var runErr error // set by the communicator on abort, under statsMu

	var wg sync.WaitGroup
	wg.Add(2)

	tr := opt.Tracer

	// Mesher goroutine: drain the queue largest-first.
	go func() {
		defer wg.Done()
		for {
			var idleSp trace.Span
			if tr.Enabled() {
				idleSp = tr.Begin(c.Rank(), trace.CatIdle, "idle")
			}
			idleStart := time.Now()
			t, ok := st.popForMesher()
			idle := time.Since(idleStart)
			if tr.Enabled() {
				idleSp.End()
			}
			statsMu.Lock()
			stats.IdleTime += idle
			statsMu.Unlock()
			if !ok {
				return
			}
			// A panicking task must not take down the rank: the mesher
			// records the failure and keeps draining, and the completion
			// still counts toward termination so the world shuts down.
			failed := false
			func() {
				defer func() {
					if p := recover(); p != nil {
						failed = true
					}
				}()
				process(t)
			}()
			st.finish(t)
			statsMu.Lock()
			stats.Processed++
			if failed {
				stats.Failed++
			}
			statsMu.Unlock()
			// Report the completion to the root's termination counter; in a
			// multi-process run the completion carries the task ID so the
			// root can de-duplicate at-least-once re-queued tasks and retire
			// the ownership entry. A failed send means the root is gone
			// (quorum loss) or the world is tearing down; stop draining —
			// the communicator observes the same condition and cancels the
			// queue, so just park until then.
			var completion []byte
			if multi {
				completion = mpi.EncodeFloats([]float64{float64(t.ID)})
			}
			if err := c.Send(0, tagComplete, completion); err != nil {
				st.cancel()
				return
			}
		}
	}()

	// Communicator goroutine: window updates, stealing, termination.
	go func() {
		defer wg.Done()
		abort := func(err error) {
			statsMu.Lock()
			if runErr == nil {
				runErr = err
			}
			statsMu.Unlock()
			st.cancel()
		}
		completed := 0 // root only
		awaitingGrant := false
		awaitingFrom := -1
		lastLoad := math.NaN() // NaN compares unequal, forcing the first sample
		// Root-side recovery state: current owner per unfinished task,
		// completions seen by ID, ranks whose death is already handled, and
		// the first-death timestamp for the recovery-wall stat.
		var owner map[int32]int
		var doneID map[int32]bool
		var handledDead []bool
		var recoveryStart time.Time
		// The recovery span opens when the first death is handled and closes
		// at termination; the deferred guard closes it on the abort paths so
		// a torn-down run never leaks an open span.
		var recoverSp trace.Span
		recoverOpen := false
		defer func() {
			if recoverOpen {
				recoverSp.End(trace.I("aborted", 1))
			}
		}()
		if recoverOn {
			owner = make(map[int32]int, len(opt.Assign))
			for id, r := range opt.Assign {
				owner[id] = r
			}
			doneID = make(map[int32]bool, totalTasks)
			handledDead = make([]bool, c.Size())
			handledDead[c.Rank()] = true
		}
		for {
			// Teardown and cancellation are level-triggered: checked once
			// per poll iteration, so an abort is noticed within one Poll
			// interval even while no messages flow.
			if err := c.Err(); err != nil {
				abort(err)
				return
			}
			if ctx.Err() != nil {
				abort(context.Cause(ctx))
				return
			}
			// Serve everything pending. Only the balancer's own tags are
			// consumed, so callers may interleave their own messages (the
			// pipeline ships task results to the root concurrently).
			for {
				data, src, tag, ok := tryRecvBalancer(c)
				if !ok {
					break
				}
				switch tag {
				case tagRequest:
					if t, ok := st.popForSteal(); ok {
						var grantSp trace.Span
						if tr.Enabled() {
							grantSp = tr.Begin(c.Rank(), trace.CatSteal, "grant")
						}
						// Zero-copy transfer: the task moves by reference,
						// accounted at exactly the size its serialized form
						// (encodeTask) would occupy on the wire.
						if err := c.SendRef(src, tagGrant, t, t.WireBytes()); err != nil {
							// Undelivered: the task is still ours to run.
							st.push(t)
							if tr.Enabled() {
								grantSp.End(trace.I("undelivered", 1))
							}
							break
						}
						// Acknowledge the ownership transfer to the root so a
						// later death of either party re-queues the right
						// tasks. Best-effort: a lost ack at worst re-runs the
						// task once (at-least-once semantics).
						if multi {
							_ = c.Send(0, tagMoved, mpi.EncodeFloats([]float64{float64(t.ID), float64(src)}))
						}
						if tr.Enabled() {
							// The flow arrow starts inside the grant span so
							// viewers bind it to the slice; its finish is the
							// thief's receive span.
							tr.FlowOut(c.Rank(), src, "steal")
							grantSp.End(trace.I("to", src), trace.I("task", int(t.ID)),
								trace.I("bytes", t.WireBytes()), trace.F("cost", t.Cost))
						}
						statsMu.Lock()
						stats.StealsGranted++
						statsMu.Unlock()
					} else if err := c.Send(src, tagDeny, nil); err != nil {
						break
					}
				case tagGrant:
					var stolenSp trace.Span
					if tr.Enabled() {
						stolenSp = tr.Begin(c.Rank(), trace.CatSteal, "stolen")
						tr.FlowIn(c.Rank(), src, "steal")
					}
					switch p := data.(type) {
					case Task:
						st.push(p)
					case []byte:
						st.push(decodeTask(p))
					}
					if tr.Enabled() {
						stolenSp.End(trace.I("from", src))
					}
					awaitingGrant = false
					statsMu.Lock()
					stats.StealsGotten++
					statsMu.Unlock()
				case tagDeny:
					if tr.Enabled() {
						tr.Instant(c.Rank(), trace.CatSteal, "deny", trace.I("from", src))
					}
					awaitingGrant = false
				case tagComplete:
					if recoverOn {
						if b, ok := data.([]byte); ok && len(b) >= 8 {
							id := int32(mpi.DecodeFloats(b[:8])[0])
							if !doneID[id] {
								doneID[id] = true
								delete(owner, id)
								completed++
							}
							break
						}
					}
					completed++
				case tagMoved:
					if recoverOn {
						if b, ok := data.([]byte); ok && len(b) >= 16 {
							v := mpi.DecodeFloats(b[:16])
							if id := int32(v[0]); !doneID[id] {
								owner[id] = int(v[1])
							}
						}
					}
				case tagTerminate:
					st.terminate()
					return
				}
			}
			// Fold rank deaths into the termination accounting: every
			// unfinished task owned by a newly dead rank is re-materialized
			// onto the root's own queue, where stealing redistributes it
			// across the survivors. Detected level-triggered once per poll,
			// like teardown.
			if recoverOn {
				for r := 0; r < c.Size(); r++ {
					if handledDead[r] || c.Alive(r) {
						continue
					}
					handledDead[r] = true
					if recoveryStart.IsZero() {
						recoveryStart = time.Now()
						if tr.Enabled() {
							recoverSp = tr.Begin(c.Rank(), trace.CatRecover, "recovery")
							recoverOpen = true
						}
					}
					requeued := 0
					for id, own := range owner {
						if own != r {
							continue
						}
						t, ok := opt.Lookup(id)
						if !ok {
							continue
						}
						owner[id] = c.Rank()
						st.push(t)
						requeued++
					}
					if tr.Enabled() {
						tr.Instant(c.Rank(), trace.CatRecover, "rank-dead",
							trace.I("rank", r), trace.I("requeued", requeued))
						tr.Metrics().Observe("loadbal.requeued", float64(requeued))
					}
					statsMu.Lock()
					stats.RanksLost++
					stats.Requeued += requeued
					statsMu.Unlock()
				}
			}
			if c.Rank() == 0 && completed == totalTasks {
				if recoverOn && !recoveryStart.IsZero() {
					statsMu.Lock()
					stats.RecoveryTime = time.Since(recoveryStart)
					lost, requeued := stats.RanksLost, stats.Requeued
					statsMu.Unlock()
					if recoverOpen {
						recoverSp.End(trace.I("ranks_lost", lost), trace.I("requeued", requeued))
						recoverOpen = false
					}
				}
				for r := 0; r < c.Size(); r++ {
					if multi && !c.Alive(r) {
						continue
					}
					if err := c.Send(r, tagTerminate, nil); err != nil {
						// A rank that died between the liveness check and the
						// send is no reason to fail the survivors.
						var de *mpi.RankDeadError
						if multi && errors.As(err, &de) {
							continue
						}
						abort(err)
						return
					}
				}
				completed = -1 // sent; keep serving until our own terminate arrives
			}
			// Publish the current work estimate (MPI_Put on the window).
			load := st.load()
			win.Put(c.Rank(), load)
			if tr.Enabled() && load != lastLoad {
				// Sampled only on change, so an idle rank does not flood
				// the trace at the poll frequency.
				tr.Counter(c.Rank(), "queue-cost", load)
				tr.Metrics().Observe("loadbal.queue_cost", load)
				lastLoad = load
			}
			// A pending steal request aimed at a rank that has since died
			// will never be answered; clear it so this rank keeps stealing
			// from the survivors.
			if awaitingGrant && multi && awaitingFrom >= 0 && !c.Alive(awaitingFrom) {
				awaitingGrant = false
			}
			// Steal when underloaded: fetch the window (MPI_Get) and ask
			// the most loaded rank. Dead ranks are skipped — their window
			// slots hold the stale last value they published.
			if !awaitingGrant && load < opt.StealBelow {
				loads := win.Get()
				victim, best := -1, opt.StealBelow
				for r, l := range loads {
					if r != c.Rank() && l > best && (!multi || c.Alive(r)) {
						victim, best = r, l
					}
				}
				if victim >= 0 {
					if err := c.Send(victim, tagRequest, nil); err == nil {
						if tr.Enabled() {
							tr.Instant(c.Rank(), trace.CatSteal, "request",
								trace.I("victim", victim), trace.F("load", load))
						}
						awaitingGrant = true
						awaitingFrom = victim
						statsMu.Lock()
						stats.StealRequests++
						statsMu.Unlock()
					}
				}
			}
			time.Sleep(opt.Poll)
		}
	}()

	wg.Wait()
	return stats, runErr
}

// tryRecvBalancer polls only the balancer's tag range. Grants travel as
// Task references on the zero-copy path, so the payload is returned as an
// interface value; byte payloads from remote-style senders pass through
// unchanged.
func tryRecvBalancer(c *mpi.Comm) (data any, src, tag int, ok bool) {
	for t := tagRequest; t <= tagTerminate; t++ {
		if d, s, tg, found := c.TryRecvRef(mpi.AnySource, t); found {
			return d, s, tg, true
		}
	}
	return nil, 0, 0, false
}

// encodeTask serializes a task for transfer; this is the wire format whose
// size SendRef-based grants account for.

func encodeTask(t Task) []byte {
	head := mpi.EncodeFloats([]float64{float64(t.ID), t.Cost, boolTo(t.BoundaryLayer)})
	if len(t.Vals) > 0 {
		return append(head, mpi.EncodeFloats(t.Vals)...)
	}
	return append(head, t.Payload...)
}

func decodeTask(b []byte) Task {
	head := mpi.DecodeFloats(b[:24])
	return Task{
		ID:            int32(head[0]),
		Cost:          head[1],
		BoundaryLayer: head[2] != 0,
		Payload:       b[24:],
	}
}

func boolTo(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
