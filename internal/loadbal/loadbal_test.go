package loadbal

import (
	"container/heap"
	"context"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"pamg2d/internal/mpi"
)

func TestQueuePriority(t *testing.T) {
	q := &taskQueue{}
	heap.Push(q, Task{ID: 1, Cost: 10})
	heap.Push(q, Task{ID: 2, Cost: 100})
	heap.Push(q, Task{ID: 3, Cost: 5, BoundaryLayer: true})
	heap.Push(q, Task{ID: 4, Cost: 50})
	// Boundary-layer tasks come first regardless of cost, then by cost.
	wantOrder := []int32{3, 2, 4, 1}
	for _, want := range wantOrder {
		got := heap.Pop(q).(Task)
		if got.ID != want {
			t.Fatalf("pop order: got %d, want %d", got.ID, want)
		}
	}
}

func TestTaskEncoding(t *testing.T) {
	in := Task{ID: 42, Cost: 1234.5, BoundaryLayer: true, Payload: []byte("subdomain-bytes")}
	out := decodeTask(encodeTask(in))
	if out.ID != in.ID || out.Cost != in.Cost || out.BoundaryLayer != in.BoundaryLayer ||
		string(out.Payload) != string(in.Payload) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

// runBalanced executes nTasks distributed as per dist across ranks and
// returns processed-task IDs per rank.
func runBalanced(t *testing.T, ranks int, dist [][]Task, opt Options) ([][]int32, []Stats) {
	t.Helper()
	total := 0
	for _, d := range dist {
		total += len(d)
	}
	world := mpi.NewWorld(ranks)
	win := world.NewWindow(ranks)
	processed := make([][]int32, ranks)
	statsOut := make([]Stats, ranks)
	var mu sync.Mutex
	err := world.Run(func(c *mpi.Comm) {
		st, rerr := Run(context.Background(), c, win, dist[c.Rank()], total, opt, func(task Task) {
			// Simulate work proportional to cost.
			time.Sleep(time.Duration(task.Cost) * 10 * time.Microsecond)
			mu.Lock()
			processed[c.Rank()] = append(processed[c.Rank()], task.ID)
			mu.Unlock()
		})
		if rerr != nil {
			t.Errorf("rank %d: %v", c.Rank(), rerr)
		}
		statsOut[c.Rank()] = st
	})
	if err != nil {
		t.Fatal(err)
	}
	return processed, statsOut
}

func TestAllTasksProcessedOnce(t *testing.T) {
	ranks := 4
	dist := make([][]Task, ranks)
	id := int32(0)
	for r := 0; r < ranks; r++ {
		for k := 0; k < 5; k++ {
			dist[r] = append(dist[r], Task{ID: id, Cost: 10})
			id++
		}
	}
	processed, _ := runBalanced(t, ranks, dist, Options{StealBelow: 5, Poll: 100 * time.Microsecond})
	seen := map[int32]int{}
	for _, ids := range processed {
		for _, x := range ids {
			seen[x]++
		}
	}
	if len(seen) != int(id) {
		t.Fatalf("processed %d distinct tasks, want %d", len(seen), id)
	}
	for x, n := range seen {
		if n != 1 {
			t.Fatalf("task %d processed %d times", x, n)
		}
	}
}

func TestStealingFromImbalance(t *testing.T) {
	// All work starts on rank 0; other ranks must steal.
	ranks := 4
	dist := make([][]Task, ranks)
	for k := int32(0); k < 24; k++ {
		dist[0] = append(dist[0], Task{ID: k, Cost: 20})
	}
	processed, stats := runBalanced(t, ranks, dist,
		Options{StealBelow: 30, Poll: 100 * time.Microsecond})
	totalStolen := 0
	for _, s := range stats {
		totalStolen += s.StealsGotten
	}
	if totalStolen == 0 {
		t.Error("no tasks were stolen despite total imbalance")
	}
	busyRanks := 0
	for _, ids := range processed {
		if len(ids) > 0 {
			busyRanks++
		}
	}
	if busyRanks < 2 {
		t.Errorf("only %d ranks did any work", busyRanks)
	}
}

func TestLargestFirstLocally(t *testing.T) {
	// A single rank must process its queue in priority order.
	dist := [][]Task{{
		{ID: 1, Cost: 5},
		{ID: 2, Cost: 50},
		{ID: 3, Cost: 500},
		{ID: 4, Cost: 1, BoundaryLayer: true},
	}}
	processed, _ := runBalanced(t, 1, dist, Options{StealBelow: 0, Poll: 100 * time.Microsecond})
	got := processed[0]
	want := []int32{4, 3, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("processed %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestEmptyRanksTerminate(t *testing.T) {
	// Ranks with no work and nothing to steal must still terminate.
	dist := make([][]Task, 3)
	dist[1] = []Task{{ID: 0, Cost: 1}}
	done := make(chan struct{})
	go func() {
		runBalanced(t, 3, dist, Options{StealBelow: 0.5, Poll: 100 * time.Microsecond})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("balancer did not terminate")
	}
}

func TestPayloadSurvivesTransfer(t *testing.T) {
	ranks := 2
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i)
	}
	dist := make([][]Task, ranks)
	for k := int32(0); k < 8; k++ {
		dist[0] = append(dist[0], Task{ID: k, Cost: 50, Payload: payload})
	}
	world := mpi.NewWorld(ranks)
	win := world.NewWindow(ranks)
	var mu sync.Mutex
	bad := false
	err := world.Run(func(c *mpi.Comm) {
		Run(context.Background(), c, win, dist[c.Rank()], 8, Options{StealBelow: 60, Poll: 100 * time.Microsecond}, func(task Task) {
			time.Sleep(500 * time.Microsecond)
			for i := range task.Payload {
				if task.Payload[i] != byte(i) {
					mu.Lock()
					bad = true
					mu.Unlock()
					return
				}
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Error("payload corrupted in transfer")
	}
}

func TestPanickingTaskDoesNotHang(t *testing.T) {
	// One task panics; the balancer must record the failure, keep the
	// world alive, and terminate normally.
	dist := [][]Task{{
		{ID: 0, Cost: 1},
		{ID: 1, Cost: 1}, // this one will panic
		{ID: 2, Cost: 1},
	}, nil}
	world := mpi.NewWorld(2)
	win := world.NewWindow(2)
	var stats [2]Stats
	done := make(chan struct{})
	go func() {
		defer close(done)
		world.Run(func(c *mpi.Comm) {
			stats[c.Rank()], _ = Run(context.Background(), c, win, dist[c.Rank()], 3,
				Options{StealBelow: 0.5, Poll: 100 * time.Microsecond},
				func(task Task) {
					if task.ID == 1 {
						panic("task exploded")
					}
				})
		})
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("balancer hung after a task panic")
	}
	failed := stats[0].Failed + stats[1].Failed
	processed := stats[0].Processed + stats[1].Processed
	if failed != 1 {
		t.Errorf("failed = %d, want 1", failed)
	}
	if processed != 3 {
		t.Errorf("processed = %d, want 3 (failures still count toward termination)", processed)
	}
}

// Property: the task queue always pops boundary-layer tasks before
// inviscid ones, and within a class in descending cost order.
func TestQueuePriorityProperty(t *testing.T) {
	f := func(costs []float64, blFlags []bool) bool {
		q := &taskQueue{}
		n := len(costs)
		if len(blFlags) < n {
			n = len(blFlags)
		}
		for i := 0; i < n; i++ {
			c := costs[i]
			if c < 0 {
				c = -c
			}
			heap.Push(q, Task{ID: int32(i), Cost: c, BoundaryLayer: blFlags[i]})
		}
		prevBL := true
		prevCost := math.Inf(1)
		for q.Len() > 0 {
			task := heap.Pop(q).(Task)
			if task.BoundaryLayer && !prevBL {
				return false // BL task after an inviscid one
			}
			if task.BoundaryLayer == prevBL && task.Cost > prevCost+1e-12 {
				return false // cost order broken within a class
			}
			if task.BoundaryLayer != prevBL {
				prevCost = math.Inf(1)
			}
			prevBL = task.BoundaryLayer
			prevCost = task.Cost
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
