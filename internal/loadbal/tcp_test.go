package loadbal

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pamg2d/internal/mpi"
)

// TestTaskCodecRoundTrip is the property test for the steal-grant wire
// format: any Task — payload-carrying, vals-carrying, or empty — survives
// encode→decode bit-exactly.
func TestTaskCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		in := Task{
			ID:            rng.Int31(),
			Cost:          rng.NormFloat64() * 1e4,
			BoundaryLayer: rng.Intn(2) == 1,
		}
		switch rng.Intn(3) {
		case 0:
			in.Payload = make([]byte, rng.Intn(200))
			rng.Read(in.Payload)
		case 1:
			in.Vals = make([]float64, rng.Intn(50))
			for k := range in.Vals {
				in.Vals[k] = rng.NormFloat64()
			}
		}
		wire := encodeTaskRef(in, nil)
		ref, err := decodeTaskRef(wire)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", i, err)
		}
		out := ref.(Task)
		if out.ID != in.ID || out.Cost != in.Cost || out.BoundaryLayer != in.BoundaryLayer {
			t.Fatalf("iter %d: header mismatch: %+v -> %+v", i, in, out)
		}
		if !bytes.Equal(out.Payload, in.Payload) && (len(out.Payload) > 0 || len(in.Payload) > 0) {
			t.Fatalf("iter %d: payload mismatch", i)
		}
		if len(out.Vals) != len(in.Vals) {
			t.Fatalf("iter %d: vals length %d -> %d", i, len(in.Vals), len(out.Vals))
		}
		for k := range in.Vals {
			if out.Vals[k] != in.Vals[k] {
				t.Fatalf("iter %d: vals[%d] mismatch", i, k)
			}
		}
	}
}

func TestTaskCodecRejectsMalformed(t *testing.T) {
	good := encodeTaskRef(Task{ID: 1, Vals: []float64{1, 2}}, nil)
	cases := map[string][]byte{
		"short header": good[:10],
		"ragged vals":  good[:len(good)-3],
		"unknown form": {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 9},
	}
	for name, b := range cases {
		if _, err := decodeTaskRef(b); err == nil {
			t.Errorf("%s: decoder accepted malformed task", name)
		}
	}
}

// TestStealingOverTCP runs the total-imbalance scenario across a loopback
// TCP cluster: all work starts on rank 0's process and the other
// processes must steal it over the wire — grants serialize through the
// Task codec, the load table crosses via window frames, and termination
// fans out from the root.
func TestStealingOverTCP(t *testing.T) {
	const ranks = 3
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	clusters, err := mpi.LoopbackClusters(ctx, ranks)
	if err != nil {
		t.Fatalf("LoopbackClusters: %v", err)
	}
	defer func() {
		for _, cl := range clusters {
			cl.Close()
		}
	}()

	const total = 24
	var mu sync.Mutex
	processed := map[int32]int{}
	perRank := make([]int, ranks)
	stats := make([]Stats, ranks)
	errs := make([]error, ranks)

	var wg sync.WaitGroup
	for i, cl := range clusters {
		wg.Add(1)
		go func(i int, cl *mpi.Cluster) {
			defer wg.Done()
			w := cl.NewWorld()
			errs[i] = w.RunCtx(ctx, func(c *mpi.Comm) error {
				var initial []Task
				if c.Rank() == 0 {
					for k := int32(0); k < total; k++ {
						initial = append(initial, Task{ID: k, Cost: 20, Vals: []float64{float64(k), 0.5}})
					}
				}
				win := w.NewWindow(c.Size())
				st, err := Run(ctx, c, win, initial, total,
					Options{StealBelow: 30, Poll: 100 * time.Microsecond},
					func(task Task) {
						time.Sleep(2 * time.Millisecond) // keep rank 0 busy enough to be robbed
						if len(task.Vals) != 2 || task.Vals[0] != float64(task.ID) {
							t.Errorf("task %d arrived with vals %v", task.ID, task.Vals)
						}
						mu.Lock()
						processed[task.ID]++
						perRank[c.Rank()]++
						mu.Unlock()
					})
				stats[c.Rank()] = st
				return err
			})
		}(i, cl)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	for k := int32(0); k < total; k++ {
		if processed[k] != 1 {
			t.Errorf("task %d processed %d times, want exactly once", k, processed[k])
		}
	}
	stolen := 0
	busy := 0
	for r := 0; r < ranks; r++ {
		stolen += stats[r].StealsGotten
		if perRank[r] > 0 {
			busy++
		}
	}
	if stolen == 0 {
		t.Error("no tasks crossed the wire despite total imbalance")
	}
	if busy < 2 {
		t.Errorf("only %d processes did any work", busy)
	}
}

// TestRecoveryOverTCP kills one worker of a 3-process loopback fabric
// mid-run and checks the balancer completes on the survivors: the root
// re-queues the dead rank's unfinished tasks (at-least-once semantics),
// every task executes, and the recovery counters land in the root's
// stats.
func TestRecoveryOverTCP(t *testing.T) {
	const ranks = 3
	const total = 12
	const victim = 2
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	clusters, err := mpi.LoopbackClusters(ctx, ranks)
	if err != nil {
		t.Fatalf("LoopbackClusters: %v", err)
	}
	byRank := make([]*mpi.Cluster, ranks)
	for _, cl := range clusters {
		byRank[cl.Rank()] = cl
	}
	defer func() {
		for r, cl := range byRank {
			if r != victim {
				cl.Close()
			}
		}
	}()

	// Every process computes the identical deal (the SPMD contract) and
	// the root additionally learns the ownership map from it.
	byID := map[int32]Task{}
	assign := map[int32]int{}
	initial := make([][]Task, ranks)
	for i := 0; i < total; i++ {
		tk := Task{ID: int32(i), Cost: 20, Vals: []float64{float64(i), 0.5}}
		byID[tk.ID] = tk
		assign[tk.ID] = i % ranks
		initial[i%ranks] = append(initial[i%ranks], tk)
	}
	opt := Options{
		StealBelow: 1,
		Poll:       100 * time.Microsecond,
		Assign:     assign,
		Lookup:     func(id int32) (Task, bool) { tk, ok := byID[id]; return tk, ok },
	}

	victimStarted := make(chan struct{})
	var startOnce sync.Once
	var mu sync.Mutex
	processed := map[int32]int{}
	stats := make([]Stats, ranks)
	errs := make([]error, ranks)

	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int, cl *mpi.Cluster) {
			defer wg.Done()
			w := cl.NewWorld()
			errs[r] = w.RunCtx(ctx, func(c *mpi.Comm) error {
				win := w.NewWindow(c.Size())
				st, err := Run(ctx, c, win, initial[c.Rank()], total, opt, func(task Task) {
					if c.Rank() == victim {
						// Park so the kill lands while this rank still owns
						// unfinished work; the signal fires before the sleep so
						// the in-flight task is never completed by the victim.
						startOnce.Do(func() { close(victimStarted) })
						time.Sleep(30 * time.Millisecond)
					}
					mu.Lock()
					processed[task.ID]++
					mu.Unlock()
				})
				mu.Lock()
				stats[c.Rank()] = st
				mu.Unlock()
				return err
			})
		}(r, byRank[r])
	}

	<-victimStarted
	// SIGKILL stand-in: the victim's process vanishes mid-task.
	byRank[victim].Close()
	wg.Wait()

	for r, err := range errs {
		if r != victim && err != nil {
			t.Fatalf("survivor %d: %v", r, err)
		}
	}
	for i := 0; i < total; i++ {
		if processed[int32(i)] < 1 {
			t.Errorf("task %d never processed", i)
		}
	}
	mu.Lock()
	root := stats[0]
	mu.Unlock()
	if root.RanksLost != 1 {
		t.Errorf("root RanksLost = %d, want 1", root.RanksLost)
	}
	if root.Requeued < 1 {
		t.Errorf("root Requeued = %d, want >= 1", root.Requeued)
	}
	if root.RecoveryTime <= 0 {
		t.Errorf("root RecoveryTime = %v, want > 0", root.RecoveryTime)
	}
}
