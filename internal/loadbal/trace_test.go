package loadbal

// Steal-flow tracing: a forced-imbalance run must record grant spans on
// the victim's comm track, stolen spans on the thief's, and flow arrows
// pairing them by id so Perfetto draws the task's journey between ranks.

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"pamg2d/internal/mpi"
	"pamg2d/internal/trace"
)

func TestStealFlowsTraced(t *testing.T) {
	// All work starts on rank 0 with a steal threshold high enough that
	// rank 1 asks immediately; the sleep keeps rank 0's queue non-empty
	// long enough for grants to happen.
	const ranks = 2
	dist := make([][]Task, ranks)
	for k := int32(0); k < 16; k++ {
		dist[0] = append(dist[0], Task{ID: k, Cost: 20})
	}
	tr := trace.New(ranks)
	world := mpi.NewWorld(ranks)
	world.SetTracer(tr)
	win := world.NewWindow(ranks)
	opt := Options{StealBelow: 30, Poll: 100 * time.Microsecond, Tracer: tr}
	statsOut := make([]Stats, ranks)
	var mu sync.Mutex
	err := world.Run(func(c *mpi.Comm) {
		st, rerr := Run(context.Background(), c, win, dist[c.Rank()], 16, opt, func(task Task) {
			time.Sleep(time.Duration(task.Cost) * 10 * time.Microsecond)
		})
		if rerr != nil {
			t.Errorf("rank %d: %v", c.Rank(), rerr)
		}
		mu.Lock()
		statsOut[c.Rank()] = st
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	stolen := 0
	for _, s := range statsOut {
		stolen += s.StealsGotten
	}
	if stolen == 0 {
		t.Skip("no steals happened this run; nothing to trace")
	}

	if n := tr.OpenSpans(); n != 0 {
		t.Errorf("%d spans left open", n)
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	var tj struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			PID  float64 `json:"pid"`
			ID   uint64  `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tj); err != nil {
		t.Fatal(err)
	}
	grants, stolenSpans := 0, 0
	outIDs := map[uint64]int{}
	inIDs := map[uint64]int{}
	for _, e := range tj.TraceEvents {
		switch {
		case e.Ph == "X" && e.Cat == trace.CatSteal && e.Name == "grant":
			grants++
			if e.PID != 1 { // pid = rank+1; all tasks start on rank 0
				t.Errorf("grant span on pid %v, want the victim's track 1", e.PID)
			}
		case e.Ph == "X" && e.Cat == trace.CatSteal && e.Name == "stolen":
			stolenSpans++
		case e.Ph == "s" && e.Name == "steal":
			outIDs[e.ID]++
		case e.Ph == "f" && e.Name == "steal":
			inIDs[e.ID]++
		}
	}
	if grants < stolen {
		t.Errorf("%d grant spans for %d stolen tasks", grants, stolen)
	}
	if stolenSpans != stolen {
		t.Errorf("%d stolen spans for %d stolen tasks", stolenSpans, stolen)
	}
	if len(outIDs) == 0 {
		t.Fatal("no steal flow-start events")
	}
	for id, n := range outIDs {
		if inIDs[id] != n {
			t.Errorf("flow id %#x: %d starts, %d finishes", id, n, inIDs[id])
		}
	}
	for id := range inIDs {
		if _, ok := outIDs[id]; !ok {
			t.Errorf("flow id %#x finishes without a start", id)
		}
	}
}
