package mesh

import (
	"fmt"
	"io"
	"sort"
)

// Partition splits the mesh into n submeshes of balanced triangle counts
// by recursive coordinate bisection of triangle centroids (cutting the
// longer axis first, like the mesher's own decomposition). Vertices shared
// between parts are duplicated into each part, which is what a
// distributed-memory flow solver expects of partitioned input.
func (m *Mesh) Partition(n int) []*Mesh {
	if n < 1 {
		n = 1
	}
	idx := make([]int32, len(m.Triangles))
	for i := range idx {
		idx[i] = int32(i)
	}
	cx := make([]float64, len(m.Triangles))
	cy := make([]float64, len(m.Triangles))
	for i, t := range m.Triangles {
		a, b, c := m.Points[t[0]], m.Points[t[1]], m.Points[t[2]]
		cx[i] = (a.X + b.X + c.X) / 3
		cy[i] = (a.Y + b.Y + c.Y) / 3
	}
	parts := make([][]int32, 0, n)
	var rec func(ids []int32, k int)
	rec = func(ids []int32, k int) {
		if k == 1 || len(ids) <= 1 {
			parts = append(parts, ids)
			return
		}
		// Cut the longer centroid extent.
		minX, maxX := cx[ids[0]], cx[ids[0]]
		minY, maxY := cy[ids[0]], cy[ids[0]]
		for _, id := range ids {
			if cx[id] < minX {
				minX = cx[id]
			}
			if cx[id] > maxX {
				maxX = cx[id]
			}
			if cy[id] < minY {
				minY = cy[id]
			}
			if cy[id] > maxY {
				maxY = cy[id]
			}
		}
		byX := maxX-minX >= maxY-minY
		sort.Slice(ids, func(a, b int) bool {
			if byX {
				return cx[ids[a]] < cx[ids[b]]
			}
			return cy[ids[a]] < cy[ids[b]]
		})
		// Split proportionally to the child part counts.
		kl := k / 2
		kr := k - kl
		mid := len(ids) * kl / k
		rec(ids[:mid], kl)
		rec(ids[mid:], kr)
	}
	rec(idx, n)

	out := make([]*Mesh, len(parts))
	for pi, ids := range parts {
		remap := map[int32]int32{}
		sub := &Mesh{}
		for _, id := range ids {
			t := m.Triangles[id]
			var nt [3]int32
			for k := 0; k < 3; k++ {
				v := t[k]
				nv, ok := remap[v]
				if !ok {
					nv = int32(len(sub.Points))
					sub.Points = append(sub.Points, m.Points[v])
					remap[v] = nv
				}
				nt[k] = nv
			}
			sub.Triangles = append(sub.Triangles, nt)
		}
		out[pi] = sub
	}
	return out
}

// WriteDistributed writes the mesh as one binary submesh per writer — the
// output mode the paper recommends for flow solvers that accept
// distributed meshes ("if a flow solver can handle a distributed mesh or
// read from a binary file, the writing time will be less").
func (m *Mesh) WriteDistributed(ws []io.Writer) error {
	parts := m.Partition(len(ws))
	for i, p := range parts {
		if err := p.WriteBinary(ws[i]); err != nil {
			return fmt.Errorf("mesh: writing part %d: %w", i, err)
		}
	}
	return nil
}

// MergeParts reassembles submeshes (for example read back from
// WriteDistributed output) into one deduplicated mesh.
func MergeParts(parts []*Mesh) *Mesh {
	b := NewBuilder()
	for _, p := range parts {
		for _, t := range p.Triangles {
			b.AddTriangle(p.Points[t[0]], p.Points[t[1]], p.Points[t[2]])
		}
	}
	return b.Mesh()
}
