package mesh

import (
	"bytes"
	"io"
	"testing"
)

func TestPartitionBalancedAndComplete(t *testing.T) {
	m := randomMesh(1000)
	for _, n := range []int{1, 2, 3, 7, 16} {
		parts := m.Partition(n)
		if len(parts) != n {
			t.Fatalf("n=%d: got %d parts", n, len(parts))
		}
		total := 0
		min, max := 1<<30, 0
		for _, p := range parts {
			total += p.NumTriangles()
			if p.NumTriangles() < min {
				min = p.NumTriangles()
			}
			if p.NumTriangles() > max {
				max = p.NumTriangles()
			}
		}
		if total != m.NumTriangles() {
			t.Fatalf("n=%d: parts cover %d of %d triangles", n, total, m.NumTriangles())
		}
		if max-min > m.NumTriangles()/n {
			t.Errorf("n=%d: imbalance min %d max %d", n, min, max)
		}
	}
}

func TestPartitionMergeRoundTrip(t *testing.T) {
	m := randomMesh(400)
	parts := m.Partition(8)
	merged := MergeParts(parts)
	if merged.NumTriangles() != m.NumTriangles() {
		t.Fatalf("merged %d triangles, want %d", merged.NumTriangles(), m.NumTriangles())
	}
	if merged.NumPoints() != m.NumPoints() {
		t.Fatalf("merged %d points, want %d (duplicated border vertices must re-deduplicate)",
			merged.NumPoints(), m.NumPoints())
	}
	if got, want := merged.Area(), m.Area(); got < want*(1-1e-12) || got > want*(1+1e-12) {
		t.Errorf("area %v != %v", got, want)
	}
}

func TestWriteDistributedRoundTrip(t *testing.T) {
	m := randomMesh(300)
	bufs := make([]bytes.Buffer, 4)
	ws := make([]io.Writer, 4)
	for i := range bufs {
		ws[i] = &bufs[i]
	}
	if err := m.WriteDistributed(ws); err != nil {
		t.Fatal(err)
	}
	var parts []*Mesh
	for i := range bufs {
		p, err := ReadBinary(&bufs[i])
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	merged := MergeParts(parts)
	if merged.NumTriangles() != m.NumTriangles() {
		t.Fatalf("round trip lost triangles: %d vs %d", merged.NumTriangles(), m.NumTriangles())
	}
}

func TestPartitionSmall(t *testing.T) {
	m := unitSquareMesh()
	parts := m.Partition(5) // more parts than triangles
	total := 0
	for _, p := range parts {
		total += p.NumTriangles()
	}
	if total != 2 {
		t.Fatalf("parts cover %d of 2 triangles", total)
	}
	if got := m.Partition(0); len(got) != 1 {
		t.Error("n<1 must clamp to one part")
	}
}

func BenchmarkWriteDistributedVsASCII(b *testing.B) {
	m := randomMesh(20000)
	b.Run("ascii-single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := m.WriteASCII(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary-distributed-16", func(b *testing.B) {
		ws := make([]io.Writer, 16)
		for i := range ws {
			ws[i] = io.Discard
		}
		for i := 0; i < b.N; i++ {
			if err := m.WriteDistributed(ws); err != nil {
				b.Fatal(err)
			}
		}
	})
}
