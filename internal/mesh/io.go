package mesh

import (
	"bufio"
	"fmt"
	"io"

	"pamg2d/internal/geom"
)

// WriteVTK writes the mesh as a legacy-format ASCII VTK unstructured grid,
// readable by ParaView/VisIt for inspecting boundary layers and subdomain
// structure. When cellData is non-nil it must have one value per triangle
// (e.g. a solver field or the owning rank) and is emitted as CELL_DATA.
func (m *Mesh) WriteVTK(w io.Writer, cellData []float64) error {
	if cellData != nil && len(cellData) != len(m.Triangles) {
		return fmt.Errorf("mesh: cell data has %d values for %d triangles", len(cellData), len(m.Triangles))
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintln(bw, "# vtk DataFile Version 3.0")
	fmt.Fprintln(bw, "pamg2d mesh")
	fmt.Fprintln(bw, "ASCII")
	fmt.Fprintln(bw, "DATASET UNSTRUCTURED_GRID")
	fmt.Fprintf(bw, "POINTS %d double\n", len(m.Points))
	for _, p := range m.Points {
		fmt.Fprintf(bw, "%.17g %.17g 0\n", p.X, p.Y)
	}
	fmt.Fprintf(bw, "CELLS %d %d\n", len(m.Triangles), 4*len(m.Triangles))
	for _, t := range m.Triangles {
		fmt.Fprintf(bw, "3 %d %d %d\n", t[0], t[1], t[2])
	}
	fmt.Fprintf(bw, "CELL_TYPES %d\n", len(m.Triangles))
	for range m.Triangles {
		fmt.Fprintln(bw, "5") // VTK_TRIANGLE
	}
	if cellData != nil {
		fmt.Fprintf(bw, "CELL_DATA %d\n", len(m.Triangles))
		fmt.Fprintln(bw, "SCALARS field double 1")
		fmt.Fprintln(bw, "LOOKUP_TABLE default")
		for _, v := range cellData {
			fmt.Fprintf(bw, "%.17g\n", v)
		}
	}
	return bw.Flush()
}

// ElemRefError reports an element referencing a vertex index outside the
// mesh's point array — the corruption the readers validate against so a
// truncated or hand-edited file surfaces as a typed read error instead of
// an index panic in whatever consumes the mesh next.
type ElemRefError struct {
	Elem      int   // element (triangle) index
	Vertex    int32 // the out-of-range vertex reference
	NumPoints int   // size of the point array it must index
}

func (e *ElemRefError) Error() string {
	return fmt.Sprintf("mesh: element %d references node %d of %d", e.Elem, e.Vertex, e.NumPoints)
}

// validateTriangles bounds-checks every vertex reference of every triangle.
func validateTriangles(m *Mesh) error {
	np := int32(len(m.Points))
	for i, t := range m.Triangles {
		for _, v := range t {
			if v < 0 || v >= np {
				return &ElemRefError{Elem: i, Vertex: v, NumPoints: int(np)}
			}
		}
	}
	return nil
}

// ReadASCII reads a mesh written by WriteASCII (Triangle's .node/.ele
// sections concatenated).
func ReadASCII(r io.Reader) (*Mesh, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var np, dim, nattr, nmark int
	if _, err := fmt.Fscan(br, &np, &dim, &nattr, &nmark); err != nil {
		return nil, fmt.Errorf("mesh: reading node header: %w", err)
	}
	if dim != 2 {
		return nil, fmt.Errorf("mesh: dimension %d not supported", dim)
	}
	m := &Mesh{Points: make([]geom.Point, np)}
	for i := 0; i < np; i++ {
		var idx int
		var x, y float64
		if _, err := fmt.Fscan(br, &idx, &x, &y); err != nil {
			return nil, fmt.Errorf("mesh: reading node %d: %w", i, err)
		}
		if idx < 0 || idx >= np {
			return nil, fmt.Errorf("mesh: node index %d out of range", idx)
		}
		m.Points[idx] = geom.Pt(x, y)
	}
	var nt, perTri, nattr2 int
	if _, err := fmt.Fscan(br, &nt, &perTri, &nattr2); err != nil {
		return nil, fmt.Errorf("mesh: reading element header: %w", err)
	}
	if perTri != 3 {
		return nil, fmt.Errorf("mesh: %d corners per element not supported", perTri)
	}
	m.Triangles = make([][3]int32, nt)
	for i := 0; i < nt; i++ {
		var idx int
		var a, b, c int32
		if _, err := fmt.Fscan(br, &idx, &a, &b, &c); err != nil {
			return nil, fmt.Errorf("mesh: reading element %d: %w", i, err)
		}
		if idx < 0 || idx >= nt {
			return nil, fmt.Errorf("mesh: element index %d out of range", idx)
		}
		for _, v := range []int32{a, b, c} {
			if v < 0 || int(v) >= np {
				return nil, &ElemRefError{Elem: idx, Vertex: v, NumPoints: np}
			}
		}
		m.Triangles[idx] = [3]int32{a, b, c}
	}
	return m, nil
}
