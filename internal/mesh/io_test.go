package mesh

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

func TestASCIIRoundTrip(t *testing.T) {
	m := randomMesh(300)
	var buf bytes.Buffer
	if err := m.WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadASCII(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPoints() != m.NumPoints() || got.NumTriangles() != m.NumTriangles() {
		t.Fatalf("sizes: %d/%d vs %d/%d", got.NumPoints(), got.NumTriangles(), m.NumPoints(), m.NumTriangles())
	}
	for i := range m.Points {
		if got.Points[i] != m.Points[i] {
			t.Fatalf("point %d: %v != %v (coordinates must round-trip exactly via %%.17g)", i, got.Points[i], m.Points[i])
		}
	}
	for i := range m.Triangles {
		if got.Triangles[i] != m.Triangles[i] {
			t.Fatalf("triangle %d differs", i)
		}
	}
}

func TestReadASCIIErrors(t *testing.T) {
	cases := []struct {
		name, data string
	}{
		{"empty", ""},
		{"bad dimension", "1 3 0 0\n0 1 2 3\n"},
		{"node index out of range", "1 2 0 0\n5 1 2\n"},
		{"truncated nodes", "2 2 0 0\n0 1 2\n"},
		{"bad element corner count", "1 2 0 0\n0 1 2\n1 4 0\n0 0 0 0 0\n"},
		{"element references missing node", "1 2 0 0\n0 1 2\n1 3 0\n0 0 1 2\n"},
	}
	for _, c := range cases {
		if _, err := ReadASCII(strings.NewReader(c.data)); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

// TestReadASCIIElemRefTyped: an element referencing a missing node must
// surface as the typed *ElemRefError with element and vertex attribution.
func TestReadASCIIElemRefTyped(t *testing.T) {
	_, err := ReadASCII(strings.NewReader("1 2 0 0\n0 1 2\n1 3 0\n0 0 1 2\n"))
	var re *ElemRefError
	if !errors.As(err, &re) {
		t.Fatalf("error is %T (%v), want *ElemRefError", err, err)
	}
	if re.Elem != 0 || re.Vertex != 1 || re.NumPoints != 1 {
		t.Errorf("ElemRefError = %+v, want element 0 vertex 1 of 1 points", re)
	}
}

// TestReadBinaryValidation: the binary reader must reject out-of-range
// element references (typed error, no panic downstream) and absurd header
// counts instead of attempting the allocation.
func TestReadBinaryValidation(t *testing.T) {
	m := unitSquareMesh()
	var buf bytes.Buffer
	if err := m.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Corrupt one vertex index of element 1 to point past the point array.
	// Layout: 12-byte header, 2*np float64 coords, then int32 indices.
	bad := append([]byte(nil), good...)
	idxOff := 12 + 16*m.NumPoints() + 4*(3*1+2)
	binary.LittleEndian.PutUint32(bad[idxOff:], uint32(int32(m.NumPoints()+9)))
	_, err := ReadBinary(bytes.NewReader(bad))
	var re *ElemRefError
	if !errors.As(err, &re) {
		t.Fatalf("corrupted index error is %T (%v), want *ElemRefError", err, err)
	}
	if re.Elem != 1 || re.Vertex != int32(m.NumPoints()+9) {
		t.Errorf("ElemRefError = %+v, want element 1 vertex %d", re, m.NumPoints()+9)
	}

	// Corrupt the point count in the header beyond the format limit.
	bad = append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(bad[4:], 1<<31)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil || errors.As(err, &re) {
		t.Errorf("absurd header count: err = %v, want a header error", err)
	}

	// The untouched stream still reads back.
	got, err := ReadBinary(bytes.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTriangles() != m.NumTriangles() {
		t.Errorf("round trip lost triangles: %d vs %d", got.NumTriangles(), m.NumTriangles())
	}
}

func TestWriteVTK(t *testing.T) {
	m := unitSquareMesh()
	var buf bytes.Buffer
	if err := m.WriteVTK(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"POINTS 4 double", "CELLS 2 8", "CELL_TYPES 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("VTK output missing %q", want)
		}
	}
	if strings.Contains(out, "CELL_DATA") {
		t.Error("no cell data requested, none must be written")
	}
	// With cell data.
	buf.Reset()
	if err := m.WriteVTK(&buf, []float64{1.5, 2.5}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CELL_DATA 2") {
		t.Error("cell data section missing")
	}
	// Mismatched cell data length.
	if err := m.WriteVTK(&buf, []float64{1}); err == nil {
		t.Error("mismatched cell data must fail")
	}
}
