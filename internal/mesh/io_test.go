package mesh

import (
	"bytes"
	"strings"
	"testing"
)

func TestASCIIRoundTrip(t *testing.T) {
	m := randomMesh(300)
	var buf bytes.Buffer
	if err := m.WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadASCII(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPoints() != m.NumPoints() || got.NumTriangles() != m.NumTriangles() {
		t.Fatalf("sizes: %d/%d vs %d/%d", got.NumPoints(), got.NumTriangles(), m.NumPoints(), m.NumTriangles())
	}
	for i := range m.Points {
		if got.Points[i] != m.Points[i] {
			t.Fatalf("point %d: %v != %v (coordinates must round-trip exactly via %%.17g)", i, got.Points[i], m.Points[i])
		}
	}
	for i := range m.Triangles {
		if got.Triangles[i] != m.Triangles[i] {
			t.Fatalf("triangle %d differs", i)
		}
	}
}

func TestReadASCIIErrors(t *testing.T) {
	cases := []struct {
		name, data string
	}{
		{"empty", ""},
		{"bad dimension", "1 3 0 0\n0 1 2 3\n"},
		{"node index out of range", "1 2 0 0\n5 1 2\n"},
		{"truncated nodes", "2 2 0 0\n0 1 2\n"},
		{"bad element corner count", "1 2 0 0\n0 1 2\n1 4 0\n0 0 0 0 0\n"},
		{"element references missing node", "1 2 0 0\n0 1 2\n1 3 0\n0 0 1 2\n"},
	}
	for _, c := range cases {
		if _, err := ReadASCII(strings.NewReader(c.data)); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestWriteVTK(t *testing.T) {
	m := unitSquareMesh()
	var buf bytes.Buffer
	if err := m.WriteVTK(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"POINTS 4 double", "CELLS 2 8", "CELL_TYPES 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("VTK output missing %q", want)
		}
	}
	if strings.Contains(out, "CELL_DATA") {
		t.Error("no cell data requested, none must be written")
	}
	// With cell data.
	buf.Reset()
	if err := m.WriteVTK(&buf, []float64{1.5, 2.5}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CELL_DATA 2") {
		t.Error("cell data section missing")
	}
	// Mismatched cell data length.
	if err := m.WriteVTK(&buf, []float64{1}); err == nil {
		t.Error("mismatched cell data must fail")
	}
}
