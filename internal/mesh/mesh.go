// Package mesh holds the final unstructured triangle mesh: merging of
// independently generated submeshes with coordinate-based vertex
// deduplication, structural audits (orientation, conformity), element
// quality statistics, and writers in Triangle's ASCII .node/.ele format
// and a compact binary format. The paper measures a 9-minute ASCII write
// for its 172.8M-triangle mesh and notes binary output is faster; the
// writer benchmarks reproduce that comparison at reduced scale.
package mesh

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"pamg2d/internal/geom"
)

// Mesh is an indexed triangle mesh. Triangles are counter-clockwise.
type Mesh struct {
	Points    []geom.Point
	Triangles [][3]int32
}

// NumTriangles returns the element count.
func (m *Mesh) NumTriangles() int { return len(m.Triangles) }

// NumPoints returns the vertex count.
func (m *Mesh) NumPoints() int { return len(m.Points) }

// Builder accumulates submeshes, deduplicating vertices by exact
// coordinates (shared subdomain borders reproduce coordinates exactly, so
// exact comparison is the correct merge rule).
type Builder struct {
	mesh  Mesh
	index map[geom.Point]int32
	// seen suppresses exact duplicate triangles (a triangle kept by two
	// region owners would corrupt conformity).
	seen map[[3]int32]bool
}

// NewBuilder returns an empty mesh builder.
func NewBuilder() *Builder {
	return &Builder{index: make(map[geom.Point]int32), seen: make(map[[3]int32]bool)}
}

// AddPoint interns a vertex and returns its index.
func (b *Builder) AddPoint(p geom.Point) int32 {
	if i, ok := b.index[p]; ok {
		return i
	}
	i := int32(len(b.mesh.Points))
	b.mesh.Points = append(b.mesh.Points, p)
	b.index[p] = i
	return i
}

// AddTriangle interns the three corners and appends the triangle unless an
// identical one was already added. Degenerate (repeated-vertex) triangles
// are dropped.
func (b *Builder) AddTriangle(p0, p1, p2 geom.Point) {
	i0 := b.AddPoint(p0)
	i1 := b.AddPoint(p1)
	i2 := b.AddPoint(p2)
	if i0 == i1 || i1 == i2 || i0 == i2 {
		return
	}
	key := canonicalTri(i0, i1, i2)
	if b.seen[key] {
		return
	}
	b.seen[key] = true
	b.mesh.Triangles = append(b.mesh.Triangles, [3]int32{i0, i1, i2})
}

func canonicalTri(a, b, c int32) [3]int32 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return [3]int32{a, b, c}
}

// Mesh returns the accumulated mesh.
func (b *Builder) Mesh() *Mesh { return &b.mesh }

// Audit checks structural soundness: every triangle CCW and
// non-degenerate, every edge shared by at most two triangles with
// opposite orientations (conformity: no T-junctions among the indexed
// vertices, no overlapping elements).
func (m *Mesh) Audit() error {
	type edge struct{ a, b int32 }
	dir := make(map[edge]int, 3*len(m.Triangles))
	for i, t := range m.Triangles {
		a, b, c := m.Points[t[0]], m.Points[t[1]], m.Points[t[2]]
		if geom.Orient2DSign(a, b, c) <= 0 {
			return fmt.Errorf("mesh: triangle %d not CCW", i)
		}
		for e := 0; e < 3; e++ {
			u, v := t[e], t[(e+1)%3]
			dir[edge{u, v}]++
			if dir[edge{u, v}] > 1 {
				return fmt.Errorf("mesh: directed edge (%d,%d) used twice; overlapping triangles", u, v)
			}
		}
	}
	for e := range dir {
		// The reverse edge may appear at most once; its absence means a
		// boundary edge, which is fine.
		if dir[edge{e.b, e.a}] > 1 {
			return fmt.Errorf("mesh: edge (%d,%d) shared by more than two triangles", e.a, e.b)
		}
	}
	return nil
}

// BoundaryEdges returns the directed edges that belong to exactly one
// triangle, i.e. the mesh boundary, in arbitrary order.
func (m *Mesh) BoundaryEdges() [][2]int32 {
	type edge struct{ a, b int32 }
	present := make(map[edge]bool, 3*len(m.Triangles))
	for _, t := range m.Triangles {
		for e := 0; e < 3; e++ {
			present[edge{t[e], t[(e+1)%3]}] = true
		}
	}
	var out [][2]int32
	for e := range present {
		if !present[edge{e.b, e.a}] {
			out = append(out, [2]int32{e.a, e.b})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Area returns the total mesh area.
func (m *Mesh) Area() float64 {
	var sum float64
	for _, t := range m.Triangles {
		sum += math.Abs(geom.TriangleArea(m.Points[t[0]], m.Points[t[1]], m.Points[t[2]]))
	}
	return sum
}

// QualityStats summarizes element quality.
type QualityStats struct {
	MinAngleDeg    float64
	MaxAngleDeg    float64
	MaxAspectRatio float64
	MaxRadiusEdge  float64
	MeanArea       float64
	MinArea        float64
	MaxArea        float64
	AngleHistogram [18]int // 10-degree buckets of minimum angles
	TriangleCount  int
}

// Quality computes the mesh quality statistics.
func (m *Mesh) Quality() QualityStats {
	st := QualityStats{MinAngleDeg: 180, MinArea: math.Inf(1)}
	var areaSum float64
	for _, t := range m.Triangles {
		a, b, c := m.Points[t[0]], m.Points[t[1]], m.Points[t[2]]
		minA := geom.MinAngle(a, b, c) * 180 / math.Pi
		if minA < st.MinAngleDeg {
			st.MinAngleDeg = minA
		}
		maxA := maxAngleDeg(a, b, c)
		if maxA > st.MaxAngleDeg {
			st.MaxAngleDeg = maxA
		}
		if ar := geom.AspectRatio(a, b, c); ar > st.MaxAspectRatio {
			st.MaxAspectRatio = ar
		}
		if re := geom.CircumradiusToShortestEdge(a, b, c); re > st.MaxRadiusEdge {
			st.MaxRadiusEdge = re
		}
		area := math.Abs(geom.TriangleArea(a, b, c))
		areaSum += area
		if area < st.MinArea {
			st.MinArea = area
		}
		if area > st.MaxArea {
			st.MaxArea = area
		}
		bucket := int(minA / 10)
		if bucket > 17 {
			bucket = 17
		}
		st.AngleHistogram[bucket]++
	}
	st.TriangleCount = len(m.Triangles)
	if st.TriangleCount > 0 {
		st.MeanArea = areaSum / float64(st.TriangleCount)
	}
	return st
}

func maxAngleDeg(a, b, c geom.Point) float64 {
	ang := func(p, q, r geom.Point) float64 { return q.Sub(p).AngleBetween(r.Sub(p)) }
	m := ang(a, b, c)
	if x := ang(b, c, a); x > m {
		m = x
	}
	if x := ang(c, a, b); x > m {
		m = x
	}
	return m * 180 / math.Pi
}

// WriteASCII writes the mesh in Triangle's .node/.ele text format
// concatenated into one stream: a node section followed by an element
// section. This is the slow, portable output path the paper measured at 9
// minutes for 172.8M triangles.
func (m *Mesh) WriteASCII(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "%d 2 0 0\n", len(m.Points))
	for i, p := range m.Points {
		fmt.Fprintf(bw, "%d %.17g %.17g\n", i, p.X, p.Y)
	}
	fmt.Fprintf(bw, "%d 3 0\n", len(m.Triangles))
	for i, t := range m.Triangles {
		fmt.Fprintf(bw, "%d %d %d %d\n", i, t[0], t[1], t[2])
	}
	return bw.Flush()
}

// binaryMagic identifies the binary mesh format.
const binaryMagic = uint32(0x504d3244) // "PM2D"

// WriteBinary writes the mesh in a compact little-endian binary format:
// magic, counts, raw coordinate and index arrays. The fast output path for
// flow solvers that accept binary input.
func (m *Mesh) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := []uint32{binaryMagic, uint32(len(m.Points)), uint32(len(m.Triangles))}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	coords := make([]float64, 0, 2*len(m.Points))
	for _, p := range m.Points {
		coords = append(coords, p.X, p.Y)
	}
	if err := binary.Write(bw, binary.LittleEndian, coords); err != nil {
		return err
	}
	idx := make([]int32, 0, 3*len(m.Triangles))
	for _, t := range m.Triangles {
		idx = append(idx, t[0], t[1], t[2])
	}
	if err := binary.Write(bw, binary.LittleEndian, idx); err != nil {
		return err
	}
	return bw.Flush()
}

// maxBinaryCount caps the header point/triangle counts ReadBinary accepts.
// A corrupted header would otherwise drive multi-gigabyte allocations
// before the short read is even noticed; int32 element indexing bounds the
// real range anyway.
const maxBinaryCount = 1 << 30

// ReadBinary reads a mesh written by WriteBinary, validating the header
// counts and every element's vertex references (an out-of-range reference
// returns an *ElemRefError) so a corrupted file fails the read instead of
// panicking a consumer.
func ReadBinary(r io.Reader) (*Mesh, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [3]uint32
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("mesh: bad magic %#x", hdr[0])
	}
	if hdr[1] > maxBinaryCount || hdr[2] > maxBinaryCount {
		return nil, fmt.Errorf("mesh: header counts %d points / %d triangles exceed the format limit", hdr[1], hdr[2])
	}
	np, nt := int(hdr[1]), int(hdr[2])
	coords := make([]float64, 2*np)
	if err := binary.Read(br, binary.LittleEndian, coords); err != nil {
		return nil, err
	}
	idx := make([]int32, 3*nt)
	if err := binary.Read(br, binary.LittleEndian, idx); err != nil {
		return nil, err
	}
	m := &Mesh{Points: make([]geom.Point, np), Triangles: make([][3]int32, nt)}
	for i := 0; i < np; i++ {
		m.Points[i] = geom.Pt(coords[2*i], coords[2*i+1])
	}
	for i := 0; i < nt; i++ {
		m.Triangles[i] = [3]int32{idx[3*i], idx[3*i+1], idx[3*i+2]}
	}
	if err := validateTriangles(m); err != nil {
		return nil, err
	}
	return m, nil
}

// Adjacency returns, for each triangle, the indices of the neighbors
// across its three edges (edge e runs from vertex e to e+1 mod 3), with -1
// for boundary edges. Solvers and post-processors share this instead of
// rebuilding the edge map themselves.
func (m *Mesh) Adjacency() [][3]int32 {
	type ekey struct{ a, b int32 }
	owner := make(map[ekey]int32, 3*len(m.Triangles))
	for i, t := range m.Triangles {
		for e := 0; e < 3; e++ {
			owner[ekey{t[e], t[(e+1)%3]}] = int32(i)
		}
	}
	adj := make([][3]int32, len(m.Triangles))
	for i, t := range m.Triangles {
		for e := 0; e < 3; e++ {
			if nb, ok := owner[ekey{t[(e+1)%3], t[e]}]; ok {
				adj[i][e] = nb
			} else {
				adj[i][e] = -1
			}
		}
	}
	return adj
}
