package mesh

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pamg2d/internal/geom"
)

func unitSquareMesh() *Mesh {
	b := NewBuilder()
	b.AddTriangle(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1))
	b.AddTriangle(geom.Pt(0, 0), geom.Pt(1, 1), geom.Pt(0, 1))
	return b.Mesh()
}

func TestBuilderDedup(t *testing.T) {
	m := unitSquareMesh()
	if m.NumPoints() != 4 {
		t.Errorf("points = %d, want 4 (shared corners deduplicated)", m.NumPoints())
	}
	if m.NumTriangles() != 2 {
		t.Errorf("triangles = %d", m.NumTriangles())
	}
}

func TestBuilderDropsDuplicatesAndDegenerate(t *testing.T) {
	b := NewBuilder()
	b.AddTriangle(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1))
	b.AddTriangle(geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 0)) // same triangle rotated
	b.AddTriangle(geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(1, 1)) // degenerate
	if got := b.Mesh().NumTriangles(); got != 1 {
		t.Errorf("triangles = %d, want 1", got)
	}
}

func TestAuditOK(t *testing.T) {
	if err := unitSquareMesh().Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestAuditCatchesCW(t *testing.T) {
	m := &Mesh{
		Points:    []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)},
		Triangles: [][3]int32{{0, 2, 1}},
	}
	if err := m.Audit(); err == nil {
		t.Error("CW triangle must fail the audit")
	}
}

func TestAuditCatchesOverlap(t *testing.T) {
	m := &Mesh{
		Points: []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1), geom.Pt(1, 1)},
		Triangles: [][3]int32{
			{0, 1, 2},
			{0, 1, 3}, // shares directed edge (0,1): overlapping
		},
	}
	if err := m.Audit(); err == nil {
		t.Error("overlapping triangles must fail the audit")
	}
}

func TestBoundaryEdges(t *testing.T) {
	m := unitSquareMesh()
	be := m.BoundaryEdges()
	if len(be) != 4 {
		t.Fatalf("boundary edges = %d, want 4", len(be))
	}
}

func TestAreaAndQuality(t *testing.T) {
	m := unitSquareMesh()
	if got := m.Area(); math.Abs(got-1) > 1e-12 {
		t.Errorf("area = %v, want 1", got)
	}
	q := m.Quality()
	if q.TriangleCount != 2 {
		t.Error("count")
	}
	// Right isoceles triangles: min angle 45, max 90.
	if math.Abs(q.MinAngleDeg-45) > 1e-9 || math.Abs(q.MaxAngleDeg-90) > 1e-9 {
		t.Errorf("angles: min %v max %v", q.MinAngleDeg, q.MaxAngleDeg)
	}
	if q.AngleHistogram[4] != 2 {
		t.Errorf("histogram: %v", q.AngleHistogram)
	}
	if math.Abs(q.MeanArea-0.5) > 1e-12 || q.MinArea != q.MaxArea {
		t.Errorf("areas: mean %v min %v max %v", q.MeanArea, q.MinArea, q.MaxArea)
	}
}

func randomMesh(n int) *Mesh {
	rng := rand.New(rand.NewSource(3))
	b := NewBuilder()
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		b.AddTriangle(geom.Pt(x, y), geom.Pt(x+1, y), geom.Pt(x, y+1))
	}
	return b.Mesh()
}

func TestBinaryRoundTrip(t *testing.T) {
	m := randomMesh(500)
	var buf bytes.Buffer
	if err := m.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPoints() != m.NumPoints() || got.NumTriangles() != m.NumTriangles() {
		t.Fatalf("round trip size mismatch")
	}
	for i := range m.Points {
		if got.Points[i] != m.Points[i] {
			t.Fatalf("point %d: %v != %v", i, got.Points[i], m.Points[i])
		}
	}
	for i := range m.Triangles {
		if got.Triangles[i] != m.Triangles[i] {
			t.Fatalf("triangle %d differs", i)
		}
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Error("bad magic must fail")
	}
}

func TestWriteASCIIFormat(t *testing.T) {
	m := unitSquareMesh()
	var buf bytes.Buffer
	if err := m.WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if len(out) == 0 || out[0] != '4' {
		t.Errorf("ASCII output must start with the node count: %q", out[:20])
	}
}

func TestBinarySmallerThanASCII(t *testing.T) {
	m := randomMesh(2000)
	var a, b bytes.Buffer
	if err := m.WriteASCII(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteBinary(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() >= a.Len() {
		t.Errorf("binary (%d bytes) not smaller than ASCII (%d bytes)", b.Len(), a.Len())
	}
}

func BenchmarkWriteASCII(b *testing.B) {
	m := randomMesh(20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.WriteASCII(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteBinary(b *testing.B) {
	m := randomMesh(20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.WriteBinary(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: the builder is idempotent — re-adding a mesh's own triangles
// changes nothing.
func TestBuilderIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		for i := 0; i < 50; i++ {
			x, y := rng.Float64()*10, rng.Float64()*10
			b.AddTriangle(geom.Pt(x, y), geom.Pt(x+1, y), geom.Pt(x, y+1))
		}
		m1 := b.Mesh()
		np, nt := m1.NumPoints(), m1.NumTriangles()
		for _, tr := range append([][3]int32{}, m1.Triangles...) {
			b.AddTriangle(m1.Points[tr[0]], m1.Points[tr[1]], m1.Points[tr[2]])
		}
		return m1.NumPoints() == np && m1.NumTriangles() == nt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAdjacency(t *testing.T) {
	m := unitSquareMesh()
	adj := m.Adjacency()
	if len(adj) != 2 {
		t.Fatalf("adjacency size %d", len(adj))
	}
	// Each triangle has exactly one interior neighbor (the shared
	// diagonal) and two boundary edges.
	for i, a := range adj {
		interior := 0
		for _, nb := range a {
			if nb >= 0 {
				interior++
				if nb == int32(i) {
					t.Fatal("self adjacency")
				}
			}
		}
		if interior != 1 {
			t.Errorf("triangle %d has %d interior edges, want 1", i, interior)
		}
	}
}
