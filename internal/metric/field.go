package metric

import (
	"fmt"
	"math"

	"pamg2d/internal/geom"
	"pamg2d/internal/mesh"
	"pamg2d/internal/solver"
)

// Field is a per-vertex metric field over a mesh, indexed like
// mesh.Mesh.Points.
type Field []M

// Analytic samples an analytic metric function at every mesh vertex.
func Analytic(m *mesh.Mesh, f func(geom.Point) M) Field {
	out := make(Field, len(m.Points))
	for i, p := range m.Points {
		out[i] = f(p)
	}
	return out
}

// Uniform returns the constant isotropic field with spacing h.
func Uniform(m *mesh.Mesh, h float64) Field {
	out := make(Field, len(m.Points))
	iso := Iso(h)
	for i := range out {
		out[i] = iso
	}
	return out
}

// HessianOpts tunes Hessian-based metric construction.
type HessianOpts struct {
	// Err is the target interpolation error: eigenvalues are |H|/Err, so
	// halving Err doubles the resolution everywhere. Default 0.01 of the
	// solution range.
	Err float64
	// HMin, HMax clamp the principal spacings; defaults 1e-4 and 0.25 of
	// the mesh bounding-box diameter.
	HMin, HMax float64
	// MaxAspect clamps the anisotropy ratio; default 100.
	MaxAspect float64
}

func (o *HessianOpts) defaults(m *mesh.Mesh, u []float64) {
	bb := geom.BBoxOf(m.Points)
	diam := math.Hypot(bb.Width(), bb.Height())
	if diam == 0 {
		diam = 1
	}
	if o.Err <= 0 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range u {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		span := hi - lo
		if span <= 0 || math.IsInf(span, 0) {
			span = 1
		}
		o.Err = 0.01 * span
	}
	if o.HMin <= 0 {
		o.HMin = 1e-4 * diam
	}
	if o.HMax <= 0 {
		o.HMax = 0.25 * diam
	}
	if o.MaxAspect <= 1 {
		o.MaxAspect = 100
	}
}

// FromHessian builds the classical interpolation-error metric
// M = |H(u)|/err from a cell-centered solution field: the Hessian is
// recovered by applying the Green-Gauss gradient operator twice
// (gradient of each gradient component), the per-cell tensors are
// symmetrized and area-weight averaged to the vertices, and each vertex
// tensor is made definite (absolute eigenvalues) and clamped per opt.
func FromHessian(m *mesh.Mesh, u []float64, opt HessianOpts) (Field, error) {
	opt.defaults(m, u)
	g, err := solver.Gradients(m, u)
	if err != nil {
		return nil, fmt.Errorf("metric: hessian recovery: %w", err)
	}
	nc := len(m.Triangles)
	gx := make([]float64, nc)
	gy := make([]float64, nc)
	for i, v := range g {
		gx[i], gy[i] = v.X, v.Y
	}
	ggx, err := solver.Gradients(m, gx)
	if err != nil {
		return nil, fmt.Errorf("metric: hessian recovery: %w", err)
	}
	ggy, err := solver.Gradients(m, gy)
	if err != nil {
		return nil, fmt.Errorf("metric: hessian recovery: %w", err)
	}

	// Area-weighted average of the symmetrized cell Hessians at each
	// vertex.
	hxx := make([]float64, len(m.Points))
	hxy := make([]float64, len(m.Points))
	hyy := make([]float64, len(m.Points))
	wsum := make([]float64, len(m.Points))
	for i, t := range m.Triangles {
		a, b, c := m.Points[t[0]], m.Points[t[1]], m.Points[t[2]]
		w := math.Abs(geom.TriangleArea(a, b, c))
		cxx := ggx[i].X
		cxy := (ggx[i].Y + ggy[i].X) / 2
		cyy := ggy[i].Y
		for _, v := range t {
			hxx[v] += w * cxx
			hxy[v] += w * cxy
			hyy[v] += w * cyy
			wsum[v] += w
		}
	}

	out := make(Field, len(m.Points))
	for v := range out {
		h := M{XX: hxx[v], XY: hxy[v], YY: hyy[v]}
		if wsum[v] > 0 {
			h = h.scale(1 / wsum[v])
		}
		// |H|/err, with absolute eigenvalues so saddle features refine
		// like extrema do.
		am := h.mapEigen(func(l float64) float64 { return math.Abs(l) / opt.Err })
		out[v] = am.Clamp(opt.HMin, opt.HMax, opt.MaxAspect)
	}
	return out, nil
}

// LimitGradation bounds how fast the field's prescribed spacing may grow
// along mesh edges (Alauzet's edge-wise scheme): for each edge pq, p's
// metric is "grown" across the edge — spacings multiplied by
// (1 + l_M(pq)·ln β) — and intersected into q's metric, and vice versa.
// Sweeps repeat until a fixpoint (no tensor tightened by more than a
// relative epsilon) or maxSweeps. β must exceed 1; the number of sweeps
// performed is returned.
func LimitGradation(m *mesh.Mesh, f Field, beta float64, maxSweeps int) (int, error) {
	if len(f) != len(m.Points) {
		return 0, fmt.Errorf("metric: %d tensors for %d vertices", len(f), len(m.Points))
	}
	if beta <= 1 {
		return 0, fmt.Errorf("metric: gradation beta %g must exceed 1", beta)
	}
	if maxSweeps <= 0 {
		maxSweeps = 8
	}
	lnb := math.Log(beta)
	edges := meshEdges(m)
	for s := 0; s < maxSweeps; s++ {
		changed := false
		for _, e := range edges {
			p, q := e[0], e[1]
			if spanIntersect(m, f, p, q, lnb) {
				changed = true
			}
			if spanIntersect(m, f, q, p, lnb) {
				changed = true
			}
		}
		if !changed {
			return s + 1, nil
		}
	}
	return maxSweeps, nil
}

// spanIntersect grows f[p] across the edge p→q and intersects it into
// f[q], reporting whether q's tensor tightened.
func spanIntersect(m *mesh.Mesh, f Field, p, q int32, lnb float64) bool {
	v := m.Points[q].Sub(m.Points[p])
	l := f[p].Len(v)
	grow := 1 + l*lnb
	// Growing spacings by `grow` divides eigenvalues by grow².
	spanned := f[p].scale(1 / (grow * grow))
	merged := Intersect(f[q], spanned)
	const eps = 1e-9
	if math.Abs(merged.XX-f[q].XX) <= eps*math.Abs(f[q].XX) &&
		math.Abs(merged.XY-f[q].XY) <= eps*(math.Abs(f[q].XY)+eps) &&
		math.Abs(merged.YY-f[q].YY) <= eps*math.Abs(f[q].YY) {
		return false
	}
	f[q] = merged
	return true
}

// meshEdges returns each undirected mesh edge once.
func meshEdges(m *mesh.Mesh) [][2]int32 {
	adj := m.Adjacency()
	var out [][2]int32
	for i, t := range m.Triangles {
		for e := 0; e < 3; e++ {
			if nb := adj[i][e]; nb >= 0 && nb < int32(i) {
				continue
			}
			out = append(out, [2]int32{t[e], t[(e+1)%3]})
		}
	}
	return out
}

// Stats summarizes a mesh's edge population in metric space.
type Stats struct {
	Edges   int
	MinLen  float64
	MaxLen  float64
	MeanLen float64
	// InBand is the fraction of edges with metric length in
	// [1/band, band].
	InBand float64
	// Aspect histogram: bucket i counts vertices with anisotropy ratio in
	// [2^i, 2^(i+1)); the last bucket is open-ended.
	AspectHist           [8]int
	MinAspect, MaxAspect float64
	MeanAspect           float64
}

// FieldStats measures the mesh's edges and the field's anisotropy under
// the per-vertex field f. band defaults to √2.
func FieldStats(m *mesh.Mesh, f Field, band float64) (Stats, error) {
	if len(f) != len(m.Points) {
		return Stats{}, fmt.Errorf("metric: %d tensors for %d vertices", len(f), len(m.Points))
	}
	if band <= 1 {
		band = math.Sqrt2
	}
	st := Stats{MinLen: math.Inf(1), MaxLen: math.Inf(-1), MinAspect: math.Inf(1), MaxAspect: math.Inf(-1)}
	in := 0
	for _, e := range meshEdges(m) {
		p, q := e[0], e[1]
		l := EdgeLen(m.Points[p], m.Points[q], f[p], f[q])
		st.Edges++
		st.MeanLen += l
		st.MinLen = math.Min(st.MinLen, l)
		st.MaxLen = math.Max(st.MaxLen, l)
		if l >= 1/band && l <= band {
			in++
		}
	}
	if st.Edges > 0 {
		st.MeanLen /= float64(st.Edges)
		st.InBand = float64(in) / float64(st.Edges)
	} else {
		st.MinLen, st.MaxLen = 0, 0
	}
	for _, t := range f {
		a := t.Aspect()
		st.MeanAspect += a
		st.MinAspect = math.Min(st.MinAspect, a)
		st.MaxAspect = math.Max(st.MaxAspect, a)
		b := 0
		for a >= 2 && b < len(st.AspectHist)-1 {
			a /= 2
			b++
		}
		st.AspectHist[b]++
	}
	if len(f) > 0 {
		st.MeanAspect /= float64(len(f))
	} else {
		st.MinAspect, st.MaxAspect = 0, 0
	}
	return st, nil
}
