package metric

import (
	"math"
	"testing"

	"pamg2d/internal/geom"
	"pamg2d/internal/mesh"
)

// grid builds an n×n structured triangulation of the unit square.
func grid(t testing.TB, n int) *mesh.Mesh {
	t.Helper()
	b := mesh.NewBuilder()
	h := 1.0 / float64(n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			x0, y0 := float64(i)*h, float64(j)*h
			x1, y1 := x0+h, y0+h
			b.AddTriangle(geom.Pt(x0, y0), geom.Pt(x1, y0), geom.Pt(x1, y1))
			b.AddTriangle(geom.Pt(x0, y0), geom.Pt(x1, y1), geom.Pt(x0, y1))
		}
	}
	m := b.Mesh()
	if err := m.Audit(); err != nil {
		t.Fatalf("grid mesh: %v", err)
	}
	return m
}

func cellCentered(m *mesh.Mesh, f func(geom.Point) float64) []float64 {
	u := make([]float64, len(m.Triangles))
	for i, tr := range m.Triangles {
		a, b, c := m.Points[tr[0]], m.Points[tr[1]], m.Points[tr[2]]
		u[i] = f(geom.Pt((a.X+b.X+c.X)/3, (a.Y+b.Y+c.Y)/3))
	}
	return u
}

func TestFromHessianQuadratic(t *testing.T) {
	m := grid(t, 16)
	// u = 4x²: H = diag(8, 0); the metric must resolve x much harder
	// than y at interior vertices.
	u := cellCentered(m, func(p geom.Point) float64 { return 4 * p.X * p.X })
	f, err := FromHessian(m, u, HessianOpts{Err: 0.1, HMin: 1e-4, HMax: 10, MaxAspect: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != len(m.Points) {
		t.Fatalf("%d tensors for %d points", len(f), len(m.Points))
	}
	checked := 0
	for i, p := range m.Points {
		if p.X < 0.3 || p.X > 0.7 || p.Y < 0.3 || p.Y > 0.7 {
			continue // boundary-affected recovery
		}
		checked++
		l1, _, v1 := f[i].Eigen()
		if !f[i].SPD() {
			t.Fatalf("vertex %d: tensor %+v not SPD", i, f[i])
		}
		// Dominant eigenvalue ≈ 8/0.1 = 80, direction ≈ x.
		if l1 < 40 || l1 > 160 {
			t.Errorf("vertex %d %v: l1 = %g, want ≈80", i, p, l1)
		}
		if math.Abs(v1.X) < 0.9 {
			t.Errorf("vertex %d %v: principal direction %v, want ≈x-axis", i, p, v1)
		}
	}
	if checked == 0 {
		t.Fatal("no interior vertices checked")
	}
}

func TestFromHessianMismatch(t *testing.T) {
	m := grid(t, 4)
	if _, err := FromHessian(m, make([]float64, 3), HessianOpts{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestLimitGradation(t *testing.T) {
	m := grid(t, 8)
	// Uniform coarse field with one extremely fine vertex.
	f := Uniform(m, 0.5)
	f[0] = Iso(0.001)
	beta := 1.5
	sweeps, err := LimitGradation(m, f, beta, 20)
	if err != nil {
		t.Fatal(err)
	}
	if sweeps < 1 {
		t.Fatalf("sweeps = %d", sweeps)
	}
	// Every edge must respect the growth bound in each direction:
	// h_q(v) <= (1 + l_p(v)·ln β)·h_p(v), where l_p(v) is the edge
	// length under the source vertex's metric and h ratios along v are
	// inverse length ratios.
	lnb := math.Log(beta)
	for _, e := range meshEdges(m) {
		p, q := e[0], e[1]
		v := m.Points[q].Sub(m.Points[p])
		lp, lq := f[p].Len(v), f[q].Len(v)
		if lp/lq > (1+lp*lnb)*1.05 {
			t.Fatalf("edge %v–%v: growth %g exceeds bound %g", p, q, lp/lq, 1+lp*lnb)
		}
		if lq/lp > (1+lq*lnb)*1.05 {
			t.Fatalf("edge %v–%v: growth %g exceeds bound %g", q, p, lq/lp, 1+lq*lnb)
		}
	}
	// Gradation only tightens: no tensor may prescribe a larger spacing
	// than the original coarse field.
	for i, tens := range f {
		l1, l2, _ := tens.Eigen()
		if l2 < Iso(0.5).XX-1e-9 {
			t.Fatalf("vertex %d: eigenvalue %g below original %g (l1 %g)", i, l2, Iso(0.5).XX, l1)
		}
	}
	if _, err := LimitGradation(m, f, 0.9, 4); err == nil {
		t.Fatal("beta < 1 accepted")
	}
}

func TestFieldStats(t *testing.T) {
	m := grid(t, 4)
	// Uniform spacing equal to the grid pitch: horizontal and vertical
	// edges have metric length exactly 1, diagonals √2 — everything in
	// band.
	f := Uniform(m, 0.25)
	st, err := FieldStats(m, f, math.Sqrt2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Edges == 0 {
		t.Fatal("no edges measured")
	}
	if st.InBand < 0.999 {
		t.Fatalf("InBand = %g, want 1 (min %g max %g)", st.InBand, st.MinLen, st.MaxLen)
	}
	if st.MinLen < 0.999 || st.MaxLen > math.Sqrt2+1e-9 {
		t.Fatalf("length range [%g, %g] unexpected", st.MinLen, st.MaxLen)
	}
	if st.AspectHist[0] != len(m.Points) {
		t.Fatalf("isotropic field: AspectHist = %v, want all %d in bucket 0", st.AspectHist, len(m.Points))
	}
	if _, err := FieldStats(m, f[:1], 0); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
