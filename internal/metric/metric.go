// Package metric implements 2×2 symmetric positive-definite Riemannian
// metric tensors and per-vertex metric fields over a mesh — the sizing
// language of anisotropic adaptation. A metric M prescribes, at a point,
// the desired edge length in every direction: an edge vector v has unit
// metric length when sqrt(vᵀMv) = 1, so the eigenvalues of M are 1/h²
// for the two principal spacings h and the eigenvectors are the
// stretching directions. The adaptation engine in internal/adapt drives
// every mesh edge's metric length into the band [1/√2, √2].
//
// All tensor combination here is log-Euclidean (Arsigny et al.):
// interpolation and intersection happen on the matrix logarithm, which
// keeps results SPD and makes intersection symmetric in its arguments.
package metric

import (
	"math"

	"pamg2d/internal/geom"
)

// M is a 2×2 symmetric positive-definite tensor, stored by its unique
// entries. The zero value is not a valid metric; build one with Iso,
// FromEigen, or FromHessian.
type M struct {
	XX, XY, YY float64
}

// Iso returns the isotropic metric prescribing spacing h in every
// direction.
func Iso(h float64) M {
	l := 1 / (h * h)
	return M{XX: l, YY: l}
}

// FromEigen builds the metric with eigenvalue l1 along unit direction
// dir and eigenvalue l2 along its perpendicular. Eigenvalues are 1/h²:
// a larger eigenvalue means a smaller spacing in that direction.
func FromEigen(l1, l2 float64, dir geom.Vec) M {
	c, s := dir.X, dir.Y
	return M{
		XX: l1*c*c + l2*s*s,
		XY: (l1 - l2) * c * s,
		YY: l1*s*s + l2*c*c,
	}
}

// FromSpacings builds the metric prescribing spacing h1 along unit
// direction dir and h2 across it.
func FromSpacings(h1, h2 float64, dir geom.Vec) M {
	return FromEigen(1/(h1*h1), 1/(h2*h2), dir)
}

// Eigen returns the eigenvalues l1 >= l2 and the unit eigenvector of l1.
// The l2 eigenvector is its perpendicular.
func (m M) Eigen() (l1, l2 float64, v1 geom.Vec) {
	half := (m.XX + m.YY) / 2
	disc := math.Hypot((m.XX-m.YY)/2, m.XY)
	l1, l2 = half+disc, half-disc
	if disc == 0 {
		return l1, l2, geom.V(1, 0)
	}
	// The larger-norm candidate column of (M - l2 I) is numerically the
	// stabler eigenvector for l1.
	a := geom.V(m.XX-l2, m.XY)
	b := geom.V(m.XY, m.YY-l2)
	if a.Len2() >= b.Len2() {
		return l1, l2, a.Unit()
	}
	return l1, l2, b.Unit()
}

// Len returns the metric length of the vector v: sqrt(vᵀMv).
func (m M) Len(v geom.Vec) float64 {
	q := m.XX*v.X*v.X + 2*m.XY*v.X*v.Y + m.YY*v.Y*v.Y
	if q <= 0 {
		return 0
	}
	return math.Sqrt(q)
}

// Det returns the determinant.
func (m M) Det() float64 { return m.XX*m.YY - m.XY*m.XY }

// SPD reports whether the tensor is (strictly) symmetric positive
// definite.
func (m M) SPD() bool {
	return m.XX > 0 && m.Det() > 0
}

// Aspect returns the anisotropy ratio h_max/h_min = sqrt(l1/l2) >= 1.
func (m M) Aspect() float64 {
	l1, l2, _ := m.Eigen()
	if l2 <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(l1 / l2)
}

// mapEigen applies f to both eigenvalues, preserving the eigenbasis.
func (m M) mapEigen(f func(float64) float64) M {
	l1, l2, v1 := m.Eigen()
	return FromEigen(f(l1), f(l2), v1)
}

// Log returns the matrix logarithm (a symmetric, not necessarily
// definite, tensor in the same storage). Eigenvalues must be positive.
func (m M) Log() M { return m.mapEigen(math.Log) }

// Exp returns the matrix exponential, the inverse of Log.
func (m M) Exp() M { return m.mapEigen(math.Exp) }

// Clamp bounds the spacings the metric prescribes: principal spacings
// are clamped to [hmin, hmax] and the anisotropy ratio to maxAspect
// (the wider spacing is shrunk toward the narrow one, preserving the
// resolved direction). Non-positive bounds are ignored.
func (m M) Clamp(hmin, hmax, maxAspect float64) M {
	l1, l2, v1 := m.Eigen()
	lmax, lmin := math.Inf(1), 0.0
	if hmin > 0 {
		lmax = 1 / (hmin * hmin)
	}
	if hmax > 0 {
		lmin = 1 / (hmax * hmax)
	}
	cl := func(l float64) float64 { return math.Min(math.Max(l, lmin), lmax) }
	l1, l2 = cl(l1), cl(l2) // keeps l1 >= l2
	if maxAspect > 1 && l2 > 0 && math.Sqrt(l1/l2) > maxAspect {
		l2 = l1 / (maxAspect * maxAspect)
	}
	return FromEigen(l1, l2, v1)
}

// add returns the entrywise sum (valid on log-space tensors).
func (m M) add(o M) M { return M{m.XX + o.XX, m.XY + o.XY, m.YY + o.YY} }

// scale returns the entrywise scaling (valid on log-space tensors).
func (m M) scale(s float64) M { return M{m.XX * s, m.XY * s, m.YY * s} }

// posPart zeroes the negative eigenvalues of a symmetric (possibly
// indefinite) tensor.
func (m M) posPart() M {
	return m.mapEigen(func(l float64) float64 { return math.Max(l, 0) })
}

// Interp returns the log-Euclidean geodesic interpolation
// exp((1-t)·log a + t·log b); t=0 gives a, t=1 gives b.
func Interp(a, b M, t float64) M {
	return a.Log().scale(1 - t).add(b.Log().scale(t)).Exp()
}

// Intersect returns the log-Euclidean supremum of two metrics: the
// smallest log-space tensor dominating both, exp(log a ⊔ log b). The
// result prescribes, in every direction, a spacing no larger than
// either argument's, and the operation is symmetric and idempotent.
func Intersect(a, b M) M {
	la, lb := a.Log(), b.Log()
	diff := M{lb.XX - la.XX, lb.XY - la.XY, lb.YY - la.YY}
	return la.add(diff.posPart()).Exp()
}

// EdgeLen returns the metric length of the edge p→q under the linearly
// varying metric with endpoint values mp and mq, using the standard
// geometric-mean quadrature (la - lb)/ln(la/lb) that is exact for a
// geometrically interpolated spacing along the edge.
func EdgeLen(p, q geom.Point, mp, mq M) float64 {
	v := q.Sub(p)
	la, lb := mp.Len(v), mq.Len(v)
	if la <= 0 || lb <= 0 {
		return math.Max(la, lb)
	}
	r := la / lb
	if r > 0.999 && r < 1.001 {
		return (la + lb) / 2
	}
	return (la - lb) / math.Log(r)
}

// TriQuality returns the metric-space shape quality of the triangle
// (a,b,c) in (0,1]: 4√3·area_M / Σ l_i², which is 1 for an equilateral
// triangle in the metric and tends to 0 as the element degenerates.
// The metric over the element is the log-Euclidean mean of the three
// vertex tensors.
func TriQuality(a, b, c geom.Point, ma, mb, mc M) float64 {
	mean := ma.Log().add(mb.Log()).add(mc.Log()).scale(1.0 / 3).Exp()
	area := geom.TriangleArea(a, b, c)
	if area <= 0 {
		return 0
	}
	areaM := math.Sqrt(mean.Det()) * area
	la := EdgeLen(a, b, ma, mb)
	lb := EdgeLen(b, c, mb, mc)
	lc := EdgeLen(c, a, mc, ma)
	den := la*la + lb*lb + lc*lc
	if den <= 0 {
		return 0
	}
	return 4 * math.Sqrt(3) * areaM / den
}
