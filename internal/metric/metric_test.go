package metric

import (
	"math"
	"testing"

	"pamg2d/internal/geom"
)

func near(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %g, want %g (±%g)", what, got, want, tol)
	}
}

func TestIsoLength(t *testing.T) {
	m := Iso(0.25)
	// An edge of Euclidean length 0.25 has metric length 1.
	near(t, m.Len(geom.V(0.25, 0)), 1, 1e-12, "Len")
	near(t, m.Len(geom.V(0, 0.5)), 2, 1e-12, "Len")
	l1, l2, _ := m.Eigen()
	near(t, l1, 16, 1e-9, "l1")
	near(t, l2, 16, 1e-9, "l2")
}

func TestFromEigenRoundTrip(t *testing.T) {
	dir := geom.V(3, 4).Unit()
	m := FromEigen(100, 4, dir)
	l1, l2, v1 := m.Eigen()
	near(t, l1, 100, 1e-9, "l1")
	near(t, l2, 4, 1e-9, "l2")
	if c := math.Abs(v1.Dot(dir)); math.Abs(c-1) > 1e-9 {
		t.Fatalf("eigenvector %v not parallel to %v (|cos| = %g)", v1, dir, c)
	}
	// Unit spacing along dir is 1/sqrt(100) = 0.1.
	near(t, m.Len(dir.Scale(0.1)), 1, 1e-9, "Len along dir")
	near(t, m.Aspect(), 5, 1e-9, "Aspect")
}

func TestLogExpInverse(t *testing.T) {
	m := FromEigen(50, 2, geom.V(1, 2).Unit())
	r := m.Log().Exp()
	near(t, r.XX, m.XX, 1e-9, "XX")
	near(t, r.XY, m.XY, 1e-9, "XY")
	near(t, r.YY, m.YY, 1e-9, "YY")
}

func TestClamp(t *testing.T) {
	m := FromEigen(1e8, 1e-2, geom.V(1, 0)) // h: 1e-4 .. 10
	c := m.Clamp(1e-2, 1, 20)
	l1, l2, _ := c.Eigen()
	// Spacings clamped to [1e-2, 1] then aspect to 20: l1 = 1e4,
	// l2 raised from 1 to 1e4/400 = 25.
	near(t, l1, 1e4, 1e-6, "l1")
	near(t, l2, 25, 1e-6, "l2")
	if a := c.Aspect(); a > 20+1e-9 {
		t.Fatalf("aspect %g exceeds clamp 20", a)
	}
}

func TestIntersectDominatesBoth(t *testing.T) {
	a := FromEigen(100, 1, geom.V(1, 0))
	b := FromEigen(1, 100, geom.V(1, 0))
	i := Intersect(a, b)
	// Symmetric.
	j := Intersect(b, a)
	near(t, j.XX, i.XX, 1e-9, "sym XX")
	near(t, j.XY, i.XY, 1e-9, "sym XY")
	near(t, j.YY, i.YY, 1e-9, "sym YY")
	// Idempotent.
	k := Intersect(a, a)
	near(t, k.XX, a.XX, 1e-9, "idem XX")
	// Dominates both arguments in every direction.
	for deg := 0; deg < 180; deg += 7 {
		v := geom.V(1, 0).Rotate(float64(deg) * math.Pi / 180)
		if i.Len(v) < a.Len(v)-1e-9 || i.Len(v) < b.Len(v)-1e-9 {
			t.Fatalf("direction %d°: intersection length %g below max(%g, %g)",
				deg, i.Len(v), a.Len(v), b.Len(v))
		}
	}
}

func TestInterpEndpointsAndMonotone(t *testing.T) {
	a := Iso(0.1)
	b := Iso(0.4)
	near(t, Interp(a, b, 0).XX, a.XX, 1e-9, "t=0")
	near(t, Interp(a, b, 1).XX, b.XX, 1e-9, "t=1")
	// Geometric midpoint of spacings: h = sqrt(0.1*0.4) = 0.2.
	mid := Interp(a, b, 0.5)
	near(t, 1/math.Sqrt(mid.XX), 0.2, 1e-9, "midpoint spacing")
}

func TestEdgeLenQuadrature(t *testing.T) {
	p, q := geom.Pt(0, 0), geom.Pt(1, 0)
	// Equal endpoint metrics: plain length ratio.
	near(t, EdgeLen(p, q, Iso(0.5), Iso(0.5)), 2, 1e-9, "uniform")
	// Geometric quadrature between h=1 (len 1) and h=0.25 (len 4):
	// (1-4)/ln(1/4).
	want := 3 / math.Log(4)
	near(t, EdgeLen(p, q, Iso(1), Iso(0.25)), want, 1e-9, "graded")
	// Symmetric in the endpoints.
	near(t, EdgeLen(q, p, Iso(0.25), Iso(1)), want, 1e-9, "reversed")
}

func TestTriQualityEquilateral(t *testing.T) {
	h := 0.3
	a := geom.Pt(0, 0)
	b := geom.Pt(h, 0)
	c := geom.Pt(h/2, h*math.Sqrt(3)/2)
	m := Iso(h)
	q := TriQuality(a, b, c, m, m, m)
	near(t, q, 1, 1e-9, "equilateral quality")
	// A stretched metric makes the same element poor.
	s := FromSpacings(h/10, h, geom.V(1, 0))
	if qs := TriQuality(a, b, c, s, s, s); qs > 0.5 {
		t.Fatalf("stretched-metric quality %g, want < 0.5", qs)
	}
}

func TestParseSpec(t *testing.T) {
	f, err := ParseSpec("uniform:h=0.2")
	if err != nil {
		t.Fatal(err)
	}
	near(t, f(geom.Pt(3, 4)).Len(geom.V(0.2, 0)), 1, 1e-9, "uniform")

	f, err = ParseSpec("bl:x0=0,y0=0,x1=1,y1=0,hn=0.01,ht=0.1,grow=1")
	if err != nil {
		t.Fatal(err)
	}
	// On the wall: normal spacing hn, tangential ht.
	m := f(geom.Pt(0.5, 0))
	near(t, m.Len(geom.V(0, 0.01)), 1, 1e-9, "wall normal")
	near(t, m.Len(geom.V(0.1, 0)), 1, 1e-9, "wall tangent")
	// At distance 0.02: normal spacing 0.03.
	m = f(geom.Pt(0.5, 0.02))
	near(t, m.Len(geom.V(0, 0.03)), 1, 1e-9, "grown normal")
	// Far away: isotropic ht.
	m = f(geom.Pt(0.5, 5))
	near(t, m.Len(geom.V(0.1, 0)), 1, 1e-9, "farfield")
	near(t, m.Aspect(), 1, 1e-9, "farfield isotropy")

	for _, bad := range []string{"nope:h=1", "uniform:h=-1", "bl:hn=1,ht=0.1", "uniform:h"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}
