package metric

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"pamg2d/internal/geom"
)

// ParseSpec parses an analytic metric specification of the form
// "kind:key=val,key=val,...". Two kinds are supported:
//
//	uniform:h=0.1
//	    isotropic spacing h everywhere.
//
//	bl:x0=0,y0=0,x1=1,y1=0,hn=0.01,ht=0.1,grow=1
//	    boundary-layer stretch off the segment (x0,y0)–(x1,y1): the
//	    normal spacing starts at hn on the segment and grows linearly
//	    with distance d at rate grow until it reaches the tangential
//	    spacing ht, i.e. h_normal(d) = min(hn + grow·d, ht); beyond
//	    that the field is isotropic at ht. The stretch direction follows
//	    the vector from the nearest segment point, so the field is
//	    smooth around the segment's endpoints.
//
// The returned function is safe for concurrent use.
func ParseSpec(spec string) (func(geom.Point) M, error) {
	kind, rest, _ := strings.Cut(spec, ":")
	kv := map[string]float64{}
	if rest != "" {
		for _, part := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
			if !ok {
				return nil, fmt.Errorf("metric: spec %q: want key=val, got %q", spec, part)
			}
			x, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return nil, fmt.Errorf("metric: spec %q: %s: %w", spec, k, err)
			}
			kv[strings.TrimSpace(k)] = x
		}
	}
	get := func(key string, def float64) float64 {
		if v, ok := kv[key]; ok {
			return v
		}
		return def
	}
	switch kind {
	case "uniform":
		h := get("h", 0.1)
		if h <= 0 {
			return nil, fmt.Errorf("metric: spec %q: h must be positive", spec)
		}
		iso := Iso(h)
		return func(geom.Point) M { return iso }, nil
	case "bl":
		a := geom.Pt(get("x0", 0), get("y0", 0))
		b := geom.Pt(get("x1", 1), get("y1", 0))
		hn := get("hn", 0.01)
		ht := get("ht", 0.1)
		grow := get("grow", 1)
		if hn <= 0 || ht <= 0 || grow <= 0 {
			return nil, fmt.Errorf("metric: spec %q: hn, ht, grow must be positive", spec)
		}
		if hn > ht {
			return nil, fmt.Errorf("metric: spec %q: hn %g exceeds ht %g", spec, hn, ht)
		}
		seg := b.Sub(a)
		len2 := seg.Len2()
		return func(p geom.Point) M {
			// Nearest point on the segment.
			t := 0.0
			if len2 > 0 {
				t = math.Min(1, math.Max(0, p.Sub(a).Dot(seg)/len2))
			}
			near := a.Add(seg.Scale(t))
			off := p.Sub(near)
			d := off.Len()
			if d == 0 {
				dir := geom.V(0, 1)
				if len2 > 0 {
					dir = seg.Perp().Unit()
				}
				return FromSpacings(hn, ht, dir)
			}
			h := hn + grow*d
			if h >= ht {
				return Iso(ht)
			}
			return FromSpacings(h, ht, off.Unit())
		}, nil
	default:
		return nil, fmt.Errorf("metric: unknown spec kind %q (want uniform: or bl:)", kind)
	}
}
