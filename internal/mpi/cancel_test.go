package mpi

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestSendInvalidRank(t *testing.T) {
	world := NewWorld(2)
	err := world.Run(func(c *Comm) {
		if c.Rank() != 0 {
			return
		}
		if err := c.Send(5, 1, []byte("x")); !errors.Is(err, ErrInvalidRank) {
			t.Errorf("send to rank 5 of 2: err = %v, want ErrInvalidRank", err)
		}
		if err := c.Send(-1, 1, []byte("x")); !errors.Is(err, ErrInvalidRank) {
			t.Errorf("send to rank -1: err = %v, want ErrInvalidRank", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvUnblocksOnPeerError(t *testing.T) {
	// Rank 0 blocks in Recv forever; rank 1 fails. RunCtx must close the
	// world, unblock rank 0 with ErrWorldClosed, and return rank 1's error.
	boom := errors.New("boom")
	world := NewWorld(2)
	var recvErr error
	err := world.RunCtx(context.Background(), func(c *Comm) error {
		if c.Rank() == 1 {
			return boom
		}
		_, _, _, recvErr = c.Recv(context.Background(), 1, 7)
		return nil
	})
	if !errors.Is(recvErr, ErrWorldClosed) {
		t.Errorf("blocked Recv returned %v, want ErrWorldClosed", recvErr)
	}
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 1 {
		t.Fatalf("RunCtx returned %v, want *RankError for rank 1", err)
	}
	if !errors.Is(err, boom) {
		t.Errorf("RunCtx error does not wrap the root cause: %v", err)
	}
}

func TestRecvUnblocksOnPeerPanic(t *testing.T) {
	world := NewWorld(2)
	err := world.RunCtx(context.Background(), func(c *Comm) error {
		if c.Rank() == 1 {
			panic("worker exploded")
		}
		if _, _, _, err := c.Recv(context.Background(), 1, 7); !errors.Is(err, ErrWorldClosed) {
			t.Errorf("blocked Recv returned %v, want ErrWorldClosed", err)
		}
		return nil
	})
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 1 {
		t.Fatalf("RunCtx returned %v, want *RankError for rank 1", err)
	}
}

func TestRecvHonorsContext(t *testing.T) {
	// A per-receive context deadline unblocks only that receive; the world
	// stays open.
	world := NewWorld(1)
	err := world.Run(func(c *Comm) {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		defer cancel()
		if _, _, _, err := c.Recv(ctx, AnySource, 1); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("Recv returned %v, want DeadlineExceeded", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if world.Err() != nil {
		t.Errorf("world closed by a per-receive timeout: %v", world.Err())
	}
}

func TestBarrierReleasedOnClose(t *testing.T) {
	// One rank waits at the barrier while the other fails; the barrier must
	// release with an error instead of deadlocking.
	world := NewWorld(2)
	err := world.RunCtx(context.Background(), func(c *Comm) error {
		if c.Rank() == 1 {
			time.Sleep(5 * time.Millisecond)
			return errors.New("rank 1 failed before the barrier")
		}
		if err := c.Barrier(); !errors.Is(err, ErrWorldClosed) {
			t.Errorf("Barrier returned %v, want ErrWorldClosed", err)
		}
		return nil
	})
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 1 {
		t.Fatalf("RunCtx returned %v, want *RankError for rank 1", err)
	}
}

func TestRunCtxCanceledContext(t *testing.T) {
	// Canceling the run context unblocks every rank and reports the
	// context's cause, not a RankError.
	world := NewWorld(4)
	ctx, cancel := context.WithCancel(context.Background())
	var unblocked atomic.Int32
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := world.RunCtx(ctx, func(c *Comm) error {
		_, _, _, rerr := c.Recv(context.Background(), AnySource, 1)
		if errors.Is(rerr, ErrWorldClosed) {
			unblocked.Add(1)
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx returned %v, want context.Canceled", err)
	}
	if got := unblocked.Load(); got != 4 {
		t.Errorf("%d of 4 ranks unblocked with ErrWorldClosed", got)
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	world := NewWorld(2)
	world.Close(nil)
	err := world.RunCtx(context.Background(), func(c *Comm) error { return nil })
	if !errors.Is(err, ErrWorldClosed) {
		t.Fatalf("RunCtx on a closed world returned %v", err)
	}
	c := &Comm{world: world, rank: 0}
	if err := c.Send(1, 1, []byte("x")); !errors.Is(err, ErrWorldClosed) {
		t.Errorf("Send on a closed world returned %v, want ErrWorldClosed", err)
	}
}

// TestNoGoroutineLeakOnCancel polls the goroutine count back to its
// pre-run level after a canceled run, proving every rank goroutine exited.
func TestNoGoroutineLeakOnCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		world := NewWorld(4)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		world.RunCtx(ctx, func(c *Comm) error {
			_, _, _, err := c.Recv(context.Background(), AnySource, 1)
			return err
		})
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after canceled runs", before, runtime.NumGoroutine())
}

// TestCloseReleasesPooledPayloads is the leak check for cancellation: a
// pooled buffer handed to Send and never received must return to the pool
// when the world closes, keeping pool gets and puts balanced.
func TestCloseReleasesPooledPayloads(t *testing.T) {
	g0, p0 := PoolCounters()
	world := NewWorld(2)
	err := world.Run(func(c *Comm) {
		if c.Rank() != 0 {
			return
		}
		for i := 0; i < 8; i++ {
			buf := EncodeFloatsPooled([]float64{1, 2, 3})
			if err := c.Send(1, 42, buf); err != nil {
				PutBytes(buf)
				t.Errorf("send: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	world.Close(nil) // rank 1 never received; Close must release the queue
	g1, p1 := PoolCounters()
	if gets, puts := g1-g0, p1-p0; gets != puts {
		t.Errorf("pool leak across Close: %d gets, %d puts", gets, puts)
	}
}

// TestReduceReleasesBufferOnSendFailure covers the collective error path:
// a non-root Reduce whose send fails must put its encode buffer back.
func TestReduceReleasesBufferOnSendFailure(t *testing.T) {
	g0, p0 := PoolCounters()
	world := NewWorld(2)
	world.Close(nil)
	c := &Comm{world: world, rank: 1}
	if _, err := c.Reduce(context.Background(), 0, 5, []float64{1, 2}, OpSum); !errors.Is(err, ErrWorldClosed) {
		t.Fatalf("Reduce on a closed world returned %v", err)
	}
	g1, p1 := PoolCounters()
	if gets, puts := g1-g0, p1-p0; gets != puts {
		t.Errorf("pool leak in failed Reduce: %d gets, %d puts", gets, puts)
	}
}
