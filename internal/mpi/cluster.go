package mpi

// Cluster is the transport seam: it groups the processes of a run and
// mints the Worlds that communicate across them. The in-process backend
// (InProcess) hosts every rank in this address space — its worlds are
// identical to NewWorld's, keeping the zero-copy SendRef fast path and
// pooled buffers verbatim. The TCP backend (AcceptTCP / JoinTCP) hosts
// exactly one rank per process and routes traffic for every other rank
// over per-peer connections.
//
// The execution model over a wire transport is SPMD: every process runs
// the same program and calls NewWorld in the same order, so worlds pair
// up across processes by epoch — the sequence number stamped on each
// world. A frame that arrives before its world exists locally is parked
// on the transport and delivered when the matching NewWorld call happens,
// which absorbs the natural skew between processes.

import (
	"sync"
	"sync/atomic"
)

// Cluster groups the processes of a run under one transport and mints
// epoch-numbered Worlds over it.
type Cluster struct {
	n         int
	rank      int
	tcp       *tcpNode
	nextEpoch atomic.Uint64
}

// InProcess returns a cluster hosting all n ranks in this process; its
// worlds behave exactly like NewWorld(n)'s.
func InProcess(n int) *Cluster {
	if n < 1 {
		n = 1
	}
	return &Cluster{n: n}
}

// Size returns the number of ranks in the cluster.
func (cl *Cluster) Size() int { return cl.n }

// Rank returns the rank hosted by this process (0 for in-process
// clusters, which host every rank).
func (cl *Cluster) Rank() int { return cl.rank }

// TransportName identifies the backend ("inproc" or "tcp") for traces
// and logs.
func (cl *Cluster) TransportName() string {
	if cl.tcp != nil {
		return "tcp"
	}
	return "inproc"
}

// isLocal reports whether rank r is hosted in this process.
func (cl *Cluster) isLocal(r int) bool { return cl.tcp == nil || r == cl.rank }

// NewWorld mints the cluster's next communicator. Over a wire transport,
// every process must call NewWorld the same number of times in the same
// order (the SPMD contract); the k-th world in each process is the same
// communicator.
func (cl *Cluster) NewWorld() *World {
	epoch := cl.nextEpoch.Add(1)
	if cl.tcp == nil {
		w := NewWorld(cl.n)
		w.cl = cl
		w.epoch = epoch
		return w
	}
	w := &World{n: cl.n, stats: &Stats{}, cl: cl, epoch: epoch}
	w.boxes = make([]*mailbox, cl.n)
	w.boxes[cl.rank] = newMailbox()
	w.closedCh = make(chan struct{})
	w.cb = newCBarrier(w)
	cl.tcp.register(w)
	return w
}

// Close shuts the transport down. For TCP clusters it closes every peer
// connection, fails any worlds still open, and waits for the reader
// goroutines to drain; for in-process clusters it is a no-op. Close after
// the last world has completed; a Close during a run tears the run down
// everywhere.
func (cl *Cluster) Close() error {
	if cl.tcp != nil {
		cl.tcp.teardown(nil)
		cl.tcp.wg.Wait()
	}
	return nil
}

// cbarrier coordinates Barrier across processes. Rank 0's process is the
// coordinator: every barrier entry (local or a frameBarrierEnter from a
// peer) is tallied there per sequence number, and when all n ranks have
// entered, a frameBarrierRelease fans out. Each process tracks the
// highest released sequence; since every rank passes barriers in order,
// released >= seq means barrier seq completed.
type cbarrier struct {
	w     *World
	mu    sync.Mutex
	cond  *sync.Cond
	seq   uint64         // barriers entered by the local rank
	rel   uint64         // highest released barrier sequence
	tally map[uint64]int // coordinator only: entries per sequence
	done  bool
}

func newCBarrier(w *World) *cbarrier {
	b := &cbarrier{w: w}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *cbarrier) close() {
	b.mu.Lock()
	b.done = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// await enters the next barrier for the local rank and blocks until it is
// released or the world is torn down.
func (b *cbarrier) await() error {
	b.mu.Lock()
	b.seq++
	seq := b.seq
	b.mu.Unlock()
	w := b.w
	if w.cl.rank == 0 {
		b.enter(seq)
	} else if _, err := w.cl.tcp.sendCtrl(0, frame{
		kind: frameBarrierEnter, epoch: w.epoch, seq: seq, rank: int32(w.cl.rank),
	}); err != nil {
		return w.Err()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.rel < seq && !b.done {
		b.cond.Wait()
	}
	if b.rel >= seq {
		return nil
	}
	return w.Err()
}

// enter records one rank's arrival at barrier seq on the coordinator and
// releases the barrier once all n ranks have arrived.
func (b *cbarrier) enter(seq uint64) {
	b.mu.Lock()
	if b.tally == nil {
		b.tally = make(map[uint64]int)
	}
	b.tally[seq]++
	complete := b.tally[seq] == b.w.n
	if complete {
		delete(b.tally, seq)
	}
	b.mu.Unlock()
	if complete {
		b.w.cl.tcp.broadcastCtrl(frame{kind: frameBarrierRelease, epoch: b.w.epoch, seq: seq})
		b.release(seq)
	}
}

// release advances the released watermark and wakes local waiters.
func (b *cbarrier) release(seq uint64) {
	b.mu.Lock()
	if seq > b.rel {
		b.rel = seq
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}
