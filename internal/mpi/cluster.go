package mpi

// Cluster is the transport seam: it groups the processes of a run and
// mints the Worlds that communicate across them. The in-process backend
// (InProcess) hosts every rank in this address space — its worlds are
// identical to NewWorld's, keeping the zero-copy SendRef fast path and
// pooled buffers verbatim. The TCP backend (AcceptTCP / JoinTCP) hosts
// exactly one rank per process and routes traffic for every other rank
// over per-peer connections.
//
// The execution model over a wire transport is SPMD: every process runs
// the same program and calls NewWorld in the same order, so worlds pair
// up across processes by epoch — the sequence number stamped on each
// world. A frame that arrives before its world exists locally is parked
// on the transport and delivered when the matching NewWorld call happens,
// which absorbs the natural skew between processes.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Cluster groups the processes of a run under one transport and mints
// epoch-numbered Worlds over it.
type Cluster struct {
	n         int
	rank      int
	tcp       *tcpNode
	nextEpoch atomic.Uint64
}

// InProcess returns a cluster hosting all n ranks in this process; its
// worlds behave exactly like NewWorld(n)'s.
func InProcess(n int) *Cluster {
	if n < 1 {
		n = 1
	}
	return &Cluster{n: n}
}

// Size returns the number of ranks in the cluster.
func (cl *Cluster) Size() int { return cl.n }

// Rank returns the rank hosted by this process (0 for in-process
// clusters, which host every rank).
func (cl *Cluster) Rank() int { return cl.rank }

// TransportName identifies the backend ("inproc" or "tcp") for traces
// and logs.
func (cl *Cluster) TransportName() string {
	if cl.tcp != nil {
		return "tcp"
	}
	return "inproc"
}

// isLocal reports whether rank r is hosted in this process.
func (cl *Cluster) isLocal(r int) bool { return cl.tcp == nil || r == cl.rank }

// NewWorld mints the cluster's next communicator. Over a wire transport,
// every process must call NewWorld the same number of times in the same
// order (the SPMD contract); the k-th world in each process is the same
// communicator.
func (cl *Cluster) NewWorld() *World {
	epoch := cl.nextEpoch.Add(1)
	if cl.tcp == nil {
		w := NewWorld(cl.n)
		w.cl = cl
		w.epoch = epoch
		return w
	}
	w := &World{n: cl.n, stats: &Stats{}, cl: cl, epoch: epoch}
	w.boxes = make([]*mailbox, cl.n)
	w.boxes[cl.rank] = newMailbox()
	w.closedCh = make(chan struct{})
	w.cb = newCBarrier(w)
	cl.tcp.register(w)
	return w
}

// SetNowFunc installs the monotonic clock the cluster's ping/pong
// exchange reads on this process — typically a tracer's Now, so the
// estimated offsets land directly in trace-timestamp units. Install it
// on every process of a run before measuring; without one the exchange
// falls back to process-uptime nanoseconds. No-op on in-process
// clusters (one address space has one clock).
func (cl *Cluster) SetNowFunc(now func() int64) {
	if cl.tcp == nil || now == nil {
		return
	}
	cl.tcp.nowFn.Store(&now)
}

// ClockSync is one rank's clock alignment as measured from this process:
// adding OffsetNS to a timestamp read from that rank's clock (its
// SetNowFunc) yields the equivalent timestamp on this process's clock.
// RTTNS is the round-trip time of the ping the estimate came from; the
// offset error is bounded by half of it.
type ClockSync struct {
	Rank     int
	OffsetNS int64
	RTTNS    int64
}

// TelemetryItem is one peer's decoded telemetry payload, collected by
// this process's transport until Telemetry drains it.
type TelemetryItem struct {
	Rank    int
	Payload any
}

// PingRank measures rank's clock offset against this process's clock by
// `rounds` ping/pong exchanges, keeping the estimate from the round with
// the smallest round-trip (midpoint alignment: the remote clock is read
// halfway through the round trip, so offset = midpoint − remote). The
// peer's reader goroutine answers pings at any time — during a run,
// between worlds, or while blocked in a barrier. Returns a zero offset
// for this process's own rank and on in-process clusters.
func (cl *Cluster) PingRank(ctx context.Context, rank, rounds int) (ClockSync, error) {
	out := ClockSync{Rank: rank}
	if cl.tcp == nil || rank == cl.rank {
		return out, nil
	}
	if rank < 0 || rank >= cl.n {
		return out, fmt.Errorf("mpi: ping rank %d of %d", rank, cl.n)
	}
	if rounds < 1 {
		rounds = 1
	}
	n := cl.tcp
	best := int64(math.MaxInt64)
	for i := 0; i < rounds; i++ {
		seq := n.pingSeq.Add(1)
		ch := make(chan int64, 1)
		n.pingMu.Lock()
		if n.closed.Load() {
			n.pingMu.Unlock()
			return out, errTransportClosed
		}
		if n.pings == nil {
			n.pings = make(map[uint64]chan int64)
		}
		n.pings[seq] = ch
		n.pingMu.Unlock()
		t0 := n.now()
		if _, err := n.sendCtrl(rank, frame{kind: framePing, seq: seq, rank: int32(cl.rank)}); err != nil {
			n.pingMu.Lock()
			delete(n.pings, seq)
			n.pingMu.Unlock()
			return out, err
		}
		select {
		case remote, ok := <-ch:
			if !ok {
				return out, errTransportClosed
			}
			t1 := n.now()
			rtt := t1 - t0
			if rtt < 0 {
				rtt = 0
			}
			if rtt < best {
				best = rtt
				out.OffsetNS = t0 + rtt/2 - remote
				out.RTTNS = rtt
			}
		case <-ctx.Done():
			n.pingMu.Lock()
			delete(n.pings, seq)
			n.pingMu.Unlock()
			return out, context.Cause(ctx)
		}
	}
	return out, nil
}

// MeasureOffsets pings every live peer rank `rounds` times from this
// process (rank 0 in the launcher topology) and returns the per-rank
// clock alignments, own rank included with a zero offset. Dead ranks are
// omitted — a degraded run still aligns the survivors' clocks. On
// in-process clusters every offset is zero: all ranks share one clock.
func (cl *Cluster) MeasureOffsets(ctx context.Context, rounds int) ([]ClockSync, error) {
	out := make([]ClockSync, 0, cl.n)
	for r := 0; r < cl.n; r++ {
		if !cl.Alive(r) {
			continue
		}
		cs, err := cl.PingRank(ctx, r, rounds)
		if err != nil {
			// A rank that died mid-measurement is a skip, not a failure.
			var de *RankDeadError
			if errors.As(err, &de) {
				continue
			}
			return out, err
		}
		out = append(out, cs)
	}
	return out, nil
}

// SendTelemetry ships a codec-registered payload (typically a
// *trace.Telemetry) to rank 0, where Telemetry collects it. Call it
// before the run's final barrier: frames on one link deliver in FIFO
// order, so a snapshot sent before the barrier entry is guaranteed to be
// collected on rank 0 by the time the barrier releases — no extra
// synchronization needed. No-op on rank 0 itself and on in-process
// clusters (the caller already holds the local snapshot).
func (cl *Cluster) SendTelemetry(ref any) error {
	if cl.tcp == nil || cl.rank == 0 {
		return nil
	}
	e := codecForRef(ref)
	if e == nil {
		return fmt.Errorf("mpi: no wire codec registered for telemetry type %T", ref)
	}
	payload := e.enc(ref, nil)
	_, err := cl.tcp.sendCtrl(0, frame{
		kind: frameTelemetry, rank: int32(cl.rank), codec: e.id, payload: payload,
	})
	return err
}

// Telemetry drains the telemetry snapshots peers have shipped to this
// process, in arrival order. Returns nil on in-process clusters.
func (cl *Cluster) Telemetry() []TelemetryItem {
	if cl.tcp == nil {
		return nil
	}
	n := cl.tcp
	n.telemMu.Lock()
	items := n.telem
	n.telem = nil
	n.telemMu.Unlock()
	return items
}

// Close shuts the transport down. For TCP clusters it closes every peer
// connection, fails any worlds still open, and waits for the reader
// goroutines to drain; for in-process clusters it is a no-op. Close after
// the last world has completed; a Close during a run tears the run down
// everywhere.
func (cl *Cluster) Close() error {
	if cl.tcp != nil {
		cl.tcp.teardown(nil)
		cl.tcp.wg.Wait()
	}
	return nil
}

// cbarrier coordinates Barrier across processes. Rank 0's process is the
// coordinator: every barrier entry (local or a frameBarrierEnter from a
// peer) is tallied there per sequence number, and when all n ranks have
// entered, a frameBarrierRelease fans out. Each process tracks the
// highest released sequence; since every rank passes barriers in order,
// released >= seq means barrier seq completed.
type cbarrier struct {
	w     *World
	mu    sync.Mutex
	cond  *sync.Cond
	seq   uint64         // barriers entered by the local rank
	rel   uint64         // highest released barrier sequence
	tally map[uint64]int // coordinator only: entries per sequence
	done  bool
}

func newCBarrier(w *World) *cbarrier {
	b := &cbarrier{w: w}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *cbarrier) close() {
	b.mu.Lock()
	b.done = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// await enters the next barrier for the local rank and blocks until it is
// released or the world is torn down.
func (b *cbarrier) await() error {
	b.mu.Lock()
	b.seq++
	seq := b.seq
	b.mu.Unlock()
	w := b.w
	if w.cl.rank == 0 {
		b.enter(seq)
	} else if _, err := w.cl.tcp.sendCtrl(0, frame{
		kind: frameBarrierEnter, epoch: w.epoch, seq: seq, rank: int32(w.cl.rank),
	}); err != nil {
		return w.Err()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.rel < seq && !b.done {
		b.cond.Wait()
	}
	if b.rel >= seq {
		return nil
	}
	return w.Err()
}

// enter records one rank's arrival at barrier seq on the coordinator and
// releases the barrier once every live rank has arrived. The tally can
// exceed the live target when a rank entered and then died (hence >=),
// and the seq <= b.seq guard keeps a shrunken target from releasing a
// barrier the coordinator's own rank has not reached yet.
func (b *cbarrier) enter(seq uint64) {
	b.mu.Lock()
	if b.tally == nil {
		b.tally = make(map[uint64]int)
	}
	b.tally[seq]++
	complete := b.tally[seq] >= b.w.liveCount() && seq <= b.seq
	if complete {
		delete(b.tally, seq)
	}
	b.mu.Unlock()
	if complete {
		b.w.cl.tcp.broadcastCtrl(frame{kind: frameBarrierRelease, epoch: b.w.epoch, seq: seq})
		b.release(seq)
	}
}

// rankDied re-evaluates pending tallies on the coordinator after a
// membership loss: a barrier whose every surviving rank has already
// entered releases now instead of waiting forever for the dead rank.
func (b *cbarrier) rankDied() {
	if b.w.cl == nil || b.w.cl.rank != 0 {
		return
	}
	b.mu.Lock()
	target := b.w.liveCount()
	var done []uint64
	for seq, k := range b.tally {
		if k >= target && seq <= b.seq {
			done = append(done, seq)
		}
	}
	for _, seq := range done {
		delete(b.tally, seq)
	}
	b.mu.Unlock()
	for _, seq := range done {
		b.w.cl.tcp.broadcastCtrl(frame{kind: frameBarrierRelease, epoch: b.w.epoch, seq: seq})
		b.release(seq)
	}
}

// release advances the released watermark and wakes local waiters.
func (b *cbarrier) release(seq uint64) {
	b.mu.Lock()
	if seq > b.rel {
		b.rel = seq
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}
