package mpi

// Typed payload codecs for wire transports. The in-process backend moves
// reference payloads (SendRef) without serialization; a wire transport
// must encode them. Packages that ship typed references across ranks
// register a codec per type here: the registry maps a stable wire id to
// an encode/decode pair, and the TCP transport consults it on both sides
// of a connection, so RecvRef returns the same concrete types over either
// backend. Ids must agree in every process of a run, so they are fixed
// constants assigned in blocks: mpi reserves 0–15 for itself, loadbal
// uses 16–31, core 32–47.

import (
	"fmt"
	"reflect"
	"sync"
)

// CodecID identifies a registered reference-payload codec on the wire.
// Id 0 is reserved for plain byte payloads (Send), which need no codec.
type CodecID uint16

// Built-in codecs for the raw slice types SendRef accepts directly.
const (
	codecNone CodecID = 0
	// CodecBytes carries a []byte reference payload.
	CodecBytes CodecID = 1
	// CodecFloats carries a []float64 reference payload.
	CodecFloats CodecID = 2
)

type codecEntry struct {
	id  CodecID
	typ reflect.Type
	enc func(ref any, dst []byte) []byte
	dec func(b []byte) (any, error)
}

var codecReg struct {
	mu     sync.RWMutex
	byID   map[CodecID]*codecEntry
	byType map[reflect.Type]*codecEntry
}

// RegisterCodec registers the wire codec for the reference-payload type of
// prototype (only its dynamic type is inspected). enc appends the encoded
// form of ref to dst and returns the extended slice; dec parses one
// encoded payload back into the typed reference, validating lengths — a
// wire transport feeds it attacker-shaped bytes, so it must error rather
// than panic on malformed input. Registration normally happens in an init
// function so every process of a run agrees on the id space; duplicate
// ids or types panic, naming the collision.
func RegisterCodec(id CodecID, prototype any, enc func(ref any, dst []byte) []byte, dec func(b []byte) (any, error)) {
	if id == codecNone {
		panic("mpi: codec id 0 is reserved for plain byte payloads")
	}
	typ := reflect.TypeOf(prototype)
	codecReg.mu.Lock()
	defer codecReg.mu.Unlock()
	if codecReg.byID == nil {
		codecReg.byID = make(map[CodecID]*codecEntry)
		codecReg.byType = make(map[reflect.Type]*codecEntry)
	}
	if prev, ok := codecReg.byID[id]; ok {
		panic(fmt.Sprintf("mpi: codec id %d already registered for %v", id, prev.typ))
	}
	if prev, ok := codecReg.byType[typ]; ok {
		panic(fmt.Sprintf("mpi: codec for type %v already registered as id %d", typ, prev.id))
	}
	e := &codecEntry{id: id, typ: typ, enc: enc, dec: dec}
	codecReg.byID[id] = e
	codecReg.byType[typ] = e
}

// codecForRef resolves the codec registered for ref's dynamic type, or nil
// when the type has none (such a reference cannot leave the process).
func codecForRef(ref any) *codecEntry {
	typ := reflect.TypeOf(ref)
	codecReg.mu.RLock()
	e := codecReg.byType[typ]
	codecReg.mu.RUnlock()
	return e
}

// decodeRef decodes a wire payload through the codec registered under id.
func decodeRef(id CodecID, payload []byte) (any, error) {
	codecReg.mu.RLock()
	e := codecReg.byID[id]
	codecReg.mu.RUnlock()
	if e == nil {
		return nil, fmt.Errorf("mpi: no codec registered for wire id %d", id)
	}
	return e.dec(payload)
}

func encBytesRef(ref any, dst []byte) []byte {
	return append(dst, ref.([]byte)...)
}

// decBytesRef copies the payload into a pooled buffer: the receiver owns
// it and releases with PutBytes once done (the teardown path does so via
// releasePayload for messages dropped by a closing world).
func decBytesRef(b []byte) (any, error) {
	out := GetBytes(len(b))
	copy(out, b)
	return out, nil
}

func encFloatsRef(ref any, dst []byte) []byte {
	v := ref.([]float64)
	n := len(dst)
	dst = append(dst, make([]byte, 8*len(v))...)
	encodeFloatsInto(dst[n:], v)
	return dst
}

// decFloatsRef unpacks into a pooled slice; the receiver releases it with
// PutFloats, mirroring the in-process ownership rule for float payloads.
func decFloatsRef(b []byte) (any, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("mpi: float payload length %d not a multiple of 8", len(b))
	}
	out := GetFloats(len(b) / 8)
	decodeFloatsInto(out, b)
	return out, nil
}

func init() {
	RegisterCodec(CodecBytes, []byte(nil), encBytesRef, decBytesRef)
	RegisterCodec(CodecFloats, []float64(nil), encFloatsRef, decFloatsRef)
}
