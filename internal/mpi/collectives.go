package mpi

// Additional collectives beyond the paper's minimum (Gather/Bcast), shaped
// like their MPI counterparts: Reduce, Allreduce and Scatter over float64
// vectors. The pipeline's statistics aggregation and the examples use
// them; they also round out the runtime for downstream users porting MPI
// code.

// Op is a reduction operator over float64.
type Op func(a, b float64) float64

// Common reduction operators.
var (
	OpSum Op = func(a, b float64) float64 { return a + b }
	OpMax Op = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin Op = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Reduce combines equal-length vectors element-wise at the root
// (MPI_Reduce). Non-root ranks return nil. Contribution payloads travel
// in pooled buffers: each is read by exactly one receiver (the root), so
// ownership transfers with the message and the root releases the buffer
// after folding it into the accumulator.
func (c *Comm) Reduce(root, tag int, data []float64, op Op) []float64 {
	if c.rank != root {
		c.Send(root, tag, EncodeFloatsPooled(data))
		return nil
	}
	acc := append([]float64{}, data...)
	for i := 0; i < c.world.n-1; i++ {
		d, _, _ := c.Recv(AnySource, tag)
		v := DecodeFloatsPooled(d)
		for k := range acc {
			if k < len(v) {
				acc[k] = op(acc[k], v[k])
			}
		}
		PutFloats(v)
		PutBytes(d)
	}
	return acc
}

// Allreduce is Reduce followed by a broadcast of the result; every rank
// returns the combined vector (MPI_Allreduce).
func (c *Comm) Allreduce(tag int, data []float64, op Op) []float64 {
	res := c.Reduce(0, tag, data, op)
	if c.rank == 0 {
		return DecodeFloats(c.Bcast(0, tag+1, EncodeFloats(res)))
	}
	return DecodeFloats(c.Bcast(0, tag+1, nil))
}

// Scatter distributes one payload per rank from the root (MPI_Scatterv);
// every rank returns its chunk. chunks is only read on the root and must
// have Size() entries.
func (c *Comm) Scatter(root, tag int, chunks [][]byte) []byte {
	if c.rank == root {
		for r := 0; r < c.world.n; r++ {
			if r != root {
				c.Send(r, tag, chunks[r])
			}
		}
		return chunks[root]
	}
	d, _, _ := c.Recv(root, tag)
	return d
}
