package mpi

// Additional collectives beyond the paper's minimum (Gather/Bcast), shaped
// like their MPI counterparts: Reduce, Allreduce and Scatter over float64
// vectors. The pipeline's statistics aggregation and the examples use
// them; they also round out the runtime for downstream users porting MPI
// code. Each takes a context governing its blocking receives and returns
// an error when the wait is cut short (cancellation or world teardown).

import (
	"context"
	"errors"
)

// Op is a reduction operator over float64.
type Op func(a, b float64) float64

// Common reduction operators.
var (
	OpSum Op = func(a, b float64) float64 { return a + b }
	OpMax Op = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin Op = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Reduce combines equal-length vectors element-wise at the root
// (MPI_Reduce). Non-root ranks return nil. Contribution payloads travel
// in pooled buffers: each is read by exactly one receiver (the root), so
// ownership transfers with the message and the root releases the buffer
// after folding it into the accumulator. A send that fails (world torn
// down) never transferred ownership, so the contribution buffer is
// released here rather than leaked.
func (c *Comm) Reduce(ctx context.Context, root, tag int, data []float64, op Op) ([]float64, error) {
	if c.rank != root {
		buf := EncodeFloatsPooled(data)
		if err := c.Send(root, tag, buf); err != nil {
			PutBytes(buf)
			return nil, err
		}
		return nil, nil
	}
	acc := append([]float64{}, data...)
	// One contribution per live non-root rank: ranks dead at world
	// creation are planned around, a death mid-reduce fails the blocking
	// receive with the typed *RankDeadError.
	for i := 0; i < c.world.liveCount()-1; i++ {
		d, _, _, err := c.Recv(ctx, AnySource, tag)
		if err != nil {
			return nil, err
		}
		v := DecodeFloatsPooled(d)
		for k := range acc {
			if k < len(v) {
				acc[k] = op(acc[k], v[k])
			}
		}
		PutFloats(v)
		PutBytes(d)
	}
	return acc, nil
}

// Allreduce is Reduce followed by a broadcast of the result; every rank
// returns the combined vector (MPI_Allreduce).
func (c *Comm) Allreduce(ctx context.Context, tag int, data []float64, op Op) ([]float64, error) {
	res, err := c.Reduce(ctx, 0, tag, data, op)
	if err != nil {
		return nil, err
	}
	var payload []byte
	if c.rank == 0 {
		payload = EncodeFloats(res)
	}
	d, err := c.Bcast(ctx, 0, tag+1, payload)
	if err != nil {
		return nil, err
	}
	v := DecodeFloats(d)
	if c.rank != 0 && c.world.MultiProcess() {
		// Over a wire the received payload is a private pooled buffer;
		// in-process it aliases the root's allocation shared by every rank
		// and must not be recycled.
		PutBytes(d)
	}
	return v, nil
}

// Bcast sends data from the root to every other rank along a binomial
// tree; all ranks return the payload. Non-root waits honor ctx.
//
// The tree keeps the root from serializing n-1 sends on a real wire: in
// virtual rank order (vr = (rank-root) mod n), each rank receives from
// its parent and then forwards to vr+1, vr+2, vr+4, ... — log2(n) rounds
// in which the set of senders doubles. In-process forwards alias the one
// payload (the zero-copy path, matching the old sequential loop's
// semantics exactly); forwards that cross a process boundary ship a
// pooled duplicate, because the transport recycles a sent payload while
// local children may still be reading the original.
func (c *Comm) Bcast(ctx context.Context, root, tag int, data []byte) ([]byte, error) {
	n := c.world.n
	if n == 1 {
		return data, nil
	}
	if c.world.MultiProcess() && c.world.liveCount() < n {
		return c.bcastLive(ctx, root, tag, data)
	}
	vr := c.rank - root
	if vr < 0 {
		vr += n
	}
	if vr != 0 {
		parent := (bcastParent(vr) + root) % n
		d, _, _, err := c.Recv(ctx, parent, tag)
		if err != nil {
			return nil, err
		}
		data = d
	}
	for _, child := range bcastChildren(vr, n, nil) {
		to := (child + root) % n
		payload := data
		if !c.world.rankIsLocal(to) && len(data) > 0 {
			payload = GetBytes(len(data))
			copy(payload, data)
		}
		if err := c.Send(to, tag, payload); err != nil {
			if !sameSlice(payload, data) {
				PutBytes(payload)
			}
			return nil, err
		}
	}
	return data, nil
}

// bcastLive is the degraded-membership broadcast: the binomial tree is
// built over the sorted live rank set (dead ranks hold no tree position,
// so no rank ever waits on or forwards to one). With every rank live it
// is never entered, keeping the full-membership wire behavior — and its
// byte stream — untouched.
func (c *Comm) bcastLive(ctx context.Context, root, tag int, data []byte) ([]byte, error) {
	live := c.world.LiveRanks()
	m := len(live)
	if m <= 1 {
		return data, nil
	}
	idx := func(rank int) int {
		for i, r := range live {
			if r == rank {
				return i
			}
		}
		return -1
	}
	ri := idx(root)
	if ri < 0 {
		return nil, &RankDeadError{Rank: root, Err: c.world.deadCause(root)}
	}
	self := idx(c.rank)
	if self < 0 {
		// Unreachable in practice — a node never declares its own rank
		// dead — but fail loudly rather than mis-route the tree.
		return nil, &RankDeadError{Rank: c.rank, Err: errors.New("local rank marked dead")}
	}
	vr := self - ri
	if vr < 0 {
		vr += m
	}
	if vr != 0 {
		parent := live[(bcastParent(vr)+ri)%m]
		d, _, _, err := c.Recv(ctx, parent, tag)
		if err != nil {
			return nil, err
		}
		data = d
	}
	for _, child := range bcastChildren(vr, m, nil) {
		to := live[(child+ri)%m]
		payload := data
		if !c.world.rankIsLocal(to) && len(data) > 0 {
			payload = GetBytes(len(data))
			copy(payload, data)
		}
		if err := c.Send(to, tag, payload); err != nil {
			if !sameSlice(payload, data) {
				PutBytes(payload)
			}
			return nil, err
		}
	}
	return data, nil
}

// bcastParent returns the virtual rank vr receives from: vr with its
// lowest set bit cleared.
func bcastParent(vr int) int { return vr & (vr - 1) }

// bcastChildren appends to dst the virtual ranks vr forwards to — vr+mask
// for every power-of-two mask below vr's lowest set bit — largest subtree
// first so the longest chain starts earliest.
func bcastChildren(vr, n int, dst []int) []int {
	top := 1
	for top < n {
		top <<= 1
	}
	for mask := top >> 1; mask > 0; mask >>= 1 {
		if vr&(mask-1) != 0 || vr&mask != 0 {
			continue
		}
		if child := vr + mask; child < n {
			dst = append(dst, child)
		}
	}
	return dst
}

func sameSlice(a, b []byte) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// Scatter distributes one payload per rank from the root (MPI_Scatterv);
// every rank returns its chunk. chunks is only read on the root and must
// have Size() entries.
func (c *Comm) Scatter(ctx context.Context, root, tag int, chunks [][]byte) ([]byte, error) {
	if c.rank == root {
		for r := 0; r < c.world.n; r++ {
			if r != root && c.world.Alive(r) {
				if err := c.Send(r, tag, chunks[r]); err != nil {
					return nil, err
				}
			}
		}
		return chunks[root], nil
	}
	d, _, _, err := c.Recv(ctx, root, tag)
	return d, err
}
