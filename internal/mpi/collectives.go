package mpi

// Additional collectives beyond the paper's minimum (Gather/Bcast), shaped
// like their MPI counterparts: Reduce, Allreduce and Scatter over float64
// vectors. The pipeline's statistics aggregation and the examples use
// them; they also round out the runtime for downstream users porting MPI
// code. Each takes a context governing its blocking receives and returns
// an error when the wait is cut short (cancellation or world teardown).

import "context"

// Op is a reduction operator over float64.
type Op func(a, b float64) float64

// Common reduction operators.
var (
	OpSum Op = func(a, b float64) float64 { return a + b }
	OpMax Op = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin Op = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Reduce combines equal-length vectors element-wise at the root
// (MPI_Reduce). Non-root ranks return nil. Contribution payloads travel
// in pooled buffers: each is read by exactly one receiver (the root), so
// ownership transfers with the message and the root releases the buffer
// after folding it into the accumulator. A send that fails (world torn
// down) never transferred ownership, so the contribution buffer is
// released here rather than leaked.
func (c *Comm) Reduce(ctx context.Context, root, tag int, data []float64, op Op) ([]float64, error) {
	if c.rank != root {
		buf := EncodeFloatsPooled(data)
		if err := c.Send(root, tag, buf); err != nil {
			PutBytes(buf)
			return nil, err
		}
		return nil, nil
	}
	acc := append([]float64{}, data...)
	for i := 0; i < c.world.n-1; i++ {
		d, _, _, err := c.Recv(ctx, AnySource, tag)
		if err != nil {
			return nil, err
		}
		v := DecodeFloatsPooled(d)
		for k := range acc {
			if k < len(v) {
				acc[k] = op(acc[k], v[k])
			}
		}
		PutFloats(v)
		PutBytes(d)
	}
	return acc, nil
}

// Allreduce is Reduce followed by a broadcast of the result; every rank
// returns the combined vector (MPI_Allreduce).
func (c *Comm) Allreduce(ctx context.Context, tag int, data []float64, op Op) ([]float64, error) {
	res, err := c.Reduce(ctx, 0, tag, data, op)
	if err != nil {
		return nil, err
	}
	var payload []byte
	if c.rank == 0 {
		payload = EncodeFloats(res)
	}
	d, err := c.Bcast(ctx, 0, tag+1, payload)
	if err != nil {
		return nil, err
	}
	return DecodeFloats(d), nil
}

// Scatter distributes one payload per rank from the root (MPI_Scatterv);
// every rank returns its chunk. chunks is only read on the root and must
// have Size() entries.
func (c *Comm) Scatter(ctx context.Context, root, tag int, chunks [][]byte) ([]byte, error) {
	if c.rank == root {
		for r := 0; r < c.world.n; r++ {
			if r != root {
				if err := c.Send(r, tag, chunks[r]); err != nil {
					return nil, err
				}
			}
		}
		return chunks[root], nil
	}
	d, _, _, err := c.Recv(ctx, root, tag)
	return d, err
}
