package mpi

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestReduceSum(t *testing.T) {
	err := Run(6, func(c *Comm) {
		data := []float64{float64(c.Rank()), 1}
		got, err := c.Reduce(context.Background(), 2, 40, data, OpSum)
		if err != nil {
			panic(err)
		}
		if c.Rank() != 2 {
			if got != nil {
				panic("non-root must return nil")
			}
			return
		}
		// Sum of ranks 0..5 = 15; count = 6.
		if got[0] != 15 || got[1] != 6 {
			panic("reduce sum mismatch")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceMaxMin(t *testing.T) {
	err := Run(5, func(c *Comm) {
		v := []float64{float64(c.Rank()*c.Rank() - 3)}
		mx, _ := c.Reduce(context.Background(), 0, 41, v, OpMax)
		if c.Rank() == 0 && mx[0] != 13 {
			panic("max mismatch")
		}
		c.Barrier()
		mn, _ := c.Reduce(context.Background(), 0, 42, v, OpMin)
		if c.Rank() == 0 && mn[0] != -3 {
			panic("min mismatch")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduce(t *testing.T) {
	err := Run(8, func(c *Comm) {
		got, err := c.Allreduce(context.Background(), 50, []float64{1, float64(c.Rank())}, OpSum)
		if err != nil {
			panic(err)
		}
		if got[0] != 8 {
			panic("allreduce count mismatch")
		}
		if got[1] != 28 { // 0+1+...+7
			panic("allreduce sum mismatch")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatter(t *testing.T) {
	err := Run(4, func(c *Comm) {
		var chunks [][]byte
		if c.Rank() == 1 {
			for r := 0; r < 4; r++ {
				chunks = append(chunks, []byte{byte(r * 10)})
			}
		}
		got, err := c.Scatter(context.Background(), 1, 60, chunks)
		if err != nil || len(got) != 1 || got[0] != byte(c.Rank()*10) {
			panic("scatter chunk mismatch")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: Allreduce(sum) equals the same computation done serially, for
// random per-rank vectors.
func TestAllreduceProperty(t *testing.T) {
	f := func(raw [4][3]float64) bool {
		// Clamp: float addition is order-sensitive and Reduce combines in
		// arrival order, so compare with a relative tolerance on bounded
		// inputs.
		var vals [4][3]float64
		for r := range raw {
			for k := range raw[r] {
				vals[r][k] = math.Mod(raw[r][k], 1e6)
				if math.IsNaN(vals[r][k]) {
					vals[r][k] = 0
				}
			}
		}
		var want [3]float64
		for r := 0; r < 4; r++ {
			for k := 0; k < 3; k++ {
				want[k] += vals[r][k]
			}
		}
		var bad atomic.Bool
		err := Run(4, func(c *Comm) {
			got, _ := c.Allreduce(context.Background(), 70, vals[c.Rank()][:], OpSum)
			for k := 0; k < 3; k++ {
				if math.Abs(got[k]-want[k]) > 1e-6 {
					bad.Store(true)
				}
			}
		})
		return err == nil && !bad.Load()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the mailbox preserves per-sender FIFO order under a same-tag
// stream (the MPI ordering guarantee).
func TestMailboxFIFOProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw)%50 + 2
		var bad atomic.Bool
		err := Run(2, func(c *Comm) {
			if c.Rank() == 0 {
				for i := 0; i < n; i++ {
					c.Send(1, 9, []byte{byte(i)})
				}
				return
			}
			for i := 0; i < n; i++ {
				d, _, _, _ := c.Recv(context.Background(), 0, 9)
				if int(d[0]) != i {
					bad.Store(true)
				}
			}
		})
		return err == nil && !bad.Load()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the per-tag queue keeps working across head compaction.
func TestMsgQueueCompaction(t *testing.T) {
	q := &msgQueue{}
	for i := 0; i < 1000; i++ {
		q.push(message{from: i})
	}
	for i := 0; i < 1000; i++ {
		if q.empty() {
			t.Fatal("queue empty early")
		}
		m := q.removeAt(q.head)
		if m.from != i {
			t.Fatalf("pop %d returned %d", i, m.from)
		}
	}
	if !q.empty() {
		t.Fatal("queue must be empty")
	}
}

// TestBcastBinomialTopology pins the broadcast tree shape: every
// non-root virtual rank is forwarded to exactly once, parent/child edges
// agree, and no rank — the root included — sends more than ceil(log2 n)
// messages, which is the whole point of the tree on a real wire.
func TestBcastBinomialTopology(t *testing.T) {
	for n := 1; n <= 40; n++ {
		seen := make([]int, n)
		maxFan := 0
		for vr := 0; vr < n; vr++ {
			kids := bcastChildren(vr, n, nil)
			if len(kids) > maxFan {
				maxFan = len(kids)
			}
			for _, c := range kids {
				if c <= vr || c >= n {
					t.Fatalf("n=%d: vr %d forwards to invalid child %d", n, vr, c)
				}
				if bcastParent(c) != vr {
					t.Fatalf("n=%d: child %d of vr %d claims parent %d", n, c, vr, bcastParent(c))
				}
				seen[c]++
			}
		}
		for vr := 1; vr < n; vr++ {
			if seen[vr] != 1 {
				t.Fatalf("n=%d: vr %d received %d forwards, want exactly 1", n, vr, seen[vr])
			}
		}
		logN := 0
		for 1<<logN < n {
			logN++
		}
		if maxFan > logN {
			t.Fatalf("n=%d: fan-out %d exceeds ceil(log2 n)=%d — root serializes again", n, maxFan, logN)
		}
	}
}
