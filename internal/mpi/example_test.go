package mpi_test

import (
	"context"
	"fmt"

	"pamg2d/internal/mpi"
)

// ExampleComm_Gather collects one value from every rank at the root, the
// pattern the paper uses to gather boundary-layer coordinates.
func ExampleComm_Gather() {
	world := mpi.NewWorld(4)
	err := world.Run(func(c *mpi.Comm) {
		payload := mpi.EncodeFloats([]float64{float64(c.Rank() * 10)})
		parts, err := c.Gather(context.Background(), 0, 1, payload)
		if err != nil || c.Rank() != 0 {
			return
		}
		var sum float64
		for _, p := range parts {
			sum += mpi.DecodeFloats(p)[0]
		}
		fmt.Println("sum at root:", sum)
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// sum at root: 60
}

// ExampleWindow shows the one-sided RMA window that backs the paper's
// load-balancing work-estimate table.
func ExampleWindow() {
	world := mpi.NewWorld(3)
	win := world.NewWindow(3)
	err := world.Run(func(c *mpi.Comm) {
		win.Put(c.Rank(), float64(c.Rank()+1)) // publish a work estimate
		c.Barrier()
		if c.Rank() == 0 {
			loads := win.Get()
			best, bestLoad := -1, 0.0
			for r, l := range loads {
				if l > bestLoad {
					best, bestLoad = r, l
				}
			}
			fmt.Printf("steal from rank %d (load %.0f)\n", best, bestLoad)
		}
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// steal from rank 2 (load 3)
}
