package mpi

// Wire framing for the TCP transport. Every unit on a connection after
// the handshake is one frame: a u32 little-endian body length followed by
// the body, whose first byte selects the kind. Point-to-point messages
// (frameMsg) carry the world epoch, source/destination ranks, tag, codec
// id, and payload; the remaining kinds are small control frames for world
// teardown, the cross-process barrier, and RMA window operations hosted
// on rank 0's process. appendFrame and decodeFrameBody are pure
// slice-in/slice-out inverses so the decoder can be fuzzed without a
// socket in sight.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Frame kinds. The zero value is invalid so a truncated or zeroed body
// never decodes as a real frame.
const (
	frameMsg byte = iota + 1
	frameWorldClose
	frameBarrierEnter
	frameBarrierRelease
	frameWinPut
	frameWinAdd
	frameWinGet
	frameWinGetReply
	// framePing / framePong are the clock-alignment exchange: a ping
	// carries a nonce (seq) and the sender's rank; the receiver's reader
	// echoes a pong with the same nonce and its monotonic clock reading
	// (req), letting the sender estimate the peer's clock offset by
	// midpoint alignment. Both are node-level — no world epoch semantics.
	framePing
	framePong
	// frameTelemetry ships one process's observability snapshot (trace
	// tracks + metrics) to rank 0 at the end of a run, payload typed by
	// the codec registry like frameMsg.
	frameTelemetry
	// frameHeartbeat is a node-level keepalive carrying the sender's rank:
	// each process sends one to every live peer on a fixed interval so the
	// read-deadline-based death detector has traffic to observe even while
	// a link is idle through a long compute phase. No world epoch
	// semantics; receivers consume it silently.
	frameHeartbeat
	// frameRankDead is a membership event: the sender has declared `rank`
	// dead (link error or heartbeat timeout) with a bounded cause text.
	// Receivers fold it into their own membership view so the fabric
	// converges on the new live set without every node waiting out its own
	// timeout.
	frameRankDead
)

// maxFrameLen caps a frame body; decoders reject anything larger before
// allocating, so a corrupt length prefix cannot OOM the process.
const maxFrameLen = 1 << 30

// maxCauseLen bounds the error text shipped in a world-close frame.
const maxCauseLen = 1024

// frame is the decoded form of one wire unit. Only the fields relevant to
// the kind are populated; payload and cause are views into the decode
// input and must be copied before the buffer is reused.
type frame struct {
	kind  byte
	epoch uint64

	// frameMsg
	from    int32
	to      int32
	tag     int32
	codec   CodecID
	payload []byte

	// window ops (win = window index within the world, slot = element)
	win  int32
	slot int32
	val  float64

	// barrier sequencing and window get request matching
	seq uint64
	req uint64

	// rank of the sender for control frames that need routing back
	rank int32

	// frameWorldClose
	cause string

	// frameWinGetReply snapshot (freshly allocated by the decoder)
	vals []float64
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendI32(b []byte, v int32) []byte {
	return binary.LittleEndian.AppendUint32(b, uint32(v))
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// appendFrame appends f's complete wire image (length prefix included) to
// dst and returns the extended slice.
func appendFrame(dst []byte, f frame) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length patched below
	dst = append(dst, f.kind)
	dst = appendU64(dst, f.epoch)
	switch f.kind {
	case frameMsg:
		dst = appendI32(dst, f.from)
		dst = appendI32(dst, f.to)
		dst = appendI32(dst, f.tag)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(f.codec))
		dst = append(dst, f.payload...)
	case frameWorldClose:
		cause := f.cause
		if len(cause) > maxCauseLen {
			cause = cause[:maxCauseLen]
		}
		dst = appendI32(dst, f.rank)
		dst = append(dst, cause...)
	case frameBarrierEnter, frameBarrierRelease:
		dst = appendU64(dst, f.seq)
		dst = appendI32(dst, f.rank)
	case frameWinPut, frameWinAdd:
		dst = appendI32(dst, f.win)
		dst = appendI32(dst, f.slot)
		dst = appendF64(dst, f.val)
	case frameWinGet:
		dst = appendI32(dst, f.win)
		dst = appendU64(dst, f.req)
		dst = appendI32(dst, f.rank)
	case frameWinGetReply:
		dst = appendU64(dst, f.req)
		dst = appendU32(dst, uint32(len(f.vals)))
		for _, v := range f.vals {
			dst = appendF64(dst, v)
		}
	case framePing:
		dst = appendU64(dst, f.seq)
		dst = appendI32(dst, f.rank)
	case framePong:
		dst = appendU64(dst, f.seq)
		dst = appendU64(dst, f.req)
	case frameTelemetry:
		dst = appendI32(dst, f.rank)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(f.codec))
		dst = append(dst, f.payload...)
	case frameHeartbeat:
		dst = appendI32(dst, f.rank)
	case frameRankDead:
		cause := f.cause
		if len(cause) > maxCauseLen {
			cause = cause[:maxCauseLen]
		}
		dst = appendI32(dst, f.rank)
		dst = append(dst, cause...)
	default:
		panic(fmt.Sprintf("mpi: encoding unknown frame kind %d", f.kind))
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// frameCursor walks a frame body with bounds checking; every read errors
// instead of panicking so malformed wire input is survivable.
type frameCursor struct {
	b   []byte
	off int
}

func (c *frameCursor) remain() int { return len(c.b) - c.off }

func (c *frameCursor) u32() (uint32, error) {
	if c.remain() < 4 {
		return 0, fmt.Errorf("mpi: frame truncated at offset %d (want u32)", c.off)
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v, nil
}

func (c *frameCursor) u64() (uint64, error) {
	if c.remain() < 8 {
		return 0, fmt.Errorf("mpi: frame truncated at offset %d (want u64)", c.off)
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v, nil
}

func (c *frameCursor) u16() (uint16, error) {
	if c.remain() < 2 {
		return 0, fmt.Errorf("mpi: frame truncated at offset %d (want u16)", c.off)
	}
	v := binary.LittleEndian.Uint16(c.b[c.off:])
	c.off += 2
	return v, nil
}

func (c *frameCursor) i32() (int32, error) {
	v, err := c.u32()
	return int32(v), err
}

func (c *frameCursor) f64() (float64, error) {
	v, err := c.u64()
	return math.Float64frombits(v), err
}

// decodeFrameBody parses one frame body (the bytes after the length
// prefix). payload/cause in the result view b directly; vals is freshly
// allocated. Any structural defect — unknown kind, truncated field,
// out-of-range rank or tag — is an error, never a panic.
func decodeFrameBody(b []byte) (frame, error) {
	var f frame
	if len(b) == 0 {
		return f, fmt.Errorf("mpi: empty frame body")
	}
	c := frameCursor{b: b, off: 1}
	f.kind = b[0]
	var err error
	if f.epoch, err = c.u64(); err != nil {
		return f, err
	}
	switch f.kind {
	case frameMsg:
		if f.from, err = c.i32(); err != nil {
			return f, err
		}
		if f.to, err = c.i32(); err != nil {
			return f, err
		}
		if f.tag, err = c.i32(); err != nil {
			return f, err
		}
		var codec uint16
		if codec, err = c.u16(); err != nil {
			return f, err
		}
		f.codec = CodecID(codec)
		if f.from < 0 || f.to < 0 {
			return f, fmt.Errorf("mpi: frame with negative rank %d->%d", f.from, f.to)
		}
		if f.tag < 0 {
			return f, fmt.Errorf("mpi: frame with negative tag %d", f.tag)
		}
		f.payload = c.b[c.off:]
	case frameWorldClose:
		if f.rank, err = c.i32(); err != nil {
			return f, err
		}
		if c.remain() > maxCauseLen {
			return f, fmt.Errorf("mpi: close cause of %d bytes exceeds cap %d", c.remain(), maxCauseLen)
		}
		f.cause = string(c.b[c.off:])
	case frameBarrierEnter, frameBarrierRelease:
		if f.seq, err = c.u64(); err != nil {
			return f, err
		}
		if f.rank, err = c.i32(); err != nil {
			return f, err
		}
	case frameWinPut, frameWinAdd:
		if f.win, err = c.i32(); err != nil {
			return f, err
		}
		if f.slot, err = c.i32(); err != nil {
			return f, err
		}
		if f.val, err = c.f64(); err != nil {
			return f, err
		}
		if f.win < 0 || f.slot < 0 {
			return f, fmt.Errorf("mpi: window op with negative index (win %d slot %d)", f.win, f.slot)
		}
	case frameWinGet:
		if f.win, err = c.i32(); err != nil {
			return f, err
		}
		if f.req, err = c.u64(); err != nil {
			return f, err
		}
		if f.rank, err = c.i32(); err != nil {
			return f, err
		}
		if f.win < 0 {
			return f, fmt.Errorf("mpi: window get with negative index %d", f.win)
		}
	case frameWinGetReply:
		if f.req, err = c.u64(); err != nil {
			return f, err
		}
		var n uint32
		if n, err = c.u32(); err != nil {
			return f, err
		}
		if int(n)*8 != c.remain() {
			return f, fmt.Errorf("mpi: window snapshot claims %d values, %d bytes follow", n, c.remain())
		}
		f.vals = make([]float64, n)
		for i := range f.vals {
			f.vals[i], _ = c.f64()
		}
	case framePing:
		if f.seq, err = c.u64(); err != nil {
			return f, err
		}
		if f.rank, err = c.i32(); err != nil {
			return f, err
		}
		if f.rank < 0 {
			return f, fmt.Errorf("mpi: ping from negative rank %d", f.rank)
		}
	case framePong:
		if f.seq, err = c.u64(); err != nil {
			return f, err
		}
		if f.req, err = c.u64(); err != nil {
			return f, err
		}
	case frameTelemetry:
		if f.rank, err = c.i32(); err != nil {
			return f, err
		}
		var codec uint16
		if codec, err = c.u16(); err != nil {
			return f, err
		}
		f.codec = CodecID(codec)
		if f.rank < 0 {
			return f, fmt.Errorf("mpi: telemetry from negative rank %d", f.rank)
		}
		if f.codec == codecNone {
			return f, fmt.Errorf("mpi: telemetry frame without a codec")
		}
		f.payload = c.b[c.off:]
	case frameHeartbeat:
		if f.rank, err = c.i32(); err != nil {
			return f, err
		}
		if f.rank < 0 {
			return f, fmt.Errorf("mpi: heartbeat from negative rank %d", f.rank)
		}
	case frameRankDead:
		if f.rank, err = c.i32(); err != nil {
			return f, err
		}
		if f.rank < 0 {
			return f, fmt.Errorf("mpi: death notice for negative rank %d", f.rank)
		}
		if c.remain() > maxCauseLen {
			return f, fmt.Errorf("mpi: death cause of %d bytes exceeds cap %d", c.remain(), maxCauseLen)
		}
		f.cause = string(c.b[c.off:])
	default:
		return f, fmt.Errorf("mpi: unknown frame kind %d", f.kind)
	}
	return f, nil
}

// readFrame reads one length-prefixed frame from r into scratch (grown as
// needed and returned for reuse) and decodes it. The frame's payload and
// cause fields view scratch, so the caller must consume or copy them
// before the next read.
func readFrame(r *bufio.Reader, scratch []byte) (frame, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, scratch, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrameLen {
		return frame{}, scratch, fmt.Errorf("mpi: frame length %d outside (0, %d]", n, maxFrameLen)
	}
	if cap(scratch) < int(n) {
		scratch = make([]byte, n)
	}
	scratch = scratch[:n]
	if _, err := io.ReadFull(r, scratch); err != nil {
		return frame{}, scratch, err
	}
	f, err := decodeFrameBody(scratch)
	return f, scratch, err
}
