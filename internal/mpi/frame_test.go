package mpi

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// frameEqual compares the fields meaningful for f.kind.
func frameEqual(a, b frame) bool {
	if a.kind != b.kind || a.epoch != b.epoch {
		return false
	}
	switch a.kind {
	case frameMsg:
		return a.from == b.from && a.to == b.to && a.tag == b.tag &&
			a.codec == b.codec && bytes.Equal(a.payload, b.payload)
	case frameWorldClose:
		return a.rank == b.rank && a.cause == b.cause
	case frameBarrierEnter, frameBarrierRelease:
		return a.seq == b.seq && a.rank == b.rank
	case frameWinPut, frameWinAdd:
		return a.win == b.win && a.slot == b.slot &&
			math.Float64bits(a.val) == math.Float64bits(b.val)
	case frameWinGet:
		return a.win == b.win && a.req == b.req && a.rank == b.rank
	case frameWinGetReply:
		if a.req != b.req || len(a.vals) != len(b.vals) {
			return false
		}
		for i := range a.vals {
			if math.Float64bits(a.vals[i]) != math.Float64bits(b.vals[i]) {
				return false
			}
		}
		return true
	case framePing:
		return a.seq == b.seq && a.rank == b.rank
	case framePong:
		return a.seq == b.seq && a.req == b.req
	case frameTelemetry:
		return a.rank == b.rank && a.codec == b.codec && bytes.Equal(a.payload, b.payload)
	case frameHeartbeat:
		return a.rank == b.rank
	case frameRankDead:
		return a.rank == b.rank && a.cause == b.cause
	}
	return false
}

func randomFrame(rng *rand.Rand) frame {
	kinds := []byte{frameMsg, frameWorldClose, frameBarrierEnter, frameBarrierRelease,
		frameWinPut, frameWinAdd, frameWinGet, frameWinGetReply,
		framePing, framePong, frameTelemetry, frameHeartbeat, frameRankDead}
	f := frame{kind: kinds[rng.Intn(len(kinds))], epoch: rng.Uint64()}
	switch f.kind {
	case frameMsg:
		f.from = rng.Int31n(1 << 20)
		f.to = rng.Int31n(1 << 20)
		f.tag = rng.Int31n(1 << 20)
		f.codec = CodecID(rng.Intn(64))
		f.payload = make([]byte, rng.Intn(300))
		rng.Read(f.payload)
	case frameWorldClose:
		f.rank = rng.Int31n(100) - 1
		n := rng.Intn(maxCauseLen + 1)
		b := make([]byte, n)
		rng.Read(b)
		f.cause = string(b)
	case frameBarrierEnter, frameBarrierRelease:
		f.seq = rng.Uint64()
		f.rank = rng.Int31n(1 << 20)
	case frameWinPut, frameWinAdd:
		f.win = rng.Int31n(1 << 10)
		f.slot = rng.Int31n(1 << 10)
		f.val = rng.NormFloat64()
	case frameWinGet:
		f.win = rng.Int31n(1 << 10)
		f.req = rng.Uint64()
		f.rank = rng.Int31n(1 << 20)
	case frameWinGetReply:
		f.req = rng.Uint64()
		f.vals = make([]float64, rng.Intn(40))
		for i := range f.vals {
			f.vals[i] = rng.NormFloat64()
		}
	case framePing:
		f.seq = rng.Uint64()
		f.rank = rng.Int31n(1 << 20)
	case framePong:
		f.seq = rng.Uint64()
		f.req = rng.Uint64()
	case frameTelemetry:
		f.rank = rng.Int31n(1 << 20)
		f.codec = CodecID(rng.Intn(63) + 1)
		f.payload = make([]byte, rng.Intn(300))
		rng.Read(f.payload)
	case frameHeartbeat:
		f.rank = rng.Int31n(1 << 20)
	case frameRankDead:
		f.rank = rng.Int31n(1 << 20)
		n := rng.Intn(maxCauseLen + 1)
		b := make([]byte, n)
		rng.Read(b)
		f.cause = string(b)
	}
	return f
}

// TestFrameRoundTrip is the encode→decode property test over every frame
// kind: any frame appendFrame emits decodes back to an equal frame, both
// straight from the body and through the length-prefixed stream reader.
func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var scratch []byte
	for i := 0; i < 2000; i++ {
		f := randomFrame(rng)
		wire := appendFrame(nil, f)
		got, err := decodeFrameBody(wire[4:])
		if err != nil {
			t.Fatalf("iter %d kind %d: decode: %v", i, f.kind, err)
		}
		if !frameEqual(f, got) {
			t.Fatalf("iter %d kind %d: decode mismatch:\n  sent %+v\n  got  %+v", i, f.kind, f, got)
		}
		var sf frame
		sf, scratch, err = readFrame(bufio.NewReader(bytes.NewReader(wire)), scratch)
		if err != nil {
			t.Fatalf("iter %d kind %d: readFrame: %v", i, f.kind, err)
		}
		if !frameEqual(f, sf) {
			t.Fatalf("iter %d kind %d: stream decode mismatch", i, f.kind)
		}
	}
}

// TestFrameStreamRejects covers the malformed-prefix cases the fuzzer
// cannot reach through decodeFrameBody (it starts after the length).
func TestFrameStreamRejects(t *testing.T) {
	cases := map[string][]byte{
		"zero length":      binary.LittleEndian.AppendUint32(nil, 0),
		"oversized length": binary.LittleEndian.AppendUint32(nil, maxFrameLen+1),
		"truncated body":   append(binary.LittleEndian.AppendUint32(nil, 100), 1, 2, 3),
	}
	for name, wire := range cases {
		if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(wire)), nil); err == nil {
			t.Errorf("%s: readFrame accepted malformed input", name)
		}
	}
}

// TestFrameDecodeRejects spot-checks the decoder's validation of the
// corruption classes the fuzzer explores at random.
func TestFrameDecodeRejects(t *testing.T) {
	msg := appendFrame(nil, frame{kind: frameMsg, from: 1, to: 0, tag: 3, payload: []byte("x")})[4:]
	badTag := append([]byte{}, msg...)
	binary.LittleEndian.PutUint32(badTag[17:], uint32(0xffffffff)) // tag = -1 on the wire
	reply := appendFrame(nil, frame{kind: frameWinGetReply, req: 9, vals: []float64{1, 2}})[4:]
	shortReply := reply[:len(reply)-8] // count says 2, one value follows
	cases := map[string][]byte{
		"empty body":        {},
		"unknown kind":      {99, 0, 0, 0, 0, 0, 0, 0, 0},
		"truncated header":  msg[:9],
		"negative tag":      badTag,
		"short win reply":   shortReply,
		"negative win slot": appendFrame(nil, frame{kind: frameWinPut, win: -2, slot: 0})[4:],
		"negative heartbeat rank": func() []byte {
			b := appendFrame(nil, frame{kind: frameHeartbeat, rank: 3})[4:]
			binary.LittleEndian.PutUint32(b[9:], uint32(0xffffffff)) // rank = -1
			return b
		}(),
		"truncated heartbeat": appendFrame(nil, frame{kind: frameHeartbeat, rank: 3})[4:11],
		"negative dead rank": func() []byte {
			b := appendFrame(nil, frame{kind: frameRankDead, rank: 2, cause: "gone"})[4:]
			binary.LittleEndian.PutUint32(b[9:], uint32(0xfffffffe)) // rank = -2
			return b
		}(),
		// appendFrame truncates oversized causes, so build the body by hand.
		"oversized death cause": func() []byte {
			b := []byte{frameRankDead}
			b = appendU64(b, 0)
			b = appendI32(b, 1)
			return append(b, bytes.Repeat([]byte{'x'}, maxCauseLen+1)...)
		}(),
	}
	for name, body := range cases {
		if _, err := decodeFrameBody(body); err == nil {
			t.Errorf("%s: decoder accepted malformed body", name)
		}
	}
}

// FuzzFrameDecode hammers the decoder with arbitrary bodies: it must
// never panic, and anything it accepts must re-encode to a body that
// decodes identically (the decoder defines the canonical form).
func FuzzFrameDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 16; i++ {
		f.Add(appendFrame(nil, randomFrame(rng))[4:])
	}
	f.Add([]byte{})
	f.Add([]byte{frameMsg})
	f.Add([]byte{frameWinGetReply, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255})
	f.Add(appendFrame(nil, frame{kind: frameHeartbeat, rank: 2})[4:])
	f.Add(appendFrame(nil, frame{kind: frameRankDead, rank: 3, cause: "link to rank 3 failed: EOF"})[4:])
	f.Add([]byte{frameRankDead, 0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255}) // negative dead rank
	f.Add([]byte{frameHeartbeat, 0, 0, 0, 0, 0, 0, 0, 0, 7, 0})              // truncated heartbeat rank
	f.Fuzz(func(t *testing.T, body []byte) {
		fr, err := decodeFrameBody(body)
		if err != nil {
			return
		}
		wire := appendFrame(nil, fr)
		again, err := decodeFrameBody(wire[4:])
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if !frameEqual(fr, again) {
			t.Fatalf("accepted frame not canonical:\n  first  %+v\n  second %+v", fr, again)
		}
	})
}
